package mirror

// Experiment tests: the measured counterparts of EXPERIMENTS.md. Each test
// checks the SHAPE the paper's claims predict (who wins, does quality
// improve) and logs the measured values recorded in EXPERIMENTS.md.
// All fixtures are seeded; results are deterministic.

import (
	"fmt"
	"testing"
	"time"

	"mirror/internal/bat"
	"mirror/internal/cluster"
	"mirror/internal/core"
	"mirror/internal/corpus"
	"mirror/internal/daemon"
	"mirror/internal/dict"
	"mirror/internal/feature"
	"mirror/internal/ir"
	"mirror/internal/media"
	"mirror/internal/mediaserver"
	"mirror/internal/moa"
)

// ---- helpers shared with bench_test.go ----

// rgbCoarse extracts the coarse colour histogram (bench helper).
func rgbCoarse(img *media.Image) []float64 {
	return feature.NewRGBHistogram("rgb_coarse", 2).Extract(img)
}

// fitSelect standardises and model-selects (bench helper).
func fitSelect(data [][]float64, kmin, kmax int, seed int64) (*cluster.Model, []int, error) {
	std, means, stds := cluster.Standardize(data)
	m, err := cluster.Select(std, kmin, kmax, seed)
	if err != nil {
		return nil, nil, err
	}
	assign := make([]int, len(data))
	for i, x := range data {
		assign[i] = m.Assign(cluster.ApplyStandardize(x, means, stds))
	}
	return m, assign, nil
}

// buildTextDB builds a CONTREP-indexed synthetic text collection.
func buildTextDB(t testing.TB, n int) *moa.Database {
	t.Helper()
	db := moa.NewDatabase()
	err := db.DefineFromSource(`
		define Docs as SET<TUPLE<
			Atomic<URL>: source,
			CONTREP<Text>: body
		>>;`)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range corpus.TextCollection(corpus.DefaultTextConfig(n)) {
		if _, err := db.Insert("Docs", map[string]any{
			"source": fmt.Sprintf("doc://%d", i), "body": d,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Finalize("Docs"); err != nil {
		t.Fatal(err)
	}
	return db
}

// ---- E1: Figure 1 ----

// TestFigure1Architecture reproduces Figure 1 over real sockets: every
// party is a separate server; the schema flows through the dictionary; a
// client discovers and queries the DBMS.
func TestFigure1Architecture(t *testing.T) {
	dictAddr, stopDict, err := dict.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stopDict()

	items := corpus.Generate(corpus.Config{N: 10, W: 32, H: 32, Seed: 6, AnnotateRate: 1})
	mediaURL, stopMedia, err := mediaserver.Start(items)
	if err != nil {
		t.Fatal(err)
	}
	defer stopMedia()

	handles, err := daemon.StartDemoDaemons(dictAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, h := range handles {
			h.Stop()
		}
	}()

	crawled, err := mediaserver.Crawl(mediaURL)
	if err != nil {
		t.Fatal(err)
	}
	if len(crawled) != 10 {
		t.Fatalf("robot crawled %d items", len(crawled))
	}
	m, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range crawled {
		img, err := mediaserver.DecodeItemImage(it)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddImage(it.URL, it.Annotation, img); err != nil {
			t.Fatal(err)
		}
	}
	opts := core.DefaultIndexOptions()
	opts.Features = []string{"rgb_coarse"}
	opts.KMax = 4
	if err := m.BuildContentIndexDistributed(opts, dictAddr); err != nil {
		t.Fatal(err)
	}
	_, stopDBMS, err := m.Serve("127.0.0.1:0", dictAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer stopDBMS()

	// the client side: everything discovered through the dictionary
	dc, err := dict.Dial(dictAddr)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := dc.GetSchema()
	dc.Close()
	if err != nil || schema == "" {
		t.Fatalf("published schema: %q, %v", schema, err)
	}
	client, err := core.DiscoverMirror(dictAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	hits, err := client.TextQuery("ocean", 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("client got no hits")
	}
	t.Logf("E1: Figure 1 reproduced: dictionary + media server + %d daemons + DBMS + client, top hit %s (%.3f)",
		len(handles), hits[0].URL, hits[0].Score)
}

// ---- E4: flattening beats tuple-at-a-time, and the gap grows ----

func TestE4FlattenedBeatsInterpreted(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	params := ir.QueryParams(corpus.QueryTerms(4))
	const q = `
		map[sum(THIS)](
			map[getBL(THIS.body, query, stats)]( Docs ));`
	var prevRatio float64
	for _, n := range []int{500, 4000} {
		db := buildTextDB(t, n)
		eng := moa.NewEngine(db)
		c, err := eng.Compile(q, params)
		if err != nil {
			t.Fatal(err)
		}
		// time the flattened path before the interpreter materialises the
		// collection into the Go heap (its caches would distort GC cost)
		reps := 5
		if _, err := c.Run(); err != nil { // warm (hash indexes)
			t.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := c.Run(); err != nil {
				t.Fatal(err)
			}
		}
		flat := time.Since(start)

		ip := moa.NewInterp(db, params)
		if _, err := ip.Query(q); err != nil { // warm (collection cache)
			t.Fatal(err)
		}
		start = time.Now()
		for i := 0; i < reps; i++ {
			if _, err := ip.Query(q); err != nil {
				t.Fatal(err)
			}
		}
		interp := time.Since(start)
		ratio := float64(interp) / float64(flat)
		t.Logf("E4: n=%d flattened=%v interpreted=%v speedup=%.1fx", n, flat/time.Duration(reps), interp/time.Duration(reps), ratio)
		if ratio < 1 {
			t.Errorf("E4: flattened execution slower than tuple-at-a-time at n=%d (%.2fx)", n, ratio)
		}
		prevRatio = ratio
	}
	_ = prevRatio
}

// ---- E6: AutoClass recovers the latent classes ----

func TestE6ClusterRecovery(t *testing.T) {
	// one feature vector per ground-truth region → the clustering must
	// rediscover the latent palette
	items := corpus.Generate(corpus.Config{N: 60, W: 48, H: 48, Seed: 13, AnnotateRate: 1})
	var data [][]float64
	var truth []int
	for _, it := range items {
		for _, r := range it.Scene.Regions {
			sub := it.Scene.Img.SubImage(r.X0, r.Y0, r.X1, r.Y1)
			data = append(data, rgbCoarse(sub))
			truth = append(truth, r.Class)
		}
	}
	model, assign, err := fitSelect(data, 4, 14, 3)
	if err != nil {
		t.Fatal(err)
	}
	ari := cluster.AdjustedRandIndex(truth, assign)
	t.Logf("E6: %d regions, %d latent classes, AutoClass chose K=%d, ARI=%.3f",
		len(data), len(media.Classes), model.K, ari)
	if ari < 0.5 {
		t.Errorf("E6: adjusted Rand index %.3f < 0.5 — clustering failed to recover classes", ari)
	}
	if model.K < 5 || model.K > 14 {
		t.Errorf("E6: selected K=%d implausible for %d latent classes", model.K, len(media.Classes))
	}
}

// ---- E7: the fusion rewrite changes the plan, not the answer ----

func TestE7FusionPreservesSemantics(t *testing.T) {
	db := buildTextDB(t, 300)
	params := ir.QueryParams(corpus.QueryTerms(3))
	const q = `
		map[sum(THIS)](
			map[getBL(THIS.body, query, stats)]( Docs ));`
	fused := moa.NewEngine(db)
	unfused := &moa.Engine{DB: db, Opts: moa.Options{FuseMaps: true, FuseSelects: true, CSE: true}}
	r1, err := fused.Query(q, params)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := unfused.Query(q, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(r1.Rows), len(r2.Rows))
	}
	for _, row := range r1.Rows {
		other, ok := r2.Find(row.OID)
		if !ok {
			t.Fatalf("doc %d missing from unfused result", row.OID)
		}
		a := row.Value.(float64)
		b := other.Value.(float64)
		if d := a - b; d > 1e-9 || d < -1e-9 {
			t.Fatalf("doc %d: fused %v vs unfused %v", row.OID, a, b)
		}
	}
	t.Logf("E7: fused and unfused plans agree on all %d scores", len(r1.Rows))
}

// ---- E8: dual coding lifts retrieval of unannotated images ----

func TestE8DualCoding(t *testing.T) {
	items := corpus.Generate(corpus.Config{N: 60, W: 64, H: 64, Seed: 5, AnnotateRate: 0.6})
	m, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := m.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.BuildContentIndex(core.DefaultIndexOptions()); err != nil {
		t.Fatal(err)
	}
	var mrrText, mrrDual float64
	queries := 0
	for class := 0; class < len(media.Classes); class++ {
		exists := false
		for _, it := range items {
			if it.Annotation == "" && it.HasClass(class) {
				exists = true
				break
			}
		}
		if !exists {
			continue
		}
		cl := class
		rel := func(h core.Hit) bool {
			it := items[h.OID]
			return it.Annotation == "" && it.HasClass(cl)
		}
		term := corpus.CanonicalTerm(class)
		th, err := m.QueryAnnotations(term, 0)
		if err != nil {
			t.Fatal(err)
		}
		dh, err := m.QueryDualCoding(term, 0)
		if err != nil {
			t.Fatal(err)
		}
		rr := func(hits []core.Hit) float64 {
			for rank, h := range hits {
				if rel(h) {
					return 1 / float64(rank+1)
				}
			}
			return 0
		}
		mrrText += rr(th)
		mrrDual += rr(dh)
		queries++
	}
	mrrText /= float64(queries)
	mrrDual /= float64(queries)
	t.Logf("E8: %d queries; MRR of first unannotated relevant image: text=%.3f dual=%.3f (lift %.1fx)",
		queries, mrrText, mrrDual, mrrDual/maxF(mrrText, 1e-9))
	if mrrDual <= mrrText {
		t.Errorf("E8: dual coding gave no lift (%.3f vs %.3f)", mrrDual, mrrText)
	}
}

// ---- E9: feedback improves the content ranking ----

func TestE9FeedbackImproves(t *testing.T) {
	items := corpus.Generate(corpus.Config{N: 48, W: 48, H: 48, Seed: 17, AnnotateRate: 0.6})
	m, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := m.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
			t.Fatal(err)
		}
	}
	opts := core.DefaultIndexOptions()
	opts.Features = []string{"rgb_coarse", "gabor"}
	if err := m.BuildContentIndex(opts); err != nil {
		t.Fatal(err)
	}
	// average the feedback trajectory over several class queries
	var p0sum, p2sum float64
	queries := 0
	for class := 0; class < len(media.Classes); class++ {
		term := corpus.CanonicalTerm(class)
		cl := class
		relevant := func(h core.Hit) bool { return items[h.OID].HasClass(cl) }
		unannPrec := func(hits []core.Hit) float64 {
			var un []core.Hit
			for _, h := range hits {
				if items[h.OID].Annotation == "" {
					un = append(un, h)
				}
			}
			return core.PrecisionAtK(un, 5, relevant)
		}
		sess, err := m.NewSession(term)
		if err != nil {
			t.Fatal(err)
		}
		hits0, err := sess.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		p0 := unannPrec(hits0)
		for round := 0; round < 2; round++ {
			hits, err := sess.Run(12)
			if err != nil {
				t.Fatal(err)
			}
			var rel, nonrel []core.Hit
			for _, h := range hits {
				if relevant(h) {
					rel = append(rel, h)
				} else {
					nonrel = append(nonrel, h)
				}
			}
			if err := sess.Feedback(oids(rel), oids(nonrel)); err != nil {
				t.Fatal(err)
			}
		}
		hits2, err := sess.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		p2 := unannPrec(hits2)
		p0sum += p0
		p2sum += p2
		queries++
	}
	p0avg := p0sum / float64(queries)
	p2avg := p2sum / float64(queries)
	t.Logf("E9: %d queries; mean precision@5 over unannotated items: before=%.3f after 2 feedback rounds=%.3f",
		queries, p0avg, p2avg)
	if p2avg < p0avg {
		t.Errorf("E9: feedback degraded mean precision (%.3f → %.3f)", p0avg, p2avg)
	}
}

func oids(hits []core.Hit) []bat.OID {
	out := make([]bat.OID, len(hits))
	for i, h := range hits {
		out[i] = h.OID
	}
	return out
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
