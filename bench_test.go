package mirror

// The benchmark harness regenerates the experiment suite of EXPERIMENTS.md.
// The paper (a demo paper) has one figure and no numeric tables; each bench
// below corresponds to an experiment ID derived from Figure 1 or from a
// performance claim in the text — see DESIGN.md §4 for the mapping.
//
// Run: go test -bench=. -benchmem .

import (
	"fmt"
	"sync"
	"testing"

	"mirror/internal/bat"
	"mirror/internal/core"
	"mirror/internal/corpus"
	"mirror/internal/daemon"
	"mirror/internal/dict"
	"mirror/internal/ir"
	"mirror/internal/mediaserver"
	"mirror/internal/moa"
)

// ---- shared fixtures (built once, reused across benches) ----

var (
	textDBMu sync.Mutex
	textDBs  = map[int]*moa.Database{}

	demoOnce sync.Once
	demoM    *core.Mirror
	demoErr  error
)

// textDB builds (or returns) a text collection of n synthetic documents
// indexed under CONTREP.
func textDB(b *testing.B, n int) *moa.Database {
	b.Helper()
	textDBMu.Lock()
	defer textDBMu.Unlock()
	if db, ok := textDBs[n]; ok {
		return db
	}
	db := moa.NewDatabase()
	err := db.DefineFromSource(`
		define Docs as SET<TUPLE<
			Atomic<URL>: source,
			CONTREP<Text>: body
		>>;`)
	if err != nil {
		b.Fatal(err)
	}
	docs := corpus.TextCollection(corpus.DefaultTextConfig(n))
	for i, d := range docs {
		if _, err := db.Insert("Docs", map[string]any{
			"source": fmt.Sprintf("doc://%d", i), "body": d,
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Finalize("Docs"); err != nil {
		b.Fatal(err)
	}
	textDBs[n] = db
	return db
}

const docsRankQuery = `
	map[sum(THIS)](
		map[getBL(THIS.body, query, stats)]( Docs ));`

// demoMirror builds the Section 5 demo database once.
func demoMirror(b *testing.B) *core.Mirror {
	b.Helper()
	demoOnce.Do(func() {
		items := corpus.Generate(corpus.Config{N: 36, W: 48, H: 48, Seed: 11, AnnotateRate: 0.75})
		m, err := core.New()
		if err != nil {
			demoErr = err
			return
		}
		for _, it := range items {
			if err := m.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
				demoErr = err
				return
			}
		}
		opts := core.DefaultIndexOptions()
		opts.Features = []string{"rgb_coarse", "gabor"}
		opts.KMax = 6
		demoErr = m.BuildContentIndex(opts)
		demoM = m
	})
	if demoErr != nil {
		b.Fatal(demoErr)
	}
	return demoM
}

// ---- E1: Figure 1, the distributed architecture ----

// BenchmarkE1_Figure1Pipeline measures one full Figure-1 round trip:
// dictionary + media server + daemons up, robot crawl, distributed
// extraction, one client query over the wire, everything down.
func BenchmarkE1_Figure1Pipeline(b *testing.B) {
	items := corpus.Generate(corpus.Config{N: 6, W: 32, H: 32, Seed: 2, AnnotateRate: 1})
	for i := 0; i < b.N; i++ {
		dictAddr, stopDict, err := dict.Start("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		mediaURL, stopMedia, err := mediaserver.Start(items)
		if err != nil {
			b.Fatal(err)
		}
		handles, err := daemon.StartDemoDaemons(dictAddr)
		if err != nil {
			b.Fatal(err)
		}
		crawled, err := mediaserver.Crawl(mediaURL)
		if err != nil {
			b.Fatal(err)
		}
		m, err := core.New()
		if err != nil {
			b.Fatal(err)
		}
		for _, it := range crawled {
			img, err := mediaserver.DecodeItemImage(it)
			if err != nil {
				b.Fatal(err)
			}
			if err := m.AddImage(it.URL, it.Annotation, img); err != nil {
				b.Fatal(err)
			}
		}
		opts := core.DefaultIndexOptions()
		opts.Features = []string{"rgb_coarse"}
		opts.KMax = 4
		if err := m.BuildContentIndexDistributed(opts, dictAddr); err != nil {
			b.Fatal(err)
		}
		_, stopDBMS, err := m.Serve("127.0.0.1:0", dictAddr)
		if err != nil {
			b.Fatal(err)
		}
		client, err := core.DiscoverMirror(dictAddr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := client.TextQuery("ocean", 3, false); err != nil {
			b.Fatal(err)
		}
		client.Close()
		stopDBMS()
		for _, h := range handles {
			h.Stop()
		}
		stopMedia()
		stopDict()
	}
}

// ---- E2: the Section 3 ranking query ----

// BenchmarkE2_AnnotatedRanking measures the paper's verbatim ranking query
// (compiled once, executed per iteration) over a 4k-document collection.
func BenchmarkE2_AnnotatedRanking(b *testing.B) {
	db := textDB(b, 4000)
	eng := moa.NewEngine(db)
	params := ir.QueryParams(corpus.QueryTerms(4))
	c, err := eng.Compile(docsRankQuery, params)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E3: the Section 5 demo pipeline ----

// BenchmarkE3_DemoPipeline measures the in-process extraction pipeline
// (segmentation, colour+texture daemons, AutoClass, CONTREP, thesaurus).
func BenchmarkE3_DemoPipeline(b *testing.B) {
	items := corpus.Generate(corpus.Config{N: 12, W: 48, H: 48, Seed: 4, AnnotateRate: 1})
	for i := 0; i < b.N; i++ {
		m, err := core.New()
		if err != nil {
			b.Fatal(err)
		}
		for _, it := range items {
			if err := m.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
				b.Fatal(err)
			}
		}
		opts := core.DefaultIndexOptions()
		opts.Features = []string{"rgb_coarse", "gabor"}
		opts.KMax = 5
		if err := m.BuildContentIndex(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E4: flattening vs tuple-at-a-time ([BWK98]) ----

// BenchmarkE4_FlattenedVsTupleAtATime runs the same Moa ranking query
// through the flattened (set-at-a-time BAT) executor and through the
// tuple-at-a-time interpreter; the ratio at growing collection sizes is
// the paper's core performance argument.
func BenchmarkE4_FlattenedVsTupleAtATime(b *testing.B) {
	for _, n := range []int{500, 2000, 8000} {
		db := textDB(b, n)
		params := ir.QueryParams(corpus.QueryTerms(4))

		b.Run(fmt.Sprintf("flattened/n=%d", n), func(b *testing.B) {
			eng := moa.NewEngine(db)
			c, err := eng.Compile(docsRankQuery, params)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("tuple-at-a-time/n=%d", n), func(b *testing.B) {
			ip := moa.NewInterp(db, params)
			if _, err := ip.Query(docsRankQuery); err != nil { // warm the cache
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ip.Query(docsRankQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E5: design for scalability ----

// BenchmarkE5_ScalabilitySweep measures ranked retrieval cost as the
// collection grows 1k→32k documents (fused physical getbl plan).
func BenchmarkE5_ScalabilitySweep(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000, 32000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db := textDB(b, n)
			eng := moa.NewEngine(db)
			c, err := eng.Compile(docsRankQuery, ir.QueryParams(corpus.QueryTerms(4)))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5_ParallelVsSerialKernel runs the ranking query at n=16000 with
// the parallel BAT kernel forced off ("serial", parallelism 1) and at the
// machine default ("parallel", NumCPU workers). The ratio is the speedup
// the partitioned execution layer delivers on this machine; on a single
// core the two are equivalent (the dispatcher never partitions).
func BenchmarkE5_ParallelVsSerialKernel(b *testing.B) {
	db := textDB(b, 16000)
	params := ir.QueryParams(corpus.QueryTerms(4))
	for _, mode := range []struct {
		name string
		par  int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			old := bat.SetParallelism(mode.par)
			defer bat.SetParallelism(old)
			eng := moa.NewEngine(db)
			c, err := eng.Compile(docsRankQuery, params)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5_PhysicalGetBL isolates the physical operator (no fill, no
// materialisation): the cost that scales with posting lists, not with the
// collection.
func BenchmarkE5_PhysicalGetBL(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000, 32000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db := textDB(b, n)
			rev, _ := db.BAT("Docs_body_termrev")
			doc, _ := db.BAT("Docs_body_doc")
			bel, _ := db.BAT("Docs_body_bel")
			dict, _ := db.BAT("Docs_body_dict")
			dictRev := dict.Reverse()
			var q []bat.OID
			for _, t := range corpus.QueryTerms(4) {
				if v, ok := dictRev.Find(t); ok {
					q = append(q, v.(bat.OID))
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				beliefs, counts, err := bat.GetBL(rev, doc, bel, q)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := bat.SumBeliefs(beliefs, counts, len(q), ir.DefaultBelief); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E6: AutoClass clustering ----

// BenchmarkE6_AutoClass measures Bayesian model selection on the demo's
// colour feature space.
func BenchmarkE6_AutoClass(b *testing.B) {
	m := demoMirror(b)
	_ = m
	// representative synthetic feature data: 200 segments, 11 dims
	items := corpus.Generate(corpus.Config{N: 40, W: 48, H: 48, Seed: 9, AnnotateRate: 1})
	var data [][]float64
	for _, it := range items {
		// one coarse histogram per ground-truth region
		for _, r := range it.Scene.Regions {
			sub := it.Scene.Img.SubImage(r.X0, r.Y0, r.X1, r.Y1)
			data = append(data, rgbCoarse(sub))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fitSelect(data, 2, 8, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E7: algebraic optimisation ablation ----

// BenchmarkE7_OptimizerAblation runs the Section 3 query with (a) all
// rewrites, (b) aggregate fusion off (belief sets materialised), (c) CSE
// off. The fused/unfused gap is the value of the paper's "new
// probabilistic operators at the physical level".
func BenchmarkE7_OptimizerAblation(b *testing.B) {
	db := textDB(b, 4000)
	params := ir.QueryParams(corpus.QueryTerms(4))
	variants := []struct {
		name string
		opts moa.Options
	}{
		{"optimized", moa.DefaultOptions},
		{"no-agg-fusion", moa.Options{FuseMaps: true, FuseSelects: true, CSE: true}},
		{"no-cse", moa.Options{FuseMaps: true, FuseAggregates: true, FuseSelects: true}},
		{"no-rewrites", moa.NoOptimize},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			eng := &moa.Engine{DB: db, Opts: v.opts}
			c, err := eng.Compile(docsRankQuery, params)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E8: thesaurus expansion (dual coding) ----

// BenchmarkE8_ThesaurusExpansion measures query formulation through the
// thesaurus plus the content retrieval it enables.
func BenchmarkE8_ThesaurusExpansion(b *testing.B) {
	m := demoMirror(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clusters := m.ExpandQuery("ocean", 5)
		if len(clusters) == 0 {
			b.Fatal("no expansion")
		}
		if _, err := m.QueryContent(clusters, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E9: relevance feedback iteration ----

// BenchmarkE9_FeedbackIteration measures one run+judge+update cycle of the
// demo's interaction loop.
func BenchmarkE9_FeedbackIteration(b *testing.B) {
	m := demoMirror(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := m.NewSession("ocean")
		if err != nil {
			b.Fatal(err)
		}
		hits, err := sess.Run(10)
		if err != nil {
			b.Fatal(err)
		}
		var rel, nonrel []bat.OID
		for j, h := range hits {
			if j%2 == 0 {
				rel = append(rel, h.OID)
			} else {
				nonrel = append(nonrel, h.OID)
			}
		}
		if err := sess.Feedback(rel, nonrel); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Run(10); err != nil {
			b.Fatal(err)
		}
	}
}
