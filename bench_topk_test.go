package mirror

// E11: pruned top-k retrieval vs exhaustive score-everything-then-sort, at
// collection scale. The fixture is a synthetic term-ordered postings index
// built directly at the physical layer (the same representation CONTREP's
// Finalize derives), so the benchmark measures pure query cost: the
// exhaustive side runs the legacy pipeline getbl → fill(domain) → full
// descending sort cut at k; the pruned side runs the max-score operator.
//
// TestEmitQueryBenchJSON additionally writes the measured latencies as
// BENCH_queries.json when the BENCH_QUERIES_JSON env var names a path (the
// CI bench-smoke job does), seeding the query-latency perf trajectory.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"mirror/internal/bat"
	"mirror/internal/ir"
)

// e11Index is the physical fixture: both postings layouts over one corpus.
type e11Index struct {
	n int // documents
	// term-ordered layout (pruned operator input)
	start, postDoc, postBel, maxBel *bat.BAT
	// original pair layout (exhaustive getbl input)
	revTerm, doc, bel *bat.BAT
	domain            *bat.BAT
	nterms            int
}

var (
	e11Mu    sync.Mutex
	e11Cache = map[int]*e11Index{}
)

// mkE11Index builds a deterministic corpus of n documents with 8 postings
// each: 3 from a small set of common terms (long posting lists — the ones
// max-score demotes to non-essential) and 5 rare terms.
func mkE11Index(n int) *e11Index {
	e11Mu.Lock()
	defer e11Mu.Unlock()
	if ix, ok := e11Cache[n]; ok {
		return ix
	}
	const perDoc = 8
	const common = 50
	nterms := 20000
	if nterms > n/2+common+1 {
		nterms = n/2 + common + 1
	}
	p := n * perDoc
	termOf := make([]bat.OID, 0, p)
	docOf := make([]bat.OID, 0, p)
	belOf := make([]float64, 0, p)
	seen := map[bat.OID]bool{}
	rnd := uint64(12345)
	next := func() uint64 { // xorshift, deterministic and allocation-free
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return rnd
	}
	for d := 0; d < n; d++ {
		for t := range seen {
			delete(seen, t)
		}
		for i := 0; i < perDoc; i++ {
			var t bat.OID
			if i < 3 {
				t = bat.OID(next() % common)
			} else {
				t = bat.OID(common + next()%uint64(nterms-common))
			}
			if seen[t] {
				continue
			}
			seen[t] = true
			termOf = append(termOf, t)
			docOf = append(docOf, bat.OID(d))
			belOf = append(belOf, ir.DefaultBelief+float64(next()%1000)/1000*0.55)
		}
	}
	ix := e11Assemble(n, nterms, termOf, docOf, belOf)
	e11Cache[n] = ix
	return ix
}

// e11Assemble builds both physical layouts from generated postings
// triples. Docs must ascend per term — the generation loops iterate d
// ascending, so the counting sort by term preserves that order.
func e11Assemble(n, nterms int, termOf, docOf []bat.OID, belOf []float64) *e11Index {
	p := len(termOf)
	starts := make([]int64, nterms+1)
	for _, t := range termOf {
		starts[t+1]++
	}
	for t := 1; t <= nterms; t++ {
		starts[t] += starts[t-1]
	}
	pd := make([]bat.OID, p)
	pb := make([]float64, p)
	mx := make([]float64, nterms)
	cur := append([]int64(nil), starts...)
	for i := 0; i < p; i++ {
		t := termOf[i]
		at := cur[t]
		cur[t]++
		pd[at] = docOf[i]
		pb[at] = belOf[i]
		if belOf[i] > mx[t] {
			mx[t] = belOf[i]
		}
	}

	ix := &e11Index{
		n:       n,
		nterms:  nterms,
		start:   adoptVoid(bat.ColumnOfInts(starts)),
		postDoc: adoptVoid(bat.ColumnOfOIDs(pd)),
		postBel: adoptVoid(bat.ColumnOfFloats(pb)),
		maxBel:  adoptVoid(bat.ColumnOfFloats(mx)),
		revTerm: &bat.BAT{Head: bat.ColumnOfOIDs(termOf), Tail: bat.NewVoid(0, p)},
		doc:     adoptVoid(bat.ColumnOfOIDs(docOf)),
		bel:     adoptVoid(bat.ColumnOfFloats(belOf)),
		domain:  &bat.BAT{Head: bat.NewVoid(0, n), Tail: bat.NewVoid(0, n)},
	}
	ix.domain.HSorted, ix.domain.HKey = true, true
	return ix
}

var (
	e11SkewMu    sync.Mutex
	e11SkewCache = map[int]*e11Index{}
)

// mkE11SkewedIndex builds the skewed twin of the E11 corpus: term
// popularity follows a zipf-ish law (df(t) ∝ 1/t, the shape mkcorpus
// -class-zipf gives the demo collection and real collections have), and
// beliefs sit exactly flat at the default except on "hot" documents —
// 512-doc windows every 512k doc ids — whose postings spike with varied
// amplitude in [0.275, 0.55) so scores don't tie. Real collections
// cluster quality the same way (a crawl's authoritative sites arrive
// together), and the clustering is what makes block-max bite: flat
// postings contribute zero mass above the fill base, so a block without
// a hot doc has a zero bound, and the hot windows coincide across
// terms. The moment θ holds a spike score, the scan reduces to a
// directory walk that decodes only the shared hot blocks. The uniform
// fixture is block-max's worst case — every block's bound looks alike,
// so a rising θ separates nothing; this one is the regime the threshold
// lifecycle targets, and what a warm (memo-seeded) or streamed θ buys
// is reaching that regime from posting one instead of after the
// heap-filling prefix has decoded a third of the corpus.
func mkE11SkewedIndex(n int) *e11Index {
	e11SkewMu.Lock()
	defer e11SkewMu.Unlock()
	if ix, ok := e11SkewCache[n]; ok {
		return ix
	}
	const perDoc = 8
	nterms := 20000
	if nterms > n/2+51 {
		nterms = n/2 + 51
	}
	p := n * perDoc
	termOf := make([]bat.OID, 0, p)
	docOf := make([]bat.OID, 0, p)
	belOf := make([]float64, 0, p)
	seen := map[bat.OID]bool{}
	rnd := uint64(67890)
	next := func() uint64 { // xorshift, deterministic and allocation-free
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return rnd
	}
	lnT := math.Log(float64(nterms))
	for d := 0; d < n; d++ {
		// hot windows: 512 docs every 512k, offset so the first sits a
		// third of a million docs in — a cold scan pays a long flat
		// prefix before θ first rises, exactly what a seed removes
		w := d % 524288
		hot := w >= 131072 && w < 131584
		for t := range seen {
			delete(seen, t)
		}
		for i := 0; i < perDoc; i++ {
			// log-uniform draw: P(term < x) = ln(x)/ln(nterms), so term t
			// collects df ∝ 1/t postings — the zipf head/tail split.
			u := float64(next()%(1<<20)) / (1 << 20)
			ti := int(math.Exp(u*lnT)) - 1
			if ti >= nterms {
				ti = nterms - 1
			}
			t := bat.OID(ti)
			if seen[t] {
				continue
			}
			seen[t] = true
			bel := ir.DefaultBelief
			if hot {
				bel += 0.275 + float64(next()%1024)/1024*0.275
			}
			termOf = append(termOf, t)
			docOf = append(docOf, bat.OID(d))
			belOf = append(belOf, bel)
		}
	}
	ix := e11Assemble(n, nterms, termOf, docOf, belOf)
	e11SkewCache[n] = ix
	return ix
}

func adoptVoid(tail *bat.Column) *bat.BAT {
	b := &bat.BAT{Head: bat.NewVoid(0, tail.Len()), Tail: tail}
	b.HSorted, b.HKey = true, true
	return b
}

// e11Queries mixes common (high-df) and rare terms.
func e11Queries(ix *e11Index) [][]bat.OID {
	return [][]bat.OID{
		{1, 2, 3},
		{0, 7, 99, 1234 % bat.OID(ix.nterms)},
		{5, 60, 61, 62, 63},
		{10, 11},
		{4, 8, 15, 16, 23, 42},
		{20, 200 % bat.OID(ix.nterms), 2000 % bat.OID(ix.nterms)},
		{30, 31, 32, 33},
		{6, 9, 12},
		{44, 45, 46, 47, 48},
	}
}

// e11Exhaustive is the legacy pipeline: score matches, fill the whole
// domain with the default, sort everything descending, cut at k.
func e11Exhaustive(ix *e11Index, q []bat.OID, k int) (*bat.BAT, error) {
	beliefs, counts, err := bat.GetBL(ix.revTerm, ix.doc, ix.bel, q)
	if err != nil {
		return nil, err
	}
	scores, err := bat.SumBeliefs(beliefs, counts, len(q), ir.DefaultBelief)
	if err != nil {
		return nil, err
	}
	filled, err := bat.Fill(scores, ix.domain, float64(len(q))*ir.DefaultBelief)
	if err != nil {
		return nil, err
	}
	return bat.TopN(filled, k)
}

func e11Pruned(ix *e11Index, q []bat.OID, k int) (*bat.BAT, error) {
	return bat.PrunedTopK(ix.start, ix.postDoc, ix.postBel, ix.maxBel, q, nil, ir.DefaultBelief, k, ix.domain)
}

// ---- block-compressed layout (the store codec, at the physical layer) ----

var (
	e11BlkMu    sync.Mutex
	e11BlkCache = map[*e11Index]*bat.BlockSegColumns{}
)

// mkE11Blocks encodes the raw fixture into the block layout once per
// fixture (the uniform and skewed corpora share sizes, so the cache keys
// on the fixture identity).
func mkE11Blocks(ix *e11Index) *bat.BlockSegColumns {
	e11BlkMu.Lock()
	defer e11BlkMu.Unlock()
	if c, ok := e11BlkCache[ix]; ok {
		return c
	}
	c, err := bat.EncodeBlockPostings(ix.start, ix.postDoc, nil, ix.postBel)
	if err != nil {
		panic(err)
	}
	e11BlkCache[ix] = c
	return c
}

func e11BlockSeg(c *bat.BlockSegColumns) bat.PostingsSeg {
	return bat.PostingsSeg{
		Start: c.Start, MaxBel: c.MaxBel,
		BlkStart: c.BlkStart, BlkDir: c.BlkDir, BlkDoc: c.BlkDoc,
		BlkBDir: c.BlkBDir, BlkBel: c.BlkBel,
	}
}

func e11PrunedBlock(ix *e11Index, q []bat.OID, k int) (*bat.BAT, error) {
	seg := e11BlockSeg(mkE11Blocks(ix))
	return bat.PrunedTopKSegs([]bat.PostingsSeg{seg}, q, nil, ir.DefaultBelief, k, ix.domain, nil)
}

// e11PrunedBlockTheta is e11PrunedBlock with a caller-owned threshold —
// the warm-θ entry point. Seed it with a completed run's terminal bound
// (what core's θ-memo does for repeat queries) and the scan prunes from
// posting one; pass it fresh and its terminal Load() is that bound.
func e11PrunedBlockTheta(ix *e11Index, q []bat.OID, k int, th *bat.TopKThreshold) (*bat.BAT, error) {
	seg := e11BlockSeg(mkE11Blocks(ix))
	return bat.PrunedTopKSegs([]bat.PostingsSeg{seg}, q, nil, ir.DefaultBelief, k, ix.domain, th)
}

// e11Footprint sizes both layouts of the same postings: every column a
// pruned scan reads (offsets, postings payloads, per-term bounds).
func e11Footprint(ix *e11Index) (rawBytes, blockBytes int64) {
	for _, b := range []*bat.BAT{ix.start, ix.postDoc, ix.postBel, ix.maxBel} {
		rawBytes += b.MemBytes()
	}
	c := mkE11Blocks(ix)
	for _, b := range []*bat.BAT{c.Start, c.BlkStart, c.BlkDir, c.BlkDoc, c.BlkBDir, c.BlkBel, c.MaxBel} {
		blockBytes += b.MemBytes()
	}
	return rawBytes, blockBytes
}

// e11DecodeThroughput decodes every doc block of the fixture once and
// reports postings decoded per second — the sequential decompression
// speed a pruned scan pays when it cannot skip.
func e11DecodeThroughput(ix *e11Index) (postings int64, perSec float64) {
	bp, err := bat.NewBlockPostings(func() (a, b, c2, d, e, f, g *bat.BAT) {
		c := mkE11Blocks(ix)
		return c.Start, c.BlkStart, c.BlkDir, c.BlkDoc, c.BlkBDir, c.BlkBel, c.MaxBel
	}())
	if err != nil {
		panic(err)
	}
	docs := make([]bat.OID, bat.PostingsBlockSize)
	tfs := make([]int64, bat.PostingsBlockSize)
	t0 := time.Now()
	for t := 0; t < bp.NTerms(); t++ {
		blo, bhi := bp.TermBlocks(t)
		for b := blo; b < bhi; b++ {
			n, err := bp.DecodeDocBlock(t, b, docs, tfs)
			if err != nil {
				panic(err)
			}
			postings += int64(n)
		}
	}
	el := time.Since(t0).Seconds()
	return postings, float64(postings) / el
}

// e11N returns the benchmark collection size (override with E11_N).
func e11N() int {
	if s := os.Getenv("E11_N"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 1_000_000
}

func BenchmarkE11_ExhaustiveTopK(b *testing.B) {
	ix := mkE11Index(e11N())
	qs := e11Queries(ix)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e11Exhaustive(ix, qs[i%len(qs)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11_PrunedTopK(b *testing.B) {
	ix := mkE11Index(e11N())
	qs := e11Queries(ix)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e11Pruned(ix, qs[i%len(qs)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11_PrunedTopKBlock(b *testing.B) {
	ix := mkE11Index(e11N())
	mkE11Blocks(ix) // encode outside the timer
	qs := e11Queries(ix)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e11PrunedBlock(ix, qs[i%len(qs)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// TestE11BlockEqualsRaw pins, at CI scale, that the block-compressed
// scan returns the raw pruned scan's ranking BUN-for-BUN, and that the
// block layout is actually smaller.
func TestE11BlockEqualsRaw(t *testing.T) {
	n := 200_000
	if testing.Short() {
		n = 20_000
	}
	ix := mkE11Index(n)
	for _, q := range e11Queries(ix) {
		for _, k := range []int{1, 10, 100} {
			want, err := e11Pruned(ix, q, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e11PrunedBlock(ix, q, k)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != want.Len() {
				t.Fatalf("q=%v k=%d: %d hits vs %d", q, k, got.Len(), want.Len())
			}
			for i := 0; i < want.Len(); i++ {
				if got.Head.OIDAt(i) != want.Head.OIDAt(i) || got.Tail.FloatAt(i) != want.Tail.FloatAt(i) {
					t.Fatalf("q=%v k=%d rank %d: block (%d, %v), raw (%d, %v)",
						q, k, i, got.Head.OIDAt(i), got.Tail.FloatAt(i), want.Head.OIDAt(i), want.Tail.FloatAt(i))
				}
			}
		}
	}
	raw, blk := e11Footprint(ix)
	if blk >= raw {
		t.Errorf("block layout %d bytes >= raw %d", blk, raw)
	}
	t.Logf("footprint n=%d: raw %d bytes, block %d bytes (%.2fx)", n, raw, blk, float64(raw)/float64(blk))
}

// TestE11PrunedEqualsExhaustiveShape pins, at a size CI can afford, that
// the two pipelines agree on the top-k set and scores. (Order within exact
// ties differs only in how TopN's stable sort breaks them; the comparison
// is on the canonical ranking, recomputed with the OID tie rule.)
func TestE11PrunedEqualsExhaustiveShape(t *testing.T) {
	n := 200_000
	if testing.Short() {
		n = 20_000
	}
	ix := mkE11Index(n)
	for _, q := range e11Queries(ix) {
		const k = 10
		pruned, err := e11Pruned(ix, q, k)
		if err != nil {
			t.Fatal(err)
		}
		want := e11CanonicalTopK(ix, q, k)
		if pruned.Len() != len(want) {
			t.Fatalf("q=%v: %d hits, want %d", q, pruned.Len(), len(want))
		}
		for i := range want {
			if uint64(pruned.Head.OIDAt(i)) != want[i].Doc || pruned.Tail.FloatAt(i) != want[i].Score {
				t.Fatalf("q=%v rank %d: got (%d, %v), want (%d, %v)",
					q, i, pruned.Head.OIDAt(i), pruned.Tail.FloatAt(i), want[i].Doc, want[i].Score)
			}
		}
	}
}

// e11CanonicalTopK computes the exhaustive ranking serially with the
// canonical fold and tie order.
func e11CanonicalTopK(ix *e11Index, q []bat.OID, k int) []ir.Ranked {
	old := bat.SetParallelism(1)
	defer bat.SetParallelism(old)
	beliefs, counts, err := bat.GetBL(ix.revTerm, ix.doc, ix.bel, q)
	if err != nil {
		panic(err)
	}
	scores, err := bat.SumBeliefs(beliefs, counts, len(q), ir.DefaultBelief)
	if err != nil {
		panic(err)
	}
	s := make(ir.Scores, ix.n)
	for i := 0; i < scores.Len(); i++ {
		s[uint64(scores.Head.OIDAt(i))] = scores.Tail.FloatAt(i)
	}
	base := float64(len(q)) * ir.DefaultBelief
	for d := 0; d < ix.n; d++ {
		if _, ok := s[uint64(d)]; !ok {
			s[uint64(d)] = base
		}
	}
	return ir.Rank(s, k)
}

// TestEmitQueryBenchJSON measures p50 query latency of both paths and, when
// BENCH_QUERIES_JSON names a file, writes the numbers there (the CI
// bench-smoke job archives it as the perf trajectory).
func TestEmitQueryBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_QUERIES_JSON")
	if path == "" {
		t.Skip("BENCH_QUERIES_JSON not set")
	}
	ix := mkE11Index(e11N())
	qs := e11Queries(ix)
	const k = 10
	// medianNs: best-of-reps per query, median across queries. The host
	// is shared, so cheap paths take more reps to shake scheduling noise
	// out of the best; only the exhaustive path (hundreds of ms per run)
	// stays at 3.
	medianNs := func(reps int, run func(qi int, q []bat.OID) error) int64 {
		perQuery := make([]int64, 0, len(qs))
		for qi, q := range qs {
			best := int64(math.MaxInt64)
			for rep := 0; rep < reps; rep++ {
				t0 := time.Now()
				if err := run(qi, q); err != nil {
					t.Fatal(err)
				}
				if d := time.Since(t0).Nanoseconds(); d < best {
					best = d
				}
			}
			perQuery = append(perQuery, best)
		}
		sort.Slice(perQuery, func(i, j int) bool { return perQuery[i] < perQuery[j] })
		return perQuery[len(perQuery)/2]
	}
	// skipRate reduces BlockScanStats deltas around a timed run.
	skipRateOf := func(dec0, skip0, dec1, skip1 int64) float64 {
		if total := (dec1 - dec0) + (skip1 - skip0); total > 0 {
			return float64(skip1-skip0) / float64(total)
		}
		return 0
	}
	const nShards = 8
	shards := mkE11Shards(ix, nShards)
	mkE11Blocks(ix) // encode outside the timers
	exh := medianNs(3, func(_ int, q []bat.OID) error { _, err := e11Exhaustive(ix, q, k); return err })
	prn := medianNs(7, func(_ int, q []bat.OID) error { _, err := e11Pruned(ix, q, k); return err })
	shd := medianNs(7, func(_ int, q []bat.OID) error { _, err := e11Sharded(shards, q, k); return err })
	dec0, skip0 := bat.BlockScanStats()
	blk := medianNs(7, func(_ int, q []bat.OID) error { _, err := e11PrunedBlock(ix, q, k); return err })
	dec1, skip1 := bat.BlockScanStats()
	rawBytes, blkBytes := e11Footprint(ix)
	decPostings, decPerSec := e11DecodeThroughput(ix)
	skipRate := skipRateOf(dec0, skip0, dec1, skip1)

	// Threshold-lifecycle rows run on the skewed twin of the corpus (the
	// regime pruning targets; the uniform fixture is block-max's worst
	// case). Cold block scan, the warm (memo-seeded) repeat, and the
	// scatter with shared vs isolated thresholds — the in-process analog
	// of the router's streamed-θ A/B (-no-theta-stream).
	six := mkE11SkewedIndex(ix.n)
	sShards := mkE11Shards(six, nShards)
	mkE11Blocks(six) // encode outside the timers
	cdec0, cskip0 := bat.BlockScanStats()
	sCold := medianNs(7, func(_ int, q []bat.OID) error {
		_, err := e11PrunedBlockTheta(six, q, k, bat.NewTopKThreshold())
		return err
	})
	cdec1, cskip1 := bat.BlockScanStats()
	terminal := make([]float64, len(qs))
	for qi, q := range qs {
		th := bat.NewTopKThreshold()
		if _, err := e11PrunedBlockTheta(six, q, k, th); err != nil {
			t.Fatal(err)
		}
		terminal[qi] = th.Load()
	}
	wdec0, wskip0 := bat.BlockScanStats()
	warm := medianNs(9, func(qi int, q []bat.OID) error {
		th := bat.NewTopKThreshold()
		th.Raise(terminal[qi])
		_, err := e11PrunedBlockTheta(six, q, k, th)
		return err
	})
	wdec1, wskip1 := bat.BlockScanStats()
	sShared := medianNs(7, func(_ int, q []bat.OID) error { _, err := e11Sharded(sShards, q, k); return err })
	sIsolated := medianNs(7, func(_ int, q []bat.OID) error { _, err := e11ShardedStatic(sShards, q, k); return err })
	out := map[string]any{
		"experiment":        "E11",
		"n_docs":            ix.n,
		"k":                 k,
		"queries":           len(qs),
		"p50_exhaustive_ns": exh,
		"p50_pruned_ns":     prn,
		"speedup":           fmt.Sprintf("%.1f", float64(exh)/float64(prn)),
		// sharded-vs-single: the scatter-gather merge with a shared
		// pruning threshold over 8 document shards, against the single
		// pruned scan — the overhead (or win) of going placement-aware.
		"shards":            nShards,
		"p50_sharded_ns":    shd,
		"sharded_vs_single": fmt.Sprintf("%.2f", float64(shd)/float64(prn)),
		"sharded_vs_exh":    fmt.Sprintf("%.1f", float64(exh)/float64(shd)),
		// block codec: same scan over the compressed layout, plus the
		// codec's standalone numbers (footprint and sequential decode).
		"p50_pruned_block_ns":   blk,
		"block_vs_raw_p50":      fmt.Sprintf("%.2f", float64(blk)/float64(prn)),
		"postings_raw_bytes":    rawBytes,
		"postings_block_bytes":  blkBytes,
		"compression_ratio":     fmt.Sprintf("%.2f", float64(rawBytes)/float64(blkBytes)),
		"block_skip_rate":       fmt.Sprintf("%.3f", skipRate),
		"decode_postings":       decPostings,
		"decode_postings_per_s": fmt.Sprintf("%.0f", decPerSec),
		// threshold lifecycle (skewed corpus): cold block scan vs the
		// warm repeat seeded with the memoised terminal θ, and the
		// scatter with a shared threshold vs isolated per-shard bounds.
		"skewed_p50_block_ns":        sCold,
		"skewed_block_skip_rate":     fmt.Sprintf("%.3f", skipRateOf(cdec0, cskip0, cdec1, cskip1)),
		"p50_warm_theta_ns":          warm,
		"warm_theta_speedup":         fmt.Sprintf("%.1f", float64(sCold)/float64(warm)),
		"warm_theta_block_skip_rate": fmt.Sprintf("%.3f", skipRateOf(wdec0, wskip0, wdec1, wskip1)),
		"p50_scatter_shared_ns":      sShared,
		"p50_scatter_isolated_ns":    sIsolated,
		"scatter_shared_gain":        fmt.Sprintf("%.2f", float64(sIsolated)/float64(sShared)),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("E11 n=%d k=%d: exhaustive p50 %.2fms, pruned p50 %.3fms (%.1fx), sharded(%d) p50 %.3fms",
		ix.n, k, float64(exh)/1e6, float64(prn)/1e6, float64(exh)/float64(prn), nShards, float64(shd)/1e6)
	t.Logf("E11 block codec: p50 %.3fms (%.2fx raw pruned), %d->%d bytes (%.2fx), skip rate %.1f%%, decode %.0f postings/s",
		float64(blk)/1e6, float64(blk)/float64(prn), rawBytes, blkBytes,
		float64(rawBytes)/float64(blkBytes), 100*skipRate, decPerSec)
	t.Logf("E11 threshold lifecycle (skewed): cold p50 %.3fms, warm-θ p50 %.1fµs (%.1fx), scatter shared %.3fms vs isolated %.3fms (%.2fx)",
		float64(sCold)/1e6, float64(warm)/1e3, float64(sCold)/float64(warm),
		float64(sShared)/1e6, float64(sIsolated)/1e6, float64(sIsolated)/float64(sShared))
}

// BenchmarkScoresPooling quantifies the sync.Pool satellite: the same
// #sum combination with pooled Scores maps (the production path, maps
// released after use) vs fresh map allocation per query.
func BenchmarkScoresPooling(b *testing.B) {
	mk := func(n int, pooled bool) ir.Scores {
		var s ir.Scores
		if pooled {
			s = ir.NewScores()
		} else {
			s = make(ir.Scores)
		}
		for d := 0; d < n; d++ {
			s[uint64(d)] = 0.4 + float64(d%100)/250
		}
		return s
	}
	const n = 20000
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a, c := mk(n, true), mk(n, true)
			out, err := ir.CombineSum([]ir.Scores{a, c}, []float64{0.4, 0.4})
			if err != nil {
				b.Fatal(err)
			}
			ir.ReleaseScores(a)
			ir.ReleaseScores(c)
			ir.ReleaseScores(out)
		}
	})
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a, c := mk(n, false), mk(n, false)
			out := make(ir.Scores, len(a))
			for d := range a {
				out[d] = (a[d] + c[d]) / 2
			}
			_ = out
		}
	})
}

// ---- sharded scatter-gather vs single store (PR 4) ----

// e11Shard is one document-range slice of the e11 postings — the physical
// shape of one shard's CONTREP after a sharded index build.
type e11Shard struct {
	start, postDoc, postBel, maxBel, domain *bat.BAT
}

// mkE11Shards slices the corpus into n doc-range shards with shard-local
// max-belief bounds. (The engine shards by URL hash; doc ranges give the
// same per-shard shape with a cheaper fixture.)
func mkE11Shards(ix *e11Index, n int) []e11Shard {
	starts := ix.start.Tail.Ints()
	docs := ix.postDoc.Tail.OIDs()
	bels := ix.postBel.Tail.Floats()
	shards := make([]e11Shard, n)
	for s := 0; s < n; s++ {
		lo := bat.OID(uint64(ix.n) * uint64(s) / uint64(n))
		hi := bat.OID(uint64(ix.n) * uint64(s+1) / uint64(n))
		st := make([]int64, 0, ix.nterms+1)
		var pd []bat.OID
		var pb []float64
		mx := make([]float64, ix.nterms)
		for t := 0; t < ix.nterms; t++ {
			st = append(st, int64(len(pd)))
			tlo, thi := int(starts[t]), int(starts[t+1])
			p := tlo + sort.Search(thi-tlo, func(i int) bool { return docs[tlo+i] >= lo })
			for ; p < thi && docs[p] < hi; p++ {
				pd = append(pd, docs[p])
				pb = append(pb, bels[p])
				if bels[p] > mx[t] {
					mx[t] = bels[p]
				}
			}
		}
		st = append(st, int64(len(pd)))
		dom := &bat.BAT{Head: bat.NewVoid(lo, int(hi-lo)), Tail: bat.NewVoid(lo, int(hi-lo))}
		dom.HSorted, dom.HKey = true, true
		shards[s] = e11Shard{
			start:   adoptVoid(bat.ColumnOfInts(st)),
			postDoc: adoptVoid(bat.ColumnOfOIDs(pd)),
			postBel: adoptVoid(bat.ColumnOfFloats(pb)),
			maxBel:  adoptVoid(bat.ColumnOfFloats(mx)),
			domain:  dom,
		}
	}
	return shards
}

type e11Hit struct {
	doc   bat.OID
	score float64
}

func e11HitWorse(a, b e11Hit) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.doc > b.doc
}

// e11Sharded runs the scatter-gather path: every shard scans concurrently
// with ONE shared pruning threshold, local top-ks merge through the
// bounded selector — exactly core.ShardedEngine's per-query dance at the
// physical layer. In the distributed topology the shared threshold is
// what RaiseTheta streaming approximates over the network.
func e11Sharded(shards []e11Shard, q []bat.OID, k int) ([]e11Hit, error) {
	shared := bat.NewTopKThreshold()
	return e11Scatter(shards, q, k, func(int) *bat.TopKThreshold { return shared })
}

// e11ShardedStatic is the same scatter with per-shard isolated
// thresholds: no bound ever crosses shard boundaries, the way a
// distributed scatter behaves under mirrord -no-theta-stream with an
// empty memo (each leg departs with a -Inf floor and never hears the
// router's rising bound). The A/B against e11Sharded measures what
// threshold sharing buys the scatter.
func e11ShardedStatic(shards []e11Shard, q []bat.OID, k int) ([]e11Hit, error) {
	return e11Scatter(shards, q, k, func(int) *bat.TopKThreshold { return bat.NewTopKThreshold() })
}

func e11Scatter(shards []e11Shard, q []bat.OID, k int, thetaOf func(s int) *bat.TopKThreshold) ([]e11Hit, error) {
	results := make([]*bat.BAT, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for s := range shards {
		th := thetaOf(s)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sh := shards[s]
			results[s], errs[s] = bat.PrunedTopKShared(
				sh.start, sh.postDoc, sh.postBel, sh.maxBel, q, nil, ir.DefaultBelief, k, sh.domain, th)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := bat.NewBoundedTopK(k, e11HitWorse)
	for _, r := range results {
		for i := 0; i < r.Len(); i++ {
			merged.Offer(e11Hit{doc: r.Head.OIDAt(i), score: r.Tail.FloatAt(i)})
		}
	}
	return merged.Ranked(), nil
}

// TestE11ShardedEqualsSingle pins, at CI scale, that the scatter-gather
// merge with a shared threshold returns the single scan BUN-for-BUN.
func TestE11ShardedEqualsSingle(t *testing.T) {
	n := 200_000
	if testing.Short() {
		n = 20_000
	}
	ix := mkE11Index(n)
	shards := mkE11Shards(ix, 8)
	const k = 10
	for _, q := range e11Queries(ix) {
		want, err := e11Pruned(ix, q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e11Sharded(shards, q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != want.Len() {
			t.Fatalf("q=%v: %d hits vs %d", q, len(got), want.Len())
		}
		for i, h := range got {
			if h.doc != want.Head.OIDAt(i) || h.score != want.Tail.FloatAt(i) {
				t.Fatalf("q=%v rank %d: sharded (%d, %v), single (%d, %v)",
					q, i, h.doc, h.score, want.Head.OIDAt(i), want.Tail.FloatAt(i))
			}
		}
	}
}

func BenchmarkE11_ShardedTopK(b *testing.B) {
	ix := mkE11Index(e11N())
	shards := mkE11Shards(ix, 8)
	qs := e11Queries(ix)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e11Sharded(shards, qs[i%len(qs)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- threshold lifecycle (skewed corpus: the regime pruning targets) ----

// TestE11WarmThetaEqualsCold pins the exactness invariant the θ-memo
// leans on, at CI scale on the skewed corpus: a scan seeded with a
// completed run's terminal threshold returns the cold ranking
// BUN-for-BUN (the seed is a lower bound on the k-th best score, so it
// only skips non-contenders), and both scatter flavours — shared θ and
// isolated per-shard θ — equal the single scan.
func TestE11WarmThetaEqualsCold(t *testing.T) {
	n := 200_000
	if testing.Short() {
		n = 20_000
	}
	ix := mkE11SkewedIndex(n)
	shards := mkE11Shards(ix, 8)
	for _, q := range e11Queries(ix) {
		for _, k := range []int{1, 10, 100} {
			cold := bat.NewTopKThreshold()
			want, err := e11PrunedBlockTheta(ix, q, k, cold)
			if err != nil {
				t.Fatal(err)
			}
			warm := bat.NewTopKThreshold()
			warm.Raise(cold.Load())
			got, err := e11PrunedBlockTheta(ix, q, k, warm)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != want.Len() {
				t.Fatalf("q=%v k=%d: warm %d hits vs cold %d", q, k, got.Len(), want.Len())
			}
			for i := 0; i < want.Len(); i++ {
				if got.Head.OIDAt(i) != want.Head.OIDAt(i) || got.Tail.FloatAt(i) != want.Tail.FloatAt(i) {
					t.Fatalf("q=%v k=%d rank %d: warm (%d, %v), cold (%d, %v)",
						q, k, i, got.Head.OIDAt(i), got.Tail.FloatAt(i), want.Head.OIDAt(i), want.Tail.FloatAt(i))
				}
			}
		}
		const k = 10
		single, err := e11Pruned(ix, q, k)
		if err != nil {
			t.Fatal(err)
		}
		for flavour, scatter := range map[string]func([]e11Shard, []bat.OID, int) ([]e11Hit, error){
			"shared": e11Sharded, "isolated": e11ShardedStatic,
		} {
			hits, err := scatter(shards, q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(hits) != single.Len() {
				t.Fatalf("q=%v %s: %d hits vs %d", q, flavour, len(hits), single.Len())
			}
			for i, h := range hits {
				if h.doc != single.Head.OIDAt(i) || h.score != single.Tail.FloatAt(i) {
					t.Fatalf("q=%v %s rank %d: (%d, %v) vs single (%d, %v)",
						q, flavour, i, h.doc, h.score, single.Head.OIDAt(i), single.Tail.FloatAt(i))
				}
			}
		}
	}
}

// BenchmarkE11_WarmThetaTopKBlock is the repeat-query path: the block
// scan seeded with the terminal θ a prior identical query left in the
// memo. The gap to BenchmarkE11_PrunedTopKBlock is what the θ-memo buys.
func BenchmarkE11_WarmThetaTopKBlock(b *testing.B) {
	ix := mkE11SkewedIndex(e11N())
	mkE11Blocks(ix) // encode outside the timer
	qs := e11Queries(ix)
	terminal := make([]float64, len(qs))
	for qi, q := range qs {
		th := bat.NewTopKThreshold()
		if _, err := e11PrunedBlockTheta(ix, q, 10, th); err != nil {
			b.Fatal(err)
		}
		terminal[qi] = th.Load()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th := bat.NewTopKThreshold()
		th.Raise(terminal[i%len(qs)])
		if _, err := e11PrunedBlockTheta(ix, qs[i%len(qs)], 10, th); err != nil {
			b.Fatal(err)
		}
	}
}
