// Command mediaserver runs the media server of Figure 1: an HTTP server
// owning the (synthetic) multimedia footage. It optionally registers with
// the distributed data dictionary so the other parties can find it.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"

	"mirror/internal/corpus"
	"mirror/internal/dict"
	"mirror/internal/mediaserver"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8640", "listen address")
		n        = flag.Int("n", 60, "collection size")
		seed     = flag.Int64("seed", 1, "collection seed")
		rate     = flag.Float64("annotate", 0.7, "annotated fraction")
		dictAddr = flag.String("dict", "", "data dictionary address to register with (optional)")
	)
	flag.Parse()

	items := corpus.Generate(corpus.Config{N: *n, W: 64, H: 64, Seed: *seed, AnnotateRate: *rate})
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mediaserver: %v", err)
	}
	if *dictAddr != "" {
		dc, err := dict.Dial(*dictAddr)
		if err != nil {
			log.Fatalf("mediaserver: %v", err)
		}
		if err := dc.Register(dict.DaemonInfo{
			Name: "mediaserver", Kind: "mediaserver", Addr: l.Addr().String(),
		}); err != nil {
			log.Fatalf("mediaserver: register: %v", err)
		}
		dc.Close()
	}
	fmt.Printf("mediaserver: serving %d images at http://%s (index at /index)\n", len(items), l.Addr())
	log.Fatal(http.Serve(l, mediaserver.NewServer(items)))
}
