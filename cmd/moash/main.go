// Command moash is the interactive Moa shell of the Mirror DBMS. It builds
// (or loads) a demo database and evaluates Moa statements; \mil shows the
// flattened MIL program of the last query, like the original system's
// debugging mode.
//
// Commands:
//
//	define ... ;                 schema definition
//	map[...](...);               any Moa query (use $q to bind query terms)
//	\rank <text>                 ranked annotation retrieval
//	\dual <text>                 dual-coding retrieval via the thesaurus
//	\terms <text>                thesaurus expansion of a text query
//	\q <w1> <w2> ...             set the `query` parameter terms
//	\topk <n>                    ranked cut for ad-hoc queries (pushed
//	                             into the plan optimizer; 0 = full result)
//	\plan <query;>               show the optimised logical plan
//	\mil                         toggle MIL display
//	\milrun <stmt;>              execute raw MIL against the stored BATs
//	                             (bindings persist across \milrun lines;
//	                             every builtin is documented in docs/MIL.md)
//	\sets                        list defined sets
//	\shards                      sharded-layout introspection (shard count,
//	                             per-shard document/BAT counts, store dirs)
//	\segments                    index-segment introspection: the serving
//	                             epoch, per-CONTREP segment directory
//	                             (docs/postings/terms per segment), and
//	                             pending (unindexed) document counts
//	\stats                       serving state: ingested/pending document
//	                             counts, the serving epoch stamp that
//	                             query answers carry over RPC, per-store
//	                             postings footprint (compressed vs raw
//	                             bytes) and block decode/skip counters
//	\help, \quit
//
// With -shards N the demo collection is hash-partitioned across N
// in-memory stores and queries scatter-gather through the sharded engine
// (the differential guarantee makes the results indistinguishable from
// the unsharded shell). -load accepts a sharded store root (written by
// mirrord -shards) as well as a standalone snapshot. In sharded mode,
// query plumbing that is inherently single-store — \mil, \milrun, \plan,
// define — runs against shard 0 and says so.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mirror/internal/bat"
	"mirror/internal/core"
	"mirror/internal/corpus"
	"mirror/internal/ir"
	"mirror/internal/mil"
	"mirror/internal/moa"
)

func main() {
	var (
		n       = flag.Int("n", 40, "demo collection size")
		seed    = flag.Int64("seed", 1, "demo collection seed")
		load    = flag.String("load", "", "load a saved database directory (snapshot or sharded store root) instead of generating")
		noPipe  = flag.Bool("no-pipeline", false, "skip the content pipeline (text-only)")
		shardsN = flag.Int("shards", 0, "shard the demo collection across N in-memory stores (0 = unsharded)")
		cacheB  = flag.Int64("query-cache", 0, "bytes of epoch-keyed query result cache for \\rank/\\dual (0 disables); invalidated automatically when \\refresh publishes a new epoch")
		codecF  = flag.String("store-codec", "block", "postings segment layout: block (delta-compressed blocks with pruning bounds) or raw (8-byte columns)")
	)
	flag.Parse()

	var r core.Retriever
	var sharded *core.ShardedEngine
	switch {
	case *load != "":
		if _, err := os.Stat(*load + "/shard-000"); err == nil {
			e, stats, err := core.OpenShardedPersistent(core.ShardedPersistOptions{Dir: *load, StoreCodec: *codecF})
			if err != nil {
				log.Fatalf("moash: %v", err)
			}
			sharded, r = e, e
			fmt.Printf("moash: opened sharded store %s (%d shards, %d items)\n", *load, stats.Shards, e.Size())
		} else {
			m, err := core.Load(*load)
			if err != nil {
				log.Fatalf("moash: %v", err)
			}
			if err := m.SetStoreCodec(*codecF); err != nil {
				log.Fatalf("moash: %v", err)
			}
			r = m
			fmt.Printf("moash: loaded %d items from %s\n", m.Size(), *load)
		}
	default:
		fmt.Printf("moash: generating demo collection (n=%d, seed=%d)...\n", *n, *seed)
		items := corpus.Generate(corpus.Config{N: *n, W: 64, H: 64, Seed: *seed, AnnotateRate: 0.7})
		if *shardsN > 0 {
			e, err := core.NewSharded(*shardsN)
			if err != nil {
				log.Fatalf("moash: %v", err)
			}
			if err := e.SetStoreCodec(*codecF); err != nil {
				log.Fatalf("moash: %v", err)
			}
			sharded, r = e, e
		} else {
			m, err := core.New()
			if err != nil {
				log.Fatalf("moash: %v", err)
			}
			if err := m.SetStoreCodec(*codecF); err != nil {
				log.Fatalf("moash: %v", err)
			}
			r = m
		}
		for _, it := range items {
			if err := r.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
				log.Fatalf("moash: %v", err)
			}
		}
		if !*noPipe {
			fmt.Println("moash: running extraction pipeline (segmentation, features, AutoClass, thesaurus)...")
			if err := r.BuildContentIndex(core.DefaultIndexOptions()); err != nil {
				log.Fatalf("moash: %v", err)
			}
		}
	}
	if sharded != nil {
		sharded.SetResultCache(*cacheB)
	} else if m, ok := r.(*core.Mirror); ok {
		m.SetResultCache(*cacheB)
	}
	repl(r, sharded)
}

// localStore returns the store backing single-store plumbing (\milrun,
// \plan, define): the Mirror itself, or shard 0 of a sharded engine.
func localStore(r core.Retriever, sharded *core.ShardedEngine) *core.Mirror {
	if sharded != nil {
		return sharded.Shard(0)
	}
	return r.(*core.Mirror)
}

func repl(r core.Retriever, sharded *core.ShardedEngine) {
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	showMIL := false
	topK := 0
	var milEnv *mil.Env
	var queryTerms []string
	local := localStore(r, sharded)
	fmt.Println(`moash: the Mirror DBMS Moa shell — \help for commands`)
	for {
		fmt.Print("moa> ")
		if !in.Scan() {
			return
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		switch {
		case line == `\quit` || line == `\q!`:
			return
		case line == `\help`:
			fmt.Println("  <moa query>;        evaluate a Moa expression (query/stats params bound via \\q)")
			fmt.Println("  define ... ;        define a set")
			fmt.Println("  \\rank <text>        ranked annotation retrieval")
			fmt.Println("  \\dual <text>        dual-coding retrieval")
			fmt.Println("  \\terms <text>       thesaurus expansion")
			fmt.Println("  \\q w1 w2 ...        set query terms")
			fmt.Println("  \\mil                toggle MIL program display")
			fmt.Println("  \\plan <query;>      show the optimised logical plan")
			fmt.Println("  \\topk <n>           rank cut for ad-hoc queries (0 = full result)")
			fmt.Println("  \\milrun <stmt;>     run raw MIL against the stored BATs (see docs/MIL.md)")
			fmt.Println("  \\sets               list sets")
			fmt.Println("  \\shards             sharded-layout introspection")
			fmt.Println("  \\topology           serving topology (single store, sharded engine, distributed router)")
			fmt.Println("  \\segments           index-segment / epoch introspection")
			fmt.Println("  \\stats              serving state: size, pending, epoch, postings footprint")
			fmt.Println("  \\quit")
		case line == `\topology`:
			if t, ok := r.(interface{ Topology() string }); ok {
				fmt.Println(t.Topology())
			} else {
				fmt.Printf("%T\n", r)
			}
		case line == `\shards`:
			if sharded == nil {
				fmt.Println("unsharded: one store answers everything (run with -shards N, or point -load at a sharded store root)")
				break
			}
			infos := sharded.ShardInfos()
			fmt.Printf("%d shards, %d documents, routing: fnv64a(url) mod %d\n", len(infos), sharded.Size(), len(infos))
			for _, info := range infos {
				dir := info.Dir
				if dir == "" {
					dir = "(in-memory)"
				}
				fmt.Printf("  shard %3d  %6d docs  %4d BATs  %s\n", info.Index, info.Docs, info.BATs, dir)
			}
		case line == `\stats`:
			fmt.Printf("%d documents ingested, %d pending, indexed %v, current %v\n",
				r.Size(), r.Pending(), r.Indexed(), r.Current())
			if st, ok := r.ServingEpoch(); ok {
				fmt.Printf("serving epoch %d over %d documents (the stamp every query answer carries)\n",
					st.Seq, st.Docs)
			} else {
				fmt.Println("no serving epoch published yet (run the pipeline first)")
			}
			ps := r.PostingsStats()
			for _, pi := range ps.Stores {
				if pi.Segments == 0 {
					continue
				}
				ratio := 1.0
				if pi.Bytes > 0 {
					ratio = float64(pi.RawBytes) / float64(pi.Bytes)
				}
				fmt.Printf("postings shard %d %-24s codec=%-5s %2d segment(s) %8d postings %9d bytes (raw %9d, %.2fx)\n",
					pi.Shard, pi.Prefix, pi.Codec, pi.Segments, pi.Postings, pi.Bytes, pi.RawBytes, ratio)
			}
			if total := ps.BlocksDecoded + ps.BlocksSkipped; total > 0 {
				fmt.Printf("block scans: %d blocks decoded, %d skipped via max-belief bounds (%.0f%% skip rate)\n",
					ps.BlocksDecoded, ps.BlocksSkipped, 100*float64(ps.BlocksSkipped)/float64(total))
			}
		case line == `\segments`:
			infos := r.Segments()
			if infos == nil {
				fmt.Println("no index epoch published yet (run the pipeline / BuildContentIndex)")
				break
			}
			if pending := r.Size() - segmentsDocs(infos); pending > 0 {
				fmt.Printf("%d documents pending the next refresh\n", pending)
			}
			for _, info := range infos {
				fmt.Printf("shard %d  %-40s epoch %-4d %6d docs  %d segment(s)\n",
					info.Shard, info.Prefix, info.Epoch, info.Docs, len(info.Segs))
				for _, seg := range info.Segs {
					fmt.Printf("    seg %-3d %6d docs  %8d postings  %6d terms  %-5s %9d bytes\n",
						seg.Slot, seg.Docs, seg.Postings, seg.Terms, seg.Codec, seg.Bytes)
				}
			}
		case line == `\mil`:
			showMIL = !showMIL
			fmt.Printf("MIL display %v\n", showMIL)
		case strings.HasPrefix(line, `\milrun `):
			if milEnv == nil {
				milEnv = mil.NewEnv()
				milEnv.Out = os.Stdout
				if sharded != nil {
					fmt.Println("(sharded: raw MIL runs against shard 0's BATs)")
				}
				for name, b := range local.DB.Snapshot() {
					milEnv.Bind(name, b)
				}
			}
			runMIL(strings.TrimPrefix(line, `\milrun `), milEnv)
		case line == `\sets`:
			for _, def := range local.DB.Sets() {
				fmt.Printf("  %s (card %d)\n", def.Name, def.Card)
			}
		case strings.HasPrefix(line, `\q `):
			queryTerms = strings.Fields(strings.TrimPrefix(line, `\q `))
			fmt.Printf("query terms: %v\n", queryTerms)
		case strings.HasPrefix(line, `\topk `):
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, `\topk `), "%d", &topK); err != nil {
				fmt.Printf("error: %v\n", err)
			} else {
				fmt.Printf("top-k cut: %d\n", topK)
			}
		case strings.HasPrefix(line, `\plan `):
			var params map[string]moa.Param
			if queryTerms != nil {
				params = ir.QueryParams(queryTerms)
			}
			if sharded != nil {
				fmt.Printf("(sharded: the plan below runs on each of the %d shards; results merge through the bounded top-k selector)\n", sharded.NumShards())
			}
			eng := &moa.Engine{DB: local.Eng.DB, Opts: local.Eng.Opts}
			eng.Opts.TopK = topK
			plan, err := eng.Explain(strings.TrimPrefix(line, `\plan `), params)
			if err != nil {
				fmt.Printf("error: %v\n", err)
			} else {
				fmt.Print(plan)
			}
		case strings.HasPrefix(line, `\rank `):
			hits, err := r.QueryAnnotations(strings.TrimPrefix(line, `\rank `), 10)
			printHits(hits, err)
		case strings.HasPrefix(line, `\dual `):
			hits, err := r.QueryDualCoding(strings.TrimPrefix(line, `\dual `), 10)
			printHits(hits, err)
		case strings.HasPrefix(line, `\terms `):
			for _, c := range r.ExpandQuery(strings.TrimPrefix(line, `\terms `), 8) {
				fmt.Printf("  %s\n", c)
			}
		case strings.HasPrefix(line, "define"):
			if sharded != nil {
				fmt.Println("error: schema changes on a sharded store must go through the engine (define on shard 0 would desync the layout)")
				break
			}
			if err := local.DB.DefineFromSource(line); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		default:
			if sharded != nil {
				runShardedQuery(sharded, line, queryTerms, topK)
			} else {
				runQuery(local, line, queryTerms, showMIL, topK)
			}
		}
	}
}

// runShardedQuery evaluates a Moa query through the scatter-gather engine
// (no MIL display: N programs run, one per shard).
func runShardedQuery(e *core.ShardedEngine, src string, queryTerms []string, topK int) {
	res, err := e.QueryTopK(src, queryTerms, topK)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	printRows(res)
}

func runQuery(m *core.Mirror, src string, queryTerms []string, showMIL bool, topK int) {
	var params map[string]moa.Param
	if queryTerms != nil {
		params = ir.QueryParams(queryTerms)
	}
	eng := &moa.Engine{DB: m.Eng.DB, Opts: m.Eng.Opts}
	if topK > 0 {
		eng.Opts.TopK = topK
	}
	c, err := eng.Compile(src, params)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	if showMIL {
		fmt.Println("-- MIL --")
		fmt.Print(c.MIL())
		fmt.Println("---------")
	}
	res, err := c.Run()
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	printRows(res)
}

func printRows(res *moa.Result) {
	if res.Rows == nil {
		fmt.Printf("= %v\n", res.Scalar)
		return
	}
	const maxShow = 20
	for i, row := range res.Rows {
		if i >= maxShow {
			fmt.Printf("... (%d more)\n", len(res.Rows)-maxShow)
			break
		}
		fmt.Printf("  %4d  %v\n", uint64(row.OID), row.Value)
	}
}

// runMIL executes raw MIL source in the shell's persistent MIL
// environment (so `\milrun var x := ...;` then `\milrun print(x);`
// compose) and prints the value of the final statement.
func runMIL(src string, env *mil.Env) {
	if !strings.HasSuffix(strings.TrimSpace(src), ";") {
		src += ";"
	}
	prog, err := mil.Parse(src)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	v, err := mil.Run(prog, env)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	// print() already wrote its output; don't echo its value again.
	if n := len(prog.Stmts); n > 0 {
		if call, ok := prog.Stmts[n-1].Expr.(*mil.Call); ok && call.Fn == "print" {
			return
		}
	}
	switch x := v.(type) {
	case nil:
	case *bat.BAT:
		fmt.Println(x.String())
	default:
		fmt.Printf("= %s\n", bat.FormatValue(x))
	}
}

// segmentsDocs reports how many documents the serving epoch covers
// (engine-wide: the max over the per-CONTREP entries of each shard,
// summed across shards once per shard).
func segmentsDocs(infos []core.SegmentsInfo) int {
	perShard := map[int]int{}
	for _, info := range infos {
		if info.Docs > perShard[info.Shard] {
			perShard[info.Shard] = info.Docs
		}
	}
	total := 0
	for _, d := range perShard {
		total += d
	}
	return total
}

func printHits(hits []core.Hit, err error) {
	if err != nil {
		fmt.Printf("error: %v\n", err)
		if errors.Is(err, core.ErrNotIndexed) {
			fmt.Println("hint: no index epoch is published yet — run the extraction pipeline (mirrord, or moash without -no-pipeline); once built, new inserts are picked up by Refresh without rebuilding")
		}
		return
	}
	for i, h := range hits {
		fmt.Printf("  %2d. %-40s %.4f\n", i+1, h.URL, h.Score)
	}
}
