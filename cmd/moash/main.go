// Command moash is the interactive Moa shell of the Mirror DBMS. It builds
// (or loads) a demo database and evaluates Moa statements; \mil shows the
// flattened MIL program of the last query, like the original system's
// debugging mode.
//
// Commands:
//
//	define ... ;                 schema definition
//	map[...](...);               any Moa query (use $q to bind query terms)
//	\rank <text>                 ranked annotation retrieval
//	\dual <text>                 dual-coding retrieval via the thesaurus
//	\terms <text>                thesaurus expansion of a text query
//	\q <w1> <w2> ...             set the `query` parameter terms
//	\topk <n>                    ranked cut for ad-hoc queries (pushed
//	                             into the plan optimizer; 0 = full result)
//	\plan <query;>               show the optimised logical plan
//	\mil                         toggle MIL display
//	\milrun <stmt;>              execute raw MIL against the stored BATs
//	                             (bindings persist across \milrun lines;
//	                             every builtin is documented in docs/MIL.md)
//	\sets                        list defined sets
//	\help, \quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mirror/internal/bat"
	"mirror/internal/core"
	"mirror/internal/corpus"
	"mirror/internal/ir"
	"mirror/internal/mil"
	"mirror/internal/moa"
)

func main() {
	var (
		n      = flag.Int("n", 40, "demo collection size")
		seed   = flag.Int64("seed", 1, "demo collection seed")
		load   = flag.String("load", "", "load a saved database directory instead of generating")
		noPipe = flag.Bool("no-pipeline", false, "skip the content pipeline (text-only)")
	)
	flag.Parse()

	var m *core.Mirror
	var err error
	if *load != "" {
		m, err = core.Load(*load)
		if err != nil {
			log.Fatalf("moash: %v", err)
		}
		fmt.Printf("moash: loaded %d items from %s\n", m.Size(), *load)
	} else {
		fmt.Printf("moash: generating demo collection (n=%d, seed=%d)...\n", *n, *seed)
		items := corpus.Generate(corpus.Config{N: *n, W: 64, H: 64, Seed: *seed, AnnotateRate: 0.7})
		m, err = core.New()
		if err != nil {
			log.Fatalf("moash: %v", err)
		}
		for _, it := range items {
			if err := m.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
				log.Fatalf("moash: %v", err)
			}
		}
		if !*noPipe {
			fmt.Println("moash: running extraction pipeline (segmentation, features, AutoClass, thesaurus)...")
			if err := m.BuildContentIndex(core.DefaultIndexOptions()); err != nil {
				log.Fatalf("moash: %v", err)
			}
		}
	}
	repl(m)
}

func repl(m *core.Mirror) {
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	showMIL := false
	topK := 0
	var milEnv *mil.Env
	var queryTerms []string
	fmt.Println(`moash: the Mirror DBMS Moa shell — \help for commands`)
	for {
		fmt.Print("moa> ")
		if !in.Scan() {
			return
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		switch {
		case line == `\quit` || line == `\q!`:
			return
		case line == `\help`:
			fmt.Println("  <moa query>;        evaluate a Moa expression (query/stats params bound via \\q)")
			fmt.Println("  define ... ;        define a set")
			fmt.Println("  \\rank <text>        ranked annotation retrieval")
			fmt.Println("  \\dual <text>        dual-coding retrieval")
			fmt.Println("  \\terms <text>       thesaurus expansion")
			fmt.Println("  \\q w1 w2 ...        set query terms")
			fmt.Println("  \\mil                toggle MIL program display")
			fmt.Println("  \\plan <query;>      show the optimised logical plan")
			fmt.Println("  \\topk <n>           rank cut for ad-hoc queries (0 = full result)")
			fmt.Println("  \\milrun <stmt;>     run raw MIL against the stored BATs (see docs/MIL.md)")
			fmt.Println("  \\sets               list sets")
			fmt.Println("  \\quit")
		case line == `\mil`:
			showMIL = !showMIL
			fmt.Printf("MIL display %v\n", showMIL)
		case strings.HasPrefix(line, `\milrun `):
			if milEnv == nil {
				milEnv = mil.NewEnv()
				milEnv.Out = os.Stdout
				for name, b := range m.DB.Snapshot() {
					milEnv.Bind(name, b)
				}
			}
			runMIL(strings.TrimPrefix(line, `\milrun `), milEnv)
		case line == `\sets`:
			for _, def := range m.DB.Sets() {
				fmt.Printf("  %s (card %d)\n", def.Name, def.Card)
			}
		case strings.HasPrefix(line, `\q `):
			queryTerms = strings.Fields(strings.TrimPrefix(line, `\q `))
			fmt.Printf("query terms: %v\n", queryTerms)
		case strings.HasPrefix(line, `\topk `):
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, `\topk `), "%d", &topK); err != nil {
				fmt.Printf("error: %v\n", err)
			} else {
				fmt.Printf("top-k cut: %d\n", topK)
			}
		case strings.HasPrefix(line, `\plan `):
			var params map[string]moa.Param
			if queryTerms != nil {
				params = ir.QueryParams(queryTerms)
			}
			eng := &moa.Engine{DB: m.Eng.DB, Opts: m.Eng.Opts}
			eng.Opts.TopK = topK
			plan, err := eng.Explain(strings.TrimPrefix(line, `\plan `), params)
			if err != nil {
				fmt.Printf("error: %v\n", err)
			} else {
				fmt.Print(plan)
			}
		case strings.HasPrefix(line, `\rank `):
			hits, err := m.QueryAnnotations(strings.TrimPrefix(line, `\rank `), 10)
			printHits(hits, err)
		case strings.HasPrefix(line, `\dual `):
			hits, err := m.QueryDualCoding(strings.TrimPrefix(line, `\dual `), 10)
			printHits(hits, err)
		case strings.HasPrefix(line, `\terms `):
			for _, c := range m.ExpandQuery(strings.TrimPrefix(line, `\terms `), 8) {
				fmt.Printf("  %s\n", c)
			}
		case strings.HasPrefix(line, "define"):
			if err := m.DB.DefineFromSource(line); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		default:
			runQuery(m, line, queryTerms, showMIL, topK)
		}
	}
}

func runQuery(m *core.Mirror, src string, queryTerms []string, showMIL bool, topK int) {
	var params map[string]moa.Param
	if queryTerms != nil {
		params = ir.QueryParams(queryTerms)
	}
	eng := &moa.Engine{DB: m.Eng.DB, Opts: m.Eng.Opts}
	if topK > 0 {
		eng.Opts.TopK = topK
	}
	c, err := eng.Compile(src, params)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	if showMIL {
		fmt.Println("-- MIL --")
		fmt.Print(c.MIL())
		fmt.Println("---------")
	}
	res, err := c.Run()
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	if res.Rows == nil {
		fmt.Printf("= %v\n", res.Scalar)
		return
	}
	const maxShow = 20
	for i, row := range res.Rows {
		if i >= maxShow {
			fmt.Printf("... (%d more)\n", len(res.Rows)-maxShow)
			break
		}
		fmt.Printf("  %4d  %v\n", uint64(row.OID), row.Value)
	}
}

// runMIL executes raw MIL source in the shell's persistent MIL
// environment (so `\milrun var x := ...;` then `\milrun print(x);`
// compose) and prints the value of the final statement.
func runMIL(src string, env *mil.Env) {
	if !strings.HasSuffix(strings.TrimSpace(src), ";") {
		src += ";"
	}
	prog, err := mil.Parse(src)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	v, err := mil.Run(prog, env)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	// print() already wrote its output; don't echo its value again.
	if n := len(prog.Stmts); n > 0 {
		if call, ok := prog.Stmts[n-1].Expr.(*mil.Call); ok && call.Fn == "print" {
			return
		}
	}
	switch x := v.(type) {
	case nil:
	case *bat.BAT:
		fmt.Println(x.String())
	default:
		fmt.Printf("= %s\n", bat.FormatValue(x))
	}
}

func printHits(hits []core.Hit, err error) {
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	for i, h := range hits {
		fmt.Printf("  %2d. %-40s %.4f\n", i+1, h.URL, h.Score)
	}
}
