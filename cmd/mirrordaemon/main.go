// Command mirrordaemon runs the extraction daemons of Figure 1 (segmenter,
// the six feature daemons, AutoClass, thesaurus) and registers each with
// the distributed data dictionary. With -serve-dict it also hosts the
// dictionary itself.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"mirror/internal/daemon"
	"mirror/internal/dict"
)

func main() {
	var (
		dictAddr  = flag.String("dict", "", "data dictionary address (required unless -serve-dict)")
		serveDict = flag.String("serve-dict", "", "also host the dictionary on this address, e.g. 127.0.0.1:8639")
	)
	flag.Parse()

	addr := *dictAddr
	if *serveDict != "" {
		bound, stop, err := dict.Start(*serveDict)
		if err != nil {
			log.Fatalf("mirrordaemon: %v", err)
		}
		defer stop()
		addr = bound
		fmt.Printf("mirrordaemon: data dictionary at %s\n", bound)
	}
	if addr == "" {
		log.Fatal("mirrordaemon: provide -dict or -serve-dict")
	}
	handles, err := daemon.StartDemoDaemons(addr)
	if err != nil {
		log.Fatalf("mirrordaemon: %v", err)
	}
	for _, h := range handles {
		fmt.Printf("mirrordaemon: %-14s %-10s %s\n", h.Info.Name, h.Info.Kind, h.Info.Addr)
	}
	fmt.Println("mirrordaemon: running; ^C to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	for _, h := range handles {
		h.Stop()
	}
}
