// Command poolcheck statically enforces the pooled borrow/return
// discipline on the query hot path (see internal/lint/poolcheck): every
// pooled Scores map and ranking slice must be released exactly once on
// every control-flow path, including error returns. CI runs it over
// ./internal; it exits non-zero when any violation is found.
//
// Usage:
//
//	poolcheck [dir ...]   (default: ./internal)
package main

import (
	"flag"
	"fmt"
	"os"

	"mirror/internal/lint/poolcheck"
)

func main() {
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{"internal"}
	}
	failed := false
	for _, dir := range dirs {
		diags, err := poolcheck.CheckTree(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "poolcheck: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
