// Command benchgate is the CI performance-regression gate: it compares a
// freshly measured BENCH_queries.json against the committed baseline and
// fails (exit 1) when a gated metric degraded past its tolerance.
//
//	git show HEAD:BENCH_queries.json > /tmp/baseline.json
//	go run ./cmd/benchgate -baseline /tmp/baseline.json -fresh BENCH_queries.json
//
// Only dimensionless metrics are gated — speedup factors, premium
// ratios, skip rates, compression — never absolute nanoseconds: the
// baseline and the fresh run rarely execute on comparable hardware
// (committed numbers come from a developer machine, fresh ones from a
// shared CI runner), so absolute latencies cannot be compared, but the
// ratios each run measures against itself transfer. Tolerances are per
// metric and deliberately wide where the measurement is timing-derived
// (shared hosts make even intra-run ratios noisy); deterministic
// counter-derived metrics (skip rates, decoded postings, compression)
// get tight ones, so a pruning regression cannot hide behind timing
// noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
)

// rule gates one metric. Direction says which way is better; tol bounds
// the allowed degradation relative to baseline: higher-better metrics
// must stay ≥ baseline/tol, lower-better ones ≤ baseline·tol.
type rule struct {
	metric string
	higher bool    // true: larger is better
	tol    float64 // ≥ 1; 1 = no degradation allowed
}

// queryGates are the gated BENCH_queries.json metrics. Timing-derived
// ratios (speedups, premiums, scatter gain) carry wide tolerances —
// observed run-to-run spread on a shared host is 2–4× even with
// best-of-N sampling — while counter-derived metrics are deterministic
// for a fixed fixture and get 10%.
var queryGates = []rule{
	{metric: "speedup", higher: true, tol: 3.0},                     // pruned vs exhaustive
	{metric: "block_vs_raw_p50", higher: false, tol: 2.0},           // block codec premium
	{metric: "warm_theta_speedup", higher: true, tol: 2.5},          // θ-memo seeded rescan
	{metric: "scatter_shared_gain", higher: true, tol: 4.0},         // streamed vs isolated θ
	{metric: "compression_ratio", higher: true, tol: 1.1},           // raw/block bytes
	{metric: "block_skip_rate", higher: true, tol: 1.1},             // uniform corpus
	{metric: "skewed_block_skip_rate", higher: true, tol: 1.1},      // skewed corpus, cold
	{metric: "warm_theta_block_skip_rate", higher: true, tol: 1.05}, // skewed corpus, seeded
	{metric: "decode_postings", higher: false, tol: 1.1},            // postings touched by pruned scans
}

// load reads a bench JSON file into metric→value form. The emitters
// write round numbers as JSON numbers and formatted ratios as strings
// ("1.47"); both parse to float64 here, everything else is skipped.
func load(path string) (map[string]float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]any
	if err := json.Unmarshal(b, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64, len(raw))
	for k, v := range raw {
		switch x := v.(type) {
		case float64:
			out[k] = x
		case string:
			if f, err := strconv.ParseFloat(x, 64); err == nil {
				out[k] = f
			}
		}
	}
	return out, nil
}

// violation is one failed gate, in report form.
type violation struct {
	rule        rule
	base, fresh float64
	limit       float64
}

// check applies the gates. A metric missing from the baseline is
// skipped (metrics are added over time; the next baseline commit picks
// them up); a gated metric missing from the fresh run is itself a
// violation — silently dropping a measurement must not pass the gate.
func check(gates []rule, base, fresh map[string]float64) []violation {
	var out []violation
	for _, g := range gates {
		b, ok := base[g.metric]
		if !ok {
			continue
		}
		f, ok := fresh[g.metric]
		if !ok {
			out = append(out, violation{rule: g, base: b, fresh: -1})
			continue
		}
		if g.higher {
			limit := b / g.tol
			if f < limit {
				out = append(out, violation{rule: g, base: b, fresh: f, limit: limit})
			}
		} else {
			limit := b * g.tol
			if f > limit {
				out = append(out, violation{rule: g, base: b, fresh: f, limit: limit})
			}
		}
	}
	return out
}

func main() {
	baseline := flag.String("baseline", "", "committed bench JSON (required)")
	fresh := flag.String("fresh", "", "freshly measured bench JSON (required)")
	flag.Parse()
	if *baseline == "" || *fresh == "" {
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := load(*fresh)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	viols := check(queryGates, base, cur)
	for _, g := range queryGates {
		b, ok := base[g.metric]
		if !ok {
			fmt.Printf("  skip %-28s (not in baseline)\n", g.metric)
			continue
		}
		dir := "≥"
		limit := b / g.tol
		if !g.higher {
			dir = "≤"
			limit = b * g.tol
		}
		f, ok := cur[g.metric]
		status, val := "ok  ", fmt.Sprintf("%.4g", f)
		if !ok {
			status, val = "FAIL", "missing"
		} else if (g.higher && f < limit) || (!g.higher && f > limit) {
			status = "FAIL"
		}
		fmt.Printf("  %s %-28s baseline %.4g, fresh %s (gate %s %.4g)\n",
			status, g.metric, b, val, dir, limit)
	}
	if len(viols) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d metric(s) degraded past tolerance\n", len(viols))
		os.Exit(1)
	}
	fmt.Println("benchgate: all gated metrics within tolerance")
}
