package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCheckDirectionsAndTolerances(t *testing.T) {
	gates := []rule{
		{metric: "up", higher: true, tol: 2.0},
		{metric: "down", higher: false, tol: 2.0},
	}
	base := map[string]float64{"up": 10, "down": 1.0}

	// Within tolerance both ways.
	if v := check(gates, base, map[string]float64{"up": 5.0, "down": 2.0}); len(v) != 0 {
		t.Fatalf("boundary values must pass: %+v", v)
	}
	// Past tolerance, each direction independently.
	if v := check(gates, base, map[string]float64{"up": 4.9, "down": 1.0}); len(v) != 1 || v[0].rule.metric != "up" {
		t.Fatalf("higher-better degradation not caught: %+v", v)
	}
	if v := check(gates, base, map[string]float64{"up": 10, "down": 2.1}); len(v) != 1 || v[0].rule.metric != "down" {
		t.Fatalf("lower-better degradation not caught: %+v", v)
	}
	// Improvements are never violations.
	if v := check(gates, base, map[string]float64{"up": 100, "down": 0.1}); len(v) != 0 {
		t.Fatalf("improvements flagged: %+v", v)
	}
}

func TestCheckMissingMetrics(t *testing.T) {
	gates := []rule{{metric: "m", higher: true, tol: 1.5}}
	// Not in baseline: skipped (new metrics gate only once committed).
	if v := check(gates, map[string]float64{}, map[string]float64{"m": 1}); len(v) != 0 {
		t.Fatalf("baseline-missing metric must be skipped: %+v", v)
	}
	// In baseline but not measured fresh: that IS a violation.
	if v := check(gates, map[string]float64{"m": 1}, map[string]float64{}); len(v) != 1 {
		t.Fatalf("fresh-missing metric must fail: %+v", v)
	}
}

// The committed BENCH_queries.json must gate against itself: every gated
// metric present and trivially within tolerance, so the CI step cannot
// fail on a no-change commit.
func TestCommittedBaselineSelfGates(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_queries.json")
	if _, err := os.Stat(path); err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	m, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range queryGates {
		if _, ok := m[g.metric]; !ok {
			t.Errorf("committed baseline lacks gated metric %q", g.metric)
		}
		if g.tol < 1 {
			t.Errorf("gate %q: tolerance %v < 1 forbids the baseline itself", g.metric, g.tol)
		}
	}
	if v := check(queryGates, m, m); len(v) != 0 {
		t.Fatalf("baseline does not self-gate: %+v", v)
	}
}
