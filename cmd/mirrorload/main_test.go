package main

import (
	"bytes"
	"reflect"
	"testing"

	"mirror/internal/load"
)

func TestParseTopologies(t *testing.T) {
	tests := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"single", []int{0}, true},
		{"single,sharded-3", []int{0, 3}, true},
		{"sharded-2, single", []int{2, 0}, true},
		{"sharded-1", nil, false}, // one shard is not a sharded topology
		{"sharded-x", nil, false},
		{"cluster", nil, false},
		{"", nil, false},
		{",,", nil, false},
	}
	for _, tc := range tests {
		got, err := parseTopologies(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("%q: err %v, want ok=%v", tc.in, err, tc.ok)
		}
		if tc.ok && !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("%q: got %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseFaults(t *testing.T) {
	got, err := parseFaults("kill-during-publish, torn-wal")
	if err != nil {
		t.Fatal(err)
	}
	want := []load.Fault{load.FaultKillDuringPublish, load.FaultTornWAL}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if got, err := parseFaults(""); err != nil || len(got) != 0 {
		t.Fatalf("empty fault list must mean no faults: %v %v", got, err)
	}
	if _, err := parseFaults("quake"); err == nil {
		t.Fatal("unknown fault accepted")
	}
	// Every injectable fault must parse back in.
	for _, f := range load.AllFaults() {
		if _, err := parseFaults(string(f)); err != nil {
			t.Fatalf("%s does not round-trip: %v", f, err)
		}
	}
}

// The flag surface must reject nonsense before any daemon is spawned.
func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	tests := [][]string{
		{"-no-such-flag"},
		{},                                   // -bin required
		{"-bin", "x", "-topologies", "mesh"}, // bad topology
		{"-bin", "x", "-faults", "quake"},    // bad fault
	}
	for _, args := range tests {
		if err := run(args, &out); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
