package main

import (
	"bytes"
	"reflect"
	"testing"

	"mirror/internal/load"
)

func TestParseTopologies(t *testing.T) {
	tests := []struct {
		in   string
		want []topoSpec
		ok   bool
	}{
		{"single", []topoSpec{{}}, true},
		{"single,sharded-3", []topoSpec{{}, {shards: 3}}, true},
		{"sharded-2, single", []topoSpec{{shards: 2}, {}}, true},
		{"distributed-3x2", []topoSpec{{shards: 3, replicas: 2}}, true},
		{"single,distributed-2x3", []topoSpec{{}, {shards: 2, replicas: 3}}, true},
		{"sharded-1", nil, false}, // one shard is not a sharded topology
		{"sharded-x", nil, false},
		{"distributed-3", nil, false}, // replicas required
		{"distributed-0x2", nil, false},
		{"distributed-2x0", nil, false},
		{"cluster", nil, false},
		{"", nil, false},
		{",,", nil, false},
	}
	for _, tc := range tests {
		got, err := parseTopologies(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("%q: err %v, want ok=%v", tc.in, err, tc.ok)
		}
		if tc.ok && !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("%q: got %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestTopoLabels(t *testing.T) {
	tests := []struct {
		ts   topoSpec
		want string
	}{
		{topoSpec{}, "single"},
		{topoSpec{shards: 3}, "sharded-3"},
		{topoSpec{shards: 3, replicas: 2}, "distributed-3x2"},
	}
	for _, tc := range tests {
		if got := tc.ts.label(); got != tc.want {
			t.Fatalf("%+v: label %q, want %q", tc.ts, got, tc.want)
		}
	}
}

func TestParseFaults(t *testing.T) {
	got, err := parseFaults("kill-during-publish, torn-wal", load.AllFaults())
	if err != nil {
		t.Fatal(err)
	}
	want := []load.Fault{load.FaultKillDuringPublish, load.FaultTornWAL}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if got, err := parseFaults("", load.AllFaults()); err != nil || len(got) != 0 {
		t.Fatalf("empty fault list must mean no faults: %v %v", got, err)
	}
	if _, err := parseFaults("quake", load.AllFaults()); err == nil {
		t.Fatal("unknown fault accepted")
	}
	// A distributed fault is not injectable into a single-daemon run.
	if _, err := parseFaults("kill-shard-during-query", load.AllFaults()); err == nil {
		t.Fatal("distributed fault accepted into the single-daemon set")
	}
	// Every injectable fault must parse back into its own set.
	for _, f := range load.AllFaults() {
		if _, err := parseFaults(string(f), load.AllFaults()); err != nil {
			t.Fatalf("%s does not round-trip: %v", f, err)
		}
	}
	for _, f := range load.AllDistFaults() {
		if _, err := parseFaults(string(f), load.AllDistFaults()); err != nil {
			t.Fatalf("%s does not round-trip: %v", f, err)
		}
	}
}

// The flag surface must reject nonsense before any daemon is spawned.
func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	tests := [][]string{
		{"-no-such-flag"},
		{},                                   // -bin required
		{"-bin", "x", "-topologies", "mesh"}, // bad topology
		{"-bin", "x", "-faults", "quake"},    // bad fault
		{"-bin", "x", "-dist-faults", "torn-wal"}, // single-daemon fault in the distributed set
	}
	for _, args := range tests {
		if err := run(args, &out); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
