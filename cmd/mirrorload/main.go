// Command mirrorload is the production workload harness: it boots a live
// mirrord (plus an in-process media server and data dictionary) per
// topology, drives a deterministic mixed read/write scenario over the real
// RPC surface with closed-loop workers — zipf-weighted ranked queries,
// bursty image ingest, multi-turn relevance-feedback sessions, and
// harness-paced refresh/checkpoint maintenance — injects the
// docs/OPERATIONS.md crash-matrix faults mid-run through a process
// supervisor, and verifies every stamped annotation answer bit-exact
// against an in-process oracle (a one-shot rebuild of the answering
// epoch's document prefix).
//
// The run exits non-zero on any oracle violation or unrecovered fault and
// writes per-operation-class latency quantiles (p50/p95/p99/max) for each
// topology to -out as BENCH_load.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"mirror/internal/load"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatalf("mirrorload: %v", err)
	}
}

// run is main without the process plumbing, so tests can drive the full
// flag surface and capture output.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mirrorload", flag.ContinueOnError)
	var (
		bin      = fs.String("bin", "", "mirrord binary to supervise (required)")
		outPath  = fs.String("out", "BENCH_load.json", "latency/fault/oracle report path")
		topos    = fs.String("topologies", "single,sharded-3", "comma-separated topologies to drive: single, sharded-N, and/or distributed-NxR (N networked shards, R replica stores each)")
		faultsFl = fs.String("faults", "kill-during-publish,kill-during-checkpoint,torn-wal", "comma-separated faults injected mid-run per single/sharded topology (empty: none)")
		distFl   = fs.String("dist-faults", "kill-shard-during-refresh,torn-follower-wal", "comma-separated faults injected mid-run per distributed topology (empty: none)")
		duration = fs.Duration("duration", 5*time.Second, "steady-state workload window per topology")
		seed     = fs.Int64("seed", 1, "scenario synthesis seed")
		docs     = fs.Int("docs", 96, "total documents (preload + ingest stream)")
		preload  = fs.Int("preload", 48, "documents present before the workload starts")
		width    = fs.Int("w", 32, "raster width")
		height   = fs.Int("h", 32, "raster height")
		annotate = fs.Float64("annotate", 0.75, "fraction of annotated documents")
		queries  = fs.Int("queries", 24, "distinct query texts in the zipf mix")
		zipf     = fs.Float64("zipf", 1.1, "zipf exponent of query popularity")
		sessions = fs.Int("sessions", 6, "feedback-session seed texts")
		bursts   = fs.Int("bursts", 4, "ingest bursts over the stream")
		skew     = fs.Float64("skew", 0.7, "fraction of the stream placed on the hot shard (sharded topologies)")
		qworkers = fs.Int("query-workers", 4, "closed-loop query workers")
		fworkers = fs.Int("feedback-workers", 2, "closed-loop feedback-session workers")
		topk     = fs.Int("k", 10, "ranked top-k per query")
		refresh  = fs.Duration("refresh-every", 400*time.Millisecond, "harness-paced refresh cadence (the daemon's own timers are off)")
		ckpt     = fs.Duration("checkpoint-every", 900*time.Millisecond, "harness-paced checkpoint cadence")
		storeRt  = fs.String("store-root", "", "parent directory for the per-topology stores (default: a temp dir, removed afterwards)")
		quiet    = fs.Bool("quiet", false, "suppress progress narration")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bin == "" {
		return fmt.Errorf("-bin is required (point it at a built mirrord)")
	}
	topologies, err := parseTopologies(*topos)
	if err != nil {
		return err
	}
	faults, err := parseFaults(*faultsFl, load.AllFaults())
	if err != nil {
		return err
	}
	distFaults, err := parseFaults(*distFl, load.AllDistFaults())
	if err != nil {
		return err
	}
	root := *storeRt
	if root == "" {
		root, err = os.MkdirTemp("", "mirrorload-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(root)
	}
	logf := func(format string, a ...any) { fmt.Fprintf(stdout, format+"\n", a...) }
	if *quiet {
		logf = nil
	}

	report := &load.Report{Seed: *seed}
	for _, ts := range topologies {
		spec := load.Spec{
			Seed: *seed, Docs: *docs, Preload: *preload, W: *width, H: *height,
			AnnotateRate: *annotate, HotShard: maxInt(ts.shards-1, 0), SkewFrac: *skew,
			Queries: *queries, ZipfS: *zipf, Sessions: *sessions, Bursts: *bursts,
		}
		topoFaults := faults
		if ts.replicas > 0 {
			topoFaults = distFaults
		}
		opts := load.Options{
			Spec:            spec,
			Bin:             *bin,
			StoreDir:        filepath.Join(root, ts.label()),
			Shards:          ts.shards,
			Replicas:        ts.replicas,
			Duration:        *duration,
			QueryWorkers:    *qworkers,
			FeedbackWorkers: *fworkers,
			K:               *topk,
			Faults:          topoFaults,
			RefreshEvery:    *refresh,
			CheckpointEvery: *ckpt,
			Logf:            logf,
		}
		rep, err := load.Run(opts)
		if rep != nil {
			report.Topologies = append(report.Topologies, rep)
		}
		if err != nil {
			// Write what we have first: a failing soak run should still
			// leave its evidence behind.
			load.WriteReport(*outPath, report)
			return fmt.Errorf("topology %s: %w", ts.label(), err)
		}
		summarize(stdout, rep)
	}
	if err := load.WriteReport(*outPath, report); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "mirrorload: report written to %s\n", *outPath)
	return nil
}

// topoSpec is one parsed -topologies entry: shards alone for the
// in-process shapes, shards x replicas for the networked router.
type topoSpec struct {
	shards   int // 0 = single store
	replicas int // >0 = distributed router, this many stores per shard
}

func (ts topoSpec) label() string {
	switch {
	case ts.replicas > 0:
		return fmt.Sprintf("distributed-%dx%d", ts.shards, ts.replicas)
	case ts.shards > 1:
		return fmt.Sprintf("sharded-%d", ts.shards)
	}
	return "single"
}

// parseTopologies turns "single,sharded-3,distributed-3x2" into specs.
func parseTopologies(s string) ([]topoSpec, error) {
	var out []topoSpec
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		switch {
		case tok == "":
		case tok == "single":
			out = append(out, topoSpec{})
		case strings.HasPrefix(tok, "sharded-"):
			n, err := strconv.Atoi(strings.TrimPrefix(tok, "sharded-"))
			if err != nil || n < 2 {
				return nil, fmt.Errorf("bad topology %q: want sharded-N with N >= 2", tok)
			}
			out = append(out, topoSpec{shards: n})
		case strings.HasPrefix(tok, "distributed-"):
			var n, r int
			if _, err := fmt.Sscanf(strings.TrimPrefix(tok, "distributed-"), "%dx%d", &n, &r); err != nil || n < 1 || r < 1 {
				return nil, fmt.Errorf("bad topology %q: want distributed-NxR with N, R >= 1", tok)
			}
			out = append(out, topoSpec{shards: n, replicas: r})
		default:
			return nil, fmt.Errorf("unknown topology %q (want single, sharded-N or distributed-NxR)", tok)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no topologies selected")
	}
	return out, nil
}

// parseFaults validates a fault list against its injectable set.
func parseFaults(s string, known []load.Fault) ([]load.Fault, error) {
	set := map[load.Fault]bool{}
	for _, f := range known {
		set[f] = true
	}
	var out []load.Fault
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		f := load.Fault(tok)
		if !set[f] {
			return nil, fmt.Errorf("unknown fault %q (have %v)", tok, known)
		}
		out = append(out, f)
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// summarize prints one topology's outcome as a compact table.
func summarize(w io.Writer, rep *load.TopologyReport) {
	fmt.Fprintf(w, "mirrorload: %s — epoch %d over %d docs, %d restarts, oracle %d/%d ok\n",
		rep.Topology, rep.FinalEpoch, rep.FinalDocs, rep.Restarts,
		rep.Oracle.Checked-rep.Oracle.Violations, rep.Oracle.Checked)
	b, _ := json.MarshalIndent(rep.Ops, "  ", "  ")
	fmt.Fprintf(w, "  ops: %s\n", b)
}
