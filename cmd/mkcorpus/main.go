// Command mkcorpus generates the synthetic demo collection (the web-robot
// substitute) into a directory: one PPM per image, one .txt per available
// annotation, and a truth.json with the ground-truth latent classes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mirror/internal/corpus"
)

func main() {
	var (
		n    = flag.Int("n", 60, "number of images")
		w    = flag.Int("w", 64, "image width")
		h    = flag.Int("h", 64, "image height")
		seed = flag.Int64("seed", 1, "generator seed")
		rate = flag.Float64("annotate", 0.7, "fraction of annotated images")
		out  = flag.String("out", "corpus", "output directory")
	)
	flag.Parse()

	cfg := corpus.Config{N: *n, W: *w, H: *h, Seed: *seed, AnnotateRate: *rate}
	items := corpus.Generate(cfg)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("mkcorpus: %v", err)
	}
	truth := map[string][]int{}
	for i, it := range items {
		name := fmt.Sprintf("%04d.ppm", i)
		f, err := os.Create(filepath.Join(*out, name))
		if err != nil {
			log.Fatalf("mkcorpus: %v", err)
		}
		if err := it.Scene.Img.EncodePPM(f); err != nil {
			log.Fatalf("mkcorpus: encode %s: %v", name, err)
		}
		f.Close()
		if it.Annotation != "" {
			ann := fmt.Sprintf("%04d.txt", i)
			if err := os.WriteFile(filepath.Join(*out, ann), []byte(it.Annotation), 0o644); err != nil {
				log.Fatalf("mkcorpus: %v", err)
			}
		}
		truth[name] = it.Classes
	}
	tb, err := json.MarshalIndent(truth, "", "  ")
	if err != nil {
		log.Fatalf("mkcorpus: %v", err)
	}
	if err := os.WriteFile(filepath.Join(*out, "truth.json"), tb, 0o644); err != nil {
		log.Fatalf("mkcorpus: %v", err)
	}
	fmt.Printf("mkcorpus: wrote %d images to %s (seed %d)\n", len(items), *out, *seed)
}
