// Command mkcorpus synthesizes workloads. In its original corpus mode it
// generates the synthetic demo collection (the web-robot substitute) into
// a directory: one PPM per image, one .txt per available annotation, and a
// truth.json with the ground-truth latent classes.
//
// With -scenario it instead synthesizes a full load-test scenario (the
// document stream with latent classes and annotations, a zipf-weighted
// query mix, feedback-session seeds, and ingest bursts — see
// internal/load) as deterministic JSON: equal flags give byte-identical
// output, so scenarios can be committed, diffed, and replayed. Rasters are
// not materialised in scenario mode; each document carries a seed from
// which cmd/mirrorload regenerates identical pixels on demand.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"mirror/internal/corpus"
	"mirror/internal/load"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatalf("mkcorpus: %v", err)
	}
}

// run is main without the process plumbing, so tests can drive the full
// flag surface and capture output.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mkcorpus", flag.ContinueOnError)
	var (
		n    = fs.Int("n", 60, "number of images (scenario mode: total documents)")
		w    = fs.Int("w", 64, "image width")
		h    = fs.Int("h", 64, "image height")
		seed = fs.Int64("seed", 1, "generator seed")
		rate = fs.Float64("annotate", 0.7, "fraction of annotated images")
		out  = fs.String("out", "corpus", "output directory (corpus mode)")
		cz   = fs.Float64("class-zipf", 0, "draw latent classes zipf-weighted with this exponent (> 1; 0 = uniform) — skews term document frequencies and belief spreads like real collections, the regime where threshold pruning acts")

		scenario = fs.String("scenario", "", "write a load-test scenario as JSON to this path instead of a corpus directory")
		base     = fs.String("base", "http://mediaserver", "base URL the scenario's document URLs and shard routing hash against")
		preload  = fs.Int("preload", 0, "scenario documents present before the workload starts (rest arrive in ingest bursts)")
		shards   = fs.Int("shards", 1, "scenario topology the placement skew targets (<=1: no skew)")
		hot      = fs.Int("hot-shard", 0, "shard receiving the skewed fraction of the document stream")
		skew     = fs.Float64("skew", 0.7, "fraction of the stream routed to the hot shard (0: uniform)")
		queries  = fs.Int("queries", 24, "distinct query texts in the scenario's zipf-weighted mix")
		zipf     = fs.Float64("zipf", 1.1, "zipf exponent of query popularity")
		sessions = fs.Int("sessions", 6, "feedback-session seed texts in the scenario")
		bursts   = fs.Int("bursts", 4, "ingest bursts the post-preload stream is split into")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *scenario != "" {
		spec := load.Spec{
			Seed: *seed, Docs: *n, Preload: *preload, W: *w, H: *h,
			AnnotateRate: *rate, Shards: *shards, HotShard: *hot, SkewFrac: *skew,
			Queries: *queries, ZipfS: *zipf, Sessions: *sessions, Bursts: *bursts,
		}
		sc, err := load.Synthesize(spec, *base)
		if err != nil {
			return err
		}
		b, err := json.MarshalIndent(sc, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(*scenario, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "mkcorpus: wrote scenario to %s (seed %d: %d docs, %d queries, %d sessions, %d bursts)\n",
			*scenario, spec.Seed, len(sc.Docs), len(sc.Queries), len(sc.Sessions), len(sc.Bursts))
		return nil
	}

	cfg := corpus.Config{N: *n, W: *w, H: *h, Seed: *seed, AnnotateRate: *rate, ClassZipf: *cz}
	items := corpus.Generate(cfg)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	truth := map[string][]int{}
	for i, it := range items {
		name := fmt.Sprintf("%04d.ppm", i)
		f, err := os.Create(filepath.Join(*out, name))
		if err != nil {
			return err
		}
		if err := it.Scene.Img.EncodePPM(f); err != nil {
			f.Close()
			return fmt.Errorf("encode %s: %w", name, err)
		}
		f.Close()
		if it.Annotation != "" {
			ann := fmt.Sprintf("%04d.txt", i)
			if err := os.WriteFile(filepath.Join(*out, ann), []byte(it.Annotation), 0o644); err != nil {
				return err
			}
		}
		truth[name] = it.Classes
	}
	tb, err := json.MarshalIndent(truth, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*out, "truth.json"), tb, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "mkcorpus: wrote %d images to %s (seed %d)\n", len(items), *out, *seed)
	return nil
}
