package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mirror/internal/load"
)

// Corpus mode must keep writing the directory layout downstream tools
// crawl: PPMs, annotation .txt files, truth.json.
func TestRunCorpusMode(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	var out bytes.Buffer
	if err := run([]string{"-n", "8", "-w", "16", "-h", "16", "-seed", "3", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 8 images") {
		t.Fatalf("output: %q", out.String())
	}
	ppms, _ := filepath.Glob(filepath.Join(dir, "*.ppm"))
	if len(ppms) != 8 {
		t.Fatalf("%d PPMs, want 8", len(ppms))
	}
	tb, err := os.ReadFile(filepath.Join(dir, "truth.json"))
	if err != nil {
		t.Fatal(err)
	}
	truth := map[string][]int{}
	if err := json.Unmarshal(tb, &truth); err != nil {
		t.Fatal(err)
	}
	if len(truth) != 8 {
		t.Fatalf("truth.json has %d entries, want 8", len(truth))
	}
}

// Scenario mode is the reproducibility contract: equal flags give
// byte-identical JSON, and the payload round-trips into a load.Scenario.
func TestRunScenarioModeDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	args := []string{"-scenario", "", "-seed", "7", "-n", "40", "-preload", "16",
		"-shards", "3", "-hot-shard", "1", "-queries", "10", "-sessions", "4", "-bursts", "3"}
	var out bytes.Buffer
	args[1] = a
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	args[1] = b
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	ab, _ := os.ReadFile(a)
	bb, _ := os.ReadFile(b)
	if len(ab) == 0 || !bytes.Equal(ab, bb) {
		t.Fatal("scenario output is not byte-reproducible")
	}
	var sc load.Scenario
	if err := json.Unmarshal(ab, &sc); err != nil {
		t.Fatal(err)
	}
	if len(sc.Docs) != 40 || len(sc.Queries) != 10 || len(sc.Sessions) != 4 || len(sc.Bursts) != 3 {
		t.Fatalf("scenario shape: %d docs %d queries %d sessions %d bursts",
			len(sc.Docs), len(sc.Queries), len(sc.Sessions), len(sc.Bursts))
	}
	if sc.Spec.Seed != 7 || sc.Spec.Shards != 3 || sc.Spec.HotShard != 1 {
		t.Fatalf("spec not threaded through flags: %+v", sc.Spec)
	}
}

// Bad flags and bad specs must fail, not write anything.
func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
	p := filepath.Join(t.TempDir(), "sc.json")
	// preload > docs is an invalid scenario spec
	if err := run([]string{"-scenario", p, "-n", "4", "-preload", "9"}, &out); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := os.Stat(p); err == nil {
		t.Fatal("scenario file written despite the error")
	}
}
