// Command mirrord is the Mirror DBMS server of Figure 1: it crawls the
// media server (the web robot), runs the extraction pipeline against the
// registered daemons, builds the meta-data database, and serves Moa and
// ranked-retrieval queries over RPC, registering itself with the data
// dictionary.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"mirror/internal/core"
	"mirror/internal/dict"
	"mirror/internal/mediaserver"
)

func main() {
	var (
		dictAddr = flag.String("dict", "", "data dictionary address (required)")
		mediaURL = flag.String("media", "", "media server base URL; discovered via the dictionary when empty")
		addr     = flag.String("addr", "127.0.0.1:8641", "listen address")
		saveDir  = flag.String("save", "", "persist the database to this directory after indexing")
		local    = flag.Bool("local-pipeline", false, "run extraction in-process instead of via daemons")
	)
	flag.Parse()
	if *dictAddr == "" {
		log.Fatal("mirrord: -dict is required")
	}

	base := *mediaURL
	if base == "" {
		dc, err := dict.Dial(*dictAddr)
		if err != nil {
			log.Fatalf("mirrord: %v", err)
		}
		infos, err := dc.List("mediaserver")
		dc.Close()
		if err != nil || len(infos) == 0 {
			log.Fatalf("mirrord: no media server registered (%v)", err)
		}
		base = "http://" + infos[0].Addr
	}

	fmt.Printf("mirrord: crawling %s\n", base)
	crawled, err := mediaserver.Crawl(base)
	if err != nil {
		log.Fatalf("mirrord: crawl: %v", err)
	}
	m, err := core.New()
	if err != nil {
		log.Fatalf("mirrord: %v", err)
	}
	for _, it := range crawled {
		img, err := mediaserver.DecodeItemImage(it)
		if err != nil {
			log.Fatalf("mirrord: decode %s: %v", it.URL, err)
		}
		if err := m.AddImage(it.URL, it.Annotation, img); err != nil {
			log.Fatalf("mirrord: ingest %s: %v", it.URL, err)
		}
	}
	fmt.Printf("mirrord: ingested %d items; running extraction pipeline...\n", m.Size())
	opts := core.DefaultIndexOptions()
	if *local {
		err = m.BuildContentIndex(opts)
	} else {
		err = m.BuildContentIndexDistributed(opts, *dictAddr)
	}
	if err != nil {
		log.Fatalf("mirrord: pipeline: %v", err)
	}
	if *saveDir != "" {
		if err := m.Save(*saveDir); err != nil {
			log.Fatalf("mirrord: save: %v", err)
		}
		fmt.Printf("mirrord: database saved to %s\n", *saveDir)
	}
	bound, stop, err := m.Serve(*addr, *dictAddr)
	if err != nil {
		log.Fatalf("mirrord: %v", err)
	}
	defer stop()
	fmt.Printf("mirrord: Mirror DBMS serving at %s\n", bound)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}
