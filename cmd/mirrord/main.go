// Command mirrord is the Mirror DBMS server of Figure 1: it crawls the
// media server (the web robot), runs the extraction pipeline against the
// registered daemons, builds the meta-data database, and serves Moa and
// ranked-retrieval queries over RPC, registering itself with the data
// dictionary.
//
// With -store the database lives in a persistent BAT-buffer-pool
// directory: on startup the server recovers the last checkpoint (plus
// the WAL tail) instead of re-crawling, new inserts and feedback are
// WAL-logged, and checkpoints — periodic via -checkpoint-every, forced
// via the Mirror.Checkpoint RPC, and one final on shutdown — rewrite
// only the BATs that changed.
//
// With -shards N the collection is hash-partitioned across N member
// stores (store/shard-000 … shard-N-1, each with its own manifest, heap
// files and WAL) that recover in parallel and answer queries by
// scatter-gather; clients see the same RPC surface either way. The
// layout is a stored property of the shard manifests: a sharded store
// reopens with the shard count it was built with (-shards 0), and a
// contradicting count is refused — see docs/OPERATIONS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"mirror/internal/core"
	"mirror/internal/mediaserver"
	"mirror/internal/storage"
)

func main() {
	var (
		dictAddr = flag.String("dict", "", "data dictionary address (required)")
		mediaURL = flag.String("media", "", "media server base URL; discovered via the dictionary when empty")
		addr     = flag.String("addr", "127.0.0.1:8641", "listen address")
		saveDir  = flag.String("save", "", "write a one-shot snapshot of the database to this directory after indexing (unsharded only)")
		local    = flag.Bool("local-pipeline", false, "run extraction in-process instead of via daemons")

		storeDir  = flag.String("store", "", "persistent store directory (BAT buffer pool + WAL); recovers on restart")
		walSync   = flag.Bool("wal-sync", false, "fsync the WAL on every append (durable per insert/feedback)")
		verify    = flag.Bool("verify", true, "checksum heap files when loading the store (reads every byte once at startup; set false for a pure O(working-set) mmap cold start)")
		noMmap    = flag.Bool("no-mmap", false, "load the store with the portable read path instead of mmap")
		ckptEvery = flag.Duration("checkpoint-every", 0, "checkpoint the store on this interval (0 = only on shutdown/RPC)")
		shards    = flag.Int("shards", 0, "shard the collection across N hash-partitioned stores (0 = reopen a store with its stored layout, or run unsharded when fresh)")
		codec     = flag.String("store-codec", "block", "postings segment layout: block (delta-compressed blocks with block-max pruning bounds) or raw (8-byte columns); a store recovered in the other layout is converted losslessly at open and persisted at the next checkpoint")
		refrEvery = flag.Duration("refresh-every", 0, "incrementally index newly ingested documents on this interval, publishing a fresh snapshot epoch (0 = only via the Mirror.Refresh RPC); queries are never blocked by a refresh")

		cacheBytes = flag.Int64("query-cache", 64<<20, "bytes of epoch-keyed query result cache (0 disables); entries are invalidated automatically when a refresh/recovery publishes a new epoch")
		thetaMemoN = flag.Int("theta-memo", 8192, "entries of epoch-keyed threshold memo: repeat ranked queries reopen their pruned scan with the previous run's terminal k-th score, turning them into near-pure block-directory walks (0 disables; pruning-only, results are unaffected)")

		noThetaStream = flag.Bool("no-theta-stream", false, "with -replicas: restrict scatter pruning to send-time threshold floors instead of streaming the router's rising bound into in-flight shard scans (pruning-only either way; for A/B measurement)")

		join     = flag.String("join", "", "serve as networked shard member \"i/N\" of a distributed layout (the router owns the index lifecycle; no crawl)")
		follow   = flag.String("follow", "", "with -join: run as a replication follower of the shard primary at this address, replaying its WAL-shipped stream")
		name     = flag.String("name", "", "with -follow: unique follower suffix for dictionary registration (default pid<N>)")
		replicas = flag.Int("replicas", 0, "serve as the distributed shard router over the mirror-shard daemons in the dictionary; refuses to start unless every shard has at least this many replicas registered")
	)
	flag.Parse()
	if *dictAddr == "" {
		log.Fatal("mirrord: -dict is required")
	}
	if *shards < 0 {
		log.Fatal("mirrord: -shards must be >= 0")
	}
	if *replicas > 0 && *join != "" {
		log.Fatal("mirrord: -replicas (router) and -join (shard member) are mutually exclusive")
	}
	if *follow != "" && *join == "" {
		log.Fatal("mirrord: -follow needs -join \"i/N\" to state which shard it mirrors")
	}
	if *replicas > 0 {
		runRouter(*replicas, *dictAddr, *mediaURL, *addr, *refrEvery, *thetaMemoN, *noThetaStream)
		return
	}
	if *join != "" {
		runShardMember(*join, *follow, *name, *dictAddr, *addr, memberFlags{
			storeDir: *storeDir, walSync: *walSync, verify: *verify, noMmap: *noMmap,
			codec: *codec, ckptEvery: *ckptEvery, cacheBytes: *cacheBytes,
			thetaMemoN: *thetaMemoN,
		})
		return
	}

	var r core.Retriever
	switch {
	case *storeDir != "":
		r = openStore(*storeDir, *shards, *walSync, *verify, *noMmap, *codec)
	case *shards >= 1:
		e, err := core.NewSharded(*shards)
		if err != nil {
			log.Fatalf("mirrord: %v", err)
		}
		if err := e.SetStoreCodec(*codec); err != nil {
			log.Fatalf("mirrord: %v", err)
		}
		r = e
	default:
		m, err := core.New()
		if err != nil {
			log.Fatalf("mirrord: %v", err)
		}
		if err := m.SetStoreCodec(*codec); err != nil {
			log.Fatalf("mirrord: %v", err)
		}
		r = m
	}
	setResultCache(r, *cacheBytes)
	setThetaMemo(r, *thetaMemoN)

	// A fully indexed, current recovered store serves immediately.
	// Anything else — fresh store, no store, a store recovered from a
	// crash before its first checkpoint (WAL inserts present but no
	// content index), or an indexed store with pending documents (rasters
	// are never persisted, so the crawl re-attaches them before the
	// catch-up Refresh below) — is built/repaired by crawling the media
	// server: known URLs get their rasters re-attached, new ones are
	// ingested, then the pipeline (full build) or an incremental refresh
	// runs.
	if r.Size() == 0 || !r.Indexed() || !r.Current() {
		base := *mediaURL
		if base == "" {
			base = discoverMediaServer(*dictAddr)
		}
		fmt.Printf("mirrord: crawling %s\n", base)
		crawled, err := mediaserver.Crawl(base)
		if err != nil {
			log.Fatalf("mirrord: crawl: %v", err)
		}
		known := map[string]bool{}
		for _, u := range r.URLs() {
			known[u] = true
		}
		for _, it := range crawled {
			img, err := mediaserver.DecodeItemImage(it)
			if err != nil {
				log.Fatalf("mirrord: decode %s: %v", it.URL, err)
			}
			if known[it.URL] {
				if err := r.AddRaster(it.URL, img); err != nil {
					log.Fatalf("mirrord: re-attach %s: %v", it.URL, err)
				}
				continue
			}
			if err := r.AddImage(it.URL, it.Annotation, img); err != nil {
				log.Fatalf("mirrord: ingest %s: %v", it.URL, err)
			}
		}
		rebuild := !r.Indexed()
		if !rebuild {
			// Incremental catch-up: the recovered epoch keeps serving while
			// the pending documents are assigned to the frozen codebooks
			// and published as a delta segment. A store that cannot refresh
			// (no codebook: distributed build or pre-codebook checkpoint)
			// falls back to the full rebuild below instead of dying.
			st, err := r.Refresh()
			if err != nil {
				log.Printf("mirrord: catch-up refresh failed (%v); falling back to a full rebuild", err)
				rebuild = true
			} else {
				fmt.Printf("mirrord: catch-up refresh: +%d docs, epoch %d (%d segments)\n",
					st.NewDocs, st.Epoch, st.Segments)
			}
		}
		if rebuild {
			fmt.Printf("mirrord: ingested %d items; running extraction pipeline...\n", r.Size())
			opts := core.DefaultIndexOptions()
			if *local {
				err = r.BuildContentIndex(opts)
			} else {
				err = r.BuildContentIndexDistributed(opts, *dictAddr)
			}
			if err != nil {
				log.Fatalf("mirrord: pipeline: %v", err)
			}
		}
		if r.Persistent() {
			st, err := r.Checkpoint()
			if err != nil {
				log.Fatalf("mirrord: checkpoint: %v", err)
			}
			fmt.Printf("mirrord: initial checkpoint: %d BATs written (%d bytes)\n", st.Written, st.Bytes)
		}
	}
	if *saveDir != "" {
		m, ok := r.(*core.Mirror)
		if !ok {
			log.Fatal("mirrord: -save snapshots are unsharded only (checkpoint the sharded store instead)")
		}
		if err := m.Save(*saveDir); err != nil {
			log.Fatalf("mirrord: save: %v", err)
		}
		fmt.Printf("mirrord: database saved to %s\n", *saveDir)
	}

	bound, stop, err := core.Serve(r, *addr, *dictAddr)
	if err != nil {
		log.Fatalf("mirrord: %v", err)
	}
	defer stop()
	fmt.Printf("mirrord: Mirror DBMS serving at %s\n", bound)

	ticker := make(<-chan time.Time)
	if r.Persistent() && *ckptEvery > 0 {
		t := time.NewTicker(*ckptEvery)
		defer t.Stop()
		ticker = t.C
	}
	// The refresh loop is the background indexing thread: newly ingested
	// documents become retrievable without any restart or rebuild, and
	// delta-segment compaction rides along. Queries keep serving the
	// previous epoch throughout each tick.
	refresh := make(<-chan time.Time)
	if *refrEvery > 0 {
		t := time.NewTicker(*refrEvery)
		defer t.Stop()
		refresh = t.C
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	for {
		select {
		case <-ticker:
			st, err := r.Checkpoint()
			if err != nil {
				log.Printf("mirrord: periodic checkpoint: %v", err)
			} else if st.Written > 0 {
				fmt.Printf("mirrord: checkpoint: %d dirty BATs written, %d clean skipped\n", st.Written, st.Skipped)
			}
		case <-refresh:
			st, err := r.Refresh()
			if err != nil {
				log.Printf("mirrord: periodic refresh: %v", err)
			} else if st.NewDocs > 0 {
				fmt.Printf("mirrord: refresh: +%d docs, epoch %d (%d merges, %d segments)\n",
					st.NewDocs, st.Epoch, st.Merges, st.Segments)
			}
		case <-sig:
			// Stop accepting new connections before the final flush.
			// Deliberately no ClosePersistent: in-flight queries may
			// still hold mmap-backed BATs, and process exit reclaims
			// the mappings and file handles safely.
			stop()
			if r.Persistent() {
				st, err := r.Checkpoint()
				if err != nil {
					log.Printf("mirrord: final checkpoint: %v", err)
				} else {
					fmt.Printf("mirrord: final checkpoint: %d written, %d skipped\n", st.Written, st.Skipped)
				}
			}
			return
		}
	}
}

// openStore opens the persistent store, standalone or sharded. Layout
// resolution: an explicit -shards N >= 1 demands a sharded store with N
// members (fresh stores are created that way); -shards 0 reopens whatever
// layout the directory holds, defaulting to standalone for fresh stores.
func openStore(dir string, shards int, walSync, verify, noMmap bool, codec string) core.Retriever {
	standalone := storage.IsStore(dir)
	_, shard0Err := os.Stat(filepath.Join(dir, "shard-000"))
	sharded := shards >= 1 || shard0Err == nil
	if sharded && standalone {
		log.Fatalf("mirrord: %s holds a standalone store; it cannot be opened with -shards (resharding in place is not supported)", dir)
	}
	if sharded {
		e, stats, err := core.OpenShardedPersistent(core.ShardedPersistOptions{
			Dir: dir, Shards: shards, WALSync: walSync, Verify: verify, NoMmap: noMmap,
			StoreCodec: codec,
		})
		if err != nil {
			log.Fatalf("mirrord: open sharded store: %v", err)
		}
		for _, s := range stats.TornTails {
			log.Printf("mirrord: WARNING: truncated a torn WAL tail on shard %d (recovered to last consistent state)", s)
		}
		fmt.Printf("mirrord: sharded store %s: %d shards, %d BATs, %d WAL records replayed, %d items\n",
			dir, stats.Shards, stats.BATs, stats.WALRecords, e.Size())
		return e
	}
	m, stats, err := core.OpenPersistent(core.PersistOptions{
		Dir: dir, WALSync: walSync, Verify: verify, NoMmap: noMmap,
		StoreCodec: codec,
	})
	if err != nil {
		log.Fatalf("mirrord: open store: %v", err)
	}
	if stats.TornTail {
		log.Printf("mirrord: WARNING: truncated a torn WAL tail in %s (recovered to last consistent state)", dir)
	}
	fmt.Printf("mirrord: store %s: %d BATs, %d WAL records replayed, %d items\n",
		dir, stats.BATs, stats.WALRecords, m.Size())
	return m
}

// setResultCache turns on the epoch-keyed query result cache for either
// retriever shape (single store or sharded engine).
func setResultCache(r core.Retriever, maxBytes int64) {
	type cacheSetter interface{ SetResultCache(int64) }
	if cs, ok := r.(cacheSetter); ok {
		cs.SetResultCache(maxBytes)
	}
}

// setThetaMemo sizes (or disables) the epoch-keyed threshold memo for
// either retriever shape. The constructor default matches the flag
// default, so this only acts when the operator overrides it.
func setThetaMemo(r core.Retriever, maxEntries int) {
	type memoSetter interface{ SetThetaMemo(int) }
	if ms, ok := r.(memoSetter); ok {
		ms.SetThetaMemo(maxEntries)
	}
}
