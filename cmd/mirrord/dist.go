// Distributed topology modes: -join runs this process as one networked
// shard member (primary, or a WAL-shipped follower with -follow); -replicas
// runs it as the shard router, the distributed face clients connect to.
// See docs/OPERATIONS.md, "Distributed topology".
package main

import (
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"mirror/internal/core"
	"mirror/internal/dict"
	"mirror/internal/dist"
	"mirror/internal/mediaserver"
)

// epochHistoryDepth is how many retired epochs a shard member keeps
// servable: a router query pinned to tag T survives T having been
// superseded up to this many publish rounds ago (slow scatter legs,
// follower replay lag).
const epochHistoryDepth = 8

// parseJoin parses the -join layout position "i/N".
func parseJoin(s string) (index, count int) {
	if _, err := fmt.Sscanf(s, "%d/%d", &index, &count); err != nil || count <= 0 || index < 0 || index >= count {
		log.Fatalf("mirrord: -join wants a layout position \"i/N\" with 0 <= i < N, got %q", s)
	}
	return index, count
}

// runShardMember serves one shard of a distributed layout: a WAL-shipping
// primary, or (with -follow) a read-only follower replaying the primary's
// stream. The router owns the index lifecycle — members never crawl,
// extract or refresh on their own.
func runShardMember(join, follow, name, dictAddr, addr string, fl memberFlags) {
	index, count := parseJoin(join)
	var m *core.Mirror
	if fl.storeDir != "" {
		var err error
		var stats core.RecoveryStats
		m, stats, err = core.OpenPersistent(core.PersistOptions{
			Dir: fl.storeDir, WALSync: fl.walSync, Verify: fl.verify, NoMmap: fl.noMmap,
			StoreCodec: fl.codec, ShardIndex: index, ShardCount: count,
		})
		if err != nil {
			log.Fatalf("mirrord: open shard store: %v", err)
		}
		if stats.TornTail {
			log.Printf("mirrord: WARNING: truncated a torn WAL tail in %s (recovered to last consistent state)", fl.storeDir)
		}
		fmt.Printf("mirrord: shard store %s: %d BATs, %d WAL records replayed, %d items\n",
			fl.storeDir, stats.BATs, stats.WALRecords, m.Size())
	} else {
		var err error
		m, err = core.NewShardMember(index, count)
		if err != nil {
			log.Fatalf("mirrord: %v", err)
		}
		if err := m.SetStoreCodec(fl.codec); err != nil {
			log.Fatalf("mirrord: %v", err)
		}
	}
	m.KeepEpochHistory(epochHistoryDepth)

	regName := fmt.Sprintf("shard-%d-of-%d", index, count)
	var stopFollow chan struct{}
	if follow != "" {
		m.SetFollower()
		suffix := name
		if suffix == "" {
			suffix = fmt.Sprintf("pid%d", os.Getpid())
		}
		regName = fmt.Sprintf("%s-follower-%s", regName, suffix)
		stopFollow = make(chan struct{})
		go dist.Follow(m, follow, 200*time.Millisecond, 5*time.Second, stopFollow)
		fmt.Printf("mirrord: following primary at %s\n", follow)
	} else {
		m.EnableShipping()
	}
	setResultCache(m, fl.cacheBytes)
	setThetaMemo(m, fl.thetaMemoN)

	bound, stop, err := core.ServeAs(m, addr, dictAddr, "mirror-shard", regName)
	if err != nil {
		log.Fatalf("mirrord: %v", err)
	}
	defer stop()
	fmt.Printf("mirrord: %s serving at %s\n", m.Topology(), bound)

	ticker := make(<-chan time.Time)
	if m.Persistent() && fl.ckptEvery > 0 {
		t := time.NewTicker(fl.ckptEvery)
		defer t.Stop()
		ticker = t.C
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	for {
		select {
		case <-ticker:
			st, err := m.Checkpoint()
			if err != nil {
				log.Printf("mirrord: periodic checkpoint: %v", err)
			} else if st.Written > 0 {
				fmt.Printf("mirrord: checkpoint: %d dirty BATs written, %d clean skipped\n", st.Written, st.Skipped)
			}
		case <-sig:
			if stopFollow != nil {
				close(stopFollow)
			}
			stop()
			if m.Persistent() {
				if _, err := m.Checkpoint(); err != nil {
					log.Printf("mirrord: final checkpoint: %v", err)
				}
			}
			return
		}
	}
}

// memberFlags carries the store/serving flags shared with standalone mode.
type memberFlags struct {
	storeDir   string
	walSync    bool
	verify     bool
	noMmap     bool
	codec      string
	ckptEvery  time.Duration
	cacheBytes int64
	thetaMemoN int
}

// runRouter serves the distributed router: discover the shard daemons
// from the dictionary, crawl the media server, route every document to
// its home shard, run the extraction pipeline router-side and publish the
// global model to every shard, then serve the standard Mirror DBMS
// surface. The router holds no store of its own — durability lives with
// the shard members; a restarted router re-crawls (deterministic order)
// and converges on the shards' surviving state.
func runRouter(replicas int, dictAddr, mediaURL, addr string, refrEvery time.Duration, thetaMemoN int, noThetaStream bool) {
	e, err := dist.Discover(dictAddr, dist.Options{NoThetaStream: noThetaStream})
	if err != nil {
		log.Fatalf("mirrord: %v", err)
	}
	setThetaMemo(e, thetaMemoN)
	if min := e.MinReplicas(); min < replicas {
		log.Fatalf("mirrord: -replicas %d: a shard has only %d replicas registered", replicas, min)
	}
	fmt.Printf("mirrord: %s\n", e.Topology())

	base := mediaURL
	if base == "" {
		base = discoverMediaServer(dictAddr)
	}
	fmt.Printf("mirrord: crawling %s\n", base)
	crawled, err := mediaserver.Crawl(base)
	if err != nil {
		log.Fatalf("mirrord: crawl: %v", err)
	}
	for _, it := range crawled {
		img, err := mediaserver.DecodeItemImage(it)
		if err != nil {
			log.Fatalf("mirrord: decode %s: %v", it.URL, err)
		}
		if err := e.AddImage(it.URL, it.Annotation, img); err != nil {
			log.Fatalf("mirrord: ingest %s: %v", it.URL, err)
		}
	}
	fmt.Printf("mirrord: routed %d items; running extraction pipeline...\n", e.Size())
	if err := e.BuildContentIndex(core.DefaultIndexOptions()); err != nil {
		log.Fatalf("mirrord: pipeline: %v", err)
	}

	bound, stop, err := core.Serve(e, addr, dictAddr)
	if err != nil {
		log.Fatalf("mirrord: %v", err)
	}
	defer stop()
	fmt.Printf("mirrord: Mirror DBMS (distributed router) serving at %s\n", bound)

	refresh := make(<-chan time.Time)
	if refrEvery > 0 {
		t := time.NewTicker(refrEvery)
		defer t.Stop()
		refresh = t.C
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	for {
		select {
		case <-refresh:
			st, err := e.Refresh()
			if err != nil {
				log.Printf("mirrord: periodic refresh: %v", err)
			} else if st.NewDocs > 0 {
				fmt.Printf("mirrord: refresh: +%d docs, epoch %d\n", st.NewDocs, st.Epoch)
			}
		case <-sig:
			stop()
			return
		}
	}
}

// discoverMediaServer resolves the media server base URL from the
// dictionary (shared between standalone and router modes).
func discoverMediaServer(dictAddr string) string {
	dc, err := dict.Dial(dictAddr)
	if err != nil {
		log.Fatalf("mirrord: %v", err)
	}
	infos, err := dc.List("mediaserver")
	dc.Close()
	if err != nil || len(infos) == 0 {
		log.Fatalf("mirrord: no media server registered (%v)", err)
	}
	return "http://" + infos[0].Addr
}
