// Package mirror is a from-scratch Go reproduction of "The Mirror MMDBMS
// Architecture" (de Vries, van Doorn, Blanken, Apers; VLDB 1999): a
// multimedia DBMS that implements an extensible object-oriented logical
// data model (the Moa object algebra) on a binary relational physical data
// model (a Monet-style BAT kernel), with the inference network retrieval
// model integrated as the CONTREP structure, and the paper's open
// distributed architecture (data dictionary, extraction daemons, media
// server) built over TCP.
//
// The public surface lives in the internal packages (this repository is a
// self-contained reproduction, consumed through its examples and
// binaries):
//
//	internal/bat        the binary-relational physical layer (BATs),
//	                    serial + morsel-parallel operators
//	internal/storage    the persistent BAT buffer pool (BBP): heap
//	                    files, mmap loads, incremental checkpoints
//	internal/mil        the MIL physical execution language
//	internal/moa        the Moa object algebra: parser, checker, optimizer,
//	                    flattening translator, tuple-at-a-time interpreter
//	internal/ir         text analysis + inference network + CONTREP
//	internal/media      images, PPM codec, synthetic scenes
//	internal/feature    segmentation + 6 feature extraction daemons
//	internal/cluster    AutoClass-style Bayesian classification
//	internal/thesaurus  the association thesaurus (dual coding)
//	internal/dict       the distributed data dictionary
//	internal/daemon     the daemon framework (RPC, CORBA substitute)
//	internal/mediaserver the HTTP media server and web robot
//	internal/core       the Mirror DBMS facade and network server
//
// ARCHITECTURE.md at the repository root maps the paper onto these
// packages, specifies the on-disk store format (manifest, heap files,
// WAL, recovery sequence), and describes the parallel execution layer;
// docs/MIL.md is the reference for every MIL builtin, each with an
// example runnable in cmd/moash via \milrun.
//
// bench_test.go and experiments_test.go in this directory regenerate the
// experiment suite documented in EXPERIMENTS.md (E1–E10).
package mirror
