// Package media provides the multimedia substrate of the demo system: an
// RGB raster image type, PPM/PGM codecs (so the media server can serve real
// files), and a seeded synthetic scene generator that substitutes for the
// paper's web-robot-collected image collection. Scenes are composed of
// regions drawn from known latent visual classes (colour + texture), which
// preserves the property the demo depends on — that extracted features
// cluster into units correlated with annotation vocabulary — while adding
// ground truth the original demo lacked.
package media

import (
	"bufio"
	"fmt"
	"io"
)

// Image is an 8-bit RGB raster.
type Image struct {
	W, H int
	Pix  []RGB // row-major, len W*H
}

// RGB is one 8-bit pixel.
type RGB struct{ R, G, B uint8 }

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]RGB, w*h)}
}

// At returns the pixel at (x, y); out-of-bounds reads return black.
func (im *Image) At(x, y int) RGB {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return RGB{}
	}
	return im.Pix[y*im.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, c RGB) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = c
}

// Gray returns the luma of the pixel at (x, y) in [0,255].
func (im *Image) Gray(x, y int) float64 {
	c := im.At(x, y)
	return 0.299*float64(c.R) + 0.587*float64(c.G) + 0.114*float64(c.B)
}

// SubImage copies the rectangle [x0,x1)×[y0,y1) into a new image, clamped
// to the source bounds.
func (im *Image) SubImage(x0, y0, x1, y1 int) *Image {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > im.W {
		x1 = im.W
	}
	if y1 > im.H {
		y1 = im.H
	}
	if x1 < x0 {
		x1 = x0
	}
	if y1 < y0 {
		y1 = y0
	}
	out := NewImage(x1-x0, y1-y0)
	for y := y0; y < y1; y++ {
		copy(out.Pix[(y-y0)*out.W:(y-y0+1)*out.W], im.Pix[y*im.W+x0:y*im.W+x1])
	}
	return out
}

// EncodePPM writes the image as binary PPM (P6).
func (im *Image) EncodePPM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	buf := make([]byte, 0, im.W*3)
	for y := 0; y < im.H; y++ {
		buf = buf[:0]
		for x := 0; x < im.W; x++ {
			c := im.Pix[y*im.W+x]
			buf = append(buf, c.R, c.G, c.B)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodePPM reads a binary PPM (P6) image.
func DecodePPM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, fmt.Errorf("media: ppm header: %w", err)
	}
	if magic != "P6" {
		return nil, fmt.Errorf("media: not a P6 ppm: %q", magic)
	}
	w, h, maxv, err := readPNMHeader(br)
	if err != nil {
		return nil, err
	}
	if maxv != 255 {
		return nil, fmt.Errorf("media: unsupported maxval %d", maxv)
	}
	im := NewImage(w, h)
	buf := make([]byte, w*h*3)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("media: ppm pixels: %w", err)
	}
	for i := range im.Pix {
		im.Pix[i] = RGB{buf[3*i], buf[3*i+1], buf[3*i+2]}
	}
	return im, nil
}

// readPNMHeader reads width, height, maxval skipping comments, consuming the
// single whitespace after maxval.
func readPNMHeader(br *bufio.Reader) (w, h, maxv int, err error) {
	vals := [3]int{}
	for i := 0; i < 3; i++ {
		v, err := readPNMInt(br)
		if err != nil {
			return 0, 0, 0, err
		}
		vals[i] = v
	}
	return vals[0], vals[1], vals[2], nil
}

func readPNMInt(br *bufio.Reader) (int, error) {
	// skip whitespace and comments
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil {
				return 0, err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			// skip
		case b >= '0' && b <= '9':
			n := int(b - '0')
			for {
				b, err := br.ReadByte()
				if err != nil {
					return n, nil
				}
				if b < '0' || b > '9' {
					// the single separator after the number is consumed
					return n, nil
				}
				n = n*10 + int(b-'0')
			}
		default:
			return 0, fmt.Errorf("media: unexpected byte %q in pnm header", b)
		}
	}
}
