package media

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestImageBasics(t *testing.T) {
	im := NewImage(4, 3)
	im.Set(1, 2, RGB{10, 20, 30})
	if c := im.At(1, 2); c != (RGB{10, 20, 30}) {
		t.Fatalf("At = %v", c)
	}
	if c := im.At(-1, 0); c != (RGB{}) {
		t.Fatal("out of bounds read should be black")
	}
	im.Set(99, 99, RGB{1, 1, 1}) // must not panic
	g := im.Gray(1, 2)
	want := 0.299*10 + 0.587*20 + 0.114*30
	if g < want-1e-9 || g > want+1e-9 {
		t.Fatalf("gray = %v, want %v", g, want)
	}
}

func TestSubImage(t *testing.T) {
	im := NewImage(10, 10)
	im.Set(5, 5, RGB{255, 0, 0})
	sub := im.SubImage(4, 4, 8, 8)
	if sub.W != 4 || sub.H != 4 {
		t.Fatalf("sub dims = %dx%d", sub.W, sub.H)
	}
	if sub.At(1, 1) != (RGB{255, 0, 0}) {
		t.Fatal("sub pixel wrong")
	}
	clamped := im.SubImage(-5, -5, 100, 100)
	if clamped.W != 10 || clamped.H != 10 {
		t.Fatalf("clamp dims = %dx%d", clamped.W, clamped.H)
	}
	empty := im.SubImage(8, 8, 2, 2)
	if empty.W != 0 {
		t.Fatal("inverted rect should clamp to empty")
	}
}

func TestPPMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	im := NewImage(13, 7)
	for i := range im.Pix {
		im.Pix[i] = RGB{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))}
	}
	var buf bytes.Buffer
	if err := im.EncodePPM(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != im.W || got.H != im.H {
		t.Fatalf("dims = %dx%d", got.W, got.H)
	}
	for i := range im.Pix {
		if got.Pix[i] != im.Pix[i] {
			t.Fatalf("pixel %d = %v, want %v", i, got.Pix[i], im.Pix[i])
		}
	}
}

func TestPPMWithComments(t *testing.T) {
	data := []byte("P6\n# a comment\n2 1\n# another\n255\n\xff\x00\x00\x00\xff\x00")
	im, err := DecodePPM(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 2 || im.H != 1 || im.At(0, 0) != (RGB{255, 0, 0}) {
		t.Fatalf("decoded = %+v", im)
	}
}

func TestPPMErrors(t *testing.T) {
	if _, err := DecodePPM(bytes.NewReader([]byte("P5\n1 1\n255\nx"))); err == nil {
		t.Fatal("P5 should be rejected")
	}
	if _, err := DecodePPM(bytes.NewReader([]byte("P6\n2 2\n255\nxx"))); err == nil {
		t.Fatal("truncated pixels should fail")
	}
	if _, err := DecodePPM(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestPropPPMRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 1+rng.Intn(20), 1+rng.Intn(20)
		im := NewImage(w, h)
		for i := range im.Pix {
			im.Pix[i] = RGB{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))}
		}
		var buf bytes.Buffer
		if err := im.EncodePPM(&buf); err != nil {
			return false
		}
		got, err := DecodePPM(&buf)
		if err != nil || got.W != w || got.H != h {
			return false
		}
		for i := range im.Pix {
			if got.Pix[i] != im.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateSceneDeterministic(t *testing.T) {
	s1 := GenerateScene(rand.New(rand.NewSource(5)), 32, 32, []int{0, 2})
	s2 := GenerateScene(rand.New(rand.NewSource(5)), 32, 32, []int{0, 2})
	if len(s1.Regions) != 2 || len(s2.Regions) != 2 {
		t.Fatalf("regions = %d/%d", len(s1.Regions), len(s2.Regions))
	}
	for i := range s1.Img.Pix {
		if s1.Img.Pix[i] != s2.Img.Pix[i] {
			t.Fatal("same seed should give identical scenes")
		}
	}
	s3 := GenerateScene(rand.New(rand.NewSource(6)), 32, 32, []int{0, 2})
	same := true
	for i := range s1.Img.Pix {
		if s1.Img.Pix[i] != s3.Img.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestSceneRegionsCoverClasses(t *testing.T) {
	for n := 1; n <= 4; n++ {
		classes := make([]int, n)
		for i := range classes {
			classes[i] = i
		}
		s := GenerateScene(rand.New(rand.NewSource(int64(n))), 40, 40, classes)
		if len(s.Regions) != n {
			t.Fatalf("n=%d: regions = %d", n, len(s.Regions))
		}
		area := 0
		for _, r := range s.Regions {
			area += (r.X1 - r.X0) * (r.Y1 - r.Y0)
		}
		if area != 40*40 {
			t.Fatalf("n=%d: regions cover %d px, want %d", n, area, 1600)
		}
	}
}

func TestClassIndex(t *testing.T) {
	if ClassIndex("sky") != 0 {
		t.Fatal("sky should be class 0")
	}
	if ClassIndex("nope") != -1 {
		t.Fatal("unknown class should be -1")
	}
	for i, c := range Classes {
		if ClassIndex(c.Name) != i {
			t.Fatalf("class %q index mismatch", c.Name)
		}
	}
}

func TestClassesVisuallyDistinct(t *testing.T) {
	// mean colours of rendered swatches should differ pairwise for most
	// class pairs (the premise of colour clustering)
	means := make([][3]float64, len(Classes))
	for i := range Classes {
		s := GenerateScene(rand.New(rand.NewSource(1)), 24, 24, []int{i})
		var r, g, b float64
		for _, p := range s.Img.Pix {
			r += float64(p.R)
			g += float64(p.G)
			b += float64(p.B)
		}
		n := float64(len(s.Img.Pix))
		means[i] = [3]float64{r / n, g / n, b / n}
	}
	distinct := 0
	total := 0
	for i := 0; i < len(means); i++ {
		for j := i + 1; j < len(means); j++ {
			total++
			dr := means[i][0] - means[j][0]
			dg := means[i][1] - means[j][1]
			db := means[i][2] - means[j][2]
			if dr*dr+dg*dg+db*db > 30*30 {
				distinct++
			}
		}
	}
	if distinct < total*8/10 {
		t.Fatalf("only %d/%d class pairs are colour-distinct", distinct, total)
	}
}
