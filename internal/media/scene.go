package media

import (
	"math"
	"math/rand"
)

// VisualClass is a latent visual class of the synthetic collection: a base
// colour plus a parametric texture. The feature extractors and the
// clustering stage must (and, measurably, do) rediscover these classes —
// that is experiment E6.
type VisualClass struct {
	Name    string
	Base    RGB
	Texture string  // "flat", "stripes", "checker", "noise"
	Freq    float64 // spatial frequency of the texture
	Orient  float64 // stripe orientation, radians
	Amp     float64 // texture amplitude, 0..1
	Jitter  float64 // per-scene colour jitter, 0..1
}

// Classes is the fixed palette of latent classes used by the corpus
// generator. Names double as the seeds of the annotation vocabulary.
var Classes = []VisualClass{
	{Name: "sky", Base: RGB{110, 160, 230}, Texture: "flat", Amp: 0.05, Jitter: 0.08},
	{Name: "sunset", Base: RGB{235, 120, 60}, Texture: "stripes", Freq: 0.05, Orient: 0, Amp: 0.25, Jitter: 0.10},
	{Name: "water", Base: RGB{40, 90, 160}, Texture: "stripes", Freq: 0.30, Orient: 0.2, Amp: 0.30, Jitter: 0.08},
	{Name: "forest", Base: RGB{30, 110, 40}, Texture: "noise", Freq: 0.8, Amp: 0.35, Jitter: 0.10},
	{Name: "sand", Base: RGB{220, 195, 140}, Texture: "noise", Freq: 0.5, Amp: 0.12, Jitter: 0.06},
	{Name: "brick", Base: RGB{170, 70, 50}, Texture: "checker", Freq: 0.18, Amp: 0.35, Jitter: 0.06},
	{Name: "grass", Base: RGB{90, 170, 60}, Texture: "stripes", Freq: 0.55, Orient: 1.3, Amp: 0.30, Jitter: 0.10},
	{Name: "snow", Base: RGB{235, 240, 248}, Texture: "noise", Freq: 0.3, Amp: 0.06, Jitter: 0.03},
	{Name: "night", Base: RGB{20, 25, 60}, Texture: "noise", Freq: 0.9, Amp: 0.15, Jitter: 0.08},
	{Name: "rock", Base: RGB{120, 115, 110}, Texture: "checker", Freq: 0.45, Amp: 0.25, Jitter: 0.08},
}

// ClassIndex resolves a class name.
func ClassIndex(name string) int {
	for i, c := range Classes {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// SceneRegion is one rectangular region of a generated scene with its
// ground-truth class.
type SceneRegion struct {
	X0, Y0, X1, Y1 int
	Class          int
}

// Scene is a generated image plus its ground truth.
type Scene struct {
	Img     *Image
	Regions []SceneRegion
}

// GenerateScene renders an image composed of len(classIdx) regions (1–4)
// arranged as horizontal bands, vertical bands or quadrants, chosen by rng.
func GenerateScene(rng *rand.Rand, w, h int, classIdx []int) *Scene {
	img := NewImage(w, h)
	sc := &Scene{Img: img}
	n := len(classIdx)
	if n == 0 {
		return sc
	}
	var rects [][4]int
	switch {
	case n == 1:
		rects = [][4]int{{0, 0, w, h}}
	case n == 2 && rng.Intn(2) == 0:
		mid := h/3 + rng.Intn(h/3+1)
		rects = [][4]int{{0, 0, w, mid}, {0, mid, w, h}}
	case n == 2:
		mid := w/3 + rng.Intn(w/3+1)
		rects = [][4]int{{0, 0, mid, h}, {mid, 0, w, h}}
	case n == 3:
		m1, m2 := h/3, 2*h/3
		rects = [][4]int{{0, 0, w, m1}, {0, m1, w, m2}, {0, m2, w, h}}
	default:
		mx, my := w/2, h/2
		rects = [][4]int{{0, 0, mx, my}, {mx, 0, w, my}, {0, my, mx, h}, {mx, my, w, h}}
	}
	for i, r := range rects {
		if i >= n {
			break
		}
		cls := classIdx[i]
		renderRegion(img, rng, r[0], r[1], r[2], r[3], &Classes[cls])
		sc.Regions = append(sc.Regions, SceneRegion{X0: r[0], Y0: r[1], X1: r[2], Y1: r[3], Class: cls})
	}
	return sc
}

// renderRegion fills a rectangle with a class's colour and texture.
func renderRegion(img *Image, rng *rand.Rand, x0, y0, x1, y1 int, c *VisualClass) {
	jr := 1 + c.Jitter*(rng.Float64()*2-1)
	jg := 1 + c.Jitter*(rng.Float64()*2-1)
	jb := 1 + c.Jitter*(rng.Float64()*2-1)
	phase := rng.Float64() * 2 * math.Pi
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			var m float64
			switch c.Texture {
			case "stripes":
				u := float64(x)*math.Cos(c.Orient) + float64(y)*math.Sin(c.Orient)
				m = c.Amp * math.Sin(2*math.Pi*c.Freq*u+phase)
			case "checker":
				p := int(float64(x)*c.Freq) + int(float64(y)*c.Freq)
				if p%2 == 0 {
					m = c.Amp
				} else {
					m = -c.Amp
				}
			case "noise":
				m = c.Amp * (rng.Float64()*2 - 1)
			default: // flat
				m = c.Amp * (rng.Float64()*2 - 1) * 0.3
			}
			f := 1 + m
			img.Set(x, y, RGB{
				R: clamp8(float64(c.Base.R) * f * jr),
				G: clamp8(float64(c.Base.G) * f * jg),
				B: clamp8(float64(c.Base.B) * f * jb),
			})
		}
	}
}

func clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}
