package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// TextConfig parameterises the pure-text collection used by the
// scalability experiments (E4/E5): synthetic documents over a Zipfian
// vocabulary, which reproduces the posting-list skew real text has.
type TextConfig struct {
	N       int   // documents
	Vocab   int   // vocabulary size
	DocLen  int   // mean document length (tokens)
	Seed    int64 // RNG seed
	ZipfS   float64
	ZipfFix bool // when true every doc has exactly DocLen tokens
}

// DefaultTextConfig matches the default scaling sweep point.
func DefaultTextConfig(n int) TextConfig {
	return TextConfig{N: n, Vocab: 5000, DocLen: 80, Seed: 7, ZipfS: 1.1}
}

// TextCollection generates n synthetic documents. Term i is the string
// "term<i>"; term frequencies follow a Zipf distribution so that common
// terms have long posting lists and rare terms short ones.
func TextCollection(cfg TextConfig) []string {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, math.Max(cfg.ZipfS, 1.01), 1, uint64(cfg.Vocab-1))
	docs := make([]string, cfg.N)
	var sb strings.Builder
	for i := 0; i < cfg.N; i++ {
		dl := cfg.DocLen
		if !cfg.ZipfFix {
			dl = cfg.DocLen/2 + rng.Intn(cfg.DocLen+1)
		}
		sb.Reset()
		for t := 0; t < dl; t++ {
			if t > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "term%d", zipf.Uint64())
		}
		docs[i] = sb.String()
	}
	return docs
}

// QueryTerms picks k query terms of medium frequency ("term10".."term<k+10>"
// band): frequent enough to have postings, rare enough to discriminate.
func QueryTerms(k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = fmt.Sprintf("term%d", 10+i*3)
	}
	return out
}
