// Package corpus generates the demo collection: the stand-in for the
// paper's web-robot crawl. Every item is a synthetic scene composed of
// latent visual classes (internal/media) plus — for a configurable fraction
// of items, since in the paper only "some of the images in the library are
// annotated" — a textual annotation whose vocabulary correlates with those
// classes. Ground-truth class labels are kept, turning the original demo
// into measurable experiments (E6, E8, E9).
package corpus

import (
	"fmt"
	"math/rand"

	"mirror/internal/media"
)

// classWords maps each visual class to its annotation vocabulary. The
// first word is the class's "canonical" term, used by evaluation to form
// queries with a known right answer.
var classWords = map[string][]string{
	"sky":    {"sky", "blue", "clouds", "daylight"},
	"sunset": {"sunset", "orange", "evening", "dusk", "glow"},
	"water":  {"ocean", "water", "sea", "waves"},
	"forest": {"forest", "trees", "woods", "pines"},
	"sand":   {"beach", "sand", "dunes", "shore"},
	"brick":  {"brick", "wall", "masonry", "building"},
	"grass":  {"grass", "meadow", "field", "lawn"},
	"snow":   {"snow", "winter", "frost", "white"},
	"night":  {"night", "stars", "dark", "skyline"},
	"rock":   {"mountain", "rock", "stone", "cliff"},
}

// fillerWords pad annotations with class-neutral vocabulary.
var fillerWords = []string{
	"photo", "picture", "image", "view", "scene", "shot", "taken",
	"beautiful", "lovely", "bright", "calm", "wide",
}

// ClassWords returns the annotation vocabulary of a class index.
func ClassWords(classIdx int) []string {
	return classWords[media.Classes[classIdx].Name]
}

// CanonicalTerm returns the query term whose ground-truth answer is the
// set of images containing classIdx.
func CanonicalTerm(classIdx int) string {
	return classWords[media.Classes[classIdx].Name][0]
}

// Config parameterises collection generation.
type Config struct {
	N            int     // number of images
	W, H         int     // image dimensions
	Seed         int64   // RNG seed; equal seeds give equal collections
	AnnotateRate float64 // fraction of images that carry an annotation

	// ClassZipf > 1 draws latent classes zipf-weighted (class 0 most
	// common) instead of uniformly. Real collections are skewed, and the
	// skew matters to retrieval: common classes yield long posting lists
	// of low-belief terms, rare classes short spikes of high beliefs —
	// the regime where threshold pruning (and seeded repeats) act.
	// Uniform class draws are the block-max worst case: every term's
	// beliefs look alike and no bound separates blocks. <= 1 keeps the
	// uniform draw.
	ClassZipf float64
}

// DefaultConfig is the demo-scale collection.
func DefaultConfig() Config {
	return Config{N: 60, W: 64, H: 64, Seed: 1, AnnotateRate: 0.7}
}

// Item is one collection entry.
type Item struct {
	URL        string
	Scene      *media.Scene
	Annotation string // "" when the robot found no annotation
	Classes    []int  // ground-truth latent classes, in region order
}

// HasClass reports whether the item contains the class.
func (it *Item) HasClass(class int) bool {
	for _, c := range it.Classes {
		if c == class {
			return true
		}
	}
	return false
}

// Generate produces the collection deterministically from cfg.Seed.
func Generate(cfg Config) []*Item {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if cfg.ClassZipf > 1 {
		zipf = rand.NewZipf(rng, cfg.ClassZipf, 1, uint64(len(media.Classes)-1))
	}
	items := make([]*Item, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		nRegions := 1 + rng.Intn(3)
		classes := make([]int, 0, nRegions)
		used := map[int]bool{}
		for len(classes) < nRegions {
			var c int
			if zipf != nil {
				c = int(zipf.Uint64())
			} else {
				c = rng.Intn(len(media.Classes))
			}
			if used[c] {
				continue
			}
			used[c] = true
			classes = append(classes, c)
		}
		scene := media.GenerateScene(rng, cfg.W, cfg.H, classes)
		it := &Item{
			URL:     fmt.Sprintf("http://mediaserver/img/%04d.ppm", i),
			Scene:   scene,
			Classes: classes,
		}
		if rng.Float64() < cfg.AnnotateRate {
			it.Annotation = annotate(rng, classes)
		}
		items = append(items, it)
	}
	return items
}

// annotate builds an annotation string: 2–3 words per present class plus
// 1–3 filler words, shuffled.
func annotate(rng *rand.Rand, classes []int) string {
	var words []string
	for _, c := range classes {
		vocab := ClassWords(c)
		k := 2 + rng.Intn(2)
		if k > len(vocab) {
			k = len(vocab)
		}
		perm := rng.Perm(len(vocab))
		// always include the canonical term so queries have an answer
		words = append(words, vocab[0])
		for _, pi := range perm[:k] {
			if pi != 0 {
				words = append(words, vocab[pi])
			}
		}
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		words = append(words, fillerWords[rng.Intn(len(fillerWords))])
	}
	rng.Shuffle(len(words), func(i, j int) { words[i], words[j] = words[j], words[i] })
	out := ""
	for i, w := range words {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}
