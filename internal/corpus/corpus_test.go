package corpus

import (
	"strings"
	"testing"

	"mirror/internal/ir"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != cfg.N || len(b) != cfg.N {
		t.Fatalf("sizes %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].URL != b[i].URL || a[i].Annotation != b[i].Annotation {
			t.Fatal("same seed should reproduce the collection")
		}
		for j := range a[i].Classes {
			if a[i].Classes[j] != b[i].Classes[j] {
				t.Fatal("classes differ across equal seeds")
			}
		}
	}
}

func TestAnnotationRate(t *testing.T) {
	cfg := Config{N: 200, W: 16, H: 16, Seed: 3, AnnotateRate: 0.5}
	items := Generate(cfg)
	annotated := 0
	for _, it := range items {
		if it.Annotation != "" {
			annotated++
		}
	}
	if annotated < 70 || annotated > 130 {
		t.Fatalf("annotated = %d of 200, want ≈100", annotated)
	}
	all := Generate(Config{N: 50, W: 16, H: 16, Seed: 3, AnnotateRate: 1})
	for _, it := range all {
		if it.Annotation == "" {
			t.Fatal("rate 1 should annotate everything")
		}
	}
}

func TestAnnotationsContainCanonicalTerms(t *testing.T) {
	items := Generate(Config{N: 60, W: 16, H: 16, Seed: 5, AnnotateRate: 1})
	for _, it := range items {
		for _, c := range it.Classes {
			if !strings.Contains(it.Annotation, CanonicalTerm(c)) {
				t.Fatalf("annotation %q missing canonical term %q", it.Annotation, CanonicalTerm(c))
			}
		}
	}
}

func TestHasClass(t *testing.T) {
	it := &Item{Classes: []int{2, 5}}
	if !it.HasClass(5) || it.HasClass(3) {
		t.Fatal("HasClass wrong")
	}
}

func TestCanonicalTermsAnalyzeStable(t *testing.T) {
	// canonical terms must survive the IR analyzer so queries match
	// annotations after stemming on both sides
	for ci := range classWordsIter() {
		term := CanonicalTerm(ci)
		qa := ir.Analyze(term)
		if len(qa) != 1 {
			t.Fatalf("canonical term %q analyzed to %v", term, qa)
		}
		da := ir.Analyze("some " + term + " here")
		found := false
		for _, w := range da {
			if w == qa[0] {
				found = true
			}
		}
		if !found {
			t.Fatalf("analyzed doc %v does not contain analyzed query %v", da, qa)
		}
	}
}

func classWordsIter() []int {
	out := make([]int, 0, len(classWords))
	for i := 0; i < len(classWords); i++ {
		out = append(out, i)
	}
	return out
}

func TestTextCollection(t *testing.T) {
	cfg := DefaultTextConfig(100)
	docs := TextCollection(cfg)
	if len(docs) != 100 {
		t.Fatalf("docs = %d", len(docs))
	}
	docs2 := TextCollection(cfg)
	for i := range docs {
		if docs[i] != docs2[i] {
			t.Fatal("text collection not deterministic")
		}
	}
	// Zipf skew: term0 must occur in far more documents than term100
	countDocs := func(term string) int {
		n := 0
		for _, d := range docs {
			if strings.Contains(" "+d+" ", " "+term+" ") {
				n++
			}
		}
		return n
	}
	if countDocs("term0") <= countDocs("term400") {
		t.Fatalf("no Zipf skew: df(term0)=%d df(term400)=%d", countDocs("term0"), countDocs("term400"))
	}
	qs := QueryTerms(3)
	if len(qs) != 3 || qs[0] == qs[1] {
		t.Fatalf("query terms = %v", qs)
	}
}

// TestGenerateClassZipf pins the skewed corpus mode: zipf-weighted class
// draws must concentrate the latent classes on low indices (long posting
// lists for their vocabulary, rare spikes for the tail) while staying
// deterministic per seed; the zero value keeps the uniform draw.
func TestGenerateClassZipf(t *testing.T) {
	cfg := Config{N: 400, W: 8, H: 8, Seed: 9, AnnotateRate: 1, ClassZipf: 1.6}
	items := Generate(cfg)
	again := Generate(cfg)
	counts := make([]int, 10)
	for i, it := range items {
		if it.Annotation != again[i].Annotation || len(it.Classes) != len(again[i].Classes) {
			t.Fatal("zipf corpus not deterministic")
		}
		for _, c := range it.Classes {
			counts[c]++
		}
	}
	head, tail := counts[0], counts[len(counts)-1]
	if head <= 4*tail {
		t.Fatalf("no class skew under zipf: head=%d tail=%d (%v)", head, tail, counts)
	}
	uniform := Generate(Config{N: 400, W: 8, H: 8, Seed: 9, AnnotateRate: 1})
	ucounts := make([]int, 10)
	for _, it := range uniform {
		for _, c := range it.Classes {
			ucounts[c]++
		}
	}
	if ucounts[0] > 4*ucounts[len(ucounts)-1] {
		t.Fatalf("uniform draw skewed: %v", ucounts)
	}
}
