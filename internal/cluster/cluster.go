// Package cluster is the AutoClass substitute (Cheeseman & Stutz, 1995):
// unsupervised Bayesian classification of feature vectors. Like AutoClass
// it fits mixtures of independent (diagonal-covariance) Gaussians with EM
// and selects the number of classes by an approximation to the marginal
// likelihood — here the BIC, the same Laplace-style approximation AutoClass
// popularised. All randomness is seeded; results are deterministic.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
)

// Model is a fitted mixture of diagonal Gaussians.
type Model struct {
	K, D    int
	Weights []float64   // K
	Means   [][]float64 // K×D
	Vars    [][]float64 // K×D
	LogLik  float64     // final training log-likelihood
	BIC     float64     // Bayesian information criterion (lower is better)
}

const (
	varFloor = 1e-6
	emIters  = 60
	emTol    = 1e-6
)

// Fit runs EM from a k-means++ initialisation.
func Fit(data [][]float64, k int, seed int64) (*Model, error) {
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no data")
	}
	d := len(data[0])
	for _, x := range data {
		if len(x) != d {
			return nil, fmt.Errorf("cluster: ragged data: %d vs %d dims", len(x), d)
		}
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("cluster: k=%d out of range 1..%d", k, n)
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Model{K: k, D: d}
	m.Means = kmeansPP(data, k, rng)
	m.Weights = make([]float64, k)
	m.Vars = make([][]float64, k)
	globalVar := dimVariances(data)
	for j := 0; j < k; j++ {
		m.Weights[j] = 1 / float64(k)
		m.Vars[j] = append([]float64(nil), globalVar...)
	}

	resp := make([][]float64, n)
	for i := range resp {
		resp[i] = make([]float64, k)
	}
	prev := math.Inf(-1)
	for iter := 0; iter < emIters; iter++ {
		// E step
		ll := 0.0
		for i, x := range data {
			maxLog := math.Inf(-1)
			for j := 0; j < k; j++ {
				resp[i][j] = math.Log(m.Weights[j]+1e-300) + m.logGauss(j, x)
				if resp[i][j] > maxLog {
					maxLog = resp[i][j]
				}
			}
			var sum float64
			for j := 0; j < k; j++ {
				resp[i][j] = math.Exp(resp[i][j] - maxLog)
				sum += resp[i][j]
			}
			for j := 0; j < k; j++ {
				resp[i][j] /= sum
			}
			ll += maxLog + math.Log(sum)
		}
		// M step
		for j := 0; j < k; j++ {
			var nj float64
			mean := make([]float64, d)
			for i, x := range data {
				r := resp[i][j]
				nj += r
				for t := 0; t < d; t++ {
					mean[t] += r * x[t]
				}
			}
			if nj < 1e-10 {
				// dead component: re-seed on a random point
				p := data[rng.Intn(n)]
				copy(mean, p)
				nj = 1
				m.Weights[j] = 1e-6
				m.Means[j] = mean
				m.Vars[j] = append([]float64(nil), globalVar...)
				continue
			}
			for t := 0; t < d; t++ {
				mean[t] /= nj
			}
			vr := make([]float64, d)
			for i, x := range data {
				r := resp[i][j]
				for t := 0; t < d; t++ {
					dt := x[t] - mean[t]
					vr[t] += r * dt * dt
				}
			}
			for t := 0; t < d; t++ {
				vr[t] = vr[t]/nj + varFloor
			}
			m.Weights[j] = nj / float64(n)
			m.Means[j] = mean
			m.Vars[j] = vr
		}
		if ll-prev < emTol && iter > 3 {
			prev = ll
			break
		}
		prev = ll
	}
	m.LogLik = prev
	params := float64(k*(2*d) + (k - 1))
	m.BIC = -2*m.LogLik + params*math.Log(float64(n))
	return m, nil
}

// logGauss is the log density of component j at x (diagonal covariance).
func (m *Model) logGauss(j int, x []float64) float64 {
	s := 0.0
	for t := 0; t < m.D; t++ {
		v := m.Vars[j][t]
		d := x[t] - m.Means[j][t]
		s += -0.5*math.Log(2*math.Pi*v) - d*d/(2*v)
	}
	return s
}

// Assign returns the most probable component for x.
func (m *Model) Assign(x []float64) int {
	best, bestV := 0, math.Inf(-1)
	for j := 0; j < m.K; j++ {
		v := math.Log(m.Weights[j]+1e-300) + m.logGauss(j, x)
		if v > bestV {
			best, bestV = j, v
		}
	}
	return best
}

// Posterior returns P(component | x).
func (m *Model) Posterior(x []float64) []float64 {
	logs := make([]float64, m.K)
	maxLog := math.Inf(-1)
	for j := 0; j < m.K; j++ {
		logs[j] = math.Log(m.Weights[j]+1e-300) + m.logGauss(j, x)
		if logs[j] > maxLog {
			maxLog = logs[j]
		}
	}
	var sum float64
	for j := range logs {
		logs[j] = math.Exp(logs[j] - maxLog)
		sum += logs[j]
	}
	for j := range logs {
		logs[j] /= sum
	}
	return logs
}

// Select fits models for k in [kmin, kmax] and returns the one with the
// best (lowest) BIC — AutoClass's search over the number of classes.
func Select(data [][]float64, kmin, kmax int, seed int64) (*Model, error) {
	if kmin < 1 || kmax < kmin {
		return nil, fmt.Errorf("cluster: bad k range [%d,%d]", kmin, kmax)
	}
	var best *Model
	for k := kmin; k <= kmax && k <= len(data); k++ {
		m, err := Fit(data, k, seed+int64(k))
		if err != nil {
			return nil, err
		}
		if best == nil || m.BIC < best.BIC {
			best = m
		}
	}
	if best == nil {
		return nil, fmt.Errorf("cluster: no model fitted")
	}
	return best, nil
}

// kmeansPP picks k initial centres with the k-means++ heuristic.
func kmeansPP(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(data)
	centres := make([][]float64, 0, k)
	centres = append(centres, append([]float64(nil), data[rng.Intn(n)]...))
	d2 := make([]float64, n)
	for len(centres) < k {
		var sum float64
		for i, x := range data {
			best := math.Inf(1)
			for _, c := range centres {
				if d := sqDist(x, c); d < best {
					best = d
				}
			}
			d2[i] = best
			sum += best
		}
		var pick int
		if sum == 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * sum
			acc := 0.0
			for i, v := range d2 {
				acc += v
				if acc >= r {
					pick = i
					break
				}
			}
		}
		centres = append(centres, append([]float64(nil), data[pick]...))
	}
	return centres
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Standardize z-scores each dimension in place-safe copies and returns the
// transformed data plus the (mean, std) transform for application to new
// points.
func Standardize(data [][]float64) (out [][]float64, means, stds []float64) {
	if len(data) == 0 {
		return nil, nil, nil
	}
	d := len(data[0])
	means = make([]float64, d)
	stds = make([]float64, d)
	for _, x := range data {
		for t := 0; t < d; t++ {
			means[t] += x[t]
		}
	}
	for t := 0; t < d; t++ {
		means[t] /= float64(len(data))
	}
	for _, x := range data {
		for t := 0; t < d; t++ {
			dv := x[t] - means[t]
			stds[t] += dv * dv
		}
	}
	for t := 0; t < d; t++ {
		stds[t] = math.Sqrt(stds[t] / float64(len(data)))
		if stds[t] < 1e-9 {
			stds[t] = 1
		}
	}
	out = make([][]float64, len(data))
	for i, x := range data {
		out[i] = ApplyStandardize(x, means, stds)
	}
	return out, means, stds
}

// ApplyStandardize transforms one vector with a Standardize transform.
func ApplyStandardize(x, means, stds []float64) []float64 {
	out := make([]float64, len(x))
	for t := range x {
		out[t] = (x[t] - means[t]) / stds[t]
	}
	return out
}

// dimVariances returns per-dimension variances of the data (used as the
// initial component variances).
func dimVariances(data [][]float64) []float64 {
	d := len(data[0])
	mean := make([]float64, d)
	for _, x := range data {
		for t := 0; t < d; t++ {
			mean[t] += x[t]
		}
	}
	for t := 0; t < d; t++ {
		mean[t] /= float64(len(data))
	}
	vr := make([]float64, d)
	for _, x := range data {
		for t := 0; t < d; t++ {
			dv := x[t] - mean[t]
			vr[t] += dv * dv
		}
	}
	for t := 0; t < d; t++ {
		vr[t] = vr[t]/float64(len(data)) + varFloor
	}
	return vr
}

// AdjustedRandIndex measures agreement between two labelings, corrected for
// chance: 1 is perfect agreement, ~0 is random.
func AdjustedRandIndex(a, b []int) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	amax, bmax := 0, 0
	for i := range a {
		if a[i] > amax {
			amax = a[i]
		}
		if b[i] > bmax {
			bmax = b[i]
		}
	}
	table := make([][]float64, amax+1)
	for i := range table {
		table[i] = make([]float64, bmax+1)
	}
	for i := range a {
		table[a[i]][b[i]]++
	}
	choose2 := func(x float64) float64 { return x * (x - 1) / 2 }
	var sumIJ, sumA, sumB float64
	rowSums := make([]float64, amax+1)
	colSums := make([]float64, bmax+1)
	for i := range table {
		for j := range table[i] {
			sumIJ += choose2(table[i][j])
			rowSums[i] += table[i][j]
			colSums[j] += table[i][j]
		}
	}
	for _, r := range rowSums {
		sumA += choose2(r)
	}
	for _, c := range colSums {
		sumB += choose2(c)
	}
	n := choose2(float64(len(a)))
	expected := sumA * sumB / n
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 0
	}
	return (sumIJ - expected) / (maxIdx - expected)
}
