package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// blobs generates n points from k well-separated Gaussians and returns the
// data plus true labels.
func blobs(n, k, d int, sep float64, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	centres := make([][]float64, k)
	for j := range centres {
		c := make([]float64, d)
		for t := range c {
			c[t] = sep * float64(j) * (1 + 0.1*float64(t%3))
		}
		centres[j] = c
	}
	data := make([][]float64, n)
	labels := make([]int, n)
	for i := range data {
		j := i % k
		labels[i] = j
		x := make([]float64, d)
		for t := range x {
			x[t] = centres[j][t] + rng.NormFloat64()
		}
		data[i] = x
	}
	return data, labels
}

func TestFitRecoversBlobs(t *testing.T) {
	data, labels := blobs(300, 3, 4, 8, 1)
	m, err := Fit(data, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	pred := make([]int, len(data))
	for i, x := range data {
		pred[i] = m.Assign(x)
	}
	ari := AdjustedRandIndex(labels, pred)
	if ari < 0.95 {
		t.Fatalf("ARI = %v, want >= 0.95", ari)
	}
}

func TestSelectFindsK(t *testing.T) {
	data, _ := blobs(240, 3, 4, 10, 2)
	m, err := Select(data, 1, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 3 {
		t.Fatalf("selected K = %d, want 3", m.K)
	}
}

func TestSelectSingleCluster(t *testing.T) {
	data, _ := blobs(100, 1, 3, 0, 3)
	m, err := Select(data, 1, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.K > 2 {
		t.Fatalf("selected K = %d for single blob", m.K)
	}
}

func TestFitDeterministic(t *testing.T) {
	data, _ := blobs(150, 2, 3, 6, 4)
	m1, err := Fit(data, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(data, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		for d := 0; d < 3; d++ {
			if m1.Means[j][d] != m2.Means[j][d] {
				t.Fatal("same seed should give identical models")
			}
		}
	}
}

func TestPosteriorSumsToOne(t *testing.T) {
	data, _ := blobs(120, 3, 2, 7, 5)
	m, err := Fit(data, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range data[:20] {
		p := m.Posterior(x)
		var sum float64
		for _, v := range p {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("posterior sums to %v", sum)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 1, 0); err == nil {
		t.Fatal("empty data should fail")
	}
	if _, err := Fit([][]float64{{1}, {2}}, 5, 0); err == nil {
		t.Fatal("k > n should fail")
	}
	if _, err := Fit([][]float64{{1, 2}, {3}}, 1, 0); err == nil {
		t.Fatal("ragged data should fail")
	}
	if _, err := Select([][]float64{{1}}, 3, 2, 0); err == nil {
		t.Fatal("bad k range should fail")
	}
}

func TestStandardize(t *testing.T) {
	data := [][]float64{{1, 100}, {2, 200}, {3, 300}}
	out, means, stds := Standardize(data)
	if means[0] != 2 || means[1] != 200 {
		t.Fatalf("means = %v", means)
	}
	// standardized columns have mean 0
	for t2 := 0; t2 < 2; t2++ {
		var s float64
		for _, x := range out {
			s += x[t2]
		}
		if math.Abs(s) > 1e-9 {
			t.Fatalf("standardized mean = %v", s)
		}
	}
	x := ApplyStandardize([]float64{2, 200}, means, stds)
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("apply = %v", x)
	}
	// constant dimension must not divide by zero
	_, _, stds2 := Standardize([][]float64{{5, 1}, {5, 2}})
	if stds2[0] != 1 {
		t.Fatalf("constant dim std = %v", stds2[0])
	}
}

func TestAdjustedRandIndex(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	if ari := AdjustedRandIndex(a, a); math.Abs(ari-1) > 1e-12 {
		t.Fatalf("ARI(self) = %v", ari)
	}
	// permuted labels are still perfect agreement
	b := []int{2, 2, 0, 0, 1, 1}
	if ari := AdjustedRandIndex(a, b); math.Abs(ari-1) > 1e-12 {
		t.Fatalf("ARI(perm) = %v", ari)
	}
	if ari := AdjustedRandIndex(a, []int{0, 1, 0, 1, 0, 1}); ari > 0.5 {
		t.Fatalf("ARI(disagree) = %v", ari)
	}
	if AdjustedRandIndex(a, []int{0}) != 0 {
		t.Fatal("mismatched lengths should give 0")
	}
}

func TestEMImprovesLikelihood(t *testing.T) {
	data, _ := blobs(200, 2, 3, 5, 8)
	m1, err := Fit(data, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(data, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m2.LogLik <= m1.LogLik {
		t.Fatalf("loglik k=2 (%v) should beat k=1 (%v) on 2 blobs", m2.LogLik, m1.LogLik)
	}
}
