package storage

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mirror/internal/bat"
)

// crashFixture saves a two-BAT store and returns its dir plus the path
// of one int heap file.
func crashFixture(t *testing.T) (dir, heapFile string) {
	t.Helper()
	dir = filepath.Join(t.TempDir(), "db")
	a := bat.NewDense(0, bat.KindInt)
	for i := 0; i < 512; i++ {
		a.MustAppend(bat.OID(i), int64(i))
	}
	s := bat.NewDense(0, bat.KindStr)
	s.MustAppend(bat.OID(0), "hello")
	if err := Save(dir, map[string]*bat.BAT{"nums": a, "strs": s}, nil); err != nil {
		t.Fatal(err)
	}
	p, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	heapFile = filepath.Join(dir, batsDirName, p.man.BATs["nums"].Tail.File)
	return dir, heapFile
}

func TestTruncatedHeapFileFailsLoudly(t *testing.T) {
	dir, heap := crashFixture(t)
	if err := os.Truncate(heap, 100); err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{{}, {NoMmap: true}, {Verify: true}} {
		p, err := Open(dir, opts)
		if err != nil {
			t.Fatal(err) // manifest itself is fine
		}
		_, err = p.Get("nums")
		if err == nil || !strings.Contains(err.Error(), "truncated or corrupt") {
			t.Fatalf("opts %+v: truncated heap file not detected: %v", opts, err)
		}
		if _, err := p.Get("strs"); err != nil {
			t.Fatalf("undamaged BAT must still load: %v", err)
		}
		p.Release("strs")
		p.Close()
	}
}

func TestCorruptHeapFileFailsLoudlyWithVerify(t *testing.T) {
	dir, heap := crashFixture(t)
	data, err := os.ReadFile(heap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(heap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, noMmap := range []bool{false, true} {
		p, err := Open(dir, Options{Verify: true, NoMmap: noMmap})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Get("nums"); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
			t.Fatalf("noMmap=%v: corrupt heap file not detected: %v", noMmap, err)
		}
		p.Close()
	}
}

// TestCrashBeforeManifestCommitRecovers simulates a checkpoint that
// died after writing new-generation heap files but before publishing
// the manifest: the store must open to the previous checkpoint and
// sweep the orphans.
func TestCrashBeforeManifestCommitRecovers(t *testing.T) {
	dir, _ := crashFixture(t)
	bdir := filepath.Join(dir, batsDirName)
	// Half-written next generation: a tmp file and a complete-looking
	// heap file that no manifest references.
	for _, f := range []string{"nums.g99.tail", "nums.g99.tail.tmp"} {
		if err := os.WriteFile(filepath.Join(bdir, f), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A torn manifest replacement attempt.
	if err := os.WriteFile(filepath.Join(dir, manifestName+".tmp"), []byte("{half"), 0o644); err != nil {
		t.Fatal(err)
	}

	p, err := Open(dir, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	b, err := p.Get("nums")
	if err != nil {
		t.Fatalf("recovery to last checkpoint failed: %v", err)
	}
	if b.Len() != 512 || b.Tail.IntAt(511) != 511 {
		t.Fatal("recovered BAT has wrong content")
	}
	p.Release("nums")
	if _, err := os.Stat(filepath.Join(bdir, "nums.g99.tail")); !os.IsNotExist(err) {
		t.Fatal("orphaned heap file from the crashed checkpoint was not swept")
	}
}

func TestCorruptManifestFailsLoudly(t *testing.T) {
	dir, _ := crashFixture(t)
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt manifest should fail to open")
	}
}

func TestLegacyV1StoreRejectedWithGuidance(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, legacyManifest), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, Options{})
	if err == nil || !strings.Contains(err.Error(), "legacy v1") {
		t.Fatalf("legacy store not identified: %v", err)
	}
}
