package storage

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"

	"mirror/internal/bat"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	b1 := bat.NewDense(0, bat.KindStr)
	b1.MustAppend(bat.OID(0), "http://a")
	b1.MustAppend(bat.OID(1), "http://b")
	b2 := bat.New(bat.KindOID, bat.KindFloat)
	b2.MustAppend(bat.OID(9), 0.5)
	b3 := bat.New(bat.KindInt, bat.KindBool)
	b3.MustAppend(int64(-3), true)

	in := map[string]*bat.BAT{"lib_source": b1, "scores": b2, "flags": b3}
	if err := Save(dir, in, map[string]string{"schema": "define X ..."}); err != nil {
		t.Fatal(err)
	}
	out, extra, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("loaded %d BATs, want 3", len(out))
	}
	if extra["schema"] != "define X ..." {
		t.Fatalf("extra = %v", extra)
	}
	if v, ok := out["lib_source"].Find(bat.OID(1)); !ok || v.(string) != "http://b" {
		t.Fatalf("lib_source[1] = %v", v)
	}
	if v, ok := out["scores"].Find(bat.OID(9)); !ok || v.(float64) != 0.5 {
		t.Fatalf("scores[9] = %v", v)
	}
	if v, ok := out["flags"].Find(int64(-3)); !ok || v.(bool) != true {
		t.Fatalf("flags[-3] = %v", v)
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	b := bat.NewDense(0, bat.KindInt)
	b.MustAppend(bat.OID(0), int64(1))
	if err := Save(dir, map[string]*bat.BAT{"a": b}, nil); err != nil {
		t.Fatal(err)
	}
	b2 := bat.NewDense(0, bat.KindInt)
	b2.MustAppend(bat.OID(0), int64(2))
	if err := Save(dir, map[string]*bat.BAT{"b": b2}, nil); err != nil {
		t.Fatal(err)
	}
	out, _, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out["a"]; ok {
		t.Fatal("old BAT should be gone after overwrite")
	}
	if _, ok := out["b"]; !ok {
		t.Fatal("new BAT missing")
	}
}

func TestInvalidNames(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	b := bat.New(bat.KindOID, bat.KindInt)
	for _, name := range []string{"", "../evil", "a/b", `a\b`} {
		if err := Save(dir, map[string]*bat.BAT{name: b}, nil); err == nil {
			t.Errorf("Save with name %q should fail", name)
		}
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("loading a missing dir should fail")
	}
}

func TestPropBATBinaryRoundTrip(t *testing.T) {
	f := func(ints []int64, strs []string, flts []float64) bool {
		b := bat.New(bat.KindInt, bat.KindStr)
		n := len(ints)
		if len(strs) < n {
			n = len(strs)
		}
		for i := 0; i < n; i++ {
			b.MustAppend(ints[i], strs[i])
		}
		var buf bytes.Buffer
		if _, err := b.WriteTo(&buf); err != nil {
			return false
		}
		got, err := bat.ReadBAT(&buf)
		if err != nil || got.Len() != b.Len() {
			return false
		}
		for i := 0; i < got.Len(); i++ {
			if got.Head.IntAt(i) != b.Head.IntAt(i) || got.Tail.StrAt(i) != b.Tail.StrAt(i) {
				return false
			}
		}
		// float BAT round trip including NaN-free values
		fb := bat.NewDense(0, bat.KindFloat)
		for i, v := range flts {
			fb.MustAppend(bat.OID(i), v)
		}
		buf.Reset()
		if _, err := fb.WriteTo(&buf); err != nil {
			return false
		}
		got2, err := bat.ReadBAT(&buf)
		if err != nil || got2.Len() != fb.Len() {
			return false
		}
		for i := 0; i < got2.Len(); i++ {
			a, c := got2.Tail.FloatAt(i), fb.Tail.FloatAt(i)
			if a != c && !(a != a && c != c) { // NaN-safe compare
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptMagic(t *testing.T) {
	if _, err := bat.ReadBAT(bytes.NewReader([]byte("XXXX garbage"))); err == nil {
		t.Fatal("bad magic should fail")
	}
	if _, err := bat.ReadBAT(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should fail")
	}
}
