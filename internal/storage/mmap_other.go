//go:build !linux

package storage

import "errors"

// errNoMmap makes loadColumn fall back to the portable read path on
// platforms where we do not implement memory mapping.
var errNoMmap = errors.New("storage: mmap not supported on this platform")

// mapFile is the non-linux stub; the pool falls back to reading heap
// files into private memory.
func mapFile(path string, size int64) (mapping, error) {
	return mapping{}, errNoMmap
}
