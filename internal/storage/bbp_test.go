package storage

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"mirror/internal/bat"
)

// sampleBATs builds one BAT per interesting kind combination.
func sampleBATs(t *testing.T) map[string]*bat.BAT {
	t.Helper()
	dense := bat.NewDense(7, bat.KindStr)
	dense.MustAppend(bat.OID(7), "alpha")
	dense.MustAppend(bat.OID(8), "")
	dense.MustAppend(bat.OID(9), "γράμμα") // non-ASCII survives the byte heap

	floats := bat.New(bat.KindOID, bat.KindFloat)
	floats.MustAppend(bat.OID(1), 0.25)
	floats.MustAppend(bat.OID(2), -3.5)

	ints := bat.New(bat.KindInt, bat.KindBool)
	ints.MustAppend(int64(-42), true)
	ints.MustAppend(int64(0), false)
	ints.MustAppend(int64(99), true)

	voidvoid := bat.New(bat.KindVoid, bat.KindVoid)
	voidvoid.MustAppend(bat.OID(3), bat.OID(3))
	voidvoid.MustAppend(bat.OID(4), bat.OID(4))

	empty := bat.New(bat.KindOID, bat.KindStr)

	return map[string]*bat.BAT{
		"dense": dense, "floats": floats, "ints": ints,
		"voidvoid": voidvoid, "empty": empty,
	}
}

// assertSameBAT compares two BATs BUN-for-BUN plus flags.
func assertSameBAT(t *testing.T, name string, got, want *bat.BAT) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: len %d want %d", name, got.Len(), want.Len())
	}
	if got.Head.Kind() != want.Head.Kind() || got.Tail.Kind() != want.Tail.Kind() {
		t.Fatalf("%s: kinds [%s,%s] want [%s,%s]", name,
			got.Head.Kind(), got.Tail.Kind(), want.Head.Kind(), want.Tail.Kind())
	}
	for i := 0; i < want.Len(); i++ {
		gh, gt, _ := got.Fetch(i)
		wh, wt, _ := want.Fetch(i)
		if !reflect.DeepEqual(gh, wh) || !reflect.DeepEqual(gt, wt) {
			t.Fatalf("%s[%d]: <%v,%v> want <%v,%v>", name, i, gh, gt, wh, wt)
		}
	}
	if got.HSorted != want.HSorted || got.TSorted != want.TSorted ||
		got.HKey != want.HKey || got.TKey != want.TKey {
		t.Fatalf("%s: flags differ", name)
	}
}

func TestPoolRoundTripAllKinds(t *testing.T) {
	for _, noMmap := range []bool{false, true} {
		t.Run(fmt.Sprintf("noMmap=%v", noMmap), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "db")
			in := sampleBATs(t)
			p, err := Create(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p.Checkpoint(in, map[string]string{"k": "v"}); err != nil {
				t.Fatal(err)
			}
			p.Close()

			p2, err := Open(dir, Options{Verify: true, NoMmap: noMmap})
			if err != nil {
				t.Fatal(err)
			}
			defer p2.Close()
			if p2.Extra()["k"] != "v" {
				t.Fatalf("extra = %v", p2.Extra())
			}
			for name, want := range in {
				got, err := p2.Get(name)
				if err != nil {
					t.Fatal(err)
				}
				assertSameBAT(t, name, got, want)
				p2.Release(name)
			}
		})
	}
}

func TestIncrementalCheckpointRewritesOnlyDirty(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	p, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	bats := map[string]*bat.BAT{}
	for i := 0; i < 4; i++ {
		b := bat.NewDense(0, bat.KindInt)
		for j := 0; j < 100; j++ {
			b.MustAppend(bat.OID(j), int64(i*1000+j))
		}
		bats[fmt.Sprintf("b%d", i)] = b
	}
	st, err := p.Checkpoint(bats, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Written != 4 {
		t.Fatalf("first checkpoint wrote %d BATs, want 4", st.Written)
	}
	filesBefore := map[string]string{}
	for name, bm := range p.man.BATs {
		filesBefore[name] = bm.Head.File + "|" + bm.Tail.File
	}

	// Touch exactly one BAT.
	bats["b2"].MustAppend(bat.OID(100), int64(12345))
	st, err = p.Checkpoint(bats, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Written != 1 || st.Skipped != 3 {
		t.Fatalf("incremental checkpoint wrote %d / skipped %d, want 1/3", st.Written, st.Skipped)
	}
	for name, bm := range p.man.BATs {
		files := bm.Head.File + "|" + bm.Tail.File
		if name == "b2" {
			if files == filesBefore[name] {
				t.Fatalf("b2 heap files were not rewritten")
			}
		} else if files != filesBefore[name] {
			t.Fatalf("%s heap files changed (%s -> %s) though it was clean", name, filesBefore[name], files)
		}
	}

	// A clean checkpoint rewrites nothing.
	st, err = p.Checkpoint(bats, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Written != 0 || st.Skipped != 4 {
		t.Fatalf("clean checkpoint wrote %d / skipped %d, want 0/4", st.Written, st.Skipped)
	}

	// Reopen and verify the incremental result equals the live state.
	p2, err := Open(dir, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for name, want := range bats {
		got, err := p2.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		assertSameBAT(t, name, got, want)
		p2.Release(name)
	}
}

func TestCheckpointDropsRemovedBATs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	p, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	a := bat.NewDense(0, bat.KindInt)
	a.MustAppend(bat.OID(0), int64(1))
	b := bat.NewDense(0, bat.KindInt)
	b.MustAppend(bat.OID(0), int64(2))
	if _, err := p.Checkpoint(map[string]*bat.BAT{"a": a, "b": b}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Checkpoint(map[string]*bat.BAT{"b": b}, nil); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.Names(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("names = %v, want [b]", got)
	}
}

func TestEvictionUnderBudgetAndPinning(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	bats := map[string]*bat.BAT{}
	for i := 0; i < 8; i++ {
		b := bat.NewDense(0, bat.KindInt)
		for j := 0; j < 1000; j++ {
			b.MustAppend(bat.OID(j), int64(j))
		}
		bats[fmt.Sprintf("b%d", i)] = b
	}
	if err := Save(dir, bats, nil); err != nil {
		t.Fatal(err)
	}

	// Budget fits roughly two BATs (each ~8KB tail + void head).
	p, err := Open(dir, Options{Budget: 20 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("b%d", i)
		b, err := p.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.Len() != 1000 {
			t.Fatalf("%s: len %d", name, b.Len())
		}
		p.Release(name)
	}
	if r := p.Resident(); r > 3 {
		t.Fatalf("resident after sweep = %d, want <= 3 (eviction under budget)", r)
	}

	// A pinned BAT must survive any amount of pressure.
	pinned, err := p.Get("b0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 8; i++ {
		name := fmt.Sprintf("b%d", i)
		if _, err := p.Get(name); err != nil {
			t.Fatal(err)
		}
		p.Release(name)
	}
	if pinned.Len() != 1000 || pinned.Tail.IntAt(999) != 999 {
		t.Fatal("pinned BAT content lost under eviction pressure")
	}
	again, err := p.Get("b0")
	if err != nil {
		t.Fatal(err)
	}
	if again != pinned {
		t.Fatal("pinned BAT was evicted and reloaded as a new object")
	}
	p.Release("b0")
	p.Release("b0")
}

// TestPropIncrementalEqualsFullSave drives a pool through random
// mutate-and-checkpoint rounds and asserts the store always equals what
// a monolithic Save of the same logical state would load back.
func TestPropIncrementalEqualsFullSave(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	incDir := filepath.Join(t.TempDir(), "inc")
	p, err := Create(incDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	live := map[string]*bat.BAT{}
	for round := 0; round < 12; round++ {
		// Random mutations: add a BAT, append to a BAT, drop a BAT.
		switch op := rng.Intn(3); {
		case op == 0 || len(live) == 0:
			name := fmt.Sprintf("bat%d", rng.Intn(6))
			b := bat.New(bat.KindOID, bat.KindStr)
			for j, n := 0, rng.Intn(50); j < n; j++ {
				b.MustAppend(bat.OID(j), fmt.Sprintf("r%d-%d", round, j))
			}
			live[name] = b
		case op == 1:
			for name := range live {
				live[name].MustAppend(bat.OID(live[name].Len()+1000), fmt.Sprintf("app%d", round))
				break
			}
		default:
			for name := range live {
				delete(live, name)
				break
			}
		}
		if _, err := p.Checkpoint(live, map[string]string{"round": fmt.Sprint(round)}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}

		// Reference: a fresh monolithic save of clones of the live state.
		fullDir := filepath.Join(t.TempDir(), fmt.Sprintf("full%d", round))
		clones := map[string]*bat.BAT{}
		for name, b := range live {
			clones[name] = b.Clone()
		}
		if err := Save(fullDir, clones, map[string]string{"round": fmt.Sprint(round)}); err != nil {
			t.Fatal(err)
		}

		gotBATs, gotExtra, err := Load(incDir)
		if err != nil {
			t.Fatalf("round %d: load incremental store: %v", round, err)
		}
		wantBATs, wantExtra, err := Load(fullDir)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotExtra, wantExtra) {
			t.Fatalf("round %d: extra %v want %v", round, gotExtra, wantExtra)
		}
		if len(gotBATs) != len(wantBATs) {
			t.Fatalf("round %d: %d BATs want %d", round, len(gotBATs), len(wantBATs))
		}
		for name, want := range wantBATs {
			got, ok := gotBATs[name]
			if !ok {
				t.Fatalf("round %d: missing %s", round, name)
			}
			assertSameBAT(t, name, got, want)
		}
	}
}
