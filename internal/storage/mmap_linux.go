//go:build linux

package storage

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile memory-maps a heap file read-only. The mapping is shared
// (page-cache backed), so a cold start faults pages in on first touch
// instead of reading the whole database up front: load cost is
// O(working set), not O(database). The file may be renamed or unlinked
// while mapped — the mapping keeps the old inode alive, which is what
// makes checkpoint-over-rename safe for live readers.
func mapFile(path string, size int64) (mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return mapping{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return mapping{}, err
	}
	if st.Size() != size {
		return mapping{}, fmt.Errorf("storage: heap file %s: size %d, manifest says %d (truncated or corrupt)", path, st.Size(), size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return mapping{}, fmt.Errorf("storage: mmap %s: %w", path, err)
	}
	return mapping{data: data, close: func() error { return syscall.Munmap(data) }}, nil
}
