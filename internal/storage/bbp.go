package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"mirror/internal/bat"
)

// This file implements the BAT buffer pool (BBP): Monet kept every BAT
// in its own pair of binary heap files managed by a buffer pool, and
// persisted the database by flushing dirty BATs — never by rewriting
// the world. The Pool reproduces that design:
//
//   - one store directory holds MANIFEST (versioned JSON, replaced
//     atomically) plus a bats/ directory of generation-numbered heap
//     files, one file per materialised column (two for str columns);
//   - Checkpoint writes only BATs that are dirty (mutated, or a new
//     pointer since the last checkpoint), each via tmp+fsync+rename,
//     fsyncs bats/, and only then publishes the new MANIFEST — so a
//     crash at any instant leaves a store that opens to the previous
//     checkpoint;
//   - Get loads a BAT on demand (mmap zero-copy for 8-byte fixed-width
//     columns on linux, a portable read elsewhere) and pins it; Release
//     unpins, letting the pool evict cold, clean BATs once the
//     configured byte budget is exceeded.
//
// Generation-numbered file names are what make the manifest swap atomic:
// a rewritten BAT gets fresh files (name.g<N>.head, …) and the old
// generation's files are deleted only after the new MANIFEST is durable,
// so every manifest ever published references a complete, immutable set
// of heap files.

const (
	manifestName   = "MANIFEST"
	batsDirName    = "bats"
	legacyManifest = "manifest.json"
	// formatVersion is the version new manifests are written with.
	// Version 3 added the "bytes" column kind carrying compressed
	// block-postings blobs; version-2 stores (raw postings only) remain
	// readable and are upgraded in place by their first checkpoint.
	formatVersion    = 3
	minFormatVersion = 2
)

// batMeta is the manifest's description of one persisted BAT.
type batMeta struct {
	Flags uint8   `json:"flags"` // bit 0 HSorted, 1 TSorted, 2 HKey, 3 TKey
	Gen   uint64  `json:"gen"`
	Head  colMeta `json:"head"`
	Tail  colMeta `json:"tail"`
}

// manifest is the store's root metadata document.
type manifest struct {
	Version int                 `json:"version"`
	Gen     uint64              `json:"gen"`
	BATs    map[string]*batMeta `json:"bats"`
	Extra   map[string]string   `json:"extra,omitempty"`
}

// mapping is one live mmap region backing a loaded column.
type mapping struct {
	data  []byte
	close func() error
}

// Options configures a Pool.
type Options struct {
	// Verify makes every heap-file load check its CRC-32C against the
	// manifest. Sizes are always checked.
	Verify bool
	// NoMmap forces the portable read path: loaded BATs own private
	// memory and stay valid after the pool closes.
	NoMmap bool
	// Budget bounds the resident bytes of clean, unpinned BATs; once
	// exceeded the pool evicts in LRU order. 0 means unlimited.
	Budget int64
}

// entry is one resident BAT.
type entry struct {
	b       *bat.BAT
	maps    []mapping
	bytes   int64
	lastUse uint64
	pins    int // pool-issued pins (mirrors b.PinCount for pool callers)
}

// Pool is a persistent BAT buffer pool over one store directory.
type Pool struct {
	dir  string
	opts Options

	mu    sync.Mutex
	man   *manifest
	live  map[string]*entry
	clock uint64
}

// CheckpointStats reports what one checkpoint did.
type CheckpointStats struct {
	Written int   // BATs whose heap files were rewritten
	Skipped int   // clean BATs carried over without touching their files
	Bytes   int64 // heap-file bytes written
}

// IsStore reports whether dir holds a (v2) BAT-buffer-pool store — i.e.
// a published MANIFEST exists. Layout detection belongs here, next to
// the format it detects: core's sharded engine and cmd/mirrord use it to
// distinguish a standalone store root from a sharded one (whose members
// live in subdirectories, each its own store).
func IsStore(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// Create initialises an empty store at dir (which must not already hold
// one) and returns its pool.
func Create(dir string, opts Options) (*Pool, error) {
	if err := os.MkdirAll(filepath.Join(dir, batsDirName), 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir %s: %w", dir, err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("storage: %s already holds a store", dir)
	}
	if _, err := os.Stat(filepath.Join(dir, legacyManifest)); err == nil {
		return nil, fmt.Errorf("storage: %s is a legacy v1 store (manifest.json), which this version cannot read; move it aside (or delete it and re-ingest) before using this directory", dir)
	}
	p := &Pool{
		dir:  dir,
		opts: opts,
		man:  &manifest{Version: formatVersion, BATs: map[string]*batMeta{}},
		live: map[string]*entry{},
	}
	if err := p.writeManifestLocked(); err != nil {
		return nil, err
	}
	return p, nil
}

// Open opens an existing store.
func Open(dir string, opts Options) (*Pool, error) {
	mb, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			if _, lerr := os.Stat(filepath.Join(dir, legacyManifest)); lerr == nil {
				return nil, fmt.Errorf("storage: %s is a legacy v1 store (manifest.json), which this version cannot read; move it aside (or delete it and re-ingest) to start a v2 store here", dir)
			}
		}
		return nil, fmt.Errorf("storage: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return nil, fmt.Errorf("storage: parse manifest: %w", err)
	}
	if m.Version < minFormatVersion || m.Version > formatVersion {
		return nil, fmt.Errorf("storage: unsupported store version %d (want %d..%d)", m.Version, minFormatVersion, formatVersion)
	}
	if m.BATs == nil {
		m.BATs = map[string]*batMeta{}
	}
	p := &Pool{dir: dir, opts: opts, man: &m, live: map[string]*entry{}}
	p.removeOrphansLocked()
	return p, nil
}

// OpenOrCreate opens dir as a store, initialising it when empty.
func OpenOrCreate(dir string, opts Options) (*Pool, error) {
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return Open(dir, opts)
	}
	return Create(dir, opts)
}

// Names lists the BATs in the last checkpoint, sorted.
func (p *Pool) Names() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.man.BATs))
	for n := range p.man.BATs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Extra returns the opaque metadata stored with the last checkpoint.
func (p *Pool) Extra() map[string]string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]string, len(p.man.Extra))
	for k, v := range p.man.Extra {
		out[k] = v
	}
	return out
}

// Get returns the named BAT, loading it from its heap files if it is
// not resident, and pins it. Callers must Release it when done; holding
// a BAT (or slices of its columns) past Release is a use-after-evict
// bug once a Budget is set.
func (p *Pool) Get(name string) (*bat.BAT, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, err := p.loadLocked(name)
	if err != nil {
		return nil, err
	}
	p.clock++
	e.lastUse = p.clock
	e.pins++
	e.b.Pin()
	p.evictLocked()
	return e.b, nil
}

// Release drops one pin on a BAT obtained from Get.
func (p *Pool) Release(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.live[name]
	if !ok || e.pins == 0 {
		return
	}
	e.pins--
	e.b.Release()
	p.evictLocked()
}

// ResidentBytes reports the memory held by resident BATs.
func (p *Pool) ResidentBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, e := range p.live {
		n += e.bytes
	}
	return n
}

// Resident reports how many BATs are currently loaded.
func (p *Pool) Resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.live)
}

// loadLocked returns the resident entry for name, loading it if needed.
func (p *Pool) loadLocked(name string) (*entry, error) {
	if e, ok := p.live[name]; ok {
		return e, nil
	}
	bm, ok := p.man.BATs[name]
	if !ok {
		return nil, fmt.Errorf("storage: no BAT %q in store %s", name, p.dir)
	}
	bdir := filepath.Join(p.dir, batsDirName)
	mmapOK := !p.opts.NoMmap
	head, hm, err := loadColumn(bdir, bm.Head, mmapOK, p.opts.Verify)
	if err != nil {
		return nil, fmt.Errorf("storage: load %s head: %w", name, err)
	}
	tail, tm, err := loadColumn(bdir, bm.Tail, mmapOK, p.opts.Verify)
	if err != nil {
		for _, m := range hm {
			m.close()
		}
		return nil, fmt.Errorf("storage: load %s tail: %w", name, err)
	}
	b, err := bat.FromColumns(head, tail,
		bm.Flags&1 != 0, bm.Flags&2 != 0, bm.Flags&4 != 0, bm.Flags&8 != 0)
	if err != nil {
		for _, m := range append(hm, tm...) {
			m.close()
		}
		return nil, fmt.Errorf("storage: load %s: %w", name, err)
	}
	e := &entry{b: b, maps: append(hm, tm...), bytes: b.MemBytes()}
	p.live[name] = e
	return e, nil
}

// evictLocked unmaps cold, clean, unpinned BATs until the resident set
// fits the byte budget.
func (p *Pool) evictLocked() {
	if p.opts.Budget <= 0 {
		return
	}
	var total int64
	for _, e := range p.live {
		total += e.bytes
	}
	for total > p.opts.Budget {
		var victim string
		var ve *entry
		for name, e := range p.live {
			if e.pins > 0 || e.b.PinCount() > 0 || e.b.Dirty() {
				continue
			}
			if ve == nil || e.lastUse < ve.lastUse {
				victim, ve = name, e
			}
		}
		if ve == nil {
			return // everything pinned or dirty
		}
		for _, m := range ve.maps {
			m.close()
		}
		delete(p.live, victim)
		total -= ve.bytes
	}
}

// flagsOf packs a BAT's property flags.
func flagsOf(b *bat.BAT) uint8 {
	var f uint8
	if b.HSorted {
		f |= 1
	}
	if b.TSorted {
		f |= 2
	}
	if b.HKey {
		f |= 4
	}
	if b.TKey {
		f |= 8
	}
	return f
}

// Checkpoint makes bats (plus the opaque extra metadata) the store's
// durable contents. Only dirty BATs — mutated since the last
// checkpoint, or bound to a name for the first time — have their heap
// files rewritten; clean BATs are carried over by reference. BATs no
// longer present in the map are dropped from the store.
//
// Durability guarantee: every heap file is written to a temp name,
// fsync'd, and renamed; the bats/ directory is fsync'd; then the new
// MANIFEST is written, fsync'd, and renamed over the old one, and the
// store directory fsync'd. The manifest rename is the commit point — a
// crash before it leaves the previous checkpoint intact, a crash after
// it leaves the new one. Old-generation files are deleted only after
// the commit point.
func (p *Pool) Checkpoint(bats map[string]*bat.BAT, extra map[string]string) (CheckpointStats, error) {
	return p.checkpoint(bats, extra, true)
}

// checkpoint implements Checkpoint. When adopt is false (the Save
// wrapper's throwaway pool) the caller's BATs are written but NOT
// adopted: their dirty bits are left untouched and the resident cache
// is not updated, so snapshotting a live database never erases the
// dirty state its own pool still needs to flush.
func (p *Pool) checkpoint(bats map[string]*bat.BAT, extra map[string]string, adopt bool) (CheckpointStats, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var st CheckpointStats

	names := make([]string, 0, len(bats))
	for name := range bats {
		if err := validName(name); err != nil {
			return st, err
		}
		names = append(names, name)
	}
	sort.Strings(names)

	p.man.Gen++
	gen := p.man.Gen
	bdir := filepath.Join(p.dir, batsDirName)
	newBATs := make(map[string]*batMeta, len(names))
	var obsolete []string // old-generation files to remove after commit

	for _, name := range names {
		b := bats[name]
		old, had := p.man.BATs[name]
		e, resident := p.live[name]
		clean := had && !b.Dirty() && resident && e.b == b
		if clean {
			newBATs[name] = old
			st.Skipped++
			continue
		}
		stem := fmt.Sprintf("%s.g%d", name, gen)
		hm, err := writeColumn(bdir, stem+".head", b.Head)
		if err != nil {
			return st, err
		}
		tm, err := writeColumn(bdir, stem+".tail", b.Tail)
		if err != nil {
			return st, err
		}
		newBATs[name] = &batMeta{Flags: flagsOf(b), Gen: gen, Head: hm, Tail: tm}
		st.Written++
		st.Bytes += hm.Size + hm.HeapSize + tm.Size + tm.HeapSize
		if had {
			obsolete = append(obsolete, metaFiles(old)...)
		}
	}
	// BATs dropped from the database: their files become garbage.
	for name, old := range p.man.BATs {
		if _, keep := newBATs[name]; !keep {
			obsolete = append(obsolete, metaFiles(old)...)
		}
	}

	if st.Written > 0 {
		if err := fsyncDir(bdir); err != nil {
			return st, err
		}
	}

	oldBATs, oldExtra, oldGen, oldVer := p.man.BATs, p.man.Extra, p.man.Gen, p.man.Version
	p.man.BATs = newBATs
	p.man.Extra = extra
	// A checkpoint rewrites the manifest wholesale, so it also upgrades
	// version-2 stores to the current format in the same atomic commit.
	p.man.Version = formatVersion
	if err := p.writeManifestLocked(); err != nil {
		// Restore the full in-memory manifest so it matches the durable
		// one (Gen was bumped at the top of this checkpoint attempt).
		p.man.BATs, p.man.Extra, p.man.Gen, p.man.Version = oldBATs, oldExtra, oldGen, oldVer
		return st, err
	}

	// Commit point passed: retire old generations and refresh the cache.
	for _, f := range obsolete {
		os.Remove(filepath.Join(bdir, f))
	}
	if !adopt {
		return st, nil
	}
	for _, name := range names {
		b := bats[name]
		b.ClearDirty()
		if e, ok := p.live[name]; ok {
			if e.b != b {
				e.closeMapsIfSafe()
				delete(p.live, name)
			} else {
				e.bytes = b.MemBytes() // the BAT may have grown since load
			}
		}
		if _, ok := p.live[name]; !ok {
			p.live[name] = &entry{b: b, bytes: b.MemBytes(), lastUse: p.clock}
		}
	}
	for name, e := range p.live {
		if _, keep := newBATs[name]; !keep {
			e.closeMapsIfSafe()
			delete(p.live, name)
		}
	}
	p.evictLocked()
	return st, nil
}

// closeMapsIfSafe unmaps an entry's regions unless the BAT is pinned
// (in which case the mappings are leaked to the process lifetime rather
// than risking a use-after-unmap; pinned replacements are a caller
// bug).
func (e *entry) closeMapsIfSafe() {
	if e.pins > 0 || e.b.PinCount() > 0 {
		return
	}
	for _, m := range e.maps {
		m.close()
	}
	e.maps = nil
}

// metaFiles lists the heap files a batMeta references.
func metaFiles(bm *batMeta) []string {
	var fs []string
	for _, cm := range []colMeta{bm.Head, bm.Tail} {
		if cm.File != "" {
			fs = append(fs, cm.File)
		}
		if cm.Heap != "" {
			fs = append(fs, cm.Heap)
		}
	}
	return fs
}

// writeManifestLocked atomically publishes the manifest: tmp file,
// fsync, rename, fsync store directory.
func (p *Pool) writeManifestLocked() error {
	mb, err := json.MarshalIndent(p.man, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: marshal manifest: %w", err)
	}
	path := filepath.Join(p.dir, manifestName)
	if _, err := writeHeapFile(path, mb); err != nil {
		return err
	}
	return fsyncDir(p.dir)
}

// removeOrphansLocked deletes heap files in bats/ that no manifest
// entry references — leftovers of a checkpoint that crashed before its
// commit point (or after it, before cleanup finished).
func (p *Pool) removeOrphansLocked() {
	referenced := map[string]bool{}
	for _, bm := range p.man.BATs {
		for _, f := range metaFiles(bm) {
			referenced[f] = true
		}
	}
	bdir := filepath.Join(p.dir, batsDirName)
	des, err := os.ReadDir(bdir)
	if err != nil {
		return
	}
	for _, de := range des {
		if !referenced[de.Name()] {
			os.Remove(filepath.Join(bdir, de.Name()))
		}
	}
}

// Close unmaps every resident BAT. BATs loaded through the mmap path
// must not be used afterwards; the core layer keeps its pool open for
// the life of the process.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var firstErr error
	for name, e := range p.live {
		for _, m := range e.maps {
			if err := m.close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		delete(p.live, name)
	}
	return firstErr
}

// Dir reports the store directory.
func (p *Pool) Dir() string { return p.dir }

// fsyncDir fsyncs a directory so renames and file creations within it
// are durable.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: fsync dir %s: %w", dir, err)
	}
	return nil
}

// validName rejects BAT names that would escape the store directory.
func validName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return fmt.Errorf("storage: invalid BAT name %q", name)
	}
	return nil
}
