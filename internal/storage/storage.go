// Package storage persists a named collection of BATs to a directory: the
// Mirror DBMS's stand-in for Monet's BAT buffer pool persistence. A store
// directory contains a manifest.json naming every BAT plus one .bat file per
// BAT. Saves are atomic at directory granularity: data is written to a
// temporary sibling directory and renamed into place.
package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mirror/internal/bat"
)

// Manifest describes the contents of a store directory.
type Manifest struct {
	Version int               `json:"version"`
	BATs    []string          `json:"bats"`
	Extra   map[string]string `json:"extra,omitempty"` // schema text etc.
}

const manifestName = "manifest.json"

// Save writes the BATs (and opaque extra metadata, e.g. serialised schema
// text) into dir, atomically replacing any previous contents.
func Save(dir string, bats map[string]*bat.BAT, extra map[string]string) error {
	parent := filepath.Dir(dir)
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return fmt.Errorf("storage: mkdir %s: %w", parent, err)
	}
	tmp, err := os.MkdirTemp(parent, ".store-*")
	if err != nil {
		return fmt.Errorf("storage: mktemp: %w", err)
	}
	defer os.RemoveAll(tmp)

	names := make([]string, 0, len(bats))
	for name := range bats {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		if err := validName(name); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(tmp, name+".bat"))
		if err != nil {
			return fmt.Errorf("storage: create %s: %w", name, err)
		}
		_, werr := bats[name].WriteTo(f)
		cerr := f.Close()
		if werr != nil {
			return fmt.Errorf("storage: write %s: %w", name, werr)
		}
		if cerr != nil {
			return fmt.Errorf("storage: close %s: %w", name, cerr)
		}
	}

	m := Manifest{Version: 1, BATs: names, Extra: extra}
	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: marshal manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(tmp, manifestName), mb, 0o644); err != nil {
		return fmt.Errorf("storage: write manifest: %w", err)
	}

	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("storage: remove old %s: %w", dir, err)
	}
	if err := os.Rename(tmp, dir); err != nil {
		return fmt.Errorf("storage: rename into place: %w", err)
	}
	return nil
}

// Load reads a store directory written by Save.
func Load(dir string) (map[string]*bat.BAT, map[string]string, error) {
	mb, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, nil, fmt.Errorf("storage: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return nil, nil, fmt.Errorf("storage: parse manifest: %w", err)
	}
	if m.Version != 1 {
		return nil, nil, fmt.Errorf("storage: unsupported version %d", m.Version)
	}
	bats := make(map[string]*bat.BAT, len(m.BATs))
	for _, name := range m.BATs {
		if err := validName(name); err != nil {
			return nil, nil, err
		}
		f, err := os.Open(filepath.Join(dir, name+".bat"))
		if err != nil {
			return nil, nil, fmt.Errorf("storage: open %s: %w", name, err)
		}
		b, rerr := bat.ReadBAT(f)
		f.Close()
		if rerr != nil {
			return nil, nil, fmt.Errorf("storage: read %s: %w", name, rerr)
		}
		bats[name] = b
	}
	return bats, m.Extra, nil
}

// validName rejects BAT names that would escape the store directory.
func validName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return fmt.Errorf("storage: invalid BAT name %q", name)
	}
	return nil
}
