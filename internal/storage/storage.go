// Package storage is the persistence layer of the Mirror DBMS: a
// Monet-style BAT buffer pool (BBP) over one store directory.
//
// A store holds a versioned MANIFEST plus one binary heap file per
// materialised BAT column under bats/ (an offset+heap file pair for
// str columns); void columns are pure manifest metadata. The Pool type
// is the primary API: Open/Create a store, Get (pin) and Release BATs,
// and Checkpoint the current database — incrementally, rewriting only
// the heap files of BATs that changed since the previous checkpoint.
// On linux, 8-byte fixed-width columns load zero-copy via mmap, so a
// cold start costs O(working set) page faults rather than O(database)
// reads; other platforms use a portable read path.
//
// Durability invariant (the fix for the historical rename-before-fsync
// bug in this package): heap files are written tmp+fsync+rename, the
// bats/ directory is fsync'd, and only then is the new MANIFEST
// published (itself tmp+fsync+rename followed by a directory fsync).
// The manifest rename is the single commit point; a crash on either
// side of it leaves a store that opens cleanly to a checkpoint.
//
// Save and Load remain as whole-database convenience wrappers for
// callers that do not need incremental checkpoints; they use the same
// on-disk format (and the same durability guarantee). Invariants the
// pool relies on are documented on bat.BAT: Append sets the dirty bit,
// and Pin/Release bracket every use of a pooled BAT so eviction never
// unmaps memory in use.
package storage

import (
	"fmt"

	"mirror/internal/bat"
)

// Save writes the BATs (and opaque extra metadata, e.g. serialised
// schema text) into dir as a full checkpoint, atomically replacing the
// store's previous logical contents: BATs absent from the map are
// dropped from the store. Files the store does not own (e.g. a WAL
// managed by internal/core) are left in place — higher layers decide
// their fate. The data is durable before the manifest commit point
// (see the package comment).
func Save(dir string, bats map[string]*bat.BAT, extra map[string]string) error {
	p, err := OpenOrCreate(dir, Options{})
	if err != nil {
		return err
	}
	defer p.Close()
	// adopt=false: a fresh pool has no resident cache, so every BAT is
	// written in full — and the caller's BATs are left untouched (their
	// dirty bits may belong to a live pool that still has to flush them).
	if _, err := p.checkpoint(bats, extra, false); err != nil {
		return err
	}
	return nil
}

// Load reads every BAT of a store written by Save (or checkpointed by a
// Pool). The returned BATs own private memory (no mmap), so they remain
// valid indefinitely; long-running servers that want zero-copy loads
// and incremental checkpoints should keep a Pool open instead.
func Load(dir string) (map[string]*bat.BAT, map[string]string, error) {
	p, err := Open(dir, Options{Verify: true, NoMmap: true})
	if err != nil {
		return nil, nil, err
	}
	defer p.Close()
	names := p.Names()
	bats := make(map[string]*bat.BAT, len(names))
	for _, name := range names {
		b, err := p.Get(name)
		if err != nil {
			return nil, nil, fmt.Errorf("storage: load %s: %w", dir, err)
		}
		p.Release(name)
		bats[name] = b
	}
	return bats, p.Extra(), nil
}
