package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"unsafe"

	"mirror/internal/bat"
)

// Heap-file encoding. Every materialised column becomes one binary heap
// file (fixed-width kinds: the raw little-endian value array, nothing
// else) or, for var-width kinds (str), an offset file plus a byte-heap
// file. Void columns are pure metadata (base + length in the manifest)
// and own no file. All sizes and CRC-32C checksums live in the
// manifest, so a heap file can be mapped and used without reading a
// header first.
//
//	oid, int:  n × 8 bytes (uint64/int64, little-endian)
//	flt:       n × 8 bytes (IEEE-754 bits, little-endian)
//	bit:       n × 1 byte (0 or 1)
//	bytes:     n × 1 byte, raw (compressed postings blobs; format
//	           version ≥ 3 stores only)
//	str:       offsets file: (n+1) × 8 bytes, off[0] = 0, off[i] =
//	           cumulative byte length; heap file: the concatenated
//	           string bytes
//
// On little-endian hosts the 8-byte kinds are written straight from and
// mapped straight into the column's backing slice (zero-copy); other
// hosts fall back to an explicit encode/decode.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// hostLittleEndian reports whether the running machine is little-endian;
// the zero-copy casts are only valid when it is.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// colMeta is the manifest's description of one persisted column.
type colMeta struct {
	Kind string `json:"kind"`
	N    int    `json:"n"`
	Base uint64 `json:"base,omitempty"` // void columns: first OID

	File string `json:"file,omitempty"` // data file (offset file for str)
	Size int64  `json:"size,omitempty"`
	CRC  uint32 `json:"crc,omitempty"`

	Heap     string `json:"heap,omitempty"` // str: byte-heap file
	HeapSize int64  `json:"heap_size,omitempty"`
	HeapCRC  uint32 `json:"heap_crc,omitempty"`
}

// u64Bytes views a []uint64-shaped slice as raw bytes (little-endian
// hosts only).
func u64Bytes[T ~uint64 | ~int64](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

func f64Bytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

// fixedEncode renders a fixed-width column as its heap-file bytes. On
// little-endian hosts the returned slice aliases the column storage (do
// not retain it past the write).
func fixedEncode(c *bat.Column) []byte {
	switch c.Kind() {
	case bat.KindOID:
		if hostLittleEndian {
			return u64Bytes(c.OIDs())
		}
		buf := make([]byte, len(c.OIDs())*8)
		for i, v := range c.OIDs() {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
		}
		return buf
	case bat.KindInt:
		if hostLittleEndian {
			return u64Bytes(c.Ints())
		}
		buf := make([]byte, len(c.Ints())*8)
		for i, v := range c.Ints() {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
		}
		return buf
	case bat.KindFloat:
		if hostLittleEndian {
			return f64Bytes(c.Floats())
		}
		buf := make([]byte, len(c.Floats())*8)
		for i, v := range c.Floats() {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		return buf
	case bat.KindBool:
		buf := make([]byte, len(c.Bools()))
		for i, v := range c.Bools() {
			if v {
				buf[i] = 1
			}
		}
		return buf
	case bat.KindBytes:
		return c.Bytes()
	}
	panic("storage: fixedEncode on non-fixed column")
}

// writeHeapFile writes data to path via a temp sibling, fsyncs it, and
// renames it into place. Returns the CRC-32C of the data. The caller
// fsyncs the containing directory once per checkpoint.
func writeHeapFile(path string, data []byte) (uint32, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("storage: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("storage: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("storage: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("storage: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("storage: rename %s: %w", path, err)
	}
	return crc32.Checksum(data, crcTable), nil
}

// writeColumn persists one column under dir, naming its files
// "<stem>[.heap]", and returns the manifest entry.
func writeColumn(dir, stem string, c *bat.Column) (colMeta, error) {
	m := colMeta{Kind: c.Kind().String(), N: c.Len()}
	switch c.Kind() {
	case bat.KindVoid:
		m.Base = uint64(c.Base())
		return m, nil
	case bat.KindStr:
		strs := c.Strs()
		offs := make([]uint64, len(strs)+1)
		var total uint64
		for i, s := range strs {
			total += uint64(len(s))
			offs[i+1] = total
		}
		heap := make([]byte, 0, total)
		for _, s := range strs {
			heap = append(heap, s...)
		}
		offBytes := make([]byte, len(offs)*8)
		for i, o := range offs {
			binary.LittleEndian.PutUint64(offBytes[i*8:], o)
		}
		m.File, m.Size = stem, int64(len(offBytes))
		crc, err := writeHeapFile(filepath.Join(dir, stem), offBytes)
		if err != nil {
			return m, err
		}
		m.CRC = crc
		m.Heap, m.HeapSize = stem+".heap", int64(len(heap))
		hcrc, err := writeHeapFile(filepath.Join(dir, stem+".heap"), heap)
		if err != nil {
			return m, err
		}
		m.HeapCRC = hcrc
		return m, nil
	default:
		data := fixedEncode(c)
		m.File, m.Size = stem, int64(len(data))
		crc, err := writeHeapFile(filepath.Join(dir, stem), data)
		if err != nil {
			return m, err
		}
		m.CRC = crc
		return m, nil
	}
}

// readHeapFile reads a whole heap file into private memory, checking
// its size (always) and checksum (when verify).
func readHeapFile(path string, wantSize int64, wantCRC uint32, verify bool) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: read heap file: %w", err)
	}
	if int64(len(data)) != wantSize {
		return nil, fmt.Errorf("storage: heap file %s: size %d, manifest says %d (truncated or corrupt)", path, len(data), wantSize)
	}
	if verify && crc32.Checksum(data, crcTable) != wantCRC {
		return nil, fmt.Errorf("storage: heap file %s: checksum mismatch (corrupt)", path)
	}
	return data, nil
}

// loadColumn rebuilds a column from its heap file(s). When mmapOK the
// 8-byte fixed-width kinds are mapped and adopted zero-copy; the
// returned mappings must stay open for the column's lifetime. All other
// paths copy into private memory and return no mappings.
func loadColumn(dir string, m colMeta, mmapOK, verify bool) (*bat.Column, []mapping, error) {
	kind, err := bat.KindFromString(m.Kind)
	if err != nil {
		return nil, nil, err
	}
	switch kind {
	case bat.KindVoid:
		return bat.NewVoid(bat.OID(m.Base), m.N), nil, nil

	case bat.KindOID, bat.KindInt, bat.KindFloat:
		path := filepath.Join(dir, m.File)
		if int64(m.N)*8 != m.Size {
			return nil, nil, fmt.Errorf("storage: heap file %s: manifest n=%d inconsistent with size %d", path, m.N, m.Size)
		}
		if mmapOK && hostLittleEndian && m.Size > 0 {
			mp, err := mapFile(path, m.Size)
			if err == nil {
				if verify && crc32.Checksum(mp.data, crcTable) != m.CRC {
					mp.close()
					return nil, nil, fmt.Errorf("storage: heap file %s: checksum mismatch (corrupt)", path)
				}
				var c *bat.Column
				p := unsafe.Pointer(&mp.data[0])
				switch kind {
				case bat.KindOID:
					c = bat.ColumnOfOIDs(unsafe.Slice((*bat.OID)(p), m.N))
				case bat.KindInt:
					c = bat.ColumnOfInts(unsafe.Slice((*int64)(p), m.N))
				case bat.KindFloat:
					c = bat.ColumnOfFloats(unsafe.Slice((*float64)(p), m.N))
				}
				return c, []mapping{mp}, nil
			}
			// fall through to the portable read on any mmap failure
		}
		data, err := readHeapFile(path, m.Size, m.CRC, verify)
		if err != nil {
			return nil, nil, err
		}
		switch kind {
		case bat.KindOID:
			s := make([]bat.OID, m.N)
			for i := range s {
				s[i] = bat.OID(binary.LittleEndian.Uint64(data[i*8:]))
			}
			return bat.ColumnOfOIDs(s), nil, nil
		case bat.KindInt:
			s := make([]int64, m.N)
			for i := range s {
				s[i] = int64(binary.LittleEndian.Uint64(data[i*8:]))
			}
			return bat.ColumnOfInts(s), nil, nil
		default:
			s := make([]float64, m.N)
			for i := range s {
				s[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
			}
			return bat.ColumnOfFloats(s), nil, nil
		}

	case bat.KindBool:
		path := filepath.Join(dir, m.File)
		if int64(m.N) != m.Size {
			return nil, nil, fmt.Errorf("storage: heap file %s: manifest n=%d inconsistent with size %d", path, m.N, m.Size)
		}
		data, err := readHeapFile(path, m.Size, m.CRC, verify)
		if err != nil {
			return nil, nil, err
		}
		s := make([]bool, m.N)
		for i, b := range data {
			s[i] = b != 0
		}
		return bat.ColumnOfBools(s), nil, nil

	case bat.KindBytes:
		path := filepath.Join(dir, m.File)
		if int64(m.N) != m.Size {
			return nil, nil, fmt.Errorf("storage: heap file %s: manifest n=%d inconsistent with size %d", path, m.N, m.Size)
		}
		if mmapOK && m.Size > 0 {
			mp, err := mapFile(path, m.Size)
			if err == nil {
				if verify && crc32.Checksum(mp.data, crcTable) != m.CRC {
					mp.close()
					return nil, nil, fmt.Errorf("storage: heap file %s: checksum mismatch (corrupt)", path)
				}
				return bat.ColumnOfBytes(mp.data[:m.N]), []mapping{mp}, nil
			}
			// fall through to the portable read on any mmap failure
		}
		data, err := readHeapFile(path, m.Size, m.CRC, verify)
		if err != nil {
			return nil, nil, err
		}
		return bat.ColumnOfBytes(data), nil, nil

	case bat.KindStr:
		offPath := filepath.Join(dir, m.File)
		if int64(m.N+1)*8 != m.Size {
			return nil, nil, fmt.Errorf("storage: offset file %s: manifest n=%d inconsistent with size %d", offPath, m.N, m.Size)
		}
		offData, err := readHeapFile(offPath, m.Size, m.CRC, verify)
		if err != nil {
			return nil, nil, err
		}
		heap, err := readHeapFile(filepath.Join(dir, m.Heap), m.HeapSize, m.HeapCRC, verify)
		if err != nil {
			return nil, nil, err
		}
		strs := make([]string, m.N)
		prev := uint64(0)
		for i := 0; i < m.N; i++ {
			off := binary.LittleEndian.Uint64(offData[(i+1)*8:])
			if off < prev || off > uint64(len(heap)) {
				return nil, nil, fmt.Errorf("storage: offset file %s: offset %d out of order or past heap end %d (corrupt)", offPath, off, len(heap))
			}
			strs[i] = string(heap[prev:off])
			prev = off
		}
		return bat.ColumnOfStrs(strs), nil, nil
	}
	return nil, nil, fmt.Errorf("storage: unknown column kind %q", m.Kind)
}
