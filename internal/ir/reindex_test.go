package ir

import (
	"math"
	"path/filepath"
	"testing"

	"mirror/internal/moa"
	"mirror/internal/storage"
)

// TestIncrementalInsertAndRefinalize checks the maintenance story: adding
// documents after a Finalize and re-finalizing updates statistics and
// beliefs consistently.
func TestIncrementalInsertAndRefinalize(t *testing.T) {
	db := mkImgLib(t)
	stats0, err := ReadStats(db, "TraditionalImgLib_annotation")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("TraditionalImgLib", map[string]any{
		"source": "http://img/6", "annotation": "red squirrels in the red autumn forest",
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Finalize("TraditionalImgLib"); err != nil {
		t.Fatal(err)
	}
	stats1, err := ReadStats(db, "TraditionalImgLib_annotation")
	if err != nil {
		t.Fatal(err)
	}
	if stats1.N != stats0.N+1 {
		t.Fatalf("N = %d, want %d", stats1.N, stats0.N+1)
	}
	eng := moa.NewEngine(db)
	res, err := eng.Query(paperQuery, QueryParams(Analyze("red")))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(res.Rows))
	}
	res.SortByScoreDesc()
	// both "red"-heavy docs (2 and the new 6) must outrank the rest
	top2 := map[uint64]bool{uint64(res.Rows[0].OID): true, uint64(res.Rows[1].OID): true}
	if !top2[2] || !top2[6] {
		t.Fatalf("top2 = %v, want docs 2 and 6", top2)
	}
}

// TestContrepSurvivesStorage round-trips a CONTREP collection through the
// storage layer and checks queries give identical scores.
func TestContrepSurvivesStorage(t *testing.T) {
	db := mkImgLib(t)
	eng := moa.NewEngine(db)
	params := QueryParams(Analyze("red sunset"))
	before, err := eng.Query(paperQuery, params)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "irdb")
	if err := storage.Save(dir, db.Snapshot(), map[string]string{"schema": db.SchemaSource()}); err != nil {
		t.Fatal(err)
	}
	bats, extra, err := storage.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	db2 := moa.NewDatabase()
	if err := db2.DefineFromSource(extra["schema"]); err != nil {
		t.Fatal(err)
	}
	for name, b := range bats {
		db2.PutBAT(name, b)
	}
	db2.SyncAfterLoad()

	eng2 := moa.NewEngine(db2)
	after, err := eng2.Query(paperQuery, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Rows) != len(after.Rows) {
		t.Fatalf("rows %d vs %d", len(before.Rows), len(after.Rows))
	}
	for _, row := range before.Rows {
		other, ok := after.Find(row.OID)
		if !ok {
			t.Fatalf("doc %d missing after reload", row.OID)
		}
		if math.Abs(row.Value.(float64)-other.Value.(float64)) > 1e-12 {
			t.Fatalf("doc %d: %v vs %v", row.OID, row.Value, other.Value)
		}
	}
	// and the reloaded db can still take inserts (counters synced)
	if _, err := db2.Insert("TraditionalImgLib", map[string]any{
		"source": "http://img/new", "annotation": "fresh red flowers",
	}); err != nil {
		t.Fatal(err)
	}
	if err := db2.Finalize("TraditionalImgLib"); err != nil {
		t.Fatal(err)
	}
	res, err := eng2.Query(`count(TraditionalImgLib);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar.(int64) != 7 {
		t.Fatalf("count after reload+insert = %v", res.Scalar)
	}
}

// TestEmptyCollectionQueries checks CONTREP behaviour before any insert.
func TestEmptyCollectionQueries(t *testing.T) {
	db := moa.NewDatabase()
	if err := db.DefineFromSource(
		`define E as SET<TUPLE<Atomic<URL>: u, CONTREP<Text>: body>>;`); err != nil {
		t.Fatal(err)
	}
	if err := db.Finalize("E"); err != nil {
		t.Fatal(err)
	}
	eng := moa.NewEngine(db)
	res, err := eng.Query(`
		map[sum(THIS)](map[getBL(THIS.body, query, stats)](E));`,
		QueryParams([]string{"anything"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("empty collection returned %d rows", len(res.Rows))
	}
	stats, err := ReadStats(db, "E_body")
	if err != nil {
		t.Fatal(err)
	}
	if stats.N != 0 {
		t.Fatalf("stats.N = %d", stats.N)
	}
}

// TestSingleDocumentCollection exercises the N=1 degenerate statistics.
func TestSingleDocumentCollection(t *testing.T) {
	db := moa.NewDatabase()
	if err := db.DefineFromSource(
		`define S as SET<TUPLE<Atomic<URL>: u, CONTREP<Text>: body>>;`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("S", map[string]any{"u": "x", "body": "lonely document text"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Finalize("S"); err != nil {
		t.Fatal(err)
	}
	eng := moa.NewEngine(db)
	res, err := eng.Query(`
		map[sum(THIS)](map[getBL(THIS.body, query, stats)](S));`,
		QueryParams(Analyze("lonely")))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	score := res.Rows[0].Value.(float64)
	// with N=1 and df=1 the idf term is log(1.5)/log(2) > 0, so the score
	// must exceed the default belief
	if score <= DefaultBelief {
		t.Fatalf("score %v <= default %v", score, DefaultBelief)
	}
	if math.IsNaN(score) || math.IsInf(score, 0) {
		t.Fatalf("degenerate score %v", score)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	text := "The quick brown foxes were jumping over the lazy dogs near the riverbank at sunset"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(text)
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"relational", "formalize", "adjustment", "electricity", "running"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}

func BenchmarkBelief(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Belief(3, 80, 75.5, 120, 10000)
	}
}
