package ir

import (
	"testing"

	"mirror/internal/bat"
	"mirror/internal/moa"
)

// TestGlobalStatsShardBeliefsMatchWhole is the unit-level half of the
// sharded differential guarantee: two half-collections finalized with the
// global statistics override and a union dictionary write per-posting
// beliefs and collection statistics identical to one store indexing
// everything.
func TestGlobalStatsShardBeliefsMatchWhole(t *testing.T) {
	const schema = `define L as SET<TUPLE<CONTREP<Text>: body>>;`
	docs := [][]string{
		{"ocean", "wave", "wave", "blue"},
		{"forest", "green", "moss"},
		{"ocean", "storm"},
		{"desert", "dune", "dune", "dune", "sand"},
		{}, // empty document still counts toward N
		{"ocean", "blue", "green"},
	}

	mkDB := func(idx []int) *moa.Database {
		db := moa.NewDatabase()
		if err := db.DefineFromSource(schema); err != nil {
			t.Fatal(err)
		}
		for _, i := range idx {
			if _, err := db.Insert("L", map[string]any{"body": docs[i]}); err != nil {
				t.Fatal(err)
			}
		}
		return db
	}

	whole := mkDB([]int{0, 1, 2, 3, 4, 5})
	if err := whole.Finalize("L"); err != nil {
		t.Fatal(err)
	}

	gs := CollectionStats(docs)
	vocab := make([]string, 0, len(gs.DF))
	for tm := range gs.DF {
		vocab = append(vocab, tm)
	}
	shardIdx := [][]int{{0, 2, 4}, {1, 3, 5}}
	shards := make([]*moa.Database, 2)
	for s, idx := range shardIdx {
		db := mkDB(idx)
		SetGlobalStats(db, "L_body", gs)
		defer SetGlobalStats(db, "L_body", nil)
		if err := EnsureDictTerms(db, "L_body", vocab); err != nil {
			t.Fatal(err)
		}
		if err := db.Finalize("L"); err != nil {
			t.Fatal(err)
		}
		shards[s] = db
	}

	// Collection statistics agree with the whole store on every shard.
	wantStats, err := ReadStats(whole, "L_body")
	if err != nil {
		t.Fatal(err)
	}
	for s, db := range shards {
		got, err := ReadStats(db, "L_body")
		if err != nil {
			t.Fatal(err)
		}
		if *got != *wantStats {
			t.Fatalf("shard %d stats %+v, want %+v", s, *got, *wantStats)
		}
	}

	// Per-document beliefs: read term→belief maps via the dictionary so
	// the comparison is OID-layout independent.
	beliefsOf := func(db *moa.Database, local bat.OID) map[string]float64 {
		termB, _ := db.BAT("L_body_term")
		docB, _ := db.BAT("L_body_doc")
		belB, _ := db.BAT("L_body_bel")
		dict, _ := db.BAT("L_body_dict")
		out := map[string]float64{}
		for i := 0; i < docB.Len(); i++ {
			if docB.Tail.OIDAt(i) != local {
				continue
			}
			w := dict.Tail.StrAt(int(termB.Tail.OIDAt(i)))
			out[w] = belB.Tail.FloatAt(i)
		}
		return out
	}
	for s, idx := range shardIdx {
		for local, g := range idx {
			want := beliefsOf(whole, bat.OID(g))
			got := beliefsOf(shards[s], bat.OID(local))
			if len(want) != len(got) {
				t.Fatalf("shard %d doc %d: %d terms vs %d", s, g, len(got), len(want))
			}
			for w, b := range want {
				if got[w] != b {
					t.Fatalf("shard %d doc %d term %q: belief %v, want %v", s, g, w, got[w], b)
				}
			}
		}
	}

	// Union dictionary: every shard knows the full vocabulary, and its
	// per-term df column carries the GLOBAL document frequency.
	for s, db := range shards {
		dict, _ := db.BAT("L_body_dict")
		if dict.Len() != len(gs.DF) {
			t.Fatalf("shard %d dictionary has %d terms, want %d", s, dict.Len(), len(gs.DF))
		}
		dfB, _ := db.BAT("L_body_df")
		for i := 0; i < dict.Len(); i++ {
			w := dict.Tail.StrAt(i)
			if int(dfB.Tail.IntAt(i)) != gs.DF[w] {
				t.Fatalf("shard %d df[%q] = %d, want global %d", s, w, dfB.Tail.IntAt(i), gs.DF[w])
			}
		}
	}
}
