package ir

import "sync"

// Pooled query scratch: borrow/return discipline for Scores maps.
//
// The exhaustive evaluation path builds (and promptly drops) several
// collection-sized maps per request, which at server query rates is pure
// allocator churn. NewScores and the Combine* operators draw from a
// sync.Pool; every borrowed map is handed back with ReleaseScores exactly
// once on every path, including error returns. Two enforcement layers back
// the discipline up:
//
//   - internal/lint/poolcheck (run in CI and by its own tests) statically
//     checks every borrow is released or ownership-transferred on every
//     control-flow path;
//   - the pooldebug build tag (pool_debug.go) tracks live borrows at run
//     time, poisons released maps, and panics on double-release and
//     use-after-release.
//
// Raw scoresPool access outside this file is a poolcheck diagnostic.
//
//poolcheck:poolfile

// maxPooledScores bounds the size of maps the pool retains. Go maps never
// shrink: one k<=0 query over a large collection would otherwise pin a
// collection-sized bucket array per P forever. Oversized maps are dropped
// on release and left to the GC.
const maxPooledScores = 1 << 14

// scoresPool recycles Scores maps between queries.
var scoresPool = sync.Pool{New: func() any { return make(Scores, 256) }}

// NewScores returns an empty Scores map, reusing a released one when
// available. The caller owns the map: return it with ReleaseScores exactly
// once when done (dropping it instead merely wastes the reuse, but under
// the pooldebug tag an unreleased borrow is a reportable leak).
func NewScores() Scores {
	s := scoresPool.Get().(Scores)
	scoresBorrowed(s)
	return s
}

// ReleaseScores clears s and returns it to the pool. The caller must not
// retain s afterwards: under the pooldebug tag released maps are poisoned,
// and feeding one back into a Combine*/Rank* operator panics. nil is
// tolerated (error paths release unconditionally). Maps larger than
// maxPooledScores are dropped instead of pooled.
func ReleaseScores(s Scores) {
	if s == nil {
		return
	}
	pooled := len(s) <= maxPooledScores
	scoresReleased(s)
	if !pooled {
		return
	}
	clear(s)
	scoresRepooled(s)
	scoresPool.Put(s)
}
