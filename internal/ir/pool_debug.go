//go:build pooldebug

package ir

import (
	"fmt"
	"math"
	"reflect"
	"sync"
)

// pooldebug: dynamic enforcement of the Scores borrow/return discipline.
//
// Every borrow is tracked in a live set keyed by the map's pointer; every
// release removes it again and — for maps that go back into the pool —
// registers the map in a released registry. Feeding a released map into a
// Combine*/Rank* operator panics (use-after-release), as does releasing
// the same pooled map twice (double-release). Released maps are poisoned
// with a sentinel entry so even untracked reads look loudly wrong.
//
// The released registry pins the actual map references, so an address can
// never be recycled by the allocator while the registry still names it —
// pointer-keyed tracking stays sound. Oversized maps that ReleaseScores
// drops (rather than pools) are not registered: pinning them would defeat
// the drop. Use-after-release of a dropped map is therefore detected only
// by its poison entry, not by panic.
//
//poolcheck:poolfile

// poisonKey/poisonVal mark a released map: no real document has OID 2^64-1,
// and NaN propagates through any belief arithmetic that touches it.
const poisonKey = ^uint64(0)

var poisonVal = math.NaN()

var poolDebug struct {
	mu       sync.Mutex
	live     map[uintptr]struct{}
	released map[uintptr]Scores
}

func init() {
	poolDebug.live = make(map[uintptr]struct{})
	poolDebug.released = make(map[uintptr]Scores)
}

func scoresPtr(s Scores) uintptr { return reflect.ValueOf(s).Pointer() }

func scoresBorrowed(s Scores) {
	p := scoresPtr(s)
	poolDebug.mu.Lock()
	delete(poolDebug.released, p)
	poolDebug.live[p] = struct{}{}
	poolDebug.mu.Unlock()
	delete(s, poisonKey)
}

func scoresReleased(s Scores) {
	p := scoresPtr(s)
	poolDebug.mu.Lock()
	if _, ok := poolDebug.released[p]; ok {
		poolDebug.mu.Unlock()
		panic(fmt.Sprintf("ir: double ReleaseScores of pooled map %#x", p))
	}
	// Releasing a map that was never borrowed (built with make by tests
	// or foreign call sites) is tolerated: it simply joins the pool.
	delete(poolDebug.live, p)
	poolDebug.mu.Unlock()
	s[poisonKey] = poisonVal
}

func scoresRepooled(s Scores) {
	p := scoresPtr(s)
	poolDebug.mu.Lock()
	poolDebug.released[p] = s
	poolDebug.mu.Unlock()
	s[poisonKey] = poisonVal
}

// assertScoresLive panics when any argument is a released pooled map —
// the use-after-release trap wired into every Combine*/Rank* entry point.
func assertScoresLive(ss ...Scores) {
	poolDebug.mu.Lock()
	defer poolDebug.mu.Unlock()
	for _, s := range ss {
		if s == nil {
			continue
		}
		if _, ok := poolDebug.released[scoresPtr(s)]; ok {
			panic(fmt.Sprintf("ir: use of released Scores map %#x", scoresPtr(s)))
		}
	}
}

// LiveScores reports the number of borrowed-but-unreleased Scores maps.
// Leak tests snapshot it around a query path and require the delta be zero.
func LiveScores() int {
	poolDebug.mu.Lock()
	defer poolDebug.mu.Unlock()
	return len(poolDebug.live)
}
