package ir

import (
	"fmt"
	"math"
	"sort"

	"mirror/internal/bat"
)

// DefaultBelief is the inference network's prior belief in a concept given a
// document that contains no evidence for it (InQuery's default 0.4).
const DefaultBelief = 0.4

// Belief computes the InQuery belief bel(t|d): the probability that document
// d supports concept t, combining a tf component (Robertson-style length
// normalisation) and an idf component, scaled into [DefaultBelief, 1):
//
//	T = tf / (tf + 0.5 + 1.5·dl/avgdl)
//	I = log((N + 0.5)/df) / log(N + 1)
//	bel = DefaultBelief + (1 − DefaultBelief) · T · I
func Belief(tf int, dl int, avgdl float64, df int, n int) float64 {
	if tf <= 0 || df <= 0 || n <= 0 {
		return DefaultBelief
	}
	if avgdl <= 0 {
		avgdl = 1
	}
	t := float64(tf) / (float64(tf) + 0.5 + 1.5*float64(dl)/avgdl)
	i := math.Log((float64(n)+0.5)/float64(df)) / math.Log(float64(n)+1)
	if i < 0 {
		i = 0
	}
	return DefaultBelief + (1-DefaultBelief)*t*i
}

// Stats holds the collection-level statistics CONTREP maintains (the
// `stats` argument of the paper's getBL calls).
type Stats struct {
	N             int     // number of documents
	AvgDocLen     float64 // average document length in tokens
	Terms         int     // dictionary size
	DefaultBelief float64
}

// ---- evidence combination (the inference network query operators) ----

// Scores maps document OIDs (as uint64 for package independence) to
// beliefs. The combination operators implement the query formulation model
// of the inference network: #sum, #wsum, #and, #or, #not, #max.
//
// Scores maps returned by NewScores and the Combine* operators are pooled
// scratch (see pool.go): the caller owns the result and hands it back with
// ReleaseScores exactly once on every path, including error returns — a
// discipline enforced statically by internal/lint/poolcheck and dynamically
// by the pooldebug build tag.
type Scores map[uint64]float64

// CombineSum averages the beliefs of the children (#sum). Documents missing
// from a child contribute that child's default.
func CombineSum(children []Scores, defaults []float64) (Scores, error) {
	assertScoresLive(children...)
	if len(children) != len(defaults) {
		return nil, fmt.Errorf("ir: #sum: %d children vs %d defaults", len(children), len(defaults))
	}
	out := NewScores()
	for _, ch := range children {
		for d := range ch {
			out[d] = 0
		}
	}
	n := float64(len(children))
	if n == 0 {
		return out, nil
	}
	for d := range out {
		s := 0.0
		for ci, ch := range children {
			if v, ok := ch[d]; ok {
				s += v
			} else {
				s += defaults[ci]
			}
		}
		out[d] = s / n
	}
	return out, nil
}

// CombineWSum is the weighted average (#wsum).
func CombineWSum(children []Scores, weights, defaults []float64) (Scores, error) {
	assertScoresLive(children...)
	if len(children) != len(weights) || len(children) != len(defaults) {
		return nil, fmt.Errorf("ir: #wsum: mismatched children/weights/defaults")
	}
	var wtot float64
	for _, w := range weights {
		wtot += w
	}
	if wtot == 0 {
		return NewScores(), nil
	}
	out := NewScores()
	for _, ch := range children {
		for d := range ch {
			out[d] = 0
		}
	}
	for d := range out {
		s := 0.0
		for ci, ch := range children {
			v, ok := ch[d]
			if !ok {
				v = defaults[ci]
			}
			s += weights[ci] * v
		}
		out[d] = s / wtot
	}
	return out, nil
}

// CombineAnd multiplies beliefs (#and).
func CombineAnd(children []Scores, defaults []float64) (Scores, error) {
	assertScoresLive(children...)
	if len(children) != len(defaults) {
		return nil, fmt.Errorf("ir: #and: mismatched children/defaults")
	}
	out := NewScores()
	for _, ch := range children {
		for d := range ch {
			out[d] = 1
		}
	}
	for d := range out {
		p := 1.0
		for ci, ch := range children {
			v, ok := ch[d]
			if !ok {
				v = defaults[ci]
			}
			p *= v
		}
		out[d] = p
	}
	return out, nil
}

// CombineOr is the probabilistic or (#or): 1 − Π(1 − b).
func CombineOr(children []Scores, defaults []float64) (Scores, error) {
	assertScoresLive(children...)
	if len(children) != len(defaults) {
		return nil, fmt.Errorf("ir: #or: mismatched children/defaults")
	}
	out := NewScores()
	for _, ch := range children {
		for d := range ch {
			out[d] = 0
		}
	}
	for d := range out {
		p := 1.0
		for ci, ch := range children {
			v, ok := ch[d]
			if !ok {
				v = defaults[ci]
			}
			p *= 1 - v
		}
		out[d] = 1 - p
	}
	return out, nil
}

// CombineNot negates belief (#not).
func CombineNot(child Scores) Scores {
	assertScoresLive(child)
	out := NewScores()
	for d, v := range child {
		out[d] = 1 - v
	}
	return out
}

// CombineMax takes the maximum belief (#max).
func CombineMax(children []Scores, defaults []float64) (Scores, error) {
	assertScoresLive(children...)
	if len(children) != len(defaults) {
		return nil, fmt.Errorf("ir: #max: mismatched children/defaults")
	}
	out := NewScores()
	for _, ch := range children {
		for d := range ch {
			out[d] = math.Inf(-1)
		}
	}
	for d := range out {
		m := math.Inf(-1)
		for ci, ch := range children {
			v, ok := ch[d]
			if !ok {
				v = defaults[ci]
			}
			if v > m {
				m = v
			}
		}
		out[d] = m
	}
	return out, nil
}

// Ranked is one entry of a ranking.
type Ranked struct {
	Doc   uint64
	Score float64
}

// rankedWorse reports whether a ranks strictly after b (score descending,
// document OID ascending on ties — the order every ranking in the system
// uses).
func rankedWorse(a, b Ranked) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Doc > b.Doc
}

// Rank orders scores descending (ties by document OID) and cuts at k
// (k <= 0 keeps everything). When k is smaller than the collection it runs
// a bounded min-heap partial selection — O(N log k) instead of sorting all
// N scores — with the identical tie order.
func Rank(s Scores, k int) []Ranked {
	return RankInto(nil, s, k)
}

// RankInto is Rank reusing dst's backing array (pass a slice retained from
// a previous ranking to avoid the allocation; dst may be nil). The bounded
// selection runs on bat.BoundedTopK — a total-order comparator (OIDs are
// unique), so the result is independent of map iteration order.
func RankInto(dst []Ranked, s Scores, k int) []Ranked {
	assertScoresLive(s)
	out := dst[:0]
	if k > 0 && k < len(s) {
		h := bat.NewBoundedTopK(k, rankedWorse)
		for d, v := range s {
			h.Offer(Ranked{Doc: d, Score: v})
		}
		return append(out, h.Ranked()...)
	}
	for d, v := range s {
		out = append(out, Ranked{Doc: d, Score: v})
	}
	sort.Slice(out, func(i, j int) bool { return rankedWorse(out[j], out[i]) })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
