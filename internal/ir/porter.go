// Package ir implements the information-retrieval substrate of the Mirror
// DBMS: text analysis (tokeniser, stop words, Porter stemmer), the
// inference-network retrieval model of InQuery (Wong & Yao's probabilistic
// inference framework with the InQuery belief function), and the CONTREP
// Moa structure that exposes the model to the query algebra, as described
// in Section 3 of the paper.
package ir

import "strings"

// Stem applies the Porter stemming algorithm (Porter, 1980) to a lowercase
// word. Words shorter than 3 characters are returned unchanged.
func Stem(word string) string {
	if len(word) < 3 {
		return word
	}
	w := &stemWord{b: []byte(word)}
	w.step1a()
	w.step1b()
	w.step1c()
	w.step2()
	w.step3()
	w.step4()
	w.step5a()
	w.step5b()
	return string(w.b)
}

type stemWord struct {
	b []byte
}

// isConsonant reports whether b[i] is a consonant per Porter's definition.
func (w *stemWord) isConsonant(i int) bool {
	switch w.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !w.isConsonant(i - 1)
	}
	return true
}

// measure computes m: the number of VC sequences in b[:end].
func (w *stemWord) measure(end int) int {
	m := 0
	i := 0
	// skip initial consonants
	for i < end && w.isConsonant(i) {
		i++
	}
	for i < end {
		// in vowel run
		for i < end && !w.isConsonant(i) {
			i++
		}
		if i >= end {
			break
		}
		m++
		for i < end && w.isConsonant(i) {
			i++
		}
	}
	return m
}

// hasVowel reports whether b[:end] contains a vowel.
func (w *stemWord) hasVowel(end int) bool {
	for i := 0; i < end; i++ {
		if !w.isConsonant(i) {
			return true
		}
	}
	return false
}

// endsDoubleC reports whether b[:end] ends in a double consonant.
func (w *stemWord) endsDoubleC(end int) bool {
	if end < 2 {
		return false
	}
	return w.b[end-1] == w.b[end-2] && w.isConsonant(end-1)
}

// endsCVC reports whether b[:end] ends consonant-vowel-consonant where the
// final consonant is not w, x or y.
func (w *stemWord) endsCVC(end int) bool {
	if end < 3 {
		return false
	}
	if !w.isConsonant(end-3) || w.isConsonant(end-2) || !w.isConsonant(end-1) {
		return false
	}
	c := w.b[end-1]
	return c != 'w' && c != 'x' && c != 'y'
}

// hasSuffix reports whether the word ends with s and returns the stem end.
func (w *stemWord) hasSuffix(s string) (int, bool) {
	n := len(w.b) - len(s)
	if n < 0 {
		return 0, false
	}
	if string(w.b[n:]) != s {
		return 0, false
	}
	return n, true
}

// replaceSuffix replaces suffix s with r if measure(stem) > m.
func (w *stemWord) replaceSuffix(s, r string, m int) bool {
	n, ok := w.hasSuffix(s)
	if !ok {
		return false
	}
	if w.measure(n) > m {
		w.b = append(w.b[:n], r...)
	}
	return true // suffix matched (rule consumed) even if condition failed
}

func (w *stemWord) step1a() {
	switch {
	case w.endsWith("sses"):
		w.b = w.b[:len(w.b)-2]
	case w.endsWith("ies"):
		w.b = append(w.b[:len(w.b)-3], 'i')
	case w.endsWith("ss"):
		// keep
	case w.endsWith("s"):
		w.b = w.b[:len(w.b)-1]
	}
}

func (w *stemWord) endsWith(s string) bool {
	_, ok := w.hasSuffix(s)
	return ok
}

func (w *stemWord) step1b() {
	if n, ok := w.hasSuffix("eed"); ok {
		if w.measure(n) > 0 {
			w.b = w.b[:len(w.b)-1]
		}
		return
	}
	applied := false
	if n, ok := w.hasSuffix("ed"); ok && w.hasVowel(n) {
		w.b = w.b[:n]
		applied = true
	} else if n, ok := w.hasSuffix("ing"); ok && w.hasVowel(n) {
		w.b = w.b[:n]
		applied = true
	}
	if !applied {
		return
	}
	switch {
	case w.endsWith("at"), w.endsWith("bl"), w.endsWith("iz"):
		w.b = append(w.b, 'e')
	case w.endsDoubleC(len(w.b)):
		c := w.b[len(w.b)-1]
		if c != 'l' && c != 's' && c != 'z' {
			w.b = w.b[:len(w.b)-1]
		}
	case w.measure(len(w.b)) == 1 && w.endsCVC(len(w.b)):
		w.b = append(w.b, 'e')
	}
}

func (w *stemWord) step1c() {
	if n, ok := w.hasSuffix("y"); ok && w.hasVowel(n) {
		w.b[len(w.b)-1] = 'i'
	}
}

var step2Rules = []struct{ suf, rep string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func (w *stemWord) step2() {
	for _, r := range step2Rules {
		if w.replaceSuffix(r.suf, r.rep, 0) {
			return
		}
	}
}

var step3Rules = []struct{ suf, rep string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func (w *stemWord) step3() {
	for _, r := range step3Rules {
		if w.replaceSuffix(r.suf, r.rep, 0) {
			return
		}
	}
}

// step4Suffixes is scanned longest-first; the first match consumes the rule
// whether or not its m>1 condition holds (Porter's alternatives semantics).
var step4Suffixes = []string{
	"ement", "ance", "ence", "able", "ible",
	"ment", "ant", "ent", "ion", "ism", "ate", "iti", "ous", "ive", "ize",
	"al", "er", "ic", "ou",
}

func (w *stemWord) step4() {
	for _, s := range step4Suffixes {
		if n, ok := w.hasSuffix(s); ok {
			// "ion" additionally requires the stem to end in s or t.
			if s == "ion" && !(n > 0 && (w.b[n-1] == 's' || w.b[n-1] == 't')) {
				return
			}
			if w.measure(n) > 1 {
				w.b = w.b[:n]
			}
			return
		}
	}
}

func (w *stemWord) step5a() {
	if n, ok := w.hasSuffix("e"); ok {
		m := w.measure(n)
		if m > 1 || (m == 1 && !w.endsCVC(n)) {
			w.b = w.b[:n]
		}
	}
}

func (w *stemWord) step5b() {
	if w.endsDoubleC(len(w.b)) && w.b[len(w.b)-1] == 'l' && w.measure(len(w.b)) > 1 {
		w.b = w.b[:len(w.b)-1]
	}
}

// StemPhrase stems each whitespace-separated word of a phrase.
func StemPhrase(phrase string) string {
	parts := strings.Fields(phrase)
	for i, p := range parts {
		parts[i] = Stem(strings.ToLower(p))
	}
	return strings.Join(parts, " ")
}
