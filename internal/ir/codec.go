package ir

import (
	"fmt"
	"sync"

	"mirror/internal/bat"
	"mirror/internal/moa"
)

// Postings codec selection.
//
// A derived postings segment is stored in one of two layouts:
//
//	raw    _poststart/_postdoc/_posttf/_postbel/_maxbel — three 8-byte
//	       columns per posting, the layout every store used before the
//	       block codec existed.
//	block  _poststart/_blkstart/_blkdir/_blkdoc/_blkbdir/_blkbel/_maxbel
//	       — fixed-size blocks of delta-compressed doc ids + term
//	       frequencies and dictionary-coded beliefs, with per-block
//	       upward-quantized max-belief bounds (bat/postcodec.go). The
//	       beliefs themselves survive bit-exact, and _maxbel stays the
//	       exact per-term maximum, so pruned results are BUN-for-BUN
//	       identical between the layouts; only footprint and the scan's
//	       block-skipping differ.
//
// The codec is chosen per database (the -store-codec flag in the
// daemons) and registered here, like the GlobalStats override: segment
// build, merge and the EnsureCodec upgrade consult the registry. The
// default is the block codec.

// Codec selects the storage layout of derived postings segments.
type Codec int

const (
	// CodecBlock is the block-compressed layout (the default).
	CodecBlock Codec = iota
	// CodecRaw is the uncompressed 8-byte-per-field layout.
	CodecRaw
)

func (c Codec) String() string {
	if c == CodecRaw {
		return "raw"
	}
	return "block"
}

// CodecFromString parses a -store-codec flag value.
func CodecFromString(s string) (Codec, error) {
	switch s {
	case "block", "":
		return CodecBlock, nil
	case "raw":
		return CodecRaw, nil
	}
	return CodecBlock, fmt.Errorf("ir: unknown postings codec %q (want block or raw)", s)
}

var (
	codecMu  sync.Mutex
	codecReg = map[*moa.Database]Codec{}
)

// SetStoreCodec registers the postings codec newly built or merged
// segments of this database use. Existing segments are not rewritten;
// call EnsureCodec for that.
func SetStoreCodec(db *moa.Database, c Codec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	if c == CodecBlock {
		delete(codecReg, db) // the default needs no entry
		return
	}
	codecReg[db] = c
}

// StoreCodec reports the registered codec for the database (CodecBlock
// unless overridden).
func StoreCodec(db *moa.Database) Codec {
	codecMu.Lock()
	defer codecMu.Unlock()
	return codecReg[db]
}

// segIsBlock reports whether segment slot s is stored block-compressed.
func segIsBlock(a dbAccess, prefix string, slot int) bool {
	_, ok := a.get(SegColumn(prefix, slot, "_blkdoc"))
	return ok
}

// segBlockView assembles slot s's seven block columns into a validated
// decode view.
func segBlockView(a dbAccess, prefix string, slot int) (*bat.BlockPostings, error) {
	var cols [7]*bat.BAT
	for i, suffix := range blockSegSuffixes {
		b, ok := a.get(SegColumn(prefix, slot, suffix))
		if !ok {
			return nil, fmt.Errorf("ir: %s: segment %d lost %s", prefix, slot, suffix)
		}
		cols[i] = b
	}
	bp, err := bat.NewBlockPostings(cols[0], cols[1], cols[2], cols[3], cols[4], cols[5], cols[6])
	if err != nil {
		return nil, fmt.Errorf("ir: %s: segment %d: %w", prefix, slot, err)
	}
	return bp, nil
}

// segData is one segment's postings, decoded to flat arrays — the
// layout-independent form the merge and the codec converters work on.
type segData struct {
	starts []int64
	docs   []bat.OID
	tfs    []int64
	bels   []float64
	maxb   []float64
}

// readSegData decodes slot s of either layout into flat arrays. withBel
// false skips the belief columns (structure-only callers).
func readSegData(a dbAccess, prefix string, slot int, withBel bool) (*segData, error) {
	if segIsBlock(a, prefix, slot) {
		bp, err := segBlockView(a, prefix, slot)
		if err != nil {
			return nil, err
		}
		nt := bp.NTerms()
		np := 0
		if nt > 0 {
			_, np = bp.TermRange(nt - 1)
		}
		sd := &segData{
			starts: make([]int64, nt+1),
			docs:   make([]bat.OID, 0, np),
			tfs:    make([]int64, 0, np),
		}
		if withBel {
			sd.bels = make([]float64, 0, np)
			sd.maxb = make([]float64, nt)
		}
		var docBuf [bat.PostingsBlockSize]bat.OID
		var tfBuf [bat.PostingsBlockSize]int64
		var belBuf [bat.PostingsBlockSize]float64
		var dictBuf []float64
		for t := 0; t < nt; t++ {
			sd.starts[t] = int64(len(sd.docs))
			blo, bhi := bp.TermBlocks(t)
			var dict []float64
			var dictOff int64
			if withBel && bhi > blo {
				if dict, dictOff, err = bp.TermDict(t, dictBuf); err != nil {
					return nil, fmt.Errorf("ir: %s: segment %d term %d: %w", prefix, slot, t, err)
				}
				dictBuf = dict
			}
			for b := blo; b < bhi; b++ {
				n, err := bp.DecodeDocBlock(t, b, docBuf[:], tfBuf[:])
				if err != nil {
					return nil, fmt.Errorf("ir: %s: segment %d term %d: %w", prefix, slot, t, err)
				}
				sd.docs = append(sd.docs, docBuf[:n]...)
				sd.tfs = append(sd.tfs, tfBuf[:n]...)
				if withBel {
					if err := bp.DecodeBelBlock(t, b, dict, dictOff, belBuf[:n]); err != nil {
						return nil, fmt.Errorf("ir: %s: segment %d term %d: %w", prefix, slot, t, err)
					}
					sd.bels = append(sd.bels, belBuf[:n]...)
				}
			}
			if withBel {
				sd.maxb[t] = bp.MaxBelief(t)
			}
		}
		sd.starts[nt] = int64(len(sd.docs))
		return sd, nil
	}

	startB, ok1 := a.get(SegColumn(prefix, slot, "_poststart"))
	docB, ok2 := a.get(SegColumn(prefix, slot, "_postdoc"))
	tfB, ok3 := a.get(SegColumn(prefix, slot, "_posttf"))
	if !ok1 || !ok2 || !ok3 {
		return nil, fmt.Errorf("ir: %s: segment %d lost its structure", prefix, slot)
	}
	sd := &segData{
		starts: append([]int64(nil), startB.Tail.Ints()...),
		docs:   docB.Tail.OIDs(),
		tfs:    tfB.Tail.Ints(),
	}
	if withBel {
		belB, ok4 := a.get(SegColumn(prefix, slot, "_postbel"))
		maxbB, ok5 := a.get(SegColumn(prefix, slot, "_maxbel"))
		if !ok4 || !ok5 {
			return nil, fmt.Errorf("ir: %s: segment %d has no beliefs (refinalize first)", prefix, slot)
		}
		sd.bels = belB.Tail.Floats()
		sd.maxb = maxbB.Tail.Floats()
	}
	return sd, nil
}

// writeSegData stores flat postings arrays as slot s in the requested
// codec, deleting the other layout's columns at that slot so converted
// or merged slots never carry stale twins. sd.bels/sd.maxb may be nil
// for structure-only writes (the block layout then gets zero-belief
// placeholders so the segment stays loadable; RefinalizeSegments
// overwrites them before the segment serves queries).
func writeSegData(a dbAccess, prefix string, slot int, c Codec, sd *segData) error {
	nt := len(sd.starts) - 1
	if c == CodecRaw {
		a.put(SegColumn(prefix, slot, "_poststart"), adoptDense(bat.ColumnOfInts(sd.starts)))
		a.put(SegColumn(prefix, slot, "_postdoc"), adoptDense(bat.ColumnOfOIDs(sd.docs)))
		a.put(SegColumn(prefix, slot, "_posttf"), adoptDense(bat.ColumnOfInts(sd.tfs)))
		if sd.bels != nil {
			a.put(SegColumn(prefix, slot, "_postbel"), adoptDense(bat.ColumnOfFloats(sd.bels)))
			a.put(SegColumn(prefix, slot, "_maxbel"), adoptDense(bat.ColumnOfFloats(sd.maxb)))
		}
		for _, suffix := range blockOnlySuffixes {
			a.del(SegColumn(prefix, slot, suffix))
		}
		return nil
	}
	enc := bat.NewBlockPostingsEncoder(nt)
	bele := bat.NewBlockBeliefsEncoder()
	maxb := make([]float64, nt)
	var zeros []float64
	for t := 0; t < nt; t++ {
		lo, hi := sd.starts[t], sd.starts[t+1]
		if err := enc.AddTerm(sd.docs[lo:hi], sd.tfs[lo:hi]); err != nil {
			return fmt.Errorf("ir: %s: segment %d term %d: %w", prefix, slot, t, err)
		}
		bels := zeros
		if sd.bels != nil {
			bels = sd.bels[lo:hi]
		} else {
			for int64(len(zeros)) < hi-lo {
				zeros = append(zeros, 0)
			}
			bels = zeros[:hi-lo]
		}
		maxb[t] = bele.AddTerm(bels)
	}
	a.put(SegColumn(prefix, slot, "_poststart"), adoptDense(bat.ColumnOfInts(sd.starts)))
	a.put(SegColumn(prefix, slot, "_blkstart"), adoptDense(bat.ColumnOfInts(enc.BlkStart)))
	a.put(SegColumn(prefix, slot, "_blkdir"), adoptDense(bat.ColumnOfInts(enc.BlkDir)))
	a.put(SegColumn(prefix, slot, "_blkdoc"), adoptDense(bat.ColumnOfBytes(enc.Data)))
	a.put(SegColumn(prefix, slot, "_blkbdir"), adoptDense(bat.ColumnOfInts(bele.BelDir)))
	a.put(SegColumn(prefix, slot, "_blkbel"), adoptDense(bat.ColumnOfBytes(bele.Data)))
	a.put(SegColumn(prefix, slot, "_maxbel"), adoptDense(bat.ColumnOfFloats(maxb)))
	for _, suffix := range rawOnlySuffixes {
		a.del(SegColumn(prefix, slot, suffix))
	}
	return nil
}

// refinalizeBlockSegment recomputes a block segment's beliefs under the
// (possibly overridden) collection statistics: the immutable doc/tf
// blocks are decoded, per-posting beliefs recomputed with the exact
// arithmetic of the raw path, and only _blkbdir/_blkbel/_maxbel are
// rewritten — the structure columns never change after build.
func refinalizeBlockSegment(a dbAccess, prefix string, slot int, dlenOf map[bat.OID]int64, avgdl float64, df []int64, n int) error {
	bp, err := segBlockView(a, prefix, slot)
	if err != nil {
		return err
	}
	nt := bp.NTerms()
	bele := bat.NewBlockBeliefsEncoder()
	maxb := make([]float64, nt)
	var docBuf [bat.PostingsBlockSize]bat.OID
	var tfBuf [bat.PostingsBlockSize]int64
	var bels []float64
	for t := 0; t < nt; t++ {
		dft := int64(0)
		if t < len(df) {
			dft = df[t]
		}
		blo, bhi := bp.TermBlocks(t)
		bels = bels[:0]
		for b := blo; b < bhi; b++ {
			cnt, err := bp.DecodeDocBlock(t, b, docBuf[:], tfBuf[:])
			if err != nil {
				return fmt.Errorf("ir: %s: segment %d term %d: %w", prefix, slot, t, err)
			}
			for i := 0; i < cnt; i++ {
				bels = append(bels, Belief(int(tfBuf[i]), int(dlenOf[docBuf[i]]), avgdl, int(dft), n))
			}
		}
		maxb[t] = bele.AddTerm(bels)
	}
	a.put(SegColumn(prefix, slot, "_blkbdir"), adoptDense(bat.ColumnOfInts(bele.BelDir)))
	a.put(SegColumn(prefix, slot, "_blkbel"), adoptDense(bat.ColumnOfBytes(bele.Data)))
	a.put(SegColumn(prefix, slot, "_maxbel"), adoptDense(bat.ColumnOfFloats(maxb)))
	return nil
}

// EnsureCodec rewrites every existing segment of the CONTREP into the
// database's registered codec (a no-op for segments already there, and
// for stores that predate segmentation — EnsureSegmented runs first).
// Beliefs are copied bit-exact in both directions, so converted stores
// answer queries hit-for-hit identically; only footprint changes. The
// one-shot conversion mirrors EnsureSegmented: opening an old raw store
// under the default block codec upgrades it in place, and the next
// Checkpoint persists the converted layout.
func EnsureCodec(db *moa.Database, prefix string) error {
	a := access(db)
	target := StoreCodec(db)
	sd, ok := readSegDir(a, prefix)
	if !ok {
		return nil
	}
	for s := 0; s < sd.count(); s++ {
		if segIsBlock(a, prefix, s) == (target == CodecBlock) {
			continue
		}
		data, err := readSegData(a, prefix, s, true)
		if err != nil {
			return err
		}
		if err := writeSegData(a, prefix, s, target, data); err != nil {
			return err
		}
	}
	return nil
}

// PostingsFootprint sums the storage of a CONTREP's derived postings
// columns across segments, next to what the raw layout would occupy —
// the compression ratio the block codec actually achieves on this store.
type PostingsFootprint struct {
	Segments int
	Postings int64 // total postings across segments
	Bytes    int64 // resident bytes of the derived postings columns
	RawBytes int64 // the same postings in the raw 8-byte-per-field layout
}

// Footprint reports the postings footprint of one CONTREP. Zero value
// when the store is not segmented.
func Footprint(db *moa.Database, prefix string) PostingsFootprint {
	a := access(db)
	var fp PostingsFootprint
	sd, ok := readSegDir(a, prefix)
	if !ok {
		return fp
	}
	fp.Segments = sd.count()
	for s := 0; s < sd.count(); s++ {
		startB, ok := a.get(SegColumn(prefix, s, "_poststart"))
		if !ok {
			continue
		}
		var nt, np int64
		if startB.Len() > 0 {
			nt = int64(startB.Len() - 1)
			np = startB.Tail.IntAt(startB.Len() - 1)
		}
		fp.Postings += np
		// raw layout: start + maxbel + 8-byte doc/tf/bel per posting
		fp.RawBytes += 8*(nt+1) + 8*nt + 24*np
		suffixes := rawOnlySuffixes
		if segIsBlock(a, prefix, s) {
			suffixes = blockOnlySuffixes
		}
		fp.Bytes += startB.MemBytes()
		if b, ok := a.get(SegColumn(prefix, s, "_maxbel")); ok {
			fp.Bytes += b.MemBytes()
		}
		for _, suffix := range suffixes {
			if b, ok := a.get(SegColumn(prefix, s, suffix)); ok {
				fp.Bytes += b.MemBytes()
			}
		}
	}
	return fp
}
