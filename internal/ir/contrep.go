package ir

import (
	"fmt"
	"sort"
	"sync"

	"mirror/internal/bat"
	"mirror/internal/mil"
	"mirror/internal/moa"
)

// Contrep is the CONTREP Moa structure of Section 3: a content
// representation indexed under the inference network retrieval model. A
// CONTREP<T> field decomposes into posting triples plus dictionary and
// statistics columns:
//
//	prefix_term  [pair(void), termOID]   postings: term of pair
//	prefix_doc   [pair(void), ownerOID]  postings: owning element
//	prefix_tf    [pair(void), int]       postings: term frequency
//	prefix_bel   [pair(void), flt]       postings: belief (derived)
//	prefix_dict  [termOID(void), str]    dictionary
//	prefix_df    [termOID(void), int]    document frequency (derived)
//	prefix_dlen  [ownerOID, int]         document length
//	prefix_stats [void, flt]             N, avgdl, defaultBelief, |dict|
//	prefix_termrev                       reverse view of _term (derived),
//	                                     carrying the persistent hash index
//	                                     the physical getbl operator probes
//	prefix_poststart [termOID(void),int] term-ordered postings offsets
//	                                     (derived), nterms+1 entries
//	prefix_postdoc  [void, ownerOID]     postings re-sorted by (term, doc)
//	prefix_postbel  [void, flt]          beliefs aligned with _postdoc
//	prefix_maxbel   [termOID(void), flt] per-term maximum belief — the
//	                                     upper bound driving max-score
//	                                     pruned top-k retrieval
//
// The structure registers the query functions getBL (per-term beliefs, the
// paper's operator) and getBLScore (the sum∘getBL fusion target, which
// also carries the pruned top-k emitter the plan optimizer fuses
// topk∘sum∘getBL into).
type Contrep struct{}

// ContrepValue is the materialised logical value of a CONTREP field: the
// beliefs of the terms occurring in one element.
type ContrepValue struct {
	Prefix  string
	Beliefs map[string]float64
}

func init() { moa.RegisterStructure(&Contrep{}) }

// Name implements moa.Structure.
func (*Contrep) Name() string { return "CONTREP" }

// CheckParams accepts exactly one atomic type parameter with a string
// physical kind (Text, Image, str, URL).
func (*Contrep) CheckParams(params []moa.Type) error {
	if len(params) != 1 {
		return fmt.Errorf("moa: CONTREP takes one type parameter, got %d", len(params))
	}
	at, ok := params[0].(*moa.AtomType)
	if !ok || at.Kind != bat.KindStr {
		return fmt.Errorf("moa: CONTREP parameter must be a text-like atom, got %s", params[0])
	}
	return nil
}

// Columns implements moa.Structure.
func (*Contrep) Columns(prefix string) []moa.ColumnSpec {
	return []moa.ColumnSpec{
		{Suffix: "_term", HeadKind: bat.KindVoid, TailKind: bat.KindOID},
		{Suffix: "_doc", HeadKind: bat.KindVoid, TailKind: bat.KindOID},
		{Suffix: "_tf", HeadKind: bat.KindVoid, TailKind: bat.KindInt},
		{Suffix: "_bel", HeadKind: bat.KindVoid, TailKind: bat.KindFloat},
		{Suffix: "_dict", HeadKind: bat.KindVoid, TailKind: bat.KindStr},
		{Suffix: "_df", HeadKind: bat.KindVoid, TailKind: bat.KindInt},
		{Suffix: "_dlen", HeadKind: bat.KindOID, TailKind: bat.KindInt},
		{Suffix: "_stats", HeadKind: bat.KindVoid, TailKind: bat.KindFloat},
	}
}

// ---- dictionary and posting caches ----

type cacheKey struct {
	db     *moa.Database
	prefix string
}

var (
	dictMu    sync.Mutex
	dictCache = map[cacheKey]map[string]bat.OID{}
	docMu     sync.Mutex
	docCache  = map[cacheKey]*docIndex{}
)

type docIndex struct {
	builtLen int
	pairs    map[bat.OID][]int
}

// dictIndex returns (building or refreshing as needed) the in-memory
// term→OID index for a CONTREP's dictionary. locked indicates the caller
// runs inside a Structure hook and the database write lock is already held.
func dictIndex(db *moa.Database, prefix string, locked bool) (map[string]bat.OID, error) {
	dictMu.Lock()
	defer dictMu.Unlock()
	key := cacheKey{db, prefix}
	get := db.BAT
	if locked {
		get = db.BATL
	}
	dict, ok := get(prefix + "_dict")
	if !ok {
		return nil, fmt.Errorf("ir: missing dictionary BAT %s_dict", prefix)
	}
	idx := dictCache[key]
	if idx == nil || len(idx) != dict.Len() {
		idx = make(map[string]bat.OID, dict.Len())
		for i := 0; i < dict.Len(); i++ {
			idx[dict.Tail.StrAt(i)] = dict.Head.OIDAt(i)
		}
		dictCache[key] = idx
	}
	return idx, nil
}

// postingsOf returns the posting positions for one document, building a
// doc→positions index lazily.
func postingsOf(db *moa.Database, prefix string, owner bat.OID) ([]int, error) {
	docMu.Lock()
	defer docMu.Unlock()
	key := cacheKey{db, prefix}
	doc, ok := db.BAT(prefix + "_doc")
	if !ok {
		return nil, fmt.Errorf("ir: missing BAT %s_doc", prefix)
	}
	idx := docCache[key]
	if idx == nil || idx.builtLen != doc.Len() {
		idx = &docIndex{builtLen: doc.Len(), pairs: make(map[bat.OID][]int)}
		for i := 0; i < doc.Len(); i++ {
			d := doc.Tail.OIDAt(i)
			idx.pairs[d] = append(idx.pairs[d], i)
		}
		docCache[key] = idx
	}
	return idx.pairs[owner], nil
}

// ReleaseDBCaches drops the package-level dictionary and posting caches
// keyed by the given database. Epoch-based serving (internal/core)
// creates a fresh snapshot database per index publish; releasing the
// superseded snapshot's cache entries keeps the package registries from
// pinning one database per epoch for the process lifetime.
func ReleaseDBCaches(db *moa.Database) {
	dictMu.Lock()
	for k := range dictCache {
		if k.db == db {
			delete(dictCache, k)
		}
	}
	dictMu.Unlock()
	docMu.Lock()
	for k := range docCache {
		if k.db == db {
			delete(docCache, k)
		}
	}
	docMu.Unlock()
}

// Insert implements moa.Structure: v is the raw text (string) or a
// pre-analysed term list ([]string, used for cluster "words" in the image
// pipeline). Beliefs are recomputed by Finalize.
func (c *Contrep) Insert(db *moa.Database, prefix string, owner bat.OID, v any) error {
	var terms []string
	switch x := v.(type) {
	case string:
		terms = Analyze(x)
	case []string:
		terms = x
	case []any:
		for _, item := range x {
			s, ok := item.(string)
			if !ok {
				return fmt.Errorf("ir: CONTREP value list must contain strings, got %T", item)
			}
			terms = append(terms, s)
		}
	default:
		return fmt.Errorf("ir: CONTREP value must be string or []string, got %T", v)
	}
	tf, dlen := TermFrequencies(terms)

	idx, err := dictIndex(db, prefix, true)
	if err != nil {
		return err
	}
	dict := mustBATL(db, prefix+"_dict")
	termB := mustBATL(db, prefix+"_term")
	docB := mustBATL(db, prefix+"_doc")
	tfB := mustBATL(db, prefix+"_tf")
	belB := mustBATL(db, prefix+"_bel")
	dlenB := mustBATL(db, prefix+"_dlen")

	// deterministic term order
	words := make([]string, 0, len(tf))
	for w := range tf {
		words = append(words, w)
	}
	sort.Strings(words)

	for _, w := range words {
		toid, known := idx[w]
		if !known {
			toid = bat.OID(dict.Len())
			if err := dict.Append(toid, w); err != nil {
				return err
			}
			idx[w] = toid
		}
		pair := bat.OID(termB.Len())
		if err := termB.Append(pair, toid); err != nil {
			return err
		}
		if err := docB.Append(pair, owner); err != nil {
			return err
		}
		if err := tfB.Append(pair, int64(tf[w])); err != nil {
			return err
		}
		if err := belB.Append(pair, 0.0); err != nil {
			return err
		}
	}
	return dlenB.Append(owner, int64(dlen))
}

// Finalize implements moa.Structure: it rebuilds the derived
// representation — document frequencies, collection statistics, the
// belief column, the persistent reversed views, and the term-ordered
// postings with per-term max-belief bounds — as a SINGLE index segment
// (segment.go). A batch build is exactly the degenerate case of the
// segmented layout, which is what makes the incremental path (delta
// AppendSegment + RefinalizeSegments, compacted by MergeSegments)
// provably equivalent: both run the same derivation code over the same
// raw columns, honouring a registered GlobalStats override either way.
// Any delta segments a previous incremental run left behind are dropped —
// a full Finalize is the explicit "re-derive everything" operation.
func (c *Contrep) Finalize(db *moa.Database, prefix string) error {
	a := accessLocked(db)
	dropSegments(a, prefix)
	writeSegDir(a, prefix, &segDir{})
	if _, err := appendSegment(a, db, prefix); err != nil {
		return err
	}
	return refinalizeSegments(a, db, prefix)
}

// adoptDense wraps an adopted tail column as a [void, tail] BAT.
func adoptDense(tail *bat.Column) *bat.BAT {
	b := &bat.BAT{Head: bat.NewVoid(0, tail.Len()), Tail: tail}
	b.HSorted, b.HKey = true, true
	return b
}

// Materialize implements moa.Structure.
func (c *Contrep) Materialize(db *moa.Database, prefix string, owner bat.OID) (any, error) {
	positions, err := postingsOf(db, prefix, owner)
	if err != nil {
		return nil, err
	}
	termB := mustBAT(db, prefix+"_term")
	belB := mustBAT(db, prefix+"_bel")
	dict := mustBAT(db, prefix+"_dict")
	out := &ContrepValue{Prefix: prefix, Beliefs: make(map[string]float64, len(positions))}
	for _, p := range positions {
		t := termB.Tail.OIDAt(p)
		w := dict.Tail.StrAt(int(t))
		out.Beliefs[w] = belB.Tail.FloatAt(p)
	}
	return out, nil
}

// ReadStats decodes the statistics column of a CONTREP field.
func ReadStats(db *moa.Database, prefix string) (*Stats, error) {
	b, ok := db.BAT(prefix + "_stats")
	if !ok || b.Len() < 4 {
		return nil, fmt.Errorf("ir: %s has no statistics (run Finalize)", prefix)
	}
	return &Stats{
		N:             int(b.Tail.FloatAt(0)),
		AvgDocLen:     b.Tail.FloatAt(1),
		DefaultBelief: b.Tail.FloatAt(2),
		Terms:         int(b.Tail.FloatAt(3)),
	}, nil
}

func mustBAT(db *moa.Database, name string) *bat.BAT {
	b, ok := db.BAT(name)
	if !ok {
		panic("ir: missing CONTREP column " + name)
	}
	return b
}

// mustBATL is mustBAT for Structure hooks holding the database lock.
func mustBATL(db *moa.Database, name string) *bat.BAT {
	b, ok := db.BATL(name)
	if !ok {
		panic("ir: missing CONTREP column " + name)
	}
	return b
}

// ---- query functions ----

// Functions implements moa.Structure: getBL and its aggregate fusions.
func (c *Contrep) Functions() map[string]*moa.StructFunc {
	return map[string]*moa.StructFunc{
		"getBL": {
			Check:     checkGetBL(&moa.SetType{Elem: moa.FloatType}),
			EmitMap:   emitGetBLPairs,
			EvalTuple: evalGetBL,
			FuseAgg:   map[string]string{"sum": "getBLScore"},
		},
		"getBLScore": {
			Check:     checkGetBL(moa.FloatType),
			EmitMap:   emitGetBLScore,
			EvalTuple: evalGetBLScore,
			EmitTopK:  emitGetBLScoreTopK,
		},
	}
}

// checkGetBL validates getBL(contrep, query, stats).
func checkGetBL(result moa.Type) func(args []moa.Type) (moa.Type, error) {
	return func(args []moa.Type) (moa.Type, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("moa: getBL takes (contrep, query, stats), got %d args", len(args))
		}
		st, ok := args[1].(*moa.SetType)
		if !ok {
			return nil, fmt.Errorf("moa: getBL query must be a set of terms, got %s", args[1])
		}
		at, ok := st.Elem.(*moa.AtomType)
		if !ok || at.Kind != bat.KindStr {
			return nil, fmt.Errorf("moa: getBL query elements must be strings, got %s", st.Elem)
		}
		if !args[2].Equal(moa.StatsType) {
			return nil, fmt.Errorf("moa: getBL third argument must be stats, got %s", args[2])
		}
		return result, nil
	}
}

// queryTermsVar emits the translation of the query parameter into term
// OIDs: join the query strings with the reversed dictionary.
func queryTermsVar(tr *moa.Translator, prefix string, query moa.Rep) (string, error) {
	ps, ok := query.(*moa.ParamSetRep)
	if !ok {
		return "", fmt.Errorf("moa: getBL query must be a bound set parameter, got %T", query)
	}
	return tr.Emit("q", mil.C("join", mil.R(ps.ValsVar), mil.R(prefix+"_dictrev"))), nil
}

// emitGetBLPairs is the unfused flattening: it materialises one belief per
// (element, query term) — including defaults — as a nested SET<flt>.
func emitGetBLPairs(tr *moa.Translator, ctx *moa.Ctx, recv moa.Rep, extra []moa.Rep) (moa.Rep, error) {
	sr, ok := recv.(*moa.StructRep)
	if !ok {
		return nil, fmt.Errorf("moa: getBL receiver must be a CONTREP field, got %T", recv)
	}
	if len(extra) != 2 {
		return nil, fmt.Errorf("moa: getBL needs query and stats arguments")
	}
	q, err := queryTermsVar(tr, sr.Prefix, extra[0])
	if err != nil {
		return nil, err
	}
	pairs := tr.Emit("blp", mil.C("getbl_pairs",
		mil.R(sr.Prefix+"_termrev"), mil.R(sr.Prefix+"_doc"), mil.R(sr.Prefix+"_bel"),
		mil.R(q), mil.L(DefaultBelief), mil.R(ctx.DomainVar)))
	assoc := tr.Emit("bla", mil.C("mark", mil.R(pairs), mil.L(int64(0))))
	vals := tr.Emit("blv", mil.C("reverse", mil.C("mark", mil.C("reverse", mil.R(pairs)), mil.L(int64(0)))))
	return &moa.SetRep{AssocVar: assoc, ValsVar: vals, ElemT: moa.FloatType}, nil
}

// emitGetBLScore is the fused flattening (sum∘getBL): the physical getbl
// operator scans only the matching postings, then default scores are filled
// in for the remaining domain elements.
func emitGetBLScore(tr *moa.Translator, ctx *moa.Ctx, recv moa.Rep, extra []moa.Rep) (moa.Rep, error) {
	sr, ok := recv.(*moa.StructRep)
	if !ok {
		return nil, fmt.Errorf("moa: getBLScore receiver must be a CONTREP field, got %T", recv)
	}
	if len(extra) != 2 {
		return nil, fmt.Errorf("moa: getBLScore needs query and stats arguments")
	}
	q, err := queryTermsVar(tr, sr.Prefix, extra[0])
	if err != nil {
		return nil, err
	}
	scores := tr.Emit("bls", mil.C("getbl",
		mil.R(sr.Prefix+"_termrev"), mil.R(sr.Prefix+"_doc"), mil.R(sr.Prefix+"_bel"),
		mil.R(q), mil.L(DefaultBelief)))
	if !ctx.Full {
		scores = tr.Emit("bls", mil.C("semijoin", mil.R(scores), mil.R(ctx.DomainVar)))
	}
	// default score for elements with no matching posting: |q| · default
	defScore := tr.Emit("dfs", mil.C("calc", mil.L("*"), mil.C("count", mil.R(q)), mil.L(DefaultBelief)))
	filled := tr.Emit("bls", mil.C("fill", mil.R(scores), mil.R(ctx.DomainVar), mil.R(defScore)))
	return &moa.AtomRep{Var: filled, T: moa.FloatType}, nil
}

// emitGetBLScoreTopK is the pruned fusion of topk∘sum∘getBL: instead of
// scoring the whole collection and letting the caller sort, the physical
// prunedtopk operator runs max-score skipping over the term-ordered
// postings and returns only the top k documents, already ranked (score
// descending, OID ascending). The plan optimizer calls this when a query's
// top-k root sits directly on a full-collection getBLScore map; any other
// shape keeps the exhaustive path.
func emitGetBLScoreTopK(tr *moa.Translator, ctx *moa.Ctx, recv moa.Rep, extra []moa.Rep, k int) (*moa.SetVal, error) {
	sr, ok := recv.(*moa.StructRep)
	if !ok {
		return nil, fmt.Errorf("moa: getBLScore receiver must be a CONTREP field, got %T", recv)
	}
	if len(extra) != 2 {
		return nil, fmt.Errorf("moa: getBLScore needs query and stats arguments")
	}
	if !ctx.Full {
		return nil, fmt.Errorf("moa: pruned top-k requires a full-collection scan")
	}
	// A checkpoint written before the term-ordered postings existed (or a
	// CONTREP never finalized) lacks the derived columns: fall back to the
	// exhaustive plan instead of emitting dangling references. Incremental
	// indexing splits the derived representation into segments — slot 0
	// keeps the canonical names, delta slots are suffixed _seg<s> — so the
	// emitted scan enumerates whatever segment list this database (a
	// published epoch snapshot) holds. A segment is stored in one of two
	// codecs (_blkdoc present = block-compressed, else raw); the pruned
	// operators take one layout uniformly, so a mixed-codec store — a
	// transient state mid-EnsureCodec — keeps the exhaustive plan, which
	// is always safe.
	blkLayout := tr.HasBAT(sr.Prefix + "_blkdoc")
	rawSuffixes := []string{"_poststart", "_postdoc", "_postbel", "_maxbel"}
	segSuffixes := rawSuffixes
	if blkLayout {
		segSuffixes = blockSegSuffixes
	}
	for _, suffix := range segSuffixes {
		if !tr.HasBAT(sr.Prefix + suffix) {
			return nil, moa.ErrNoPrunedForm
		}
	}
	nsegs := 1
	for tr.HasBAT(SegColumn(sr.Prefix, nsegs, "_poststart")) {
		for _, suffix := range segSuffixes {
			if !tr.HasBAT(SegColumn(sr.Prefix, nsegs, suffix)) {
				return nil, moa.ErrNoPrunedForm // half-published or mixed-codec slot
			}
		}
		nsegs++
	}
	q, err := queryTermsVar(tr, sr.Prefix, extra[0])
	if err != nil {
		return nil, err
	}
	var pk string
	switch {
	case blkLayout:
		args := []mil.Expr{mil.R(q), mil.L(DefaultBelief), mil.L(int64(k)), mil.R(ctx.DomainVar)}
		for s := 0; s < nsegs; s++ {
			for _, suffix := range blockSegSuffixes {
				args = append(args, mil.R(SegColumn(sr.Prefix, s, suffix)))
			}
		}
		pk = tr.Emit("pk", mil.C("prunedtopkblk", args...))
	case nsegs == 1:
		pk = tr.Emit("pk", mil.C("prunedtopk",
			mil.R(sr.Prefix+"_poststart"), mil.R(sr.Prefix+"_postdoc"),
			mil.R(sr.Prefix+"_postbel"), mil.R(sr.Prefix+"_maxbel"),
			mil.R(q), mil.L(DefaultBelief), mil.L(int64(k)), mil.R(ctx.DomainVar)))
	default:
		args := []mil.Expr{mil.R(q), mil.L(DefaultBelief), mil.L(int64(k)), mil.R(ctx.DomainVar)}
		for s := 0; s < nsegs; s++ {
			for _, suffix := range rawSuffixes {
				args = append(args, mil.R(SegColumn(sr.Prefix, s, suffix)))
			}
		}
		pk = tr.Emit("pk", mil.C("prunedtopkseg", args...))
	}
	dom := tr.Emit("pkd", mil.C("mirror", mil.R(pk)))
	return &moa.SetVal{
		DomainVar: dom,
		Full:      false,
		ElemT:     moa.FloatType,
		MkElem: func(ctx2 *moa.Ctx) (moa.Rep, error) {
			if ctx2.DomainVar == dom {
				return &moa.AtomRep{Var: pk, T: moa.FloatType}, nil
			}
			return &moa.AtomRep{Var: tr.Restrict(pk, ctx2), T: moa.FloatType}, nil
		},
	}, nil
}

// evalGetBL is the tuple-at-a-time path: per element, produce the belief of
// each query term present in the dictionary.
func evalGetBL(ip *moa.Interp, recv any, extra []any) (any, error) {
	cv, ok := recv.(*ContrepValue)
	if !ok {
		return nil, fmt.Errorf("moa: getBL receiver is %T", recv)
	}
	if len(extra) != 2 {
		return nil, fmt.Errorf("moa: getBL needs query and stats")
	}
	idx, err := dictIndex(ip.DB, cv.Prefix, false)
	if err != nil {
		return nil, err
	}
	terms, err := queryTermList(extra[0])
	if err != nil {
		return nil, err
	}
	out := make([]any, 0, len(terms))
	for _, t := range terms {
		if _, inDict := idx[t]; !inDict {
			continue // OOV terms drop out, as in the flattened join
		}
		if b, ok := cv.Beliefs[t]; ok {
			out = append(out, b)
		} else {
			out = append(out, DefaultBelief)
		}
	}
	return out, nil
}

func evalGetBLScore(ip *moa.Interp, recv any, extra []any) (any, error) {
	beliefs, err := evalGetBL(ip, recv, extra)
	if err != nil {
		return nil, err
	}
	sum := 0.0
	for _, b := range beliefs.([]any) {
		sum += b.(float64)
	}
	return sum, nil
}

// queryTermList extracts the term strings from an interpreted query value.
func queryTermList(v any) ([]string, error) {
	switch items := v.(type) {
	case []moa.Row:
		out := make([]string, 0, len(items))
		for _, r := range items {
			s, ok := r.Value.(string)
			if !ok {
				return nil, fmt.Errorf("moa: query term is %T", r.Value)
			}
			out = append(out, s)
		}
		return out, nil
	case []string:
		return items, nil
	}
	return nil, fmt.Errorf("moa: unsupported query value %T", v)
}

// QueryParams builds the standard parameter bindings for the paper's
// queries: `query` (a set of pre-analysed terms) and `stats`.
func QueryParams(terms []string) map[string]moa.Param {
	anyTerms := make([]any, len(terms))
	for i, t := range terms {
		anyTerms[i] = t
	}
	return map[string]moa.Param{
		"query": {T: &moa.SetType{Elem: moa.StrType}, V: anyTerms},
		"stats": {T: moa.StatsType, V: "stats"},
	}
}
