//go:build !pooldebug

package ir

// Release builds: the pool hooks compile to nothing (they are tiny and
// non-virtual, so the hot path pays zero cost). Build with -tags pooldebug
// to turn on borrow accounting, released-map poisoning and
// use-after-release panics.

func scoresBorrowed(Scores)      {}
func scoresReleased(Scores)      {}
func scoresRepooled(Scores)      {}
func assertScoresLive(...Scores) {}

// LiveScores reports the number of borrowed-but-unreleased Scores maps.
// It always returns 0 unless built with -tags pooldebug.
func LiveScores() int { return 0 }
