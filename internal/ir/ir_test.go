package ir

import (
	"math"
	"testing"
	"testing/quick"

	"mirror/internal/moa"
)

func TestStemVectors(t *testing.T) {
	cases := map[string]string{
		"caresses":     "caress",
		"ponies":       "poni",
		"ties":         "ti",
		"caress":       "caress",
		"cats":         "cat",
		"feed":         "feed",
		"agreed":       "agre",
		"plastered":    "plaster",
		"bled":         "bled",
		"motoring":     "motor",
		"sing":         "sing",
		"conflated":    "conflat",
		"troubled":     "troubl",
		"sized":        "size",
		"hopping":      "hop",
		"tanned":       "tan",
		"falling":      "fall",
		"hissing":      "hiss",
		"fizzed":       "fizz",
		"failing":      "fail",
		"filing":       "file",
		"happy":        "happi",
		"sky":          "sky",
		"relational":   "relat",
		"conditional":  "condit",
		"rational":     "ration",
		"valenci":      "valenc",
		"digitizer":    "digit",
		"operator":     "oper",
		"feudalism":    "feudal",
		"decisiveness": "decis",
		"hopefulness":  "hope",
		"callousness":  "callous",
		"formaliti":    "formal",
		"sensitiviti":  "sensit",
		"sensibiliti":  "sensibl",
		"triplicate":   "triplic",
		"formative":    "form",
		"formalize":    "formal",
		"electriciti":  "electr",
		"electrical":   "electr",
		"hopeful":      "hope",
		"goodness":     "good",
		"revival":      "reviv",
		"allowance":    "allow",
		"inference":    "infer",
		"airliner":     "airlin",
		"gyroscopic":   "gyroscop",
		"adjustable":   "adjust",
		"defensible":   "defens",
		"irritant":     "irrit",
		"replacement":  "replac",
		"adjustment":   "adjust",
		"dependent":    "depend",
		"adoption":     "adopt",
		"communism":    "commun",
		"activate":     "activ",
		"angulariti":   "angular",
		"homologous":   "homolog",
		"effective":    "effect",
		"bowdlerize":   "bowdler",
		"probate":      "probat",
		"rate":         "rate",
		"cease":        "ceas",
		"controll":     "control",
		"roll":         "roll",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"a", "at", "be"} {
		if Stem(w) != w {
			t.Errorf("Stem(%q) changed a short word", w)
		}
	}
}

func TestTokenizeAndAnalyze(t *testing.T) {
	toks := Tokenize("The Quick-Brown fox, jumps; gabor_21 RGB42!")
	want := []string{"the", "quick", "brown", "fox", "jumps", "gabor_21", "rgb42"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("token[%d] = %q, want %q", i, toks[i], want[i])
		}
	}
	an := Analyze("The running dogs are jumping near gabor_21")
	// "the", "are" are stop words; running→run, dogs→dog, jumping→jump;
	// cluster terms pass through unstemmed
	wantA := []string{"run", "dog", "jump", "near", "gabor_21"}
	if len(an) != len(wantA) {
		t.Fatalf("analyze = %v", an)
	}
	for i := range wantA {
		if an[i] != wantA[i] {
			t.Fatalf("analyze[%d] = %q, want %q", i, an[i], wantA[i])
		}
	}
}

func TestBeliefProperties(t *testing.T) {
	// belief grows with tf, shrinks with df, bounded in [default, 1)
	b1 := Belief(1, 100, 100, 10, 1000)
	b2 := Belief(5, 100, 100, 10, 1000)
	if !(b2 > b1) {
		t.Fatalf("belief should grow with tf: %v vs %v", b1, b2)
	}
	bCommon := Belief(3, 100, 100, 900, 1000)
	bRare := Belief(3, 100, 100, 3, 1000)
	if !(bRare > bCommon) {
		t.Fatalf("belief should grow with rarity: %v vs %v", bRare, bCommon)
	}
	if Belief(0, 100, 100, 10, 1000) != DefaultBelief {
		t.Fatal("zero tf must give default belief")
	}
	f := func(tf, dl uint8, df, n uint16) bool {
		nn := int(n%5000) + 1
		dff := int(df)%nn + 1
		b := Belief(int(tf), int(dl), 50, dff, nn)
		return b >= DefaultBelief && b < 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCombinators(t *testing.T) {
	a := Scores{1: 0.9, 2: 0.5}
	b := Scores{1: 0.7, 3: 0.6}
	defaults := []float64{DefaultBelief, DefaultBelief}

	sum, err := CombineSum([]Scores{a, b}, defaults)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum[1]-0.8) > 1e-12 {
		t.Fatalf("sum[1] = %v", sum[1])
	}
	if math.Abs(sum[2]-(0.5+DefaultBelief)/2) > 1e-12 {
		t.Fatalf("sum[2] = %v", sum[2])
	}

	w, err := CombineWSum([]Scores{a, b}, []float64{3, 1}, defaults)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[1]-(3*0.9+0.7)/4) > 1e-12 {
		t.Fatalf("wsum[1] = %v", w[1])
	}

	and, err := CombineAnd([]Scores{a, b}, defaults)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(and[1]-0.63) > 1e-12 {
		t.Fatalf("and[1] = %v", and[1])
	}

	or, err := CombineOr([]Scores{a, b}, defaults)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(or[1]-(1-0.1*0.3)) > 1e-12 {
		t.Fatalf("or[1] = %v", or[1])
	}

	not := CombineNot(a)
	if math.Abs(not[1]-0.1) > 1e-12 {
		t.Fatalf("not[1] = %v", not[1])
	}

	mx, err := CombineMax([]Scores{a, b}, defaults)
	if err != nil {
		t.Fatal(err)
	}
	if mx[1] != 0.9 || mx[3] != 0.6 {
		t.Fatalf("max = %v", mx)
	}

	ranked := Rank(sum, 2)
	if len(ranked) != 2 || ranked[0].Doc != 1 {
		t.Fatalf("rank = %v", ranked)
	}

	if _, err := CombineSum([]Scores{a}, nil); err == nil {
		t.Fatal("mismatched defaults should error")
	}
}

// mkImgLib builds the paper's Section 3 TraditionalImgLib.
func mkImgLib(t *testing.T) *moa.Database {
	t.Helper()
	db := moa.NewDatabase()
	err := db.DefineFromSource(`
		define TraditionalImgLib as SET<TUPLE<
			Atomic<URL>: source,
			CONTREP<Text>: annotation
		>>;`)
	if err != nil {
		t.Fatal(err)
	}
	docs := []struct{ url, text string }{
		{"http://img/0", "a red sunset over the ocean with waves"},
		{"http://img/1", "mountain landscape with snow and pine trees"},
		{"http://img/2", "red roses in a garden, red flowers everywhere"},
		{"http://img/3", "portrait of a cat sleeping on a sofa"},
		{"http://img/4", "ocean waves crashing on the beach at sunset"},
		{"http://img/5", "city skyline at night with bright lights"},
	}
	for _, d := range docs {
		if _, err := db.Insert("TraditionalImgLib", map[string]any{
			"source": d.url, "annotation": d.text,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Finalize("TraditionalImgLib"); err != nil {
		t.Fatal(err)
	}
	return db
}

// paperQuery is the exact query expression from Section 3 of the paper.
const paperQuery = `
	map[sum(THIS)](
		map[getBL(THIS.annotation, query, stats)]( TraditionalImgLib ));`

func TestPaperSection3Query(t *testing.T) {
	db := mkImgLib(t)
	eng := moa.NewEngine(db)
	params := QueryParams(Analyze("red sunset ocean"))
	res, err := eng.Query(paperQuery, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	res.SortByScoreDesc()
	// doc 0 ("red sunset ... ocean") must rank first; doc 4 mentions two of
	// the three terms; docs 1/3/5 mention none and share the default score.
	if res.Rows[0].OID != 0 {
		t.Fatalf("top doc = %v (%+v)", res.Rows[0].OID, res.Rows)
	}
	if res.Rows[1].OID != 4 && res.Rows[1].OID != 2 {
		t.Fatalf("second doc = %v", res.Rows[1].OID)
	}
	last := res.Rows[5].Value.(float64)
	if math.Abs(last-3*DefaultBelief) > 1e-9 {
		t.Fatalf("non-matching score = %v, want %v", last, 3*DefaultBelief)
	}
}

func TestFusedMatchesUnfusedAndInterp(t *testing.T) {
	db := mkImgLib(t)
	params := QueryParams(Analyze("red sunset ocean waves"))

	fused := moa.NewEngine(db)
	unfused := &moa.Engine{DB: db, Opts: moa.Options{FuseMaps: true, FuseSelects: true, CSE: true}} // no aggregate fusion

	r1, err := fused.Query(paperQuery, params)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := unfused.Query(paperQuery, params)
	if err != nil {
		t.Fatal(err)
	}
	ip := moa.NewInterp(db, params)
	r3, err := ip.Query(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) || len(r1.Rows) != len(r3.Rows) {
		t.Fatalf("row counts: fused %d, unfused %d, interp %d", len(r1.Rows), len(r2.Rows), len(r3.Rows))
	}
	for _, row := range r1.Rows {
		v1 := row.Value.(float64)
		row2, ok := r2.Find(row.OID)
		if !ok {
			t.Fatalf("doc %d missing from unfused result", row.OID)
		}
		row3, ok := r3.Find(row.OID)
		if !ok {
			t.Fatalf("doc %d missing from interp result", row.OID)
		}
		if math.Abs(v1-row2.Value.(float64)) > 1e-9 {
			t.Fatalf("doc %d: fused %v vs unfused %v", row.OID, v1, row2.Value)
		}
		if math.Abs(v1-row3.Value.(float64)) > 1e-9 {
			t.Fatalf("doc %d: fused %v vs interp %v", row.OID, v1, row3.Value)
		}
	}
}

func TestFusionRewriteFires(t *testing.T) {
	db := mkImgLib(t)
	eng := moa.NewEngine(db)
	params := QueryParams([]string{"red"})
	c, err := eng.Compile(paperQuery, params)
	if err != nil {
		t.Fatal(err)
	}
	milSrc := c.MIL()
	if !contains(milSrc, "getbl(") {
		t.Fatalf("fused plan should call getbl:\n%s", milSrc)
	}
	if contains(milSrc, "getbl_pairs(") {
		t.Fatalf("fused plan should not materialise belief pairs:\n%s", milSrc)
	}
	unfused := &moa.Engine{DB: db, Opts: moa.Options{FuseMaps: true, CSE: true}}
	c2, err := unfused.Compile(paperQuery, params)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(c2.MIL(), "getbl_pairs(") {
		t.Fatalf("unfused plan should materialise belief pairs:\n%s", c2.MIL())
	}
}

func TestIRIntegrationWithRelationalSelect(t *testing.T) {
	// "these query expressions can be combined with 'normal' relational
	// operators": rank only the images whose URL matches a selection.
	db := mkImgLib(t)
	eng := moa.NewEngine(db)
	params := QueryParams(Analyze("red"))
	res, err := eng.Query(`
		map[sum(THIS)](
			map[getBL(THIS.annotation, query, stats)](
				select[THIS.source != "http://img/0"](TraditionalImgLib)));`, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	if _, found := res.Find(0); found {
		t.Fatal("doc 0 should have been selected away")
	}
	res.SortByScoreDesc()
	if res.Rows[0].OID != 2 { // doc 2 has "red" twice
		t.Fatalf("top = %v", res.Rows[0].OID)
	}
}

func TestStatsAndMaterialize(t *testing.T) {
	db := mkImgLib(t)
	stats, err := ReadStats(db, "TraditionalImgLib_annotation")
	if err != nil {
		t.Fatal(err)
	}
	if stats.N != 6 || stats.AvgDocLen <= 0 || stats.Terms == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	c := &Contrep{}
	v, err := c.Materialize(db, "TraditionalImgLib_annotation", 2)
	if err != nil {
		t.Fatal(err)
	}
	cv := v.(*ContrepValue)
	if _, ok := cv.Beliefs["red"]; !ok {
		t.Fatalf("materialized beliefs = %v", cv.Beliefs)
	}
	for term, b := range cv.Beliefs {
		if b <= DefaultBelief || b >= 1 {
			t.Fatalf("belief(%s) = %v out of range", term, b)
		}
	}
}

func TestOOVQueryTerms(t *testing.T) {
	db := mkImgLib(t)
	eng := moa.NewEngine(db)
	// all terms out of vocabulary → every doc scores 0 (no dict matches)
	res, err := eng.Query(paperQuery, QueryParams([]string{"zzzzz", "qqqqq"}))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Value.(float64) != 0 {
			t.Fatalf("OOV query score = %v", row.Value)
		}
	}
}

func TestContrepInsertValidation(t *testing.T) {
	db := moa.NewDatabase()
	if err := db.DefineFromSource(`define L as SET<TUPLE<CONTREP<Text>: body>>;`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("L", map[string]any{"body": 42}); err == nil {
		t.Fatal("non-text CONTREP value should fail")
	}
	if _, err := db.Insert("L", map[string]any{"body": []any{"ok", 3}}); err == nil {
		t.Fatal("mixed list should fail")
	}
	if _, err := db.Insert("L", map[string]any{"body": []string{"pre", "analyzed"}}); err != nil {
		t.Fatal(err)
	}
}

func TestContrepParamValidation(t *testing.T) {
	if (&Contrep{}).CheckParams(nil) == nil {
		t.Fatal("CONTREP without params should fail")
	}
	if (&Contrep{}).CheckParams([]moa.Type{moa.IntType}) == nil {
		t.Fatal("CONTREP<int> should fail")
	}
	if err := (&Contrep{}).CheckParams([]moa.Type{moa.TextType}); err != nil {
		t.Fatal(err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
