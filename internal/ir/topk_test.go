package ir

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"mirror/internal/moa"
)

// rankQuery is the paper's Section 3 ranking expression over a CONTREP.
const rankQuery = `
	map[sum(THIS)](
		map[getBL(THIS.body, query, stats)]( Docs ));`

// mkTopKDB builds a synthetic CONTREP-indexed collection. Every dupEvery-th
// document repeats its predecessor verbatim, manufacturing exact score ties
// that exercise the OID tie order.
func mkTopKDB(t testing.TB, rng *rand.Rand, n, dupEvery int) *moa.Database {
	t.Helper()
	db := moa.NewDatabase()
	if err := db.DefineFromSource(`
		define Docs as SET<TUPLE<
			Atomic<URL>: source,
			CONTREP<Text>: body
		>>;`); err != nil {
		t.Fatal(err)
	}
	vocab := []string{"tiger", "lion", "river", "sunset", "market", "train", "harbor", "forest", "violin", "copper"}
	prev := ""
	for i := 0; i < n; i++ {
		var text string
		if dupEvery > 0 && i > 0 && i%dupEvery == 0 {
			text = prev
		} else {
			var words []string
			for w := 0; w < 3+rng.Intn(8); w++ {
				words = append(words, vocab[rng.Intn(len(vocab))])
			}
			text = strings.Join(words, " ")
		}
		prev = text
		if _, err := db.Insert("Docs", map[string]any{
			"source": fmt.Sprintf("doc://%d", i), "body": text,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Finalize("Docs"); err != nil {
		t.Fatal(err)
	}
	return db
}

// exhaustiveRanking runs the query without top-k pushdown and ranks the
// full result (score descending, OID ascending), cut at k.
func exhaustiveRanking(t *testing.T, db *moa.Database, terms []string, k int) []moa.Row {
	t.Helper()
	eng := moa.NewEngine(db)
	res, err := eng.Query(rankQuery, QueryParams(terms))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranked {
		t.Fatal("exhaustive query came back ranked")
	}
	rows := append([]moa.Row(nil), res.Rows...)
	sort.Slice(rows, func(i, j int) bool {
		si, sj := rows[i].Value.(float64), rows[j].Value.(float64)
		if si != sj {
			return si > sj
		}
		return rows[i].OID < rows[j].OID
	})
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	return rows
}

// TestPrunedTopKEndToEnd is the engine-level differential property test:
// with Options.TopK the plan optimizer serves the ranking query through
// the pruned physical operator, and the rows must be BUN-for-BUN identical
// to the exhaustively computed ranking — including tied scores resolved by
// OID and out-of-vocabulary query terms.
func TestPrunedTopKEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 17, 300} {
		db := mkTopKDB(t, rng, n, 4)
		queries := [][]string{
			{"tiger"},
			{"tiger", "river", "sunset"},
			{"violin", "violin", "copper"}, // duplicate term
			{"tiger", "zeppelin"},          // OOV term drops out
			{"quux", "zeppelin"},           // fully OOV → all-default scores
			{"harbor", "forest", "lion", "train", "market"},
		}
		for _, terms := range queries {
			for _, k := range []int{1, 5, n, n + 3} {
				want := exhaustiveRanking(t, db, terms, k)

				eng := moa.NewEngine(db)
				eng.Opts.TopK = k
				c, err := eng.Compile(rankQuery, QueryParams(terms))
				if err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(c.MIL(), "prunedtopk") {
					t.Fatalf("n=%d terms=%v k=%d: plan did not push top-k down:\n%s", n, terms, k, c.MIL())
				}
				res, err := c.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !res.Ranked {
					t.Fatalf("pruned result not marked Ranked")
				}
				if len(res.Rows) != len(want) {
					t.Fatalf("n=%d terms=%v k=%d: %d rows, want %d", n, terms, k, len(res.Rows), len(want))
				}
				for i := range want {
					if res.Rows[i].OID != want[i].OID || res.Rows[i].Value.(float64) != want[i].Value.(float64) {
						t.Fatalf("n=%d terms=%v k=%d rank %d: got (%d, %v), want (%d, %v)",
							n, terms, k, i, res.Rows[i].OID, res.Rows[i].Value, want[i].OID, want[i].Value)
					}
				}
			}
		}
	}
}

// TestPrunedTopKFallback pins the exact-fallback contract: plan shapes
// pruning cannot serve (a selection restricting the scan) run exhaustively
// and come back unranked, with correct results.
func TestPrunedTopKFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := mkTopKDB(t, rng, 60, 0)
	eng := moa.NewEngine(db)
	eng.Opts.TopK = 5
	// getBL (unfused shape that keeps per-term sets) under a sum is fused by
	// the optimizer; wrap the scored map in a select instead.
	src := `
		select[THIS > 1.0](
			map[sum(THIS)](
				map[getBL(THIS.body, query, stats)]( Docs )));`
	c, err := eng.Compile(src, QueryParams([]string{"tiger", "river"}))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(c.MIL(), "prunedtopk") {
		t.Fatalf("select-restricted plan must not prune:\n%s", c.MIL())
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranked {
		t.Fatal("fallback result wrongly marked Ranked")
	}
	// Sanity: every returned score really exceeds the predicate bound.
	for _, r := range res.Rows {
		if r.Value.(float64) <= 1.0 {
			t.Fatalf("select bound violated: %v", r.Value)
		}
	}
}

// TestPrunedTopKAblation: with aggregate fusion disabled the pruned form
// cannot match (the body stays sum∘getBL) and the exact fallback must
// still produce the correct full result.
func TestPrunedTopKAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := mkTopKDB(t, rng, 40, 0)
	want := exhaustiveRanking(t, db, []string{"tiger", "lion"}, 7)

	eng := &moa.Engine{DB: db, Opts: moa.Options{TopK: 7, Parallel: true}}
	c, err := eng.Compile(rankQuery, QueryParams([]string{"tiger", "lion"}))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(c.MIL(), "prunedtopk") {
		t.Fatal("pruning requires the aggregate-fusion rewrite")
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	rows := append([]moa.Row(nil), res.Rows...)
	sort.Slice(rows, func(i, j int) bool {
		si, sj := rows[i].Value.(float64), rows[j].Value.(float64)
		if si != sj {
			return si > sj
		}
		return rows[i].OID < rows[j].OID
	})
	rows = rows[:7]
	for i := range want {
		if rows[i].OID != want[i].OID {
			t.Fatalf("ablated fallback rank %d: %d vs %d", i, rows[i].OID, want[i].OID)
		}
	}
}

// TestPrunedTopKOldStoreFallback: a database restored from a checkpoint
// written before the term-ordered postings columns existed must still
// answer top-k queries — exhaustively, unranked — instead of emitting
// dangling column references.
func TestPrunedTopKOldStoreFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	src := mkTopKDB(t, rng, 30, 0)
	// Simulate the old on-disk layout: copy every BAT except the derived
	// postings representation into a freshly defined database.
	db := moa.NewDatabase()
	if err := db.DefineFromSource(`
		define Docs as SET<TUPLE<
			Atomic<URL>: source,
			CONTREP<Text>: body
		>>;`); err != nil {
		t.Fatal(err)
	}
	for name, b := range src.Snapshot() {
		if strings.Contains(name, "_post") || strings.Contains(name, "_maxbel") {
			continue
		}
		db.PutBAT(name, b)
	}
	db.SyncAfterLoad()

	eng := moa.NewEngine(db)
	eng.Opts.TopK = 5
	c, err := eng.Compile(rankQuery, QueryParams([]string{"tiger"}))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(c.MIL(), "prunedtopk") {
		t.Fatalf("pruned operator emitted without its columns:\n%s", c.MIL())
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranked {
		t.Fatal("fallback marked Ranked")
	}
	if len(res.Rows) != 30 {
		t.Fatalf("fallback rows = %d", len(res.Rows))
	}
}
