package ir

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mirror/internal/moa"
)

// segTestWords is a vocabulary with repeated draws to force shared terms,
// manufactured score ties, and a tail of rare terms.
var segTestWords = []string{
	"harbor", "harbor", "harbor", "gull", "gull", "tide", "tide", "pier",
	"rope", "salt", "mist", "buoy", "anchor", "kelp", "foam", "driftwood",
}

func segTestDoc(rng *rand.Rand, i int) string {
	n := 1 + rng.Intn(7)
	var sb strings.Builder
	for j := 0; j < n; j++ {
		if j > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(segTestWords[rng.Intn(len(segTestWords))])
	}
	if rng.Intn(8) == 0 {
		fmt.Fprintf(&sb, " unique%d", i) // dictionary growth in late deltas
	}
	return sb.String()
}

func segTestDB(t *testing.T) *moa.Database {
	t.Helper()
	db := moa.NewDatabase()
	src := `define Lib as SET<TUPLE<Atomic<URL>: source, CONTREP<Text>: body>>;`
	if err := db.DefineFromSource(src); err != nil {
		t.Fatal(err)
	}
	return db
}

func segInsert(t *testing.T, db *moa.Database, i int, text string) {
	t.Helper()
	if _, err := db.Insert("Lib", map[string]any{"source": fmt.Sprintf("u%d", i), "body": text}); err != nil {
		t.Fatal(err)
	}
}

// assertDerivedEqual compares the statistics-dependent derived state and
// the logical postings content of two databases' CONTREPs.
func assertDerivedEqual(t *testing.T, want, got *moa.Database, prefix, label string) {
	t.Helper()
	for _, name := range []string{prefix + "_bel", prefix + "_df", prefix + "_stats"} {
		wb, ok1 := want.BAT(name)
		gb, ok2 := got.BAT(name)
		if !ok1 || !ok2 {
			t.Fatalf("%s: %s missing (%v/%v)", label, name, ok1, ok2)
		}
		if wb.Len() != gb.Len() {
			t.Fatalf("%s: %s length %d vs %d", label, name, wb.Len(), gb.Len())
		}
		for i := 0; i < wb.Len(); i++ {
			if wb.Tail.Get(i) != gb.Tail.Get(i) {
				t.Fatalf("%s: %s[%d] = %v vs %v", label, name, i, wb.Tail.Get(i), gb.Tail.Get(i))
			}
		}
	}
	// Logical postings: term string → multiset of (doc, tf, bel) across
	// all segments must match, regardless of segmentation.
	gather := func(db *moa.Database) map[string][]string {
		dict, _ := db.BAT(prefix + "_dict")
		out := map[string][]string{}
		for s := 0; s < maxSeg(db, prefix); s++ {
			data, err := readSegData(access(db), prefix, s, true)
			if err != nil {
				t.Fatalf("%s: segment %d: %v", label, s, err)
			}
			for tIdx := 0; tIdx+1 < len(data.starts); tIdx++ {
				w := dict.Tail.StrAt(tIdx)
				for i := data.starts[tIdx]; i < data.starts[tIdx+1]; i++ {
					out[w] = append(out[w], fmt.Sprintf("%d:%v", data.docs[i], data.bels[i]))
				}
			}
		}
		return out
	}
	wp, gp := gather(want), gather(got)
	if len(wp) != len(gp) {
		t.Fatalf("%s: %d vs %d posted terms", label, len(wp), len(gp))
	}
	for w, wl := range wp {
		gl := gp[w]
		if strings.Join(wl, ",") != strings.Join(gl, ",") {
			t.Fatalf("%s: postings of %q differ:\n one-shot %v\n incremental %v", label, w, wl, gl)
		}
	}
}

func maxSeg(db *moa.Database, prefix string) int {
	n := SegmentCount(db, prefix)
	if n == 0 {
		n = 1
	}
	return n
}

// TestSegmentedIncrementalEqualsOneShot is the ir-layer differential
// guarantee: batch Finalize + any interleaving of delta AppendSegment/
// RefinalizeSegments and MergeSegments produces derived state logically
// identical — belief-for-belief — to one Finalize over the whole corpus.
func TestSegmentedIncrementalEqualsOneShot(t *testing.T) {
	const prefix = "Lib_body"
	for round := 0; round < 25; round++ {
		rng := rand.New(rand.NewSource(int64(round)))
		nDocs := 3 + rng.Intn(40)
		texts := make([]string, nDocs)
		for i := range texts {
			texts[i] = segTestDoc(rng, i)
		}

		// One-shot reference.
		ref := segTestDB(t)
		for i, txt := range texts {
			segInsert(t, ref, i, txt)
		}
		if err := ref.Finalize("Lib"); err != nil {
			t.Fatal(err)
		}

		// Incremental: batch prefix, then deltas at random cut points with
		// interleaved merges.
		inc := segTestDB(t)
		batch := 1 + rng.Intn(nDocs)
		for i := 0; i < batch; i++ {
			segInsert(t, inc, i, texts[i])
		}
		if err := inc.Finalize("Lib"); err != nil {
			t.Fatal(err)
		}
		at := batch
		for at < nDocs {
			step := 1 + rng.Intn(nDocs-at)
			for i := at; i < at+step; i++ {
				segInsert(t, inc, i, texts[i])
			}
			at += step
			if _, err := AppendSegment(inc, prefix); err != nil {
				t.Fatal(err)
			}
			if err := RefinalizeSegments(inc, prefix); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				sizes := make([]int, 0)
				for _, st := range SegmentStats(inc, prefix) {
					sizes = append(sizes, st.Postings)
				}
				if lo, hi, ok := PickMerge(sizes, 8); ok {
					if err := MergeSegments(inc, prefix, lo, hi); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		label := fmt.Sprintf("round %d (batch %d of %d, %d segments)", round, batch, nDocs, SegmentCount(inc, prefix))
		assertDerivedEqual(t, ref, inc, prefix, label)

		// And the ranked queries agree BUN-for-BUN, pruned vs pruned.
		for q := 0; q < 5; q++ {
			terms := Analyze(segTestDoc(rng, 999))
			if len(terms) == 0 {
				continue
			}
			k := 1 + rng.Intn(nDocs+2)
			refEng := moa.NewEngine(ref)
			refEng.Opts.TopK = k
			incEng := moa.NewEngine(inc)
			incEng.Opts.TopK = k
			src := `map[sum(THIS)](map[getBL(THIS.body, query, stats)](Lib));`
			rres, err := refEng.Query(src, QueryParams(terms))
			if err != nil {
				t.Fatal(err)
			}
			ires, err := incEng.Query(src, QueryParams(terms))
			if err != nil {
				t.Fatal(err)
			}
			if !rres.Ranked || !ires.Ranked {
				t.Fatalf("%s: expected pruned plans (ranked %v/%v)", label, rres.Ranked, ires.Ranked)
			}
			if len(rres.Rows) != len(ires.Rows) {
				t.Fatalf("%s: query %v k=%d: %d vs %d rows", label, terms, k, len(rres.Rows), len(ires.Rows))
			}
			for i := range rres.Rows {
				if rres.Rows[i].OID != ires.Rows[i].OID || rres.Rows[i].Value != ires.Rows[i].Value {
					t.Fatalf("%s: query %v k=%d row %d: (%d,%v) vs (%d,%v)", label, terms, k, i,
						rres.Rows[i].OID, rres.Rows[i].Value, ires.Rows[i].OID, ires.Rows[i].Value)
				}
			}
		}
	}
}

// TestMergePolicyBoundedFanIn pins PickMerge's contract: it never exceeds
// the fan-in bound, never proposes fewer than two inputs, and drives any
// run of equal-sized deltas to a logarithmic segment count.
func TestMergePolicyBoundedFanIn(t *testing.T) {
	if _, _, ok := PickMerge([]int{10}, 8); ok {
		t.Fatal("single segment merged")
	}
	if _, _, ok := PickMerge([]int{1000, 1}, 8); ok {
		t.Fatal("tiny delta merged into a 1000x base")
	}
	lo, hi, ok := PickMerge([]int{1000, 3, 2, 2}, 8)
	if !ok || lo != 1 || hi != 4 {
		t.Fatalf("tail run merge = [%d,%d) ok=%v, want [1,4) true", lo, hi, ok)
	}
	if lo, hi, ok = PickMerge([]int{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, 4); !ok || hi-lo > 4 {
		t.Fatalf("fan-in bound violated: [%d,%d)", lo, hi)
	}
	// Simulated ingest: segment count stays logarithmic-ish.
	sizes := []int{}
	for i := 0; i < 500; i++ {
		sizes = append(sizes, 1)
		for {
			lo, hi, ok := PickMerge(sizes, 8)
			if !ok {
				break
			}
			total := 0
			for _, s := range sizes[lo:hi] {
				total += s
			}
			sizes = append(sizes[:lo], append([]int{total}, sizes[hi:]...)...)
		}
	}
	if len(sizes) > 12 {
		t.Fatalf("500 unit deltas left %d segments (%v); compaction is not keeping up", len(sizes), sizes)
	}
}

// TestEnsureSegmentedUpgradesOldLayout simulates a store checkpointed
// before segmentation existed: canonical raw derived columns only, no
// directory, no _posttf. EnsureSegmented must produce a 1-segment layout
// — in the registered codec, block by default — whose derived state
// matches a fresh Finalize.
func TestEnsureSegmentedUpgradesOldLayout(t *testing.T) {
	const prefix = "Lib_body"
	db := segTestDB(t)
	SetStoreCodec(db, CodecRaw) // old checkpoints are raw by definition
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 12; i++ {
		segInsert(t, db, i, segTestDoc(rng, i))
	}
	if err := db.Finalize("Lib"); err != nil {
		t.Fatal(err)
	}
	// Strip the segmented extras, as an old checkpoint would present.
	db.DropBAT(prefix + "_segdir")
	db.DropBAT(prefix + "_posttf")
	if SegmentCount(db, prefix) != 0 {
		t.Fatal("directory still present after strip")
	}
	SetStoreCodec(db, CodecBlock) // the upgrade runs under today's default
	if err := EnsureSegmented(db, prefix); err != nil {
		t.Fatal(err)
	}
	if SegmentCount(db, prefix) != 1 {
		t.Fatalf("segments = %d, want 1", SegmentCount(db, prefix))
	}
	ref := segTestDB(t)
	rng = rand.New(rand.NewSource(42))
	for i := 0; i < 12; i++ {
		segInsert(t, ref, i, segTestDoc(rng, i))
	}
	if err := ref.Finalize("Lib"); err != nil {
		t.Fatal(err)
	}
	assertDerivedEqual(t, ref, db, prefix, "upgraded layout")
	if _, ok := db.BAT(prefix + "_blkdoc"); !ok {
		t.Fatal("upgrade did not derive the block postings structure")
	}
	if _, ok := db.BAT(prefix + "_postdoc"); ok {
		t.Fatal("upgrade left the raw postings column behind")
	}
}
