package ir

import (
	"strings"
	"unicode"
)

// stopWords is a compact English stop list (the SMART-style core set).
var stopWords = map[string]bool{}

func init() {
	for _, w := range strings.Fields(`
		a about above after again all also am an and any are as at be because
		been before being below between both but by can did do does doing down
		during each few for from further had has have having he her here hers
		him his how i if in into is it its itself just me more most my no nor
		not now of off on once only or other our ours out over own same she
		should so some such than that the their theirs them then there these
		they this those through to too under until up very was we were what
		when where which while who whom why will with you your yours`) {
		stopWords[w] = true
	}
}

// IsStopWord reports whether w (lowercase) is in the stop list.
func IsStopWord(w string) bool { return stopWords[w] }

// Tokenize splits text into lowercase alphanumeric tokens.
func Tokenize(text string) []string {
	out := make([]string, 0, 16)
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 0 {
			out = append(out, sb.String())
			sb.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r):
			sb.WriteRune(unicode.ToLower(r))
		case unicode.IsDigit(r):
			sb.WriteRune(r)
		case r == '_':
			// keep underscores: cluster "words" like gabor_21 are single terms
			sb.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return out
}

// Analyze runs the full indexing pipeline: tokenise, drop stop words, stem.
// Both documents and queries must pass through it so term forms agree.
func Analyze(text string) []string {
	toks := Tokenize(text)
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if stopWords[t] {
			continue
		}
		// cluster terms (with underscores or digits) are not stemmed
		if strings.ContainsAny(t, "_0123456789") {
			out = append(out, t)
			continue
		}
		out = append(out, Stem(t))
	}
	return out
}

// TermFrequencies folds analyzed terms into a frequency map plus the total
// token count (the document length used by the belief function).
func TermFrequencies(terms []string) (map[string]int, int) {
	tf := make(map[string]int, len(terms))
	for _, t := range terms {
		tf[t]++
	}
	return tf, len(terms)
}
