package ir

import (
	"fmt"
	"sort"

	"mirror/internal/bat"
	"mirror/internal/moa"
)

// Segmented CONTREP finalization for incremental online indexing.
//
// A monolithic Finalize re-derives the whole term-ordered postings
// representation on every run — acceptable for a batch build, hostile to
// insert-while-serving. The segmented layout splits the *derived*
// representation by document range into generation-numbered segments:
//
//	prefix_segdir                [void, int]  packed directory, two ints
//	                             per segment: pairEnd (exclusive end of
//	                             the segment's range in the raw _term/_doc
//	                             /_tf pair columns) and docEnd (exclusive
//	                             end of its document-OID range)
//	prefix_poststart …           segment slot 0 keeps the canonical
//	                             (unsuffixed) derived names, so stores
//	                             written before segmentation read as a
//	                             single segment
//	prefix_seg<s>_poststart …    slots s ≥ 1: _poststart/_postdoc/
//	                             _posttf/_postbel/_maxbel per segment
//
// _posttf (term frequencies aligned with _postdoc) is what makes belief
// recomputation independent of segment *structure*: when collection
// statistics move (every delta publish moves df/N/avgdl, and exactness
// demands all beliefs reflect the new statistics), only the _postbel/
// _maxbel float columns are rewritten — the counting sort that built
// _poststart/_postdoc/_posttf is never repeated for old segments.
//
// Invariants (the segment tests pin them):
//
//   - Segments partition both the raw pair range and the document-OID
//     range contiguously and in ascending order; every document's
//     postings live entirely in one segment.
//   - Within a segment, each term's postings run is document-ascending.
//   - Merging adjacent segments is pure concatenation per term (doc
//     ranges are adjacent), so compaction never touches beliefs.
//   - After RefinalizeSegments, the logical postings content (term →
//     (doc, tf, belief) multiset) equals what a monolithic Finalize over
//     the same raw columns derives; queries over the segment list are
//     BUN-for-BUN identical to queries over one merged segment
//     (bat.PrunedTopKSegs' guarantee).
//
// A segment's _poststart length records the dictionary size when the
// segment was derived; terms added later simply have no postings run in
// older segments (bat's termRange treats out-of-range terms as empty).

// Per-segment derived column suffixes. _poststart and _maxbel are shared
// between the two codecs (exact offsets and exact per-term bounds);
// the rest belong to exactly one layout (codec.go).
var (
	blockSegSuffixes  = []string{"_poststart", "_blkstart", "_blkdir", "_blkdoc", "_blkbdir", "_blkbel", "_maxbel"}
	rawOnlySuffixes   = []string{"_postdoc", "_posttf", "_postbel"}
	blockOnlySuffixes = []string{"_blkstart", "_blkdir", "_blkdoc", "_blkbdir", "_blkbel"}
	allSegSuffixes    = []string{"_poststart", "_maxbel", "_postdoc", "_posttf", "_postbel", "_blkstart", "_blkdir", "_blkdoc", "_blkbdir", "_blkbel"}
)

// SegColumn names slot s's derived column for the given canonical suffix
// ("_poststart" …): slot 0 owns the canonical name, higher slots are
// suffixed _seg<s>.
func SegColumn(prefix string, slot int, suffix string) string {
	if slot == 0 {
		return prefix + suffix
	}
	return fmt.Sprintf("%s_seg%d%s", prefix, slot, suffix)
}

// dbAccess abstracts locked (Structure hook) vs unlocked (core refresh)
// database access so one implementation serves both call sites.
type dbAccess struct {
	get func(string) (*bat.BAT, bool)
	put func(string, *bat.BAT)
	del func(string)
}

func access(db *moa.Database) dbAccess {
	return dbAccess{get: db.BAT, put: db.PutBAT, del: db.DropBAT}
}

func accessLocked(db *moa.Database) dbAccess {
	return dbAccess{get: db.BATL, put: db.PutBATL, del: db.DropBATL}
}

// segDir is the decoded segment directory.
type segDir struct {
	pairEnd []int // exclusive end in the raw pair columns, per segment
	docEnd  []int // exclusive end of the document-OID range, per segment
}

func (sd *segDir) count() int { return len(sd.pairEnd) }

func (sd *segDir) pairRange(s int) (lo, hi int) {
	if s > 0 {
		lo = sd.pairEnd[s-1]
	}
	return lo, sd.pairEnd[s]
}

func readSegDir(a dbAccess, prefix string) (*segDir, bool) {
	b, ok := a.get(prefix + "_segdir")
	if !ok || b.Len()%2 != 0 {
		return nil, false
	}
	sd := &segDir{}
	for i := 0; i < b.Len(); i += 2 {
		sd.pairEnd = append(sd.pairEnd, int(b.Tail.IntAt(i)))
		sd.docEnd = append(sd.docEnd, int(b.Tail.IntAt(i+1)))
	}
	return sd, true
}

// writeSegDir replaces the directory wholesale (never edited in place, so
// published epochs keep their frozen copy).
func writeSegDir(a dbAccess, prefix string, sd *segDir) {
	packed := make([]int64, 0, 2*sd.count())
	for s := 0; s < sd.count(); s++ {
		packed = append(packed, int64(sd.pairEnd[s]), int64(sd.docEnd[s]))
	}
	a.put(prefix+"_segdir", adoptDense(bat.ColumnOfInts(packed)))
}

// SegmentStat describes one index segment for introspection.
type SegmentStat struct {
	Slot     int    // directory position (0 = oldest)
	Docs     int    // documents covered (docEnd - previous docEnd)
	Postings int    // raw postings covered
	Terms    int    // dictionary size when the segment was derived
	Codec    string // postings layout: "block" or "raw"
	Bytes    int64  // resident bytes of the segment's postings columns
}

// SegmentStats reports the segment layout of a CONTREP, oldest first; nil
// when the store predates segmentation (one monolithic representation).
func SegmentStats(db *moa.Database, prefix string) []SegmentStat {
	a := access(db)
	sd, ok := readSegDir(a, prefix)
	if !ok {
		return nil
	}
	out := make([]SegmentStat, 0, sd.count())
	prevPair, prevDoc := 0, 0
	for s := 0; s < sd.count(); s++ {
		st := SegmentStat{Slot: s, Docs: sd.docEnd[s] - prevDoc, Postings: sd.pairEnd[s] - prevPair, Codec: CodecRaw.String()}
		if b, ok := a.get(SegColumn(prefix, s, "_poststart")); ok && b.Len() > 0 {
			st.Terms = b.Len() - 1
		}
		layout := rawOnlySuffixes
		if segIsBlock(a, prefix, s) {
			st.Codec = CodecBlock.String()
			layout = blockOnlySuffixes
		}
		for _, suffix := range append([]string{"_poststart", "_maxbel"}, layout...) {
			if b, ok := a.get(SegColumn(prefix, s, suffix)); ok {
				st.Bytes += b.MemBytes()
			}
		}
		out = append(out, st)
		prevPair, prevDoc = sd.pairEnd[s], sd.docEnd[s]
	}
	return out
}

// SegmentCount reports the number of index segments (0 when the store
// predates segmentation).
func SegmentCount(db *moa.Database, prefix string) int {
	sd, ok := readSegDir(access(db), prefix)
	if !ok {
		return 0
	}
	return sd.count()
}

// buildSegmentStructure derives slot's postings structure from the raw
// pair range [pairLo, pairHi): a counting sort by term, each term's run
// document-ascending (a repair sort runs if a caller ever violated
// insertion order), stored in the database's registered codec. Beliefs
// are NOT computed here — they depend on collection statistics and are
// filled in by RefinalizeSegments (the block layout gets zero-belief
// placeholders so the segment stays structurally loadable meanwhile).
func buildSegmentStructure(a dbAccess, db *moa.Database, prefix string, slot, pairLo, pairHi int) error {
	termB, ok1 := a.get(prefix + "_term")
	docB, ok2 := a.get(prefix + "_doc")
	tfB, ok3 := a.get(prefix + "_tf")
	dict, ok4 := a.get(prefix + "_dict")
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return fmt.Errorf("ir: %s: missing raw CONTREP columns", prefix)
	}
	if pairHi > termB.Len() || pairLo > pairHi {
		return fmt.Errorf("ir: %s: segment pair range [%d,%d) beyond %d postings", prefix, pairLo, pairHi, termB.Len())
	}
	nt := dict.Len()
	p := pairHi - pairLo
	starts := make([]int64, nt+1)
	for i := pairLo; i < pairHi; i++ {
		starts[termB.Tail.OIDAt(i)+1]++
	}
	for t := 1; t <= nt; t++ {
		starts[t] += starts[t-1]
	}
	postDoc := make([]bat.OID, p)
	postTF := make([]int64, p)
	cursor := append([]int64(nil), starts...)
	for i := pairLo; i < pairHi; i++ {
		t := termB.Tail.OIDAt(i)
		at := cursor[t]
		cursor[t]++
		postDoc[at] = docB.Tail.OIDAt(i)
		postTF[at] = tfB.Tail.IntAt(i)
	}
	for t := 0; t < nt; t++ {
		lo, hi := starts[t], starts[t+1]
		for i := lo + 1; i < hi; i++ {
			if postDoc[i] < postDoc[i-1] {
				sortSegRun(postDoc[lo:hi], postTF[lo:hi])
				break
			}
		}
	}
	return writeSegData(a, prefix, slot, StoreCodec(db), &segData{starts: starts, docs: postDoc, tfs: postTF})
}

// sortSegRun repairs one term's (doc, tf) run into document order.
func sortSegRun(docs []bat.OID, tfs []int64) {
	idx := make([]int, len(docs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return docs[idx[a]] < docs[idx[b]] })
	nd := make([]bat.OID, len(docs))
	ntf := make([]int64, len(tfs))
	for i, j := range idx {
		nd[i], ntf[i] = docs[j], tfs[j]
	}
	copy(docs, nd)
	copy(tfs, ntf)
}

// AppendSegment extends the segment directory with a delta segment
// covering every raw posting and document appended since the last
// segment, deriving its structure. Returns false when nothing is pending.
// The caller must follow up with RefinalizeSegments before serving the
// new segment (beliefs and statistics are stale until then).
func AppendSegment(db *moa.Database, prefix string) (bool, error) {
	return appendSegment(access(db), db, prefix)
}

func appendSegment(a dbAccess, db *moa.Database, prefix string) (bool, error) {
	termB, ok1 := a.get(prefix + "_term")
	dlenB, ok2 := a.get(prefix + "_dlen")
	if !ok1 || !ok2 {
		return false, fmt.Errorf("ir: %s: missing raw CONTREP columns", prefix)
	}
	sd, ok := readSegDir(a, prefix)
	if !ok {
		return false, fmt.Errorf("ir: %s is not segmented (run a full Finalize first)", prefix)
	}
	pairLo, docLo := 0, 0
	if n := sd.count(); n > 0 {
		pairLo, docLo = sd.pairEnd[n-1], sd.docEnd[n-1]
	}
	pairHi, docHi := termB.Len(), dlenB.Len()
	if pairHi == pairLo && docHi == docLo && sd.count() > 0 {
		// Nothing pending — but an empty directory still gets its first
		// (empty) segment, so a full Finalize of an empty collection keeps
		// publishing the canonical derived columns.
		return false, nil
	}
	slot := sd.count()
	if err := buildSegmentStructure(a, db, prefix, slot, pairLo, pairHi); err != nil {
		return false, err
	}
	sd.pairEnd = append(sd.pairEnd, pairHi)
	sd.docEnd = append(sd.docEnd, docHi)
	writeSegDir(a, prefix, sd)
	return true, nil
}

// RefinalizeSegments recomputes everything that depends on collection
// statistics — the _df/_stats columns, the pair-ordered _bel column, and
// every segment's _postbel/_maxbel — plus the reversed term/dictionary
// views, honouring a registered GlobalStats override exactly like the
// monolithic Finalize. Segment structure is left untouched. New derived
// BATs replace the old wholesale, so a published epoch's frozen views
// keep serving the pre-refresh state.
func RefinalizeSegments(db *moa.Database, prefix string) error {
	return refinalizeSegments(access(db), db, prefix)
}

func refinalizeSegments(a dbAccess, db *moa.Database, prefix string) error {
	termB, ok1 := a.get(prefix + "_term")
	docB, ok2 := a.get(prefix + "_doc")
	tfB, ok3 := a.get(prefix + "_tf")
	dlenB, ok4 := a.get(prefix + "_dlen")
	dict, ok5 := a.get(prefix + "_dict")
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 {
		return fmt.Errorf("ir: %s: missing raw CONTREP columns", prefix)
	}
	sd, ok := readSegDir(a, prefix)
	if !ok {
		return fmt.Errorf("ir: %s is not segmented (run a full Finalize first)", prefix)
	}
	if n := sd.count(); n == 0 {
		if termB.Len() != 0 || dlenB.Len() != 0 {
			return fmt.Errorf("ir: %s: segment directory does not cover the raw postings (AppendSegment first)", prefix)
		}
	} else if sd.pairEnd[n-1] != termB.Len() || sd.docEnd[n-1] != dlenB.Len() {
		return fmt.Errorf("ir: %s: segment directory does not cover the raw postings (AppendSegment first)", prefix)
	}

	// Collection statistics from the raw columns (identical arithmetic to
	// the monolithic Finalize).
	n := dlenB.Len()
	var totalLen int64
	dlenOf := make(map[bat.OID]int64, n)
	for i := 0; i < n; i++ {
		l := dlenB.Tail.IntAt(i)
		dlenOf[dlenB.Head.OIDAt(i)] = l
		totalLen += l
	}
	avgdl := 0.0
	if n > 0 {
		avgdl = float64(totalLen) / float64(n)
	}

	// df from the per-segment offset partials: df(t) = Σ_s (start_s[t+1] −
	// start_s[t]). Integer sums, so this equals the monolithic count.
	df := make([]int64, dict.Len())
	for s := 0; s < sd.count(); s++ {
		startB, ok := a.get(SegColumn(prefix, s, "_poststart"))
		if !ok {
			return fmt.Errorf("ir: %s: segment %d lost its offsets", prefix, s)
		}
		for t := 0; t+1 < startB.Len() && t < len(df); t++ {
			df[t] += startB.Tail.IntAt(t+1) - startB.Tail.IntAt(t)
		}
	}

	// Sharded indexing: the registered override replaces the local view
	// of n, avgdl and df with the global one (see globalstats.go).
	if gs := globalStatsFor(db, prefix); gs != nil {
		n = gs.N
		avgdl = gs.AvgDocLen
		for t := range df {
			df[t] = int64(gs.DF[dict.Tail.StrAt(t)])
		}
	}
	dfB := bat.NewDense(0, bat.KindInt)
	for t, c := range df {
		dfB.MustAppend(bat.OID(t), c)
	}

	// Pair-ordered beliefs (the exhaustive getbl/wsum input).
	bel := bat.NewDense(0, bat.KindFloat)
	for i := 0; i < termB.Len(); i++ {
		t := termB.Tail.OIDAt(i)
		d := docB.Tail.OIDAt(i)
		tf := int(tfB.Tail.IntAt(i))
		bel.MustAppend(bat.OID(i), Belief(tf, int(dlenOf[d]), avgdl, int(df[t]), n))
	}

	stats := bat.NewDense(0, bat.KindFloat)
	stats.MustAppend(bat.OID(0), float64(n))
	stats.MustAppend(bat.OID(1), avgdl)
	stats.MustAppend(bat.OID(2), DefaultBelief)
	stats.MustAppend(bat.OID(3), float64(dict.Len()))

	// Per-segment beliefs and bounds, walking each segment's term runs.
	// Belief is a pure per-posting function, so these are exactly the
	// pair-ordered values scattered — no fold-order concern. Block
	// segments decode their immutable doc/tf blocks and rewrite only the
	// belief columns (and their upward-quantized per-block bounds); the
	// structure columns are never re-encoded here.
	for s := 0; s < sd.count(); s++ {
		if segIsBlock(a, prefix, s) {
			if err := refinalizeBlockSegment(a, prefix, s, dlenOf, avgdl, df, n); err != nil {
				return err
			}
			continue
		}
		startB, ok1 := a.get(SegColumn(prefix, s, "_poststart"))
		pdocB, ok2 := a.get(SegColumn(prefix, s, "_postdoc"))
		ptfB, ok3 := a.get(SegColumn(prefix, s, "_posttf"))
		if !ok1 || !ok2 || !ok3 {
			return fmt.Errorf("ir: %s: segment %d lost its structure", prefix, s)
		}
		np := pdocB.Len()
		pbel := make([]float64, np)
		maxb := make([]float64, startB.Len()-1)
		for t := 0; t+1 < startB.Len(); t++ {
			lo, hi := startB.Tail.IntAt(t), startB.Tail.IntAt(t+1)
			for i := lo; i < hi; i++ {
				b := Belief(int(ptfB.Tail.IntAt(int(i))), int(dlenOf[pdocB.Tail.OIDAt(int(i))]), avgdl, int(df[t]), n)
				pbel[i] = b
				if b > maxb[t] {
					maxb[t] = b
				}
			}
		}
		a.put(SegColumn(prefix, s, "_postbel"), adoptDense(bat.ColumnOfFloats(pbel)))
		a.put(SegColumn(prefix, s, "_maxbel"), adoptDense(bat.ColumnOfFloats(maxb)))
	}

	a.put(prefix+"_df", dfB)
	a.put(prefix+"_bel", bel)
	a.put(prefix+"_stats", stats)
	a.put(prefix+"_termrev", termB.Reverse())
	a.put(prefix+"_dictrev", dict.Reverse())
	return nil
}

// MergeSegments compacts segment slots [lo, hi) into one. Adjacent
// segments cover adjacent document ranges and every term run is
// document-ascending, so the merged run is pure per-term concatenation in
// slot order — beliefs are copied bit-exact, never recomputed (statistics
// do not move at a merge), and the merged per-term bound is the max of
// the slot bounds. Input segments may be stored in either codec; the
// merged segment is written in the database's registered codec. Higher
// slots shift down; stale slot names are dropped.
func MergeSegments(db *moa.Database, prefix string, lo, hi int) error {
	a := access(db)
	sd, ok := readSegDir(a, prefix)
	if !ok {
		return fmt.Errorf("ir: %s is not segmented", prefix)
	}
	if lo < 0 || hi > sd.count() || hi-lo < 2 {
		return fmt.Errorf("ir: %s: bad merge range [%d,%d) of %d segments", prefix, lo, hi, sd.count())
	}

	inputs := make([]*segData, 0, hi-lo)
	nt := 0
	np := int64(0)
	for s := lo; s < hi; s++ {
		data, err := readSegData(a, prefix, s, true)
		if err != nil {
			return fmt.Errorf("ir: %s: segment %d incomplete, cannot merge: %w", prefix, s, err)
		}
		if len(data.starts)-1 > nt {
			nt = len(data.starts) - 1
		}
		np += int64(len(data.docs))
		inputs = append(inputs, data)
	}

	merged := &segData{
		starts: make([]int64, nt+1),
		docs:   make([]bat.OID, 0, np),
		tfs:    make([]int64, 0, np),
		bels:   make([]float64, 0, np),
		maxb:   make([]float64, nt),
	}
	for t := 0; t < nt; t++ {
		merged.starts[t] = int64(len(merged.docs))
		for _, v := range inputs { // slot order == ascending doc ranges
			if t+1 >= len(v.starts) {
				continue
			}
			rlo, rhi := v.starts[t], v.starts[t+1]
			merged.docs = append(merged.docs, v.docs[rlo:rhi]...)
			merged.tfs = append(merged.tfs, v.tfs[rlo:rhi]...)
			merged.bels = append(merged.bels, v.bels[rlo:rhi]...)
			if t < len(v.maxb) && v.maxb[t] > merged.maxb[t] {
				merged.maxb[t] = v.maxb[t]
			}
		}
	}
	merged.starts[nt] = int64(len(merged.docs))

	// Install the merged segment at slot lo, shift survivors down, drop
	// the now-unused tail slot names, rewrite the directory. The shift
	// deletes any suffix absent at the source slot so a destination never
	// keeps the other codec's columns from its previous occupant.
	if err := writeSegData(a, prefix, lo, StoreCodec(db), merged); err != nil {
		return err
	}

	removed := hi - lo - 1
	for s := hi; s < sd.count(); s++ {
		for _, suffix := range allSegSuffixes {
			if b, ok := a.get(SegColumn(prefix, s, suffix)); ok {
				a.put(SegColumn(prefix, s-removed, suffix), b)
			} else {
				a.del(SegColumn(prefix, s-removed, suffix))
			}
		}
	}
	for s := sd.count() - removed; s < sd.count(); s++ {
		for _, suffix := range allSegSuffixes {
			a.del(SegColumn(prefix, s, suffix))
		}
	}

	nsd := &segDir{}
	nsd.pairEnd = append(nsd.pairEnd, sd.pairEnd[:lo]...)
	nsd.docEnd = append(nsd.docEnd, sd.docEnd[:lo]...)
	nsd.pairEnd = append(nsd.pairEnd, sd.pairEnd[hi-1])
	nsd.docEnd = append(nsd.docEnd, sd.docEnd[hi-1])
	nsd.pairEnd = append(nsd.pairEnd, sd.pairEnd[hi:]...)
	nsd.docEnd = append(nsd.docEnd, sd.docEnd[hi:]...)
	writeSegDir(a, prefix, nsd)
	return nil
}

// PickMerge chooses the next compaction for a tiered, bounded-fan-in
// policy: walking from the newest segment backwards, a segment joins the
// merge run while it is no larger than twice the run accumulated so far
// (so compaction stays logarithmic — small deltas merge often, a big base
// segment only when the tail has grown comparable), bounded by fanIn
// inputs. Returns ok=false when no run of ≥ 2 segments qualifies.
// Deterministic in sizes, which keeps WAL-replayed merges identical.
func PickMerge(sizes []int, fanIn int) (lo, hi int, ok bool) {
	n := len(sizes)
	if n < 2 || fanIn < 2 {
		return 0, 0, false
	}
	run := sizes[n-1]
	lo = n - 1
	for lo > 0 && n-lo < fanIn && sizes[lo-1] <= 2*run {
		lo--
		run += sizes[lo]
	}
	if n-lo < 2 {
		return 0, 0, false
	}
	return lo, n, true
}

// EnsureSegmented upgrades a CONTREP whose derived representation
// predates segmentation (a store checkpointed by an older build): the
// existing postings become segment 0 (structure re-derived from the raw
// columns — the old layout lacks _posttf) covering everything so far.
// No-op when a directory already exists.
func EnsureSegmented(db *moa.Database, prefix string) error {
	a := access(db)
	if _, ok := readSegDir(a, prefix); ok {
		return nil
	}
	writeSegDir(a, prefix, &segDir{})
	if _, err := appendSegment(a, db, prefix); err != nil {
		return err
	}
	return refinalizeSegments(a, db, prefix)
}

// dropSegments removes every segmented derived column and the directory
// (the prelude to a full monolithic rebuild).
func dropSegments(a dbAccess, prefix string) {
	sd, ok := readSegDir(a, prefix)
	if !ok {
		return
	}
	for s := 0; s < sd.count(); s++ {
		for _, suffix := range allSegSuffixes {
			a.del(SegColumn(prefix, s, suffix))
		}
	}
	a.del(prefix + "_segdir")
}
