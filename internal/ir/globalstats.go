package ir

import (
	"fmt"
	"sync"

	"mirror/internal/bat"
	"mirror/internal/moa"
)

// Collection-statistics overrides for sharded indexing.
//
// The belief of a posting (Belief) mixes per-document evidence (tf, dlen)
// with collection statistics: document frequency, collection size and
// average document length. A shard that indexes only its slice of the
// collection would compute *local* statistics and its beliefs would
// diverge from a single store holding everything — local idf is the
// classic distributed-IR failure mode. The sharded engine in internal/core
// therefore computes the statistics once, globally, and registers them
// here per (database, CONTREP prefix) before running Finalize on each
// shard. With the override in place every shard writes exactly the belief
// a single store would have written, which is what makes the global top-k
// a pure merge of shard-local top-ks (beliefs become per-document
// annotations in the Gatterbauer sense — comparable across stores).
//
// The override also requires *union dictionaries* (EnsureDictTerms): a
// query term that matches no document of a shard must still be in that
// shard's dictionary, or the shard would drop it as out-of-vocabulary and
// score its unmatched documents with a smaller default fill than the
// single store does.
//
// Beliefs, the _df column and the _stats column are persisted through the
// BBP manifest, so a reopened shard answers queries consistently without
// re-registering anything; the engine re-registers the override whenever
// it rebuilds the index (which is the only path that calls Finalize).

// GlobalStats is the collection-level truth a shard's Finalize uses in
// place of its local view.
type GlobalStats struct {
	N         int            // global document count
	AvgDocLen float64        // global average document length (tokens)
	DF        map[string]int // global document frequency per term
}

// CollectionStats folds per-document term lists into GlobalStats. Each
// docs[i] is one document's token sequence (duplicates count toward the
// document length, distinct terms toward df) — exactly the arithmetic
// Finalize performs over its postings. Empty documents still count in N,
// matching the dlen row every CONTREP insert appends.
func CollectionStats(docs [][]string) *GlobalStats {
	gs := &GlobalStats{N: len(docs), DF: map[string]int{}}
	var total int
	for _, terms := range docs {
		total += len(terms)
		tf, _ := TermFrequencies(terms)
		for t := range tf {
			gs.DF[t]++
		}
	}
	if gs.N > 0 {
		gs.AvgDocLen = float64(total) / float64(gs.N)
	}
	return gs
}

var (
	gsMu  sync.Mutex
	gsReg = map[cacheKey]*GlobalStats{}
)

// SetGlobalStats registers (gs != nil) or clears (gs == nil) the
// collection-statistics override the next Finalize of this CONTREP will
// use. It applies to belief computation, the _df column and the _stats
// column alike.
func SetGlobalStats(db *moa.Database, prefix string, gs *GlobalStats) {
	gsMu.Lock()
	defer gsMu.Unlock()
	key := cacheKey{db, prefix}
	if gs == nil {
		delete(gsReg, key)
		return
	}
	gsReg[key] = gs
}

// globalStatsFor returns the registered override, or nil.
func globalStatsFor(db *moa.Database, prefix string) *GlobalStats {
	gsMu.Lock()
	defer gsMu.Unlock()
	return gsReg[cacheKey{db, prefix}]
}

// EnsureDictTerms appends every term missing from the CONTREP's dictionary
// (with no postings — the term simply becomes known). Sharded indexing
// calls it with the global term set so all shards agree on query
// vocabulary; term OIDs remain shard-local, which is fine because queries
// enter through a string join against the dictionary. Call before
// Finalize, which derives the reversed dictionary and the per-term bound
// columns from the (now unioned) dictionary.
func EnsureDictTerms(db *moa.Database, prefix string, terms []string) error {
	idx, err := dictIndex(db, prefix, false)
	if err != nil {
		return err
	}
	dict, ok := db.BAT(prefix + "_dict")
	if !ok {
		return fmt.Errorf("ir: missing dictionary BAT %s_dict", prefix)
	}
	dictMu.Lock()
	defer dictMu.Unlock()
	for _, t := range terms {
		if _, known := idx[t]; known {
			continue
		}
		toid := bat.OID(dict.Len())
		if err := dict.Append(toid, t); err != nil {
			return err
		}
		idx[t] = toid
	}
	return nil
}
