package load

import (
	"strings"
	"testing"

	"mirror/internal/core"
)

// Every crash-matrix fault must land the daemon in an intended recovery
// branch (pinned by scraping the restart banner and the serving state)
// and converge back to answers the oracle accepts.
func TestFaultRecoveryBranches(t *testing.T) {
	tests := []struct {
		name   string
		fault  Fault
		shards int
		check  func(t *testing.T, rig *testRig, rep *FaultReport, out string)
	}{
		// Killed around a publish: the publish WAL record either made it
		// (replay reproduces the epoch — immediately current, no crawl)
		// or it didn't (pending docs force the crawl + catch-up branch).
		// Anything in between — a half-applied publish — is a bug.
		{"kill-during-publish", FaultKillDuringPublish, 0,
			func(t *testing.T, rig *testRig, rep *FaultReport, out string) {
				if rep.TornTailSeen {
					t.Fatalf("unexpected torn-tail warning:\n%s", out)
				}
				crawled := strings.Contains(out, "mirrord: crawling")
				st := rig.stats(t)
				if !crawled && (!st.Current || st.EpochDocs != rig.ingested) {
					t.Fatalf("no crawl, yet replay is not current over %d docs: %+v", rig.ingested, st)
				}
				if crawled && !strings.Contains(out, "catch-up refresh") &&
					!strings.Contains(out, "running extraction pipeline") {
					t.Fatalf("crawl branch without catch-up or rebuild:\n%s", out)
				}
			}},
		// Killed mid-checkpoint: the previous manifest must reopen
		// (checkpoints publish atomically) and the WAL replay on top;
		// the RPC-ingested docs were never published, so recovery must
		// take the crawl + catch-up branch to re-attach their rasters.
		{"kill-during-checkpoint", FaultKillDuringCheckpoint, 0,
			func(t *testing.T, rig *testRig, rep *FaultReport, out string) {
				if rep.TornTailSeen {
					t.Fatalf("unexpected torn-tail warning:\n%s", out)
				}
				if !strings.Contains(out, "mirrord: crawling") {
					t.Fatalf("recovery skipped the crawl + catch-up branch:\n%s", out)
				}
			}},
		// Torn WAL tail: recovery must detect the tear, truncate to the
		// last consistent record, and warn loudly; the dropped suffix is
		// re-ingested by the crawl.
		{"torn-wal", FaultTornWAL, 0,
			func(t *testing.T, rig *testRig, rep *FaultReport, out string) {
				if !rep.WALTorn {
					t.Fatal("injector reported no WAL surgery")
				}
				if !rep.TornTailSeen || !strings.Contains(out, "truncated a torn WAL tail") {
					t.Fatalf("recovery did not log the torn-tail warning:\n%s", out)
				}
			}},
		// Same against a sharded store: the tear lands in one member's
		// WAL and recovery names the shard it truncated.
		{"torn-wal-sharded", FaultTornWAL, 3,
			func(t *testing.T, rig *testRig, rep *FaultReport, out string) {
				if !rep.WALTorn {
					t.Fatal("injector reported no WAL surgery")
				}
				if !rep.TornTailSeen || !strings.Contains(out, "torn WAL tail on shard") {
					t.Fatalf("recovery did not log the per-shard torn-tail warning:\n%s", out)
				}
			}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rig := newRig(t, tc.shards)
			rig.ingest(t, 4) // WAL records beyond the initial checkpoint
			mark := len(rig.d.Output())
			rep, err := Inject(rig.d, tc.fault, rig.store)
			if err != nil {
				t.Fatalf("inject %s: %v", tc.fault, err)
			}
			if rep.Fault != tc.fault || rep.Downtime <= 0 {
				t.Fatalf("bad report: %+v", rep)
			}
			if !rig.d.Running() {
				t.Fatal("daemon not running after recovery")
			}
			tc.check(t, rig, rep, rig.d.Output()[mark:])
			st := rig.settle(t)
			if st.Epoch == 0 || st.EpochDocs != rig.ingested {
				t.Fatalf("bad post-recovery state: %+v", st)
			}
		})
	}
}

// stats fetches the daemon's serving state without driving any refresh.
func (r *testRig) stats(t *testing.T) *core.StatsReply {
	t.Helper()
	c, err := core.DialMirror(r.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// Tearing the WAL of a store whose directory holds no WAL at all is an
// injector error, not a silent no-op.
func TestTearWALRequiresAWAL(t *testing.T) {
	if _, err := TearWAL(t.TempDir()); err == nil {
		t.Fatal("TearWAL on an empty directory must fail")
	}
}

// Injecting an unknown fault must be rejected before any kill happens.
func TestInjectUnknownFault(t *testing.T) {
	d := &Daemon{}
	if _, err := Inject(d, Fault("meteor-strike"), t.TempDir()); err == nil {
		t.Fatal("unknown fault accepted")
	}
}
