package load

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"mirror/internal/core"
)

// Daemon supervises one mirrord child process: start it, scrape its
// output, wait until its RPC surface answers, kill it mid-operation, and
// restart it against the same store and address. This is the harness's
// crash hammer — every fault the OPERATIONS.md crash matrix describes is
// "SIGKILL at an interesting moment", and recovery is just Start again.
type Daemon struct {
	Bin  string   // mirrord binary
	Args []string // full flag set, including -addr and -store
	Addr string   // the RPC address the args bind

	mu     sync.Mutex
	cmd    *exec.Cmd
	out    bytes.Buffer
	done   chan error
	exited bool // the current child died on its own (not via Kill/Stop)
}

// Start launches the daemon. Output (stdout+stderr) accumulates across
// restarts so recovery banners from every incarnation stay greppable.
func (d *Daemon) Start() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cmd != nil {
		return fmt.Errorf("load: daemon already running")
	}
	cmd := exec.Command(d.Bin, d.Args...)
	cmd.Stdout = &lockedWriter{d: d}
	cmd.Stderr = &lockedWriter{d: d}
	// Don't let Wait block on output pipes held open by orphaned
	// grandchildren: once the daemon itself is dead, reap promptly.
	cmd.WaitDelay = 5 * time.Second
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("load: start %s: %w", d.Bin, err)
	}
	done := make(chan error, 1)
	go func() {
		err := cmd.Wait()
		d.mu.Lock()
		if d.cmd == cmd { // self-exit, not a Kill/Stop reap
			d.exited = true
		}
		d.mu.Unlock()
		done <- err
	}()
	d.cmd, d.done, d.exited = cmd, done, false
	return nil
}

// lockedWriter serialises child output into the shared capture buffer.
type lockedWriter struct{ d *Daemon }

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	return w.d.out.Write(p)
}

// Output returns everything the daemon (all incarnations) printed so far.
func (d *Daemon) Output() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.out.String()
}

// Running reports whether a child process is currently alive.
func (d *Daemon) Running() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cmd != nil && !d.exited
}

// WaitReady blocks until the daemon's RPC surface answers a Stats call
// with a published index, or the timeout expires (returning the captured
// output in the error, so startup failures diagnose themselves).
func (d *Daemon) WaitReady(timeout time.Duration) error {
	return d.waitStats(timeout, true)
}

// WaitServing blocks until the RPC surface answers Stats at all, indexed
// or not. Networked shard members boot empty — the router owns the index
// lifecycle — so their readiness is "serving", not "published".
func (d *Daemon) WaitServing(timeout time.Duration) error {
	return d.waitStats(timeout, false)
}

func (d *Daemon) waitStats(timeout time.Duration, needIndexed bool) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c, err := core.DialMirror(d.Addr)
		if err == nil {
			st, err := c.Stats()
			c.Close()
			if err == nil && (st.Indexed || !needIndexed) {
				return nil
			}
		}
		d.mu.Lock()
		dead := d.cmd == nil || d.exited
		d.mu.Unlock()
		if dead {
			return fmt.Errorf("load: daemon exited while waiting for readiness; output:\n%s", d.Output())
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("load: daemon not ready after %v; output:\n%s", timeout, d.Output())
}

// Kill SIGKILLs the child — no final checkpoint, no goodbye; exactly the
// crash shape the recovery path is specified against — and reaps it.
func (d *Daemon) Kill() error {
	d.mu.Lock()
	cmd, done := d.cmd, d.done
	d.cmd, d.done = nil, nil
	d.mu.Unlock()
	if cmd == nil {
		return nil
	}
	err := cmd.Process.Kill()
	<-done // exit error from SIGKILL is expected; the reap is what matters
	if err != nil && !errors.Is(err, os.ErrProcessDone) {
		return fmt.Errorf("load: kill: %w", err)
	}
	return nil
}

// Stop shuts the child down gracefully (SIGINT: final checkpoint, clean
// exit), falling back to SIGKILL if it ignores the signal.
func (d *Daemon) Stop(timeout time.Duration) error {
	d.mu.Lock()
	cmd, done := d.cmd, d.done
	d.cmd, d.done = nil, nil
	d.mu.Unlock()
	if cmd == nil {
		return nil
	}
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		cmd.Process.Kill()
		<-done
		return err
	}
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		cmd.Process.Kill()
		<-done
		return fmt.Errorf("load: daemon ignored SIGINT for %v; killed", timeout)
	}
}
