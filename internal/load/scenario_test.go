package load

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"mirror/internal/core"
)

const testBase = "http://mediaserver.test:8080"

// Equal (spec, base URL) inputs must give byte-identical scenarios — the
// reproducibility contract CI soak runs lean on.
func TestSynthesizeDeterministic(t *testing.T) {
	spec := DefaultSpec()
	spec.Shards, spec.HotShard = 3, 1
	a, err := Synthesize(spec, testBase)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(spec, testBase)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatal("same spec, same base URL, different scenario bytes")
	}
	// A different seed must actually change the scenario.
	spec.Seed++
	c, err := Synthesize(spec, testBase)
	if err != nil {
		t.Fatal(err)
	}
	cj, _ := json.Marshal(c)
	if string(aj) == string(cj) {
		t.Fatal("different seed produced an identical scenario")
	}
}

// Synthesis concerns are independently seeded: resizing the query mix must
// not perturb the document stream.
func TestSynthesizeConcernIndependence(t *testing.T) {
	spec := DefaultSpec()
	a, err := Synthesize(spec, testBase)
	if err != nil {
		t.Fatal(err)
	}
	spec.Queries *= 2
	b, err := Synthesize(spec, testBase)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a.Docs)
	bj, _ := json.Marshal(b.Docs)
	if string(aj) != string(bj) {
		t.Fatal("changing the query count perturbed the document stream")
	}
	if len(b.Queries) != 2*len(a.Queries) {
		t.Fatalf("query mix %d, want %d", len(b.Queries), 2*len(a.Queries))
	}
}

// Skewed naming must (a) land the requested traffic fraction on the hot
// shard under the engine's real routing function and (b) never break the
// lexicographic-order-equals-ingest-order invariant the crash recovery
// path depends on.
func TestSynthesizeShardSkew(t *testing.T) {
	spec := DefaultSpec()
	spec.Docs, spec.Preload = 200, 0
	spec.Shards, spec.HotShard, spec.SkewFrac = 3, 2, 0.7
	sc, err := Synthesize(spec, testBase)
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	names := make([]string, len(sc.Docs))
	for i, d := range sc.Docs {
		if got := core.ShardOf(d.URL(testBase), spec.Shards); got != d.Shard {
			t.Fatalf("doc %d: recorded shard %d, engine routes to %d", i, d.Shard, got)
		}
		if d.Shard == spec.HotShard {
			hot++
		}
		names[i] = d.Name
	}
	frac := float64(hot) / float64(len(sc.Docs))
	if frac < 0.6 || frac > 0.85 {
		t.Fatalf("hot shard got %.2f of the stream, want ~0.7", frac)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatal("document names not sorted: media-server order would diverge from ingest order")
	}
}

// The query mix is a normalised zipf distribution over distinct texts.
func TestSynthesizeQueryMix(t *testing.T) {
	sc, err := Synthesize(DefaultSpec(), testBase)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	seen := map[string]bool{}
	for i, q := range sc.Queries {
		if q.Text == "" || seen[q.Text] {
			t.Fatalf("query %d: empty or duplicate text %q", i, q.Text)
		}
		seen[q.Text] = true
		if i > 0 && q.Weight >= sc.Queries[i-1].Weight {
			t.Fatalf("weights not zipf-decreasing at %d", i)
		}
		sum += q.Weight
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
	// The sampler must be deterministic per seed and only emit mix entries.
	s1, s2 := sc.Sampler(42), sc.Sampler(42)
	for i := 0; i < 100; i++ {
		a, b := s1(), s2()
		if a.Text != b.Text {
			t.Fatalf("sampler not deterministic at draw %d", i)
		}
		if !seen[a.Text] {
			t.Fatalf("sampler emitted %q, not in the mix", a.Text)
		}
	}
}

// Bursts partition the post-preload stream exactly: in order, no gaps, no
// overlaps, all documents covered.
func TestSynthesizeBurstsPartitionStream(t *testing.T) {
	spec := DefaultSpec()
	sc, err := Synthesize(spec, testBase)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for i, b := range sc.Bursts {
		if b.Start != next || b.Count <= 0 {
			t.Fatalf("burst %d: start %d count %d, want start %d", i, b.Start, b.Count, next)
		}
		next += b.Count
	}
	if next != spec.Docs-spec.Preload {
		t.Fatalf("bursts cover %d docs, want %d", next, spec.Docs-spec.Preload)
	}
}

// Doc.Item must regenerate identical rasters on every call — a restarted
// media server has to serve byte-identical pixels.
func TestDocItemDeterministic(t *testing.T) {
	sc, err := Synthesize(DefaultSpec(), testBase)
	if err != nil {
		t.Fatal(err)
	}
	d := &sc.Docs[3]
	a := d.Item(testBase, 16, 16)
	b := d.Item(testBase, 16, 16)
	if a.URL != b.URL || a.Annotation != b.Annotation {
		t.Fatal("item metadata not deterministic")
	}
	var ab, bb bytes.Buffer
	if err := a.Scene.Img.EncodePPM(&ab); err != nil {
		t.Fatal(err)
	}
	if err := b.Scene.Img.EncodePPM(&bb); err != nil {
		t.Fatal(err)
	}
	if ab.Len() == 0 || !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatal("raster not deterministic")
	}
}
