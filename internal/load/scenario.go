package load

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"mirror/internal/core"
	"mirror/internal/corpus"
	"mirror/internal/media"
)

// Spec parameterises scenario synthesis. Everything downstream is a pure
// function of (Spec, base URL): equal specs against equal base URLs give
// byte-identical scenarios, which is what makes CI soak runs reproducible.
type Spec struct {
	Seed         int64   `json:"seed"`
	Docs         int     `json:"docs"`    // total documents (preload + stream)
	Preload      int     `json:"preload"` // present before the workload starts
	W            int     `json:"w"`       // raster width
	H            int     `json:"h"`       // raster height
	AnnotateRate float64 `json:"annotate_rate"`
	Shards       int     `json:"shards"`    // topology the skew targets (<=1: no skew)
	HotShard     int     `json:"hot_shard"` // shard receiving SkewFrac of the stream
	SkewFrac     float64 `json:"skew_frac"` // fraction routed to HotShard (0: uniform)
	Queries      int     `json:"queries"`   // distinct query texts in the mix
	ZipfS        float64 `json:"zipf_s"`    // zipf exponent of query popularity
	Sessions     int     `json:"sessions"`  // feedback session seed texts
	Bursts       int     `json:"bursts"`    // ingest bursts over the stream
}

// DefaultSpec is the CI soak-smoke shape: small enough for a bounded run,
// busy enough to overlap every operation class.
func DefaultSpec() Spec {
	return Spec{
		Seed: 1, Docs: 96, Preload: 48, W: 32, H: 32, AnnotateRate: 0.75,
		Shards: 1, HotShard: 0, SkewFrac: 0.7,
		Queries: 24, ZipfS: 1.1, Sessions: 6, Bursts: 4,
	}
}

// Doc is one synthesized document. The raster is regenerated on demand
// from the per-document seed (rasters are large; scenarios serialise
// small), and Name is chosen so that lexicographic media-server order
// equals ingest order — the invariant that keeps post-crash re-crawls
// prefix-shaped.
type Doc struct {
	Name       string `json:"name"`
	Annotation string `json:"annotation"`
	Classes    []int  `json:"classes"`
	Seed       int64  `json:"doc_seed"`
	Shard      int    `json:"shard"` // routed shard under Spec.Shards; -1 unsharded
}

// Query is one weighted entry of the query mix.
type Query struct {
	Text   string  `json:"text"`
	Weight float64 `json:"weight"`
}

// Burst is one ingest burst: Count stream documents ingested back to
// back, starting at stream offset Start (the ingester idles between
// bursts, so ingest arrives in waves, not a trickle).
type Burst struct {
	Start int `json:"start"`
	Count int `json:"count"`
}

// Scenario is a fully synthesized workload.
type Scenario struct {
	Spec     Spec     `json:"spec"`
	BaseURL  string   `json:"base_url"`
	Docs     []Doc    `json:"docs"`
	Queries  []Query  `json:"queries"`
	Sessions []string `json:"sessions"`
	Bursts   []Burst  `json:"bursts"`
}

// Synthesize builds the deterministic scenario for a spec against a media
// server base URL. Independent concerns draw from independently seeded
// RNGs, so e.g. changing the query count cannot perturb the document
// stream.
func Synthesize(spec Spec, baseURL string) (*Scenario, error) {
	if spec.Docs <= 0 || spec.Preload < 0 || spec.Preload > spec.Docs {
		return nil, fmt.Errorf("load: bad spec: %d docs, %d preload", spec.Docs, spec.Preload)
	}
	if spec.Shards > 1 && (spec.HotShard < 0 || spec.HotShard >= spec.Shards) {
		return nil, fmt.Errorf("load: hot shard %d out of range for %d shards", spec.HotShard, spec.Shards)
	}
	sc := &Scenario{Spec: spec, BaseURL: strings.TrimRight(baseURL, "/")}
	sc.Docs = synthDocs(spec, sc.BaseURL)
	sc.Queries = synthQueries(spec)
	sc.Sessions = synthSessions(spec)
	sc.Bursts = synthBursts(spec)
	return sc, nil
}

// subRNG derives an independent RNG for one synthesis concern.
func subRNG(seed int64, concern string) *rand.Rand {
	h := int64(1469598103934665603)
	for _, b := range []byte(concern) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(seed ^ h))
}

// synthDocs synthesizes the document stream: latent classes, annotations
// in the corpus vocabulary, and — under a sharded spec — names searched
// so the engine's routing function lands SkewFrac of them on the hot
// shard (the suffix search changes the name only, never the sort order).
func synthDocs(spec Spec, baseURL string) []Doc {
	rng := subRNG(spec.Seed, "docs")
	docs := make([]Doc, spec.Docs)
	for i := range docs {
		nclass := 1 + rng.Intn(3)
		classes := make([]int, nclass)
		for j := range classes {
			classes[j] = rng.Intn(len(media.Classes))
		}
		d := Doc{
			Classes: classes,
			Seed:    spec.Seed ^ int64(uint64(i+1)*0x9e3779b97f4a7c15),
			Shard:   -1,
		}
		if rng.Float64() < spec.AnnotateRate {
			d.Annotation = synthAnnotation(rng, classes)
		}
		if spec.Shards > 1 {
			target := spec.HotShard
			if rng.Float64() >= spec.SkewFrac {
				target = rng.Intn(spec.Shards)
			}
			d.Name, d.Shard = skewedName(baseURL, i, target, spec.Shards)
		} else {
			d.Name = fmt.Sprintf("%05d.ppm", i)
		}
		docs[i] = d
	}
	return docs
}

// synthAnnotation writes an annotation in the corpus's class vocabulary
// (so the query mix has ground-truth signal) plus neutral padding.
func synthAnnotation(rng *rand.Rand, classes []int) string {
	neutral := []string{"photo", "view", "scene", "shot", "wide", "bright"}
	var words []string
	for _, c := range classes {
		cw := corpus.ClassWords(c)
		words = append(words, cw[rng.Intn(len(cw))])
	}
	for n := rng.Intn(3); n > 0; n-- {
		words = append(words, neutral[rng.Intn(len(neutral))])
	}
	return strings.Join(words, " ")
}

// skewedName searches name suffixes until the engine's routing function
// places the document's URL on the target shard. 512 candidates make a
// miss astronomically unlikely for any real shard count; if every suffix
// misses, the plain name stands and the doc routes wherever the hash
// says (recorded faithfully in Shard).
func skewedName(baseURL string, i, target, shards int) (string, int) {
	for s := 0; s < 512; s++ {
		name := fmt.Sprintf("%05d-%03x.ppm", i, s)
		if core.ShardOf(baseURL+"/img/"+name, shards) == target {
			return name, target
		}
	}
	name := fmt.Sprintf("%05d.ppm", i)
	return name, core.ShardOf(baseURL+"/img/"+name, shards)
}

// synthQueries builds the zipf-weighted query mix over the corpus class
// vocabulary: rank r gets weight 1/(r+1)^s. Texts mix canonical
// single-term queries with two-term combinations, the shapes the paper's
// Section 3 scenario serves.
func synthQueries(spec Spec) []Query {
	rng := subRNG(spec.Seed, "queries")
	n := spec.Queries
	if n <= 0 {
		n = 1
	}
	seen := map[string]bool{}
	out := make([]Query, 0, n)
	var norm float64
	for len(out) < n {
		var text string
		c1 := rng.Intn(len(media.Classes))
		if rng.Intn(2) == 0 {
			text = corpus.CanonicalTerm(c1)
		} else {
			cw := corpus.ClassWords(rng.Intn(len(media.Classes)))
			text = corpus.CanonicalTerm(c1) + " " + cw[rng.Intn(len(cw))]
		}
		if seen[text] {
			continue
		}
		seen[text] = true
		w := 1 / math.Pow(float64(len(out)+1), spec.ZipfS)
		out = append(out, Query{Text: text, Weight: w})
		norm += w
	}
	for i := range out {
		out[i].Weight /= norm
	}
	return out
}

// synthSessions picks feedback session seed texts from the query mix's
// vocabulary (sessions rank, judge, and re-rank around these).
func synthSessions(spec Spec) []string {
	rng := subRNG(spec.Seed, "sessions")
	n := spec.Sessions
	if n <= 0 {
		n = 1
	}
	out := make([]string, n)
	for i := range out {
		out[i] = corpus.CanonicalTerm(rng.Intn(len(media.Classes)))
	}
	return out
}

// synthBursts splits the stream (docs after the preload) into bursts at
// sorted random offsets; every stream document belongs to exactly one
// burst, so replaying all bursts ingests the whole stream in order.
func synthBursts(spec Spec) []Burst {
	stream := spec.Docs - spec.Preload
	if stream <= 0 {
		return nil
	}
	n := spec.Bursts
	if n <= 0 {
		n = 1
	}
	if n > stream {
		n = stream
	}
	rng := subRNG(spec.Seed, "bursts")
	cuts := map[int]bool{0: true}
	for len(cuts) < n {
		cuts[rng.Intn(stream)] = true
	}
	offsets := make([]int, 0, n)
	for c := range cuts {
		offsets = append(offsets, c)
	}
	sort.Ints(offsets)
	out := make([]Burst, n)
	for i, off := range offsets {
		end := stream
		if i+1 < n {
			end = offsets[i+1]
		}
		out[i] = Burst{Start: off, Count: end - off}
	}
	return out
}

// URL returns the document's media-server URL — the identity the store,
// the shards and the oracle all key on.
func (d *Doc) URL(baseURL string) string {
	return strings.TrimRight(baseURL, "/") + "/img/" + d.Name
}

// Item regenerates the document's full corpus item (raster included)
// from its seed — deterministic, so a re-run or a restarted media server
// serves byte-identical pixels.
func (d *Doc) Item(baseURL string, w, h int) *corpus.Item {
	rng := rand.New(rand.NewSource(d.Seed))
	scene := media.GenerateScene(rng, w, h, d.Classes)
	return &corpus.Item{
		URL:        d.URL(baseURL),
		Scene:      scene,
		Annotation: d.Annotation,
		Classes:    append([]int(nil), d.Classes...),
	}
}

// Sampler returns a deterministic weighted sampler over the query mix.
func (sc *Scenario) Sampler(seed int64) func() Query {
	rng := rand.New(rand.NewSource(seed))
	cum := make([]float64, len(sc.Queries))
	var acc float64
	for i, q := range sc.Queries {
		acc += q.Weight
		cum[i] = acc
	}
	return func() Query {
		x := rng.Float64() * acc
		i := sort.SearchFloat64s(cum, x)
		if i >= len(sc.Queries) {
			i = len(sc.Queries) - 1
		}
		return sc.Queries[i]
	}
}
