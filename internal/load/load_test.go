package load

import (
	"testing"
	"time"
)

// The full harness, end to end, on both topologies: mixed read/write load
// over a live daemon, two mid-run faults, zero oracle violations, and a
// report with latency quantiles for every operation class.
func TestRunBothTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("full soak smoke; run without -short")
	}
	for _, tc := range []struct {
		name   string
		shards int
	}{{"single", 0}, {"sharded", 2}} {
		t.Run(tc.name, func(t *testing.T) {
			spec := DefaultSpec()
			spec.Docs, spec.Preload, spec.W, spec.H = 32, 20, 16, 16
			spec.Queries, spec.Sessions, spec.Bursts = 8, 3, 2
			rep, err := Run(Options{
				Spec:            spec,
				Bin:             mirrordBin,
				StoreDir:        t.TempDir(),
				Shards:          tc.shards,
				Duration:        2500 * time.Millisecond,
				QueryWorkers:    2,
				FeedbackWorkers: 1,
				K:               8,
				Faults:          []Fault{FaultKillDuringPublish, FaultTornWAL},
				Logf:            t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Faults) != 2 || rep.Restarts != 2 {
				t.Fatalf("faults not injected: %+v", rep.Faults)
			}
			if rep.Oracle.Checked == 0 || rep.Oracle.Violations != 0 {
				t.Fatalf("oracle: %+v", rep.Oracle)
			}
			// Every operation class must have seen traffic and carry
			// sane quantiles.
			for _, op := range []string{"query", "query_dual", "ingest", "feedback", "refresh", "checkpoint"} {
				o, ok := rep.Ops[op]
				if !ok || o.Count == 0 {
					t.Fatalf("op %q saw no successful traffic: %+v", op, rep.Ops)
				}
				if o.P50us > o.P95us || o.P95us > o.P99us || o.P99us > o.MaxUs {
					t.Fatalf("op %q: quantiles not monotone: %+v", op, o)
				}
			}
			if rep.FinalEpoch == 0 || rep.FinalDocs < spec.Preload {
				t.Fatalf("bad final state: %+v", rep)
			}
			// Default codec is block: the query traffic above must have
			// decoded postings blocks, and the counters must survive the
			// Stats RPC hop into the report.
			if rep.BlocksDecoded == 0 {
				t.Fatalf("no blocks decoded in report: %+v", rep)
			}
		})
	}
}

// The full harness over the distributed topology: the same mixed
// workload driven through the shard router, with member kills and a
// follower WAL tear mid-run — zero oracle violations end to end.
func TestRunDistributedTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("full soak smoke; run without -short")
	}
	spec := DefaultSpec()
	spec.Docs, spec.Preload, spec.W, spec.H = 32, 20, 16, 16
	spec.Queries, spec.Sessions, spec.Bursts = 8, 3, 2
	rep, err := Run(Options{
		Spec:            spec,
		Bin:             mirrordBin,
		StoreDir:        t.TempDir(),
		Shards:          3,
		Replicas:        2,
		Duration:        2500 * time.Millisecond,
		QueryWorkers:    2,
		FeedbackWorkers: 1,
		K:               8,
		Faults:          []Fault{FaultKillShardDuringRefresh, FaultTornFollowerWAL},
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Topology != "distributed-3x2" {
		t.Fatalf("topology label = %q", rep.Topology)
	}
	if len(rep.Faults) != 2 || rep.Restarts != 2 {
		t.Fatalf("faults not injected: %+v", rep.Faults)
	}
	if rep.Oracle.Checked == 0 || rep.Oracle.Violations != 0 {
		t.Fatalf("oracle: %+v", rep.Oracle)
	}
	// Checkpoint ticks are sparse enough that one can collide with a
	// member's downtime; every other class must have succeeded traffic.
	for _, op := range []string{"query", "query_dual", "ingest", "feedback", "refresh"} {
		o, ok := rep.Ops[op]
		if !ok || o.Count == 0 {
			t.Fatalf("op %q saw no successful traffic: %+v", op, rep.Ops)
		}
		if o.P50us > o.P95us || o.P95us > o.P99us || o.P99us > o.MaxUs {
			t.Fatalf("op %q: quantiles not monotone: %+v", op, o)
		}
	}
	if rep.FinalEpoch == 0 || rep.FinalDocs < spec.Preload {
		t.Fatalf("bad final state: %+v", rep)
	}
	// The router runs no scans itself: a nonzero counter proves the
	// router-side aggregation reached the shard members.
	if rep.BlocksDecoded == 0 {
		t.Fatalf("no blocks decoded in report: %+v", rep)
	}
}
