package load

import (
	"encoding/json"
	"fmt"
	"os"
)

// OpReport summarises one operation class's latency histogram (microseconds).
type OpReport struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	P50us  uint64  `json:"p50_us"`
	P95us  uint64  `json:"p95_us"`
	P99us  uint64  `json:"p99_us"`
	MaxUs  uint64  `json:"max_us"`
	MeanUs float64 `json:"mean_us"`
}

// summarize folds a histogram into its report form.
func summarize(h *Hist, errors uint64) OpReport {
	return OpReport{
		Count:  h.Count(),
		Errors: errors,
		P50us:  h.Quantile(0.50),
		P95us:  h.Quantile(0.95),
		P99us:  h.Quantile(0.99),
		MaxUs:  h.Max(),
		MeanUs: h.Mean(),
	}
}

// TopologyReport is one topology's full run outcome.
type TopologyReport struct {
	Topology   string              `json:"topology"` // "single" or "sharded-N"
	Spec       Spec                `json:"spec"`
	Ops        map[string]OpReport `json:"ops"` // keyed by op class
	Faults     []*FaultReport      `json:"faults"`
	Oracle     OracleReport        `json:"oracle"`
	FinalDocs  int                 `json:"final_docs"`
	FinalEpoch int64               `json:"final_epoch"`
	Restarts   int                 `json:"restarts"`

	// Block-max scan counters at quiesce, as reported by the daemon's
	// Stats RPC (on the distributed topology, summed over shard
	// primaries by the router). Fresh child processes per topology, so
	// these are per-run totals, not machine-lifetime ones.
	BlocksDecoded int64 `json:"blocks_decoded"`
	BlocksSkipped int64 `json:"blocks_skipped"`
}

// OracleReport counts exactness verifications: every stamped query answer
// checked bit-exact against a one-shot rebuild of its epoch's doc prefix.
type OracleReport struct {
	Checked    uint64 `json:"checked"`
	Violations uint64 `json:"violations"`
}

// Report is the BENCH_load.json payload.
type Report struct {
	Seed       int64             `json:"seed"`
	Topologies []*TopologyReport `json:"topologies"`
}

// WriteReport writes the report as deterministic, indented JSON
// (encoding/json sorts map keys, so equal runs give equal bytes).
func WriteReport(path string, r *Report) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("load: write report: %w", err)
	}
	return nil
}
