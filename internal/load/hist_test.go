package load

import (
	"math/rand"
	"testing"
)

// Buckets must tile the value space: every value maps to a bucket whose
// range contains it, bucket maxima are strictly increasing, and values
// below 64 are exact.
func TestHistBucketMath(t *testing.T) {
	for v := uint64(0); v < 64; v++ {
		if got := bucketOf(v); got != int(v) {
			t.Fatalf("bucketOf(%d) = %d, want exact", v, got)
		}
		if got := bucketMax(int(v)); got != v {
			t.Fatalf("bucketMax(%d) = %d, want exact", v, got)
		}
	}
	prev := uint64(0)
	for idx := 1; idx < histBuckets; idx++ {
		m := bucketMax(idx)
		if m <= prev {
			t.Fatalf("bucketMax not increasing at %d: %d <= %d", idx, m, prev)
		}
		// The bucket's own max and the first value past the previous
		// bucket must both map back to this bucket.
		if got := bucketOf(m); got != idx {
			t.Fatalf("bucketOf(bucketMax(%d)=%d) = %d", idx, m, got)
		}
		if got := bucketOf(prev + 1); got != idx {
			t.Fatalf("bucketOf(%d) = %d, want %d", prev+1, got, idx)
		}
		prev = m
	}
}

// The bucket granularity bounds the relative error: for any value, the
// reported upper bound overshoots by at most 1/32 of the magnitude.
func TestHistRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		v := uint64(rng.Int63n(1 << 40))
		ub := bucketMax(bucketOf(v))
		if ub < v {
			t.Fatalf("upper bound %d below value %d", ub, v)
		}
		if v >= 64 && float64(ub-v) > float64(v)*0.04 {
			t.Fatalf("relative error %.4f too large at %d (ub %d)",
				float64(ub-v)/float64(v), v, ub)
		}
	}
}

func TestHistQuantilesAndMerge(t *testing.T) {
	var a, b Hist
	// 1..1000 split across two worker histograms.
	for v := uint64(1); v <= 500; v++ {
		a.Observe(v)
	}
	for v := uint64(501); v <= 1000; v++ {
		b.Observe(v)
	}
	var h Hist
	h.Merge(&a)
	h.Merge(&b)
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("max %d", h.Max())
	}
	if m := h.Mean(); m != 500.5 {
		t.Fatalf("mean %v, want exact 500.5", m)
	}
	for _, tc := range []struct {
		q    float64
		want uint64
	}{{0.50, 500}, {0.95, 950}, {0.99, 990}, {1.0, 1000}} {
		got := h.Quantile(tc.q)
		if got < tc.want || float64(got-tc.want) > float64(tc.want)*0.04 {
			t.Fatalf("q%.2f = %d, want within 4%% above %d", tc.q, got, tc.want)
		}
	}
	var empty Hist
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 || empty.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

// The exact max caps quantile upper bounds: a single huge observation must
// be reported exactly, not rounded up to its bucket ceiling.
func TestHistMaxCapsQuantile(t *testing.T) {
	var h Hist
	h.Observe(1_000_003)
	if got := h.Quantile(1.0); got != 1_000_003 {
		t.Fatalf("q1.0 = %d, want exact max", got)
	}
}
