package load

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mirror/internal/core"
)

// Fault names one crash-matrix entry from docs/OPERATIONS.md. Every fault
// ends the same way — SIGKILL, then a restart over the surviving store —
// and differs only in what the daemon was doing when the lights went out.
type Fault string

const (
	// FaultKillDuringPublish crashes the daemon while a Refresh is
	// building and publishing a new snapshot epoch. Recovery must land in
	// the catch-up branch: the checkpointed epoch serves, WAL-replayed
	// documents show as pending, and a catch-up refresh re-publishes them.
	FaultKillDuringPublish Fault = "kill-during-publish"

	// FaultKillDuringCheckpoint crashes the daemon mid-checkpoint.
	// Recovery must reopen the previous consistent manifest (checkpoints
	// publish atomically) and replay the intact WAL over it.
	FaultKillDuringCheckpoint Fault = "kill-during-checkpoint"

	// FaultTornWAL crashes the daemon and then tears the WAL tail on
	// disk — the torn-write shape of a power cut. Recovery must detect
	// the tear, truncate to the last consistent record, and log the
	// "truncated a torn WAL tail" warning; the dropped suffix is
	// re-ingested from the media server by the startup crawl.
	FaultTornWAL Fault = "torn-wal"

	// FaultKillShardDuringQuery SIGKILLs a networked shard primary while
	// a scatter-gather query is in flight through the router. The router
	// must fail the leg over to the shard's follower (or report a typed
	// error), and the restarted primary must recover its store and rejoin.
	FaultKillShardDuringQuery Fault = "kill-shard-during-query"

	// FaultKillShardDuringRefresh SIGKILLs a shard primary while the
	// router is fanning out a publish round. The epoch vector only
	// advances on a full ack, so the surviving epoch keeps serving and a
	// later refresh re-publishes the round.
	FaultKillShardDuringRefresh Fault = "kill-shard-during-refresh"

	// FaultKillShardDuringCheckpoint SIGKILLs a shard primary while the
	// router's checkpoint fan-out is writing its store. Checkpoints
	// publish atomically per member, so recovery reopens the previous
	// manifest and replays the intact WAL.
	FaultKillShardDuringCheckpoint Fault = "kill-shard-during-checkpoint"

	// FaultTornFollowerWAL SIGKILLs a replication follower and tears the
	// WAL its shipped stream was persisted into. The restarted follower
	// must truncate the torn tail, then converge back onto the primary's
	// published epoch through the resync path.
	FaultTornFollowerWAL Fault = "torn-follower-wal"
)

// AllFaults lists every single-daemon injectable fault, in injection order.
func AllFaults() []Fault {
	return []Fault{FaultKillDuringPublish, FaultKillDuringCheckpoint, FaultTornWAL}
}

// AllDistFaults lists every distributed-topology fault, in injection order.
func AllDistFaults() []Fault {
	return []Fault{
		FaultKillShardDuringQuery, FaultKillShardDuringRefresh,
		FaultKillShardDuringCheckpoint, FaultTornFollowerWAL,
	}
}

// FaultReport records what one injection did and what recovery looked like.
type FaultReport struct {
	Fault        Fault         `json:"fault"`
	TornTailSeen bool          `json:"torn_tail_seen"` // recovery logged the torn-tail warning
	WALTorn      bool          `json:"wal_torn"`       // injector performed WAL surgery
	Downtime     time.Duration `json:"downtime_ns"`    // kill → ready again
}

// Inject executes one fault against a running daemon and brings it back:
// provoke the interesting moment, SIGKILL, (for FaultTornWAL) perform the
// WAL surgery, restart, and block until the RPC surface serves again.
// storeDir is the daemon's -store directory, needed for the WAL surgery.
func Inject(d *Daemon, f Fault, storeDir string) (*FaultReport, error) {
	rep := &FaultReport{Fault: f}
	switch f {
	case FaultKillDuringPublish:
		fireAsync(d.Addr, func(c *core.Client) { c.Refresh() })
	case FaultKillDuringCheckpoint:
		fireAsync(d.Addr, func(c *core.Client) { c.Checkpoint() })
	case FaultTornWAL:
		// Nothing to provoke: the tear happens post-mortem.
	default:
		return nil, fmt.Errorf("load: unknown fault %q", f)
	}
	mark := len(d.Output())
	start := time.Now()
	if err := d.Kill(); err != nil {
		return nil, err
	}
	if f == FaultTornWAL {
		torn, err := TearWAL(storeDir)
		if err != nil {
			return nil, err
		}
		rep.WALTorn = torn
	}
	if err := d.Start(); err != nil {
		return nil, err
	}
	if err := d.WaitReady(60 * time.Second); err != nil {
		return nil, fmt.Errorf("load: recovery after %s: %w", f, err)
	}
	rep.Downtime = time.Since(start)
	rep.TornTailSeen = strings.Contains(d.Output()[mark:], "truncated a torn WAL tail")
	return rep, nil
}

// fireAsync dials the daemon and runs one RPC on a goroutine; the call is
// expected to die mid-flight when the daemon is killed, so errors (and the
// connection) are abandoned. A short grace period lets the RPC reach the
// server and start the operation before the caller pulls the trigger.
func fireAsync(addr string, call func(*core.Client)) {
	c, err := core.DialMirror(addr)
	if err != nil {
		return // daemon already gone; the kill proceeds regardless
	}
	go func() {
		defer c.Close()
		call(c)
	}()
	time.Sleep(15 * time.Millisecond)
}

// TearWAL damages the store's WAL tail the way a torn write would: the
// last bytes of the newest non-empty WAL (standalone wal.log or any
// shard-NNN/wal.log) are cut mid-record. When every WAL is empty (a
// checkpoint just reset them) a partial garbage frame is appended
// instead — both shapes must make recovery truncate to the last valid
// record. Returns whether any surgery was performed.
func TearWAL(storeDir string) (bool, error) {
	wals := walFiles(storeDir)
	if len(wals) == 0 {
		return false, fmt.Errorf("load: no wal.log under %s", storeDir)
	}
	// Prefer the largest WAL: most records, so the tear is guaranteed to
	// land inside one.
	sort.Slice(wals, func(i, j int) bool { return wals[i].size > wals[j].size })
	w := wals[0]
	if w.size >= 8 {
		return true, os.Truncate(w.path, w.size-3)
	}
	f, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return false, err
	}
	defer f.Close()
	// A plausible length prefix followed by nothing: a frame whose body
	// never hit the disk.
	_, err = f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad})
	return err == nil, err
}

type walFile struct {
	path string
	size int64
}

// walFiles finds every WAL in a store directory, standalone or sharded.
func walFiles(storeDir string) []walFile {
	var out []walFile
	add := func(p string) {
		if st, err := os.Stat(p); err == nil {
			out = append(out, walFile{path: p, size: st.Size()})
		}
	}
	add(filepath.Join(storeDir, "wal.log"))
	shards, _ := filepath.Glob(filepath.Join(storeDir, "shard-*", "wal.log"))
	sort.Strings(shards)
	for _, p := range shards {
		add(p)
	}
	return out
}
