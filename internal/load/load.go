package load

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"mirror/internal/core"
	"mirror/internal/dict"
	"mirror/internal/mediaserver"
)

// Options configures one harness run against one topology.
type Options struct {
	Spec     Spec
	Bin      string // mirrord binary to supervise
	StoreDir string // daemon -store directory (fresh per run)
	Shards   int    // <=1: single store; else sharded topology
	Replicas int    // >0: networked router over Shards shard daemons with this many stores each
	Topology string // report label; derived from Shards/Replicas when empty

	Duration        time.Duration // steady-state workload window
	QueryWorkers    int
	FeedbackWorkers int
	K               int           // top-k for ranked queries
	Faults          []Fault       // injected at evenly spaced points in the window
	RefreshEvery    time.Duration // harness-driven publish cadence
	CheckpointEvery time.Duration // harness-driven checkpoint cadence

	Logf func(format string, args ...any) // optional narrator; nil = silent
}

func (o *Options) defaults() {
	if o.Replicas > 0 && o.Shards < 1 {
		o.Shards = 1
	}
	if o.Shards > 1 {
		o.Spec.Shards = o.Shards
	}
	if o.Topology == "" {
		switch {
		case o.Replicas > 0:
			o.Topology = fmt.Sprintf("distributed-%dx%d", o.Shards, o.Replicas)
		case o.Shards > 1:
			o.Topology = fmt.Sprintf("sharded-%d", o.Shards)
		default:
			o.Topology = "single"
		}
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.QueryWorkers <= 0 {
		o.QueryWorkers = 4
	}
	if o.FeedbackWorkers <= 0 {
		o.FeedbackWorkers = 2
	}
	if o.K <= 0 {
		o.K = 10
	}
	if o.RefreshEvery <= 0 {
		o.RefreshEvery = 400 * time.Millisecond
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 900 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// metrics aggregates per-op-class latency histograms and error counts.
// One mutex for everything: the critical section is nanoseconds against
// RPC round trips of microseconds to milliseconds.
type metrics struct {
	mu         sync.Mutex
	hists      map[string]*Hist
	errs       map[string]uint64
	checked    uint64
	violations uint64
	firstViol  error
}

func newMetrics() *metrics {
	return &metrics{hists: map[string]*Hist{}, errs: map[string]uint64{}}
}

func (m *metrics) observe(op string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.hists[op]
	if h == nil {
		h = &Hist{}
		m.hists[op] = h
	}
	h.Observe(uint64(d.Microseconds()))
}

func (m *metrics) fail(op string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.errs[op]++
}

func (m *metrics) verified(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.checked++
	if err != nil {
		m.violations++
		if m.firstViol == nil {
			m.firstViol = err
		}
	}
}

// rpcWorker is one worker's connection, redialed lazily after any error —
// mid-run kills sever every connection, and recovery is "dial again".
type rpcWorker struct {
	addr string
	c    *core.Client
}

func (w *rpcWorker) client() (*core.Client, error) {
	if w.c == nil {
		c, err := core.DialMirror(w.addr)
		if err != nil {
			return nil, err
		}
		w.c = c
	}
	return w.c, nil
}

func (w *rpcWorker) drop() {
	if w.c != nil {
		w.c.Close()
		w.c = nil
	}
}

// stopped polls the stop channel without blocking.
func stopped(stop <-chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// freeAddr reserves an ephemeral localhost port and releases it, so the
// daemon can bind the same fixed address across every restart.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// Run executes the scenario against a live supervised mirrord: media
// server and dictionary in-process, the daemon as a child process driven
// over its real RPC surface by closed-loop workers, faults injected
// mid-run, and every stamped annotation-query answer verified bit-exact
// against the oracle's one-shot rebuild of the answering epoch's prefix.
//
// The scenario is synthesized here, not passed in: shard-skew name search
// hashes full URLs, so synthesis needs the live media server's base URL.
func Run(o Options) (*TopologyReport, error) {
	o.defaults()
	spec := o.Spec

	dictAddr, stopDict, err := dict.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer stopDict()

	// Listen before synthesizing: the base URL is an input of synthesis.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	base := "http://" + l.Addr().String()
	sc, err := Synthesize(spec, base)
	if err != nil {
		l.Close()
		return nil, err
	}

	// Media server and oracle learn every document before the daemon can:
	// preload now, stream documents inside the ingest worker below. That
	// ordering is what keeps post-crash re-crawls prefix-shaped.
	oracle := core.NewOracle()
	media := mediaserver.NewServer(nil)
	for i := 0; i < spec.Preload; i++ {
		it := sc.Docs[i].Item(sc.BaseURL, spec.W, spec.H)
		media.Add(it)
		oracle.AddDoc(it.URL, it.Annotation)
	}
	srv := &http.Server{Handler: media}
	go srv.Serve(l)
	defer srv.Close()

	if o.Replicas > 0 {
		return runDistributed(o, sc, oracle, media, dictAddr)
	}

	addr, err := freeAddr()
	if err != nil {
		return nil, err
	}
	args := []string{
		"-dict", dictAddr, "-media", base, "-addr", addr,
		"-store", o.StoreDir, "-local-pipeline", "-wal-sync",
		"-refresh-every", "0", "-checkpoint-every", "0",
	}
	if o.Shards > 1 {
		args = append(args, "-shards", strconv.Itoa(o.Shards))
	}
	d := &Daemon{Bin: o.Bin, Args: args, Addr: addr}
	o.Logf("load[%s]: starting %s (%d preloaded docs)", o.Topology, o.Bin, spec.Preload)
	if err := d.Start(); err != nil {
		return nil, err
	}
	defer d.Kill() // no-op after a clean Stop
	if err := d.WaitReady(2 * time.Minute); err != nil {
		return nil, err
	}

	met := newMetrics()
	stop, wg := startWorkers(o, sc, media, oracle, addr, met)

	faults, err := faultWindow(o, stop, wg, func(f Fault) (*FaultReport, error) {
		return Inject(d, f, o.StoreDir)
	})
	if err != nil {
		return nil, err
	}

	st, err := quiesce(o, sc, oracle, addr, met)
	if err != nil {
		return nil, err
	}
	if err := d.Stop(30 * time.Second); err != nil {
		return nil, fmt.Errorf("load: shutdown: %w", err)
	}
	return buildReport(o, met, faults, st)
}

// startWorkers launches the closed-loop workload against one RPC address
// (a standalone daemon or the distributed router — same surface either
// way), returning the stop channel and waitgroup that control it.
func startWorkers(o Options, sc *Scenario, media *mediaserver.Server, oracle *core.Oracle, addr string, met *metrics) (chan struct{}, *sync.WaitGroup) {
	stop := make(chan struct{})
	wg := &sync.WaitGroup{}
	for i := 0; i < o.QueryWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			queryWorker(i, o, sc, oracle, addr, met, stop)
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ingestWorker(o, sc, media, oracle, addr, met, stop)
	}()
	for i := 0; i < o.FeedbackWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			feedbackWorker(i, o, sc, addr, met, stop)
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		tickWorker("refresh", o.RefreshEvery, addr, met, stop,
			func(c *core.Client) error { _, err := c.Refresh(); return err })
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		tickWorker("checkpoint", o.CheckpointEvery, addr, met, stop,
			func(c *core.Client) error { _, err := c.Checkpoint(); return err })
	}()
	return stop, wg
}

// faultWindow serves the steady-state window with faults injected at
// evenly spaced points (the window's remainder runs out after the last
// recovery), then stops the workers. The injector is topology-specific.
func faultWindow(o Options, stop chan struct{}, wg *sync.WaitGroup, inject func(Fault) (*FaultReport, error)) ([]*FaultReport, error) {
	faults := make([]*FaultReport, 0, len(o.Faults))
	start := time.Now()
	for i, f := range o.Faults {
		at := time.Duration(float64(o.Duration) * float64(i+1) / float64(len(o.Faults)+1))
		if wait := at - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		o.Logf("load[%s]: injecting fault %s", o.Topology, f)
		fr, err := inject(f)
		if err != nil {
			close(stop)
			wg.Wait()
			return nil, err
		}
		o.Logf("load[%s]: recovered from %s in %v (torn tail logged: %v)",
			o.Topology, f, fr.Downtime.Round(time.Millisecond), fr.TornTailSeen)
		faults = append(faults, fr)
	}
	if rest := o.Duration - time.Since(start); rest > 0 {
		time.Sleep(rest)
	}
	close(stop)
	wg.Wait()
	return faults, nil
}

// buildReport folds the run's metrics into the topology report, failing
// the run if the oracle ever disagreed with a served answer.
func buildReport(o Options, met *metrics, faults []*FaultReport, st *core.StatsReply) (*TopologyReport, error) {
	rep := &TopologyReport{
		Topology:   o.Topology,
		Spec:       o.Spec,
		Ops:        map[string]OpReport{},
		Faults:     faults,
		FinalDocs:  st.EpochDocs,
		FinalEpoch: st.Epoch,
		Restarts:   len(faults),

		BlocksDecoded: st.BlocksDecoded,
		BlocksSkipped: st.BlocksSkipped,
	}
	met.mu.Lock()
	for op, h := range met.hists {
		rep.Ops[op] = summarize(h, met.errs[op])
	}
	for op, e := range met.errs {
		if _, ok := rep.Ops[op]; !ok {
			rep.Ops[op] = OpReport{Errors: e}
		}
	}
	rep.Oracle = OracleReport{Checked: met.checked, Violations: met.violations}
	viol := met.firstViol
	met.mu.Unlock()
	if viol != nil {
		return rep, fmt.Errorf("load: oracle violation (%d of %d checks): %w",
			rep.Oracle.Violations, rep.Oracle.Checked, viol)
	}
	return rep, nil
}

// queryWorker hammers ranked queries, alternating annotation-only and
// dual-coding. Annotation answers are stamped with the serving epoch and
// verified against the oracle; dual-coding answers depend on the content
// pipeline and are exercised for load and stability only.
func queryWorker(i int, o Options, sc *Scenario, oracle *core.Oracle, addr string, met *metrics, stop <-chan struct{}) {
	w := &rpcWorker{addr: addr}
	defer w.drop()
	sample := sc.Sampler(sc.Spec.Seed ^ int64(0x5151*(i+1)))
	dual := i%2 == 1
	for !stopped(stop) {
		q := sample()
		dual = !dual
		op := "query"
		if dual {
			op = "query_dual"
		}
		c, err := w.client()
		if err != nil {
			met.fail(op)
			sleepOrStop(stop, 20*time.Millisecond)
			continue
		}
		t0 := time.Now()
		reply, err := c.TextQueryStamped(q.Text, o.K, dual)
		if err != nil {
			met.fail(op)
			w.drop()
			continue
		}
		met.observe(op, time.Since(t0))
		if !dual && reply.EpochDocs > 0 {
			met.verified(oracle.VerifyHits(reply.EpochDocs, q.Text, o.K, reply.Hits))
		}
	}
}

// ingestWorker streams the post-preload documents in bursts, in order,
// alone: a single writer keeps "media server, then oracle, then RPC" a
// strict per-document sequence, so the collection is always a prefix of
// the scenario stream no matter where a crash lands.
func ingestWorker(o Options, sc *Scenario, media *mediaserver.Server, oracle *core.Oracle, addr string, met *metrics, stop <-chan struct{}) {
	w := &rpcWorker{addr: addr}
	defer w.drop()
	spec := sc.Spec
	start := time.Now()
	for bi, b := range sc.Bursts {
		at := time.Duration(float64(o.Duration) * float64(bi) / float64(len(sc.Bursts)))
		for time.Since(start) < at {
			if stopped(stop) {
				return
			}
			sleepOrStop(stop, 10*time.Millisecond)
		}
		for j := 0; j < b.Count; j++ {
			if stopped(stop) {
				return
			}
			doc := &sc.Docs[spec.Preload+b.Start+j]
			it := doc.Item(sc.BaseURL, spec.W, spec.H)
			media.Add(it)
			oracle.AddDoc(it.URL, it.Annotation)
			var ppm bytes.Buffer
			if err := it.Scene.Img.EncodePPM(&ppm); err != nil {
				met.fail("ingest")
				continue
			}
			for { // retry across crashes until the daemon has the document
				c, err := w.client()
				if err == nil {
					t0 := time.Now()
					_, err = c.AddImage(it.URL, it.Annotation, ppm.Bytes())
					if err == nil {
						met.observe("ingest", time.Since(t0))
						break
					}
					if strings.Contains(err.Error(), "already in library") {
						break // a recovery crawl beat us to it; same outcome
					}
					met.fail("ingest")
					w.drop()
				} else {
					met.fail("ingest")
				}
				if stopped(stop) {
					return
				}
				sleepOrStop(stop, 25*time.Millisecond)
			}
		}
	}
}

// feedbackWorker runs multi-turn relevance feedback sessions: start, rank,
// judge (best hit relevant, worst nonrelevant), re-rank, end. Server
// restarts kill server-side sessions — the worker just starts a new one.
func feedbackWorker(i int, o Options, sc *Scenario, addr string, met *metrics, stop <-chan struct{}) {
	w := &rpcWorker{addr: addr}
	defer w.drop()
	rng := rand.New(rand.NewSource(sc.Spec.Seed ^ int64(0x9d9d*(i+1))))
	for !stopped(stop) {
		text := sc.Sessions[rng.Intn(len(sc.Sessions))]
		c, err := w.client()
		if err != nil {
			met.fail("feedback")
			sleepOrStop(stop, 25*time.Millisecond)
			continue
		}
		id, err := c.SessionStart(text)
		if err != nil {
			met.fail("feedback")
			w.drop()
			sleepOrStop(stop, 25*time.Millisecond)
			continue
		}
		clean := true
		for round := 0; round < 3 && !stopped(stop); round++ {
			t0 := time.Now()
			rr, err := c.SessionRun(id, o.K)
			if err != nil {
				met.fail("feedback")
				w.drop()
				clean = false
				break
			}
			met.observe("feedback", time.Since(t0))
			if len(rr.Hits) == 0 {
				break
			}
			rel := []uint64{rr.Hits[0].OID}
			var non []uint64
			if len(rr.Hits) > 1 {
				non = append(non, rr.Hits[len(rr.Hits)-1].OID)
			}
			if _, err := c.SessionFeedback(id, rel, non); err != nil {
				met.fail("feedback")
				w.drop()
				clean = false
				break
			}
		}
		if clean {
			c.SessionEnd(id)
		}
	}
}

// tickWorker drives one maintenance RPC (refresh/checkpoint) on a cadence;
// the daemon runs with its own timers off so the harness owns the moments
// these operations fire — which is what makes the kill-during-X faults
// land where they aim.
func tickWorker(op string, every time.Duration, addr string, met *metrics, stop <-chan struct{}, call func(*core.Client) error) {
	w := &rpcWorker{addr: addr}
	defer w.drop()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		c, err := w.client()
		if err != nil {
			met.fail(op)
			continue
		}
		t0 := time.Now()
		if err := call(c); err != nil {
			met.fail(op)
			w.drop()
			continue
		}
		met.observe(op, time.Since(t0))
	}
}

// quiesce refreshes until the daemon is current over everything ingested,
// then runs the whole query mix once against the final epoch, verifying
// every answer — the end-to-end statement of the soak invariant.
func quiesce(o Options, sc *Scenario, oracle *core.Oracle, addr string, met *metrics) (*core.StatsReply, error) {
	c, err := core.DialMirror(addr)
	if err != nil {
		return nil, fmt.Errorf("load: quiesce dial: %w", err)
	}
	defer c.Close()
	var st *core.StatsReply
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if _, err := c.Refresh(); err != nil {
			return nil, fmt.Errorf("load: quiesce refresh: %w", err)
		}
		st, err = c.Stats()
		if err != nil {
			return nil, fmt.Errorf("load: quiesce stats: %w", err)
		}
		if st.Pending == 0 && st.Current {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("load: daemon never became current (%d pending)", st.Pending)
		}
		time.Sleep(50 * time.Millisecond)
	}
	o.Logf("load[%s]: quiesced at epoch %d over %d docs; final verification battery (%d queries)",
		o.Topology, st.Epoch, st.EpochDocs, len(sc.Queries))
	for _, q := range sc.Queries {
		reply, err := c.TextQueryStamped(q.Text, o.K, false)
		if err != nil {
			return nil, fmt.Errorf("load: final battery %q: %w", q.Text, err)
		}
		met.verified(oracle.VerifyHits(reply.EpochDocs, q.Text, o.K, reply.Hits))
	}
	return st, nil
}

// sleepOrStop sleeps unless the stop channel closes first.
func sleepOrStop(stop <-chan struct{}, d time.Duration) {
	select {
	case <-stop:
	case <-time.After(d):
	}
}
