package load

import (
	"strings"
	"testing"
	"time"
)

// The supervisor's process lifecycle, without a daemon: output capture,
// running state, kill, and double-start rejection.
func TestDaemonLifecycle(t *testing.T) {
	d := &Daemon{Bin: "/bin/sh", Args: []string{"-c", "echo booting; exec sleep 60"}}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err == nil {
		d.Kill()
		t.Fatal("double Start must fail")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(d.Output(), "booting") {
		if time.Now().After(deadline) {
			t.Fatalf("output never captured: %q", d.Output())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !d.Running() {
		t.Fatal("Running() false while child alive")
	}
	if err := d.Kill(); err != nil {
		t.Fatal(err)
	}
	if d.Running() {
		t.Fatal("Running() true after Kill")
	}
	if err := d.Kill(); err != nil {
		t.Fatalf("idempotent Kill: %v", err)
	}
	// Output survives the kill, and a restart appends to it.
	d.Args = []string{"-c", "echo rebooting; exec sleep 60"}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Kill()
	deadline = time.Now().Add(5 * time.Second)
	for !strings.Contains(d.Output(), "rebooting") {
		if time.Now().After(deadline) {
			t.Fatalf("restart output not appended: %q", d.Output())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(d.Output(), "booting") {
		t.Fatal("pre-kill output lost across restart")
	}
}

// WaitReady must fail fast, with the child's output attached, when the
// child dies before ever serving.
func TestDaemonWaitReadyDiagnosesEarlyExit(t *testing.T) {
	d := &Daemon{
		Bin:  "/bin/sh",
		Args: []string{"-c", "echo doomed: flag provided but not defined; exit 1"},
		Addr: "127.0.0.1:1", // nothing listens here
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	// Reap deterministically: the child exits immediately; Kill just
	// clears the slot so WaitReady sees a dead daemon.
	time.Sleep(50 * time.Millisecond)
	err := d.WaitReady(3 * time.Second)
	if err == nil {
		d.Kill()
		t.Fatal("WaitReady succeeded against a dead child")
	}
	if !strings.Contains(err.Error(), "doomed") {
		t.Fatalf("error does not carry the child's output: %v", err)
	}
	d.Kill()
}
