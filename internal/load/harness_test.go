package load

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"mirror/internal/core"
	"mirror/internal/dict"
	"mirror/internal/mediaserver"
)

// mirrordBin is the daemon binary every e2e test supervises, built once
// per test run by TestMain.
var mirrordBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "load-mirrord-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bin := filepath.Join(dir, "mirrord")
	out, err := exec.Command("go", "build", "-o", bin, "mirror/cmd/mirrord").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building mirrord: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	mirrordBin = bin
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// testRig is a live single-daemon harness: in-process dictionary and media
// server, a supervised mirrord child over a persistent store, and the
// shadow oracle tracking the ingest prefix.
type testRig struct {
	d        *Daemon
	store    string
	media    *mediaserver.Server
	addr     string
	oracle   *core.Oracle
	sc       *Scenario
	spec     Spec
	ingested int // documents known to media server + oracle
}

// newRigBase boots the shared substrate every rig shape needs — the data
// dictionary, the media server with the preload, and the shadow oracle —
// without starting any daemon. Returns the rig shell and the dictionary
// address the daemons register with.
func newRigBase(t *testing.T, shards int) (*testRig, string) {
	t.Helper()
	dictAddr, stopDict, err := dict.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stopDict)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + l.Addr().String()

	spec := DefaultSpec()
	spec.Docs, spec.Preload, spec.W, spec.H = 24, 16, 16, 16
	if shards > 1 {
		spec.Shards, spec.HotShard = shards, shards-1
	}
	sc, err := Synthesize(spec, base)
	if err != nil {
		t.Fatal(err)
	}

	r := &testRig{store: t.TempDir(), sc: sc, spec: spec, oracle: core.NewOracle()}
	r.media = mediaserver.NewServer(nil)
	for i := 0; i < spec.Preload; i++ {
		it := sc.Docs[i].Item(sc.BaseURL, spec.W, spec.H)
		r.media.Add(it)
		r.oracle.AddDoc(it.URL, it.Annotation)
	}
	r.ingested = spec.Preload
	srv := &http.Server{Handler: r.media}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return r, dictAddr
}

// newRig boots a rig with the spec's preload indexed and checkpointed.
// shards <= 1 runs a standalone store, else a sharded one.
func newRig(t *testing.T, shards int) *testRig {
	t.Helper()
	r, dictAddr := newRigBase(t, shards)
	var err error
	r.addr, err = freeAddr()
	if err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-dict", dictAddr, "-media", r.sc.BaseURL, "-addr", r.addr,
		"-store", r.store, "-local-pipeline", "-wal-sync",
		"-refresh-every", "0", "-checkpoint-every", "0",
	}
	if shards > 1 {
		args = append(args, "-shards", strconv.Itoa(shards))
	}
	r.d = &Daemon{Bin: mirrordBin, Args: args, Addr: r.addr}
	if err := r.d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.d.Kill() })
	if err := r.d.WaitReady(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	return r
}

// ingest pushes the next n stream documents through the full path: media
// server first, oracle second, RPC last — the prefix discipline.
func (r *testRig) ingest(t *testing.T, n int) {
	t.Helper()
	c, err := core.DialMirror(r.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for ; n > 0; n-- {
		doc := &r.sc.Docs[r.ingested]
		it := doc.Item(r.sc.BaseURL, r.spec.W, r.spec.H)
		r.media.Add(it)
		r.oracle.AddDoc(it.URL, it.Annotation)
		var ppm bytes.Buffer
		if err := it.Scene.Img.EncodePPM(&ppm); err != nil {
			t.Fatal(err)
		}
		if _, err := c.AddImage(it.URL, it.Annotation, ppm.Bytes()); err != nil &&
			!strings.Contains(err.Error(), "already in library") {
			t.Fatalf("ingest %s: %v", it.URL, err)
		}
		r.ingested++
	}
}

// settle refreshes until the daemon serves every ingested document, then
// verifies one stamped query against the oracle, returning final stats.
func (r *testRig) settle(t *testing.T) *core.StatsReply {
	t.Helper()
	c, err := core.DialMirror(r.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var st *core.StatsReply
	deadline := time.Now().Add(time.Minute)
	for {
		if _, err := c.Refresh(); err != nil {
			t.Fatalf("refresh: %v", err)
		}
		st, err = c.Stats()
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		if st.Pending == 0 && st.Current {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became current: %+v", st)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if st.EpochDocs != r.ingested {
		t.Fatalf("epoch covers %d docs, harness ingested %d", st.EpochDocs, r.ingested)
	}
	q := r.sc.Queries[0].Text
	reply, err := c.TextQueryStamped(q, 10, false)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	if err := r.oracle.VerifyHits(reply.EpochDocs, q, 10, reply.Hits); err != nil {
		t.Fatalf("oracle violation after recovery: %v", err)
	}
	return st
}
