package load

import (
	"strings"
	"testing"
	"time"

	"mirror/internal/core"
)

// distRig is a live distributed harness: the shared rig substrate with a
// supervised router + shard member cluster standing where the single
// daemon would. testRig's ingest/settle/stats drive the router address,
// so the single-topology assertions apply verbatim.
type distRig struct {
	*testRig
	cl *distCluster
}

// newDistRig boots a shards x replicas cluster with the spec's preload
// routed, indexed and published.
func newDistRig(t *testing.T, shards, replicas int) *distRig {
	t.Helper()
	r, dictAddr := newRigBase(t, shards)
	cl, err := startDistCluster(Options{
		Bin: mirrordBin, StoreDir: r.store, Shards: shards, Replicas: replicas,
	}, dictAddr, r.sc.BaseURL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.KillAll)
	r.d, r.addr = cl.Router, cl.RouterAddr
	return &distRig{testRig: r, cl: cl}
}

// Every distributed crash-matrix fault must land its victim in an
// intended recovery branch, leave the replicas convergent, and bring the
// cluster back to answers the oracle accepts — zero violations.
func TestDistributedFaultDrills(t *testing.T) {
	tests := []struct {
		name  string
		fault Fault
		check func(t *testing.T, rep *FaultReport, victimOut string)
	}{
		// A primary SIGKILLed with a scatter-gather leg in flight: the
		// restarted member must replay its WAL-synced store (no torn
		// tail — the kill is a crash, not a power cut) and rejoin.
		{"kill-shard-during-query", FaultKillShardDuringQuery,
			func(t *testing.T, rep *FaultReport, out string) {
				if rep.TornTailSeen {
					t.Fatalf("unexpected torn-tail warning:\n%s", out)
				}
				if !strings.Contains(out, "mirrord: shard store") {
					t.Fatalf("restart skipped the shard store recovery banner:\n%s", out)
				}
			}},
		// A primary killed while the router fans out a publish round:
		// the epoch vector only advances on a full ack, so recovery plus
		// the settle refresh must re-publish and converge.
		{"kill-shard-during-refresh", FaultKillShardDuringRefresh,
			func(t *testing.T, rep *FaultReport, out string) {
				if rep.TornTailSeen {
					t.Fatalf("unexpected torn-tail warning:\n%s", out)
				}
				if !strings.Contains(out, "mirrord: shard store") {
					t.Fatalf("restart skipped the shard store recovery banner:\n%s", out)
				}
			}},
		// A primary killed mid-checkpoint: the previous manifest reopens
		// (member checkpoints publish atomically) and the WAL replays.
		{"kill-shard-during-checkpoint", FaultKillShardDuringCheckpoint,
			func(t *testing.T, rep *FaultReport, out string) {
				if rep.TornTailSeen {
					t.Fatalf("unexpected torn-tail warning:\n%s", out)
				}
				if !strings.Contains(out, "mirrord: shard store") {
					t.Fatalf("restart skipped the shard store recovery banner:\n%s", out)
				}
			}},
		// A follower's shipped WAL torn on disk: recovery must truncate
		// to the last consistent record, warn loudly, and the follow
		// loop's resync path must re-converge onto the primary.
		{"torn-follower-wal", FaultTornFollowerWAL,
			func(t *testing.T, rep *FaultReport, out string) {
				if !rep.WALTorn {
					t.Fatal("injector reported no WAL surgery")
				}
				if !rep.TornTailSeen || !strings.Contains(out, "truncated a torn WAL tail") {
					t.Fatalf("recovery did not log the torn-tail warning:\n%s", out)
				}
			}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rig := newDistRig(t, 2, 2)
			rig.ingest(t, 4) // WAL records beyond the startup publish
			rig.settle(t)
			if err := rig.cl.awaitReplication(30 * time.Second); err != nil {
				t.Fatal(err)
			}

			victim := rig.cl.Primaries[0]
			if tc.fault == FaultTornFollowerWAL {
				victim = rig.cl.Followers[0][0]
			}
			mark := len(victim.Output())
			rep, err := InjectDist(rig.cl, tc.fault, rig.sc.Queries[0].Text)
			if err != nil {
				t.Fatalf("inject %s: %v", tc.fault, err)
			}
			if rep.Fault != tc.fault || rep.Downtime <= 0 {
				t.Fatalf("bad report: %+v", rep)
			}
			if !victim.Running() {
				t.Fatal("victim not running after recovery")
			}
			tc.check(t, rep, victim.Output()[mark:])

			// Convergence: replicas identical again, the router current
			// over everything ingested, and a stamped answer the oracle
			// accepts — the end-to-end exactness invariant, post-fault.
			if err := rig.cl.awaitReplication(30 * time.Second); err != nil {
				t.Fatalf("replicas diverged after %s: %v", tc.fault, err)
			}
			st := rig.settle(t)
			if st.Epoch == 0 || st.EpochDocs != rig.ingested {
				t.Fatalf("bad post-recovery state: %+v", st)
			}
		})
	}
}

// While a shard primary is down, the router must degrade to the shard's
// follower: ranked queries keep answering at the pinned epoch — exactly,
// per the oracle — and the primary resumes its role once restarted.
func TestRouterDegradesToFollower(t *testing.T) {
	rig := newDistRig(t, 2, 2)
	rig.ingest(t, 4)
	rig.settle(t)
	if err := rig.cl.awaitReplication(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	if err := rig.cl.Primaries[0].Kill(); err != nil {
		t.Fatal(err)
	}
	c, err := core.DialMirror(rig.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, q := range rig.sc.Queries[:4] {
		reply, err := c.TextQueryStamped(q.Text, 10, false)
		if err != nil {
			t.Fatalf("degraded query %q: %v", q.Text, err)
		}
		if reply.EpochDocs != rig.ingested {
			t.Fatalf("degraded stamp covers %d docs, want %d", reply.EpochDocs, rig.ingested)
		}
		if err := rig.oracle.VerifyHits(reply.EpochDocs, q.Text, 10, reply.Hits); err != nil {
			t.Fatalf("oracle violation while degraded: %v", err)
		}
	}

	if err := rig.cl.Primaries[0].Start(); err != nil {
		t.Fatal(err)
	}
	if err := rig.cl.Primaries[0].WaitServing(time.Minute); err != nil {
		t.Fatal(err)
	}
	st := rig.settle(t)
	if st.EpochDocs != rig.ingested {
		t.Fatalf("post-failback state: %+v", st)
	}
}
