// Package load is the production workload harness: it synthesizes
// deterministic mixed read/write scenarios (zipfian query popularity,
// bursty ingest, multi-turn feedback sessions, shard-skewed document
// placement), drives a live mirrord over its real RPC surface with
// closed-loop workers, injects the OPERATIONS.md crash-matrix faults
// mid-run through a process supervisor, and verifies every stamped query
// answer against the in-process exactness oracle (internal/core.Oracle).
// Latencies are recorded in HDR-style histograms per operation class and
// emitted as BENCH_load.json by cmd/mirrorload.
package load

import "math/bits"

// Hist is an HDR-style latency histogram: log2 major buckets of 32
// sub-buckets each, giving a fixed ~3% relative error at every
// magnitude with a few KB of counters and lock-free-cheap observes
// (callers own a Hist per worker and Merge at the end — Hist itself is
// not synchronised). Values are unit-agnostic; the harness records
// microseconds. The exact maximum is tracked separately so tail reports
// never round the worst case down.
type Hist struct {
	counts [histBuckets]uint64
	n      uint64
	sum    uint64
	max    uint64
}

// histBuckets covers values up to 2^63-1: majors 0..59, 32 sub-buckets
// each (majors 0 and 1 are exact).
const histBuckets = 60 * 32

// bucketOf maps a value to its bucket index. Values below 64 map
// exactly; above, the top 5 bits below the leading bit select the
// sub-bucket, so each bucket spans 1/32 of its magnitude.
func bucketOf(v uint64) int {
	if v < 64 {
		return int(v)
	}
	e := uint(bits.Len64(v)) - 6
	return int((uint64(e)+1)*32 + (v>>e - 32))
}

// bucketMax is the largest value a bucket holds (the inverse of
// bucketOf, used to report quantiles).
func bucketMax(idx int) uint64 {
	if idx < 64 {
		return uint64(idx)
	}
	e := uint(idx/32) - 1
	return (uint64(idx%32)+33)<<e - 1
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Merge folds another histogram into this one.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count reports the number of observations.
func (h *Hist) Count() uint64 { return h.n }

// Mean reports the exact arithmetic mean (the sum is tracked, not
// reconstructed from buckets); 0 when empty.
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max reports the exact maximum observation; 0 when empty.
func (h *Hist) Max() uint64 { return h.max }

// Quantile reports an upper bound on the q-quantile (0 < q <= 1) with
// the bucket granularity's ~3% relative error; the exact max caps it.
// 0 when empty.
func (h *Hist) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.n))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			ub := bucketMax(i)
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}
