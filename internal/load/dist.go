package load

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"mirror/internal/core"
	"mirror/internal/mediaserver"
)

// distCluster supervises a full distributed topology as child mirrord
// processes: one WAL-shipping primary per shard over a persistent store,
// Replicas-1 followers each replaying the shipped stream into their own
// stores, and the shard router fronting them all — every boundary a real
// net/rpc connection, every member individually SIGKILL-able.
type distCluster struct {
	Router     *Daemon
	Primaries  []*Daemon   // one per shard
	Followers  [][]*Daemon // [shard][replica-1]
	RouterAddr string

	primAddr  []string
	primStore []string
	folAddr   [][]string
	folStore  [][]string
}

// startDistCluster boots the members (primaries first, then followers —
// a follower dials its primary's fixed address), waits for every member
// to serve, then starts the router, which discovers the layout from the
// dictionary, crawls the media server and publishes the first epoch.
func startDistCluster(o Options, dictAddr, base string) (*distCluster, error) {
	cl := &distCluster{}
	boot := func(d *Daemon) error {
		if err := d.Start(); err != nil {
			cl.KillAll()
			return err
		}
		return nil
	}
	for i := 0; i < o.Shards; i++ {
		addr, err := freeAddr()
		if err != nil {
			cl.KillAll()
			return nil, err
		}
		join := fmt.Sprintf("%d/%d", i, o.Shards)
		store := filepath.Join(o.StoreDir, fmt.Sprintf("shard-%d", i))
		p := &Daemon{Bin: o.Bin, Addr: addr, Args: []string{
			"-dict", dictAddr, "-addr", addr, "-join", join,
			"-store", store, "-wal-sync", "-checkpoint-every", "0",
		}}
		if err := boot(p); err != nil {
			return nil, err
		}
		cl.Primaries = append(cl.Primaries, p)
		cl.primAddr = append(cl.primAddr, addr)
		cl.primStore = append(cl.primStore, store)

		var fols []*Daemon
		var faddrs, fstores []string
		for f := 1; f < o.Replicas; f++ {
			faddr, err := freeAddr()
			if err != nil {
				cl.KillAll()
				return nil, err
			}
			fstore := filepath.Join(o.StoreDir, fmt.Sprintf("shard-%d-follower-%d", i, f))
			fd := &Daemon{Bin: o.Bin, Addr: faddr, Args: []string{
				"-dict", dictAddr, "-addr", faddr, "-join", join,
				"-follow", addr, "-name", fmt.Sprintf("f%d", f),
				"-store", fstore, "-wal-sync", "-checkpoint-every", "0",
			}}
			if err := boot(fd); err != nil {
				return nil, err
			}
			fols = append(fols, fd)
			faddrs = append(faddrs, faddr)
			fstores = append(fstores, fstore)
		}
		cl.Followers = append(cl.Followers, fols)
		cl.folAddr = append(cl.folAddr, faddrs)
		cl.folStore = append(cl.folStore, fstores)
	}
	for _, d := range cl.members() {
		if err := d.WaitServing(time.Minute); err != nil {
			cl.KillAll()
			return nil, err
		}
	}

	raddr, err := freeAddr()
	if err != nil {
		cl.KillAll()
		return nil, err
	}
	cl.RouterAddr = raddr
	cl.Router = &Daemon{Bin: o.Bin, Addr: raddr, Args: []string{
		"-dict", dictAddr, "-media", base, "-addr", raddr,
		"-replicas", strconv.Itoa(o.Replicas), "-refresh-every", "0",
	}}
	if err := boot(cl.Router); err != nil {
		return nil, err
	}
	if err := cl.Router.WaitReady(2 * time.Minute); err != nil {
		cl.KillAll()
		return nil, err
	}
	return cl, nil
}

// members lists every shard daemon, primaries first.
func (cl *distCluster) members() []*Daemon {
	out := append([]*Daemon{}, cl.Primaries...)
	for _, fols := range cl.Followers {
		out = append(out, fols...)
	}
	return out
}

// KillAll SIGKILLs everything, router first. Safe on a half-built
// cluster and after StopAll (Kill on a stopped daemon is a no-op).
func (cl *distCluster) KillAll() {
	if cl.Router != nil {
		cl.Router.Kill()
	}
	for _, d := range cl.members() {
		d.Kill()
	}
}

// StopAll shuts the topology down gracefully: the router first (no new
// fan-outs), then followers, then primaries (each takes its final
// checkpoint on SIGINT).
func (cl *distCluster) StopAll(timeout time.Duration) error {
	var firstErr error
	note := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	note(cl.Router.Stop(timeout))
	for _, fols := range cl.Followers {
		for _, d := range fols {
			note(d.Stop(timeout))
		}
	}
	for _, d := range cl.Primaries {
		note(d.Stop(timeout))
	}
	return firstErr
}

// awaitReplication blocks until every follower serves exactly its
// primary's published epoch — same tag, coverage and size — which is the
// precondition for a router failover to be invisible to readers.
func (cl *distCluster) awaitReplication(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for i := range cl.Primaries {
		for f, faddr := range cl.folAddr[i] {
			for {
				err := replicaLag(cl.primAddr[i], faddr)
				if err == nil {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("load: shard %d follower %d never caught up: %w", i, f, err)
				}
				time.Sleep(25 * time.Millisecond)
			}
		}
	}
	return nil
}

// replicaLag compares a primary's shard state against one follower's,
// returning a descriptive error while they differ.
func replicaLag(primAddr, folAddr string) error {
	pc, err := core.DialMirrorTimeout(primAddr, 5*time.Second)
	if err != nil {
		return err
	}
	pst, err := pc.ShardState()
	pc.Close()
	if err != nil {
		return err
	}
	fc, err := core.DialMirrorTimeout(folAddr, 5*time.Second)
	if err != nil {
		return err
	}
	fst, err := fc.ShardState()
	fc.Close()
	if err != nil {
		return err
	}
	if !fst.Follower {
		return fmt.Errorf("replica at %s is not a follower", folAddr)
	}
	// Tag + coverage are the replication contract (the router pins reads
	// by publish tag); the local epoch sequence is a per-process counter
	// that legitimately differs across a member restart.
	if fst.Size != pst.Size || fst.Covered != pst.Covered ||
		fst.Tag != pst.Tag || fst.Docs != pst.Docs {
		return fmt.Errorf("primary %+v vs follower %+v", pst, fst)
	}
	return nil
}

// InjectDist executes one distributed-matrix fault against a running
// cluster and brings the victim back: provoke the interesting moment
// through the router, SIGKILL the victim member, (for the torn-WAL
// fault) perform the surgery, restart, and wait until it serves again.
// queryText feeds the in-flight query of FaultKillShardDuringQuery.
func InjectDist(cl *distCluster, f Fault, queryText string) (*FaultReport, error) {
	rep := &FaultReport{Fault: f}
	switch f {
	case FaultKillShardDuringQuery:
		fireAsync(cl.RouterAddr, func(c *core.Client) { c.TextQueryStamped(queryText, 5, false) })
		return rep, cl.bounce(cl.Primaries[0], "", rep)
	case FaultKillShardDuringRefresh:
		fireAsync(cl.RouterAddr, func(c *core.Client) { c.Refresh() })
		return rep, cl.bounce(cl.Primaries[0], "", rep)
	case FaultKillShardDuringCheckpoint:
		fireAsync(cl.RouterAddr, func(c *core.Client) { c.Checkpoint() })
		return rep, cl.bounce(cl.Primaries[0], "", rep)
	case FaultTornFollowerWAL:
		if len(cl.Followers) == 0 || len(cl.Followers[0]) == 0 {
			return nil, fmt.Errorf("load: %s needs at least one follower", f)
		}
		return rep, cl.bounce(cl.Followers[0][0], cl.folStore[0][0], rep)
	default:
		return nil, fmt.Errorf("load: unknown distributed fault %q", f)
	}
}

// bounce SIGKILLs one member, optionally tears its WAL, restarts it and
// waits for its RPC surface (members rejoin unpublished; the router's
// next touch brings them back into rounds).
func (cl *distCluster) bounce(d *Daemon, tearStore string, rep *FaultReport) error {
	mark := len(d.Output())
	start := time.Now()
	if err := d.Kill(); err != nil {
		return err
	}
	if tearStore != "" {
		torn, err := TearWAL(tearStore)
		if err != nil {
			return err
		}
		rep.WALTorn = torn
	}
	if err := d.Start(); err != nil {
		return err
	}
	if err := d.WaitServing(60 * time.Second); err != nil {
		return fmt.Errorf("load: recovery after %s: %w", rep.Fault, err)
	}
	rep.Downtime = time.Since(start)
	rep.TornTailSeen = strings.Contains(d.Output()[mark:], "truncated a torn WAL tail")
	return nil
}

// runDistributed is Run's distributed topology body: same scenario, same
// closed-loop workers, same oracle — but the store under test is a
// router over networked, replicated shard daemons, and the faults kill
// individual cluster members instead of the single process.
func runDistributed(o Options, sc *Scenario, oracle *core.Oracle, media *mediaserver.Server, dictAddr string) (*TopologyReport, error) {
	o.Logf("load[%s]: starting %d-shard x%d-replica cluster (%d preloaded docs)",
		o.Topology, o.Shards, o.Replicas, sc.Spec.Preload)
	cl, err := startDistCluster(o, dictAddr, sc.BaseURL)
	if err != nil {
		return nil, err
	}
	defer cl.KillAll() // no-op after a clean StopAll

	met := newMetrics()
	stop, wg := startWorkers(o, sc, media, oracle, cl.RouterAddr, met)

	faults, err := faultWindow(o, stop, wg, func(f Fault) (*FaultReport, error) {
		return InjectDist(cl, f, sc.Queries[0].Text)
	})
	if err != nil {
		return nil, err
	}

	st, err := quiesce(o, sc, oracle, cl.RouterAddr, met)
	if err != nil {
		return nil, err
	}
	if err := cl.StopAll(30 * time.Second); err != nil {
		return nil, fmt.Errorf("load: shutdown: %w", err)
	}
	return buildReport(o, met, faults, st)
}
