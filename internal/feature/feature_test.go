package feature

import (
	"math"
	"math/rand"
	"testing"

	"mirror/internal/media"
)

func swatch(t *testing.T, class string, seed int64) *media.Image {
	t.Helper()
	ci := media.ClassIndex(class)
	if ci < 0 {
		t.Fatalf("unknown class %q", class)
	}
	return media.GenerateScene(rand.New(rand.NewSource(seed)), 32, 32, []int{ci}).Img
}

func TestExtractorContracts(t *testing.T) {
	img := swatch(t, "water", 1)
	for _, ex := range All() {
		v := ex.Extract(img)
		if len(v) != ex.Dim() {
			t.Errorf("%s: dim %d != declared %d", ex.Name(), len(v), ex.Dim())
		}
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Errorf("%s[%d] = %v", ex.Name(), i, x)
			}
		}
		// determinism
		v2 := ex.Extract(img)
		for i := range v {
			if v[i] != v2[i] {
				t.Errorf("%s not deterministic at %d", ex.Name(), i)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, ex := range All() {
		got, err := ByName(ex.Name())
		if err != nil || got.Name() != ex.Name() {
			t.Errorf("ByName(%q) failed: %v", ex.Name(), err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown extractor should error")
	}
}

func TestHistogramSeparatesColours(t *testing.T) {
	h := NewRGBHistogram("rgb_coarse", 2)
	water := h.Extract(swatch(t, "water", 1))
	forest := h.Extract(swatch(t, "forest", 1))
	water2 := h.Extract(swatch(t, "water", 2))
	if dist(water, forest) < dist(water, water2)*2 {
		t.Fatalf("histogram should separate water/forest better than water/water: %v vs %v",
			dist(water, forest), dist(water, water2))
	}
	sum := 0.0
	for i := 0; i < 8; i++ {
		sum += water[i]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("histogram not normalised: %v", sum)
	}
}

func TestGaborSeparatesTexture(t *testing.T) {
	g := NewGabor()
	flat := g.Extract(swatch(t, "sky", 1))      // flat texture
	striped := g.Extract(swatch(t, "water", 1)) // strong stripes
	var fe, se float64
	for i := range flat {
		fe += flat[i]
		se += striped[i]
	}
	if se < fe*1.5 {
		t.Fatalf("gabor energy on stripes (%v) should exceed flat (%v)", se, fe)
	}
}

func TestGaborOrientationSelectivity(t *testing.T) {
	// horizontal stripes (water, orient≈0.2) vs vertical-ish (grass, 1.3)
	g := NewGabor()
	hResp := g.Extract(swatch(t, "water", 3))
	vResp := g.Extract(swatch(t, "grass", 3))
	// responses must differ substantially in distribution across filters
	if dist(hResp, vResp) < 1e-4 {
		t.Fatalf("gabor cannot distinguish orientations: %v vs %v", hResp, vResp)
	}
}

func TestGLCMContrast(t *testing.T) {
	g := NewGLCM()
	smooth := g.Extract(swatch(t, "snow", 1))
	rough := g.Extract(swatch(t, "brick", 1))
	// contrast (dims 0 and 5) higher for checkered brick
	if rough[0] <= smooth[0] {
		t.Fatalf("glcm contrast: brick %v <= snow %v", rough[0], smooth[0])
	}
	// energy is higher for near-uniform luma (sky) than for heavy noise
	// (forest), which spreads mass across many co-occurrence cells
	flat := g.Extract(swatch(t, "sky", 1))
	noisy := g.Extract(swatch(t, "forest", 1))
	if flat[1] <= noisy[1] {
		t.Fatalf("glcm energy: sky %v <= forest %v", flat[1], noisy[1])
	}
}

func TestAutocorrelationPeriodicity(t *testing.T) {
	a := NewAutocorrelation()
	noise := a.Extract(swatch(t, "forest", 1)) // white noise: lag-1 ≈ 0
	stripe := a.Extract(swatch(t, "water", 1)) // periodic stripes: strong lag-1
	if math.Abs(stripe[0]) <= math.Abs(noise[0]) {
		t.Fatalf("striped |autocorr| %v <= noise %v", stripe[0], noise[0])
	}
}

func TestFractalRoughness(t *testing.T) {
	f := NewFractal()
	smooth := f.Extract(swatch(t, "sky", 1))
	rough := f.Extract(swatch(t, "forest", 1))
	if rough[1] <= smooth[1] {
		t.Fatalf("gradient roughness: forest %v <= sky %v", rough[1], smooth[1])
	}
}

func TestTinyImagesDoNotPanic(t *testing.T) {
	tiny := media.NewImage(2, 2)
	for _, ex := range All() {
		v := ex.Extract(tiny)
		if len(v) != ex.Dim() {
			t.Errorf("%s on tiny image: dim %d", ex.Name(), len(v))
		}
	}
	empty := media.NewImage(0, 0)
	for _, ex := range All() {
		_ = ex.Extract(empty) // must not panic
	}
}

func TestSegmenterBands(t *testing.T) {
	// a two-band scene should produce at least two segments whose tiles do
	// not mix classes
	sky := media.ClassIndex("sky")
	night := media.ClassIndex("night")
	sc := media.GenerateScene(rand.New(rand.NewSource(9)), 64, 64, []int{sky, night})
	segs := NewSegmenter().Segment(sc.Img)
	if len(segs) < 2 {
		t.Fatalf("segments = %d, want >= 2", len(segs))
	}
	var area int
	for _, s := range segs {
		area += s.Area()
	}
	if area != 64*64 {
		t.Fatalf("segments cover %d px, want %d", area, 64*64)
	}
}

func TestSegmentExtractAveraged(t *testing.T) {
	img := swatch(t, "water", 4)
	segs := NewSegmenter().Segment(img)
	ex := NewRGBHistogram("rgb_coarse", 2)
	for _, s := range segs {
		v := s.ExtractAveraged(img, ex)
		if len(v) != ex.Dim() {
			t.Fatalf("averaged dim = %d", len(v))
		}
		sum := 0.0
		for i := 0; i < 8; i++ {
			sum += v[i]
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("averaged histogram not normalised: %v", sum)
		}
	}
	crop := segs[0].Crop(img)
	if crop.W == 0 || crop.H == 0 {
		t.Fatal("empty crop")
	}
}

func TestSegmenterSingleRegion(t *testing.T) {
	img := swatch(t, "snow", 2)
	segs := NewSegmenter().Segment(img)
	if len(segs) != 1 {
		t.Fatalf("uniform image should merge to one segment, got %d", len(segs))
	}
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
