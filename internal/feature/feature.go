// Package feature implements the image analysis daemons of the demo
// system: a grid-and-merge segmenter and six feature extractors — two
// colour-histogram daemons (the paper implemented two) and four texture
// algorithms standing in for the MeasTex reference implementations (Gabor
// filter bank, grey-level co-occurrence, autocorrelation, fractal
// box-counting). Every extractor is deterministic.
package feature

import (
	"fmt"
	"math"

	"mirror/internal/media"
)

// Extractor computes a fixed-dimension feature vector from an image region.
type Extractor interface {
	Name() string
	Dim() int
	Extract(img *media.Image) []float64
}

// All returns the full daemon set of the demo prototype.
func All() []Extractor {
	return []Extractor{
		NewRGBHistogram("rgb_coarse", 2),
		NewRGBHistogram("rgb_fine", 4),
		NewGabor(),
		NewGLCM(),
		NewAutocorrelation(),
		NewFractal(),
	}
}

// ByName resolves an extractor.
func ByName(name string) (Extractor, error) {
	for _, e := range All() {
		if e.Name() == name {
			return e, nil
		}
	}
	return nil, fmt.Errorf("feature: unknown extractor %q", name)
}

// ---- colour histogram daemons ----

// RGBHistogram bins pixels into bins³ colour cells, normalised to sum 1,
// with the mean channel values appended (helps separate classes whose
// histograms collide at coarse binnings).
type RGBHistogram struct {
	name string
	bins int
}

// NewRGBHistogram builds a histogram daemon with the given per-channel bin
// count.
func NewRGBHistogram(name string, bins int) *RGBHistogram {
	return &RGBHistogram{name: name, bins: bins}
}

// Name implements Extractor.
func (h *RGBHistogram) Name() string { return h.name }

// Dim implements Extractor.
func (h *RGBHistogram) Dim() int { return h.bins*h.bins*h.bins + 3 }

// Extract implements Extractor.
func (h *RGBHistogram) Extract(img *media.Image) []float64 {
	out := make([]float64, h.Dim())
	n := len(img.Pix)
	if n == 0 {
		return out
	}
	var mr, mg, mb float64
	for _, p := range img.Pix {
		r := int(p.R) * h.bins / 256
		g := int(p.G) * h.bins / 256
		b := int(p.B) * h.bins / 256
		out[(r*h.bins+g)*h.bins+b]++
		mr += float64(p.R)
		mg += float64(p.G)
		mb += float64(p.B)
	}
	for i := 0; i < h.bins*h.bins*h.bins; i++ {
		out[i] /= float64(n)
	}
	base := h.bins * h.bins * h.bins
	out[base] = mr / float64(n) / 255
	out[base+1] = mg / float64(n) / 255
	out[base+2] = mb / float64(n) / 255
	return out
}

// ---- Gabor filter bank ----

// Gabor convolves the luma plane with a bank of Gabor kernels (4
// orientations × 2 scales) and reports the mean response magnitude per
// filter — the classic MeasTex-style texture signature.
type Gabor struct {
	kernels [][]float64
	size    int
}

// NewGabor builds the 8-filter bank (kernel size 9).
func NewGabor() *Gabor {
	g := &Gabor{size: 9}
	orients := []float64{0, math.Pi / 4, math.Pi / 2, 3 * math.Pi / 4}
	freqs := []float64{0.15, 0.35}
	for _, f := range freqs {
		for _, th := range orients {
			g.kernels = append(g.kernels, gaborKernel(g.size, f, th, 2.2))
		}
	}
	return g
}

// gaborKernel builds a real Gabor kernel (cosine carrier, gaussian
// envelope), zero-mean normalised.
func gaborKernel(size int, freq, theta, sigma float64) []float64 {
	k := make([]float64, size*size)
	half := size / 2
	var sum float64
	for y := -half; y <= half; y++ {
		for x := -half; x <= half; x++ {
			xr := float64(x)*math.Cos(theta) + float64(y)*math.Sin(theta)
			env := math.Exp(-(float64(x*x + y*y)) / (2 * sigma * sigma))
			v := env * math.Cos(2*math.Pi*freq*xr)
			k[(y+half)*size+(x+half)] = v
			sum += v
		}
	}
	// zero-mean so flat regions respond with 0
	mean := sum / float64(size*size)
	for i := range k {
		k[i] -= mean
	}
	return k
}

// Name implements Extractor.
func (g *Gabor) Name() string { return "gabor" }

// Dim implements Extractor.
func (g *Gabor) Dim() int { return len(g.kernels) }

// Extract implements Extractor.
func (g *Gabor) Extract(img *media.Image) []float64 {
	out := make([]float64, g.Dim())
	if img.W < g.size || img.H < g.size {
		return out
	}
	half := g.size / 2
	// subsample convolution centres for speed: stride 2
	var count float64
	for y := half; y < img.H-half; y += 2 {
		for x := half; x < img.W-half; x += 2 {
			for ki, k := range g.kernels {
				var resp float64
				idx := 0
				for dy := -half; dy <= half; dy++ {
					for dx := -half; dx <= half; dx++ {
						resp += k[idx] * img.Gray(x+dx, y+dy)
						idx++
					}
				}
				out[ki] += math.Abs(resp)
			}
			count++
		}
	}
	if count > 0 {
		for i := range out {
			out[i] /= count * 255
		}
	}
	return out
}

// ---- grey-level co-occurrence (Haralick) ----

// GLCM computes a 16-level co-occurrence matrix at offsets (1,0) and (0,1)
// and reports contrast, energy, entropy, homogeneity and correlation per
// offset (10 dimensions).
type GLCM struct{ levels int }

// NewGLCM builds the 16-level Haralick extractor.
func NewGLCM() *GLCM { return &GLCM{levels: 16} }

// Name implements Extractor.
func (g *GLCM) Name() string { return "glcm" }

// Dim implements Extractor.
func (g *GLCM) Dim() int { return 10 }

// Extract implements Extractor.
func (g *GLCM) Extract(img *media.Image) []float64 {
	offsets := [][2]int{{1, 0}, {0, 1}}
	out := make([]float64, 0, g.Dim())
	for _, off := range offsets {
		out = append(out, g.haralick(img, off[0], off[1])...)
	}
	return out
}

func (g *GLCM) haralick(img *media.Image, dx, dy int) []float64 {
	L := g.levels
	m := make([]float64, L*L)
	var total float64
	for y := 0; y < img.H-dy; y++ {
		for x := 0; x < img.W-dx; x++ {
			a := int(img.Gray(x, y)) * L / 256
			b := int(img.Gray(x+dx, y+dy)) * L / 256
			m[a*L+b]++
			total++
		}
	}
	feats := make([]float64, 5)
	if total == 0 {
		return feats
	}
	var meanI, meanJ float64
	for i := 0; i < L; i++ {
		for j := 0; j < L; j++ {
			p := m[i*L+j] / total
			m[i*L+j] = p
			meanI += float64(i) * p
			meanJ += float64(j) * p
		}
	}
	var varI, varJ float64
	for i := 0; i < L; i++ {
		for j := 0; j < L; j++ {
			p := m[i*L+j]
			varI += (float64(i) - meanI) * (float64(i) - meanI) * p
			varJ += (float64(j) - meanJ) * (float64(j) - meanJ) * p
		}
	}
	var contrast, energy, entropy, homog, corr float64
	for i := 0; i < L; i++ {
		for j := 0; j < L; j++ {
			p := m[i*L+j]
			if p == 0 {
				continue
			}
			d := float64(i - j)
			contrast += d * d * p
			energy += p * p
			entropy -= p * math.Log2(p)
			homog += p / (1 + d*d)
			corr += (float64(i) - meanI) * (float64(j) - meanJ) * p
		}
	}
	if varI > 0 && varJ > 0 {
		corr /= math.Sqrt(varI * varJ)
	} else {
		corr = 0
	}
	feats[0] = contrast / float64(L*L)
	feats[1] = energy
	feats[2] = entropy / 8
	feats[3] = homog
	feats[4] = corr
	return feats
}

// ---- autocorrelation ----

// Autocorrelation reports the normalised luma autocorrelation at six
// displacements, a cheap periodicity signature.
type Autocorrelation struct{}

// NewAutocorrelation builds the extractor.
func NewAutocorrelation() *Autocorrelation { return &Autocorrelation{} }

// Name implements Extractor.
func (*Autocorrelation) Name() string { return "autocorr" }

// Dim implements Extractor.
func (*Autocorrelation) Dim() int { return 6 }

// Extract implements Extractor.
func (*Autocorrelation) Extract(img *media.Image) []float64 {
	disp := [][2]int{{1, 0}, {2, 0}, {4, 0}, {0, 1}, {0, 2}, {0, 4}}
	out := make([]float64, len(disp))
	n := img.W * img.H
	if n == 0 {
		return out
	}
	var mean float64
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			mean += img.Gray(x, y)
		}
	}
	mean /= float64(n)
	var variance float64
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			d := img.Gray(x, y) - mean
			variance += d * d
		}
	}
	if variance == 0 {
		return out
	}
	for di, d := range disp {
		var num float64
		var cnt float64
		for y := 0; y < img.H-d[1]; y++ {
			for x := 0; x < img.W-d[0]; x++ {
				num += (img.Gray(x, y) - mean) * (img.Gray(x+d[0], y+d[1]) - mean)
				cnt++
			}
		}
		if cnt > 0 {
			out[di] = num / variance * float64(n) / cnt
		}
	}
	return out
}

// ---- fractal ----

// Fractal reports the differential box-counting fractal dimension plus the
// mean absolute gradient (surface roughness).
type Fractal struct{}

// NewFractal builds the extractor.
func NewFractal() *Fractal { return &Fractal{} }

// Name implements Extractor.
func (*Fractal) Name() string { return "fractal" }

// Dim implements Extractor.
func (*Fractal) Dim() int { return 2 }

// Extract implements Extractor.
func (*Fractal) Extract(img *media.Image) []float64 {
	out := make([]float64, 2)
	if img.W < 8 || img.H < 8 {
		return out
	}
	// differential box counting at scales 2,4,8
	var xs, ys []float64
	for _, s := range []int{2, 4, 8} {
		var boxes float64
		for y := 0; y+s <= img.H; y += s {
			for x := 0; x+s <= img.W; x += s {
				mn, mx := 255.0, 0.0
				for dy := 0; dy < s; dy++ {
					for dx := 0; dx < s; dx++ {
						g := img.Gray(x+dx, y+dy)
						if g < mn {
							mn = g
						}
						if g > mx {
							mx = g
						}
					}
				}
				h := float64(s) * 256 / 256
				boxes += math.Floor((mx-mn)/h) + 1
			}
		}
		xs = append(xs, math.Log(1/float64(s)))
		ys = append(ys, math.Log(boxes))
	}
	out[0] = slope(xs, ys)
	// mean absolute gradient
	var grad, cnt float64
	for y := 0; y < img.H-1; y++ {
		for x := 0; x < img.W-1; x++ {
			g := img.Gray(x, y)
			grad += math.Abs(img.Gray(x+1, y)-g) + math.Abs(img.Gray(x, y+1)-g)
			cnt += 2
		}
	}
	if cnt > 0 {
		out[1] = grad / cnt / 255
	}
	return out
}

// slope fits a least-squares line and returns its slope.
func slope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
