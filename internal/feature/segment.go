package feature

import (
	"math"

	"mirror/internal/media"
)

// Segment is one image segment produced by the segmentation daemon: a set
// of grid tiles merged by colour similarity, plus its bounding box.
type Segment struct {
	Tiles [][4]int // x0, y0, x1, y1 per tile
	BBox  [4]int
}

// Area reports the pixel area of the segment.
func (s *Segment) Area() int {
	a := 0
	for _, t := range s.Tiles {
		a += (t[2] - t[0]) * (t[3] - t[1])
	}
	return a
}

// Crop returns the sub-image of the segment's bounding box — the region the
// feature daemons run on when they need a rectangle.
func (s *Segment) Crop(img *media.Image) *media.Image {
	return img.SubImage(s.BBox[0], s.BBox[1], s.BBox[2], s.BBox[3])
}

// ExtractAveraged runs an extractor tile-by-tile and averages the vectors,
// weighted by tile area; this keeps non-rectangular segments class-pure.
func (s *Segment) ExtractAveraged(img *media.Image, ex Extractor) []float64 {
	out := make([]float64, ex.Dim())
	var wsum float64
	for _, t := range s.Tiles {
		sub := img.SubImage(t[0], t[1], t[2], t[3])
		v := ex.Extract(sub)
		w := float64((t[2] - t[0]) * (t[3] - t[1]))
		for i := range out {
			out[i] += w * v[i]
		}
		wsum += w
	}
	if wsum > 0 {
		for i := range out {
			out[i] /= wsum
		}
	}
	return out
}

// Segmenter is the segmentation daemon: it tiles the image with a grid and
// merges adjacent tiles whose mean colours are within Threshold (Euclidean
// RGB distance, 0–441).
type Segmenter struct {
	Grid      int     // grid cells per axis
	Threshold float64 // merge threshold
}

// NewSegmenter returns the daemon with the demo defaults (4×4 grid).
func NewSegmenter() *Segmenter { return &Segmenter{Grid: 4, Threshold: 40} }

// Segment partitions the image.
func (sg *Segmenter) Segment(img *media.Image) []*Segment {
	g := sg.Grid
	if g < 1 {
		g = 1
	}
	type tile struct {
		rect    [4]int
		r, g, b float64
	}
	tiles := make([]tile, 0, g*g)
	for ty := 0; ty < g; ty++ {
		for tx := 0; tx < g; tx++ {
			x0, x1 := tx*img.W/g, (tx+1)*img.W/g
			y0, y1 := ty*img.H/g, (ty+1)*img.H/g
			var mr, mg, mb, n float64
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					c := img.At(x, y)
					mr += float64(c.R)
					mg += float64(c.G)
					mb += float64(c.B)
					n++
				}
			}
			if n > 0 {
				mr, mg, mb = mr/n, mg/n, mb/n
			}
			tiles = append(tiles, tile{rect: [4]int{x0, y0, x1, y1}, r: mr, g: mg, b: mb})
		}
	}

	// union-find over the grid, merging 4-adjacent similar tiles
	parent := make([]int, len(tiles))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if parent[i] != i {
			parent[i] = find(parent[i])
		}
		return parent[i]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	dist := func(a, b tile) float64 {
		dr, dg, db := a.r-b.r, a.g-b.g, a.b-b.b
		return math.Sqrt(dr*dr + dg*dg + db*db)
	}
	for ty := 0; ty < g; ty++ {
		for tx := 0; tx < g; tx++ {
			i := ty*g + tx
			if tx+1 < g && dist(tiles[i], tiles[i+1]) < sg.Threshold {
				union(i, i+1)
			}
			if ty+1 < g && dist(tiles[i], tiles[i+g]) < sg.Threshold {
				union(i, i+g)
			}
		}
	}

	groups := map[int]*Segment{}
	var order []int
	for i, t := range tiles {
		root := find(i)
		seg, ok := groups[root]
		if !ok {
			seg = &Segment{BBox: t.rect}
			groups[root] = seg
			order = append(order, root)
		}
		seg.Tiles = append(seg.Tiles, t.rect)
		if t.rect[0] < seg.BBox[0] {
			seg.BBox[0] = t.rect[0]
		}
		if t.rect[1] < seg.BBox[1] {
			seg.BBox[1] = t.rect[1]
		}
		if t.rect[2] > seg.BBox[2] {
			seg.BBox[2] = t.rect[2]
		}
		if t.rect[3] > seg.BBox[3] {
			seg.BBox[3] = t.rect[3]
		}
	}
	out := make([]*Segment, 0, len(order))
	for _, root := range order {
		out = append(out, groups[root])
	}
	return out
}
