package thesaurus

import (
	"testing"
)

func trainDocs() []Doc {
	// "ocean" co-occurs with cluster c_water; "forest" with c_green;
	// "beach" with both c_sand and c_water (shared coastline scenes).
	return []Doc{
		{Words: []string{"ocean", "waves"}, Concepts: []string{"c_water"}},
		{Words: []string{"ocean", "blue"}, Concepts: []string{"c_water"}},
		{Words: []string{"forest", "trees"}, Concepts: []string{"c_green"}},
		{Words: []string{"forest", "green"}, Concepts: []string{"c_green"}},
		{Words: []string{"beach", "sand", "ocean"}, Concepts: []string{"c_sand", "c_water"}},
		{Words: []string{"beach", "dunes"}, Concepts: []string{"c_sand"}},
		{Words: []string{"city", "lights"}, Concepts: []string{"c_dark"}},
	}
}

func TestAssociateRanksRightConcept(t *testing.T) {
	th := Build(trainDocs())
	top := th.Associate([]string{"ocean"}, 2)
	if len(top) == 0 || top[0].Concept != "c_water" {
		t.Fatalf("ocean → %v, want c_water first", top)
	}
	top = th.Associate([]string{"forest"}, 1)
	if len(top) != 1 || top[0].Concept != "c_green" {
		t.Fatalf("forest → %v", top)
	}
	// a multi-class word associates with both its concepts
	top = th.Associate([]string{"beach"}, 3)
	found := map[string]bool{}
	for _, a := range top {
		found[a.Concept] = true
	}
	if !found["c_sand"] || !found["c_water"] {
		t.Fatalf("beach → %v, want c_sand and c_water", top)
	}
}

func TestAssociateUnknownWord(t *testing.T) {
	th := Build(trainDocs())
	if got := th.Associate([]string{"zzz"}, 5); len(got) != 0 {
		t.Fatalf("unknown word associated: %v", got)
	}
}

func TestWordsFor(t *testing.T) {
	th := Build(trainDocs())
	words := th.WordsFor("c_water", 3)
	if len(words) == 0 || words[0].Concept != "ocean" {
		t.Fatalf("c_water words = %v", words)
	}
}

func TestConceptsSorted(t *testing.T) {
	th := Build(trainDocs())
	cs := th.Concepts()
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Fatalf("concepts not sorted: %v", cs)
		}
	}
}

func TestEmptyAnnotationsIgnored(t *testing.T) {
	th := Build([]Doc{
		{Words: nil, Concepts: []string{"c_x"}},
		{Words: []string{"w"}, Concepts: []string{"c_y"}},
	})
	if len(th.Concepts()) != 1 {
		t.Fatalf("concepts = %v (unannotated doc must not train)", th.Concepts())
	}
}

func TestReinforce(t *testing.T) {
	th := Build(trainDocs())
	before := th.Associate([]string{"lights"}, 5)
	var beforeWater float64
	for _, a := range before {
		if a.Concept == "c_water" {
			beforeWater = a.Belief
		}
	}
	// user says: for query "lights", items with c_water were relevant
	for i := 0; i < 5; i++ {
		th.Reinforce([]string{"lights"}, []string{"c_water"}, true)
	}
	after := th.Associate([]string{"lights"}, 5)
	var afterWater float64
	for _, a := range after {
		if a.Concept == "c_water" {
			afterWater = a.Belief
		}
	}
	if afterWater <= beforeWater {
		t.Fatalf("reinforcement did not raise association: %v → %v", beforeWater, afterWater)
	}
	// negative feedback reduces it again
	for i := 0; i < 5; i++ {
		th.Reinforce([]string{"lights"}, []string{"c_water"}, false)
	}
	final := th.Associate([]string{"lights"}, 5)
	var finalWater float64
	for _, a := range final {
		if a.Concept == "c_water" {
			finalWater = a.Belief
		}
	}
	if finalWater >= afterWater {
		t.Fatalf("negative feedback did not lower association: %v → %v", afterWater, finalWater)
	}
}

func TestReinforceNewConcept(t *testing.T) {
	th := Build(trainDocs())
	th.Reinforce([]string{"aurora"}, []string{"c_new"}, true)
	top := th.Associate([]string{"aurora"}, 1)
	if len(top) != 1 || top[0].Concept != "c_new" {
		t.Fatalf("new concept not learned: %v", top)
	}
}
