// Package thesaurus implements the association thesaurus of Section 5: the
// automatically constructed mapping between words in textual annotations
// and clusters in the image content representation (the realisation of
// Paivio's dual coding theory in the demo). Following the PhraseFinder
// observation the paper cites [JC94], each concept (cluster term) is
// treated as a document whose text is the annotation words co-occurring
// with it, and concepts are ranked for a query with the same inference
// network belief function used for document retrieval.
package thesaurus

import (
	"sort"

	"mirror/internal/ir"
)

// Doc is one training observation: the analysed annotation words of an
// item together with the content-cluster terms extracted from it.
type Doc struct {
	Words    []string
	Concepts []string
}

// Association is a ranked (concept, belief) pair.
type Association struct {
	Concept string
	Belief  float64
}

// Thesaurus is the built association structure.
type Thesaurus struct {
	concepts []string
	tf       map[string]map[string]int // concept → word → co-occurrence count
	clen     map[string]int            // concept pseudo-document length
	df       map[string]int            // word → #concepts it associates with
	avgLen   float64
}

// Build constructs the thesaurus from co-occurrence data.
func Build(docs []Doc) *Thesaurus {
	t := &Thesaurus{
		tf:   map[string]map[string]int{},
		clen: map[string]int{},
		df:   map[string]int{},
	}
	for _, d := range docs {
		if len(d.Words) == 0 {
			continue
		}
		for _, c := range d.Concepts {
			m, ok := t.tf[c]
			if !ok {
				m = map[string]int{}
				t.tf[c] = m
				t.concepts = append(t.concepts, c)
			}
			for _, w := range d.Words {
				m[w]++
				t.clen[c]++
			}
		}
	}
	sort.Strings(t.concepts)
	seen := map[string]map[string]bool{}
	for c, m := range t.tf {
		for w := range m {
			if seen[w] == nil {
				seen[w] = map[string]bool{}
			}
			if !seen[w][c] {
				seen[w][c] = true
				t.df[w]++
			}
		}
	}
	var total int
	for _, l := range t.clen {
		total += l
	}
	if len(t.clen) > 0 {
		t.avgLen = float64(total) / float64(len(t.clen))
	}
	return t
}

// Concepts lists the known concepts, sorted.
func (t *Thesaurus) Concepts() []string { return t.concepts }

// Associate ranks concepts by their belief given the query words —
// "measuring the belief in a concept (instead of in a document) given the
// query" — and returns the top k (k <= 0 returns all).
func (t *Thesaurus) Associate(queryWords []string, k int) []Association {
	n := len(t.concepts)
	out := make([]Association, 0, n)
	for _, c := range t.concepts {
		m := t.tf[c]
		score := 0.0
		for _, w := range queryWords {
			df := t.df[w]
			if df == 0 {
				continue // word never co-occurs with any concept
			}
			score += ir.Belief(m[w], t.clen[c], t.avgLen, df, n)
		}
		if score > 0 {
			out = append(out, Association{Concept: c, Belief: score})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Belief != out[j].Belief {
			return out[i].Belief > out[j].Belief
		}
		return out[i].Concept < out[j].Concept
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// WordsFor ranks the annotation words most associated with a concept (the
// inverse direction, used by the demo UI to explain clusters).
func (t *Thesaurus) WordsFor(concept string, k int) []Association {
	m := t.tf[concept]
	out := make([]Association, 0, len(m))
	for w, tf := range m {
		out = append(out, Association{
			Concept: w,
			Belief:  ir.Belief(tf, t.clen[concept], t.avgLen, t.df[w], len(t.concepts)),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Belief != out[j].Belief {
			return out[i].Belief > out[j].Belief
		}
		return out[i].Concept < out[j].Concept
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Reinforce adapts the thesaurus from relevance feedback ("we are
// investigating machine learning techniques to adapt the thesaurus ...
// using the relevance feedback across query sessions"): co-occurrences
// between the query words and the concepts of relevant items are
// strengthened, those of non-relevant items weakened.
func (t *Thesaurus) Reinforce(queryWords []string, concepts []string, relevant bool) {
	delta := 1
	for _, c := range concepts {
		m, ok := t.tf[c]
		if !ok {
			if !relevant {
				continue
			}
			m = map[string]int{}
			t.tf[c] = m
			t.concepts = append(t.concepts, c)
			sort.Strings(t.concepts)
		}
		for _, w := range queryWords {
			old := m[w]
			if relevant {
				if old == 0 {
					t.df[w]++
				}
				m[w] += delta
				t.clen[c] += delta
			} else if old > 0 {
				m[w]--
				t.clen[c]--
				if m[w] == 0 {
					delete(m, w)
					t.df[w]--
				}
			}
		}
	}
	var total int
	for _, l := range t.clen {
		total += l
	}
	if len(t.clen) > 0 {
		t.avgLen = float64(total) / float64(len(t.clen))
	}
}
