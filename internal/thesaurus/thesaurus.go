// Package thesaurus implements the association thesaurus of Section 5: the
// automatically constructed mapping between words in textual annotations
// and clusters in the image content representation (the realisation of
// Paivio's dual coding theory in the demo). Following the PhraseFinder
// observation the paper cites [JC94], each concept (cluster term) is
// treated as a document whose text is the annotation words co-occurring
// with it, and concepts are ranked for a query with the same inference
// network belief function used for document retrieval.
package thesaurus

import (
	"sort"
	"sync"

	"mirror/internal/ir"
)

// Doc is one training observation: the analysed annotation words of an
// item together with the content-cluster terms extracted from it.
type Doc struct {
	Words    []string
	Concepts []string
}

// Association is a ranked (concept, belief) pair.
type Association struct {
	Concept string
	Belief  float64
}

// Thesaurus is the built association structure. It synchronises
// internally (one RWMutex), so lock-free query paths may Associate
// concurrently with relevance feedback calling Reinforce.
type Thesaurus struct {
	mu       sync.RWMutex
	concepts []string
	tf       map[string]map[string]int // concept → word → co-occurrence count
	clen     map[string]int            // concept pseudo-document length
	df       map[string]int            // word → #concepts it associates with
	avgLen   float64
}

// Build constructs the thesaurus from co-occurrence data.
func Build(docs []Doc) *Thesaurus {
	t := &Thesaurus{
		tf:   map[string]map[string]int{},
		clen: map[string]int{},
		df:   map[string]int{},
	}
	t.AddDocs(docs)
	return t
}

// AddDocs folds additional training observations into the thesaurus. The
// statistics are pure co-occurrence counts, so adding documents
// incrementally yields exactly the thesaurus Build would construct from
// the concatenated corpus — the property the online-indexing refresh path
// relies on (delta publishes extend the shared thesaurus in place while
// queries keep Associating concurrently).
func (t *Thesaurus) AddDocs(docs []Doc) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, d := range docs {
		if len(d.Words) == 0 {
			continue
		}
		for _, c := range d.Concepts {
			m, ok := t.tf[c]
			if !ok {
				m = map[string]int{}
				t.tf[c] = m
				t.concepts = append(t.concepts, c)
			}
			for _, w := range d.Words {
				if m[w] == 0 {
					t.df[w]++
				}
				m[w]++
				t.clen[c]++
			}
		}
	}
	sort.Strings(t.concepts)
	var total int
	for _, l := range t.clen {
		total += l
	}
	if len(t.clen) > 0 {
		t.avgLen = float64(total) / float64(len(t.clen))
	}
}

// Concepts lists the known concepts, sorted.
func (t *Thesaurus) Concepts() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]string(nil), t.concepts...)
}

// State is the serialisable form of a Thesaurus. Unlike rebuilding from
// training Docs, round-tripping through State preserves the adjustments
// learned from relevance feedback (Reinforce), so a persisted store
// keeps its adaptation across restarts.
type State struct {
	Concepts []string                  `json:"concepts"`
	TF       map[string]map[string]int `json:"tf"`
	CLen     map[string]int            `json:"clen"`
	DF       map[string]int            `json:"df"`
	AvgLen   float64                   `json:"avg_len"`
}

// State snapshots the thesaurus for persistence.
func (t *Thesaurus) State() *State {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := &State{
		Concepts: append([]string(nil), t.concepts...),
		TF:       make(map[string]map[string]int, len(t.tf)),
		CLen:     make(map[string]int, len(t.clen)),
		DF:       make(map[string]int, len(t.df)),
		AvgLen:   t.avgLen,
	}
	for c, m := range t.tf {
		cm := make(map[string]int, len(m))
		for w, n := range m {
			cm[w] = n
		}
		s.TF[c] = cm
	}
	for c, n := range t.clen {
		s.CLen[c] = n
	}
	for w, n := range t.df {
		s.DF[w] = n
	}
	return s
}

// FromState rebuilds a thesaurus snapshotted with State.
func FromState(s *State) *Thesaurus {
	t := &Thesaurus{
		concepts: append([]string(nil), s.Concepts...),
		tf:       make(map[string]map[string]int, len(s.TF)),
		clen:     make(map[string]int, len(s.CLen)),
		df:       make(map[string]int, len(s.DF)),
		avgLen:   s.AvgLen,
	}
	for c, m := range s.TF {
		cm := make(map[string]int, len(m))
		for w, n := range m {
			cm[w] = n
		}
		t.tf[c] = cm
	}
	for c, n := range s.CLen {
		t.clen[c] = n
	}
	for w, n := range s.DF {
		t.df[w] = n
	}
	return t
}

// Associate ranks concepts by their belief given the query words —
// "measuring the belief in a concept (instead of in a document) given the
// query" — and returns the top k (k <= 0 returns all).
func (t *Thesaurus) Associate(queryWords []string, k int) []Association {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := len(t.concepts)
	out := make([]Association, 0, n)
	for _, c := range t.concepts {
		m := t.tf[c]
		score := 0.0
		for _, w := range queryWords {
			df := t.df[w]
			if df == 0 {
				continue // word never co-occurs with any concept
			}
			score += ir.Belief(m[w], t.clen[c], t.avgLen, df, n)
		}
		if score > 0 {
			out = append(out, Association{Concept: c, Belief: score})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Belief != out[j].Belief {
			return out[i].Belief > out[j].Belief
		}
		return out[i].Concept < out[j].Concept
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// WordsFor ranks the annotation words most associated with a concept (the
// inverse direction, used by the demo UI to explain clusters).
func (t *Thesaurus) WordsFor(concept string, k int) []Association {
	t.mu.RLock()
	defer t.mu.RUnlock()
	m := t.tf[concept]
	out := make([]Association, 0, len(m))
	for w, tf := range m {
		out = append(out, Association{
			Concept: w,
			Belief:  ir.Belief(tf, t.clen[concept], t.avgLen, t.df[w], len(t.concepts)),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Belief != out[j].Belief {
			return out[i].Belief > out[j].Belief
		}
		return out[i].Concept < out[j].Concept
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Reinforce adapts the thesaurus from relevance feedback ("we are
// investigating machine learning techniques to adapt the thesaurus ...
// using the relevance feedback across query sessions"): co-occurrences
// between the query words and the concepts of relevant items are
// strengthened, those of non-relevant items weakened.
func (t *Thesaurus) Reinforce(queryWords []string, concepts []string, relevant bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delta := 1
	for _, c := range concepts {
		m, ok := t.tf[c]
		if !ok {
			if !relevant {
				continue
			}
			m = map[string]int{}
			t.tf[c] = m
			t.concepts = append(t.concepts, c)
			sort.Strings(t.concepts)
		}
		for _, w := range queryWords {
			old := m[w]
			if relevant {
				if old == 0 {
					t.df[w]++
				}
				m[w] += delta
				t.clen[c] += delta
			} else if old > 0 {
				m[w]--
				t.clen[c]--
				if m[w] == 0 {
					delete(m, w)
					t.df[w]--
				}
			}
		}
	}
	var total int
	for _, l := range t.clen {
		total += l
	}
	if len(t.clen) > 0 {
		t.avgLen = float64(total) / float64(len(t.clen))
	}
}
