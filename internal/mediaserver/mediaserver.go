// Package mediaserver implements the media server of Figure 1 ("the media
// server is a web server"): an HTTP server that owns the multimedia
// footage and serves it to the other parties, plus the web robot that
// crawls it to populate the library.
package mediaserver

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"

	"mirror/internal/corpus"
	"mirror/internal/media"
)

// Server serves a collection's images over HTTP. Paths:
//
//	GET /index          newline-separated image paths
//	GET /img/NNNN.ppm   binary PPM
//	GET /ann/NNNN.txt   the annotation (404 when the item has none)
type Server struct {
	mu    sync.RWMutex
	items map[string]*corpus.Item // keyed by "NNNN.ppm"
	order []string
}

// NewServer builds a server over generated corpus items.
func NewServer(items []*corpus.Item) *Server {
	s := &Server{items: map[string]*corpus.Item{}}
	for _, it := range items {
		key := it.URL[strings.LastIndex(it.URL, "/")+1:]
		s.items[key] = it
		s.order = append(s.order, key)
	}
	sort.Strings(s.order)
	return s
}

// Add registers one more item with a live server — the growing-collection
// case load generators exercise. The key is the item URL's basename,
// exactly as in NewServer; duplicate keys are ignored, so replays after a
// harness retry are harmless.
func (s *Server) Add(it *corpus.Item) {
	key := it.URL[strings.LastIndex(it.URL, "/")+1:]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.items[key]; dup {
		return
	}
	s.items[key] = it
	s.order = append(s.order, key)
	sort.Strings(s.order)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/index":
		s.mu.RLock()
		defer s.mu.RUnlock()
		for _, key := range s.order {
			fmt.Fprintf(w, "/img/%s\n", key)
		}
	case strings.HasPrefix(r.URL.Path, "/img/"):
		key := strings.TrimPrefix(r.URL.Path, "/img/")
		s.mu.RLock()
		it, ok := s.items[key]
		s.mu.RUnlock()
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "image/x-portable-pixmap")
		var buf bytes.Buffer
		if err := it.Scene.Img.EncodePPM(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(buf.Bytes())
	case strings.HasPrefix(r.URL.Path, "/ann/"):
		key := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/ann/"), ".txt") + ".ppm"
		s.mu.RLock()
		it, ok := s.items[key]
		s.mu.RUnlock()
		if !ok || it.Annotation == "" {
			http.NotFound(w, r)
			return
		}
		io.WriteString(w, it.Annotation)
	default:
		http.NotFound(w, r)
	}
}

// Start serves on an ephemeral localhost port; it returns the base URL
// (http://host:port) and a stop function.
func Start(items []*corpus.Item) (string, func(), error) {
	_, base, stop, err := StartLive(items)
	return base, stop, err
}

// StartLive is Start returning the live Server as well, so callers (the
// load harness) can keep Adding items while it serves.
func StartLive(items []*corpus.Item) (*Server, string, func(), error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, fmt.Errorf("mediaserver: listen: %w", err)
	}
	s := NewServer(items)
	srv := &http.Server{Handler: s}
	go srv.Serve(l)
	return s, "http://" + l.Addr().String(), func() { srv.Close() }, nil
}

// RobotItem is one crawled library entry.
type RobotItem struct {
	URL        string // absolute image URL
	PPM        []byte
	Annotation string // "" when the page had none
}

// Crawl is the web robot: it fetches the index and downloads every image
// and available annotation.
func Crawl(baseURL string) ([]*RobotItem, error) {
	resp, err := http.Get(baseURL + "/index")
	if err != nil {
		return nil, fmt.Errorf("mediaserver: crawl index: %w", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("mediaserver: index status %d", resp.StatusCode)
	}
	var out []*RobotItem
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if line == "" {
			continue
		}
		imgURL := baseURL + line
		ppm, err := fetch(imgURL)
		if err != nil {
			return nil, err
		}
		item := &RobotItem{URL: imgURL, PPM: ppm}
		annPath := strings.Replace(strings.Replace(line, "/img/", "/ann/", 1), ".ppm", ".txt", 1)
		if ann, err := fetch(baseURL + annPath); err == nil {
			item.Annotation = string(ann)
		}
		out = append(out, item)
	}
	return out, nil
}

// fetch GETs a URL, failing on non-200.
func fetch(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("mediaserver: GET %s: status %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// DecodeItemImage decodes a crawled item's PPM payload.
func DecodeItemImage(it *RobotItem) (*media.Image, error) {
	return media.DecodePPM(bytes.NewReader(it.PPM))
}
