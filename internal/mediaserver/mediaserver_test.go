package mediaserver

import (
	"net/http"
	"strings"
	"testing"

	"mirror/internal/corpus"
)

func startServer(t *testing.T, n int) (string, []*corpus.Item) {
	t.Helper()
	items := corpus.Generate(corpus.Config{N: n, W: 24, H: 24, Seed: 4, AnnotateRate: 0.8})
	base, stop, err := Start(items)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	return base, items
}

func TestIndexAndImages(t *testing.T) {
	base, items := startServer(t, 5)
	resp, err := http.Get(base + "/index")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("index status %d", resp.StatusCode)
	}
	crawled, err := Crawl(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(crawled) != 5 {
		t.Fatalf("crawled %d, want 5", len(crawled))
	}
	for i, it := range crawled {
		img, err := DecodeItemImage(it)
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if img.W != 24 || img.H != 24 {
			t.Fatalf("item %d dims %dx%d", i, img.W, img.H)
		}
	}
	// annotations round trip: crawled annotations equal corpus annotations
	annotated := 0
	for i, it := range crawled {
		if it.Annotation != "" {
			annotated++
			if it.Annotation != items[i].Annotation {
				t.Fatalf("annotation mismatch at %d", i)
			}
		}
	}
	if annotated == 0 {
		t.Fatal("no annotations crawled")
	}
}

func TestNotFound(t *testing.T) {
	base, _ := startServer(t, 2)
	for _, path := range []string{"/img/zz.ppm", "/ann/zz.txt", "/bogus"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}

func TestCrawlBadServer(t *testing.T) {
	if _, err := Crawl("http://127.0.0.1:1"); err == nil {
		t.Fatal("crawl of dead server should fail")
	}
}

func TestUnannotatedItemsHaveNoAnnEndpoint(t *testing.T) {
	items := corpus.Generate(corpus.Config{N: 10, W: 16, H: 16, Seed: 2, AnnotateRate: 0})
	base, stop, err := Start(items)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	crawled, err := Crawl(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range crawled {
		if it.Annotation != "" {
			t.Fatal("unannotated collection produced annotations")
		}
		if !strings.HasSuffix(it.URL, ".ppm") {
			t.Fatalf("URL = %s", it.URL)
		}
	}
}
