// Package dist is the networked counterpart of core.ShardedEngine: a
// RouterEngine implements the same core.Retriever surface, but its shard
// members are remote mirrord daemons reached over net/rpc instead of
// in-process stores. The router owns everything that is global by nature
// — ingestion order (global OIDs), the extraction/clustering pipeline,
// collection statistics, the association thesaurus, the epoch vector —
// and the shards own storage, WAL durability and per-shard query
// evaluation.
//
// Exactness across the wire rests on the same invariants the in-process
// engine enforces, plus one distributed addition:
//
//   - Global identity: documents are routed by core.ShardOf and carry
//     their global OID to the shard; replies come back remapped, so
//     scores AND tie-breaks are exactly a single store's.
//   - Global statistics: every publish round ships the engine-wide
//     collection statistics to every shard, so per-shard beliefs are
//     computed against the global collection.
//   - Tag-pinned epochs: each publish round carries a monotone tag; a
//     query is evaluated on every shard at the epoch carrying the
//     router's current tag (shards retain a short epoch history), so a
//     scatter never mixes rounds even while a new publish is landing.
//     The router's epoch vector advances only after EVERY shard acked
//     the round — the oracle invariant "every served result is exact
//     for some published epoch" holds end-to-end.
//
// Each shard may have replication followers (WAL shipping; see
// core/repl.go). Reads fail over primary → followers with bounded
// retries and backoff; writes go to the primary only.
package dist

import (
	"errors"
	"fmt"
	"math"
	"net/rpc"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mirror/internal/bat"
	"mirror/internal/core"
	"mirror/internal/dict"
	"mirror/internal/ir"
	"mirror/internal/media"
	"mirror/internal/moa"
	"mirror/internal/storage"
	"mirror/internal/thesaurus"
)

// The router IS a Retriever: core.Serve exposes it under the exact RPC
// surface a single store serves, so clients cannot tell the difference.
var _ core.Retriever = (*RouterEngine)(nil)

// Options tunes the router's failure behavior.
type Options struct {
	Timeout time.Duration // per-RPC bound; 0 = 5s
	Retries int           // extra failover rounds per call; <0 = 0, default 2
	Backoff time.Duration // base backoff between rounds (doubles); 0 = 50ms

	// NoThetaStream restricts scatter pruning to send-time threshold
	// floors: in-flight legs never receive mid-query RaiseTheta pushes.
	// Streaming is pruning-only, so results are identical either way —
	// this switch exists for differentials and A/B measurement.
	NoThetaStream bool
}

func (o Options) withDefaults() Options {
	if o.Timeout == 0 {
		o.Timeout = 5 * time.Second
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.Backoff == 0 {
		o.Backoff = 50 * time.Millisecond
	}
	return o
}

// replica is one addressable store (a primary or follower) with a lazily
// established, serially used connection.
type replica struct {
	addr string
	mu   sync.Mutex
	c    *core.Client
}

// do runs one call against the replica, dialing on demand. Transport-class
// failures poison the connection so the next call redials.
func (r *replica) do(timeout time.Duration, f func(*core.Client) error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.c == nil {
		c, err := core.DialMirrorTimeout(r.addr, timeout)
		if err != nil {
			return err
		}
		r.c = c
	}
	err := f(r.c)
	if err != nil && transportErr(err) {
		r.c.Close()
		r.c = nil
	}
	return err
}

func (r *replica) close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.c != nil {
		r.c.Close()
		r.c = nil
	}
}

// transportErr classifies an error as connection-level (vs an application
// error the server computed and sent back).
func transportErr(err error) bool {
	var se rpc.ServerError
	return !errors.As(err, &se) && !errors.Is(err, core.ErrNotIndexed) &&
		!errors.Is(err, core.ErrEpochRetired) && !errors.Is(err, core.ErrFollower)
}

// failover reports whether another replica (or a retry round) may be able
// to serve the call: transport failures, a follower still catching up
// (ErrEpochRetired / ErrNotIndexed), or a misdirected write (ErrFollower).
// Every other application error is authoritative and returned verbatim.
func failover(err error) bool {
	if errors.Is(err, core.ErrEpochRetired) || errors.Is(err, core.ErrNotIndexed) ||
		errors.Is(err, core.ErrFollower) {
		return true
	}
	var se rpc.ServerError
	return !errors.As(err, &se)
}

// shardGroup is one shard's replica set.
type shardGroup struct {
	primary   *replica
	followers []*replica
}

type shardLoc struct {
	shard int
	local int
}

// epochVector is the router's published serving state: every shard
// answers queries at the epoch carrying Tag, which covers the first Docs
// documents of the global ingestion order.
type epochVector struct {
	Tag  uint64
	Docs int
}

// RouterEngine scatter-gathers the full Retriever surface over remote
// shard daemons.
type RouterEngine struct {
	n       int
	timeout time.Duration
	retries int
	backoff time.Duration

	groups []*shardGroup

	mu         sync.RWMutex
	order      []string // global ingestion order; order[g] = URL of global OID g
	urls       map[string]struct{}
	locs       []shardLoc
	localCount []int
	anns       map[string]string
	rasters    map[string]*media.Image
	terms      map[string][]string // deduped cluster words by URL (post-build)
	codebook   *core.Codebook
	thes       *thesaurus.Thesaurus
	schema     string

	buildMu sync.Mutex
	vecPtr  atomicVec

	// Threshold lifecycle state. thetaMemo seeds repeat scatters at the
	// previous merge's terminal k-th score (keyed by the epoch-vector
	// tag). ctl holds dedicated control connections for mid-flight
	// RaiseTheta pushes — the query connections are serially occupied by
	// the very scans being raised. pushes counts raises sent (A/B
	// observability).
	noStream  bool
	thetaMemo atomic.Pointer[core.ThetaMemo]
	pushes    atomic.Int64
	ctlMu     sync.Mutex
	ctl       map[string]*core.Client
}

// atomicVec is a tiny typed wrapper (avoids atomic.Pointer import noise in
// struct literals).
type atomicVec struct {
	mu sync.RWMutex
	v  *epochVector
}

func (a *atomicVec) load() *epochVector {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.v
}

func (a *atomicVec) store(v *epochVector) {
	a.mu.Lock()
	a.v = v
	a.mu.Unlock()
}

// NewRouter builds a router over explicit shard replica sets:
// shards[i][0] is shard i's primary, the rest are its followers.
func NewRouter(shards [][]string, opts Options) (*RouterEngine, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("dist: router needs at least one shard")
	}
	opts = opts.withDefaults()
	e := &RouterEngine{
		n:          len(shards),
		timeout:    opts.Timeout,
		retries:    opts.Retries,
		backoff:    opts.Backoff,
		noStream:   opts.NoThetaStream,
		urls:       map[string]struct{}{},
		localCount: make([]int, len(shards)),
		anns:       map[string]string{},
		rasters:    map[string]*media.Image{},
		terms:      map[string][]string{},
	}
	e.thetaMemo.Store(core.NewThetaMemo(core.DefaultThetaMemoEntries))
	for i, reps := range shards {
		if len(reps) == 0 {
			return nil, fmt.Errorf("dist: shard %d has no replicas", i)
		}
		g := &shardGroup{primary: &replica{addr: reps[0]}}
		for _, addr := range reps[1:] {
			g.followers = append(g.followers, &replica{addr: addr})
		}
		e.groups = append(e.groups, g)
	}
	return e, nil
}

// Discover builds a router from the data dictionary: shard daemons
// register as kind "mirror-shard" named "shard-<i>-of-<n>" (primaries)
// and "shard-<i>-of-<n>-follower…" (followers). Every primary must be
// registered; followers are optional.
func Discover(dictAddr string, opts Options) (*RouterEngine, error) {
	dc, err := dict.Dial(dictAddr)
	if err != nil {
		return nil, err
	}
	defer dc.Close()
	infos, err := dc.List("mirror-shard")
	if err != nil {
		return nil, err
	}
	n := 0
	for _, in := range infos {
		var i, of int
		if _, err := fmt.Sscanf(in.Name, "shard-%d-of-%d", &i, &of); err == nil && of > n {
			n = of
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("dist: no mirror-shard daemons registered in the dictionary")
	}
	shards := make([][]string, n)
	for i := 0; i < n; i++ {
		primary := fmt.Sprintf("shard-%d-of-%d", i, n)
		for _, in := range infos {
			if in.Name == primary {
				shards[i] = append([]string{in.Addr}, shards[i]...)
			} else if strings.HasPrefix(in.Name, primary+"-follower") {
				shards[i] = append(shards[i], in.Addr)
			}
		}
		found := false
		for _, in := range infos {
			if in.Name == primary {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("dist: shard %d/%d primary not registered", i, n)
		}
	}
	return NewRouter(shards, opts)
}

// NumShards reports the shard count.
func (e *RouterEngine) NumShards() int { return e.n }

// MinReplicas reports the smallest replica-set size across shards
// (primary included) — what a -replicas floor is checked against.
func (e *RouterEngine) MinReplicas() int {
	min := 0
	for i, g := range e.groups {
		if n := 1 + len(g.followers); i == 0 || n < min {
			min = n
		}
	}
	return min
}

// Topology describes the serving topology (moash \topology).
func (e *RouterEngine) Topology() string {
	reps := 0
	for _, g := range e.groups {
		reps += 1 + len(g.followers)
	}
	return fmt.Sprintf("distributed router (%d networked shards, %d replicas)", e.n, reps)
}

// callShard runs f against shard s with bounded failover: the primary
// first, then (for reads) each follower, with exponential backoff between
// rounds. Writes never leave the primary — a follower cannot accept them.
func (e *RouterEngine) callShard(s int, write bool, f func(*core.Client) error) error {
	g := e.groups[s]
	reps := []*replica{g.primary}
	if !write {
		reps = append(reps, g.followers...)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		for _, r := range reps {
			err := r.do(e.timeout, f)
			if err == nil {
				return nil
			}
			lastErr = err
			if !failover(err) {
				return err
			}
		}
		if attempt >= e.retries {
			return lastErr
		}
		time.Sleep(e.backoff << uint(attempt))
	}
}

// ---- ingestion ----

// AddImage routes one document to its home shard and records its global
// identity. Exactly-once across lost replies rides on idempotence: a
// retried insert that already landed answers with the library's duplicate
// contract, which the router (knowing it never recorded this URL) reads
// as the lost ack.
func (e *RouterEngine) AddImage(url, annotation string, img *media.Image) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.urls[url]; dup {
		return fmt.Errorf("core: image %q already in library", url)
	}
	s := core.ShardOf(url, e.n)
	g := uint64(len(e.order))
	var walWarn error
	err := e.callShard(s, true, func(c *core.Client) error {
		_, err := c.ShardIngest(url, annotation, nil, g)
		return err
	})
	if err != nil {
		msg := err.Error()
		switch {
		case strings.Contains(msg, "already in library"):
			// Lost-ack retry, or a re-crawl over surviving shard state after
			// a router restart: the document is in the shard. Record it.
		case strings.Contains(msg, "ingested but not WAL-logged"):
			walWarn = err // in the shard, reduced durability — record it
		default:
			return err
		}
	}
	e.order = append(e.order, url)
	e.urls[url] = struct{}{}
	e.locs = append(e.locs, shardLoc{shard: s, local: e.localCount[s]})
	e.localCount[s]++
	e.anns[url] = annotation
	if img != nil {
		e.rasters[url] = img
	}
	return walWarn
}

// AddRaster re-attaches footage to an already-ingested URL (rasters live
// with the router, which runs the extraction pipeline).
func (e *RouterEngine) AddRaster(url string, img *media.Image) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.urls[url]; !ok {
		return fmt.Errorf("core: %q not in library", url)
	}
	e.rasters[url] = img
	return nil
}

// Raster returns the held raster for a URL.
func (e *RouterEngine) Raster(url string) (*media.Image, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	img, ok := e.rasters[url]
	return img, ok
}

// Size reports the number of library items across all shards.
func (e *RouterEngine) Size() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.order)
}

// URLs returns the item URLs in global ingestion order.
func (e *RouterEngine) URLs() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]string(nil), e.order...)
}

// Indexed reports whether an epoch vector is being served.
func (e *RouterEngine) Indexed() bool { return e.vecPtr.load() != nil }

// Current reports whether the vector covers every ingested document.
func (e *RouterEngine) Current() bool {
	vec := e.vecPtr.load()
	e.mu.RLock()
	defer e.mu.RUnlock()
	return vec != nil && vec.Docs == len(e.order)
}

// Pending reports how many ingested documents the vector does not cover.
func (e *RouterEngine) Pending() int {
	vec := e.vecPtr.load()
	e.mu.RLock()
	defer e.mu.RUnlock()
	if vec == nil {
		return len(e.order)
	}
	return len(e.order) - vec.Docs
}

// urlOf resolves a global OID through the ingestion order.
func (e *RouterEngine) urlOf(oid uint64) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if oid >= uint64(len(e.order)) {
		return ""
	}
	return e.order[oid]
}

// ContentTerms returns the cluster words of a document by global OID.
func (e *RouterEngine) ContentTerms(oid bat.OID) []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if uint64(oid) >= uint64(len(e.order)) {
		return nil
	}
	return e.terms[e.order[oid]]
}

// Thesaurus returns the router's association thesaurus (the global
// authority; shard-local thesauri only serve shard-direct queries).
func (e *RouterEngine) Thesaurus() *thesaurus.Thesaurus {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.thes
}

// ExpandQuery maps free text to associated content clusters.
func (e *RouterEngine) ExpandQuery(text string, topK int) []string {
	return core.ExpandWith(e.Thesaurus(), text, topK)
}

// SchemaSource returns the DDL of the served database (probed from the
// shards and cached).
func (e *RouterEngine) SchemaSource() string {
	e.mu.RLock()
	cached := e.schema
	e.mu.RUnlock()
	if cached != "" {
		return cached
	}
	var src string
	for s := 0; s < e.n; s++ {
		err := e.callShard(s, false, func(c *core.Client) error {
			var serr error
			src, serr = c.Schema()
			return serr
		})
		if err == nil && src != "" {
			break
		}
	}
	e.mu.Lock()
	e.schema = src
	e.mu.Unlock()
	return src
}

// ServingEpoch reports the router's epoch-vector stamp: Seq is the
// publish tag, Docs the covered prefix of the global ingestion order.
func (e *RouterEngine) ServingEpoch() (core.EpochStamp, bool) {
	vec := e.vecPtr.load()
	if vec == nil {
		return core.EpochStamp{}, false
	}
	return core.EpochStamp{Seq: int64(vec.Tag), Docs: vec.Docs}, true
}

// Persistent reports false: the router itself holds no store (durability
// lives with the shard daemons; Checkpoint fans out to them).
func (e *RouterEngine) Persistent() bool { return false }

// Checkpoint asks every shard primary to checkpoint, summing the stats.
func (e *RouterEngine) Checkpoint() (storage.CheckpointStats, error) {
	var total storage.CheckpointStats
	for s := 0; s < e.n; s++ {
		var rep *core.CheckpointReply
		err := e.callShard(s, true, func(c *core.Client) error {
			var cerr error
			rep, cerr = c.Checkpoint()
			return cerr
		})
		if err != nil {
			return total, fmt.Errorf("dist: checkpoint shard %d: %w", s, err)
		}
		total.Written += rep.Written
		total.Skipped += rep.Skipped
		total.Bytes += rep.Bytes
	}
	return total, nil
}

// ClosePersistent closes every replica connection (shard daemons keep
// running; they own their stores).
func (e *RouterEngine) ClosePersistent() error {
	e.ctlMu.Lock()
	for addr, c := range e.ctl {
		c.Close()
		delete(e.ctl, addr)
	}
	e.ctlMu.Unlock()
	for _, g := range e.groups {
		g.primary.close()
		for _, f := range g.followers {
			f.close()
		}
	}
	return nil
}

// Segments reports nothing: segment layout is shard-daemon-local
// introspection (ask the daemons directly).
func (e *RouterEngine) Segments() []core.SegmentsInfo { return nil }

// PostingsStats likewise reports only the zero footprint.
func (e *RouterEngine) PostingsStats() core.PostingsStats { return core.PostingsStats{} }

// BlockScanStats sums the shard primaries' block-max scan counters over
// one parallel best-effort round: the router process runs no scans
// itself, so a process-local read would report zero work for the whole
// deployment. Unreachable members contribute nothing — a single attempt
// per primary, no failover, so a dead shard costs one fast dial error
// (or at worst one RPC timeout) instead of the full retry schedule. The
// sum is therefore a lower bound during partitions, which is the right
// bias for an observability counter.
func (e *RouterEngine) BlockScanStats() (decoded, skipped int64) {
	var dec, skp atomic.Int64
	var wg sync.WaitGroup
	for _, g := range e.groups {
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			_ = r.do(e.timeout, func(c *core.Client) error {
				st, err := c.Stats()
				if err != nil {
					return err
				}
				dec.Add(st.BlocksDecoded)
				skp.Add(st.BlocksSkipped)
				return nil
			})
		}(g.primary)
	}
	wg.Wait()
	return dec.Load(), skp.Load()
}

// ---- index lifecycle ----

// rasterLookup resolves rasters from the router's own holdings.
func (e *RouterEngine) rasterLookup() func(url string) (*media.Image, bool) {
	return func(url string) (*media.Image, bool) {
		e.mu.RLock()
		defer e.mu.RUnlock()
		img, ok := e.rasters[url]
		return img, ok
	}
}

// BuildContentIndex runs the extraction/clustering pipeline ONCE globally
// (clustering and collection statistics are global by nature), then fans
// each shard's slice out as a self-contained full publish under the next
// tag. The epoch vector advances only when every shard acked.
func (e *RouterEngine) BuildContentIndex(opts core.IndexOptions) error {
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()

	order := append([]string(nil), e.order...)
	imageWords, cb, err := core.RunLocalExtraction(opts, e.rasterLookupLocked(), order)
	if err != nil {
		return err
	}

	annTokens := make([][]string, len(order))
	imgTerms := make([][]string, len(order))
	var thDocs []thesaurus.Doc
	for i, url := range order {
		ann := e.anns[url]
		annTokens[i] = ir.Analyze(ann)
		imgTerms[i] = dedupTerms(imageWords[url])
		if ann != "" {
			thDocs = append(thDocs, thesaurus.Doc{Words: annTokens[i], Concepts: imgTerms[i]})
		}
	}
	gsAnn := ir.CollectionStats(annTokens)
	gsImg := ir.CollectionStats(imgTerms)

	tag := uint64(1)
	if vec := e.vecPtr.load(); vec != nil {
		tag = vec.Tag + 1
	}

	perShard := make([][]string, e.n)
	words := make([]map[string][]string, e.n)
	for s := range words {
		words[s] = map[string][]string{}
	}
	for g, url := range order {
		l := e.locs[g]
		perShard[l.shard] = append(perShard[l.shard], url)
		words[l.shard][url] = imageWords[url]
	}

	if err := e.fanOutPublish(perShard, words, gsAnn, gsImg, cb, true, tag, nil); err != nil {
		return err
	}

	// Full ack: commit the global model and publish the vector.
	for i, url := range order {
		e.terms[url] = imgTerms[i]
	}
	e.codebook = cb
	e.thes = thesaurus.Build(thDocs)
	e.vecPtr.store(&epochVector{Tag: tag, Docs: len(order)})
	e.thetaMemo.Load().Sweep(int64(tag))
	return nil
}

// rasterLookupLocked is rasterLookup for callers already holding e.mu.
func (e *RouterEngine) rasterLookupLocked() func(url string) (*media.Image, bool) {
	return func(url string) (*media.Image, bool) {
		img, ok := e.rasters[url]
		return img, ok
	}
}

// BuildContentIndexDistributed is refused: the router already IS the
// distributed face; its extraction runs in-process against its own
// holdings (daemon-backed extraction composes with the in-process
// engine, not with the router).
func (e *RouterEngine) BuildContentIndexDistributed(core.IndexOptions, string) error {
	return fmt.Errorf("dist: the router runs extraction locally; use BuildContentIndex")
}

// fanOutPublish ships one publish round to every shard primary in
// parallel. successTh, when non-nil, receives each shard index whose
// publish acked (refresh uses it to fold thesaurus docs exactly for the
// slices that landed, mirroring the in-process engine's shared-object
// behavior under partial failure).
func (e *RouterEngine) fanOutPublish(perShard [][]string, words []map[string][]string,
	gsAnn, gsImg *ir.GlobalStats, cb *core.Codebook, full bool, tag uint64, acked func(s int)) error {
	errs := make([]error, e.n)
	var wg sync.WaitGroup
	var ackMu sync.Mutex
	for s := 0; s < e.n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			args := core.ShardPublishArgs{
				URLs: perShard[s], Words: words[s],
				AnnStats: gsAnn, ImgStats: gsImg,
				Codebook: cb, Full: full, Tag: tag,
			}
			errs[s] = e.callShard(s, true, func(c *core.Client) error {
				_, err := c.ShardPublish(args)
				return err
			})
			if errs[s] == nil && acked != nil {
				ackMu.Lock()
				acked(s)
				ackMu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return fmt.Errorf("dist: publish shard %d: %w", s, err)
		}
	}
	return nil
}

// Refresh incrementally indexes every pending document: frozen-codebook
// assignment runs router-side over the delta, the collection statistics
// are recomputed over the full covered prefix (identical to a one-shot
// build — integer bookkeeping over the same token streams), and every
// shard republishes under the new statistics and the next tag, EVEN
// shards with an empty delta (their beliefs must move). The vector
// advances only on a full ack; a partially applied round is repaired by
// the next Refresh, which probes per-shard coverage and re-sends only
// what is missing under a fresh tag.
func (e *RouterEngine) Refresh() (core.RefreshStats, error) {
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	var st core.RefreshStats

	vec := e.vecPtr.load()
	if vec == nil {
		return st, fmt.Errorf("core: Refresh: %w", core.ErrNotIndexed)
	}

	// Probe per-shard coverage: a shard that applied a failed round's
	// slice already covers those documents; re-publishing them would
	// corrupt its internal set.
	shardCovered := make([]int, e.n)
	for s := 0; s < e.n; s++ {
		var rep *core.ShardStateReply
		err := e.callShard(s, true, func(c *core.Client) error {
			var serr error
			rep, serr = c.ShardState()
			return serr
		})
		if err != nil {
			return st, fmt.Errorf("dist: probe shard %d: %w", s, err)
		}
		shardCovered[s] = rep.Covered
	}

	e.mu.RLock()
	orderLen := len(e.order)
	var pendingURLs []string
	for g := vec.Docs; g < orderLen; g++ {
		l := e.locs[g]
		if l.local >= shardCovered[l.shard] {
			pendingURLs = append(pendingURLs, e.order[g])
		}
	}
	cb := e.codebook
	e.mu.RUnlock()

	if orderLen == vec.Docs {
		st.Docs, st.Epoch = vec.Docs, int64(vec.Tag)
		return st, nil
	}
	if cb == nil {
		return st, fmt.Errorf("dist: Refresh needs the frozen feature codebook; run BuildContentIndex once")
	}
	assigned, err := core.AssignLocalExtraction(cb, e.rasterLookup(), pendingURLs)
	if err != nil {
		return st, err
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	// Commit the delta's terms before fanning out: a shard publish that
	// lands makes those documents servable, and the router must be able
	// to answer ContentTerms/session queries about them even if the round
	// as a whole fails.
	for _, url := range pendingURLs {
		e.terms[url] = dedupTerms(assigned[url])
	}

	// Recompute the global statistics from scratch over the full covered
	// prefix — same token streams as a one-shot build, so beliefs are
	// identical to the in-process engine's running bookkeeping.
	annTokens := make([][]string, orderLen)
	imgTerms := make([][]string, orderLen)
	for g := 0; g < orderLen; g++ {
		url := e.order[g]
		annTokens[g] = ir.Analyze(e.anns[url])
		imgTerms[g] = e.terms[url]
	}
	gsAnn := ir.CollectionStats(annTokens)
	gsImg := ir.CollectionStats(imgTerms)

	// Group the per-shard deltas (global order ⇒ ascending shard-local
	// positions) and collect the thesaurus docs each slice carries.
	perShard := make([][]string, e.n)
	words := make([]map[string][]string, e.n)
	thDocsByShard := make([][]thesaurus.Doc, e.n)
	for s := range words {
		words[s] = map[string][]string{}
	}
	for g := vec.Docs; g < orderLen; g++ {
		url := e.order[g]
		l := e.locs[g]
		if l.local < shardCovered[l.shard] {
			continue
		}
		perShard[l.shard] = append(perShard[l.shard], url)
		words[l.shard][url] = assigned[url]
		if ann := e.anns[url]; ann != "" {
			thDocsByShard[l.shard] = append(thDocsByShard[l.shard],
				thesaurus.Doc{Words: ir.Analyze(ann), Concepts: e.terms[url]})
		}
	}

	tag := vec.Tag + 1
	ferr := e.fanOutPublish(perShard, words, gsAnn, gsImg, nil, false, tag, func(s int) {
		// Mirror the in-process shared thesaurus: docs whose shard publish
		// landed are learnt even if the round fails elsewhere (the repair
		// round skips them via the coverage probe).
		if e.thes != nil {
			e.thes.AddDocs(thDocsByShard[s])
		}
	})
	if ferr != nil {
		return st, ferr
	}
	e.vecPtr.store(&epochVector{Tag: tag, Docs: orderLen})
	e.thetaMemo.Load().Sweep(int64(tag))
	st.NewDocs, st.Docs, st.Epoch = len(pendingURLs), orderLen, int64(tag)
	return st, nil
}

// ---- scatter-gather queries ----

// scanNonce + scanSeq generate process-unique scan ids for streamed
// threshold pushes. The nonce makes ids from two routers sharing a shard
// fleet (or a restarted router) overwhelmingly unlikely to collide; even
// a collision only risks an extra pruning raise on a scan whose router
// streams exact-safe floors of its own.
var (
	scanNonce = uint64(time.Now().UnixNano())
	scanSeq   atomic.Uint64
)

func nextScanID() uint64 {
	for {
		if id := scanNonce + scanSeq.Add(1); id != 0 {
			return id
		}
	}
}

// queryShards fans one tag-pinned query leg to every shard with shared
// rising-threshold pruning. The threshold rises from three sources: each
// leg is seeded with the height at send time (seed = a memoised terminal
// score, or -Inf), each reply folds its reached threshold AND its merged
// rows (fold returns the router-side merge's k-th best once full — the
// straggler fix: late legs now prune under everything already gathered,
// not just under completed legs' own thetas), and unless the router was
// built NoThetaStream, every rise is pushed mid-flight into the legs
// still scanning. Pruning-only — the threshold never exceeds the global
// k-th best score, so results stay exact.
//
// fold (nil for unranked scatters) is called once per successful reply,
// serialized under an internal lock — implementations need no locking of
// their own.
func (e *RouterEngine) queryShards(tag uint64, k int, seed float64, build func(floor float64) core.ShardQueryArgs, fold func(*core.ShardQueryReply) float64) ([]*core.ShardQueryReply, error) {
	theta := bat.NewTopKThreshold()
	theta.Raise(seed)
	reps := make([]*core.ShardQueryReply, e.n)
	errs := make([]error, e.n)

	var scanID uint64
	if k > 0 && e.n > 1 && !e.noStream {
		scanID = nextScanID()
	}
	var mu sync.Mutex // serializes fold and the pending/sent bookkeeping
	done := make([]bool, e.n)
	sent := theta.Load() // every leg departs at >= the seed; only pushes above it help
	fin := func(s int, rep *core.ShardQueryReply) {
		mu.Lock()
		done[s] = true
		theta.Raise(rep.Theta)
		if fold != nil {
			theta.Raise(fold(rep))
		}
		cur := theta.Load()
		var pending []int
		if scanID != 0 && cur > sent {
			sent = cur
			for x := 0; x < e.n; x++ {
				if !done[x] {
					pending = append(pending, x)
				}
			}
		}
		mu.Unlock()
		if len(pending) > 0 {
			e.streamTheta(scanID, cur, pending)
		}
	}

	var wg sync.WaitGroup
	for s := 0; s < e.n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = e.callShard(s, false, func(c *core.Client) error {
				args := build(theta.Load())
				args.Tag, args.K, args.ScanID = tag, k, scanID
				rep, err := c.ShardQuery(args)
				if err != nil {
					return err
				}
				reps[s] = rep
				return nil
			})
			if errs[s] == nil && k > 0 {
				fin(s, reps[s])
			}
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", s, err)
		}
	}
	return reps, nil
}

// streamTheta pushes a risen threshold into the shards whose legs are
// still in flight, over dedicated control connections (each query
// connection is serially occupied by the very scan being raised). The
// whole replica set of each pending shard is addressed — failover means
// the router cannot know which member a leg landed on; the others treat
// the unknown scan id as a no-op. Best-effort: a lost push costs
// pruning, never correctness.
func (e *RouterEngine) streamTheta(scanID uint64, th float64, pending []int) {
	for _, s := range pending {
		g := e.groups[s]
		for _, r := range append([]*replica{g.primary}, g.followers...) {
			addr := r.addr
			e.pushes.Add(1)
			go func() {
				c, err := e.ctlClient(addr)
				if err != nil {
					return
				}
				if err := c.RaiseTheta(scanID, th); err != nil && transportErr(err) {
					e.dropCtl(addr, c)
				}
			}()
		}
	}
}

// ctlClient returns the shared control connection to addr, dialing on
// demand. net/rpc clients multiplex concurrent calls, so one connection
// per member serves every in-flight push.
func (e *RouterEngine) ctlClient(addr string) (*core.Client, error) {
	e.ctlMu.Lock()
	defer e.ctlMu.Unlock()
	if c, ok := e.ctl[addr]; ok {
		return c, nil
	}
	c, err := core.DialMirrorTimeout(addr, e.timeout)
	if err != nil {
		return nil, err
	}
	if e.ctl == nil {
		e.ctl = map[string]*core.Client{}
	}
	e.ctl[addr] = c
	return c, nil
}

// dropCtl poisons a control connection after a transport failure so the
// next push redials.
func (e *RouterEngine) dropCtl(addr string, c *core.Client) {
	e.ctlMu.Lock()
	if e.ctl[addr] == c {
		delete(e.ctl, addr)
	}
	e.ctlMu.Unlock()
	c.Close()
}

// ThetaStreamed reports how many mid-flight threshold raises this router
// has pushed (benchmark/observability counter).
func (e *RouterEngine) ThetaStreamed() int64 { return e.pushes.Load() }

// SetThetaMemo resizes (or, with maxEntries <= 0, disables) the router's
// scatter threshold memo — the -theta-memo flag's router-side face.
func (e *RouterEngine) SetThetaMemo(maxEntries int) {
	e.thetaMemo.Store(core.NewThetaMemo(maxEntries))
}

// ThetaMemoStats snapshots the router memo's effectiveness counters.
func (e *RouterEngine) ThetaMemoStats() core.ThetaMemoStats { return e.thetaMemo.Load().Stats() }

// thetaKindOf maps a scatter kind to its memo surface. Moa legs are not
// memoised (row values need not be belief scores), and wsum legs are
// unranked.
func thetaKindOf(kind string) (core.ThetaKind, bool) {
	switch kind {
	case "ann":
		return core.ThetaAnnotations, true
	case "content":
		return core.ThetaContent, true
	}
	return 0, false
}

// gatherHits merges per-shard hit legs exactly like the in-process
// engine: bounded top-k union for k > 0 (legs arrive ranked and cut),
// full concatenation sorted by the ranked-retrieval order otherwise.
// Ranked legs fold into the merged selection as each reply lands, so the
// merge's k-th best — the tightest exact-safe bound the router ever has
// — raises the shared threshold for legs still in flight; a repeat query
// seeds the whole scatter from the memoised terminal score and records
// the fresh terminal on the way out.
func (e *RouterEngine) gatherHits(vec *epochVector, kind, text string, terms []string, k int) ([]core.Hit, error) {
	if vec == nil {
		return nil, core.ErrNotIndexed
	}
	gen := int64(vec.Tag)
	tm := e.thetaMemo.Load()
	memoKind, memoOK := thetaKindOf(kind)
	seed := math.Inf(-1)
	if memoOK && k > 0 {
		if s, ok := tm.Get(gen, memoKind, k, text, terms); ok {
			seed = s
		}
	}
	var merged *bat.BoundedTopK[core.Hit]
	var fold func(*core.ShardQueryReply) float64
	if k > 0 {
		merged = bat.NewBoundedTopK(k, core.HitWorse)
		fold = func(rep *core.ShardQueryReply) float64 {
			for i := range rep.OIDs {
				merged.Offer(core.Hit{OID: bat.OID(rep.OIDs[i]), URL: rep.URLs[i], Score: rep.Scores[i]})
			}
			if w, ok := merged.Worst(); ok && merged.Full() {
				return w.Score
			}
			return math.Inf(-1)
		}
	}
	reps, err := e.queryShards(vec.Tag, k, seed, func(floor float64) core.ShardQueryArgs {
		return core.ShardQueryArgs{Kind: kind, Text: text, Terms: terms, ThetaFloor: floor}
	}, fold)
	if err != nil {
		return nil, err
	}
	if k > 0 {
		hits := merged.Ranked()
		if memoOK {
			tm.Record(gen, memoKind, k, text, terms, hits)
		}
		return hits, nil
	}
	var all []core.Hit
	for _, rep := range reps {
		for i := range rep.OIDs {
			all = append(all, core.Hit{OID: bat.OID(rep.OIDs[i]), URL: rep.URLs[i], Score: rep.Scores[i]})
		}
	}
	sort.Slice(all, func(i, j int) bool { return core.HitWorse(all[j], all[i]) })
	return all, nil
}

// QueryAnnotations ranks the whole collection against a free-text query.
func (e *RouterEngine) QueryAnnotations(text string, k int) ([]core.Hit, error) {
	hits, _, err := e.QueryAnnotationsStamped(text, k)
	return hits, err
}

// QueryAnnotationsStamped is QueryAnnotations plus the epoch-vector stamp.
func (e *RouterEngine) QueryAnnotationsStamped(text string, k int) ([]core.Hit, core.EpochStamp, error) {
	vec := e.vecPtr.load()
	if vec == nil {
		return nil, core.EpochStamp{}, core.ErrNotIndexed
	}
	hits, err := e.gatherHits(vec, "ann", text, nil, k)
	return hits, vec.stamp(), err
}

// QueryContent ranks by image content given cluster words.
func (e *RouterEngine) QueryContent(clusterWords []string, k int) ([]core.Hit, error) {
	return e.gatherHits(e.vecPtr.load(), "content", "", clusterWords, k)
}

// QueryDualCoding combines annotation and content evidence; both legs
// read one pinned epoch vector.
func (e *RouterEngine) QueryDualCoding(text string, k int) ([]core.Hit, error) {
	hits, _, err := e.QueryDualCodingStamped(text, k)
	return hits, err
}

// QueryDualCodingStamped is QueryDualCoding plus the pinned vector stamp.
func (e *RouterEngine) QueryDualCodingStamped(text string, k int) ([]core.Hit, core.EpochStamp, error) {
	vec := e.vecPtr.load()
	if vec == nil {
		return nil, core.EpochStamp{}, core.ErrNotIndexed
	}
	hits, err := core.QueryDualCodingSite(routerSite{e: e, pin: vec}, text, k)
	return hits, vec.stamp(), err
}

func (v *epochVector) stamp() core.EpochStamp {
	return core.EpochStamp{Seq: int64(v.Tag), Docs: v.Docs}
}

// Query runs a raw Moa query across all shards (see QueryTopK).
func (e *RouterEngine) Query(src string, queryTerms []string) (*moa.Result, error) {
	return e.QueryTopK(src, queryTerms, 0)
}

// QueryTopK runs a raw Moa query on every shard and merges set-typed
// results under global OIDs, exactly like the in-process engine: ranked
// bounded merge for k > 0, ascending-OID concatenation otherwise.
func (e *RouterEngine) QueryTopK(src string, queryTerms []string, k int) (*moa.Result, error) {
	res, _, err := e.QueryTopKStamped(src, queryTerms, k)
	return res, err
}

// QueryTopKStamped is QueryTopK plus the epoch-vector stamp. Unlike the
// in-process engine there is no pre-index live fallback: an unindexed
// router has no epoch to pin, so Moa queries return ErrNotIndexed until
// the first build (browse a shard daemon directly instead).
func (e *RouterEngine) QueryTopKStamped(src string, queryTerms []string, k int) (*moa.Result, core.EpochStamp, error) {
	vec := e.vecPtr.load()
	if vec == nil {
		return nil, core.EpochStamp{}, core.ErrNotIndexed
	}
	rows := func(rep *core.ShardQueryReply) []moa.Row {
		out := make([]moa.Row, len(rep.OIDs))
		for i := range rep.OIDs {
			out[i] = moa.Row{OID: bat.OID(rep.OIDs[i]), Value: rep.Values[i]}
			if rep.Numeric || (i < len(rep.Floats) && rep.Floats[i]) {
				out[i].Value = rep.Scores[i]
			}
		}
		return out
	}
	var merged *bat.BoundedTopK[moa.Row]
	var fold func(*core.ShardQueryReply) float64
	if k > 0 {
		merged = bat.NewBoundedTopK(k, moa.RowWorse)
		numeric := true
		fold = func(rep *core.ShardQueryReply) float64 {
			numeric = numeric && rep.Numeric
			for _, row := range rows(rep) {
				merged.Offer(row)
			}
			// Only all-numeric merges order by score; a worst row from a
			// mixed merge is not a pruning bound.
			if w, ok := merged.Worst(); ok && merged.Full() && numeric {
				if f, isF := w.Value.(float64); isF {
					return f
				}
			}
			return math.Inf(-1)
		}
	}
	reps, err := e.queryShards(vec.Tag, k, math.Inf(-1), func(floor float64) core.ShardQueryArgs {
		return core.ShardQueryArgs{Kind: "moa", Text: src, Terms: queryTerms, ThetaFloor: floor}
	}, fold)
	if err != nil {
		return nil, vec.stamp(), err
	}
	out := &moa.Result{}
	if k > 0 {
		out.Rows = merged.Ranked()
		out.Ranked = true
		return out, vec.stamp(), nil
	}
	for _, rep := range reps {
		out.Rows = append(out.Rows, rows(rep)...)
	}
	sort.Slice(out.Rows, func(i, j int) bool { return out.Rows[i].OID < out.Rows[j].OID })
	return out, vec.stamp(), nil
}

// ---- sessions and feedback ----

// routerSite adapts the router to core.SessionSite so feedback sessions
// and dual-coding retrieval run core's OWN combination arithmetic over
// the networked scatter — which is what keeps their results bit-identical
// to a single store's. pin == nil reads the current vector per call
// (sessions span publishes, like the in-process engine's); a non-nil pin
// holds one vector for multi-leg reads.
type routerSite struct {
	e   *RouterEngine
	pin *epochVector
}

func (s routerSite) vec() *epochVector {
	if s.pin != nil {
		return s.pin
	}
	return s.e.vecPtr.load()
}

func (s routerSite) URLOf(oid uint64) string { return s.e.urlOf(oid) }

func (s routerSite) QueryAnnotations(text string, k int) ([]core.Hit, error) {
	return s.e.gatherHits(s.vec(), "ann", text, nil, k)
}

func (s routerSite) QueryContent(clusterWords []string, k int) ([]core.Hit, error) {
	return s.e.gatherHits(s.vec(), "content", "", clusterWords, k)
}

func (s routerSite) ExpandQuery(text string, topK int) []string {
	return s.e.ExpandQuery(text, topK)
}

// WeightedContentScores scatters the weighted-sum scoring and unions the
// per-shard maps (shards are disjoint under global OIDs).
func (s routerSite) WeightedContentScores(terms []string, weights []float64) (ir.Scores, error) {
	vec := s.vec()
	if vec == nil {
		return nil, core.ErrNotIndexed
	}
	reps, err := s.e.queryShards(vec.Tag, 0, math.Inf(-1), func(float64) core.ShardQueryArgs {
		return core.ShardQueryArgs{Kind: "wsum", Terms: terms, Weights: weights}
	}, nil)
	if err != nil {
		return nil, err
	}
	merged := ir.NewScores() // ownership transfers to the caller
	for _, rep := range reps {
		for i := range rep.OIDs {
			merged[rep.OIDs[i]] = rep.Scores[i]
		}
	}
	return merged, nil
}

func (s routerSite) ContentTerms(oid uint64) []string { return s.e.ContentTerms(bat.OID(oid)) }

func (s routerSite) Thesaurus() *thesaurus.Thesaurus { return s.e.Thesaurus() }

func (s routerSite) RequireIndex() error {
	if s.vec() == nil {
		return core.ErrNotIndexed
	}
	return nil
}

// ReinforceLogged applies feedback to the router's thesaurus (what its
// query expansion reads) and WAL-logs it on shard 0's primary — the
// durable authority, mirroring the in-process engine's routing.
func (s routerSite) ReinforceLogged(words, concepts []string, relevant bool) error {
	s.e.mu.Lock()
	if s.e.thes != nil {
		s.e.thes.Reinforce(words, concepts, relevant)
	}
	s.e.mu.Unlock()
	return s.e.callShard(0, true, func(c *core.Client) error {
		return c.Reinforce(words, concepts, relevant)
	})
}

// NewSession starts a relevance-feedback session over the distributed
// collection; judgments arrive as global OIDs (what hits carry).
func (e *RouterEngine) NewSession(text string) (*core.Session, error) {
	return core.NewSessionFor(routerSite{e: e}, text)
}

// dedupTerms sort-dedups a term list (the shard-insert normal form).
func dedupTerms(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	n := 0
	for i, t := range out {
		if i == 0 || t != out[i-1] {
			out[n] = t
			n++
		}
	}
	return out[:n]
}
