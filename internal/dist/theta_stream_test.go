package dist

import (
	"fmt"
	"testing"
	"time"

	"mirror/internal/corpus"
)

// The streamed-θ differential: a router that pushes its rising pruning
// bound into in-flight shard scans (the default) must answer every
// retrieval surface BUN-for-BUN identically to a router restricted to
// send-time threshold floors (NoThetaStream) — on the first pass, on the
// memo-seeded repeat pass, and across an incremental refresh whose new
// tag must orphan every memoised seed. Streaming and seeding are
// pruning-only; any divergence means a threshold exceeded the global
// k-th best score somewhere.
func TestStreamedThetaDifferential(t *testing.T) {
	items := testItems(26)
	first, rest := items[:18], items[18:]
	opts := testIndexOptions()

	streaming := startCluster(t, 3, 2)
	static := startClusterOpts(t, 3, 2, Options{Timeout: 10 * time.Second, NoThetaStream: true})

	for _, c := range []*cluster{streaming, static} {
		c.ingest(first)
		if err := c.router.BuildContentIndex(opts); err != nil {
			t.Fatal(err)
		}
	}
	compareRouters(t, "build", static.router, streaming.router)

	// Repeat pass: identical queries now scatter with every leg's floor
	// seeded at the previous merge's terminal k-th score.
	compareRouters(t, "seeded", static.router, streaming.router)
	if st := streaming.router.ThetaMemoStats(); st.Hits == 0 {
		t.Fatalf("repeat pass never reused a memoised scatter seed: %+v", st)
	}

	// Incremental round: the refresh advances the epoch-vector tag, so
	// stale seeds must be unreachable and both routers re-derive.
	for _, c := range []*cluster{streaming, static} {
		c.ingest(rest)
		if _, err := c.router.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	compareRouters(t, "refresh", static.router, streaming.router)
	compareRouters(t, "refresh seeded", static.router, streaming.router)
	t.Logf("streamed θ raises pushed: %d", streaming.router.ThetaStreamed())
}

// compareRouters drives the retrieval surfaces against both routers and
// requires identical answers, ties included.
func compareRouters(t *testing.T, phase string, want, got *RouterEngine) {
	t.Helper()
	for class := 0; class < 6; class++ {
		term := corpus.CanonicalTerm(class)
		label := fmt.Sprintf("%s/%s", phase, term)
		for _, k := range []int{5, 0} {
			h1, _, err1 := want.QueryAnnotationsStamped(term, k)
			h2, _, err2 := got.QueryAnnotationsStamped(term, k)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s ann k=%d: errs %v/%v", label, k, err1, err2)
			}
			sameHits(t, label+"/ann", h1, h2, k)
		}

		d1, err1 := want.QueryDualCoding(term, 5)
		d2, err2 := got.QueryDualCoding(term, 5)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s dual: errs %v/%v", label, err1, err2)
		}
		sameHits(t, label+"/dual", d1, d2, 5)

		if e1 := want.ExpandQuery(term, 6); len(e1) > 0 {
			q1, err1 := want.QueryContent(e1, 5)
			q2, err2 := got.QueryContent(e1, 5)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s content: errs %v/%v", label, err1, err2)
			}
			sameHits(t, label+"/content", q1, q2, 5)
		}

		r1, _, err1 := want.QueryTopKStamped(annQuerySrc, []string{term}, 5)
		r2, _, err2 := got.QueryTopKStamped(annQuerySrc, []string{term}, 5)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s moa: errs %v/%v", label, err1, err2)
		}
		sameRows(t, label+"/moa", r1.Rows, r2.Rows)
	}
}
