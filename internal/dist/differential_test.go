package dist

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"mirror/internal/bat"
	"mirror/internal/core"
	"mirror/internal/corpus"
)

// annQuerySrc mirrors the paper's Section 3 ranking expression (the same
// source moash and the load harness send over the wire).
const annQuerySrc = `
	map[sum(THIS)](
		map[getBL(THIS.annotation, query, stats)]( ImageLibraryInternal ));`

// The distributed differential: a networked router over N shard daemons,
// the in-process sharded engine with N members, and a single store must
// answer every retrieval surface BUN-for-BUN — same documents, same
// scores, same tie order — for N ∈ {1, 2, 8}, across both the initial
// build and an incremental refresh.
func TestDifferentialTopologies(t *testing.T) {
	for _, n := range []int{1, 2, 8} {
		n := n
		t.Run(fmt.Sprintf("N%d", n), func(t *testing.T) { runDifferential(t, n) })
	}
}

func runDifferential(t *testing.T, n int) {
	items := testItems(26)
	first, rest := items[:18], items[18:]
	opts := testIndexOptions()

	single, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := core.NewSharded(n)
	if err != nil {
		t.Fatal(err)
	}
	c := startCluster(t, n, 2)

	for _, it := range first {
		for _, r := range []core.Retriever{single, sharded} {
			if err := r.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.ingest(first)

	if err := single.BuildContentIndex(opts); err != nil {
		t.Fatal(err)
	}
	if err := sharded.BuildContentIndex(opts); err != nil {
		t.Fatal(err)
	}
	if err := c.router.BuildContentIndex(opts); err != nil {
		t.Fatal(err)
	}
	compareEngines(t, "build", single, sharded, c.router)
	c.catchUp()
	checkEpochVector(t, c)

	// Incremental round: ingest the remainder everywhere, snapshot the
	// replicas mid-ingest (their epoch vectors must stay consistent at
	// the PREVIOUS publish while the delta is pending), then refresh.
	for _, it := range rest {
		for _, r := range []core.Retriever{single, sharded} {
			if err := r.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.ingest(rest)
	c.catchUp()
	checkEpochVector(t, c) // mid-ingest: inserts shipped, epoch unmoved

	if _, err := single.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := sharded.Refresh(); err != nil {
		t.Fatal(err)
	}
	st, err := c.router.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if st.NewDocs != len(rest) || st.Docs != len(items) {
		t.Fatalf("router refresh = %+v, want +%d/%d docs", st, len(rest), len(items))
	}
	compareEngines(t, "refresh", single, sharded, c.router)
	c.catchUp()
	checkEpochVector(t, c)
}

// compareEngines drives every retrieval surface against the three
// topologies and requires identical answers, ties included.
func compareEngines(t *testing.T, phase string, single, sharded, router core.Retriever) {
	t.Helper()
	if a, b, c := single.Size(), sharded.Size(), router.Size(); a != b || a != c {
		t.Fatalf("%s: sizes %d/%d/%d", phase, a, b, c)
	}
	ss, ok1 := single.ServingEpoch()
	es, ok2 := sharded.ServingEpoch()
	rs, ok3 := router.ServingEpoch()
	if !ok1 || !ok2 || !ok3 || ss.Docs != es.Docs || ss.Docs != rs.Docs {
		t.Fatalf("%s: epoch stamps %+v/%+v/%+v", phase, ss, es, rs)
	}

	for class := 0; class < 6; class++ {
		term := corpus.CanonicalTerm(class)
		label := fmt.Sprintf("%s/%s", phase, term)
		for _, k := range []int{5, 0} {
			h1, st1, err1 := single.QueryAnnotationsStamped(term, k)
			h2, _, err2 := sharded.QueryAnnotationsStamped(term, k)
			h3, st3, err3 := router.QueryAnnotationsStamped(term, k)
			if err1 != nil || err2 != nil || err3 != nil {
				t.Fatalf("%s k=%d: errs %v/%v/%v", label, k, err1, err2, err3)
			}
			if st1.Docs != st3.Docs {
				t.Fatalf("%s k=%d: stamp docs %d vs %d", label, k, st1.Docs, st3.Docs)
			}
			sameHits(t, label+"/ann/sharded", h1, h2, k)
			sameHits(t, label+"/ann/router", h1, h3, k)
		}

		d1, err1 := single.QueryDualCoding(term, 5)
		d2, err2 := sharded.QueryDualCoding(term, 5)
		d3, err3 := router.QueryDualCoding(term, 5)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("%s dual: errs %v/%v/%v", label, err1, err2, err3)
		}
		sameHits(t, label+"/dual/sharded", d1, d2, 5)
		sameHits(t, label+"/dual/router", d1, d3, 5)

		// Thesaurus expansion feeds content retrieval; it must agree
		// before the content legs can.
		e1 := single.ExpandQuery(term, 6)
		e3 := router.ExpandQuery(term, 6)
		if !reflect.DeepEqual(e1, e3) {
			t.Fatalf("%s expand: %v vs %v", label, e1, e3)
		}
		if len(e1) > 0 {
			q1, err1 := single.QueryContent(e1, 5)
			q2, err2 := sharded.QueryContent(e1, 5)
			q3, err3 := router.QueryContent(e1, 5)
			if err1 != nil || err2 != nil || err3 != nil {
				t.Fatalf("%s content: errs %v/%v/%v", label, err1, err2, err3)
			}
			sameHits(t, label+"/content/sharded", q1, q2, 5)
			sameHits(t, label+"/content/router", q1, q3, 5)
		}

		// Raw Moa over the wire-facing entry point.
		for _, k := range []int{5, 0} {
			r1, _, err1 := single.QueryTopKStamped(annQuerySrc, []string{term}, k)
			r2, _, err2 := sharded.QueryTopKStamped(annQuerySrc, []string{term}, k)
			r3, _, err3 := router.QueryTopKStamped(annQuerySrc, []string{term}, k)
			if err1 != nil || err2 != nil || err3 != nil {
				t.Fatalf("%s moa k=%d: errs %v/%v/%v", label, k, err1, err2, err3)
			}
			sameRows(t, label+"/moa/sharded", r1.Rows, r2.Rows)
			sameRows(t, label+"/moa/router", r1.Rows, r3.Rows)
		}
	}

	// Per-document cluster words must agree under global OIDs.
	for oid := 0; oid < single.Size(); oid++ {
		w1 := single.ContentTerms(bat.OID(oid))
		w3 := router.ContentTerms(bat.OID(oid))
		if !reflect.DeepEqual(w1, w3) {
			t.Fatalf("%s: ContentTerms(%d) = %v vs %v", phase, oid, w1, w3)
		}
	}
}

func sameHits(t *testing.T, label string, want, got []core.Hit, k int) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s (k=%d):\n want %v\n got  %v", label, k, want, got)
	}
}

func sameRows(t *testing.T, label string, want, got interface{}) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s:\n want %v\n got  %v", label, want, got)
	}
}

// checkEpochVector asserts the oracle side condition replication adds:
// after catch-up every replica of a shard serves exactly the primary's
// published epoch (tag, sequence and coverage) — a router failover can
// land on any replica and still answer for a published epoch.
func checkEpochVector(t *testing.T, c *cluster) {
	t.Helper()
	for i := range c.primaries {
		pc, err := core.DialMirrorTimeout(c.primAddr[i], 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		pst, err := pc.ShardState()
		pc.Close()
		if err != nil {
			t.Fatal(err)
		}
		for f, faddr := range c.folAddr[i] {
			fc, err := core.DialMirrorTimeout(faddr, 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			fst, err := fc.ShardState()
			fc.Close()
			if err != nil {
				t.Fatal(err)
			}
			if !fst.Follower {
				t.Fatalf("shard %d replica %d: not marked follower", i, f)
			}
			if fst.Size != pst.Size || fst.Covered != pst.Covered ||
				fst.Tag != pst.Tag || fst.Epoch != pst.Epoch || fst.Docs != pst.Docs {
				t.Fatalf("shard %d replica %d diverged:\n primary %+v\n follower %+v", i, f, pst, fst)
			}
		}
	}
}
