package dist

import (
	"testing"
	"time"

	"mirror/internal/core"
	"mirror/internal/corpus"
)

// cluster is an in-process distributed topology for tests: n shard
// primaries (each optionally mirrored by followers), all served over real
// 127.0.0.1 RPC listeners, fronted by a RouterEngine. Stores are
// in-memory — the drills that need kill-able processes live in
// internal/load; here the stores are reachable directly so tests can
// assert on their internal state.
type cluster struct {
	t         *testing.T
	router    *RouterEngine
	primaries []*core.Mirror
	followers [][]*core.Mirror
	primAddr  []string
	folAddr   [][]string
	stops     []func()
}

// startMember serves one shard member over a real listener.
func startMember(t *testing.T, index, count int, follower bool) (*core.Mirror, string, func()) {
	t.Helper()
	m, err := core.NewShardMember(index, count)
	if err != nil {
		t.Fatal(err)
	}
	m.KeepEpochHistory(8)
	name := "shard-member"
	if follower {
		m.SetFollower()
		name = "shard-follower"
	} else {
		m.EnableShipping()
	}
	addr, stop, err := core.ServeAs(m, "127.0.0.1:0", "", "mirror-shard", name)
	if err != nil {
		t.Fatal(err)
	}
	return m, addr, stop
}

// startCluster builds an n-shard topology with `replicas` stores per
// shard (the primary counts; replicas-1 followers each).
func startCluster(t *testing.T, n, replicas int) *cluster {
	t.Helper()
	return startClusterOpts(t, n, replicas, Options{Timeout: 10 * time.Second})
}

// startClusterOpts is startCluster with explicit router Options (the
// streamed-θ differential builds one streaming and one send-time-floor
// router over otherwise identical clusters).
func startClusterOpts(t *testing.T, n, replicas int, opts Options) *cluster {
	t.Helper()
	c := &cluster{t: t}
	shards := make([][]string, n)
	for i := 0; i < n; i++ {
		m, addr, stop := startMember(t, i, n, false)
		c.primaries = append(c.primaries, m)
		c.primAddr = append(c.primAddr, addr)
		c.stops = append(c.stops, stop)
		shards[i] = []string{addr}
		var fols []*core.Mirror
		var folAddrs []string
		for f := 1; f < replicas; f++ {
			fm, faddr, fstop := startMember(t, i, n, true)
			fols = append(fols, fm)
			folAddrs = append(folAddrs, faddr)
			c.stops = append(c.stops, fstop)
			shards[i] = append(shards[i], faddr)
		}
		c.followers = append(c.followers, fols)
		c.folAddr = append(c.folAddr, folAddrs)
	}
	r, err := NewRouter(shards, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.router = r
	t.Cleanup(c.shutdown)
	return c
}

func (c *cluster) shutdown() {
	c.router.ClosePersistent()
	for _, stop := range c.stops {
		stop()
	}
}

// catchUp replays every primary's shipped WAL stream into its followers.
func (c *cluster) catchUp() {
	c.t.Helper()
	for i, fols := range c.followers {
		for _, fm := range fols {
			if _, err := FollowOnce(fm, c.primAddr[i], 10*time.Second); err != nil {
				c.t.Fatalf("catch up follower of shard %d: %v", i, err)
			}
		}
	}
}

// ingest routes items through the router.
func (c *cluster) ingest(items []*corpus.Item) {
	c.t.Helper()
	for _, it := range items {
		if err := c.router.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
			c.t.Fatalf("ingest %s: %v", it.URL, err)
		}
	}
}

// testItems generates the shared differential corpus.
func testItems(n int) []*corpus.Item {
	return corpus.Generate(corpus.Config{N: n, W: 48, H: 48, Seed: 11, AnnotateRate: 0.75})
}

// testIndexOptions keeps pipeline runs fast (mirrors core's test fixture).
func testIndexOptions() core.IndexOptions {
	opts := core.DefaultIndexOptions()
	opts.Features = []string{"rgb_coarse", "gabor"}
	opts.KMax = 6
	return opts
}
