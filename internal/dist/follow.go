package dist

import (
	"fmt"
	"time"

	"mirror/internal/core"
)

// FollowOnce pulls and applies every replication record currently
// available from the primary at addr into the follower store m. It
// resumes from the follower's durable stream cursor, falls back to a
// full resync when the primary cannot serve that cursor (restarted
// primary, torn stream tail), and returns the number of records applied.
//
// Safe to call repeatedly — it is the catch-up step the follower daemon
// runs in a loop, and what tests call directly for deterministic drills.
func FollowOnce(m *core.Mirror, addr string, timeout time.Duration) (int, error) {
	c, err := core.DialMirrorTimeout(addr, timeout)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if timeout > 0 {
		c.SetCallTimeout(timeout)
	}

	nonce, pos := m.ReplState()
	applied := 0
	for {
		rep, err := c.WALShip(nonce, pos)
		if err != nil {
			return applied, err
		}
		if rep.Resync {
			// The primary cannot serve our cursor (it restarted, or our
			// position lies beyond its stream). Pull a full resync; it
			// converges from any follower state.
			sync, err := c.ShardSync()
			if err != nil {
				return applied, err
			}
			if err := m.ApplyGenesis(sync.Recs, sync.Nonce, sync.Pos); err != nil {
				return applied, fmt.Errorf("dist: apply resync from %s: %w", addr, err)
			}
			applied += len(sync.Recs)
			nonce, pos = sync.Nonce, sync.Pos
			continue
		}
		if len(rep.Recs) == 0 {
			return applied, nil
		}
		if err := m.ApplyShipped(rep.Recs, pos, rep.Nonce); err != nil {
			return applied, fmt.Errorf("dist: apply shipped records from %s: %w", addr, err)
		}
		applied += len(rep.Recs)
		nonce, pos = rep.Nonce, rep.Next
	}
}

// Follow runs the follower loop: catch up against the primary, sleep,
// repeat. Transient errors (primary down, mid-ship kill) are retried on
// the next tick — the follower keeps serving reads at its last applied
// published epoch throughout. Returns when stop is closed.
func Follow(m *core.Mirror, addr string, interval, timeout time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		_, _ = FollowOnce(m, addr, timeout) // transient; retried next tick
		select {
		case <-stop:
			return
		case <-t.C:
		}
	}
}
