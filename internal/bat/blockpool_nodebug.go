//go:build !pooldebug

package bat

// Release builds: the pool hooks compile to nothing. Build with -tags
// pooldebug to turn on borrow accounting and released-buffer poisoning.

func blockCursorsBorrowed(*blockCursorSet) {}
func blockCursorsReleased(*blockCursorSet) {}

// LiveBlockCursors reports the number of borrowed-but-unreleased cursor
// sets. It always returns 0 unless built with -tags pooldebug.
func LiveBlockCursors() int { return 0 }
