package bat

// hashIndex maps head values to the positions at which they occur. One map
// per atom kind keeps lookups unboxed. first() returns the first position;
// all() returns every position (needed by joins on non-key heads).
type hashIndex struct {
	oids  map[OID][]int
	ints  map[int64][]int
	flts  map[float64][]int
	strs  map[string][]int
	bools map[bool][]int
}

// ensureHash builds the head hash index if absent and returns it. Void
// heads never need one (lookups are arithmetic). Safe for concurrent use:
// two racing builders produce equivalent indexes and one wins the store.
func (b *BAT) ensureHash() *hashIndex {
	if h := b.hash.Load(); h != nil || b.HDense() {
		return h
	}
	h := &hashIndex{}
	c := b.Head
	n := c.Len()
	switch c.Kind() {
	case KindOID:
		h.oids = make(map[OID][]int, n)
		for i, v := range c.oids {
			h.oids[v] = append(h.oids[v], i)
		}
	case KindInt:
		h.ints = make(map[int64][]int, n)
		for i, v := range c.ints {
			h.ints[v] = append(h.ints[v], i)
		}
	case KindFloat:
		h.flts = make(map[float64][]int, n)
		for i, v := range c.flts {
			h.flts[v] = append(h.flts[v], i)
		}
	case KindStr:
		h.strs = make(map[string][]int, n)
		for i, v := range c.strs {
			h.strs[v] = append(h.strs[v], i)
		}
	case KindBool:
		h.bools = make(map[bool][]int, 2)
		for i, v := range c.bools {
			h.bools[v] = append(h.bools[v], i)
		}
	}
	b.hash.Store(h)
	return h
}

// first returns the first position of value v in column c, per the index.
func (h *hashIndex) first(c *Column, v any) (int, bool) {
	ps := h.positions(c, v)
	if len(ps) == 0 {
		return 0, false
	}
	return ps[0], true
}

// positions returns all positions of value v. The column argument carries
// the kind; v is coerced to it where sensible (int→oid etc.).
func (h *hashIndex) positions(c *Column, v any) []int {
	switch c.Kind() {
	case KindOID:
		o, ok := toOID(v)
		if !ok {
			return nil
		}
		return h.oids[o]
	case KindInt:
		x, ok := toInt(v)
		if !ok {
			return nil
		}
		return h.ints[x]
	case KindFloat:
		x, ok := toFloat(v)
		if !ok {
			return nil
		}
		return h.flts[x]
	case KindStr:
		s, ok := v.(string)
		if !ok {
			return nil
		}
		return h.strs[s]
	case KindBool:
		x, ok := v.(bool)
		if !ok {
			return nil
		}
		return h.bools[x]
	}
	return nil
}
