package bat

import (
	"math/rand"
	"sync"
	"testing"
)

// synthIndex is a term-ordered postings fixture mirroring what CONTREP's
// Finalize derives: start/doc/belief/maxbel columns over nterms terms.
type synthIndex struct {
	nterms, ndocs int
	start         *BAT
	doc           *BAT
	bel           *BAT
	maxb          *BAT
	domain        *BAT
	// perDoc[d][t] = belief of term t in doc d (absent → unmatched)
	perDoc []map[OID]float64
}

// mkSynthIndex generates a random corpus. dupEvery > 0 duplicates every
// dupEvery-th document's postings from its predecessor, manufacturing
// exactly tied scores; belief values are drawn from a tiny set so unrelated
// ties happen too.
func mkSynthIndex(rng *rand.Rand, nterms, ndocs, maxTermsPerDoc, dupEvery int) *synthIndex {
	const def = 0.4
	beliefLevels := []float64{def, 0.41, 0.55, 0.75, 0.97}
	si := &synthIndex{nterms: nterms, ndocs: ndocs, perDoc: make([]map[OID]float64, ndocs)}
	for d := 0; d < ndocs; d++ {
		m := map[OID]float64{}
		if dupEvery > 0 && d > 0 && d%dupEvery == 0 {
			for t, b := range si.perDoc[d-1] {
				m[t] = b
			}
		} else {
			for i := 0; i < rng.Intn(maxTermsPerDoc+1); i++ {
				t := OID(rng.Intn(nterms))
				m[t] = beliefLevels[rng.Intn(len(beliefLevels))]
			}
		}
		si.perDoc[d] = m
	}
	// scatter into term-ordered postings
	type post struct {
		d OID
		b float64
	}
	byTerm := make([][]post, nterms)
	for d := 0; d < ndocs; d++ {
		for t, b := range si.perDoc[d] {
			byTerm[t] = append(byTerm[t], post{OID(d), b})
		}
	}
	si.start = NewDense(0, KindInt)
	si.doc = NewDense(0, KindOID)
	si.bel = NewDense(0, KindFloat)
	si.maxb = NewDense(0, KindFloat)
	si.domain = New(KindVoid, KindVoid)
	off := int64(0)
	for t := 0; t < nterms; t++ {
		si.start.MustAppend(OID(t), off)
		mx := 0.0
		for _, p := range byTerm[t] { // doc ascending by construction
			si.doc.MustAppend(OID(off), p.d)
			si.bel.MustAppend(OID(off), p.b)
			if p.b > mx {
				mx = p.b
			}
			off++
		}
		si.maxb.MustAppend(OID(t), mx)
	}
	si.start.MustAppend(OID(nterms), off)
	for d := 0; d < ndocs; d++ {
		si.domain.MustAppend(OID(d), OID(d))
	}
	return si
}

// refTopK is the exhaustive reference: score every domain document with the
// canonical fold, sort fully, cut at k.
func (si *synthIndex) refTopK(query []OID, weights []float64, def float64, k int) ([]OID, []float64) {
	type hit struct {
		d OID
		s float64
	}
	var hits []hit
	wtot := 0.0
	for _, w := range weights {
		wtot += w
	}
	for d := 0; d < si.ndocs; d++ {
		sum, matched := 0.0, 0
		for qi, t := range query {
			var bel float64
			ok := false
			if int(t) < si.nterms {
				bel, ok = si.perDoc[d][t]
			}
			if !ok {
				continue
			}
			if weights == nil {
				sum += bel
			} else {
				sum += weights[qi] * (bel - def)
			}
			matched++
		}
		if weights == nil {
			hits = append(hits, hit{OID(d), sum + float64(len(query)-matched)*def})
		} else if matched > 0 {
			hits = append(hits, hit{OID(d), sum + wtot*def})
		}
	}
	// selection sort order: score desc, OID asc (insertion via worseHit)
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0 && worseHit(hits[j-1].s, hits[j-1].d, hits[j].s, hits[j].d); j-- {
			hits[j-1], hits[j] = hits[j], hits[j-1]
		}
	}
	if len(hits) > k {
		hits = hits[:k]
	}
	docs := make([]OID, len(hits))
	scores := make([]float64, len(hits))
	for i, h := range hits {
		docs[i], scores[i] = h.d, h.s
	}
	return docs, scores
}

func checkTopK(t *testing.T, si *synthIndex, query []OID, weights []float64, k int) {
	t.Helper()
	const def = 0.4
	got, err := PrunedTopK(si.start, si.doc, si.bel, si.maxb, query, weights, def, k, si.domain)
	if err != nil {
		t.Fatalf("PrunedTopK: %v", err)
	}
	wantD, wantS := si.refTopK(query, weights, def, k)
	if got.Len() != len(wantD) {
		t.Fatalf("k=%d q=%v: got %d hits, want %d", k, query, got.Len(), len(wantD))
	}
	for i := 0; i < got.Len(); i++ {
		if got.Head.OIDAt(i) != wantD[i] || got.Tail.FloatAt(i) != wantS[i] {
			t.Fatalf("k=%d q=%v rank %d: got (%d, %v), want (%d, %v)",
				k, query, i, got.Head.OIDAt(i), got.Tail.FloatAt(i), wantD[i], wantS[i])
		}
	}
}

// TestPrunedTopKMatchesExhaustive is the differential property test: over
// random corpora (including duplicated documents, i.e. exact score ties,
// and out-of-vocabulary query terms) the pruned operator returns
// BUN-for-BUN the exhaustive ranking.
func TestPrunedTopKMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ nterms, ndocs, perDoc, dup int }{
		{1, 1, 1, 0},
		{5, 20, 3, 0},
		{12, 200, 6, 3},
		{50, 2000, 8, 5},
	}
	for _, sh := range shapes {
		si := mkSynthIndex(rng, sh.nterms, sh.ndocs, sh.perDoc, sh.dup)
		for trial := 0; trial < 8; trial++ {
			qlen := rng.Intn(6)
			query := make([]OID, qlen)
			for i := range query {
				if rng.Intn(8) == 0 {
					query[i] = OID(sh.nterms + rng.Intn(3)) // OOV
				} else {
					query[i] = OID(rng.Intn(sh.nterms))
				}
			}
			if qlen > 1 && rng.Intn(3) == 0 {
				query[1] = query[0] // duplicate term
			}
			for _, k := range []int{1, 3, sh.ndocs, sh.ndocs + 7} {
				checkTopK(t, si, query, nil, k)
				weights := make([]float64, qlen)
				for i := range weights {
					weights[i] = float64(rng.Intn(4)) * 0.5 // includes zero weights
				}
				checkTopK(t, si, query, weights, k)
			}
		}
	}
}

// TestPrunedTopKParallelIdentical pins the determinism contract: the
// parallel partitioned scan returns exactly the serial result.
func TestPrunedTopKParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	si := mkSynthIndex(rng, 40, 5000, 8, 4)
	query := []OID{1, 3, 3, 7, 39}
	const def = 0.4
	for _, k := range []int{1, 10, 200} {
		oldPar := SetParallelism(1)
		serial, err := PrunedTopK(si.start, si.doc, si.bel, si.maxb, query, nil, def, k, si.domain)
		SetParallelism(4)
		oldThr := SetParallelThreshold(1)
		par, err2 := PrunedTopK(si.start, si.doc, si.bel, si.maxb, query, nil, def, k, si.domain)
		SetParallelism(oldPar)
		SetParallelThreshold(oldThr)
		if err != nil || err2 != nil {
			t.Fatalf("errors: %v / %v", err, err2)
		}
		if serial.Len() != par.Len() {
			t.Fatalf("k=%d: serial %d hits, parallel %d", k, serial.Len(), par.Len())
		}
		for i := 0; i < serial.Len(); i++ {
			if serial.Head.OIDAt(i) != par.Head.OIDAt(i) || serial.Tail.FloatAt(i) != par.Tail.FloatAt(i) {
				t.Fatalf("k=%d rank %d: serial (%d,%v) vs parallel (%d,%v)", k, i,
					serial.Head.OIDAt(i), serial.Tail.FloatAt(i), par.Head.OIDAt(i), par.Tail.FloatAt(i))
			}
		}
	}
}

func TestPrunedTopKEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	si := mkSynthIndex(rng, 8, 50, 4, 0)
	// empty query: every document scores 0, ranking is OID ascending
	got, err := PrunedTopK(si.start, si.doc, si.bel, si.maxb, nil, nil, 0.4, 5, si.domain)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 5 {
		t.Fatalf("empty query: %d hits", got.Len())
	}
	for i := 0; i < 5; i++ {
		if got.Head.OIDAt(i) != OID(i) || got.Tail.FloatAt(i) != 0 {
			t.Fatalf("empty query rank %d: (%d, %v)", i, got.Head.OIDAt(i), got.Tail.FloatAt(i))
		}
	}
	// invalid k
	if _, err := PrunedTopK(si.start, si.doc, si.bel, si.maxb, nil, nil, 0.4, 0, si.domain); err == nil {
		t.Fatal("k=0 accepted")
	}
	// negative weight rejected (exhaustive fallback territory)
	if _, err := PrunedTopK(si.start, si.doc, si.bel, si.maxb, []OID{1}, []float64{-1}, 0.4, 3, si.domain); err == nil {
		t.Fatal("negative weight accepted")
	}
	// unweighted mode needs a domain
	if _, err := PrunedTopK(si.start, si.doc, si.bel, si.maxb, []OID{1}, nil, 0.4, 3, nil); err == nil {
		t.Fatal("nil domain accepted")
	}
}

func TestPostingsAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	si := mkSynthIndex(rng, 10, 100, 5, 0)
	for term := OID(0); term < 10; term++ {
		got, err := Postings(si.start, si.doc, si.bel, term)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		prev := OID(0)
		for d := 0; d < si.ndocs; d++ {
			if b, ok := si.perDoc[d][term]; ok {
				if got.Head.OIDAt(want) != OID(d) || got.Tail.FloatAt(want) != b {
					t.Fatalf("term %d posting %d mismatch", term, want)
				}
				if want > 0 && got.Head.OIDAt(want) <= prev {
					t.Fatalf("term %d postings not doc-ascending", term)
				}
				prev = got.Head.OIDAt(want)
				want++
			}
		}
		if got.Len() != want {
			t.Fatalf("term %d: %d postings, want %d", term, got.Len(), want)
		}
	}
	// out-of-range term → empty list
	got, err := Postings(si.start, si.doc, si.bel, 99)
	if err != nil || got.Len() != 0 {
		t.Fatalf("OOV postings: len=%d err=%v", got.Len(), err)
	}
}

// TestPrunedTopKMalformedOffsets: hand-built (MIL-reachable) postings with
// corrupt offsets must produce an error, never an out-of-range panic that
// would kill the shell or server.
func TestPrunedTopKMalformedOffsets(t *testing.T) {
	mkStart := func(vals ...int64) *BAT {
		b := NewDense(0, KindInt)
		for i, v := range vals {
			b.MustAppend(OID(i), v)
		}
		return b
	}
	doc := NewDense(0, KindOID)
	bel := NewDense(0, KindFloat)
	for i := 0; i < 3; i++ {
		doc.MustAppend(OID(i), OID(i))
		bel.MustAppend(OID(i), 0.5)
	}
	maxb := NewDense(0, KindFloat)
	maxb.MustAppend(OID(0), 0.5)
	maxb.MustAppend(OID(1), 0.5)
	domain := New(KindVoid, KindVoid)
	domain.MustAppend(OID(0), OID(0))
	for _, start := range []*BAT{
		mkStart(0, 5, 3),  // intermediate offset past the postings
		mkStart(-1, 2, 3), // negative offset
		mkStart(2, 1, 3),  // non-monotone
	} {
		if _, err := PrunedTopK(start, doc, bel, maxb, []OID{0, 1}, nil, 0.4, 1, domain); err == nil {
			t.Fatalf("malformed offsets %v accepted", start.Tail.Ints())
		}
		if _, err := Postings(start, doc, bel, 0); err == nil {
			t.Fatalf("malformed offsets %v accepted by postings", start.Tail.Ints())
		}
	}
}

// TestBoundedTopK pins the shared bounded selector: exact best-k under the
// total order, independent of offer order.
func TestBoundedTopK(t *testing.T) {
	worse := func(a, b int) bool { return a < b } // "best" = largest
	h := NewBoundedTopK(3, worse)
	for _, v := range []int{5, 1, 9, 3, 7, 2, 8} {
		h.Offer(v)
	}
	got := h.Ranked()
	want := []int{9, 8, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranked = %v, want %v", got, want)
		}
	}
	// underfull selector
	h2 := NewBoundedTopK(10, worse)
	h2.Offer(4)
	h2.Offer(6)
	if w, ok := h2.Worst(); !ok || w != 4 || h2.Full() {
		t.Fatalf("underfull: worst=%v ok=%v full=%v", w, ok, h2.Full())
	}
}

// shardSlice cuts a synthIndex to the document range [lo, hi): the
// term-ordered postings restricted to those documents, with shard-local
// max-belief bounds — exactly what one shard of a sharded store holds.
func (si *synthIndex) shardSlice(lo, hi OID) (start, doc, bel, maxb, domain *BAT) {
	start = NewDense(0, KindInt)
	doc = NewDense(0, KindOID)
	bel = NewDense(0, KindFloat)
	maxb = NewDense(0, KindFloat)
	off := int64(0)
	for t := 0; t < si.nterms; t++ {
		start.MustAppend(OID(t), off)
		tlo, thi := int(si.start.Tail.IntAt(t)), int(si.start.Tail.IntAt(t+1))
		mx := 0.0
		for p := tlo; p < thi; p++ {
			d := si.doc.Tail.OIDAt(p)
			if d < lo || d >= hi {
				continue
			}
			b := si.bel.Tail.FloatAt(p)
			doc.MustAppend(OID(off), d)
			bel.MustAppend(OID(off), b)
			if b > mx {
				mx = b
			}
			off++
		}
		maxb.MustAppend(OID(t), mx)
	}
	start.MustAppend(OID(si.nterms), off)
	domain = &BAT{Head: NewVoid(lo, int(hi-lo)), Tail: NewVoid(lo, int(hi-lo))}
	domain.HSorted, domain.HKey = true, true
	return
}

// TestPrunedTopKSharedAcrossShards is the shard-level analog of the
// partition property: document-range "shards" scanned concurrently with
// ONE shared threshold, merged through the bounded selector, must equal
// the single-store scan BUN-for-BUN — the threshold may only prune work,
// never results.
func TestPrunedTopKSharedAcrossShards(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	si := mkSynthIndex(rng, 40, 600, 6, 7)
	queries := [][]OID{
		{1, 2, 3},
		{0, 5, 39, 12},
		{7},
		{3, 3, 100}, // duplicate + out-of-range term
	}
	const def = 0.4
	for _, nShards := range []int{2, 3, 8} {
		for _, q := range queries {
			for _, k := range []int{1, 5, 40} {
				want, err := PrunedTopK(si.start, si.doc, si.bel, si.maxb, q, nil, def, k, si.domain)
				if err != nil {
					t.Fatal(err)
				}
				theta := NewTopKThreshold()
				merged := NewBoundedTopK(k, worseCand)
				var mu sync.Mutex
				var wg sync.WaitGroup
				for s := 0; s < nShards; s++ {
					lo := OID(si.ndocs * s / nShards)
					hi := OID(si.ndocs * (s + 1) / nShards)
					wg.Add(1)
					go func(lo, hi OID) {
						defer wg.Done()
						start, doc, bel, maxb, domain := si.shardSlice(lo, hi)
						got, err := PrunedTopKShared(start, doc, bel, maxb, q, nil, def, k, domain, theta)
						if err != nil {
							t.Error(err)
							return
						}
						mu.Lock()
						for i := 0; i < got.Len(); i++ {
							merged.Offer(topkCand{doc: got.Head.OIDAt(i), score: got.Tail.FloatAt(i)})
						}
						mu.Unlock()
					}(lo, hi)
				}
				wg.Wait()
				ranked := merged.Ranked()
				if len(ranked) != want.Len() {
					t.Fatalf("shards=%d q=%v k=%d: merged %d hits, want %d", nShards, q, k, len(ranked), want.Len())
				}
				for i, c := range ranked {
					if c.doc != want.Head.OIDAt(i) || c.score != want.Tail.FloatAt(i) {
						t.Fatalf("shards=%d q=%v k=%d rank %d: merged (%d, %v), single (%d, %v)",
							nShards, q, k, i, c.doc, c.score, want.Head.OIDAt(i), want.Tail.FloatAt(i))
					}
				}
			}
		}
	}
}

// TestTopKThresholdMonotone pins the threshold contract: Raise never
// lowers, and a threshold equal to the k-th best score never prunes the
// tied documents a second pass would return.
func TestTopKThresholdMonotone(t *testing.T) {
	th := NewTopKThreshold()
	th.Raise(1.5)
	th.Raise(0.5)
	if th.Load() != 1.5 {
		t.Fatalf("threshold lowered to %v", th.Load())
	}
	rng := rand.New(rand.NewSource(3))
	si := mkSynthIndex(rng, 20, 300, 5, 5)
	q := []OID{1, 2, 3}
	const k, def = 10, 0.4
	first, err := PrunedTopK(si.start, si.doc, si.bel, si.maxb, q, nil, def, k, si.domain)
	if err != nil {
		t.Fatal(err)
	}
	// a second scan that starts at the converged threshold (what a late
	// shard sees) must return the identical ranking, ties included
	theta := NewTopKThreshold()
	theta.Raise(first.Tail.FloatAt(first.Len() - 1))
	second, err := PrunedTopKShared(si.start, si.doc, si.bel, si.maxb, q, nil, def, k, si.domain, theta)
	if err != nil {
		t.Fatal(err)
	}
	if second.Len() != first.Len() {
		t.Fatalf("pre-raised threshold changed the result size: %d vs %d", second.Len(), first.Len())
	}
	for i := 0; i < first.Len(); i++ {
		if first.Head.OIDAt(i) != second.Head.OIDAt(i) || first.Tail.FloatAt(i) != second.Tail.FloatAt(i) {
			t.Fatalf("rank %d: (%d, %v) vs (%d, %v)", i,
				first.Head.OIDAt(i), first.Tail.FloatAt(i), second.Head.OIDAt(i), second.Tail.FloatAt(i))
		}
	}
}
