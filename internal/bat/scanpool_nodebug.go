//go:build !pooldebug

package bat

// Release builds: the scan-scratch pool hooks compile to nothing. Build
// with -tags pooldebug to turn on borrow accounting and poisoning.

func scanScratchBorrowed(*scanScratch) {}
func scanScratchReleased(*scanScratch) {}

// LiveScanScratch reports the number of borrowed-but-unreleased scan
// scratch sets. It always returns 0 unless built with -tags pooldebug.
func LiveScanScratch() int { return 0 }
