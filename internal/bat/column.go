// Package bat implements a binary-relational column store in the style of
// the Monet database kernel, which the Mirror DBMS used as its physical
// layer. The single data structure is the BAT (Binary Association Table): a
// two-column table of (head, tail) pairs called BUNs. All higher layers —
// the MIL interpreter, the Moa object algebra, and the inference-network
// retrieval operators — are expressed in terms of BATs and the operators in
// this package. See ARCHITECTURE.md at the repository root for how the
// layers fit together.
//
// # Invariants the rest of the system relies on
//
// Dense heads. A KindVoid column is a virtual dense OID sequence
// [base, base+n): nothing is materialised, lookups are arithmetic, and
// Append enforces density (the next OID must be base+n). The Moa
// decomposition gives every stored set void-headed value BATs, which is
// what makes positional joins and zero-copy persistence possible.
//
// Property flags. HSorted/TSorted/HKey/TKey are conservative: a false
// flag means "unknown", never "violated". Operators may only narrow
// their algorithm choice on a true flag. Append clears flags on
// materialised columns rather than recomputing them.
//
// Views share columns. Reverse, Mirror and Mark return O(1) descriptors
// over the same Column values; treat every BAT reachable from more than
// one descriptor as read-only (all operators do).
//
// Dirty tracking. Append sets the BAT's dirty bit (Dirty/MarkDirty/
// ClearDirty); the persistent buffer pool in internal/storage
// checkpoints exactly the dirty BATs and clears the bit once their heap
// files are durable. Code that mutates a column's backing slice
// directly must call MarkDirty itself.
//
// Pinning. BATs loaded through the buffer pool may be backed by
// memory-mapped heap files. Pin/Release bracket every use of such a
// BAT: the pool never unmaps a BAT with PinCount > 0 (or with dirty
// state), so holding a pin is what makes a loaded column's slices safe
// to read. In-memory BATs carry the same API as a no-op.
package bat

import (
	"fmt"
	"math"
	"strconv"
)

// Kind identifies the atom type stored in one column of a BAT.
type Kind uint8

// The atom kinds supported by the physical layer. KindVoid is a virtual
// column: a dense, materialisation-free sequence of OIDs starting at a base.
const (
	KindVoid  Kind = iota // dense OID sequence, not materialised
	KindOID               // object identifier
	KindInt               // 64-bit signed integer
	KindFloat             // 64-bit IEEE float
	KindStr               // string
	KindBool              // boolean
	KindBytes             // raw byte vector (one byte per BUN)
)

// String returns the MIL name of the kind.
func (k Kind) String() string {
	switch k {
	case KindVoid:
		return "void"
	case KindOID:
		return "oid"
	case KindInt:
		return "int"
	case KindFloat:
		return "flt"
	case KindStr:
		return "str"
	case KindBool:
		return "bit"
	case KindBytes:
		return "bytes"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString parses a MIL type name.
func KindFromString(s string) (Kind, error) {
	switch s {
	case "void":
		return KindVoid, nil
	case "oid":
		return KindOID, nil
	case "int":
		return KindInt, nil
	case "flt", "dbl", "float":
		return KindFloat, nil
	case "str":
		return KindStr, nil
	case "bit", "bool":
		return KindBool, nil
	case "bytes":
		return KindBytes, nil
	}
	return 0, fmt.Errorf("bat: unknown atom type %q", s)
}

// OID is an object identifier, the glue between decomposed columns.
type OID uint64

// Column is a typed vector forming one side of a BAT. A void column stores
// only a base OID and a length; all other kinds store a slice of values.
type Column struct {
	kind  Kind
	base  OID // for KindVoid
	n     int // for KindVoid
	oids  []OID
	ints  []int64
	flts  []float64
	strs  []string
	bools []bool
	bytes []byte
}

// NewColumn returns an empty materialised column of the given kind.
// NewColumn(KindVoid) yields a zero-length dense sequence based at 0.
func NewColumn(kind Kind) *Column {
	return &Column{kind: kind}
}

// NewVoid returns a dense OID column [base, base+n).
func NewVoid(base OID, n int) *Column {
	return &Column{kind: KindVoid, base: base, n: n}
}

// Kind reports the column's atom kind.
func (c *Column) Kind() Kind { return c.kind }

// Base reports the base OID of a void column.
func (c *Column) Base() OID { return c.base }

// Len reports the number of values in the column.
func (c *Column) Len() int {
	switch c.kind {
	case KindVoid:
		return c.n
	case KindOID:
		return len(c.oids)
	case KindInt:
		return len(c.ints)
	case KindFloat:
		return len(c.flts)
	case KindStr:
		return len(c.strs)
	case KindBool:
		return len(c.bools)
	case KindBytes:
		return len(c.bytes)
	}
	return 0
}

// Get returns the i-th value boxed as an interface. Slow path; operators use
// the typed accessors.
func (c *Column) Get(i int) any {
	switch c.kind {
	case KindVoid:
		return c.base + OID(i)
	case KindOID:
		return c.oids[i]
	case KindInt:
		return c.ints[i]
	case KindFloat:
		return c.flts[i]
	case KindStr:
		return c.strs[i]
	case KindBool:
		return c.bools[i]
	case KindBytes:
		return int64(c.bytes[i])
	}
	panic("bat: bad column kind")
}

// OIDAt returns the i-th value of an OID or void column.
func (c *Column) OIDAt(i int) OID {
	if c.kind == KindVoid {
		return c.base + OID(i)
	}
	return c.oids[i]
}

// IntAt returns the i-th value of an int column.
func (c *Column) IntAt(i int) int64 { return c.ints[i] }

// FloatAt returns the i-th value of a float column.
func (c *Column) FloatAt(i int) float64 { return c.flts[i] }

// StrAt returns the i-th value of a string column.
func (c *Column) StrAt(i int) string { return c.strs[i] }

// BoolAt returns the i-th value of a bool column.
func (c *Column) BoolAt(i int) bool { return c.bools[i] }

// Append adds a boxed value; it must match the column kind. Appending to a
// void column only checks density and extends the length.
func (c *Column) Append(v any) error {
	switch c.kind {
	case KindVoid:
		o, ok := toOID(v)
		if !ok {
			return fmt.Errorf("bat: cannot append %T to void column", v)
		}
		if c.n == 0 && len(c.oids) == 0 {
			c.base = o
			c.n = 1
			return nil
		}
		if o != c.base+OID(c.n) {
			return fmt.Errorf("bat: void column density violated: got %d want %d", o, c.base+OID(c.n))
		}
		c.n++
		return nil
	case KindOID:
		o, ok := toOID(v)
		if !ok {
			return fmt.Errorf("bat: cannot append %T to oid column", v)
		}
		c.oids = append(c.oids, o)
		return nil
	case KindInt:
		x, ok := toInt(v)
		if !ok {
			return fmt.Errorf("bat: cannot append %T to int column", v)
		}
		c.ints = append(c.ints, x)
		return nil
	case KindFloat:
		x, ok := toFloat(v)
		if !ok {
			return fmt.Errorf("bat: cannot append %T to flt column", v)
		}
		c.flts = append(c.flts, x)
		return nil
	case KindStr:
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("bat: cannot append %T to str column", v)
		}
		c.strs = append(c.strs, s)
		return nil
	case KindBool:
		b, ok := v.(bool)
		if !ok {
			return fmt.Errorf("bat: cannot append %T to bit column", v)
		}
		c.bools = append(c.bools, b)
		return nil
	case KindBytes:
		x, ok := toInt(v)
		if !ok || x < 0 || x > 255 {
			return fmt.Errorf("bat: cannot append %T to bytes column", v)
		}
		c.bytes = append(c.bytes, byte(x))
		return nil
	}
	return fmt.Errorf("bat: bad column kind %v", c.kind)
}

// appendFrom copies value i of src (same kind family) onto c. A void source
// may feed an OID destination and vice versa when density holds.
func (c *Column) appendFrom(src *Column, i int) {
	switch c.kind {
	case KindOID:
		c.oids = append(c.oids, src.OIDAt(i))
	case KindInt:
		c.ints = append(c.ints, src.ints[i])
	case KindFloat:
		c.flts = append(c.flts, src.flts[i])
	case KindStr:
		c.strs = append(c.strs, src.strs[i])
	case KindBool:
		c.bools = append(c.bools, src.bools[i])
	case KindBytes:
		c.bytes = append(c.bytes, src.bytes[i])
	default:
		panic("bat: appendFrom into void column")
	}
}

// Materialize converts a void column into an explicit OID column; other
// kinds are returned unchanged.
func (c *Column) Materialize() *Column {
	if c.kind != KindVoid {
		return c
	}
	out := &Column{kind: KindOID, oids: make([]OID, c.n)}
	for i := 0; i < c.n; i++ {
		out.oids[i] = c.base + OID(i)
	}
	return out
}

// materialKind maps void to oid, leaving other kinds unchanged.
func materialKind(k Kind) Kind {
	if k == KindVoid {
		return KindOID
	}
	return k
}

// clone returns a deep copy of the column.
func (c *Column) clone() *Column {
	out := &Column{kind: c.kind, base: c.base, n: c.n}
	out.oids = append([]OID(nil), c.oids...)
	out.ints = append([]int64(nil), c.ints...)
	out.flts = append([]float64(nil), c.flts...)
	out.strs = append([]string(nil), c.strs...)
	out.bools = append([]bool(nil), c.bools...)
	out.bytes = append([]byte(nil), c.bytes...)
	return out
}

// slice returns a copy of rows [lo, hi) of the column. For void columns the
// result remains void (re-based).
func (c *Column) slice(lo, hi int) *Column {
	switch c.kind {
	case KindVoid:
		return &Column{kind: KindVoid, base: c.base + OID(lo), n: hi - lo}
	case KindOID:
		return &Column{kind: KindOID, oids: append([]OID(nil), c.oids[lo:hi]...)}
	case KindInt:
		return &Column{kind: KindInt, ints: append([]int64(nil), c.ints[lo:hi]...)}
	case KindFloat:
		return &Column{kind: KindFloat, flts: append([]float64(nil), c.flts[lo:hi]...)}
	case KindStr:
		return &Column{kind: KindStr, strs: append([]string(nil), c.strs[lo:hi]...)}
	case KindBool:
		return &Column{kind: KindBool, bools: append([]bool(nil), c.bools[lo:hi]...)}
	case KindBytes:
		return &Column{kind: KindBytes, bytes: append([]byte(nil), c.bytes[lo:hi]...)}
	}
	panic("bat: bad column kind")
}

// take returns a new column holding the rows of c at the given indexes.
func (c *Column) take(idx []int) *Column {
	out := NewColumn(materialKind(c.kind))
	switch out.kind {
	case KindOID:
		out.oids = make([]OID, len(idx))
		for j, i := range idx {
			out.oids[j] = c.OIDAt(i)
		}
	case KindInt:
		out.ints = make([]int64, len(idx))
		for j, i := range idx {
			out.ints[j] = c.ints[i]
		}
	case KindFloat:
		out.flts = make([]float64, len(idx))
		for j, i := range idx {
			out.flts[j] = c.flts[i]
		}
	case KindStr:
		out.strs = make([]string, len(idx))
		for j, i := range idx {
			out.strs[j] = c.strs[i]
		}
	case KindBool:
		out.bools = make([]bool, len(idx))
		for j, i := range idx {
			out.bools[j] = c.bools[i]
		}
	case KindBytes:
		out.bytes = make([]byte, len(idx))
		for j, i := range idx {
			out.bytes[j] = c.bytes[i]
		}
	}
	return out
}

// toOID coerces numeric boxed values to an OID.
func toOID(v any) (OID, bool) {
	switch x := v.(type) {
	case OID:
		return x, true
	case int:
		return OID(x), true
	case int64:
		return OID(x), true
	case uint64:
		return OID(x), true
	}
	return 0, false
}

// toInt coerces numeric boxed values to int64.
func toInt(v any) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case int:
		return int64(x), true
	case OID:
		return int64(x), true
	}
	return 0, false
}

// toFloat coerces numeric boxed values to float64.
func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	case int:
		return float64(x), true
	}
	return 0, false
}

// FormatValue renders a boxed atom the way MIL prints it.
func FormatValue(v any) string {
	switch x := v.(type) {
	case nil:
		return "nil"
	case OID:
		return fmt.Sprintf("%d@0", uint64(x))
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			return strconv.FormatFloat(x, 'f', 1, 64)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return strconv.Quote(x)
	case bool:
		if x {
			return "true"
		}
		return "false"
	}
	return fmt.Sprintf("%v", v)
}
