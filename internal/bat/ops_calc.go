package bat

import (
	"fmt"
	"math"
)

// The bulk arithmetic operators pre-size their output columns and fill them
// by index — one allocation, no per-row append — and fan the fill over the
// parallel kernel (ParallelFor) for large inputs. Every output element
// depends only on its own inputs, so the parallel result is bit-identical
// to the serial one.

// Multiplex lifts a binary scalar operator over two positionally aligned
// BATs: MIL's [op](a, b). The result is [a.head, a.tail op b.tail]. Both
// operands must have the same length; heads are assumed aligned (the
// flattener guarantees this, and the MIL interpreter checks lengths).
func Multiplex(op string, a, b *BAT) (*BAT, error) {
	if a.Len() != b.Len() {
		return nil, fmt.Errorf("bat: multiplex [%s] length mismatch %d vs %d", op, a.Len(), b.Len())
	}
	n := a.Len()
	av, err := numericReader(a.Tail)
	if err == nil {
		bv, err2 := numericReader(b.Tail)
		if err2 == nil {
			f, boolResult, err3 := numericOp(op)
			if err3 != nil {
				// fall through to string ops below
			} else {
				out := &BAT{Head: a.Head.clone()}
				out.HSorted, out.HKey = a.HSorted || a.HDense(), a.HKey || a.HDense()
				if boolResult {
					out.Tail = &Column{kind: KindBool, bools: make([]bool, n)}
					ParallelFor(n, func(lo, hi int) {
						for i := lo; i < hi; i++ {
							out.Tail.bools[i] = f(av(i), bv(i)) != 0
						}
					})
				} else {
					out.Tail = &Column{kind: KindFloat, flts: make([]float64, n)}
					ParallelFor(n, func(lo, hi int) {
						for i := lo; i < hi; i++ {
							out.Tail.flts[i] = f(av(i), bv(i))
						}
					})
				}
				return out, nil
			}
		}
	}
	// String concatenation and comparisons.
	if a.Tail.Kind() == KindStr && b.Tail.Kind() == KindStr {
		out := &BAT{Head: a.Head.clone()}
		switch op {
		case "+":
			out.Tail = &Column{kind: KindStr, strs: make([]string, n)}
			ParallelFor(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out.Tail.strs[i] = a.Tail.strs[i] + b.Tail.strs[i]
				}
			})
		case "==", "!=", "<", "<=", ">", ">=":
			out.Tail = &Column{kind: KindBool, bools: make([]bool, n)}
			ParallelFor(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out.Tail.bools[i] = strCompare(op, a.Tail.strs[i], b.Tail.strs[i])
				}
			})
		default:
			return nil, fmt.Errorf("bat: multiplex [%s] unsupported on str", op)
		}
		return out, nil
	}
	if a.Tail.Kind() == KindBool && b.Tail.Kind() == KindBool {
		var f func(x, y bool) bool
		switch op {
		case "and":
			f = func(x, y bool) bool { return x && y }
		case "or":
			f = func(x, y bool) bool { return x || y }
		case "==":
			f = func(x, y bool) bool { return x == y }
		case "!=":
			f = func(x, y bool) bool { return x != y }
		default:
			return nil, fmt.Errorf("bat: multiplex [%s] unsupported on bit", op)
		}
		out := &BAT{Head: a.Head.clone(), Tail: &Column{kind: KindBool, bools: make([]bool, n)}}
		ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.Tail.bools[i] = f(a.Tail.bools[i], b.Tail.bools[i])
			}
		})
		return out, nil
	}
	return nil, fmt.Errorf("bat: multiplex [%s] on %s/%s tails", op, a.Tail.Kind(), b.Tail.Kind())
}

// MultiplexConst lifts op over a BAT and a scalar constant: [op](a, c) or,
// when rightConst is false, [op](c, a).
func MultiplexConst(op string, a *BAT, c any, rightConst bool) (*BAT, error) {
	n := a.Len()
	av, err := numericReader(a.Tail)
	cf, okc := toFloat(c)
	if err == nil && okc {
		f, boolResult, err3 := numericOp(op)
		if err3 != nil {
			return nil, err3
		}
		out := &BAT{Head: a.Head.clone()}
		out.HSorted, out.HKey = a.HSorted || a.HDense(), a.HKey || a.HDense()
		apply := func(i int) float64 {
			if rightConst {
				return f(av(i), cf)
			}
			return f(cf, av(i))
		}
		if boolResult {
			out.Tail = &Column{kind: KindBool, bools: make([]bool, n)}
			ParallelFor(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out.Tail.bools[i] = apply(i) != 0
				}
			})
		} else {
			out.Tail = &Column{kind: KindFloat, flts: make([]float64, n)}
			ParallelFor(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out.Tail.flts[i] = apply(i)
				}
			})
		}
		return out, nil
	}
	if s, ok := c.(string); ok && a.Tail.Kind() == KindStr {
		out := &BAT{Head: a.Head.clone()}
		if op == "+" {
			out.Tail = &Column{kind: KindStr, strs: make([]string, n)}
			ParallelFor(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if rightConst {
						out.Tail.strs[i] = a.Tail.strs[i] + s
					} else {
						out.Tail.strs[i] = s + a.Tail.strs[i]
					}
				}
			})
			return out, nil
		}
		out.Tail = &Column{kind: KindBool, bools: make([]bool, n)}
		ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				l, r := a.Tail.strs[i], s
				if !rightConst {
					l, r = r, l
				}
				out.Tail.bools[i] = strCompare(op, l, r)
			}
		})
		return out, nil
	}
	return nil, fmt.Errorf("bat: multiplex [%s] const %T on %s tail", op, c, a.Tail.Kind())
}

// MultiplexUnary lifts a unary function over the tail of a: [f](a).
func MultiplexUnary(fn string, a *BAT) (*BAT, error) {
	n := a.Len()
	if fn == "not" {
		if a.Tail.Kind() != KindBool {
			return nil, fmt.Errorf("bat: [not] needs bit tail, got %s", a.Tail.Kind())
		}
		out := &BAT{Head: a.Head.clone(), Tail: &Column{kind: KindBool, bools: make([]bool, n)}}
		ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.Tail.bools[i] = !a.Tail.bools[i]
			}
		})
		return out, nil
	}
	av, err := numericReader(a.Tail)
	if err != nil {
		return nil, fmt.Errorf("bat: [%s]: %v", fn, err)
	}
	var f func(float64) float64
	switch fn {
	case "log":
		f = math.Log
	case "log2":
		f = math.Log2
	case "log10":
		f = math.Log10
	case "exp":
		f = math.Exp
	case "sqrt":
		f = math.Sqrt
	case "abs":
		f = math.Abs
	case "neg":
		f = func(x float64) float64 { return -x }
	case "flt", "dbl":
		f = func(x float64) float64 { return x }
	default:
		return nil, fmt.Errorf("bat: unknown unary multiplex [%s]", fn)
	}
	out := &BAT{Head: a.Head.clone(), Tail: &Column{kind: KindFloat, flts: make([]float64, n)}}
	out.HSorted, out.HKey = a.HSorted || a.HDense(), a.HKey || a.HDense()
	ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Tail.flts[i] = f(av(i))
		}
	})
	return out, nil
}

// numericReader returns a positional float64 reader over a column, or an
// error if the column is not numeric.
func numericReader(c *Column) (func(int) float64, error) {
	switch c.Kind() {
	case KindFloat:
		return func(i int) float64 { return c.flts[i] }, nil
	case KindInt:
		return func(i int) float64 { return float64(c.ints[i]) }, nil
	case KindOID, KindVoid:
		return func(i int) float64 { return float64(c.OIDAt(i)) }, nil
	case KindBool:
		return func(i int) float64 {
			if c.bools[i] {
				return 1
			}
			return 0
		}, nil
	}
	return nil, fmt.Errorf("column kind %s is not numeric", c.Kind())
}

// numericOp resolves an operator name to a float function; boolResult
// reports whether the output is a comparison (bit column).
func numericOp(op string) (f func(a, b float64) float64, boolResult bool, err error) {
	switch op {
	case "+":
		return func(a, b float64) float64 { return a + b }, false, nil
	case "-":
		return func(a, b float64) float64 { return a - b }, false, nil
	case "*":
		return func(a, b float64) float64 { return a * b }, false, nil
	case "/":
		return func(a, b float64) float64 {
			if b == 0 {
				return 0
			}
			return a / b
		}, false, nil
	case "min":
		return math.Min, false, nil
	case "max":
		return math.Max, false, nil
	case "pow":
		return math.Pow, false, nil
	case "==":
		return func(a, b float64) float64 { return b2f(a == b) }, true, nil
	case "!=":
		return func(a, b float64) float64 { return b2f(a != b) }, true, nil
	case "<":
		return func(a, b float64) float64 { return b2f(a < b) }, true, nil
	case "<=":
		return func(a, b float64) float64 { return b2f(a <= b) }, true, nil
	case ">":
		return func(a, b float64) float64 { return b2f(a > b) }, true, nil
	case ">=":
		return func(a, b float64) float64 { return b2f(a >= b) }, true, nil
	}
	return nil, false, fmt.Errorf("bat: unknown multiplex operator [%s]", op)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func strCompare(op, a, b string) bool {
	switch op {
	case "==":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}
