//go:build pooldebug

package bat

import (
	"math/rand"
	"testing"
)

// TestBlockCursorPoolNoLeaks drives the compressed scan over success,
// parallel-partition, and corrupt-payload error paths and requires every
// borrowed cursor set to be back in the pool afterwards. Runs only under
// -tags pooldebug (the borrow registry is compiled out otherwise).
func TestBlockCursorPoolNoLeaks(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	si := mkSynthIndex(rng, 10, 2500, 5, 4)
	raw := segSplit(si, []int{900, 2500}, false)
	blk := blockSegs(t, raw)
	base := LiveBlockCursors()

	// Serial and parallel successful scans.
	for round := 0; round < 10; round++ {
		query := []OID{OID(rng.Intn(11)), OID(rng.Intn(11)), OID(rng.Intn(11))}
		if _, err := PrunedTopKSegs(blk, query, nil, 0.4, 1+rng.Intn(20), si.domain, nil); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		old := SetParallelThreshold(1)
		_, err := PrunedTopKSegs(blk, query, []float64{1, 2, 0}, 0.4, 5, si.domain, nil)
		SetParallelThreshold(old)
		if err != nil {
			t.Fatalf("round %d parallel: %v", round, err)
		}
	}

	// Error path: corrupt payload must still release on the way out.
	bad := blockSegs(t, raw)
	data := bad[0].BlkDoc.Tail.Bytes()
	for i := range data {
		data[i] = 0xff
	}
	for _, thr := range []int{0, 1} {
		old := SetParallelThreshold(thr)
		_, err := PrunedTopKSegs(bad, []OID{0, 1, 2}, nil, 0.4, 5, si.domain, nil)
		SetParallelThreshold(old)
		if err == nil {
			t.Fatal("corrupt scan returned no error")
		}
	}

	if live := LiveBlockCursors(); live != base {
		t.Fatalf("leaked %d block cursor sets", live-base)
	}
}
