package bat

// This file is the contract between the column store and the persistent
// BAT buffer pool (internal/storage): raw access to a column's backing
// slice so heap files can be written without boxing, and "adopt"
// constructors that wrap externally owned memory (an mmap'd heap file)
// as a Column without copying.
//
// Adopted slices are handed over with cap == len, so any Append on the
// column reallocates into private memory instead of writing through to
// the mapping (which the pool maps read-only). The pool keeps the
// mapping alive until the BAT is evicted; see storage.Pool.

// OIDs returns the backing slice of an oid column. The slice is the
// column's live storage: callers must treat it as read-only.
func (c *Column) OIDs() []OID { return c.oids }

// Ints returns the backing slice of an int column (read-only).
func (c *Column) Ints() []int64 { return c.ints }

// Floats returns the backing slice of a flt column (read-only).
func (c *Column) Floats() []float64 { return c.flts }

// Strs returns the backing slice of a str column (read-only).
func (c *Column) Strs() []string { return c.strs }

// Bools returns the backing slice of a bit column (read-only).
func (c *Column) Bools() []bool { return c.bools }

// Bytes returns the backing slice of a bytes column (read-only).
func (c *Column) Bytes() []byte { return c.bytes }

// ColumnOfOIDs wraps s as an oid column without copying.
func ColumnOfOIDs(s []OID) *Column { return &Column{kind: KindOID, oids: s[:len(s):len(s)]} }

// ColumnOfInts wraps s as an int column without copying.
func ColumnOfInts(s []int64) *Column { return &Column{kind: KindInt, ints: s[:len(s):len(s)]} }

// ColumnOfFloats wraps s as a flt column without copying.
func ColumnOfFloats(s []float64) *Column { return &Column{kind: KindFloat, flts: s[:len(s):len(s)]} }

// ColumnOfStrs wraps s as a str column without copying.
func ColumnOfStrs(s []string) *Column { return &Column{kind: KindStr, strs: s[:len(s):len(s)]} }

// ColumnOfBools wraps s as a bit column without copying.
func ColumnOfBools(s []bool) *Column { return &Column{kind: KindBool, bools: s[:len(s):len(s)]} }

// ColumnOfBytes wraps s as a bytes column without copying.
func ColumnOfBytes(s []byte) *Column { return &Column{kind: KindBytes, bytes: s[:len(s):len(s)]} }

// FromColumns assembles a BAT from two columns plus its property flags,
// the inverse of tearing one apart with Head/Tail. Used by the storage
// layer when rebuilding a BAT from loaded heap files.
func FromColumns(head, tail *Column, hsorted, tsorted, hkey, tkey bool) (*BAT, error) {
	b := &BAT{
		Head: head, Tail: tail,
		HSorted: hsorted, TSorted: tsorted,
		HKey: hkey, TKey: tkey,
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// MemBytes estimates the resident size of the BAT's two columns in
// bytes; the buffer pool uses it to enforce its byte budget.
func (b *BAT) MemBytes() int64 {
	return b.Head.memBytes() + b.Tail.memBytes()
}

func (c *Column) memBytes() int64 {
	switch c.kind {
	case KindVoid:
		return 16
	case KindOID:
		return int64(len(c.oids)) * 8
	case KindInt:
		return int64(len(c.ints)) * 8
	case KindFloat:
		return int64(len(c.flts)) * 8
	case KindStr:
		var n int64
		for _, s := range c.strs {
			n += int64(len(s)) + 16
		}
		return n
	case KindBool:
		return int64(len(c.bools))
	case KindBytes:
		return int64(len(c.bytes))
	}
	return 0
}
