package bat

// Frozen point-in-time views for snapshot-isolated queries.
//
// The online-indexing epochs in internal/core serve every query from an
// immutable snapshot of the database while inserts keep appending to the
// live BATs. A frozen view makes that safe without copying data: it is a
// fresh BAT descriptor whose columns capture the live column's backing
// slices *at their current length*. Appends to the live BAT either write
// past that length (memory the view never reads) or reallocate the
// backing array (the view keeps the old one), so readers of the view are
// race-free for as long as nobody overwrites existing elements in place —
// which is exactly the append-only discipline every stored column already
// follows (derived columns are replaced wholesale, never edited).
//
// Freeze must run while no append is in flight (the caller holds the
// owning store's write lock); the view itself is then safe for unlocked
// concurrent reads forever.

// Freeze returns an immutable point-in-time view of b sharing its backing
// storage. The caller must guarantee no append is concurrently mutating b
// during the call. The view carries no dirty/pin state of its own — the
// canonical BAT remains the one the buffer pool tracks (and must stay
// pinned for as long as views of it are alive).
func Freeze(b *BAT) *BAT {
	return &BAT{
		Head:    freezeColumn(b.Head),
		Tail:    freezeColumn(b.Tail),
		HSorted: b.HSorted, TSorted: b.TSorted,
		HKey: b.HKey, TKey: b.TKey,
	}
}

// freezeColumn copies the column descriptor and clips every slice's
// capacity to its length, so even an (erroneous) append to the frozen
// view reallocates instead of scribbling into the live column's array.
func freezeColumn(c *Column) *Column {
	out := &Column{kind: c.kind, base: c.base, n: c.n}
	out.oids = c.oids[:len(c.oids):len(c.oids)]
	out.ints = c.ints[:len(c.ints):len(c.ints)]
	out.flts = c.flts[:len(c.flts):len(c.flts)]
	out.strs = c.strs[:len(c.strs):len(c.strs)]
	out.bools = c.bools[:len(c.bools):len(c.bools)]
	out.bytes = c.bytes[:len(c.bytes):len(c.bytes)]
	return out
}

// EnsureIndex eagerly builds the head hash index (normally built lazily
// on the first point lookup). Epoch publication calls it on the frozen
// reversed-term view so the first query after a publish does not pay the
// O(postings) index build inside its latency budget. Concurrent callers
// are safe either way — the index is installed atomically — this only
// moves the cost.
func (b *BAT) EnsureIndex() {
	if !b.HDense() {
		b.ensureHash()
	}
}
