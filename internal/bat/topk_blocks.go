package bat

import (
	"math"
	"sort"
	"sync/atomic"
)

// Block-compressed variant of the max-score scan (topk.go): the same
// document-at-a-time evaluation and the same canonical-fold scoring,
// but postings arrive in PostingsBlockSize blocks (postcodec.go) that
// are decoded lazily into pooled cursors — and, block-max WAND style,
// whole blocks are skipped without decoding whenever the sum of the
// essential terms' quantized per-block bounds cannot beat the shared
// rising threshold. The bounds are quantized UP at encode time, so a
// skipped block provably holds no top-k document: pruned ≡ exhaustive
// stays BUN-for-BUN, ties included, exactly as for the raw layout.

// blockScanStats counts block decode work across all scans (surfaced
// through BlockScanStats into moash \stats). skipped counts blocks the
// scan moved past without decoding; decoded counts actual decodes.
var blockScanStats struct {
	decoded atomic.Int64
	skipped atomic.Int64
}

// BlockScanStats reports the cumulative number of postings blocks
// decoded and skipped by block-compressed scans since process start.
func BlockScanStats() (decoded, skipped int64) {
	return blockScanStats.decoded.Load(), blockScanStats.skipped.Load()
}

// blockCursor is one query term's decode state over a block-layout
// segment. Buffers persist across pool reuses; reset() only clears the
// positions.
type blockCursor struct {
	bp *BlockPostings
	t  int // term index in the segment dictionary; -1 = no postings

	blk      int // decoded block index, -1 none
	plo, phi int // global posting span of the decoded block
	belsOK   bool

	dictOK  bool
	dict    []float64 // nil after load = raw-coded term
	dictOff int64

	decoded int64 // per-scan stats, flushed once per scan
	skipped int64

	err error

	docs []OID
	tfs  []int64
	bels []float64
	dbuf []float64 // dictionary storage (dict aliases it when loaded)
}

func (c *blockCursor) reset() {
	c.bp, c.t = nil, -1
	c.blk, c.plo, c.phi = -1, 0, 0
	c.belsOK, c.dictOK, c.dict, c.dictOff = false, false, nil, 0
	c.decoded, c.skipped = 0, 0
	c.err = nil
	if c.docs == nil {
		c.docs = make([]OID, PostingsBlockSize)
		c.tfs = make([]int64, PostingsBlockSize)
		c.bels = make([]float64, PostingsBlockSize)
	}
}

// bind points the cursor at term t of view bp (t == -1 for a term with
// no postings in the segment).
func (c *blockCursor) bind(bp *BlockPostings, t int) {
	c.bp, c.t = bp, t
	c.blk, c.plo, c.phi = -1, 0, 0
	c.belsOK, c.dictOK, c.dict, c.dictOff = false, false, nil, 0
	c.err = nil
}

// blockOf maps a global posting position of the cursor's term to its
// block index.
func (c *blockCursor) blockOf(pos int) int {
	return int(c.bp.blkStart[c.t]) + (pos-int(c.bp.start[c.t]))/PostingsBlockSize
}

// ensure decodes the block containing pos (doc ids only; beliefs are
// decoded on first belAt). Reports false — with c.err set — on corrupt
// data.
func (c *blockCursor) ensure(pos int) bool {
	if c.err != nil {
		return false
	}
	if c.blk >= 0 && pos >= c.plo && pos < c.phi {
		return true
	}
	b := c.blockOf(pos)
	if _, err := c.bp.DecodeDocBlock(c.t, b, c.docs, nil); err != nil {
		c.err = err
		return false
	}
	c.blk = b
	c.plo, c.phi = c.bp.BlockSpan(c.t, b)
	c.belsOK = false
	c.decoded++
	return true
}

// docAt returns the doc id at global posting position pos.
func (c *blockCursor) docAt(pos int) (OID, bool) {
	if !c.ensure(pos) {
		return 0, false
	}
	return c.docs[pos-c.plo], true
}

// belAt returns the (bit-exact) belief at global posting position pos.
func (c *blockCursor) belAt(pos int) (float64, bool) {
	if !c.ensure(pos) {
		return 0, false
	}
	if !c.belsOK {
		if !c.dictOK {
			dict, off, err := c.bp.TermDict(c.t, c.dbuf)
			if err != nil {
				c.err = err
				return 0, false
			}
			c.dict, c.dictOff, c.dictOK = dict, off, true
			if dict != nil {
				c.dbuf = dict // keep the (possibly grown) backing array
			}
		}
		if err := c.bp.DecodeBelBlock(c.t, c.blk, c.dict, c.dictOff, c.bels); err != nil {
			c.err = err
			return 0, false
		}
		c.belsOK = true
	}
	return c.bels[pos-c.plo], true
}

// search returns the first global posting position in [lo, hi) whose
// doc id is ≥ d, decoding at most one block; blocks passed over count
// as skipped. On corrupt data it returns hi with c.err set.
func (c *blockCursor) search(lo, hi int, d OID) int {
	if lo >= hi {
		return hi
	}
	if c.err != nil {
		return hi
	}
	if c.blk >= 0 && lo >= c.plo && lo < c.phi && d <= OID(c.bp.blkDir[2*c.blk]) {
		// the answer is inside the already-decoded block: its lastDoc is
		// ≥ d and docs ascend, so no directory search is needed
		p, ph := lo, c.phi
		if ph > hi {
			ph = hi
		}
		for p < ph {
			mid := int(uint(p+ph) >> 1)
			if c.docs[mid-c.plo] >= d {
				ph = mid
			} else {
				p = mid + 1
			}
		}
		// p == hi only when the window was clamped by hi (the block's
		// lastDoc is ≥ d, so an unclamped window always contains a hit)
		return p
	}
	blo, bhi := c.blockOf(lo), c.blockOf(hi-1)
	// First block in [blo, bhi] whose lastDoc is ≥ d. Callers probe with
	// ascending doc ids, so the hit is usually within a block or two of
	// the cursor: gallop from blo to bracket it before binary searching
	// (lastDocs ascend within a term, so a probe with lastDoc < d rules
	// out every block at or below it).
	b, bh := blo, bhi+1
	for p, step := blo, 1; p <= bhi; p, step = p+step, step<<1 {
		if OID(c.bp.blkDir[2*p]) >= d {
			bh = p
			break
		}
		b = p + 1
	}
	for b < bh {
		mid := int(uint(b+bh) >> 1)
		if OID(c.bp.blkDir[2*mid]) >= d {
			bh = mid
		} else {
			b = mid + 1
		}
	}
	if b > bhi {
		c.skipped += int64(bhi - blo + 1)
		return hi
	}
	c.skipped += int64(b - blo)
	if b != c.blk {
		if !c.ensure(int(c.bp.start[c.t]) + (b-int(c.bp.blkStart[c.t]))*PostingsBlockSize) {
			return hi
		}
	}
	slo, shi := lo, hi
	if slo < c.plo {
		slo = c.plo
	}
	if shi > c.phi {
		shi = c.phi
	}
	pos, ph := slo, shi
	for pos < ph {
		mid := int(uint(pos+ph) >> 1)
		if c.docs[mid-c.plo] >= d {
			ph = mid
		} else {
			pos = mid + 1
		}
	}
	if pos == shi && shi < hi {
		// everything in this block's window is < d; the answer is in a
		// later block, beyond hi's clamp
		return hi
	}
	return pos
}

// flushStats publishes the per-scan decode counters.
func (c *blockCursor) flushStats() {
	if c.decoded != 0 {
		blockScanStats.decoded.Add(c.decoded)
	}
	if c.skipped != 0 {
		blockScanStats.skipped.Add(c.skipped)
	}
	c.decoded, c.skipped = 0, 0
}

// scanBlockPartition runs one document-range partition [docLo, docHi)
// of a block-layout segment: it borrows a cursor set, seeks every term
// to the partition bounds, runs the block-max scan, and releases the
// cursors on every path.
func scanBlockPartition(bp *BlockPostings, ranges []postingRange, query []OID, weights []float64, weighted bool, def, fillBase float64, docLo, docHi OID, h *BoundedTopK[topkCand], theta *TopKThreshold) error {
	cset := borrowBlockCursors(len(query))
	defer releaseBlockCursors(cset)
	sc := borrowScanScratch(len(query))
	defer releaseScanScratch(sc)
	terms := sc.terms
	for i := range query {
		w := 1.0
		if weighted {
			w = weights[i]
		}
		t := -1
		if ranges[i].hi > ranges[i].lo {
			t = int(ranges[i].t)
		}
		cset.cs[i].bind(bp, t)
		tlo, thi := ranges[i].lo, ranges[i].hi
		if t >= 0 && docLo > 0 {
			tlo = cset.cs[i].search(tlo, thi, docLo)
		}
		if t >= 0 && docHi != OID(math.MaxUint64) {
			thi = cset.cs[i].search(tlo, thi, docHi)
		}
		// partition seeks jump over blocks other partitions own; they are
		// not pruning work, so keep them out of the skip-rate counter
		cset.cs[i].skipped = 0
		terms[i] = qterm{qi: i, cur: tlo, hi: thi, weight: w}
	}
	err := maxscoreScanBlocks(bp, cset.cs, terms, query, weights, def, fillBase, h, theta, sc)
	for i := range cset.cs {
		if err == nil && cset.cs[i].err != nil {
			err = cset.cs[i].err
		}
		cset.cs[i].flushStats()
	}
	return err
}

// maxscoreScanBlocks is maxscoreScan over a block-layout segment: the
// same essential/non-essential split, candidate selection and scoring
// fold, plus block-max skipping. cs[i] is the cursor of terms[i]; terms
// must be sc.terms (sc supplies every working slice).
func maxscoreScanBlocks(bp *BlockPostings, cs []blockCursor, terms []qterm, query []OID, weights []float64, def, fillBase float64, h *BoundedTopK[topkCand], theta *TopKThreshold, sc *scanScratch) error {
	m := len(terms)
	if m == 0 {
		return nil
	}
	for i := range terms {
		ub := 0.0
		if t := cs[i].t; t >= 0 {
			if lo, hi := bp.TermRange(t); hi > lo {
				mb := bp.MaxBelief(t)
				if mb < def {
					mb = def
				}
				ub = terms[i].weight * (mb - def)
			}
		}
		terms[i].ub = ub
	}
	perm := sc.perm
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return terms[perm[a]].ub > terms[perm[b]].ub })
	suffixUB := sc.suffix
	suffixUB[m] = 0
	for j := m - 1; j >= 0; j-- {
		suffixUB[j] = suffixUB[j+1] + terms[perm[j]].ub
	}
	e := m
	negInf := math.Inf(-1)

	fbel := sc.fbel
	stamp := sc.stamp
	cur := 0

	// docs caches terms[i]'s current doc id: the candidate-selection and
	// scoring loops read a slice instead of re-resolving block state, and
	// refresh runs once per cursor advance. Exhausted cursors park at the
	// sentinel so both loops need no separate cur<hi guard (doc ids are
	// strictly below the domain, never MaxUint64).
	const exhausted = OID(math.MaxUint64)
	docs := sc.docs
	refresh := func(i int) bool {
		qt := &terms[i]
		if qt.cur < qt.hi {
			d, ok := cs[i].docAt(qt.cur)
			if !ok {
				return false
			}
			docs[i] = d
		} else {
			docs[i] = exhausted
		}
		return true
	}
	for i := range terms {
		if !refresh(i) {
			return cs[i].err
		}
	}

	shrink := func(th float64) {
		for e > 0 && fillBase+suffixUB[e-1]+boundSlack <= th {
			e--
		}
	}
	threshold := func() float64 {
		if w, ok := h.Worst(); ok && h.Full() {
			return w.score
		}
		return math.Inf(-1)
	}
	fail := func() error {
		for i := range cs {
			if cs[i].err != nil {
				return cs[i].err
			}
		}
		return nil
	}
	// Fence for the block-max check: after a failed check its inputs are
	// frozen until the threshold rises, a cursor crosses into a new block
	// (only possible once the candidate doc exceeds the fenced min
	// lastDoc), or an essential term exhausts — so the per-term bound
	// recomputation is gated on those events instead of running every
	// candidate.
	skipFence := OID(0)
	fenceTh := math.Inf(-1)
	fenced := false

	// Directory cache: the block under each cursor, its posting span,
	// last doc and weighted bound, refreshed only when the cursor leaves
	// the cached span. The skip loop re-reads this state once per block
	// combination; uncached, every read costs a blockOf division plus
	// three directory lookups, and on a warm (seeded) threshold — where
	// the whole scan is that loop — the difference is the query time.
	// Pooled scratch holds garbage spans, so empty them first.
	blkLo, blkHi := sc.blkLo, sc.blkHi
	blkIdx, blkLast, blkUB := sc.blkIdx, sc.blkLast, sc.blkUB
	for i := range terms {
		blkLo[i], blkHi[i] = 0, 0
	}
	dirRefresh := func(i int) {
		cur := terms[i].cur
		if cur >= blkLo[i] && cur < blkHi[i] {
			return
		}
		c := &cs[i]
		b := c.blockOf(cur)
		blkIdx[i] = b
		blkLo[i], blkHi[i] = bp.BlockSpan(c.t, b)
		blkLast[i] = bp.BlockLast(b)
		qm := bp.BlockMax(b)
		if qm < def {
			qm = def
		}
		blkUB[i] = terms[i].weight * (qm - def)
	}
	// th carries max(local k-th best, shared θ) across candidates. Both
	// sources are monotone — the heap's worst moves only on Offer, the
	// shared bound only rises — so th is maintained at those two events
	// instead of re-deriving it (two heap calls) per candidate. Prunes
	// against any finite threshold (seeded or shared), not only a locally
	// full heap — see maxscoreScan.
	th := threshold()
	if th > negInf {
		shrink(th)
	}
	for {
		if g := theta.Load(); g > th {
			th = g
			shrink(th)
		}
		best := exhausted
		for j := 0; j < e; j++ {
			if d := docs[perm[j]]; d < best {
				best = d
			}
		}
		if best == exhausted {
			return nil
		}
		if th > negInf && (!fenced || th > fenceTh || best > skipFence) {
			// Block-max skip: every unread essential posting with doc ≤
			// minLast lies in its term's current block (each active
			// essential block ends at ≥ minLast), so if the quantized
			// current-block bounds plus the non-essential suffix cannot
			// beat the threshold, no document up to minLast can enter
			// the top k. The loop advances through runs of skippable
			// block combinations using ONLY the directory — cursors hop
			// to the next block's start position without decoding — and
			// decodes at most one landing block per term once the run
			// ends. With a terminal (θ-memo seeded) threshold this is
			// what turns a repeat query into a directory walk.
			jumped := false
			lastSkip := OID(0)
			for {
				sumUB := 0.0
				minLast := OID(math.MaxUint64)
				active := false
				for j := 0; j < e; j++ {
					i := perm[j]
					if terms[i].cur >= terms[i].hi {
						continue
					}
					dirRefresh(i)
					sumUB += blkUB[i]
					if last := blkLast[i]; !active || last < minLast {
						minLast = last
					}
					active = true
				}
				if !(active && fillBase+sumUB+suffixUB[e]+boundSlack <= th) {
					skipFence, fenceTh, fenced = minLast, th, true
					break
				}
				// Skippable: move every essential cursor whose current
				// block ends at minLast to its next block's first posting
				// (the in-between postings are all ≤ minLast). Directory
				// arithmetic only — no decode. The cached state is fresh
				// here (dirRefresh ran in the bound pass just above).
				for j := 0; j < e; j++ {
					i := perm[j]
					qt := &terms[i]
					if qt.cur >= qt.hi {
						continue
					}
					if blkLast[i] > minLast {
						continue // target is inside this block; land below
					}
					c := &cs[i]
					b := blkIdx[i]
					if b != c.blk {
						c.skipped++
					}
					t := c.t
					if nb := b + 1; nb < int(bp.blkStart[t+1]) {
						pos := blkHi[i] // next block starts where this span ends
						if pos > qt.hi {
							pos = qt.hi
						}
						if pos > qt.cur {
							qt.cur = pos
						}
					} else {
						qt.cur = qt.hi
					}
				}
				jumped, lastSkip = true, minLast
			}
			if jumped {
				// Land exactly past the last skipped document; decodes at
				// most one block per essential term. Refresh every essential
				// cursor, not just the still-live ones: a skip run can move a
				// cursor to exhaustion, and its docs[i] cache would otherwise
				// hold a stale doc id that later matches a candidate and
				// indexes beliefs outside the decoded window.
				for j := 0; j < e; j++ {
					i := perm[j]
					qt := &terms[i]
					if qt.cur < qt.hi {
						qt.cur = cs[i].search(qt.cur, qt.hi, lastSkip+1)
					}
					if !refresh(i) {
						return cs[i].err
					}
				}
				if err := fail(); err != nil {
					return err
				}
				continue
			}
		}
		cur++
		known := 0.0
		for j := 0; j < e; j++ {
			i := perm[j]
			if docs[i] == best {
				qt := &terms[i]
				c := &cs[i]
				// refresh already decoded the block holding qt.cur, so
				// when its beliefs are in too this is a plain slice read
				var bel float64
				if c.belsOK {
					bel = c.bels[qt.cur-c.plo]
				} else {
					var ok bool
					if bel, ok = c.belAt(qt.cur); !ok {
						return c.err
					}
				}
				fbel[qt.qi], stamp[qt.qi] = bel, cur
				known += qt.weight * (bel - def)
				qt.cur++
				switch {
				case qt.cur >= qt.hi:
					docs[i] = exhausted
					fenced = false
				case qt.cur < c.phi:
					docs[i] = c.docs[qt.cur-c.plo]
				default:
					if !refresh(i) {
						return c.err
					}
				}
			}
		}
		bound := fillBase + known + suffixUB[e]
		if bound+boundSlack <= th {
			continue
		}
		pruned := false
		for j := e; j < m; j++ {
			qt := &terms[perm[j]]
			c := &cs[perm[j]]
			bound -= qt.ub
			pos := c.search(qt.cur, qt.hi, best)
			if c.err != nil {
				return c.err
			}
			if pos < qt.hi {
				d, ok := c.docAt(pos)
				if !ok {
					return c.err
				}
				if d == best {
					bel, ok := c.belAt(pos)
					if !ok {
						return c.err
					}
					fbel[qt.qi], stamp[qt.qi] = bel, cur
					bound += qt.weight * (bel - def)
					qt.cur = pos + 1
				} else {
					qt.cur = pos
				}
			} else {
				qt.cur = pos
			}
			if bound+boundSlack <= th {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		score := 0.0
		if weights == nil {
			matched := 0
			for qi := 0; qi < m; qi++ {
				if stamp[qi] == cur {
					score += fbel[qi]
					matched++
				}
			}
			score += float64(m-matched) * def
		} else {
			for qi := 0; qi < m; qi++ {
				if stamp[qi] == cur {
					score += weights[qi] * (fbel[qi] - def)
				}
			}
			score += fillBase
		}
		h.Offer(topkCand{doc: best, score: score})
		if h.Full() {
			if w := threshold(); w > th {
				th = w
				shrink(th)
			}
			theta.Raise(th)
		}
	}
}
