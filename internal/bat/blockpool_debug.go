//go:build pooldebug

package bat

import (
	"fmt"
	"math"
	"sync"
)

// pooldebug: dynamic enforcement of the blockCursorSet borrow/return
// discipline, mirroring ir's Scores tracking: a live set keyed by the
// set pointer, double-release panics, and poisoning of released buffers
// so stale reads decode loudly wrong postings.
//
//poolcheck:poolfile

var blockPoolDebug struct {
	mu       sync.Mutex
	live     map[*blockCursorSet]struct{}
	released map[*blockCursorSet]struct{}
}

func init() {
	blockPoolDebug.live = make(map[*blockCursorSet]struct{})
	blockPoolDebug.released = make(map[*blockCursorSet]struct{})
}

func blockCursorsBorrowed(s *blockCursorSet) {
	blockPoolDebug.mu.Lock()
	delete(blockPoolDebug.released, s)
	blockPoolDebug.live[s] = struct{}{}
	blockPoolDebug.mu.Unlock()
}

func blockCursorsReleased(s *blockCursorSet) {
	blockPoolDebug.mu.Lock()
	if _, ok := blockPoolDebug.released[s]; ok {
		blockPoolDebug.mu.Unlock()
		panic(fmt.Sprintf("bat: double releaseBlockCursors of %p", s))
	}
	delete(blockPoolDebug.live, s)
	blockPoolDebug.released[s] = struct{}{}
	blockPoolDebug.mu.Unlock()
	// poison: no real doc has OID 2^64-1, and NaN beliefs propagate
	for i := range s.cs {
		c := &s.cs[i]
		for j := range c.docs {
			c.docs[j] = OID(^uint64(0))
		}
		for j := range c.bels {
			c.bels[j] = math.NaN()
		}
	}
}

// LiveBlockCursors reports the number of borrowed-but-unreleased cursor
// sets. Leak tests snapshot it around a compressed scan and require the
// delta be zero. Always 0 unless built with -tags pooldebug.
func LiveBlockCursors() int {
	blockPoolDebug.mu.Lock()
	defer blockPoolDebug.mu.Unlock()
	return len(blockPoolDebug.live)
}
