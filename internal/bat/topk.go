package bat

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// This file is the pruned ranked-retrieval operator of the physical layer:
// document-at-a-time max-score (WAND-family) evaluation over term-ordered
// postings with per-term belief upper bounds, feeding a bounded k-heap.
// Where GetBL + SumBeliefs + a full sort score and order the whole match
// set (O(matches + N log N) once the logical layer fills in defaults for
// the entire collection), PrunedTopK visits only documents whose score
// *could* enter the current top k and returns the cut directly:
// O(matches · log k) with skipping, never a collection-sized intermediate.
//
// The operator consumes the term-ordered postings representation CONTREP's
// Finalize derives (internal/ir):
//
//	start  [termOID(void), int]  postings offset per term, nterms+1 entries
//	doc    [void, docOID]        postings sorted by (term, doc asc)
//	belief [void, flt]           beliefs aligned with doc
//	maxbel [termOID(void), flt]  per-term maximum belief (the bound)
//
// Determinism contract: the returned ranking is BUN-for-BUN identical to
// exhaustively scoring every document with the *serial* fold
//
//	score(d) = Σ_{qi asc, matched} bel(q[qi], d) + (qlen − matched)·def
//
// (exactly SumBeliefs' arithmetic), ordering by score descending with OID
// ascending ties, and cutting at k. Candidate scores are computed with that
// fold verbatim; pruning bounds are padded by boundSlack so floating-point
// reassociation in the bound arithmetic can never skip a true top-k
// document. Parallel and serial execution return identical BUNs: partitions
// only decide which documents are *considered*, every returned score is the
// same canonical fold.

// boundSlack pads every pruning-bound comparison. Bounds are sums of at
// most a few hundred beliefs in [0,1], so their rounding error is < 1e-10;
// padding by 1e-9 keeps the bound a true upper bound of the exactly-folded
// score while costing only the occasional extra candidate evaluation.
const boundSlack = 1e-9

// postingsView validates and unwraps the four postings columns.
type postingsView struct {
	start []int64
	docs  []OID
	bels  []float64
	maxb  []float64
}

// newPostingsView validates and unwraps the postings columns. maxBel may
// be nil for consumers that only read posting lists (Postings). These
// columns can arrive from arbitrary MIL programs, so every offset is
// checked: a malformed start column must produce an error, never an
// out-of-range panic that kills the shell or server.
func newPostingsView(start, postDoc, postBel, maxBel *BAT) (*postingsView, error) {
	if start.Tail.Kind() != KindInt {
		return nil, fmt.Errorf("bat: prunedtopk: start tail must be int, got %s", start.Tail.Kind())
	}
	if postDoc.Tail.Kind() != KindOID || postBel.Tail.Kind() != KindFloat {
		return nil, fmt.Errorf("bat: prunedtopk: postings columns must be [void,oid]/[void,flt]")
	}
	pv := &postingsView{
		start: start.Tail.Ints(),
		docs:  postDoc.Tail.OIDs(),
		bels:  postBel.Tail.Floats(),
	}
	if len(pv.start) == 0 {
		return nil, fmt.Errorf("bat: prunedtopk: start column is empty (run Finalize)")
	}
	if maxBel != nil {
		if maxBel.Tail.Kind() != KindFloat {
			return nil, fmt.Errorf("bat: prunedtopk: maxbel tail must be flt, got %s", maxBel.Tail.Kind())
		}
		pv.maxb = maxBel.Tail.Floats()
		if len(pv.start)-1 != len(pv.maxb) {
			return nil, fmt.Errorf("bat: prunedtopk: %d maxbel bounds for %d terms", len(pv.maxb), len(pv.start)-1)
		}
	}
	total := pv.start[len(pv.start)-1]
	if int(total) != len(pv.docs) || len(pv.docs) != len(pv.bels) {
		return nil, fmt.Errorf("bat: prunedtopk: postings misaligned (%d offsets end, %d docs, %d beliefs)",
			total, len(pv.docs), len(pv.bels))
	}
	if pv.start[0] < 0 {
		return nil, fmt.Errorf("bat: prunedtopk: negative postings offset %d", pv.start[0])
	}
	for i := 0; i+1 < len(pv.start); i++ {
		if pv.start[i] > pv.start[i+1] {
			return nil, fmt.Errorf("bat: prunedtopk: postings offsets not monotone at term %d (%d > %d)",
				i, pv.start[i], pv.start[i+1])
		}
	}
	return pv, nil
}

// nterms reports the number of terms the offsets describe.
func (pv *postingsView) nterms() int { return len(pv.start) - 1 }

// termRange returns the posting range of term t ([lo,hi) into docs/bels);
// out-of-range terms get an empty range (they behave as always-unmatched,
// like an in-dictionary term no document contains).
func (pv *postingsView) termRange(t OID) (lo, hi int) {
	if int64(t) < 0 || int(t) >= pv.nterms() {
		return 0, 0
	}
	return int(pv.start[t]), int(pv.start[t+1])
}

// Postings returns one term's posting list as [docOID, belief], doc
// ascending — the postings-access operator the MIL surface exposes.
func Postings(start, postDoc, postBel *BAT, t OID) (*BAT, error) {
	pv, err := newPostingsView(start, postDoc, postBel, nil)
	if err != nil {
		return nil, err
	}
	lo, hi := pv.termRange(t)
	out := New(KindOID, KindFloat)
	out.Head.oids = append([]OID(nil), pv.docs[lo:hi]...)
	out.Tail.flts = append([]float64(nil), pv.bels[lo:hi]...)
	out.HSorted, out.HKey = true, true
	return out, nil
}

// ---- the bounded k-heap ----

// worseHit reports whether (s1,d1) ranks strictly after (s2,d2) under the
// ranked-retrieval order: score descending, OID ascending on ties.
func worseHit(s1 float64, d1 OID, s2 float64, d2 OID) bool {
	if s1 != s2 {
		return s1 < s2
	}
	return d1 > d2
}

// BoundedTopK is a bounded best-k selector: Offer any number of elements,
// it retains the k best under the strict total order worse(a,b) == "a
// ranks after b". Internally a binary min-heap whose root is the current
// worst retained element, so selection costs O(N log k). The comparator
// being a total order makes the retained set independent of offer order.
// Every ranking cut in the system (the pruned retrieval operator, ir.Rank,
// core's row ranking) runs on this one implementation.
type BoundedTopK[T any] struct {
	worse func(a, b T) bool
	items []T
	k     int
}

// NewBoundedTopK returns a selector for the k best elements.
func NewBoundedTopK[T any](k int, worse func(a, b T) bool) *BoundedTopK[T] {
	cap := k
	if cap > 1024 {
		cap = 1024
	}
	return &BoundedTopK[T]{k: k, worse: worse, items: make([]T, 0, cap)}
}

// NewBoundedTopKInto is NewBoundedTopK reusing scratch's backing array
// for the retained items (pass pooled scratch to avoid the per-selection
// allocation; scratch may be nil). The selector owns scratch until
// Items/Ranked hands the — possibly reallocated — slice back.
func NewBoundedTopKInto[T any](scratch []T, k int, worse func(a, b T) bool) *BoundedTopK[T] {
	return &BoundedTopK[T]{k: k, worse: worse, items: scratch[:0]}
}

// Full reports whether k elements are retained.
func (h *BoundedTopK[T]) Full() bool { return len(h.items) >= h.k }

// Worst returns the worst retained element; ok is false while empty.
func (h *BoundedTopK[T]) Worst() (v T, ok bool) {
	if len(h.items) == 0 {
		return v, false
	}
	return h.items[0], true
}

// Offer retains v if it belongs in the top k.
func (h *BoundedTopK[T]) Offer(v T) {
	if h.Full() {
		if !h.worse(h.items[0], v) {
			return
		}
		h.items[0] = v
		h.siftDown(0)
		return
	}
	h.items = append(h.items, v)
	for i := len(h.items) - 1; i > 0; {
		p := (i - 1) / 2
		if !h.worse(h.items[i], h.items[p]) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *BoundedTopK[T]) siftDown(i int) {
	n := len(h.items)
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && h.worse(h.items[l], h.items[m]) {
			m = l
		}
		if r < n && h.worse(h.items[r], h.items[m]) {
			m = r
		}
		if m == i {
			return
		}
		h.items[i], h.items[m] = h.items[m], h.items[i]
		i = m
	}
}

// Items returns the retained elements in heap (unspecified) order.
func (h *BoundedTopK[T]) Items() []T { return h.items }

// Ranked sorts the retained elements best-first and returns them; the
// selector must not be Offered to afterwards.
func (h *BoundedTopK[T]) Ranked() []T {
	sort.Slice(h.items, func(i, j int) bool { return h.worse(h.items[j], h.items[i]) })
	return h.items
}

// topkCand is the pruned operator's heap element.
type topkCand struct {
	doc   OID
	score float64
}

func worseCand(a, b topkCand) bool { return worseHit(a.score, a.doc, b.score, b.doc) }

// ---- shared threshold across partitions and shards ----

// TopKThreshold is a monotonically rising score lower bound shared by all
// scans cooperating on one top-k cut: each publishes its local k-th best,
// and any scan's k-th best within its candidate subset is ≤ the global
// k-th best, so skipping bound+slack ≤ θ can never drop a true top-k
// document. Within one PrunedTopK call the doc-range partitions share one
// automatically; a sharded engine passes the same object to every shard's
// scan (PrunedTopKShared) so pruning tightens across shards exactly as it
// does across partitions. Safe for concurrent use; zero value is NOT
// ready — use NewTopKThreshold.
type TopKThreshold struct{ bits atomic.Uint64 }

// NewTopKThreshold returns a threshold initialised to -Inf (nothing can be
// pruned until some scan retains k candidates).
func NewTopKThreshold() *TopKThreshold {
	t := &TopKThreshold{}
	t.bits.Store(math.Float64bits(math.Inf(-1)))
	return t
}

// Load returns the current lower bound.
func (t *TopKThreshold) Load() float64 { return math.Float64frombits(t.bits.Load()) }

// Raise lifts the bound to v if v is higher; it never lowers.
func (t *TopKThreshold) Raise(v float64) {
	for {
		old := t.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if t.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// ---- the operator ----

// qterm is one query term's scan state within a partition.
type qterm struct {
	qi     int     // position in the original query (the canonical fold order)
	cur    int     // next unread posting position (also the search start)
	hi     int     // partition-local end of the term's posting range
	ub     float64 // upper bound on the term's score surplus over the default
	weight float64 // per-term weight (1 in unweighted mode)
}

// PrunedTopK returns the top k documents of the query under the
// inference-network sum (weights == nil) or weighted sum (weights != nil,
// all ≥ 0) score, as [docOID, flt] ordered score descending / OID
// ascending, cut at k.
//
// Unweighted mode reproduces the full logical pipeline getbl + fill + rank:
// documents matching no query term score qlen·def and are merged in (by
// ascending OID) when the match set cannot fill the top k alone; domain
// supplies their OIDs and must enumerate them ascending. Weighted mode
// reproduces WSumBeliefs + rank: only matching documents appear, domain may
// be nil.
func PrunedTopK(start, postDoc, postBel, maxBel *BAT, query []OID, weights []float64, def float64, k int, domain *BAT) (*BAT, error) {
	return PrunedTopKShared(start, postDoc, postBel, maxBel, query, weights, def, k, domain, nil)
}

// PrunedTopKShared is PrunedTopK with an externally owned pruning
// threshold. A scatter-gather engine passes the same *TopKThreshold to
// every shard's scan of one query: each shard raises it to its local k-th
// best score, so a hot shard's threshold prunes the cold shards' scans.
// The returned ranking is unchanged by sharing (the threshold is always a
// valid global lower bound); only the amount of skipped work differs.
// theta == nil behaves exactly like PrunedTopK (a private threshold).
func PrunedTopKShared(start, postDoc, postBel, maxBel *BAT, query []OID, weights []float64, def float64, k int, domain *BAT, theta *TopKThreshold) (*BAT, error) {
	return PrunedTopKSegs([]PostingsSeg{{Start: start, Doc: postDoc, Bel: postBel, MaxBel: maxBel}},
		query, weights, def, k, domain, theta)
}

// PostingsSeg bundles the term-ordered postings columns of one index
// segment (see internal/ir: incremental indexing splits the postings by
// document range into generation-numbered segments). A segment arrives
// in one of two layouts: raw (Doc/Bel set, the three 8-byte columns) or
// block-compressed (BlkDoc et al. set, the postcodec.go layout). The
// two evaluate identically — layout only changes the decode path.
type PostingsSeg struct {
	Start  *BAT // [termOID(void), int]  per-term offsets, nterms+1 entries
	Doc    *BAT // [void, docOID]        raw: postings sorted by (term, doc asc)
	Bel    *BAT // [void, flt]           raw: beliefs aligned with Doc
	MaxBel *BAT // [termOID(void), flt]  per-term maximum belief in the segment

	// Block-compressed layout (Doc/Bel nil when set):
	BlkStart *BAT // [termOID(void), int] per-term block offsets
	BlkDir   *BAT // [void, int]          2 per block: lastDoc, docEnd
	BlkDoc   *BAT // [void, bytes]        doc-id + tf blocks
	BlkBDir  *BAT // [void, int]          2 per block: belEnd, qmaxBits
	BlkBel   *BAT // [void, bytes]        belief data
}

// segScan is one segment's validated read view: exactly one of raw/blk
// is non-nil.
type segScan struct {
	raw *postingsView
	blk *BlockPostings
}

// termRange returns term t's posting range in either layout.
func (sv segScan) termRange(t OID) (lo, hi int) {
	if sv.raw != nil {
		return sv.raw.termRange(t)
	}
	if int64(t) < 0 || int(t) >= sv.blk.NTerms() {
		return 0, 0
	}
	return sv.blk.TermRange(int(t))
}

// lastDocOf returns the greatest doc id in the (non-empty) full term
// range [lo, hi) — for block views this is the term's last block's
// directory entry, read without decoding.
func (sv segScan) lastDocOf(t OID, hi int) OID {
	if sv.raw != nil {
		return sv.raw.docs[hi-1]
	}
	_, bhi := sv.blk.TermBlocks(int(t))
	return sv.blk.BlockLast(bhi - 1)
}

// maxBelOf returns term t's per-segment maximum belief. Only valid for
// terms with a non-empty range in this segment.
func (sv segScan) maxBelOf(t OID) float64 {
	if sv.raw != nil {
		return sv.raw.maxb[t]
	}
	return sv.blk.MaxBelief(int(t))
}

// PrunedTopKSegs evaluates the pruned top-k retrieval over a LIST of
// postings segments that together partition the document space (each
// document's postings live entirely in one segment). The result is
// BUN-for-BUN identical to PrunedTopK over the single segment obtained by
// merging the list: every candidate's score is the same canonical fold
// (all of a document's postings sit in one segment, so the fold order is
// unchanged), and all segments share one rising threshold — exactly the
// mechanism that already makes doc-range partitions inside one scan and
// shard scans across stores return the serial result. Segments may
// disagree on dictionary size (a segment published before later terms
// existed simply has no postings for them) and on per-term bounds (a
// per-segment bound is tighter, pruning more, never less correctly).
func PrunedTopKSegs(segs []PostingsSeg, query []OID, weights []float64, def float64, k int, domain *BAT, theta *TopKThreshold) (*BAT, error) {
	if k <= 0 {
		return nil, fmt.Errorf("bat: prunedtopk: k must be positive, got %d", k)
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("bat: prunedtopk: no postings segments")
	}
	views := make([]segScan, len(segs))
	for i, s := range segs {
		if s.BlkDoc != nil {
			bp, err := cachedBlockPostings(s.Start, s.BlkStart, s.BlkDir, s.BlkDoc, s.BlkBDir, s.BlkBel, s.MaxBel)
			if err != nil {
				return nil, fmt.Errorf("segment %d: %w", i, err)
			}
			views[i] = segScan{blk: bp}
			continue
		}
		pv, err := newPostingsView(s.Start, s.Doc, s.Bel, s.MaxBel)
		if err != nil {
			return nil, fmt.Errorf("segment %d: %w", i, err)
		}
		views[i] = segScan{raw: pv}
	}
	weighted := weights != nil
	if weighted {
		if len(weights) != len(query) {
			return nil, fmt.Errorf("bat: prunedtopk: %d terms vs %d weights", len(query), len(weights))
		}
		for _, w := range weights {
			if w < 0 {
				return nil, fmt.Errorf("bat: prunedtopk: negative weight %v (use the exhaustive path)", w)
			}
		}
	} else if domain == nil {
		return nil, fmt.Errorf("bat: prunedtopk: unweighted mode needs a domain for default-scored documents")
	}

	// fillBase is the score of a document matching nothing, in the exact
	// arithmetic of the exhaustive path (count(q)·def resp. wtot·def).
	var fillBase float64
	if weighted {
		wtot := 0.0
		for _, w := range weights {
			wtot += w
		}
		fillBase = wtot * def
	} else {
		fillBase = float64(len(query)) * def
	}

	// Resolve term ranges once per segment; within a segment, partition
	// the *document space* so each worker owns a contiguous OID range of
	// every posting list.
	segRanges := make([][]postingRange, len(views))
	segMaxDoc := make([]OID, len(views))
	segPostings := make([]int, len(views))
	segImpact := make([]float64, len(views))
	for vi, sv := range views {
		ranges := make([]postingRange, len(query))
		maxDoc := OID(0)
		totalPostings := 0
		impact := 0.0
		for i, t := range query {
			lo, hi := sv.termRange(t)
			ranges[i] = postingRange{lo: lo, hi: hi, t: t}
			totalPostings += hi - lo
			if hi > lo {
				if d := sv.lastDocOf(t, hi); d > maxDoc {
					maxDoc = d
				}
				mb := sv.maxBelOf(t)
				if mb < def {
					mb = def
				}
				w := 1.0
				if weighted {
					w = weights[i]
				}
				impact += w * (mb - def)
			}
		}
		segRanges[vi] = ranges
		segMaxDoc[vi] = maxDoc
		segPostings[vi] = totalPostings
		segImpact[vi] = impact
	}
	// Visit segments in descending impact (sum of per-term score-surplus
	// bounds): the segment that can produce the highest scores is scanned
	// first, so the shared threshold reaches its terminal height early and
	// the remaining segments scan mostly above it. Order changes only the
	// skipped work, never the result (segRanges stays index-aligned with
	// views for fillDefaults).
	order := make([]int, len(views))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return segImpact[order[a]] > segImpact[order[b]] })

	if theta == nil {
		theta = NewTopKThreshold()
	}
	var heaps []*BoundedTopK[topkCand]
	for _, vi := range order {
		sv := views[vi]
		ranges := segRanges[vi]
		maxDoc := segMaxDoc[vi]
		totalPostings := segPostings[vi]

		nPar := Parallelism()
		if useParallel(totalPostings) && nPar > 1 {
			// Document-range partitions: per-partition max-score with local
			// heaps plus the shared rising threshold, merged below.
			bounds := make([]OID, 0, nPar+1)
			span := uint64(maxDoc) + 1
			for c := 0; c <= nPar; c++ {
				bounds = append(bounds, OID(span*uint64(c)/uint64(nPar)))
			}
			segHeaps := make([]*BoundedTopK[topkCand], nPar)
			errs := make([]error, nPar)
			runChunks(chunkRanges(nPar, nPar), func(_, lo, hi int) {
				for c := lo; c < hi; c++ {
					h := NewBoundedTopK(k, worseCand)
					if sv.raw != nil {
						sc := borrowScanScratch(len(query))
						terms := sc.terms
						for i := range query {
							w := 1.0
							if weighted {
								w = weights[i]
							}
							tlo := searchDocFrom(sv.raw.docs, ranges[i].lo, ranges[i].hi, bounds[c])
							thi := searchDocFrom(sv.raw.docs, tlo, ranges[i].hi, bounds[c+1])
							terms[i] = qterm{qi: i, cur: tlo, hi: thi, weight: w}
						}
						maxscoreScan(sv.raw, terms, query, weights, def, fillBase, h, theta, sc)
						releaseScanScratch(sc)
					} else {
						errs[c] = scanBlockPartition(sv.blk, ranges, query, weights, weighted, def, fillBase, bounds[c], bounds[c+1], h, theta)
					}
					segHeaps[c] = h
				}
			})
			for _, err := range errs {
				if err != nil {
					return nil, fmt.Errorf("segment %d: %w", vi, err)
				}
			}
			heaps = append(heaps, segHeaps...)
		} else {
			h := NewBoundedTopK(k, worseCand)
			if sv.raw != nil {
				sc := borrowScanScratch(len(query))
				terms := sc.terms
				for i := range query {
					w := 1.0
					if weighted {
						w = weights[i]
					}
					terms[i] = qterm{qi: i, cur: ranges[i].lo, hi: ranges[i].hi, weight: w}
				}
				maxscoreScan(sv.raw, terms, query, weights, def, fillBase, h, theta, sc)
				releaseScanScratch(sc)
			} else if err := scanBlockPartition(sv.blk, ranges, query, weights, weighted, def, fillBase, 0, OID(math.MaxUint64), h, theta); err != nil {
				return nil, fmt.Errorf("segment %d: %w", vi, err)
			}
			heaps = append(heaps, h)
		}
	}

	// Merge the per-partition candidates; the full exact scores make the
	// selection deterministic regardless of partitioning.
	merged := NewBoundedTopK(k, worseCand)
	for _, h := range heaps {
		for _, c := range h.Items() {
			merged.Offer(c)
		}
	}
	ranked := merged.Ranked()
	resDocs := make([]OID, 0, k)
	resScores := make([]float64, 0, k)
	for _, c := range ranked {
		resDocs = append(resDocs, c.doc)
		resScores = append(resScores, c.score)
	}

	if !weighted {
		var err error
		resDocs, resScores, err = fillDefaults(views, segRanges, domain, fillBase, k, resDocs, resScores)
		if err != nil {
			return nil, err
		}
	}

	out := New(KindOID, KindFloat)
	out.Head.oids = resDocs
	out.Tail.flts = resScores
	out.HKey = true
	return out, nil
}

// maxscoreScan runs the max-score loop over one document partition: the
// essential terms (largest bounds) are merged document-at-a-time; the
// non-essential tail is probed by binary search only while a document's
// score bound still clears the threshold. terms must be sc.terms (sc
// supplies every working slice; the caller borrows and releases it).
func maxscoreScan(pv *postingsView, terms []qterm, query []OID, weights []float64, def, fillBase float64, h *BoundedTopK[topkCand], theta *TopKThreshold, sc *scanScratch) {
	m := len(terms)
	if m == 0 {
		return
	}
	for i := range terms {
		t := query[terms[i].qi]
		ub := 0.0
		if lo, hi := pv.termRange(t); hi > lo {
			mb := pv.maxb[t]
			if mb < def {
				mb = def
			}
			ub = terms[i].weight * (mb - def)
		}
		terms[i].ub = ub
	}
	// Bound-descending order; suffixUB[j] bounds the surplus of terms
	// perm[j:]. Essential prefix perm[:e]: a document absent from all of it
	// is bounded by fillBase+suffixUB[e].
	perm := sc.perm
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return terms[perm[a]].ub > terms[perm[b]].ub })
	suffixUB := sc.suffix
	suffixUB[m] = 0
	for j := m - 1; j >= 0; j-- {
		suffixUB[j] = suffixUB[j+1] + terms[perm[j]].ub
	}
	e := m
	negInf := math.Inf(-1)

	// Per-candidate scratch, stamped instead of cleared (stamp arrives
	// zeroed from the pool).
	fbel := sc.fbel
	stamp := sc.stamp
	cur := 0

	shrink := func(th float64) {
		for e > 0 && fillBase+suffixUB[e-1]+boundSlack <= th {
			e--
		}
	}

	threshold := func() float64 {
		if w, ok := h.Worst(); ok && h.Full() {
			return w.score
		}
		return math.Inf(-1)
	}
	for {
		th := threshold()
		if g := theta.Load(); g > th {
			th = g
		}
		// Prune against any finite threshold, not only a locally full
		// heap: θ may arrive seeded (a prior run's exact k-th score) or
		// raised by another shard/partition, and it is always a valid
		// global lower bound — a document skipped under bound+slack ≤ θ
		// can never belong to the global top k, whether or not THIS
		// partition has retained k candidates yet.
		if th > negInf {
			shrink(th)
		}
		// Next candidate: the smallest current document among essential terms.
		best := OID(math.MaxUint64)
		found := false
		for j := 0; j < e; j++ {
			qt := &terms[perm[j]]
			if qt.cur < qt.hi {
				if d := pv.docs[qt.cur]; !found || d < best {
					best, found = d, true
				}
			}
		}
		if !found {
			return
		}
		cur++
		known := 0.0
		for j := 0; j < e; j++ {
			qt := &terms[perm[j]]
			if qt.cur < qt.hi && pv.docs[qt.cur] == best {
				bel := pv.bels[qt.cur]
				fbel[qt.qi], stamp[qt.qi] = bel, cur
				known += qt.weight * (bel - def)
				qt.cur++
			}
		}
		bound := fillBase + known + suffixUB[e]
		if bound+boundSlack <= th {
			continue
		}
		pruned := false
		for j := e; j < m; j++ {
			qt := &terms[perm[j]]
			bound -= qt.ub
			if pos := searchDocFrom(pv.docs, qt.cur, qt.hi, best); pos < qt.hi && pv.docs[pos] == best {
				bel := pv.bels[pos]
				fbel[qt.qi], stamp[qt.qi] = bel, cur
				bound += qt.weight * (bel - def)
				qt.cur = pos + 1
			} else {
				qt.cur = pos
			}
			if bound+boundSlack <= th {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		// The canonical fold, exactly as SumBeliefs / WSumBeliefs compute it.
		score := 0.0
		if weights == nil {
			matched := 0
			for qi := 0; qi < m; qi++ {
				if stamp[qi] == cur {
					score += fbel[qi]
					matched++
				}
			}
			score += float64(m-matched) * def
		} else {
			for qi := 0; qi < m; qi++ {
				if stamp[qi] == cur {
					score += weights[qi] * (fbel[qi] - def)
				}
			}
			score += fillBase
		}
		h.Offer(topkCand{doc: best, score: score})
		if h.Full() {
			theta.Raise(threshold())
		}
	}
}

// searchDocFrom finds the first position in docs[lo:hi) with docs[pos] >= d.
func searchDocFrom(docs []OID, lo, hi int, d OID) int {
	return lo + sort.Search(hi-lo, func(i int) bool { return docs[lo+i] >= d })
}

// postingRange is one query term's [lo,hi) slice of the postings columns,
// tagged with the term id so block views can reach the term's directory.
type postingRange struct {
	lo, hi int
	t      OID
}

// fillDefaults merges default-scored (unmatched) documents into a ranked
// result when they can still enter the top k: they all score fillBase and
// tie-break by ascending OID, so the walk stops at the first one that no
// longer beats the tail. A document is "matched" when any segment holds a
// posting for it under any query term.
func fillDefaults(views []segScan, segRanges [][]postingRange, domain *BAT, fillBase float64, k int, docs []OID, scores []float64) ([]OID, []float64, error) {
	if len(docs) == k && scores[len(scores)-1] > fillBase {
		// The current tail strictly beats any default-scored document; on a
		// tie the walk below still runs, because a smaller unmatched OID wins.
		return docs, scores, nil
	}
	// Matched-document membership, sized by the larger of postings max and
	// domain max; sparse OID spaces fall back to a map.
	n := domain.Len()
	maxDoc := OID(0)
	for vi, sv := range views {
		for _, r := range segRanges[vi] {
			if r.hi > r.lo {
				if d := sv.lastDocOf(r.t, r.hi); d > maxDoc {
					maxDoc = d
				}
			}
		}
	}
	if n > 0 {
		if d := domain.Head.OIDAt(n - 1); d > maxDoc {
			maxDoc = d
		}
	}
	var dense []bool
	var sparse map[OID]struct{}
	if uint64(maxDoc) < uint64(4*n+1024) {
		dense = make([]bool, maxDoc+1)
	} else {
		sparse = make(map[OID]struct{})
	}
	mark := func(d OID) {
		if dense != nil {
			dense[d] = true
		} else {
			sparse[d] = struct{}{}
		}
	}
	marked := func(d OID) bool {
		if dense != nil {
			return uint64(d) < uint64(len(dense)) && dense[d]
		}
		_, ok := sparse[d]
		return ok
	}
	cset := borrowBlockCursors(1)
	for vi, sv := range views {
		for _, r := range segRanges[vi] {
			if sv.raw != nil {
				for p := r.lo; p < r.hi; p++ {
					mark(sv.raw.docs[p])
				}
				continue
			}
			c := &cset.cs[0]
			c.reset()
			c.bind(sv.blk, int(r.t))
			for p := r.lo; p < r.hi; p++ {
				d, ok := c.docAt(p)
				if !ok {
					err := c.err
					releaseBlockCursors(cset)
					return nil, nil, err
				}
				mark(d)
			}
			c.flushStats()
		}
	}
	releaseBlockCursors(cset)
	for i := 0; i < n; i++ {
		d := domain.Head.OIDAt(i)
		if marked(d) {
			continue
		}
		if len(docs) >= k {
			if !worseHit(scores[len(scores)-1], docs[len(docs)-1], fillBase, d) {
				break // every later unmatched doc is worse still
			}
			docs, scores = docs[:len(docs)-1], scores[:len(scores)-1]
		}
		// Insert (d, fillBase) keeping rank order.
		pos := sort.Search(len(docs), func(j int) bool { return worseHit(scores[j], docs[j], fillBase, d) })
		docs = append(docs, 0)
		scores = append(scores, 0)
		copy(docs[pos+1:], docs[pos:])
		copy(scores[pos+1:], scores[pos:])
		docs[pos], scores[pos] = d, fillBase
	}
	return docs, scores, nil
}
