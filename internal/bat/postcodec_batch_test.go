package bat

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"
)

// The batched kernels (unpackInto's word-at-a-time extraction, the
// inlined varints in DecodeDocBlock/DecodeBelBlock) must decode byte
// streams identically to the straightforward per-posting decoders they
// replaced. The reference implementations below are kept verbatim from
// the per-posting versions; the differential tests drive both over the
// same encoded blocks.

// refUnpackInto is the byte-at-a-time accumulator bit unpacker.
func refUnpackInto(data []byte, n, width int, out []uint64) (int, error) {
	if width == 0 {
		for i := 0; i < n; i++ {
			out[i] = 0
		}
		return 0, nil
	}
	need := (n*width + 7) / 8
	if need > len(data) {
		return 0, fmt.Errorf("bat: bitpacked block truncated (need %d bytes, have %d)", need, len(data))
	}
	var acc uint64
	bits := 0
	pos := 0
	mask := uint64(1)<<uint(width) - 1
	for i := 0; i < n; i++ {
		for bits < width {
			acc |= uint64(data[pos]) << bits
			pos++
			bits += 8
		}
		out[i] = acc & mask
		acc >>= uint(width)
		bits -= width
	}
	return need, nil
}

// refDecodeDocBlock is the per-posting binary.Uvarint doc-block decoder.
func refDecodeDocBlock(bp *BlockPostings, t, b int, docs []OID, tfs []int64) (int, error) {
	plo, phi := bp.BlockSpan(t, b)
	n := phi - plo
	if n <= 0 {
		return 0, fmt.Errorf("bat: decode of empty block %d", b)
	}
	lo := int64(0)
	if b > 0 {
		lo = bp.blkDir[2*(b-1)+1]
	}
	hi := bp.blkDir[2*b+1]
	data := bp.docData[lo:hi]
	prev := int64(-1)
	if b > int(bp.blkStart[t]) {
		prev = bp.blkDir[2*(b-1)]
	}
	if len(data) < 1 {
		return 0, fmt.Errorf("bat: doc block %d empty", b)
	}
	switch data[0] {
	case blockFmtVarint:
		pos := 1
		for i := 0; i < n; i++ {
			delta, w := binary.Uvarint(data[pos:])
			if w <= 0 || delta == 0 {
				return 0, fmt.Errorf("bat: doc block %d: bad delta at posting %d", b, i)
			}
			pos += w
			tf, w2 := binary.Uvarint(data[pos:])
			if w2 <= 0 {
				return 0, fmt.Errorf("bat: doc block %d: bad tf at posting %d", b, i)
			}
			pos += w2
			next := prev + int64(delta)
			if next < 0 {
				return 0, fmt.Errorf("bat: doc block %d: doc id overflow", b)
			}
			prev = next
			docs[i] = OID(next)
			if tfs != nil {
				tfs[i] = int64(tf)
			}
		}
	case blockFmtBitpack:
		if len(data) < 3 {
			return 0, fmt.Errorf("bat: doc block %d: truncated bitpack header", b)
		}
		dw, tw := int(data[1]), int(data[2])
		if dw < 1 || dw > 56 || tw > 56 {
			return 0, fmt.Errorf("bat: doc block %d: bad bit widths %d/%d", b, dw, tw)
		}
		var scratch [PostingsBlockSize]uint64
		used, err := refUnpackInto(data[3:], n, dw, scratch[:n])
		if err != nil {
			return 0, fmt.Errorf("bat: doc block %d: %w", b, err)
		}
		for i := 0; i < n; i++ {
			if scratch[i] == 0 {
				return 0, fmt.Errorf("bat: doc block %d: zero delta at posting %d", b, i)
			}
			next := prev + int64(scratch[i])
			if next < 0 {
				return 0, fmt.Errorf("bat: doc block %d: doc id overflow", b)
			}
			prev = next
			docs[i] = OID(next)
		}
		if tfs != nil {
			if _, err := refUnpackInto(data[3+used:], n, tw, scratch[:n]); err != nil {
				return 0, fmt.Errorf("bat: doc block %d: %w", b, err)
			}
			for i := 0; i < n; i++ {
				tfs[i] = int64(scratch[i])
			}
		}
	default:
		return 0, fmt.Errorf("bat: doc block %d: unknown format %d", b, data[0])
	}
	if got := OID(bp.blkDir[2*b]); docs[n-1] != got {
		return 0, fmt.Errorf("bat: doc block %d: last doc %d disagrees with directory %d", b, docs[n-1], got)
	}
	return n, nil
}

// refDecodeBelBlock is the per-posting binary.Uvarint belief decoder.
func refDecodeBelBlock(bp *BlockPostings, t, b int, dict []float64, dataOff int64, bels []float64) error {
	plo, phi := bp.BlockSpan(t, b)
	n := phi - plo
	lo := dataOff
	if b > int(bp.blkStart[t]) {
		lo = bp.belDir[2*(b-1)]
	}
	hi := bp.belDir[2*b]
	if lo < 0 || hi < lo || hi > int64(len(bp.belData)) {
		return fmt.Errorf("bat: belief block %d region [%d,%d) out of range", b, lo, hi)
	}
	data := bp.belData[lo:hi]
	if dict == nil {
		if len(data) != n*8 {
			return fmt.Errorf("bat: raw belief block %d: %d bytes for %d postings", b, len(data), n)
		}
		for i := 0; i < n; i++ {
			bels[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
		return nil
	}
	pos := 0
	for i := 0; i < n; i++ {
		idx, w := binary.Uvarint(data[pos:])
		if w <= 0 || idx >= uint64(len(dict)) {
			return fmt.Errorf("bat: belief block %d: bad dict index at posting %d", b, i)
		}
		pos += w
		bels[i] = dict[idx]
	}
	if pos != len(data) {
		return fmt.Errorf("bat: belief block %d: %d trailing bytes", b, len(data)-pos)
	}
	return nil
}

// TestUnpackIntoMatchesReference drives the word-at-a-time unpacker and
// the byte-accumulator reference over every width the encoder can emit,
// at lengths that exercise both the in-range fast loop and the tail.
func TestUnpackIntoMatchesReference(t *testing.T) {
	rnd := uint64(4242)
	next := func() uint64 {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return rnd
	}
	for width := 0; width <= 56; width++ {
		for _, n := range []int{0, 1, 2, 7, 8, 9, 63, 64, PostingsBlockSize} {
			vals := make([]uint64, n)
			mask := uint64(1)<<uint(width) - 1
			for i := range vals {
				vals[i] = next() & mask
			}
			packed := appendPacked(nil, vals, width)
			got := make([]uint64, n)
			want := make([]uint64, n)
			gu, gerr := unpackInto(packed, n, width, got)
			wu, werr := refUnpackInto(packed, n, width, want)
			if (gerr != nil) != (werr != nil) || gu != wu {
				t.Fatalf("width %d n %d: used/err mismatch (%d,%v) vs (%d,%v)", width, n, gu, gerr, wu, werr)
			}
			for i := range vals {
				if got[i] != want[i] || got[i] != vals[i] {
					t.Fatalf("width %d n %d val %d: got %d ref %d want %d", width, n, i, got[i], want[i], vals[i])
				}
			}
			// truncated input must error in both, not panic
			if len(packed) > 0 {
				_, gerr = unpackInto(packed[:len(packed)-1], n, width, got)
				_, werr = refUnpackInto(packed[:len(packed)-1], n, width, want)
				if (gerr != nil) != (werr != nil) {
					t.Fatalf("width %d n %d truncated: err mismatch %v vs %v", width, n, gerr, werr)
				}
			}
		}
	}
}

// TestBatchedDecodeMatchesPerPosting is the codec-level batched ≡
// per-posting differential: every block of a mixed varint/bitpack,
// dict/raw-belief corpus must decode identically through the batched
// kernels and the reference decoders.
func TestBatchedDecodeMatchesPerPosting(t *testing.T) {
	rnd := uint64(777)
	next := func(n int) int {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return int(rnd % uint64(n))
	}
	var runs [][2][]int64
	var bels [][]float64
	lens := []int{1, 5, PostingsBlockSize - 1, PostingsBlockSize, PostingsBlockSize + 1,
		3*PostingsBlockSize + 11, 2000}
	for i, n := range lens {
		docs := make([]int64, n)
		tfs := make([]int64, n)
		bl := make([]float64, n)
		d := int64(0)
		for j := 0; j < n; j++ {
			gap := int64(1 + next(3))
			switch {
			case i%3 == 1 && j%19 == 0:
				gap = int64(1+next(1000)) * 131 // multi-byte varint deltas
			case i == 5 && j%41 == 0:
				gap = int64(1) << uint(33+next(20)) // huge deltas: wide bitpack or varint
			}
			d += gap
			docs[j] = d
			tfs[j] = int64(next(1 << uint(2+8*(i%3)))) // 1-byte and multi-byte tfs
			if i%2 == 0 {
				bl[j] = float64(1+next(2000)) / 2048 // big dict: 2-byte indices
			} else {
				bl[j] = float64(j)*1e-3 + 0.5 // distinct: raw fallback
			}
		}
		runs = append(runs, [2][]int64{docs, tfs})
		bels = append(bels, bl)
	}
	bp, _ := buildBlockColumns(t, runs, bels)
	var gd, wd [PostingsBlockSize]OID
	var gt, wt [PostingsBlockSize]int64
	var gb, wb [PostingsBlockSize]float64
	for tm := 0; tm < bp.NTerms(); tm++ {
		dict, off, err := bp.TermDict(tm, nil)
		if err != nil {
			t.Fatalf("TermDict(%d): %v", tm, err)
		}
		blo, bhi := bp.TermBlocks(tm)
		for blk := blo; blk < bhi; blk++ {
			gn, gerr := bp.DecodeDocBlock(tm, blk, gd[:], gt[:])
			wn, werr := refDecodeDocBlock(bp, tm, blk, wd[:], wt[:])
			if gerr != nil || werr != nil || gn != wn {
				t.Fatalf("term %d block %d: (%d,%v) vs ref (%d,%v)", tm, blk, gn, gerr, wn, werr)
			}
			for i := 0; i < gn; i++ {
				if gd[i] != wd[i] || gt[i] != wt[i] {
					t.Fatalf("term %d block %d posting %d: (%d,%d) vs ref (%d,%d)",
						tm, blk, i, gd[i], gt[i], wd[i], wt[i])
				}
			}
			if err := bp.DecodeBelBlock(tm, blk, dict, off, gb[:]); err != nil {
				t.Fatalf("DecodeBelBlock(%d,%d): %v", tm, blk, err)
			}
			if err := refDecodeBelBlock(bp, tm, blk, dict, off, wb[:]); err != nil {
				t.Fatalf("refDecodeBelBlock(%d,%d): %v", tm, blk, err)
			}
			for i := 0; i < gn; i++ {
				if math.Float64bits(gb[i]) != math.Float64bits(wb[i]) {
					t.Fatalf("term %d block %d posting %d: belief %v vs ref %v", tm, blk, i, gb[i], wb[i])
				}
			}
		}
	}
}
