package bat

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the morsel-style parallel execution facility of the physical
// layer: a shared worker pool, BUN-range partitioning of BATs into zero-copy
// views, and the Merge that concatenates per-partition results with a single
// pre-sized allocation. The parallel operators in par_ops.go are built from
// these three pieces; every public operator entry point dispatches here when
// the input is large enough (ParallelThreshold) and more than one worker is
// available (Parallelism).
//
// Determinism contract: partitions are contiguous BUN ranges processed in
// order, so order-preserving operators (joins, selects, grouping) produce
// results BUN-for-BUN identical to the serial reference. Aggregations over
// float tails combine per-partition partial sums, which may differ from the
// serial fold in the last few ulps; integer and count aggregates are exact.

// parDegree overrides the worker count (0 = derive from the machine);
// parThreshold overrides the minimum BUN count for parallel dispatch.
var (
	parDegree    atomic.Int32
	parThreshold atomic.Int32
)

// DefaultParallelThreshold is the minimum number of BUNs an operator input
// must have before the parallel kernel is used. Below it the serial kernel
// wins: partitioning and goroutine handoff cost more than the scan.
const DefaultParallelThreshold = 8192

// Parallelism reports the number of partitions the parallel operators use:
// the SetParallelism override when set, else NumCPU capped by GOMAXPROCS.
func Parallelism() int {
	if d := parDegree.Load(); d > 0 {
		return int(d)
	}
	n := runtime.NumCPU()
	if p := runtime.GOMAXPROCS(0); p < n {
		n = p
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SetParallelism overrides the partition count (tests force >1 on small
// machines, servers may throttle). n <= 0 restores the machine default.
// It returns the previous override (0 = default).
func SetParallelism(n int) int {
	old := parDegree.Load()
	parDegree.Store(clampKnob(n))
	return int(old)
}

// clampKnob keeps knob overrides in [0, MaxInt32] so values coming through
// MIL's int64 arguments cannot silently wrap in the int32 store.
func clampKnob(n int) int32 {
	if n < 0 {
		return 0
	}
	if n > 1<<31-1 {
		return 1<<31 - 1
	}
	return int32(n)
}

// ParallelThreshold reports the minimum input size for parallel dispatch.
func ParallelThreshold() int {
	if t := parThreshold.Load(); t > 0 {
		return int(t)
	}
	return DefaultParallelThreshold
}

// SetParallelThreshold overrides the dispatch threshold (tests lower it to
// exercise the parallel paths on small BATs). n <= 0 restores the default.
// It returns the previous override (0 = default).
func SetParallelThreshold(n int) int {
	old := parThreshold.Load()
	parThreshold.Store(clampKnob(n))
	return int(old)
}

// useParallel is the dispatch predicate shared by all operator entry points.
func useParallel(n int) bool {
	return n >= ParallelThreshold() && Parallelism() > 1
}

// denseParWorthwhile is the shared cost model for operators whose parallel
// form keeps one dense accumulator array of size max+1 per worker: that is
// only proportionate when workers·max stays in the order of the n rows
// scanned (with a little slack), otherwise allocation and initialisation
// dominate and the serial kernel wins.
func denseParWorthwhile(max OID, workers, n int) bool {
	return uint64(max)*uint64(workers) <= uint64(n)+(1<<16)
}

// ---- the shared worker pool ----

// The pool holds NumCPU permanent workers started on first use. Submission
// never blocks: when every worker is busy the submitting goroutine runs the
// task inline, so nested or highly concurrent operator calls degrade to
// serial execution instead of queueing behind each other.
var (
	poolOnce sync.Once
	poolCh   chan func()
)

func poolStart() {
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	poolCh = make(chan func(), n)
	for i := 0; i < n; i++ {
		go func() {
			for f := range poolCh {
				f()
			}
		}()
	}
}

// chunkRanges splits [0, n) into at most k contiguous non-empty ranges.
func chunkRanges(n, k int) [][2]int {
	if n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	out := make([][2]int, 0, k)
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + (n-lo)/(k-i)
		if hi > lo {
			out = append(out, [2]int{lo, hi})
			lo = hi
		}
	}
	return out
}

// runChunks executes f(chunk, lo, hi) for every range, distributing chunks
// over the worker pool and running the final chunk on the calling
// goroutine. It propagates the first panic to the caller.
func runChunks(ranges [][2]int, f func(chunk, lo, hi int)) {
	if len(ranges) == 0 {
		return
	}
	if len(ranges) == 1 {
		f(0, ranges[0][0], ranges[0][1])
		return
	}
	poolOnce.Do(poolStart)
	var wg sync.WaitGroup
	var panicked atomic.Pointer[any]
	run := func(c int) {
		defer wg.Done()
		defer func() {
			if p := recover(); p != nil {
				panicked.CompareAndSwap(nil, &p)
			}
		}()
		f(c, ranges[c][0], ranges[c][1])
	}
	wg.Add(len(ranges))
	for c := 0; c < len(ranges)-1; c++ {
		c := c
		select {
		case poolCh <- func() { run(c) }:
		default:
			run(c)
		}
	}
	run(len(ranges) - 1)
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(*p)
	}
}

// runTasks runs f(i) for each i in [0, k) over the pool (one task per i).
func runTasks(k int, f func(i int)) {
	runChunks(chunkRanges(k, k), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// ParallelFor runs f over contiguous subranges of [0, n), in parallel when n
// clears the threshold and serially otherwise. f must be safe to call
// concurrently on disjoint ranges. This is the facility the layers above the
// kernel (MIL, Moa, core) use to fan bulk work over the shared pool.
func ParallelFor(n int, f func(lo, hi int)) {
	if !useParallel(n) {
		if n > 0 {
			f(0, n)
		}
		return
	}
	runChunks(chunkRanges(n, Parallelism()), func(_, lo, hi int) { f(lo, hi) })
}

// ---- Partition / Merge ----

// Partition splits b into at most k contiguous zero-copy views covering all
// BUNs in order. Column storage is shared with b, so the views are read-only
// (all operators treat their inputs as such). A dense (void) head stays
// dense in every partition, re-based, preserving the positional fast paths.
// Flags are inherited: sortedness and keyness survive range restriction.
func Partition(b *BAT, k int) []*BAT {
	ranges := chunkRanges(b.Len(), k)
	parts := make([]*BAT, len(ranges))
	for i, r := range ranges {
		parts[i] = b.view(r[0], r[1])
	}
	return parts
}

// view is Slice without the copy: columns share storage with b.
func (b *BAT) view(lo, hi int) *BAT {
	return &BAT{
		Head: b.Head.view(lo, hi), Tail: b.Tail.view(lo, hi),
		HSorted: b.HSorted, TSorted: b.TSorted,
		HKey: b.HKey, TKey: b.TKey,
	}
}

// view returns rows [lo, hi) sharing the backing array. Void columns are
// re-based and stay void.
func (c *Column) view(lo, hi int) *Column {
	switch c.kind {
	case KindVoid:
		return &Column{kind: KindVoid, base: c.base + OID(lo), n: hi - lo}
	case KindOID:
		return &Column{kind: KindOID, oids: c.oids[lo:hi]}
	case KindInt:
		return &Column{kind: KindInt, ints: c.ints[lo:hi]}
	case KindFloat:
		return &Column{kind: KindFloat, flts: c.flts[lo:hi]}
	case KindStr:
		return &Column{kind: KindStr, strs: c.strs[lo:hi]}
	case KindBool:
		return &Column{kind: KindBool, bools: c.bools[lo:hi]}
	case KindBytes:
		return &Column{kind: KindBytes, bytes: c.bytes[lo:hi]}
	}
	panic("bat: bad column kind")
}

// Merge concatenates partition results in order into one BAT with a single
// pre-sized allocation per column. It is the inverse of Partition for any
// order-preserving per-partition operator. Property flags on the result are
// left unknown (false), which is always safe; dispatch wrappers that know
// more set them explicitly.
func Merge(parts []*BAT) (*BAT, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("bat: merge of zero partitions")
	}
	for _, p := range parts {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	heads := make([]*Column, len(parts))
	tails := make([]*Column, len(parts))
	for i, p := range parts {
		heads[i], tails[i] = p.Head, p.Tail
	}
	h, err := concatColumns(heads)
	if err != nil {
		return nil, fmt.Errorf("bat: merge heads: %w", err)
	}
	t, err := concatColumns(tails)
	if err != nil {
		return nil, fmt.Errorf("bat: merge tails: %w", err)
	}
	return &BAT{Head: h, Tail: t}, nil
}

// concatColumns concatenates columns of one kind family. A run of void
// columns whose bases line up stays void (materialisation-free); any other
// mix of void/oid materialises to oid.
func concatColumns(parts []*Column) (*Column, error) {
	kind := materialKind(parts[0].kind)
	total := 0
	allVoid := true
	for _, p := range parts {
		if materialKind(p.kind) != kind {
			return nil, fmt.Errorf("column kind mismatch: %s vs %s", parts[0].kind, p.kind)
		}
		if p.kind != KindVoid {
			allVoid = false
		}
		total += p.Len()
	}
	if allVoid {
		dense, started := true, false
		var base, next OID
		for _, p := range parts {
			if p.n == 0 {
				continue
			}
			if !started {
				base, next, started = p.base, p.base+OID(p.n), true
				continue
			}
			if p.base != next {
				dense = false
				break
			}
			next += OID(p.n)
		}
		if dense {
			return &Column{kind: KindVoid, base: base, n: total}, nil
		}
	}
	out := &Column{kind: kind}
	switch kind {
	case KindOID:
		out.oids = make([]OID, total)
		at := 0
		for _, p := range parts {
			if p.kind == KindVoid {
				for i := 0; i < p.n; i++ {
					out.oids[at+i] = p.base + OID(i)
				}
				at += p.n
			} else {
				at += copy(out.oids[at:], p.oids)
			}
		}
	case KindInt:
		out.ints = make([]int64, total)
		at := 0
		for _, p := range parts {
			at += copy(out.ints[at:], p.ints)
		}
	case KindFloat:
		out.flts = make([]float64, total)
		at := 0
		for _, p := range parts {
			at += copy(out.flts[at:], p.flts)
		}
	case KindStr:
		out.strs = make([]string, total)
		at := 0
		for _, p := range parts {
			at += copy(out.strs[at:], p.strs)
		}
	case KindBool:
		out.bools = make([]bool, total)
		at := 0
		for _, p := range parts {
			at += copy(out.bools[at:], p.bools)
		}
	case KindBytes:
		out.bytes = make([]byte, total)
		at := 0
		for _, p := range parts {
			at += copy(out.bytes[at:], p.bytes)
		}
	default:
		return nil, fmt.Errorf("cannot concatenate %s columns", kind)
	}
	return out, nil
}
