package bat

import (
	"fmt"
)

// Select returns the BUNs of b whose tail equals v, as in MIL
// b.select(v). The head kind is materialised. Large inputs run partitioned
// on the parallel kernel with identical output.
func Select(b *BAT, v any) (*BAT, error) {
	if useParallel(b.Len()) {
		return parSelectWhere(b, func(p *BAT) (func(int) bool, error) {
			return equalPred(p.Tail, v)
		})
	}
	pred, err := equalPred(b.Tail, v)
	if err != nil {
		return nil, err
	}
	return selectWhere(b, pred), nil
}

// SelectRange returns the BUNs whose tail t satisfies lo <= t <= hi
// (MIL b.select(lo, hi)). Either bound may be nil for open-ended ranges.
func SelectRange(b *BAT, lo, hi any) (*BAT, error) {
	if useParallel(b.Len()) {
		return parSelectWhere(b, func(p *BAT) (func(int) bool, error) {
			return rangePred(p.Tail, lo, hi)
		})
	}
	pred, err := rangePred(b.Tail, lo, hi)
	if err != nil {
		return nil, err
	}
	return selectWhere(b, pred), nil
}

// USelect is MIL's uselect: like Select but the result tail is nil-ish —
// represented here as [head, void] since only head membership matters.
func USelect(b *BAT, v any) (*BAT, error) {
	s, err := Select(b, v)
	if err != nil {
		return nil, err
	}
	return s.Mark(0), nil
}

// USelectRange is the range form of USelect.
func USelectRange(b *BAT, lo, hi any) (*BAT, error) {
	s, err := SelectRange(b, lo, hi)
	if err != nil {
		return nil, err
	}
	return s.Mark(0), nil
}

// SelectNot returns BUNs whose tail differs from v.
func SelectNot(b *BAT, v any) (*BAT, error) {
	if useParallel(b.Len()) {
		return parSelectWhere(b, func(p *BAT) (func(int) bool, error) {
			pred, err := equalPred(p.Tail, v)
			if err != nil {
				return nil, err
			}
			return func(i int) bool { return !pred(i) }, nil
		})
	}
	pred, err := equalPred(b.Tail, v)
	if err != nil {
		return nil, err
	}
	return selectWhere(b, func(i int) bool { return !pred(i) }), nil
}

// LikeSelect returns BUNs whose string tail contains the substring pat.
func LikeSelect(b *BAT, pat string) (*BAT, error) {
	if b.Tail.Kind() != KindStr {
		return nil, fmt.Errorf("bat: like_select needs str tail, got %s", b.Tail.Kind())
	}
	if useParallel(b.Len()) {
		return parSelectWhere(b, func(p *BAT) (func(int) bool, error) {
			return func(i int) bool { return containsFold(p.Tail.strs[i], pat) }, nil
		})
	}
	return selectWhere(b, func(i int) bool { return containsFold(b.Tail.strs[i], pat) }), nil
}

// selectWhere gathers BUNs whose position satisfies pred, preserving order.
func selectWhere(b *BAT, pred func(int) bool) *BAT {
	idx := make([]int, 0, 16)
	n := b.Len()
	for i := 0; i < n; i++ {
		if pred(i) {
			idx = append(idx, i)
		}
	}
	out := b.take(idx)
	out.HSorted = b.HSorted || b.HDense()
	out.TSorted = b.TSorted || b.Tail.Kind() == KindVoid
	out.HKey = b.HKey || b.HDense()
	out.TKey = b.TKey || b.Tail.Kind() == KindVoid
	return out
}

// equalPred builds a positional equality predicate over column c for the
// boxed value v, coercing v to the column kind.
func equalPred(c *Column, v any) (func(int) bool, error) {
	switch c.Kind() {
	case KindVoid, KindOID:
		o, ok := toOID(v)
		if !ok {
			return nil, fmt.Errorf("bat: select value %T incompatible with %s column", v, c.Kind())
		}
		return func(i int) bool { return c.OIDAt(i) == o }, nil
	case KindInt:
		x, ok := toInt(v)
		if !ok {
			return nil, fmt.Errorf("bat: select value %T incompatible with int column", v)
		}
		return func(i int) bool { return c.ints[i] == x }, nil
	case KindFloat:
		x, ok := toFloat(v)
		if !ok {
			return nil, fmt.Errorf("bat: select value %T incompatible with flt column", v)
		}
		return func(i int) bool { return c.flts[i] == x }, nil
	case KindStr:
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("bat: select value %T incompatible with str column", v)
		}
		return func(i int) bool { return c.strs[i] == s }, nil
	case KindBool:
		x, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("bat: select value %T incompatible with bit column", v)
		}
		return func(i int) bool { return c.bools[i] == x }, nil
	}
	return nil, fmt.Errorf("bat: bad column kind %v", c.Kind())
}

// rangePred builds lo <= value <= hi over column c; nil bounds are open.
func rangePred(c *Column, lo, hi any) (func(int) bool, error) {
	switch c.Kind() {
	case KindVoid, KindOID:
		var l, h OID
		hasL, hasH := lo != nil, hi != nil
		if hasL {
			v, ok := toOID(lo)
			if !ok {
				return nil, fmt.Errorf("bat: range bound %T incompatible with %s", lo, c.Kind())
			}
			l = v
		}
		if hasH {
			v, ok := toOID(hi)
			if !ok {
				return nil, fmt.Errorf("bat: range bound %T incompatible with %s", hi, c.Kind())
			}
			h = v
		}
		return func(i int) bool {
			v := c.OIDAt(i)
			return (!hasL || v >= l) && (!hasH || v <= h)
		}, nil
	case KindInt:
		var l, h int64
		hasL, hasH := lo != nil, hi != nil
		if hasL {
			v, ok := toInt(lo)
			if !ok {
				return nil, fmt.Errorf("bat: range bound %T incompatible with int", lo)
			}
			l = v
		}
		if hasH {
			v, ok := toInt(hi)
			if !ok {
				return nil, fmt.Errorf("bat: range bound %T incompatible with int", hi)
			}
			h = v
		}
		return func(i int) bool {
			v := c.ints[i]
			return (!hasL || v >= l) && (!hasH || v <= h)
		}, nil
	case KindFloat:
		var l, h float64
		hasL, hasH := lo != nil, hi != nil
		if hasL {
			v, ok := toFloat(lo)
			if !ok {
				return nil, fmt.Errorf("bat: range bound %T incompatible with flt", lo)
			}
			l = v
		}
		if hasH {
			v, ok := toFloat(hi)
			if !ok {
				return nil, fmt.Errorf("bat: range bound %T incompatible with flt", hi)
			}
			h = v
		}
		return func(i int) bool {
			v := c.flts[i]
			return (!hasL || v >= l) && (!hasH || v <= h)
		}, nil
	case KindStr:
		var l, h string
		hasL, hasH := lo != nil, hi != nil
		if hasL {
			v, ok := lo.(string)
			if !ok {
				return nil, fmt.Errorf("bat: range bound %T incompatible with str", lo)
			}
			l = v
		}
		if hasH {
			v, ok := hi.(string)
			if !ok {
				return nil, fmt.Errorf("bat: range bound %T incompatible with str", hi)
			}
			h = v
		}
		return func(i int) bool {
			v := c.strs[i]
			return (!hasL || v >= l) && (!hasH || v <= h)
		}, nil
	}
	return nil, fmt.Errorf("bat: range select unsupported on %s column", c.Kind())
}

// containsFold reports whether s contains pat, ASCII case-insensitively.
func containsFold(s, pat string) bool {
	if len(pat) == 0 {
		return true
	}
	n, m := len(s), len(pat)
	for i := 0; i+m <= n; i++ {
		ok := true
		for j := 0; j < m; j++ {
			a, b := s[i+j], pat[j]
			if 'A' <= a && a <= 'Z' {
				a += 'a' - 'A'
			}
			if 'A' <= b && b <= 'Z' {
				b += 'a' - 'A'
			}
			if a != b {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
