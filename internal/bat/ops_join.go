package bat

import "fmt"

// Join is the Monet join: it matches l's tail values against r's head
// values and returns [l.head, r.tail] for every matching pair, preserving
// l's BUN order. r is hashed on its head (or probed arithmetically when its
// head is void/dense). Large probes run partitioned on the parallel kernel
// with identical output.
func Join(l, r *BAT) (*BAT, error) {
	if useParallel(l.Len()) {
		return parJoin(l, r)
	}
	return joinSerial(l, r)
}

// joinSerial is the single-threaded reference implementation of Join; the
// parallel kernel runs it per partition.
func joinSerial(l, r *BAT) (*BAT, error) {
	out := &BAT{
		Head: NewColumn(materialKind(l.Head.Kind())),
		Tail: NewColumn(materialKind(r.Tail.Kind())),
	}
	n := l.Len()

	// Fast path: r has a dense head, so a tail OID of l maps to a position
	// in r by subtraction. This is the common case after flattening: all
	// attribute BATs of a Moa set share a dense head.
	if r.HDense() && (l.Tail.Kind() == KindOID || l.Tail.Kind() == KindVoid) {
		base, rn := r.Head.Base(), r.Len()
		for i := 0; i < n; i++ {
			o := l.Tail.OIDAt(i)
			j := int(int64(o) - int64(base))
			if j < 0 || j >= rn {
				continue
			}
			out.Head.appendFrom(l.Head, i)
			out.Tail.appendFrom(r.Tail, j)
		}
		out.HSorted = l.HSorted || l.HDense()
		return out, nil
	}

	if l.Tail.Kind() == KindVoid && r.Head.Kind() != KindVoid {
		// Swap roles: probe r's (non-dense) head with l's dense tail.
		rh := r.ensureHash()
		for i := 0; i < n; i++ {
			for _, j := range rh.positions(r.Head, l.Tail.OIDAt(i)) {
				out.Head.appendFrom(l.Head, i)
				out.Tail.appendFrom(r.Tail, j)
			}
		}
		return out, nil
	}

	if materialKind(l.Tail.Kind()) != materialKind(r.Head.Kind()) {
		return nil, fmt.Errorf("bat: join type mismatch: tail %s vs head %s", l.Tail.Kind(), r.Head.Kind())
	}
	rh := r.ensureHash()
	for i := 0; i < n; i++ {
		for _, j := range rh.positions(r.Head, l.Tail.Get(i)) {
			out.Head.appendFrom(l.Head, i)
			out.Tail.appendFrom(r.Tail, j)
		}
	}
	return out, nil
}

// LeftJoin is Join with the guarantee that l's order is preserved; our Join
// already preserves it, so this is an alias kept for MIL compatibility.
func LeftJoin(l, r *BAT) (*BAT, error) { return Join(l, r) }

// SemiJoin returns the BUNs of l whose head value occurs as a head value of
// r (MIL semijoin). Head kinds must be comparable.
func SemiJoin(l, r *BAT) (*BAT, error) {
	member, err := headMembership(r)
	if err != nil {
		return nil, err
	}
	if useParallel(l.Len()) {
		return parSelectWhere(l, func(p *BAT) (func(int) bool, error) {
			return func(i int) bool { return member(p.Head.Get(i)) }, nil
		})
	}
	return selectWhere(l, func(i int) bool { return member(l.Head.Get(i)) }), nil
}

// Diff returns the BUNs of l whose head does NOT occur in r's head
// (MIL kdiff).
func Diff(l, r *BAT) (*BAT, error) {
	member, err := headMembership(r)
	if err != nil {
		return nil, err
	}
	if useParallel(l.Len()) {
		return parSelectWhere(l, func(p *BAT) (func(int) bool, error) {
			return func(i int) bool { return !member(p.Head.Get(i)) }, nil
		})
	}
	return selectWhere(l, func(i int) bool { return !member(l.Head.Get(i)) }), nil
}

// Union returns l plus the BUNs of r whose head does not occur in l
// (MIL kunion: head-keyed union).
func Union(l, r *BAT) (*BAT, error) {
	member, err := headMembership(l)
	if err != nil {
		return nil, err
	}
	out := &BAT{
		Head: NewColumn(materialKind(l.Head.Kind())),
		Tail: NewColumn(materialKind(l.Tail.Kind())),
	}
	for i := 0; i < l.Len(); i++ {
		out.Head.appendFrom(l.Head, i)
		out.Tail.appendFrom(l.Tail, i)
	}
	if materialKind(r.Head.Kind()) != materialKind(l.Head.Kind()) {
		return nil, fmt.Errorf("bat: union head kind mismatch: %s vs %s", l.Head.Kind(), r.Head.Kind())
	}
	for i := 0; i < r.Len(); i++ {
		if !member(r.Head.Get(i)) {
			out.Head.appendFrom(r.Head, i)
			out.Tail.appendFrom(r.Tail, i)
		}
	}
	return out, nil
}

// Intersect returns the BUNs of l whose head occurs in r's head
// (MIL kintersect); identical to SemiJoin but kept as its own operator for
// MIL parity.
func Intersect(l, r *BAT) (*BAT, error) { return SemiJoin(l, r) }

// CrossProduct returns [l.head, r.tail] for every pair of BUNs; used only by
// tiny relations (e.g. binding global statistics to every document).
func CrossProduct(l, r *BAT) (*BAT, error) {
	out := &BAT{
		Head: NewColumn(materialKind(l.Head.Kind())),
		Tail: NewColumn(materialKind(r.Tail.Kind())),
	}
	for i := 0; i < l.Len(); i++ {
		for j := 0; j < r.Len(); j++ {
			out.Head.appendFrom(l.Head, i)
			out.Tail.appendFrom(r.Tail, j)
		}
	}
	return out, nil
}

// headMembership returns a membership test over r's head values.
func headMembership(r *BAT) (func(any) bool, error) {
	if r.HDense() {
		base, n := r.Head.Base(), r.Len()
		return func(v any) bool {
			o, ok := toOID(v)
			if !ok {
				return false
			}
			i := int(int64(o) - int64(base))
			return i >= 0 && i < n
		}, nil
	}
	rh := r.ensureHash()
	return func(v any) bool {
		return len(rh.positions(r.Head, v)) > 0
	}, nil
}

// Fill completes b over a domain: the result contains every BUN of b whose
// head occurs in domain's head, plus (h, fillValue) for every domain head
// missing from b. Order: b's BUNs first (restricted), then missing heads in
// domain order. This implements total-function semantics for aggregates
// over possibly-empty nested sets (sum over an empty set is 0, a document
// matching no query term scores qlen·defaultBelief, ...).
func Fill(b, domain *BAT, fillValue any) (*BAT, error) {
	if out, ok, err := fillFastFloat(b, domain, fillValue); ok {
		return out, err
	}
	inDomain, err := headMembership(domain)
	if err != nil {
		return nil, err
	}
	restricted := selectWhere(b, func(i int) bool { return inDomain(b.Head.Get(i)) })
	inB, err := headMembership(b)
	if err != nil {
		return nil, err
	}
	out := restricted
	for i := 0; i < domain.Len(); i++ {
		h := domain.Head.Get(i)
		if inB(h) {
			continue
		}
		if err := out.Append(h, fillValue); err != nil {
			return nil, fmt.Errorf("bat: fill: %w", err)
		}
	}
	return out, nil
}

// fillFastFloat is the columnar fast path of Fill for the dominant case in
// query plans — OID heads, float tails, compact OID space — using flat
// presence arrays instead of hashes. ok=false means "use the general path".
func fillFastFloat(b, domain *BAT, fillValue any) (*BAT, bool, error) {
	if b.Tail.Kind() != KindFloat {
		return nil, false, nil
	}
	hk := b.Head.Kind()
	dk := domain.Head.Kind()
	if (hk != KindOID && hk != KindVoid) || (dk != KindOID && dk != KindVoid) {
		return nil, false, nil
	}
	fv, okf := toFloat(fillValue)
	if !okf {
		return nil, false, nil
	}
	maxOID := OID(0)
	for i := 0; i < b.Len(); i++ {
		if h := b.Head.OIDAt(i); h > maxOID {
			maxOID = h
		}
	}
	for i := 0; i < domain.Len(); i++ {
		if h := domain.Head.OIDAt(i); h > maxOID {
			maxOID = h
		}
	}
	if uint64(maxOID) >= uint64(4*(b.Len()+domain.Len())+1024) {
		return nil, false, nil // sparse OID space: general path
	}
	inDomain := make([]bool, maxOID+1)
	for i := 0; i < domain.Len(); i++ {
		inDomain[domain.Head.OIDAt(i)] = true
	}
	if useParallel(b.Len() + domain.Len()) {
		return parFillFastFloat(b, domain, fv, inDomain, maxOID)
	}
	present := make([]bool, maxOID+1)
	out := New(KindOID, KindFloat)
	out.Head.oids = make([]OID, 0, domain.Len())
	out.Tail.flts = make([]float64, 0, domain.Len())
	for i := 0; i < b.Len(); i++ {
		h := b.Head.OIDAt(i)
		if !inDomain[h] {
			continue
		}
		present[h] = true
		out.Head.oids = append(out.Head.oids, h)
		out.Tail.flts = append(out.Tail.flts, b.Tail.flts[i])
	}
	for i := 0; i < domain.Len(); i++ {
		h := domain.Head.OIDAt(i)
		if !present[h] {
			out.Head.oids = append(out.Head.oids, h)
			out.Tail.flts = append(out.Tail.flts, fv)
		}
	}
	return out, true, nil
}
