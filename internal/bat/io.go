package bat

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary serialisation of BATs. The format is little-endian:
//
//	magic "BAT1" | head column | tail column | flags byte
//
// column := kind byte | payload
//
//	void: base uint64, n uint64
//	oid:  n uint64, n × uint64
//	int:  n uint64, n × int64
//	flt:  n uint64, n × float64(bits)
//	str:  n uint64, n × (len uint32, bytes)
//	bit:  n uint64, n × byte
const batMagic = "BAT1"

// WriteTo serialises the BAT. It implements io.WriterTo.
func (b *BAT) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: bufio.NewWriter(w)}
	if _, err := cw.Write([]byte(batMagic)); err != nil {
		return cw.n, err
	}
	if err := writeColumn(cw, b.Head); err != nil {
		return cw.n, err
	}
	if err := writeColumn(cw, b.Tail); err != nil {
		return cw.n, err
	}
	var flags byte
	if b.HSorted {
		flags |= 1
	}
	if b.TSorted {
		flags |= 2
	}
	if b.HKey {
		flags |= 4
	}
	if b.TKey {
		flags |= 8
	}
	if _, err := cw.Write([]byte{flags}); err != nil {
		return cw.n, err
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadBAT deserialises a BAT written by WriteTo.
func ReadBAT(r io.Reader) (*BAT, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("bat: read magic: %w", err)
	}
	if string(magic) != batMagic {
		return nil, fmt.Errorf("bat: bad magic %q", magic)
	}
	head, err := readColumn(br)
	if err != nil {
		return nil, err
	}
	tail, err := readColumn(br)
	if err != nil {
		return nil, err
	}
	var flags [1]byte
	if _, err := io.ReadFull(br, flags[:]); err != nil {
		return nil, fmt.Errorf("bat: read flags: %w", err)
	}
	b := &BAT{
		Head: head, Tail: tail,
		HSorted: flags[0]&1 != 0, TSorted: flags[0]&2 != 0,
		HKey: flags[0]&4 != 0, TKey: flags[0]&8 != 0,
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

func writeU64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func writeColumn(w io.Writer, c *Column) error {
	if _, err := w.Write([]byte{byte(c.kind)}); err != nil {
		return err
	}
	switch c.kind {
	case KindVoid:
		if err := writeU64(w, uint64(c.base)); err != nil {
			return err
		}
		return writeU64(w, uint64(c.n))
	case KindOID:
		if err := writeU64(w, uint64(len(c.oids))); err != nil {
			return err
		}
		for _, v := range c.oids {
			if err := writeU64(w, uint64(v)); err != nil {
				return err
			}
		}
	case KindInt:
		if err := writeU64(w, uint64(len(c.ints))); err != nil {
			return err
		}
		for _, v := range c.ints {
			if err := writeU64(w, uint64(v)); err != nil {
				return err
			}
		}
	case KindFloat:
		if err := writeU64(w, uint64(len(c.flts))); err != nil {
			return err
		}
		for _, v := range c.flts {
			if err := writeU64(w, math.Float64bits(v)); err != nil {
				return err
			}
		}
	case KindStr:
		if err := writeU64(w, uint64(len(c.strs))); err != nil {
			return err
		}
		var lbuf [4]byte
		for _, s := range c.strs {
			binary.LittleEndian.PutUint32(lbuf[:], uint32(len(s)))
			if _, err := w.Write(lbuf[:]); err != nil {
				return err
			}
			if _, err := io.WriteString(w, s); err != nil {
				return err
			}
		}
	case KindBool:
		if err := writeU64(w, uint64(len(c.bools))); err != nil {
			return err
		}
		for _, v := range c.bools {
			bb := byte(0)
			if v {
				bb = 1
			}
			if _, err := w.Write([]byte{bb}); err != nil {
				return err
			}
		}
	case KindBytes:
		if err := writeU64(w, uint64(len(c.bytes))); err != nil {
			return err
		}
		if _, err := w.Write(c.bytes); err != nil {
			return err
		}
	default:
		return fmt.Errorf("bat: write: bad kind %d", c.kind)
	}
	return nil
}

func readColumn(r io.Reader) (*Column, error) {
	var kb [1]byte
	if _, err := io.ReadFull(r, kb[:]); err != nil {
		return nil, fmt.Errorf("bat: read kind: %w", err)
	}
	kind := Kind(kb[0])
	c := &Column{kind: kind}
	switch kind {
	case KindVoid:
		base, err := readU64(r)
		if err != nil {
			return nil, err
		}
		n, err := readU64(r)
		if err != nil {
			return nil, err
		}
		c.base, c.n = OID(base), int(n)
	case KindOID:
		n, err := readU64(r)
		if err != nil {
			return nil, err
		}
		c.oids = make([]OID, n)
		for i := range c.oids {
			v, err := readU64(r)
			if err != nil {
				return nil, err
			}
			c.oids[i] = OID(v)
		}
	case KindInt:
		n, err := readU64(r)
		if err != nil {
			return nil, err
		}
		c.ints = make([]int64, n)
		for i := range c.ints {
			v, err := readU64(r)
			if err != nil {
				return nil, err
			}
			c.ints[i] = int64(v)
		}
	case KindFloat:
		n, err := readU64(r)
		if err != nil {
			return nil, err
		}
		c.flts = make([]float64, n)
		for i := range c.flts {
			v, err := readU64(r)
			if err != nil {
				return nil, err
			}
			c.flts[i] = math.Float64frombits(v)
		}
	case KindStr:
		n, err := readU64(r)
		if err != nil {
			return nil, err
		}
		c.strs = make([]string, n)
		var lbuf [4]byte
		for i := range c.strs {
			if _, err := io.ReadFull(r, lbuf[:]); err != nil {
				return nil, err
			}
			l := binary.LittleEndian.Uint32(lbuf[:])
			sb := make([]byte, l)
			if _, err := io.ReadFull(r, sb); err != nil {
				return nil, err
			}
			c.strs[i] = string(sb)
		}
	case KindBool:
		n, err := readU64(r)
		if err != nil {
			return nil, err
		}
		c.bools = make([]bool, n)
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		for i, bb := range buf {
			c.bools[i] = bb != 0
		}
	case KindBytes:
		n, err := readU64(r)
		if err != nil {
			return nil, err
		}
		c.bytes = make([]byte, n)
		if _, err := io.ReadFull(r, c.bytes); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("bat: read: bad kind %d", kind)
	}
	return c, nil
}
