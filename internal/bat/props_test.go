package bat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randBAT builds a BAT with oid heads and int tails from fuzz input.
func randBAT(heads []uint16, tails []int16) *BAT {
	n := len(heads)
	if len(tails) < n {
		n = len(tails)
	}
	b := New(KindOID, KindInt)
	for i := 0; i < n; i++ {
		b.MustAppend(OID(heads[i]), int64(tails[i]))
	}
	return b
}

// Property: |semijoin(l, r)| + |diff(l, r)| == |l|.
func TestPropSemiJoinDiffPartition(t *testing.T) {
	f := func(lh, rh []uint16, lt, rt []int16) bool {
		l := randBAT(lh, lt)
		r := randBAT(rh, rt)
		s, err1 := SemiJoin(l, r)
		d, err2 := Diff(l, r)
		if err1 != nil || err2 != nil {
			return false
		}
		return s.Len()+d.Len() == l.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: union(l, r) has every l BUN plus the r BUNs whose head is new;
// its head set is the union of both head sets.
func TestPropUnionCardinality(t *testing.T) {
	f := func(lh, rh []uint16, lt, rt []int16) bool {
		l := randBAT(lh, lt)
		r := randBAT(rh, rt)
		u, err := Union(l, r)
		if err != nil {
			return false
		}
		d, err := Diff(r, l)
		if err != nil {
			return false
		}
		return u.Len() == l.Len()+d.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: TSort yields a sorted permutation of the input.
func TestPropTSortPermutation(t *testing.T) {
	f := func(tails []int16) bool {
		b := NewDense(0, KindInt)
		for i, v := range tails {
			b.MustAppend(OID(i), int64(v))
		}
		s, err := TSort(b)
		if err != nil || s.Len() != b.Len() {
			return false
		}
		counts := map[int64]int{}
		for i := 0; i < b.Len(); i++ {
			counts[b.Tail.IntAt(i)]++
			counts[s.Tail.IntAt(i)]--
		}
		for i := 1; i < s.Len(); i++ {
			if s.Tail.IntAt(i-1) > s.Tail.IntAt(i) {
				return false
			}
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: join through a mirror is identity on key-headed BATs.
func TestPropJoinMirrorIdentity(t *testing.T) {
	f := func(tails []int16) bool {
		b := NewDense(0, KindInt)
		for i, v := range tails {
			b.MustAppend(OID(i), int64(v))
		}
		j, err := Join(b.Mirror(), b)
		if err != nil || j.Len() != b.Len() {
			return false
		}
		for i := 0; i < b.Len(); i++ {
			if j.Tail.IntAt(i) != b.Tail.IntAt(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Fill over a domain always yields exactly one BUN per distinct
// domain head present, and never loses an in-domain BUN of b.
func TestPropFillCovers(t *testing.T) {
	f := func(scoreHeads []uint8, domSize uint8) bool {
		b := New(KindOID, KindFloat)
		seen := map[OID]bool{}
		for _, h := range scoreHeads {
			o := OID(h % 32)
			if seen[o] {
				continue
			}
			seen[o] = true
			b.MustAppend(o, 0.5)
		}
		n := int(domSize%32) + 1
		domain := New(KindVoid, KindVoid)
		for i := 0; i < n; i++ {
			domain.MustAppend(OID(i), OID(i))
		}
		out, err := Fill(b, domain, 0.1)
		if err != nil {
			return false
		}
		return out.Len() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: dense-path GetBL agrees with a naive per-document scan.
func TestPropGetBLMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nDocs := 1 + rng.Intn(20)
		nTerms := 1 + rng.Intn(10)
		term := NewDense(0, KindOID)
		doc := NewDense(0, KindOID)
		bel := NewDense(0, KindFloat)
		type pk struct{ d, t OID }
		truth := map[pk]float64{}
		i := 0
		for d := 0; d < nDocs; d++ {
			for tm := 0; tm < nTerms; tm++ {
				if rng.Float64() < 0.3 {
					v := rng.Float64()
					term.MustAppend(OID(i), OID(tm))
					doc.MustAppend(OID(i), OID(d))
					bel.MustAppend(OID(i), v)
					truth[pk{OID(d), OID(tm)}] = v
					i++
				}
			}
		}
		query := []OID{0, OID(nTerms / 2)}
		beliefs, counts, err := GetBL(term.Reverse(), doc, bel, query)
		if err != nil {
			return false
		}
		scores, err := SumBeliefs(beliefs, counts, len(query), 0.4)
		if err != nil {
			return false
		}
		for d := 0; d < nDocs; d++ {
			var want float64
			matched := 0
			for _, q := range query {
				if v, ok := truth[pk{OID(d), q}]; ok {
					want += v
					matched++
				}
			}
			if matched == 0 {
				if _, ok := scores.Find(OID(d)); ok {
					return false // non-matching docs must be absent
				}
				continue
			}
			want += float64(len(query)-matched) * 0.4
			got, ok := scores.Find(OID(d))
			if !ok {
				return false
			}
			diff := got.(float64) - want
			if diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: GetBLPairs emits exactly |domain|·|query| BUNs grouped by doc.
func TestPropGetBLPairsShape(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nDocs := 1 + rng.Intn(12)
		term := NewDense(0, KindOID)
		doc := NewDense(0, KindOID)
		bel := NewDense(0, KindFloat)
		i := 0
		for d := 0; d < nDocs; d++ {
			if rng.Intn(2) == 0 {
				term.MustAppend(OID(i), OID(0))
				doc.MustAppend(OID(i), OID(d))
				bel.MustAppend(OID(i), 0.8)
				i++
			}
		}
		domain := New(KindVoid, KindVoid)
		for d := 0; d < nDocs; d++ {
			domain.MustAppend(OID(d), OID(d))
		}
		query := []OID{0, 1, 2}
		pairs, err := GetBLPairs(term.Reverse(), doc, bel, query, 0.4, domain)
		if err != nil {
			return false
		}
		return pairs.Len() == nDocs*len(query)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkJoinDense(b *testing.B) {
	l := New(KindOID, KindOID)
	r := NewDense(0, KindFloat)
	for i := 0; i < 10000; i++ {
		l.MustAppend(OID(i), OID((i*7)%10000))
		r.MustAppend(OID(i), float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Join(l, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinHash(b *testing.B) {
	l := NewDense(0, KindStr)
	r := New(KindStr, KindInt)
	for i := 0; i < 10000; i++ {
		s := string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		l.MustAppend(OID(i), s)
		if i%10 == 0 {
			r.MustAppend(s, int64(i))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Join(l, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectRange(b *testing.B) {
	bt := NewDense(0, KindFloat)
	for i := 0; i < 100000; i++ {
		bt.MustAppend(OID(i), float64(i%1000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelectRange(bt, 100.0, 200.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPumpByHead(b *testing.B) {
	bt := New(KindOID, KindFloat)
	for i := 0; i < 50000; i++ {
		bt.MustAppend(OID(i%1000), float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PumpByHead(AggSum, bt); err != nil {
			b.Fatal(err)
		}
	}
}
