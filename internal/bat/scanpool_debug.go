//go:build pooldebug

package bat

import (
	"fmt"
	"math"
	"sync"
)

// pooldebug: dynamic enforcement of the scanScratch borrow/return
// discipline — live set keyed by the scratch pointer, double-release
// panics, and poisoning of released slices so stale reads score loudly
// wrong documents.
//
//poolcheck:poolfile

var scanPoolDebug struct {
	mu       sync.Mutex
	live     map[*scanScratch]struct{}
	released map[*scanScratch]struct{}
}

func init() {
	scanPoolDebug.live = make(map[*scanScratch]struct{})
	scanPoolDebug.released = make(map[*scanScratch]struct{})
}

func scanScratchBorrowed(sc *scanScratch) {
	scanPoolDebug.mu.Lock()
	delete(scanPoolDebug.released, sc)
	scanPoolDebug.live[sc] = struct{}{}
	scanPoolDebug.mu.Unlock()
}

func scanScratchReleased(sc *scanScratch) {
	scanPoolDebug.mu.Lock()
	if _, ok := scanPoolDebug.released[sc]; ok {
		scanPoolDebug.mu.Unlock()
		panic(fmt.Sprintf("bat: double releaseScanScratch of %p", sc))
	}
	delete(scanPoolDebug.live, sc)
	scanPoolDebug.released[sc] = struct{}{}
	scanPoolDebug.mu.Unlock()
	// poison: NaN bounds/beliefs propagate, impossible docs and stamps
	// make stale reads fail comparisons loudly.
	for i := range sc.terms {
		sc.terms[i] = qterm{qi: -1, cur: -1, hi: -1, ub: math.NaN(), weight: math.NaN()}
	}
	for i := range sc.perm {
		sc.perm[i] = -1
	}
	for i := range sc.suffix {
		sc.suffix[i] = math.NaN()
	}
	for i := range sc.fbel {
		sc.fbel[i] = math.NaN()
	}
	for i := range sc.stamp {
		sc.stamp[i] = -1
	}
	for i := range sc.docs {
		sc.docs[i] = OID(^uint64(0))
	}
}

// LiveScanScratch reports the number of borrowed-but-unreleased scan
// scratch sets. Leak tests snapshot it around a pruned scan and require
// the delta be zero. Always 0 unless built with -tags pooldebug.
func LiveScanScratch() int {
	scanPoolDebug.mu.Lock()
	defer scanPoolDebug.mu.Unlock()
	return len(scanPoolDebug.live)
}
