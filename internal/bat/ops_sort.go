package bat

import (
	"fmt"
	"sort"
)

// TSort returns b with BUNs reordered so the tail is ascending (MIL tsort).
// The sort is stable, so equal tails keep their head order.
func TSort(b *BAT) (*BAT, error) { return sortBy(b, b.Tail, false) }

// TSortRev sorts by tail descending, stably.
func TSortRev(b *BAT) (*BAT, error) { return sortBy(b, b.Tail, true) }

// HSort sorts by head ascending, stably (MIL hsort/sort).
func HSort(b *BAT) (*BAT, error) { return sortBy(b, b.Head, false) }

// sortBy reorders b's BUNs by column c.
func sortBy(b *BAT, c *Column, desc bool) (*BAT, error) {
	n := b.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var less func(i, j int) bool
	switch c.Kind() {
	case KindVoid:
		// already sorted by construction
		if !desc {
			res := b.Clone()
			return res, nil
		}
		less = func(i, j int) bool { return c.OIDAt(idx[i]) > c.OIDAt(idx[j]) }
	case KindOID:
		less = func(i, j int) bool {
			return cmpOrder(desc, c.oids[idx[i]] < c.oids[idx[j]], c.oids[idx[i]] > c.oids[idx[j]])
		}
	case KindInt:
		less = func(i, j int) bool {
			return cmpOrder(desc, c.ints[idx[i]] < c.ints[idx[j]], c.ints[idx[i]] > c.ints[idx[j]])
		}
	case KindFloat:
		less = func(i, j int) bool {
			return cmpOrder(desc, c.flts[idx[i]] < c.flts[idx[j]], c.flts[idx[i]] > c.flts[idx[j]])
		}
	case KindStr:
		less = func(i, j int) bool {
			return cmpOrder(desc, c.strs[idx[i]] < c.strs[idx[j]], c.strs[idx[i]] > c.strs[idx[j]])
		}
	case KindBool:
		less = func(i, j int) bool {
			return cmpOrder(desc, !c.bools[idx[i]] && c.bools[idx[j]], c.bools[idx[i]] && !c.bools[idx[j]])
		}
	default:
		return nil, fmt.Errorf("bat: sort unsupported on %s column", c.Kind())
	}
	sort.SliceStable(idx, less)
	out := b.take(idx)
	if c == b.Tail {
		out.TSorted = !desc
	} else {
		out.HSorted = !desc
	}
	return out, nil
}

func cmpOrder(desc, lt, gt bool) bool {
	if desc {
		return gt
	}
	return lt
}

// TopN returns the first n BUNs of b after sorting by tail descending:
// the ranked-retrieval cut used throughout the retrieval layer.
func TopN(b *BAT, n int) (*BAT, error) {
	s, err := TSortRev(b)
	if err != nil {
		return nil, err
	}
	if n > s.Len() {
		n = s.Len()
	}
	return s.Slice(0, n)
}

// Number returns [void(0..), head-values]: positional enumeration of b's
// head (MIL number/enumerate).
func Number(b *BAT) *BAT {
	out := &BAT{Head: NewVoid(0, b.Len()), Tail: b.Head.Materialize().clone()}
	out.HSorted, out.HKey = true, true
	return out
}
