package bat

import (
	"math/rand"
	"sort"
	"testing"
)

// segSplit cuts a synthIndex's document space at the given boundaries
// (ascending, exclusive ends; the last boundary must be ndocs) and builds
// one PostingsSeg per slice. Segments may be built against different
// dictionary sizes (tail segments see the full dictionary, earlier ones a
// prefix) to mirror incremental publishes that predate later terms.
func segSplit(si *synthIndex, bounds []int, shrinkDicts bool) []PostingsSeg {
	segs := make([]PostingsSeg, 0, len(bounds))
	lo := 0
	for segIdx, hi := range bounds {
		nterms := si.nterms
		if shrinkDicts && segIdx == 0 {
			// First segment published before the last term existed — but
			// only when no document in it uses the last term.
			uses := false
			for d := lo; d < hi; d++ {
				if _, ok := si.perDoc[d][OID(si.nterms-1)]; ok {
					uses = true
				}
			}
			if !uses {
				nterms = si.nterms - 1
			}
		}
		type post struct {
			d OID
			b float64
		}
		byTerm := make([][]post, nterms)
		for d := lo; d < hi; d++ {
			for t, b := range si.perDoc[d] {
				if int(t) < nterms {
					byTerm[t] = append(byTerm[t], post{OID(d), b})
				}
			}
		}
		start := NewDense(0, KindInt)
		doc := NewDense(0, KindOID)
		bel := NewDense(0, KindFloat)
		maxb := NewDense(0, KindFloat)
		off := int64(0)
		for t := 0; t < nterms; t++ {
			start.MustAppend(OID(t), off)
			sort.Slice(byTerm[t], func(a, b int) bool { return byTerm[t][a].d < byTerm[t][b].d })
			mx := 0.0
			for _, p := range byTerm[t] {
				doc.MustAppend(OID(off), p.d)
				bel.MustAppend(OID(off), p.b)
				if p.b > mx {
					mx = p.b
				}
				off++
			}
			maxb.MustAppend(OID(t), mx)
		}
		start.MustAppend(OID(nterms), off)
		segs = append(segs, PostingsSeg{Start: start, Doc: doc, Bel: bel, MaxBel: maxb})
		lo = hi
	}
	return segs
}

// TestPrunedTopKSegsMatchesMerged pins the segment-list operator's
// differential guarantee: scanning any segmentation of the document space
// returns BUN-for-BUN (ties included) the single-segment result, for
// random corpora with manufactured ties, duplicate and OOV query terms,
// unweighted (domain fill) and weighted modes, and segments whose
// dictionaries predate later terms.
func TestPrunedTopKSegsMatchesMerged(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const def = 0.4
	for round := 0; round < 60; round++ {
		ndocs := 1 + rng.Intn(300)
		nterms := 2 + rng.Intn(30)
		si := mkSynthIndex(rng, nterms, ndocs, 6, 3)

		// random segmentation: 1..5 cuts
		nseg := 1 + rng.Intn(5)
		cuts := map[int]bool{ndocs: true}
		for len(cuts) < nseg {
			cuts[1+rng.Intn(ndocs)] = true
		}
		var bounds []int
		for c := range cuts {
			bounds = append(bounds, c)
		}
		sort.Ints(bounds)
		segs := segSplit(si, bounds, rng.Intn(2) == 0)

		k := 1 + rng.Intn(ndocs+3)
		qlen := 1 + rng.Intn(5)
		query := make([]OID, qlen)
		for i := range query {
			query[i] = OID(rng.Intn(nterms + 2)) // may exceed dict: OOV
		}
		var weights []float64
		if rng.Intn(2) == 0 {
			weights = make([]float64, qlen)
			for i := range weights {
				weights[i] = float64(rng.Intn(4))
			}
		}

		want, err := PrunedTopK(si.start, si.doc, si.bel, si.maxb, query, weights, def, k, si.domain)
		if err != nil {
			t.Fatalf("round %d: merged: %v", round, err)
		}
		got, err := PrunedTopKSegs(segs, query, weights, def, k, si.domain, nil)
		if err != nil {
			t.Fatalf("round %d: segmented: %v", round, err)
		}
		if want.Len() != got.Len() {
			t.Fatalf("round %d (%d segs): %d vs %d hits", round, len(segs), want.Len(), got.Len())
		}
		for i := 0; i < want.Len(); i++ {
			if want.Head.OIDAt(i) != got.Head.OIDAt(i) || want.Tail.FloatAt(i) != got.Tail.FloatAt(i) {
				t.Fatalf("round %d (%d segs) hit %d: merged (%d,%v) vs segmented (%d,%v)",
					round, len(segs), i,
					want.Head.OIDAt(i), want.Tail.FloatAt(i),
					got.Head.OIDAt(i), got.Tail.FloatAt(i))
			}
		}
	}
}

// TestPrunedTopKSegsValidation keeps malformed segment input an error,
// never a panic (the MIL surface feeds this operator arbitrary programs).
func TestPrunedTopKSegsValidation(t *testing.T) {
	if _, err := PrunedTopKSegs(nil, []OID{0}, nil, 0.4, 3, New(KindVoid, KindVoid), nil); err == nil {
		t.Fatal("empty segment list accepted")
	}
	rng := rand.New(rand.NewSource(1))
	si := mkSynthIndex(rng, 4, 10, 3, 0)
	bad := PostingsSeg{Start: si.bel, Doc: si.doc, Bel: si.bel, MaxBel: si.maxb} // wrong kind
	if _, err := PrunedTopKSegs([]PostingsSeg{bad}, []OID{0}, nil, 0.4, 3, si.domain, nil); err == nil {
		t.Fatal("malformed segment accepted")
	}
}
