package bat

import "fmt"

// This file contains the probabilistic physical operators that the paper
// adds to the Monet kernel: "New structures in Moa, supported by new
// probabilistic operators at the physical level, provide an efficient
// implementation of the inference network retrieval model."
//
// A flattened CONTREP is a triple of positionally aligned BATs over a dense
// pair-OID head:
//
//	term   [pair(void), termOID]
//	doc    [pair(void), docOID]
//	belief [pair(void), flt]
//
// GetBL is the physical workhorse behind the Moa-level getBL(): given the
// OIDs of the query terms it produces the per-document evidence.

// GetBL scans the postings of the query terms and returns
//
//	beliefs [docOID, flt]  — one BUN per (document, matched query term)
//	counts  [docOID, int]  — number of matched query terms per document
//
// Documents that match no query term do not appear; the logical layer
// accounts for the default belief of unmatched terms algebraically
// (sum = matchedSum + (|q|-matched)·defaultBelief), which is what makes the
// operator scale with the posting lists rather than with the collection.
//
// revTerm must be term.Reverse() retained by the caller, so that its hash
// index (built here on first use) persists across queries.
func GetBL(revTerm, doc, belief *BAT, query []OID) (beliefs, counts *BAT, err error) {
	if doc.Len() != belief.Len() || doc.Len() != revTerm.Len() {
		return nil, nil, fmt.Errorf("bat: getBL: misaligned contrep columns (%d/%d/%d)",
			revTerm.Len(), doc.Len(), belief.Len())
	}
	if doc.Tail.Kind() != KindOID && doc.Tail.Kind() != KindVoid {
		return nil, nil, fmt.Errorf("bat: getBL: doc tail must be oid, got %s", doc.Tail.Kind())
	}
	if belief.Tail.Kind() != KindFloat {
		return nil, nil, fmt.Errorf("bat: getBL: belief tail must be flt, got %s", belief.Tail.Kind())
	}
	revHash := revTerm.ensureHash()

	// Gather the matched posting positions first; everything after is sized
	// from the match volume, never from the collection.
	var matched [][]int
	total := 0
	for _, q := range query {
		var positions []int
		if revTerm.HDense() {
			// degenerate but possible: term column dense (each pair its own term)
			i := int(int64(q) - int64(revTerm.Head.Base()))
			if i >= 0 && i < revTerm.Len() {
				positions = []int{i}
			}
		} else {
			positions = revHash.positions(revTerm.Head, q)
		}
		matched = append(matched, positions)
		total += len(positions)
	}

	// Flatten the matched position lists once; the beliefs fill is then a
	// pure index-parallel gather into pre-sized columns (no per-row append).
	posFlat := make([]int, total)
	at := 0
	for _, positions := range matched {
		at += copy(posFlat[at:], positions)
	}
	beliefs = New(KindOID, KindFloat)
	beliefs.Head.oids = make([]OID, total)
	beliefs.Tail.flts = make([]float64, total)
	ParallelFor(total, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := posFlat[i]
			beliefs.Head.oids[i] = doc.Tail.OIDAt(p)
			beliefs.Tail.flts[i] = belief.Tail.flts[p]
		}
	})

	// Dense accumulator fast path: document OIDs are small integers after
	// flattening (0..card-1), so per-document counters live in a flat array
	// rather than a hash map — the columnar execution style the physical
	// layer exists for. Falls back to a map for sparse OID spaces.
	maxDoc := parMaxOID(beliefs.Head.oids)
	useDense := uint64(maxDoc) < uint64(4*total+1024)
	// Parallel counting carries one maxDoc-sized counter array per chunk;
	// only worth it when that total stays proportional to the match volume.
	if useDense && useParallel(total) && denseParWorthwhile(maxDoc, Parallelism(), total) {
		return beliefs, parCountDocs(beliefs.Head.oids, maxDoc), nil
	}
	var cntArr []int64
	var cntMap map[OID]int64
	if useDense {
		cntArr = make([]int64, maxDoc+1)
	} else {
		cntMap = make(map[OID]int64)
	}
	order := make([]OID, 0, 64)
	for _, d := range beliefs.Head.oids {
		if useDense {
			if cntArr[d] == 0 {
				order = append(order, d)
			}
			cntArr[d]++
		} else {
			if _, seen := cntMap[d]; !seen {
				order = append(order, d)
			}
			cntMap[d]++
		}
	}
	counts = New(KindOID, KindInt)
	counts.Head.oids = make([]OID, 0, len(order))
	counts.Tail.ints = make([]int64, 0, len(order))
	for _, d := range order {
		c := int64(0)
		if useDense {
			c = cntArr[d]
		} else {
			c = cntMap[d]
		}
		counts.Head.oids = append(counts.Head.oids, d)
		counts.Tail.ints = append(counts.Tail.ints, c)
	}
	counts.HKey = true
	return beliefs, counts, nil
}

// SumBeliefs folds the output of GetBL into per-document belief sums with
// the default belief filled in for unmatched query terms:
//
//	score(d) = Σ matched beliefs + (qlen − matched(d)) · defaultBelief
//
// The result is [docOID, flt] with one BUN per matching document, unsorted.
func SumBeliefs(beliefs, counts *BAT, qlen int, defaultBelief float64) (*BAT, error) {
	if beliefs.Head.Kind() != KindOID || beliefs.Tail.Kind() != KindFloat {
		return nil, fmt.Errorf("bat: sumBeliefs: want [oid,flt], got [%s,%s]",
			beliefs.Head.Kind(), beliefs.Tail.Kind())
	}
	// dense accumulator when the doc OID space is compact (see GetBL)
	n := beliefs.Len()
	maxDoc := parMaxOID(beliefs.Head.oids)
	out := New(KindOID, KindFloat)
	out.Head.oids = make([]OID, 0, counts.Len())
	out.Tail.flts = make([]float64, 0, counts.Len())
	if uint64(maxDoc) < uint64(4*n+1024) {
		// Per-partition partial sum arrays, reduced in partition order. The
		// float reduction may differ from the serial fold in the last ulps
		// (documented in parallel.go); the emit below is exact given sums.
		var sums []float64
		if useParallel(n) && denseParWorthwhile(maxDoc, Parallelism(), n) {
			ranges := chunkRanges(n, Parallelism())
			partial := make([][]float64, len(ranges))
			runChunks(ranges, func(c, lo, hi int) {
				s := make([]float64, maxDoc+1)
				for i := lo; i < hi; i++ {
					s[beliefs.Head.oids[i]] += beliefs.Tail.flts[i]
				}
				partial[c] = s
			})
			sums = partial[0]
			for _, s := range partial[1:] {
				for d := range sums {
					sums[d] += s[d]
				}
			}
		} else {
			sums = make([]float64, maxDoc+1)
			for i, d := range beliefs.Head.oids {
				sums[d] += beliefs.Tail.flts[i]
			}
		}
		m := counts.Len()
		out.Head.oids = out.Head.oids[:m]
		out.Tail.flts = out.Tail.flts[:m]
		ParallelFor(m, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				d := counts.Head.oids[i]
				out.Head.oids[i] = d
				out.Tail.flts[i] = sums[d] + float64(qlen-int(counts.Tail.ints[i]))*defaultBelief
			}
		})
	} else {
		sums := make(map[OID]float64, counts.Len())
		for i := 0; i < beliefs.Len(); i++ {
			sums[beliefs.Head.oids[i]] += beliefs.Tail.flts[i]
		}
		for i := 0; i < counts.Len(); i++ {
			d := counts.Head.oids[i]
			matched := counts.Tail.ints[i]
			out.Head.oids = append(out.Head.oids, d)
			out.Tail.flts = append(out.Tail.flts, sums[d]+float64(qlen-int(matched))*defaultBelief)
		}
	}
	out.HKey = true
	return out, nil
}

// WSumBeliefs is the weighted variant used by the #wsum inference-network
// operator: query term i carries weight w[i]. Beliefs of unmatched terms
// default as in SumBeliefs. Because weights are per-term, this recomputes
// the scan rather than reusing GetBL output.
func WSumBeliefs(revTerm, doc, belief *BAT, query []OID, weights []float64, defaultBelief float64) (*BAT, error) {
	if len(query) != len(weights) {
		return nil, fmt.Errorf("bat: wsum: %d terms vs %d weights", len(query), len(weights))
	}
	revHash := revTerm.ensureHash()
	var wtot float64
	for _, w := range weights {
		wtot += w
	}
	sums := make(map[OID]float64)
	order := make([]OID, 0, 64)
	seen := make(map[OID]bool)
	for qi, q := range query {
		if revTerm.HDense() {
			continue
		}
		for _, p := range revHash.positions(revTerm.Head, q) {
			d := doc.Tail.OIDAt(p)
			if !seen[d] {
				seen[d] = true
				order = append(order, d)
			}
			// add weighted surplus over the default belief; the default mass
			// w·defaultBelief for every term is added once below.
			sums[d] += weights[qi] * (belief.Tail.flts[p] - defaultBelief)
		}
	}
	out := New(KindOID, KindFloat)
	for _, d := range order {
		out.Head.oids = append(out.Head.oids, d)
		out.Tail.flts = append(out.Tail.flts, sums[d]+wtot*defaultBelief)
	}
	out.HKey = true
	return out, nil
}

// GetBLPairs is the *materialising* form of GetBL used by the unoptimised
// query plan: for EVERY document in domain and EVERY query term it emits one
// BUN (docOID, belief), using defaultBelief for terms absent from the
// document. Cost is Θ(|domain|·|query|) — this is the operator the
// sum∘getBL fusion rewrite eliminates (BenchmarkE7_OptimizerAblation).
// Output is grouped by document in domain order.
func GetBLPairs(revTerm, doc, belief *BAT, query []OID, defaultBelief float64, domain *BAT) (*BAT, error) {
	revHash := revTerm.ensureHash()
	// Per-document belief lookup for the query terms only.
	type key struct {
		d OID
		q int
	}
	matched := make(map[key]float64)
	for qi, q := range query {
		if revTerm.HDense() {
			continue
		}
		for _, p := range revHash.positions(revTerm.Head, q) {
			matched[key{doc.Tail.OIDAt(p), qi}] = belief.Tail.flts[p]
		}
	}
	out := New(KindOID, KindFloat)
	for i := 0; i < domain.Len(); i++ {
		d := domain.Head.OIDAt(i)
		for qi := range query {
			b, ok := matched[key{d, qi}]
			if !ok {
				b = defaultBelief
			}
			out.Head.oids = append(out.Head.oids, d)
			out.Tail.flts = append(out.Tail.flts, b)
		}
	}
	return out, nil
}
