package bat

import "sync"

// Pooled decode scratch for the block-compressed scan: borrow/return
// discipline for blockCursorSet buffers.
//
// Every block-layout scan in PrunedTopKSegs drives one cursor per query
// term, and each cursor decodes postings into private buffers (docs +
// beliefs + dictionary, PostingsBlockSize each). A query of m terms
// over s segments and p partitions would otherwise allocate m·s·p such
// buffer sets per request; at server query rates that is pure allocator
// churn on the hottest path in the system, so cursor sets come from a
// sync.Pool with the same two enforcement layers as ir's Scores maps:
//
//   - internal/lint/poolcheck statically checks every borrow is
//     released on every control-flow path;
//   - the pooldebug build tag (blockpool_debug.go) tracks live borrows
//     at run time, poisons released buffers, and counts leaks for the
//     pool-leak tests.
//
// Raw blockCursorPool access outside this file is a poolcheck
// diagnostic.
//
//poolcheck:poolfile

// blockCursorSet is one scan's worth of per-term decode cursors. The
// set is pooled as a unit (one borrow per scan, not one per term) so
// the borrow/return pairing stays statically checkable.
type blockCursorSet struct {
	cs []blockCursor
}

// blockCursorPool recycles cursor sets between scans.
var blockCursorPool = sync.Pool{New: func() any { return &blockCursorSet{} }}

// borrowBlockCursors returns a set of n reset cursors. The caller owns
// the set: return it with releaseBlockCursors exactly once when done
// (dropping it instead merely wastes the reuse, but under the pooldebug
// tag an unreleased borrow is a reportable leak).
func borrowBlockCursors(n int) *blockCursorSet {
	s := blockCursorPool.Get().(*blockCursorSet)
	if cap(s.cs) < n {
		grown := make([]blockCursor, n)
		copy(grown, s.cs[:cap(s.cs)])
		s.cs = grown
	}
	s.cs = s.cs[:n]
	for i := range s.cs {
		s.cs[i].reset()
	}
	blockCursorsBorrowed(s)
	return s
}

// releaseBlockCursors returns s to the pool. The caller must not retain
// s (or any cursor buffer) afterwards: under the pooldebug tag released
// buffers are poisoned. nil is tolerated (error paths release
// unconditionally).
func releaseBlockCursors(s *blockCursorSet) {
	if s == nil {
		return
	}
	blockCursorsReleased(s)
	blockCursorPool.Put(s)
}
