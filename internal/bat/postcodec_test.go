package bat

import (
	"encoding/binary"
	"math"
	"testing"
)

// buildBlockColumns assembles the seven block-layout BATs from raw
// term runs (the shape ir produces), for tests.
func buildBlockColumns(t *testing.T, runs [][2][]int64, belRuns [][]float64) (*BlockPostings, [7]*BAT) {
	t.Helper()
	enc := NewBlockPostingsEncoder(len(runs))
	bele := NewBlockBeliefsEncoder()
	starts := []int64{0}
	maxb := make([]float64, 0, len(runs))
	for i, run := range runs {
		docs := make([]OID, len(run[0]))
		for j, d := range run[0] {
			docs[j] = OID(d)
		}
		if err := enc.AddTerm(docs, run[1]); err != nil {
			t.Fatalf("AddTerm(%d): %v", i, err)
		}
		starts = append(starts, starts[len(starts)-1]+int64(len(docs)))
		maxb = append(maxb, bele.AddTerm(belRuns[i]))
	}
	mk := func(tail *Column) *BAT {
		b, err := FromColumns(NewVoid(0, tail.Len()), tail, true, false, true, false)
		if err != nil {
			t.Fatalf("FromColumns: %v", err)
		}
		return b
	}
	bats := [7]*BAT{
		mk(ColumnOfInts(starts)),
		mk(ColumnOfInts(enc.BlkStart)),
		mk(ColumnOfInts(enc.BlkDir)),
		mk(ColumnOfBytes(enc.Data)),
		mk(ColumnOfInts(bele.BelDir)),
		mk(ColumnOfBytes(bele.Data)),
		mk(ColumnOfFloats(maxb)),
	}
	bp, err := NewBlockPostings(bats[0], bats[1], bats[2], bats[3], bats[4], bats[5], bats[6])
	if err != nil {
		t.Fatalf("NewBlockPostings: %v", err)
	}
	return bp, bats
}

// decodeAll round-trips every term of a view back into flat runs.
func decodeAll(t *testing.T, bp *BlockPostings) (docs [][]OID, tfs [][]int64, bels [][]float64) {
	t.Helper()
	var docBuf [PostingsBlockSize]OID
	var tfBuf [PostingsBlockSize]int64
	var belBuf [PostingsBlockSize]float64
	var dictBuf []float64
	for tm := 0; tm < bp.NTerms(); tm++ {
		var d []OID
		var f []int64
		var b []float64
		blo, bhi := bp.TermBlocks(tm)
		lo, hi := bp.TermRange(tm)
		if bhi > blo {
			dict, off, err := bp.TermDict(tm, dictBuf)
			if err != nil {
				t.Fatalf("TermDict(%d): %v", tm, err)
			}
			for blk := blo; blk < bhi; blk++ {
				n, err := bp.DecodeDocBlock(tm, blk, docBuf[:], tfBuf[:])
				if err != nil {
					t.Fatalf("DecodeDocBlock(%d,%d): %v", tm, blk, err)
				}
				if err := bp.DecodeBelBlock(tm, blk, dict, off, belBuf[:]); err != nil {
					t.Fatalf("DecodeBelBlock(%d,%d): %v", tm, blk, err)
				}
				d = append(d, docBuf[:n]...)
				f = append(f, tfBuf[:n]...)
				b = append(b, belBuf[:n]...)
			}
		}
		if len(d) != hi-lo {
			t.Fatalf("term %d: decoded %d postings, want %d", tm, len(d), hi-lo)
		}
		docs = append(docs, d)
		tfs = append(tfs, f)
		bels = append(bels, b)
	}
	return docs, tfs, bels
}

func TestPostingsCodecRoundTrip(t *testing.T) {
	rnd := uint64(99)
	next := func(n int) int {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return int(rnd % uint64(n))
	}
	var runs [][2][]int64
	var bels [][]float64
	// shapes: empty term, singleton, exactly one block, block+1,
	// multi-block, adversarial huge gaps, dict-coded and raw beliefs
	lens := []int{0, 1, PostingsBlockSize, PostingsBlockSize + 1, 5, 1000, 2*PostingsBlockSize + 17}
	for i, n := range lens {
		docs := make([]int64, n)
		tfs := make([]int64, n)
		bl := make([]float64, n)
		d := int64(0)
		for j := 0; j < n; j++ {
			gap := int64(1 + next(100))
			if i == 5 && j%37 == 0 {
				gap = int64(1) << uint(40+next(10)) // adversarial deltas
			}
			d += gap
			docs[j] = d
			tfs[j] = int64(next(500))
			if i%2 == 0 {
				bl[j] = float64(1+next(7)) * 0.125 // few distinct: dict form
			} else {
				bl[j] = float64(j)*1e-3 + 0.5 // all distinct: raw fallback
			}
		}
		runs = append(runs, [2][]int64{docs, tfs})
		bels = append(bels, bl)
	}
	bp, _ := buildBlockColumns(t, runs, bels)
	gotDocs, gotTfs, gotBels := decodeAll(t, bp)
	for i := range runs {
		for j := range runs[i][0] {
			if int64(gotDocs[i][j]) != runs[i][0][j] {
				t.Fatalf("term %d posting %d: doc %d, want %d", i, j, gotDocs[i][j], runs[i][0][j])
			}
			if gotTfs[i][j] != runs[i][1][j] {
				t.Fatalf("term %d posting %d: tf %d, want %d", i, j, gotTfs[i][j], runs[i][1][j])
			}
			if math.Float64bits(gotBels[i][j]) != math.Float64bits(bels[i][j]) {
				t.Fatalf("term %d posting %d: belief %v not bit-exact (want %v)", i, j, gotBels[i][j], bels[i][j])
			}
		}
		// the per-block quantized bound must dominate every belief
		blo, bhi := bp.TermBlocks(i)
		lo, _ := bp.TermRange(i)
		for blk := blo; blk < bhi; blk++ {
			plo, phi := bp.BlockSpan(i, blk)
			ub := bp.BlockMax(blk)
			for j := plo; j < phi; j++ {
				if bels[i][j-lo] > ub {
					t.Fatalf("term %d block %d: belief above quantized bound", i, blk)
				}
			}
		}
	}
}

func TestQuantizeBoundUpIsConservative(t *testing.T) {
	vals := []float64{0, 1e-300, -1e-300, 0.1, 1.0 / 3.0, 1e30, -7.25, math.MaxFloat64, math.SmallestNonzeroFloat64}
	for _, v := range vals {
		q := float64(math.Float32frombits(QuantizeBoundUp(v)))
		if q < v {
			t.Fatalf("QuantizeBoundUp(%v) = %v < input", v, q)
		}
	}
}

// TestBlockPostingsRejectsMalformed pins the error-never-panic contract
// on hand-corrupted views.
func TestBlockPostingsRejectsMalformed(t *testing.T) {
	runs := [][2][]int64{{{3, 7, 200}, {1, 2, 3}}}
	bels := [][]float64{{0.5, 0.25, 0.5}}
	_, bats := buildBlockColumns(t, runs, bels)
	mk := func(tail *Column) *BAT {
		b, err := FromColumns(NewVoid(0, tail.Len()), tail, true, false, true, false)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct {
		name string
		mut  func(b [7]*BAT) [7]*BAT
	}{
		{"blkstart length", func(b [7]*BAT) [7]*BAT { b[1] = mk(ColumnOfInts([]int64{0})); return b }},
		{"blkstart end", func(b [7]*BAT) [7]*BAT { b[1] = mk(ColumnOfInts([]int64{0, 5})); return b }},
		{"odd blkdir", func(b [7]*BAT) [7]*BAT { b[2] = mk(ColumnOfInts([]int64{1, 2, 3})); return b }},
		{"docend past data", func(b [7]*BAT) [7]*BAT { b[2] = mk(ColumnOfInts([]int64{200, 1 << 40})); return b }},
		{"trailing doc bytes", func(b [7]*BAT) [7]*BAT { b[2] = mk(ColumnOfInts([]int64{200, 1})); return b }},
		{"belend past data", func(b [7]*BAT) [7]*BAT { b[4] = mk(ColumnOfInts([]int64{1 << 40, 0})); return b }},
		{"maxbel length", func(b [7]*BAT) [7]*BAT { b[6] = mk(ColumnOfFloats(nil)); return b }},
		{"wrong kind", func(b [7]*BAT) [7]*BAT { b[3] = mk(ColumnOfInts([]int64{1})); return b }},
	}
	for _, tc := range cases {
		bt := tc.mut(bats)
		if _, err := NewBlockPostings(bt[0], bt[1], bt[2], bt[3], bt[4], bt[5], bt[6]); err == nil {
			t.Errorf("%s: corrupt view accepted", tc.name)
		}
		// rebuild pristine copies for the next case
		_, bats = buildBlockColumns(t, runs, bels)
	}

	// payload corruption passes view validation but fails block decode
	_, bats = buildBlockColumns(t, runs, bels)
	data := append([]byte(nil), bats[3].Tail.Bytes()...)
	data[0] = 99 // unknown block format
	bad := mk(ColumnOfBytes(data))
	bp, err := NewBlockPostings(bats[0], bats[1], bats[2], bad, bats[4], bats[5], bats[6])
	if err != nil {
		t.Fatalf("validation should pass on payload corruption: %v", err)
	}
	var docs [PostingsBlockSize]OID
	if _, err := bp.DecodeDocBlock(0, 0, docs[:], nil); err == nil {
		t.Fatal("decode of unknown block format succeeded")
	}
}

// FuzzPostingsCodec drives encode→decode round-trip identity over
// arbitrary posting runs, and feeds mutated blobs through the decoder
// to pin the error-never-panic hardening.
func FuzzPostingsCodec(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, false)
	f.Add([]byte{}, true)
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 1}, true)
	f.Fuzz(func(t *testing.T, seed []byte, corrupt bool) {
		// derive a posting run from the seed bytes: gaps, tfs, beliefs
		var docs []OID
		var tfs []int64
		var bels []float64
		d := int64(0)
		for i := 0; i+1 < len(seed); i += 2 {
			gap := int64(seed[i])%200 + 1
			if seed[i] == 0xff {
				gap = int64(1) << (uint(seed[i+1]%50) + 5) // adversarial delta
			}
			d += gap
			docs = append(docs, OID(d))
			tfs = append(tfs, int64(seed[i+1]%64))
			bels = append(bels, float64(seed[i+1]%8)*0.25+0.125)
		}
		enc := NewBlockPostingsEncoder(1)
		if err := enc.AddTerm(docs, tfs); err != nil {
			t.Fatalf("AddTerm: %v", err)
		}
		bele := NewBlockBeliefsEncoder()
		maxb := bele.AddTerm(bels)
		starts := []int64{0, int64(len(docs))}
		mk := func(tail *Column) *BAT {
			b, err := FromColumns(NewVoid(0, tail.Len()), tail, true, false, true, false)
			if err != nil {
				t.Fatalf("FromColumns: %v", err)
			}
			return b
		}
		docData := enc.Data
		belData := bele.Data
		if corrupt && len(docData) > 0 {
			docData = append([]byte(nil), docData...)
			docData[int(seed[0])%len(docData)] ^= 1 << (seed[0] % 8)
			if len(belData) > 0 {
				belData = append([]byte(nil), belData...)
				belData[int(seed[0])%len(belData)] ^= 1 << (seed[0] % 7)
			}
		}
		bp, err := NewBlockPostings(
			mk(ColumnOfInts(starts)), mk(ColumnOfInts(enc.BlkStart)),
			mk(ColumnOfInts(enc.BlkDir)), mk(ColumnOfBytes(docData)),
			mk(ColumnOfInts(bele.BelDir)), mk(ColumnOfBytes(belData)),
			mk(ColumnOfFloats([]float64{maxb})))
		if err != nil {
			return // corrupt views may be rejected outright; must not panic
		}
		var docBuf [PostingsBlockSize]OID
		var tfBuf [PostingsBlockSize]int64
		var belBuf [PostingsBlockSize]float64
		dict, off, err := bp.TermDict(0, nil)
		pos := 0
		blo, bhi := bp.TermBlocks(0)
		for blk := blo; blk < bhi; blk++ {
			n, derr := bp.DecodeDocBlock(0, blk, docBuf[:], tfBuf[:])
			if derr != nil {
				if !corrupt {
					t.Fatalf("clean round-trip failed: %v", derr)
				}
				return
			}
			var berr error
			if err == nil {
				berr = bp.DecodeBelBlock(0, blk, dict, off, belBuf[:])
			}
			if (err != nil || berr != nil) && !corrupt {
				t.Fatalf("clean belief decode failed: %v / %v", err, berr)
			}
			if corrupt {
				continue // decoded garbage is fine; we only forbid panics
			}
			for i := 0; i < n; i++ {
				if docBuf[i] != docs[pos] || tfBuf[i] != tfs[pos] {
					t.Fatalf("posting %d: got (%d,%d) want (%d,%d)", pos, docBuf[i], tfBuf[i], docs[pos], tfs[pos])
				}
				if math.Float64bits(belBuf[i]) != math.Float64bits(bels[pos]) {
					t.Fatalf("posting %d: belief not bit-exact", pos)
				}
				pos++
			}
		}
		if !corrupt && pos != len(docs) {
			t.Fatalf("decoded %d postings, want %d", pos, len(docs))
		}
	})
}

// TestVarintHelpers pins uvarintLen against the encoder it sizes.
func TestVarintHelpers(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 1 << 14, 1<<63 - 1, ^uint64(0)} {
		var buf [binary.MaxVarintLen64]byte
		if got, want := uvarintLen(v), binary.PutUvarint(buf[:], v); got != want {
			t.Fatalf("uvarintLen(%d) = %d, want %d", v, got, want)
		}
	}
}
