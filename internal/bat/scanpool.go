package bat

import "sync"

// Pooled per-scan scratch for the max-score loops: borrow/return
// discipline for the slices both scan flavours (raw and block) need per
// partition — the qterm states, the bound-descending permutation, the
// suffix bound table, and the per-candidate belief/stamp arrays.
//
// Every PrunedTopKSegs call runs one max-score scan per (segment ×
// partition); without pooling each scan allocates ~6 small slices, which
// at server query rates is the dominant remaining allocation on the hot
// path (the decode buffers are already pooled via blockCursorSet). The
// same two enforcement layers apply:
//
//   - internal/lint/poolcheck statically checks every borrow is
//     released on every control-flow path;
//   - the pooldebug build tag (scanpool_debug.go) tracks live borrows,
//     poisons released scratch, and counts leaks for the pool-leak
//     tests.
//
// Raw scanScratchPool access outside this file is a poolcheck
// diagnostic.
//
//poolcheck:poolfile

// scanScratch is one max-score scan's worth of working slices, pooled
// as a unit so the borrow/return pairing stays statically checkable.
// All slices are sized to the query length m by borrowScanScratch.
type scanScratch struct {
	terms  []qterm   // per-term scan state
	perm   []int     // term indices, bound-descending
	suffix []float64 // suffixUB: m+1 entries
	fbel   []float64 // per-candidate folded beliefs (stamped)
	stamp  []int     // per-candidate stamps (zeroed on borrow)
	docs   []OID     // block scan: cached current doc per term
	// Block-max directory cache (block scan only): the posting span,
	// index, last doc and bound of the block under each term's cursor,
	// refreshed only when the cursor leaves the span — the skip loop
	// re-reads these per block combination, and without the cache every
	// read is a blockOf division plus three directory lookups. Validity
	// is positional (cur ∈ [blkLo, blkHi)); the scan must reset the
	// spans to empty before use, pooled garbage could alias.
	blkLo, blkHi []int
	blkIdx       []int
	blkLast      []OID
	blkUB        []float64
}

// scanScratchPool recycles scan scratch between partitions.
var scanScratchPool = sync.Pool{New: func() any { return &scanScratch{} }}

// borrowScanScratch returns scratch sized for an m-term query. The
// caller owns it: return it with releaseScanScratch exactly once when
// the scan is done. stamp arrives zeroed (the stamping protocol needs a
// known starting value); the other slices hold garbage and must be
// fully written before reading.
func borrowScanScratch(m int) *scanScratch {
	sc := scanScratchPool.Get().(*scanScratch)
	// suffix needs m+1 entries, so a fresh entry must allocate even for a
	// zero-term scan (a seeded floor reaches shards where no query term
	// exists; the scan degenerates to an empty walk but still borrows).
	if cap(sc.terms) < m || cap(sc.suffix) < m+1 {
		sc.terms = make([]qterm, m)
		sc.perm = make([]int, m)
		sc.suffix = make([]float64, m+1)
		sc.fbel = make([]float64, m)
		sc.stamp = make([]int, m)
		sc.docs = make([]OID, m)
		sc.blkLo = make([]int, m)
		sc.blkHi = make([]int, m)
		sc.blkIdx = make([]int, m)
		sc.blkLast = make([]OID, m)
		sc.blkUB = make([]float64, m)
	}
	sc.terms = sc.terms[:m]
	sc.perm = sc.perm[:m]
	sc.suffix = sc.suffix[:m+1]
	sc.fbel = sc.fbel[:m]
	sc.stamp = sc.stamp[:m]
	sc.docs = sc.docs[:m]
	sc.blkLo = sc.blkLo[:m]
	sc.blkHi = sc.blkHi[:m]
	sc.blkIdx = sc.blkIdx[:m]
	sc.blkLast = sc.blkLast[:m]
	sc.blkUB = sc.blkUB[:m]
	for i := range sc.stamp {
		sc.stamp[i] = 0
	}
	scanScratchBorrowed(sc)
	return sc
}

// releaseScanScratch returns sc to the pool. The caller must not retain
// sc or any of its slices afterwards: under the pooldebug tag released
// scratch is poisoned. nil is tolerated (error paths release
// unconditionally).
func releaseScanScratch(sc *scanScratch) {
	if sc == nil {
		return
	}
	scanScratchReleased(sc)
	scanScratchPool.Put(sc)
}
