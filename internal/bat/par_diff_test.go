package bat

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// Differential property tests for the parallel execution kernel: every
// parallel operator is run against the serial reference on randomized BATs
// across all Kind combinations (dense and materialised heads) and must
// produce BUN-for-BUN identical results. Order-preserving operators and
// integer aggregates compare exactly (bit-for-bit for floats); float
// aggregations (sum/avg/prod) tolerate reassociation in the last ulps.
//
// The whole file runs under -race in CI, which also exercises the shared
// worker pool for data races.

// withExec runs f under a forced parallelism/threshold configuration and
// restores the previous knobs.
func withExec(par, threshold int, f func()) {
	oldP := SetParallelism(par)
	oldT := SetParallelThreshold(threshold)
	defer func() {
		SetParallelism(oldP)
		SetParallelThreshold(oldT)
	}()
	f()
}

// diffOp runs op once serially and once on the 4-way parallel kernel with
// threshold 1, returning both results.
func diffOp(op func() (*BAT, error)) (ser, par *BAT, serErr, parErr error) {
	withExec(1, 0, func() { ser, serErr = op() })
	withExec(4, 1, func() { par, parErr = op() })
	return
}

// checkDiff asserts serial and parallel agree (results or errors). floatTol
// permits last-ulp float differences on float tails (aggregations only).
func checkDiff(t *testing.T, name string, op func() (*BAT, error), floatTol bool) {
	t.Helper()
	ser, par, serErr, parErr := diffOp(op)
	if (serErr == nil) != (parErr == nil) {
		t.Fatalf("%s: serial err=%v parallel err=%v", name, serErr, parErr)
	}
	if serErr != nil {
		if serErr.Error() != parErr.Error() {
			t.Fatalf("%s: error mismatch: serial %q parallel %q", name, serErr, parErr)
		}
		return
	}
	assertSameBAT(t, name, ser, par, floatTol)
}

func assertSameBAT(t *testing.T, name string, ser, par *BAT, floatTol bool) {
	t.Helper()
	if ser.Len() != par.Len() {
		t.Fatalf("%s: length %d vs %d\nserial:   %v\nparallel: %v", name, ser.Len(), par.Len(), ser, par)
	}
	if mk := materialKind(ser.Head.Kind()); mk != materialKind(par.Head.Kind()) {
		t.Fatalf("%s: head kind %s vs %s", name, ser.Head.Kind(), par.Head.Kind())
	}
	if mk := materialKind(ser.Tail.Kind()); mk != materialKind(par.Tail.Kind()) {
		t.Fatalf("%s: tail kind %s vs %s", name, ser.Tail.Kind(), par.Tail.Kind())
	}
	for i := 0; i < ser.Len(); i++ {
		if !sameValue(ser.Head.Get(i), par.Head.Get(i), false) {
			t.Fatalf("%s: head BUN %d: %v vs %v", name, i, ser.Head.Get(i), par.Head.Get(i))
		}
		if !sameValue(ser.Tail.Get(i), par.Tail.Get(i), floatTol) {
			t.Fatalf("%s: tail BUN %d: %v vs %v", name, i, ser.Tail.Get(i), par.Tail.Get(i))
		}
	}
}

// sameValue compares boxed atoms; floats compare bitwise unless tol, in
// which case a tiny relative tolerance absorbs parallel sum reassociation.
func sameValue(a, b any, tol bool) bool {
	af, aok := a.(float64)
	bf, bok := b.(float64)
	if tol {
		// aggregate results may be cast to int64; compare numerically
		if ai, ok := a.(int64); ok {
			af, aok = float64(ai), true
		}
		if bi, ok := b.(int64); ok {
			bf, bok = float64(bi), true
		}
	}
	if aok && bok {
		if !tol {
			return math.Float64bits(af) == math.Float64bits(bf)
		}
		if math.IsNaN(af) && math.IsNaN(bf) {
			return true
		}
		d := math.Abs(af - bf)
		return d <= 1e-9*math.Max(1, math.Max(math.Abs(af), math.Abs(bf)))
	}
	return a == b
}

// diffValue generates a random atom of kind k from a small domain (to force
// duplicates). Floats occasionally emit NaN to pin down NaN group/hash
// semantics.
func diffValue(r *rand.Rand, k Kind, i int) any {
	switch k {
	case KindVoid:
		return OID(i)
	case KindOID:
		return OID(r.Intn(40))
	case KindInt:
		return int64(r.Intn(60) - 30)
	case KindFloat:
		if r.Intn(50) == 0 {
			return math.NaN()
		}
		return float64(r.Intn(64)) / 4
	case KindStr:
		return fmt.Sprintf("s%d", r.Intn(30))
	case KindBool:
		return r.Intn(2) == 0
	}
	panic("bad kind")
}

// diffBAT builds a random BAT with the given head/tail kinds.
func diffBAT(r *rand.Rand, hk, tk Kind, n int) *BAT {
	b := New(hk, tk)
	for i := 0; i < n; i++ {
		b.MustAppend(diffValue(r, hk, i), diffValue(r, tk, i))
	}
	return b
}

var diffKinds = []Kind{KindVoid, KindOID, KindInt, KindFloat, KindStr, KindBool}

func TestParDiffSelectFamily(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, hk := range diffKinds {
		for _, tk := range diffKinds {
			for _, n := range []int{0, 1, 17, 501, 2048} {
				b := diffBAT(r, hk, tk, n)
				v := diffValue(r, tk, n/2)
				lo, hi := diffValue(r, tk, 1), diffValue(r, tk, n/3+1)
				tag := fmt.Sprintf("[%s,%s]#%d", hk, tk, n)
				checkDiff(t, "select "+tag, func() (*BAT, error) { return Select(b, v) }, false)
				checkDiff(t, "select_not "+tag, func() (*BAT, error) { return SelectNot(b, v) }, false)
				checkDiff(t, "select_range "+tag, func() (*BAT, error) { return SelectRange(b, lo, hi) }, false)
				checkDiff(t, "uselect "+tag, func() (*BAT, error) { return USelect(b, v) }, false)
				checkDiff(t, "uselect_range "+tag, func() (*BAT, error) { return USelectRange(b, lo, hi) }, false)
				if tk == KindStr {
					checkDiff(t, "like_select "+tag, func() (*BAT, error) { return LikeSelect(b, "s1") }, false)
				}
			}
		}
	}
}

func TestParDiffJoin(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, tk := range diffKinds {
		for _, rtk := range []Kind{KindOID, KindInt, KindFloat, KindStr} {
			for _, n := range []int{0, 33, 700, 2400} {
				l := diffBAT(r, KindOID, tk, n)
				rr := diffBAT(r, materialKind(tk), rtk, n/2+5)
				tag := fmt.Sprintf("[oid,%s]⋈[%s,%s]#%d", tk, materialKind(tk), rtk, n)
				checkDiff(t, "join "+tag, func() (*BAT, error) { return Join(l, rr) }, false)

				// dense-head r: the positional fast path
				rd := NewDense(3, rtk)
				for i := 0; i < n/2+5; i++ {
					rd.MustAppend(OID(3+i), diffValue(r, rtk, i))
				}
				if tk == KindOID || tk == KindVoid {
					checkDiff(t, "join-dense "+tag, func() (*BAT, error) { return Join(l, rd) }, false)
					ld := diffBAT(r, KindVoid, tk, n)
					checkDiff(t, "join-dense-void "+tag, func() (*BAT, error) { return Join(ld, rd) }, false)
				}
			}
		}
	}
	// type mismatch must yield the identical error on both paths
	l := diffBAT(r, KindOID, KindStr, 3000)
	rr := diffBAT(r, KindInt, KindFloat, 100)
	checkDiff(t, "join-mismatch", func() (*BAT, error) { return Join(l, rr) }, false)
}

func TestParDiffSemiJoinDiff(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, hk := range diffKinds {
		for _, n := range []int{0, 50, 900, 2100} {
			l := diffBAT(r, hk, KindInt, n)
			rhs := diffBAT(r, materialKind(hk), KindFloat, n/3+2)
			tag := fmt.Sprintf("[%s]#%d", hk, n)
			checkDiff(t, "semijoin "+tag, func() (*BAT, error) { return SemiJoin(l, rhs) }, false)
			checkDiff(t, "kdiff "+tag, func() (*BAT, error) { return Diff(l, rhs) }, false)
			checkDiff(t, "kintersect "+tag, func() (*BAT, error) { return Intersect(l, rhs) }, false)

			// dense rhs: arithmetic membership
			rd := NewDense(5, KindFloat)
			for i := 0; i < n/4+1; i++ {
				rd.MustAppend(OID(5+i), float64(i))
			}
			if hk == KindOID || hk == KindVoid {
				checkDiff(t, "semijoin-dense "+tag, func() (*BAT, error) { return SemiJoin(l, rd) }, false)
				checkDiff(t, "kdiff-dense "+tag, func() (*BAT, error) { return Diff(l, rd) }, false)
			}
		}
	}
}

func TestParDiffGroup(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, tk := range diffKinds {
		for _, n := range []int{0, 1, 64, 999, 2500} {
			b := diffBAT(r, KindVoid, tk, n)
			tag := fmt.Sprintf("[void,%s]#%d", tk, n)
			checkDiff(t, "group "+tag, func() (*BAT, error) { return Group(b) }, false)
			bm := diffBAT(r, KindOID, tk, n)
			checkDiff(t, "group-mat "+tag, func() (*BAT, error) { return Group(bm) }, false)
		}
	}
}

func TestParDiffPumpAggregate(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	aggs := []AggKind{AggSum, AggCount, AggMin, AggMax, AggAvg, AggProd}
	for _, tk := range []Kind{KindInt, KindFloat, KindOID, KindBool, KindVoid} {
		for _, n := range []int{0, 40, 800, 2600} {
			vals := diffBAT(r, KindVoid, tk, n)
			grp, err := groupSerial(diffBAT(r, KindVoid, KindOID, n))
			if err != nil {
				t.Fatal(err)
			}
			for _, agg := range aggs {
				// float sums reassociate across partitions; products round
				// once past 2^53 for any numeric input
				tol := agg == AggProd ||
					(tk == KindFloat && (agg == AggSum || agg == AggAvg))
				tag := fmt.Sprintf("%s[%s]#%d", agg, tk, n)
				checkDiff(t, "pump "+tag, func() (*BAT, error) { return PumpAggregate(agg, vals, grp) }, tol)
			}
		}
	}
	// non-numeric tails: count works, everything else errors identically
	strs := diffBAT(r, KindVoid, KindStr, 3000)
	grp, _ := groupSerial(diffBAT(r, KindVoid, KindOID, 3000))
	checkDiff(t, "pump count str", func() (*BAT, error) { return PumpAggregate(AggCount, strs, grp) }, false)
	checkDiff(t, "pump sum str", func() (*BAT, error) { return PumpAggregate(AggSum, strs, grp) }, false)
}

func TestParDiffHistogramUnique(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, tk := range []Kind{KindInt, KindStr, KindOID, KindBool} {
		for _, n := range []int{0, 77, 1500} {
			b := diffBAT(r, KindVoid, tk, n)
			tag := fmt.Sprintf("[%s]#%d", tk, n)
			checkDiff(t, "histogram "+tag, func() (*BAT, error) { return Histogram(b) }, false)
			bm := diffBAT(r, KindOID, tk, n)
			checkDiff(t, "unique "+tag, func() (*BAT, error) { return Unique(bm) }, false)
		}
	}
}

func TestParDiffCalc(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	binOps := []string{"+", "-", "*", "/", "min", "max", "pow", "==", "!=", "<", "<=", ">", ">="}
	for _, tk := range []Kind{KindInt, KindFloat, KindOID, KindBool} {
		for _, n := range []int{0, 100, 2048} {
			a := diffBAT(r, KindVoid, tk, n)
			b := diffBAT(r, KindVoid, tk, n)
			for _, op := range binOps {
				tag := fmt.Sprintf("[%s](%s)#%d", op, tk, n)
				checkDiff(t, "multiplex "+tag, func() (*BAT, error) { return Multiplex(op, a, b) }, false)
				checkDiff(t, "multiplex_const "+tag, func() (*BAT, error) { return MultiplexConst(op, a, 3.5, true) }, false)
				checkDiff(t, "multiplex_constl "+tag, func() (*BAT, error) { return MultiplexConst(op, a, 2.0, false) }, false)
			}
			for _, fn := range []string{"log", "exp", "sqrt", "abs", "neg"} {
				checkDiff(t, "multiplex_unary "+fn, func() (*BAT, error) { return MultiplexUnary(fn, a) }, false)
			}
		}
	}
	// strings
	for _, n := range []int{0, 150, 2048} {
		a := diffBAT(r, KindVoid, KindStr, n)
		b := diffBAT(r, KindVoid, KindStr, n)
		for _, op := range []string{"+", "==", "<", ">="} {
			checkDiff(t, "multiplex-str "+op, func() (*BAT, error) { return Multiplex(op, a, b) }, false)
			checkDiff(t, "multiplex-str-const "+op, func() (*BAT, error) { return MultiplexConst(op, a, "s7", true) }, false)
		}
	}
	// bools
	a := diffBAT(r, KindVoid, KindBool, 2048)
	b := diffBAT(r, KindVoid, KindBool, 2048)
	for _, op := range []string{"and", "or", "==", "!="} {
		checkDiff(t, "multiplex-bit "+op, func() (*BAT, error) { return Multiplex(op, a, b) }, false)
	}
	checkDiff(t, "multiplex-not", func() (*BAT, error) { return MultiplexUnary("not", a) }, false)
}

// synthContrep builds an aligned (term, doc, belief) flattened CONTREP.
func synthContrep(r *rand.Rand, pairs, terms, docs int) (rev, doc, bel *BAT, query []OID) {
	term := NewDense(0, KindOID)
	doc = NewDense(0, KindOID)
	bel = NewDense(0, KindFloat)
	for i := 0; i < pairs; i++ {
		term.MustAppend(OID(i), OID(r.Intn(terms)))
		doc.MustAppend(OID(i), OID(r.Intn(docs)))
		bel.MustAppend(OID(i), 0.05+float64(r.Intn(90))/100)
	}
	rev = term.Reverse()
	for q := 0; q < 4; q++ {
		query = append(query, OID(r.Intn(terms)))
	}
	return rev, doc, bel, query
}

func TestParDiffGetBLSumBeliefsFill(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, pairs := range []int{0, 120, 2500, 6000} {
		rev, doc, bel, query := synthContrep(r, pairs, 50, pairs/4+7)

		var serB, serC, parB, parC *BAT
		var serErr, parErr error
		withExec(1, 0, func() { serB, serC, serErr = GetBL(rev, doc, bel, query) })
		withExec(4, 1, func() { parB, parC, parErr = GetBL(rev, doc, bel, query) })
		if serErr != nil || parErr != nil {
			t.Fatalf("getbl: %v / %v", serErr, parErr)
		}
		assertSameBAT(t, "getbl beliefs", serB, parB, false)
		assertSameBAT(t, "getbl counts", serC, parC, false)

		checkDiff(t, "sumbeliefs", func() (*BAT, error) {
			b, c, err := GetBL(rev, doc, bel, query)
			if err != nil {
				return nil, err
			}
			return SumBeliefs(b, c, len(query), 0.4)
		}, true)

		// Fill: scores over a dense domain (the fast float path)
		domain := &BAT{Head: NewVoid(0, pairs/4+7), Tail: NewVoid(0, pairs/4+7)}
		domain.HSorted, domain.HKey = true, true
		checkDiff(t, "fill", func() (*BAT, error) {
			b, c, err := GetBL(rev, doc, bel, query)
			if err != nil {
				return nil, err
			}
			s, err := SumBeliefs(b, c, len(query), 0.4)
			if err != nil {
				return nil, err
			}
			return Fill(s, domain, 1.6)
		}, true)
	}
}

func TestPartitionMergeRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for _, hk := range diffKinds {
		for _, tk := range diffKinds {
			for _, n := range []int{0, 1, 5, 473, 2048} {
				b := diffBAT(r, hk, tk, n)
				for _, k := range []int{1, 3, 8, 64} {
					parts := Partition(b, k)
					total := 0
					for _, p := range parts {
						total += p.Len()
					}
					if total != b.Len() {
						t.Fatalf("partition [%s,%s]#%d k=%d: covers %d BUNs", hk, tk, n, k, total)
					}
					if n == 0 {
						continue
					}
					m, err := Merge(parts)
					if err != nil {
						t.Fatalf("merge [%s,%s]#%d k=%d: %v", hk, tk, n, k, err)
					}
					assertSameBAT(t, fmt.Sprintf("roundtrip [%s,%s]#%d k=%d", hk, tk, n, k), b, m, false)
					if b.HDense() && !m.HDense() {
						t.Fatalf("roundtrip [%s,%s]#%d k=%d: dense head lost", hk, tk, n, k)
					}
				}
			}
		}
	}
}

// TestParPoolConcurrentOperators drives many parallel operators from many
// goroutines at once: the shared pool must neither deadlock nor race (the
// latter is checked by -race in CI).
func TestParPoolConcurrentOperators(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	l := diffBAT(r, KindVoid, KindOID, 4000)
	rr := diffBAT(r, KindOID, KindFloat, 1500)
	want, err := Join(l, rr)
	if err != nil {
		t.Fatal(err)
	}
	withExec(4, 1, func() {
		var wg sync.WaitGroup
		errs := make([]error, 16)
		for g := 0; g < 16; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				for it := 0; it < 5; it++ {
					got, err := Join(l, rr)
					if err != nil {
						errs[g] = err
						return
					}
					if got.Len() != want.Len() {
						errs[g] = fmt.Errorf("len %d want %d", got.Len(), want.Len())
						return
					}
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	})
}
