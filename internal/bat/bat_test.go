package bat

import (
	"math"
	"testing"
	"testing/quick"
)

func mkDenseFloat(vals ...float64) *BAT {
	b := NewDense(0, KindFloat)
	for i, v := range vals {
		b.MustAppend(OID(i), v)
	}
	return b
}

func mkDenseStr(vals ...string) *BAT {
	b := NewDense(0, KindStr)
	for i, v := range vals {
		b.MustAppend(OID(i), v)
	}
	return b
}

func mkDenseInt(vals ...int64) *BAT {
	b := NewDense(0, KindInt)
	for i, v := range vals {
		b.MustAppend(OID(i), v)
	}
	return b
}

func TestAppendAndLen(t *testing.T) {
	b := New(KindOID, KindStr)
	if b.Len() != 0 {
		t.Fatalf("new BAT len = %d, want 0", b.Len())
	}
	b.MustAppend(OID(7), "x")
	b.MustAppend(OID(3), "y")
	if b.Len() != 2 {
		t.Fatalf("len = %d, want 2", b.Len())
	}
	h, tl, err := b.Fetch(1)
	if err != nil {
		t.Fatal(err)
	}
	if h.(OID) != 3 || tl.(string) != "y" {
		t.Fatalf("fetch(1) = (%v,%v)", h, tl)
	}
}

func TestAppendTypeMismatch(t *testing.T) {
	b := New(KindOID, KindStr)
	if err := b.Append(OID(1), 42); err == nil {
		t.Fatal("appending int to str tail should fail")
	}
	if err := b.Append("nope", "x"); err == nil {
		t.Fatal("appending str to oid head should fail")
	}
}

func TestVoidDensity(t *testing.T) {
	b := NewDense(10, KindInt)
	b.MustAppend(OID(10), int64(1))
	b.MustAppend(OID(11), int64(2))
	if err := b.Append(OID(13), int64(3)); err == nil {
		t.Fatal("gap in void head should be rejected")
	}
	if got := b.Head.OIDAt(1); got != 11 {
		t.Fatalf("void head at 1 = %d, want 11", got)
	}
}

func TestReverseMirrorMark(t *testing.T) {
	b := mkDenseStr("a", "b", "c")
	r := b.Reverse()
	if r.Head.Kind() != KindStr || r.Tail.Kind() != KindVoid {
		t.Fatalf("reverse kinds = %s,%s", r.Head.Kind(), r.Tail.Kind())
	}
	if v, ok := r.Find("b"); !ok || v.(OID) != 1 {
		t.Fatalf("reverse find(b) = %v,%v", v, ok)
	}
	m := b.Mirror()
	if m.Tail.OIDAt(2) != 2 {
		t.Fatal("mirror tail should equal head")
	}
	k := b.Reverse().Mark(100)
	if k.Tail.OIDAt(0) != 100 || k.Tail.OIDAt(2) != 102 {
		t.Fatal("mark should produce dense oids from base")
	}
}

func TestFindDense(t *testing.T) {
	b := mkDenseFloat(0.5, 0.25, 0.125)
	v, ok := b.Find(OID(2))
	if !ok || v.(float64) != 0.125 {
		t.Fatalf("find(2) = %v,%v", v, ok)
	}
	if _, ok := b.Find(OID(3)); ok {
		t.Fatal("find past end should miss")
	}
}

func TestSelectEqualAndRange(t *testing.T) {
	b := mkDenseInt(5, 3, 5, 9, 1)
	s, err := Select(b, int64(5))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Head.OIDAt(0) != 0 || s.Head.OIDAt(1) != 2 {
		t.Fatalf("select(5) = %v", s)
	}
	r, err := SelectRange(b, int64(3), int64(5))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("range [3,5] len = %d, want 3", r.Len())
	}
	open, err := SelectRange(b, nil, int64(4))
	if err != nil {
		t.Fatal(err)
	}
	if open.Len() != 2 {
		t.Fatalf("range (-inf,4] len = %d, want 2", open.Len())
	}
}

func TestSelectString(t *testing.T) {
	b := mkDenseStr("apple", "pear", "apple")
	s, err := Select(b, "apple")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("select apple len = %d", s.Len())
	}
	l, err := LikeSelect(b, "PP")
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 {
		t.Fatalf("like PP len = %d", l.Len())
	}
}

func TestJoinDenseFastPath(t *testing.T) {
	// l: [void, oid] pointing into r's dense head
	l := New(KindOID, KindOID)
	l.MustAppend(OID(100), OID(2))
	l.MustAppend(OID(101), OID(0))
	l.MustAppend(OID(102), OID(9)) // dangling
	r := mkDenseStr("zero", "one", "two")
	j, err := Join(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Fatalf("join len = %d, want 2", j.Len())
	}
	if j.Tail.StrAt(0) != "two" || j.Tail.StrAt(1) != "zero" {
		t.Fatalf("join tails = %v", j)
	}
	if j.Head.OIDAt(0) != 100 || j.Head.OIDAt(1) != 101 {
		t.Fatalf("join heads = %v", j)
	}
}

func TestJoinHash(t *testing.T) {
	l := New(KindOID, KindStr)
	l.MustAppend(OID(1), "x")
	l.MustAppend(OID(2), "y")
	l.MustAppend(OID(3), "x")
	r := New(KindStr, KindInt)
	r.MustAppend("x", int64(10))
	r.MustAppend("y", int64(20))
	r.MustAppend("x", int64(30))
	j, err := Join(l, r)
	if err != nil {
		t.Fatal(err)
	}
	// "x" matches twice for heads 1 and 3, "y" once: total 5
	if j.Len() != 5 {
		t.Fatalf("join len = %d, want 5", j.Len())
	}
}

func TestJoinTypeMismatch(t *testing.T) {
	l := New(KindOID, KindStr)
	l.MustAppend(OID(1), "x")
	r := New(KindInt, KindStr)
	r.MustAppend(int64(1), "y")
	if _, err := Join(l, r); err == nil {
		t.Fatal("str-tail to int-head join should fail")
	}
}

func TestSemiJoinDiffUnion(t *testing.T) {
	l := New(KindOID, KindStr)
	l.MustAppend(OID(1), "a")
	l.MustAppend(OID(2), "b")
	l.MustAppend(OID(3), "c")
	r := New(KindOID, KindInt)
	r.MustAppend(OID(2), int64(0))
	r.MustAppend(OID(3), int64(0))

	s, err := SemiJoin(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Tail.StrAt(0) != "b" {
		t.Fatalf("semijoin = %v", s)
	}
	d, err := Diff(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.Tail.StrAt(0) != "a" {
		t.Fatalf("diff = %v", d)
	}
	extra := New(KindOID, KindStr)
	extra.MustAppend(OID(3), "dup")
	extra.MustAppend(OID(9), "new")
	u, err := Union(l, extra)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 4 {
		t.Fatalf("union len = %d, want 4", u.Len())
	}
}

func TestGroupAndPump(t *testing.T) {
	// docs 0..4 with category tails
	cat := mkDenseStr("red", "blue", "red", "red", "blue")
	g, err := Group(cat)
	if err != nil {
		t.Fatal(err)
	}
	if g.Tail.OIDAt(0) != 0 || g.Tail.OIDAt(1) != 1 || g.Tail.OIDAt(2) != 0 {
		t.Fatalf("group ids = %v", g)
	}
	vals := mkDenseFloat(1, 2, 3, 4, 5)
	sums, err := PumpAggregate(AggSum, vals, g)
	if err != nil {
		t.Fatal(err)
	}
	if sums.Len() != 2 {
		t.Fatalf("pump groups = %d, want 2", sums.Len())
	}
	if got := sums.Tail.FloatAt(0); got != 8 { // 1+3+4
		t.Fatalf("sum(red) = %v, want 8", got)
	}
	if got := sums.Tail.FloatAt(1); got != 7 { // 2+5
		t.Fatalf("sum(blue) = %v, want 7", got)
	}
	counts, err := PumpAggregate(AggCount, vals, g)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Tail.IntAt(0) != 3 || counts.Tail.IntAt(1) != 2 {
		t.Fatalf("counts = %v", counts)
	}
	avgs, err := PumpAggregate(AggAvg, vals, g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avgs.Tail.FloatAt(1)-3.5) > 1e-12 {
		t.Fatalf("avg(blue) = %v, want 3.5", avgs.Tail.FloatAt(1))
	}
}

func TestGroupRefine(t *testing.T) {
	a := mkDenseStr("x", "x", "y", "y")
	b := mkDenseInt(1, 2, 1, 1)
	g, err := Group(a)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GroupRefine(g, b)
	if err != nil {
		t.Fatal(err)
	}
	// (x,1) (x,2) (y,1) (y,1) → 3 groups; rows 2 and 3 share one
	if g2.Tail.OIDAt(2) != g2.Tail.OIDAt(3) {
		t.Fatal("rows 2,3 should share a refined group")
	}
	if g2.Tail.OIDAt(0) == g2.Tail.OIDAt(1) {
		t.Fatal("rows 0,1 must not share a refined group")
	}
}

func TestScalarAggregates(t *testing.T) {
	b := mkDenseFloat(2, 8, 4)
	sum, err := ScalarAggregate(AggSum, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.(float64) != 14 {
		t.Fatalf("sum = %v", sum)
	}
	mx, _ := ScalarAggregate(AggMax, b)
	if mx.(float64) != 8 {
		t.Fatalf("max = %v", mx)
	}
	cnt, _ := ScalarAggregate(AggCount, b)
	if cnt.(int64) != 3 {
		t.Fatalf("count = %v", cnt)
	}
	if _, err := ScalarAggregate(AggMin, New(KindOID, KindFloat)); err == nil {
		t.Fatal("min of empty should error")
	}
}

func TestMultiplex(t *testing.T) {
	a := mkDenseFloat(1, 2, 3)
	b := mkDenseFloat(10, 20, 30)
	s, err := Multiplex("+", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tail.FloatAt(2) != 33 {
		t.Fatalf("[+] = %v", s)
	}
	p, err := MultiplexConst("*", a, 2.0, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tail.FloatAt(1) != 4 {
		t.Fatalf("[*]2 = %v", p)
	}
	c, err := Multiplex("<", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Tail.Kind() != KindBool || !c.Tail.BoolAt(0) {
		t.Fatalf("[<] = %v", c)
	}
	lg, err := MultiplexUnary("log", a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lg.Tail.FloatAt(1)-math.Log(2)) > 1e-12 {
		t.Fatalf("[log] = %v", lg)
	}
	if _, err := Multiplex("+", a, mkDenseFloat(1)); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestMultiplexString(t *testing.T) {
	a := mkDenseStr("foo", "bar")
	b := mkDenseStr("X", "Y")
	s, err := Multiplex("+", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tail.StrAt(0) != "fooX" {
		t.Fatalf("str concat = %v", s)
	}
	e, err := MultiplexConst("==", a, "bar", true)
	if err != nil {
		t.Fatal(err)
	}
	if e.Tail.BoolAt(0) || !e.Tail.BoolAt(1) {
		t.Fatalf("str eq = %v", e)
	}
}

func TestSortAndTopN(t *testing.T) {
	b := mkDenseFloat(0.3, 0.9, 0.1, 0.9)
	s, err := TSort(b)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tail.FloatAt(0) != 0.1 || !s.TSorted {
		t.Fatalf("tsort = %v", s)
	}
	top, err := TopN(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if top.Len() != 2 || top.Tail.FloatAt(0) != 0.9 || top.Tail.FloatAt(1) != 0.9 {
		t.Fatalf("topN = %v", top)
	}
	// stability: the two 0.9s keep head order 1 then 3
	if top.Head.OIDAt(0) != 1 || top.Head.OIDAt(1) != 3 {
		t.Fatalf("topN stability: %v", top)
	}
	if _, err := TopN(b, 100); err != nil {
		t.Fatalf("topN larger than BAT should clamp: %v", err)
	}
}

func TestHistogramUnique(t *testing.T) {
	b := mkDenseStr("a", "b", "a", "a")
	h, err := Histogram(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 {
		t.Fatalf("histogram classes = %d", h.Len())
	}
	if v, ok := h.Find("a"); !ok || v.(int64) != 3 {
		t.Fatalf("hist[a] = %v,%v", v, ok)
	}
	dup := New(KindOID, KindStr)
	dup.MustAppend(OID(1), "x")
	dup.MustAppend(OID(1), "y")
	dup.MustAppend(OID(2), "z")
	u, err := Unique(dup)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 2 || u.Tail.StrAt(0) != "x" {
		t.Fatalf("unique = %v", u)
	}
}

func TestSliceFetchErrors(t *testing.T) {
	b := mkDenseInt(1, 2, 3)
	if _, err := b.Slice(2, 1); err == nil {
		t.Fatal("bad slice should error")
	}
	if _, _, err := b.Fetch(5); err == nil {
		t.Fatal("bad fetch should error")
	}
	s, err := b.Slice(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Head.OIDAt(0) != 1 {
		t.Fatalf("slice = %v", s)
	}
}

func TestGetBLAndSumBeliefs(t *testing.T) {
	// contrep: pairs (doc, term, belief)
	term := NewDense(0, KindOID)
	doc := NewDense(0, KindOID)
	bel := NewDense(0, KindFloat)
	add := func(d, tm OID, b float64) {
		i := OID(term.Len())
		term.MustAppend(i, tm)
		doc.MustAppend(i, d)
		bel.MustAppend(i, b)
	}
	add(0, 10, 0.9)
	add(0, 11, 0.8)
	add(1, 10, 0.7)
	add(2, 12, 0.6)

	rev := term.Reverse()
	beliefs, counts, err := GetBL(rev, doc, bel, []OID{10, 11})
	if err != nil {
		t.Fatal(err)
	}
	if beliefs.Len() != 3 {
		t.Fatalf("beliefs len = %d, want 3", beliefs.Len())
	}
	scores, err := SumBeliefs(beliefs, counts, 2, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if scores.Len() != 2 {
		t.Fatalf("scored docs = %d, want 2", scores.Len())
	}
	s0, ok := scores.Find(OID(0))
	if !ok || math.Abs(s0.(float64)-1.7) > 1e-12 { // 0.9+0.8
		t.Fatalf("score(doc0) = %v", s0)
	}
	s1, _ := scores.Find(OID(1))
	if math.Abs(s1.(float64)-(0.7+0.4)) > 1e-12 {
		t.Fatalf("score(doc1) = %v", s1)
	}
	if _, ok := scores.Find(OID(2)); ok {
		t.Fatal("doc2 matches no query term and must not appear")
	}
}

func TestWSumBeliefs(t *testing.T) {
	term := NewDense(0, KindOID)
	doc := NewDense(0, KindOID)
	bel := NewDense(0, KindFloat)
	i := 0
	add := func(d, tm OID, b float64) {
		term.MustAppend(OID(i), tm)
		doc.MustAppend(OID(i), d)
		bel.MustAppend(OID(i), b)
		i++
	}
	add(0, 10, 0.9)
	add(1, 11, 0.6)
	rev := term.Reverse()
	out, err := WSumBeliefs(rev, doc, bel, []OID{10, 11}, []float64{2, 1}, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// doc0: 2*(0.9-0.4) + 3*0.4 = 1.0+1.2 = 2.2
	v, ok := out.Find(OID(0))
	if !ok || math.Abs(v.(float64)-2.2) > 1e-12 {
		t.Fatalf("wsum(doc0) = %v", v)
	}
	if _, err := WSumBeliefs(rev, doc, bel, []OID{10}, []float64{1, 2}, 0.4); err == nil {
		t.Fatal("weight length mismatch should error")
	}
}

func TestCrossProduct(t *testing.T) {
	a := mkDenseStr("x", "y")
	b := mkDenseInt(1, 2, 3)
	c, err := CrossProduct(a.Reverse(), b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 6 {
		t.Fatalf("cross len = %d", c.Len())
	}
}

// Property: reverse twice is identity on every BUN.
func TestPropReverseReverse(t *testing.T) {
	f := func(vals []int64) bool {
		b := New(KindOID, KindInt)
		for i, v := range vals {
			b.MustAppend(OID(i*3), v)
		}
		rr := b.Reverse().Reverse()
		for i := 0; i < b.Len(); i++ {
			if rr.Head.OIDAt(i) != b.Head.OIDAt(i) || rr.Tail.IntAt(i) != b.Tail.IntAt(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: semijoin(l, l) == l for key heads.
func TestPropSemiJoinSelf(t *testing.T) {
	f := func(vals []int16) bool {
		b := NewDense(0, KindInt)
		for i, v := range vals {
			b.MustAppend(OID(i), int64(v))
		}
		s, err := SemiJoin(b, b)
		if err != nil || s.Len() != b.Len() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: sum of group sums equals the scalar sum.
func TestPropPumpPartitionsSum(t *testing.T) {
	f := func(vals []uint8, cats []bool) bool {
		n := len(vals)
		if len(cats) < n {
			n = len(cats)
		}
		valB := NewDense(0, KindFloat)
		catB := NewDense(0, KindBool)
		for i := 0; i < n; i++ {
			valB.MustAppend(OID(i), float64(vals[i]))
			catB.MustAppend(OID(i), cats[i])
		}
		g, err := Group(catB)
		if err != nil {
			return false
		}
		per, err := PumpAggregate(AggSum, valB, g)
		if err != nil {
			return false
		}
		total, err := ScalarAggregate(AggSum, valB)
		if err != nil {
			return false
		}
		perTotal, err := ScalarAggregate(AggSum, per)
		if err != nil {
			return false
		}
		return math.Abs(total.(float64)-perTotal.(float64)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: select(v) ∪ selectNot(v) partitions the BAT.
func TestPropSelectPartition(t *testing.T) {
	f := func(vals []int8, pick int8) bool {
		b := NewDense(0, KindInt)
		for i, v := range vals {
			b.MustAppend(OID(i), int64(v))
		}
		s, err1 := Select(b, int64(pick))
		ns, err2 := SelectNot(b, int64(pick))
		if err1 != nil || err2 != nil {
			return false
		}
		return s.Len()+ns.Len() == b.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	b := mkDenseFloat(0.5)
	s := b.String()
	if s == "" {
		t.Fatal("string render empty")
	}
	if FormatValue(OID(3)) != "3@0" {
		t.Fatalf("oid format = %s", FormatValue(OID(3)))
	}
	if FormatValue("x") != `"x"` {
		t.Fatalf("str format = %s", FormatValue("x"))
	}
	if FormatValue(true) != "true" || FormatValue(nil) != "nil" {
		t.Fatal("bool/nil format")
	}
}

func TestKindParsing(t *testing.T) {
	for _, name := range []string{"void", "oid", "int", "flt", "str", "bit"} {
		k, err := KindFromString(name)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		if k.String() != name {
			t.Fatalf("roundtrip %s -> %s", name, k.String())
		}
	}
	if _, err := KindFromString("blob"); err == nil {
		t.Fatal("unknown kind should error")
	}
}
