package bat

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// Warm-θ ≡ cold-θ differential: opening the scan with a pre-raised
// threshold — a prior identical run's exact k-th score, or anything
// below it — must return the BUN-for-BUN identical ranking, ties
// included. This is the exactness contract the epoch-keyed θ-memo
// (internal/core) and the streamed distributed threshold (internal/dist)
// rest on: any θ ≤ the true global k-th score is pruning-only.
func TestPrunedTopKSeededThetaMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const def = 0.4
	for round := 0; round < 40; round++ {
		ndocs := 50 + rng.Intn(400)
		si := mkSynthIndex(rng, 2+rng.Intn(20), ndocs, 6, 3)

		for _, nseg := range []int{1, 2, 8} {
			cuts := map[int]bool{ndocs: true}
			for len(cuts) < nseg && len(cuts) < ndocs {
				cuts[1+rng.Intn(ndocs)] = true
			}
			var bounds []int
			for c := range cuts {
				bounds = append(bounds, c)
			}
			sort.Ints(bounds)
			raw := segSplit(si, bounds, false)
			blk := blockSegs(t, raw)

			k := 1 + rng.Intn(30)
			qlen := 1 + rng.Intn(5)
			query := make([]OID, qlen)
			for i := range query {
				query[i] = OID(rng.Intn(si.nterms + 1)) // may be OOV
			}
			var weights []float64
			if rng.Intn(2) == 0 {
				weights = make([]float64, qlen)
				for i := range weights {
					weights[i] = float64(rng.Intn(4))
				}
			}

			cold, err := PrunedTopKSegs(raw, query, weights, def, k, si.domain, nil)
			if err != nil {
				t.Fatalf("round %d nseg %d: cold: %v", round, nseg, err)
			}
			if cold.Len() < k {
				continue // fewer than k scoreable docs: no exact seed exists
			}
			sk := cold.Tail.FloatAt(cold.Len() - 1)

			for si2, seed := range []float64{sk, sk - 0.07} {
				for _, segs := range [][]PostingsSeg{raw, blk} {
					for _, thr := range []int{1, 1 << 30} { // parallel and serial
						label := fmt.Sprintf("round %d nseg %d seed %d thr %d", round, nseg, si2, thr)
						theta := NewTopKThreshold()
						theta.Raise(seed)
						old := SetParallelThreshold(thr)
						warm, err := PrunedTopKSegs(segs, query, weights, def, k, si.domain, theta)
						SetParallelThreshold(old)
						if err != nil {
							t.Fatalf("%s: warm: %v", label, err)
						}
						mustEqualRanking(t, label, cold, warm)
					}
				}
			}
		}
	}
}

// TestSeededThetaSkipsWork pins that a seeded threshold is not inert on
// the block layout: a warm scan must decode strictly fewer blocks than
// the cold scan of the same query (the whole point of the θ-memo).
func TestSeededThetaSkipsWork(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const def = 0.4
	// Skewed beliefs: a rare high level dominates the top k while the
	// common level sits at the default, so blocks without a high posting
	// bound at ~fillBase — far below the terminal threshold — and every
	// term stays essential (no non-essential suffix to weaken the block
	// bound). This is the layout where block-max skipping can act.
	si := mkSynthIndex(rng, 6, 20000, 4, 0)
	for d := range si.perDoc {
		for tm := range si.perDoc[d] {
			if rng.Intn(512) == 0 {
				si.perDoc[d][tm] = 0.97
			} else {
				si.perDoc[d][tm] = def
			}
		}
	}
	blk := blockSegs(t, segSplit(si, []int{20000}, false))
	query := []OID{0, 1, 2}
	const k = 10

	old := SetParallelThreshold(1 << 30)
	defer SetParallelThreshold(old)

	cold0, _ := BlockScanStats()
	coldRes, err := PrunedTopKSegs(blk, query, nil, def, k, si.domain, nil)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	cold1, _ := BlockScanStats()

	theta := NewTopKThreshold()
	theta.Raise(coldRes.Tail.FloatAt(coldRes.Len() - 1))
	warm0, _ := BlockScanStats()
	if _, err := PrunedTopKSegs(blk, query, nil, def, k, si.domain, theta); err != nil {
		t.Fatalf("warm: %v", err)
	}
	warm1, _ := BlockScanStats()

	coldDecoded, warmDecoded := cold1-cold0, warm1-warm0
	if warmDecoded >= coldDecoded {
		t.Fatalf("warm scan decoded %d blocks, cold %d — seeded θ skipped nothing", warmDecoded, coldDecoded)
	}
}
