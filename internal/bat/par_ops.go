package bat

import (
	"fmt"
	"math"
)

// Parallel operator implementations. Each is the morsel-style counterpart of
// a serial operator in ops_*.go: partition the probe input into contiguous
// views, run the serial kernel (or a per-range fill) on each partition over
// the shared pool, and merge in partition order. The public entry points in
// ops_*.go dispatch here via useParallel; nothing below is reachable for
// inputs under the threshold.

// parJoin partitions l and joins each partition against all of r. r's hash
// index (when needed) is built once, up front, and shared read-only.
func parJoin(l, r *BAT) (*BAT, error) {
	if !r.HDense() {
		r.ensureHash()
	}
	parts := Partition(l, Parallelism())
	outs := make([]*BAT, len(parts))
	errs := make([]error, len(parts))
	runTasks(len(parts), func(i int) {
		outs[i], errs[i] = joinSerial(parts[i], r)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out, err := Merge(outs)
	if err != nil {
		return nil, err
	}
	// Same flag derivation as the serial dense-head fast path.
	if r.HDense() && (l.Tail.Kind() == KindOID || l.Tail.Kind() == KindVoid) {
		out.HSorted = l.HSorted || l.HDense()
	}
	return out, nil
}

// parSelectWhere is the shared engine behind the parallel select family and
// semijoin/diff: mk builds a positional predicate for one partition; rows
// satisfying it are gathered per partition and merged in order. Result flags
// follow the serial selectWhere derivation.
func parSelectWhere(b *BAT, mk func(part *BAT) (func(int) bool, error)) (*BAT, error) {
	parts := Partition(b, Parallelism())
	outs := make([]*BAT, len(parts))
	errs := make([]error, len(parts))
	runTasks(len(parts), func(i int) {
		pred, err := mk(parts[i])
		if err != nil {
			errs[i] = err
			return
		}
		outs[i] = selectWhere(parts[i], pred)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out, err := Merge(outs)
	if err != nil {
		return nil, err
	}
	out.HSorted = b.HSorted || b.HDense()
	out.TSorted = b.TSorted || b.Tail.Kind() == KindVoid
	out.HKey = b.HKey || b.HDense()
	out.TKey = b.TKey || b.Tail.Kind() == KindVoid
	return out, nil
}

// parGroupIDs computes the serial Group numbering (dense group OIDs in order
// of first occurrence) in three phases: per-partition local grouping, a
// serial merge that assigns global IDs walking partition dictionaries in
// order (first occurrences in partition p precede, globally, any value first
// seen in partition p+1, so the numbering matches the serial scan exactly),
// and a parallel relabel through per-partition translation tables.
func parGroupIDs[T comparable](vals []T) []OID {
	ranges := chunkRanges(len(vals), Parallelism())
	k := len(ranges)
	localID := make([][]OID, k)
	localOrder := make([][]T, k)
	runChunks(ranges, func(c, lo, hi int) {
		m := make(map[T]OID, hi-lo)
		ids := make([]OID, hi-lo)
		var ord []T
		for i := lo; i < hi; i++ {
			v := vals[i]
			g, ok := m[v]
			if !ok {
				g = OID(len(ord))
				m[v] = g
				ord = append(ord, v)
			}
			ids[i-lo] = g
		}
		localID[c], localOrder[c] = ids, ord
	})
	global := make(map[T]OID)
	trans := make([][]OID, k)
	next := OID(0)
	for c := 0; c < k; c++ {
		tr := make([]OID, len(localOrder[c]))
		for li, v := range localOrder[c] {
			g, ok := global[v]
			if !ok {
				g = next
				global[v] = g
				next++
			}
			tr[li] = g
		}
		trans[c] = tr
	}
	out := make([]OID, len(vals))
	runChunks(ranges, func(c, lo, hi int) {
		tr, ids := trans[c], localID[c]
		for i := lo; i < hi; i++ {
			out[i] = tr[ids[i-lo]]
		}
	})
	return out
}

// parGroup is the parallel Group: identical output to the serial reference
// for every tail kind (including NaN floats, where every occurrence is its
// own group in both implementations).
func parGroup(b *BAT) (*BAT, error) {
	var ids []OID
	switch b.Tail.Kind() {
	case KindVoid:
		ids = make([]OID, b.Len())
		ParallelFor(len(ids), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ids[i] = OID(i)
			}
		})
	case KindOID:
		ids = parGroupIDs(b.Tail.oids)
	case KindInt:
		ids = parGroupIDs(b.Tail.ints)
	case KindFloat:
		ids = parGroupIDs(b.Tail.flts)
	case KindStr:
		ids = parGroupIDs(b.Tail.strs)
	case KindBool:
		ids = parGroupIDs(b.Tail.bools)
	default:
		return nil, fmt.Errorf("bat: group unsupported on %s tail", b.Tail.Kind())
	}
	out := &BAT{Head: b.Head.clone(), Tail: &Column{kind: KindOID, oids: ids}}
	out.HSorted, out.HKey = b.HSorted || b.HDense(), b.HKey || b.HDense()
	return out, nil
}

// parPumpAggregate accumulates per-partition aggregate arrays and reduces
// them in partition order. Count/min/max and integer-valued sums are exact;
// float sums/products combine partial results and may differ from the
// serial fold by floating-point reassociation.
func parPumpAggregate(agg AggKind, vals, grp *BAT) (*BAT, error) {
	n := vals.Len()
	if k := vals.Tail.Kind(); k == KindStr && agg != AggCount && n > 0 {
		return nil, fmt.Errorf("bat: pump %s on non-numeric tail %s", agg, k)
	}
	read := pumpReader(vals.Tail)
	ranges := chunkRanges(n, Parallelism())
	k := len(ranges)

	// group domain size
	chunkMax := make([]OID, k)
	runChunks(ranges, func(c, lo, hi int) {
		m := OID(0)
		for i := lo; i < hi; i++ {
			if g := grp.Tail.OIDAt(i); g >= m {
				m = g + 1
			}
		}
		chunkMax[c] = m
	})
	maxG := OID(0)
	for _, m := range chunkMax {
		if m > maxG {
			maxG = m
		}
	}
	// Each chunk carries its own maxG-sized accumulator, so a group domain
	// near the row count (e.g. grouping a near-unique column) would cost
	// O(workers·groups) memory and initialisation for no win — hand those
	// back to the serial kernel.
	if !denseParWorthwhile(maxG, k, n) {
		return pumpAggregateSerial(agg, vals, grp)
	}

	accs := make([]*pumpAcc, k)
	runChunks(ranges, func(c, lo, hi int) {
		a := newPumpAcc(int(maxG))
		for i := lo; i < hi; i++ {
			a.add(grp.Tail.OIDAt(i), read(i))
		}
		accs[c] = a
	})
	total := accs[0]
	for _, a := range accs[1:] {
		total.merge(a)
	}
	return emitPump(agg, vals.Tail.Kind(), maxG, total)
}

// pumpAcc is one partition's aggregate state, one slot per group.
type pumpAcc struct {
	sums   []float64
	counts []int64
	mins   []float64
	maxs   []float64
	prods  []float64
}

func newPumpAcc(g int) *pumpAcc {
	a := &pumpAcc{
		sums:   make([]float64, g),
		counts: make([]int64, g),
		mins:   make([]float64, g),
		maxs:   make([]float64, g),
		prods:  make([]float64, g),
	}
	for i := range a.mins {
		a.mins[i] = math.Inf(1)
		a.maxs[i] = math.Inf(-1)
		a.prods[i] = 1
	}
	return a
}

func (a *pumpAcc) add(g OID, v float64) {
	a.sums[g] += v
	a.counts[g]++
	if v < a.mins[g] {
		a.mins[g] = v
	}
	if v > a.maxs[g] {
		a.maxs[g] = v
	}
	a.prods[g] *= v
}

func (a *pumpAcc) merge(o *pumpAcc) {
	for g := range a.sums {
		a.sums[g] += o.sums[g]
		a.counts[g] += o.counts[g]
		if o.mins[g] < a.mins[g] {
			a.mins[g] = o.mins[g]
		}
		if o.maxs[g] > a.maxs[g] {
			a.maxs[g] = o.maxs[g]
		}
		a.prods[g] *= o.prods[g]
	}
}

// parMaxOID returns the maximum value in oids (0 when empty), scanning in
// parallel for large inputs.
func parMaxOID(oids []OID) OID {
	if !useParallel(len(oids)) {
		m := OID(0)
		for _, d := range oids {
			if d > m {
				m = d
			}
		}
		return m
	}
	ranges := chunkRanges(len(oids), Parallelism())
	maxs := make([]OID, len(ranges))
	runChunks(ranges, func(c, lo, hi int) {
		m := OID(0)
		for i := lo; i < hi; i++ {
			if oids[i] > m {
				m = oids[i]
			}
		}
		maxs[c] = m
	})
	m := OID(0)
	for _, v := range maxs {
		if v > m {
			m = v
		}
	}
	return m
}

// parCountDocs builds the [doc, count] BAT of GetBL from the flattened doc
// column: per-partition dense counters merged in partition order, with the
// first-occurrence emission order preserved exactly (every first occurrence
// in partition p precedes, globally, any first occurrence in partition p+1).
func parCountDocs(docs []OID, maxDoc OID) *BAT {
	ranges := chunkRanges(len(docs), Parallelism())
	k := len(ranges)
	cnts := make([][]int64, k)
	orders := make([][]OID, k)
	runChunks(ranges, func(c, lo, hi int) {
		cnt := make([]int64, maxDoc+1)
		var ord []OID
		for i := lo; i < hi; i++ {
			d := docs[i]
			if cnt[d] == 0 {
				ord = append(ord, d)
			}
			cnt[d]++
		}
		cnts[c], orders[c] = cnt, ord
	})
	total := cnts[0]
	for _, cnt := range cnts[1:] {
		for d := range total {
			total[d] += cnt[d]
		}
	}
	seen := make([]bool, maxDoc+1)
	var order []OID
	for _, ord := range orders {
		for _, d := range ord {
			if !seen[d] {
				seen[d] = true
				order = append(order, d)
			}
		}
	}
	counts := New(KindOID, KindInt)
	counts.Head.oids = make([]OID, len(order))
	counts.Tail.ints = make([]int64, len(order))
	ParallelFor(len(order), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			counts.Head.oids[i] = order[i]
			counts.Tail.ints[i] = total[order[i]]
		}
	})
	counts.HKey = true
	return counts
}

// parFillFastFloat is the partitioned form of fillFastFloat: two counting
// passes establish exact output offsets per partition, then the matched and
// missing sections are filled in parallel — the emission order is identical
// to the serial reference.
func parFillFastFloat(b, domain *BAT, fv float64, inDomain []bool, maxOID OID) (*BAT, bool, error) {
	nb, nd := b.Len(), domain.Len()
	present := make([]bool, maxOID+1)
	for i := 0; i < nb; i++ {
		if h := b.Head.OIDAt(i); inDomain[h] {
			present[h] = true
		}
	}
	bRanges := chunkRanges(nb, Parallelism())
	bOff := make([]int, len(bRanges)+1)
	runChunks(bRanges, func(c, lo, hi int) {
		n := 0
		for i := lo; i < hi; i++ {
			if inDomain[b.Head.OIDAt(i)] {
				n++
			}
		}
		bOff[c+1] = n
	})
	for c := 1; c <= len(bRanges); c++ {
		bOff[c] += bOff[c-1]
	}
	dRanges := chunkRanges(nd, Parallelism())
	dOff := make([]int, len(dRanges)+1)
	runChunks(dRanges, func(c, lo, hi int) {
		n := 0
		for i := lo; i < hi; i++ {
			if !present[domain.Head.OIDAt(i)] {
				n++
			}
		}
		dOff[c+1] = n
	})
	for c := 1; c <= len(dRanges); c++ {
		dOff[c] += dOff[c-1]
	}
	matched := bOff[len(bRanges)]
	out := New(KindOID, KindFloat)
	out.Head.oids = make([]OID, matched+dOff[len(dRanges)])
	out.Tail.flts = make([]float64, len(out.Head.oids))
	runChunks(bRanges, func(c, lo, hi int) {
		at := bOff[c]
		for i := lo; i < hi; i++ {
			h := b.Head.OIDAt(i)
			if !inDomain[h] {
				continue
			}
			out.Head.oids[at] = h
			out.Tail.flts[at] = b.Tail.flts[i]
			at++
		}
	})
	runChunks(dRanges, func(c, lo, hi int) {
		at := matched + dOff[c]
		for i := lo; i < hi; i++ {
			h := domain.Head.OIDAt(i)
			if present[h] {
				continue
			}
			out.Head.oids[at] = h
			out.Tail.flts[at] = fv
			at++
		}
	})
	return out, true, nil
}

// pumpReader returns the positional numeric reader PumpAggregate uses;
// unsupported kinds read as 0 (only reachable for AggCount, which ignores
// the value — other aggregates reject those kinds before reading).
func pumpReader(c *Column) func(int) float64 {
	switch c.Kind() {
	case KindFloat:
		return func(i int) float64 { return c.flts[i] }
	case KindInt:
		return func(i int) float64 { return float64(c.ints[i]) }
	case KindOID, KindVoid:
		return func(i int) float64 { return float64(c.OIDAt(i)) }
	case KindBool:
		return func(i int) float64 {
			if c.bools[i] {
				return 1
			}
			return 0
		}
	}
	return func(int) float64 { return 0 }
}
