package bat

import (
	"fmt"
	"math"
)

// Group computes equivalence classes over the tail values of b (MIL
// group/CTgroup). The result maps each head value to a dense group OID
// (0..G-1, numbered in order of first occurrence). Large inputs run on the
// parallel kernel (par_ops.go) with identical output.
func Group(b *BAT) (*BAT, error) {
	if useParallel(b.Len()) {
		return parGroup(b)
	}
	return groupSerial(b)
}

// groupSerial is the single-threaded reference implementation of Group.
func groupSerial(b *BAT) (*BAT, error) {
	out := &BAT{
		Head: b.Head.clone(),
		Tail: NewColumn(KindOID),
	}
	n := b.Len()
	next := OID(0)
	assign := func(g OID) { out.Tail.oids = append(out.Tail.oids, g) }
	switch b.Tail.Kind() {
	case KindVoid:
		for i := 0; i < n; i++ {
			assign(OID(i))
		}
		next = OID(n)
	case KindOID:
		m := make(map[OID]OID, n)
		for _, v := range b.Tail.oids {
			g, ok := m[v]
			if !ok {
				g = next
				m[v] = g
				next++
			}
			assign(g)
		}
	case KindInt:
		m := make(map[int64]OID, n)
		for _, v := range b.Tail.ints {
			g, ok := m[v]
			if !ok {
				g = next
				m[v] = g
				next++
			}
			assign(g)
		}
	case KindFloat:
		m := make(map[float64]OID, n)
		for _, v := range b.Tail.flts {
			g, ok := m[v]
			if !ok {
				g = next
				m[v] = g
				next++
			}
			assign(g)
		}
	case KindStr:
		m := make(map[string]OID, n)
		for _, v := range b.Tail.strs {
			g, ok := m[v]
			if !ok {
				g = next
				m[v] = g
				next++
			}
			assign(g)
		}
	case KindBool:
		m := make(map[bool]OID, 2)
		for _, v := range b.Tail.bools {
			g, ok := m[v]
			if !ok {
				g = next
				m[v] = g
				next++
			}
			assign(g)
		}
	default:
		return nil, fmt.Errorf("bat: group unsupported on %s tail", b.Tail.Kind())
	}
	out.HSorted, out.HKey = b.HSorted || b.HDense(), b.HKey || b.HDense()
	return out, nil
}

// GroupRefine refines an existing grouping g (head→groupOID) by the tail
// values of b; rows agree iff they agreed in g AND have equal b-tails. The
// two BATs must be positionally aligned.
func GroupRefine(g, b *BAT) (*BAT, error) {
	if g.Len() != b.Len() {
		return nil, fmt.Errorf("bat: group_refine length mismatch %d vs %d", g.Len(), b.Len())
	}
	type pair struct {
		g OID
		v any
	}
	m := make(map[pair]OID, g.Len())
	out := &BAT{Head: g.Head.clone(), Tail: NewColumn(KindOID)}
	next := OID(0)
	for i := 0; i < g.Len(); i++ {
		key := pair{g.Tail.OIDAt(i), b.Tail.Get(i)}
		gr, ok := m[key]
		if !ok {
			gr = next
			m[key] = gr
			next++
		}
		out.Tail.oids = append(out.Tail.oids, gr)
	}
	out.HSorted, out.HKey = g.HSorted, g.HKey
	return out, nil
}

// AggKind selects a grouped or scalar aggregate function.
type AggKind uint8

// Supported aggregates.
const (
	AggSum AggKind = iota
	AggCount
	AggMin
	AggMax
	AggAvg
	AggProd
)

// String returns the MIL pump name.
func (a AggKind) String() string {
	switch a {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	case AggProd:
		return "prod"
	}
	return "agg?"
}

// AggKindFromString parses a pump name.
func AggKindFromString(s string) (AggKind, error) {
	switch s {
	case "sum":
		return AggSum, nil
	case "count":
		return AggCount, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "avg":
		return AggAvg, nil
	case "prod":
		return AggProd, nil
	}
	return 0, fmt.Errorf("bat: unknown aggregate %q", s)
}

// PumpAggregate implements MIL's pump: {agg}(vals, grp). vals is
// [oid, numeric] and grp is a positionally aligned [oid, groupOID]; the
// result maps each group OID to the aggregate of the values in the group.
// Groups are emitted in ascending group-OID order with a dense head when
// group OIDs happen to be dense from 0 (the usual case after Mark).
func PumpAggregate(agg AggKind, vals, grp *BAT) (*BAT, error) {
	if vals.Len() != grp.Len() {
		return nil, fmt.Errorf("bat: pump length mismatch: vals %d vs grp %d", vals.Len(), grp.Len())
	}
	if useParallel(vals.Len()) {
		return parPumpAggregate(agg, vals, grp)
	}
	return pumpAggregateSerial(agg, vals, grp)
}

// pumpAggregateSerial is the single-threaded reference implementation of
// PumpAggregate; it shares the accumulator and emit code with the parallel
// variant so the two differ only in scan order.
func pumpAggregateSerial(agg AggKind, vals, grp *BAT) (*BAT, error) {
	n := grp.Len()
	if k := vals.Tail.Kind(); k == KindStr && agg != AggCount && n > 0 {
		return nil, fmt.Errorf("bat: pump %s on non-numeric tail %s", agg, k)
	}
	read := pumpReader(vals.Tail)

	// Determine the group domain size.
	maxG := OID(0)
	for i := 0; i < n; i++ {
		if g := grp.Tail.OIDAt(i); g >= maxG {
			maxG = g + 1
		}
	}
	acc := newPumpAcc(int(maxG))
	for i := 0; i < n; i++ {
		acc.add(grp.Tail.OIDAt(i), read(i))
	}
	return emitPump(agg, vals.Tail.Kind(), maxG, acc)
}

// emitPump renders accumulated per-group state as the [void, agg] result,
// identically for the serial and parallel paths.
func emitPump(agg AggKind, valKind Kind, maxG OID, acc *pumpAcc) (*BAT, error) {
	out := NewDense(0, resultKind(agg, valKind))
	for g := OID(0); g < maxG; g++ {
		var v any
		switch agg {
		case AggSum:
			v = castNum(acc.sums[g], out.Tail.Kind())
		case AggCount:
			v = acc.counts[g]
		case AggMin:
			x := acc.mins[g]
			if acc.counts[g] == 0 {
				x = 0
			}
			v = castNum(x, out.Tail.Kind())
		case AggMax:
			x := acc.maxs[g]
			if acc.counts[g] == 0 {
				x = 0
			}
			v = castNum(x, out.Tail.Kind())
		case AggAvg:
			if acc.counts[g] == 0 {
				v = 0.0
			} else {
				v = acc.sums[g] / float64(acc.counts[g])
			}
		case AggProd:
			v = castNum(acc.prods[g], out.Tail.Kind())
		}
		out.MustAppend(g, v)
	}
	return out, nil
}

// ScalarAggregate reduces the tail of b to a single value: MIL's
// b.sum(), b.count(), etc.
func ScalarAggregate(agg AggKind, b *BAT) (any, error) {
	if agg == AggCount {
		return int64(b.Len()), nil
	}
	n := b.Len()
	sum, prod := 0.0, 1.0
	mn, mx := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		var v float64
		switch b.Tail.Kind() {
		case KindFloat:
			v = b.Tail.flts[i]
		case KindInt:
			v = float64(b.Tail.ints[i])
		case KindOID, KindVoid:
			v = float64(b.Tail.OIDAt(i))
		case KindBool:
			if b.Tail.bools[i] {
				v = 1
			}
		default:
			return nil, fmt.Errorf("bat: %s on non-numeric tail %s", agg, b.Tail.Kind())
		}
		sum += v
		prod *= v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	switch agg {
	case AggSum:
		return castNum(sum, resultKind(agg, b.Tail.Kind())), nil
	case AggProd:
		return castNum(prod, resultKind(agg, b.Tail.Kind())), nil
	case AggMin:
		if n == 0 {
			return nil, fmt.Errorf("bat: min of empty BAT")
		}
		return castNum(mn, resultKind(agg, b.Tail.Kind())), nil
	case AggMax:
		if n == 0 {
			return nil, fmt.Errorf("bat: max of empty BAT")
		}
		return castNum(mx, resultKind(agg, b.Tail.Kind())), nil
	case AggAvg:
		if n == 0 {
			return 0.0, nil
		}
		return sum / float64(n), nil
	}
	return nil, fmt.Errorf("bat: unknown aggregate %v", agg)
}

// Histogram returns [value, count] over b's tail (MIL histogram).
func Histogram(b *BAT) (*BAT, error) {
	g, err := Group(b.Reverse().Mark(0).Reverse()) // [void, tail] grouped
	if err != nil {
		return nil, err
	}
	// g: [void, groupOID]; count per group, then join group→representative value.
	counts, err := PumpAggregate(AggCount, g, g)
	if err != nil {
		return nil, err
	}
	// representative tail value per group: first occurrence.
	rep := New(KindOID, materialKind(b.Tail.Kind()))
	seen := make(map[OID]bool)
	for i := 0; i < g.Len(); i++ {
		gr := g.Tail.OIDAt(i)
		if !seen[gr] {
			seen[gr] = true
			rep.Head.oids = append(rep.Head.oids, gr)
			rep.Tail.appendFrom(b.Tail, i)
		}
	}
	// [value, count] = join(reverse(rep), counts)
	return Join(rep.Reverse(), counts)
}

// Unique returns the BUNs of b with the first occurrence of each head value
// (MIL kunique).
func Unique(b *BAT) (*BAT, error) {
	if b.HKey || b.HDense() {
		return b, nil
	}
	seen := newValueSet(materialKind(b.Head.Kind()))
	out := selectWhere(b, func(i int) bool { return seen.add(b.Head.Get(i)) })
	out.HKey = true
	return out, nil
}

// resultKind picks the tail kind of an aggregate result.
func resultKind(agg AggKind, in Kind) Kind {
	switch agg {
	case AggCount:
		return KindInt
	case AggAvg:
		return KindFloat
	}
	if in == KindInt {
		return KindInt
	}
	return KindFloat
}

// castNum converts an accumulated float back to the requested kind.
func castNum(v float64, k Kind) any {
	if k == KindInt {
		return int64(v)
	}
	return v
}

// valueSet is a small typed set used by Unique.
type valueSet struct {
	kind  Kind
	oids  map[OID]bool
	ints  map[int64]bool
	flts  map[float64]bool
	strs  map[string]bool
	bools map[bool]bool
}

func newValueSet(k Kind) *valueSet {
	s := &valueSet{kind: k}
	switch k {
	case KindOID:
		s.oids = map[OID]bool{}
	case KindInt:
		s.ints = map[int64]bool{}
	case KindFloat:
		s.flts = map[float64]bool{}
	case KindStr:
		s.strs = map[string]bool{}
	case KindBool:
		s.bools = map[bool]bool{}
	}
	return s
}

// add inserts v and reports whether it was newly added.
func (s *valueSet) add(v any) bool {
	switch s.kind {
	case KindOID:
		o, _ := toOID(v)
		if s.oids[o] {
			return false
		}
		s.oids[o] = true
	case KindInt:
		x, _ := toInt(v)
		if s.ints[x] {
			return false
		}
		s.ints[x] = true
	case KindFloat:
		x, _ := toFloat(v)
		if s.flts[x] {
			return false
		}
		s.flts[x] = true
	case KindStr:
		x, _ := v.(string)
		if s.strs[x] {
			return false
		}
		s.strs[x] = true
	case KindBool:
		x, _ := v.(bool)
		if s.bools[x] {
			return false
		}
		s.bools[x] = true
	}
	return true
}

// PumpByHead aggregates tail values grouped by head value: MIL's {agg}(b)
// pump over head-induced groups. The result is [head, agg] with one BUN per
// distinct head value, in order of first occurrence.
func PumpByHead(agg AggKind, b *BAT) (*BAT, error) {
	// Group by head: reuse Group over the reversed BAT ([tail,head] grouped
	// on its tail = our head), positionally aligned with b.
	g, err := Group(b.Reverse())
	if err != nil {
		return nil, err
	}
	per, err := PumpAggregate(agg, b, g)
	if err != nil {
		return nil, err
	}
	// Map group OIDs back to representative head values.
	rep := New(KindOID, materialKind(b.Head.Kind()))
	seen := make(map[OID]bool, per.Len())
	for i := 0; i < g.Len(); i++ {
		gr := g.Tail.OIDAt(i)
		if !seen[gr] {
			seen[gr] = true
			rep.Head.oids = append(rep.Head.oids, gr)
			rep.Tail.appendFrom(b.Head, i)
		}
	}
	// rep is [groupOID, headValue]; per is [groupOID(dense), agg].
	// Emit [headValue, agg] by fetching each group's aggregate positionally.
	res := &BAT{Head: rep.Tail.clone(), Tail: NewColumn(materialKind(per.Tail.Kind()))}
	for i := 0; i < rep.Len(); i++ {
		gr := rep.Head.oids[i]
		res.Tail.appendFrom(per.Tail, int(gr))
	}
	res.HKey = true
	return res, nil
}
