package bat

// Block-compressed postings codec (store format version 3).
//
// A segment's postings can be stored in two layouts. The raw layout
// (_postdoc/_posttf/_postbel) is three parallel 8-byte columns. The
// block layout re-codes the same postings into fixed-size blocks of
// PostingsBlockSize entries (the last block of each term may be short):
//
//	_poststart  [void,int]   nterms+1 posting offsets (same as raw)
//	_blkstart   [void,int]   nterms+1 block offsets: term t owns blocks
//	                         [blkstart[t], blkstart[t+1])
//	_blkdir     [void,int]   2 ints per block: (lastDoc, docEnd) where
//	                         docEnd is the exclusive end offset of the
//	                         block's region in _blkdoc
//	_blkdoc     [void,bytes] per-block doc-id + tf data
//	_blkbdir    [void,int]   2 ints per block: (belEnd, qmaxBits) where
//	                         belEnd is the exclusive end offset of the
//	                         block's region in _blkbel and qmaxBits is
//	                         the float32 bit pattern of the block's max
//	                         belief rounded UP (a conservative bound)
//	_blkbel     [void,bytes] per-term belief data
//	_maxbel     [void,flt]   exact per-term max belief (same as raw)
//
// Doc blocks. Each block's _blkdoc region starts with one format byte.
// Format 0 (varint): count × (uvarint docDelta, uvarint tf). Deltas are
// relative to the previous doc id in the term; the first posting of a
// term uses prev = -1 (so delta = doc+1), and the first posting of a
// later block is relative to the previous block's lastDoc. Doc ids are
// strictly ascending within a term, so every delta is ≥ 1. Format 1
// (bitpacked): two width bytes (delta bits, tf bits), then the deltas
// packed LSB-first, then the tfs. The encoder picks whichever format is
// smaller per block.
//
// Belief data. Scores must stay bit-exact (only pruning bounds may be
// lossy), so beliefs are coded losslessly per term: a uvarint header K,
// and if K > 0 a dictionary of K distinct float64 values (ascending,
// 8-byte little-endian bit patterns) followed by one uvarint dictionary
// index per posting; if K == 0 the raw 8-byte bit pattern of every
// posting follows instead. CONTREP beliefs take few distinct values per
// term (they are a function of tf and document length), so the dict
// form usually codes a posting in one byte. The encoder falls back to
// raw whenever the dict form would not be smaller. _blkbdir carries the
// exclusive end offset of every block's index (or raw) region, so a
// scan can decode one block's beliefs without touching the rest of the
// term; the dictionary sits between the previous term's end and the
// first block's region.
//
// Decoders never panic on malformed input: every offset and count is
// validated up front (NewBlockPostings) or bounds-checked during decode,
// and corruption surfaces as an error from the scan operator.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// PostingsBlockSize is the number of postings per compressed block.
const PostingsBlockSize = 128

// maxBeliefDict caps the per-term belief dictionary size; terms with
// more distinct belief values fall back to raw 8-byte coding.
const maxBeliefDict = 4096

// blockFormat bytes in _blkdoc block headers.
const (
	blockFmtVarint  = 0
	blockFmtBitpack = 1
)

// QuantizeBoundUp rounds x up to the nearest float32, so the result is
// always ≥ x: the block-max bounds stored in _blkbdir stay conservative
// upper bounds after quantization.
func QuantizeBoundUp(x float64) uint32 {
	f := float32(x)
	if float64(f) < x {
		f = math.Nextafter32(f, float32(math.Inf(1)))
	}
	return math.Float32bits(f)
}

// bitLen64 returns the number of bits needed to represent v (min 0).
func bitLen64(v uint64) int {
	n := 0
	for v != 0 {
		n++
		v >>= 1
	}
	return n
}

// appendPacked appends vals packed width bits each, LSB-first. The
// accumulator flush keeps bits < 8 between values, so width must be
// ≤ 56 (wider values never fit alongside the carry; the encoder falls
// back to varint for those).
func appendPacked(dst []byte, vals []uint64, width int) []byte {
	if width == 0 {
		return dst
	}
	var acc uint64
	bits := 0
	for _, v := range vals {
		acc |= v << bits
		bits += width
		for bits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			bits -= 8
		}
	}
	if bits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

// unpackInto decodes n values of width bits (LSB-first) from data into
// out, returning the number of bytes consumed or an error on overrun.
//
// This is the bitpack scan kernel: instead of feeding a byte-at-a-time
// accumulator (a data-dependent inner loop per value), each value is
// extracted from one unaligned 64-bit little-endian load at its bit
// offset — valid because bitOff%8 + width ≤ 7 + 57 = 64 for the ≤ 56
// bit widths the encoder emits. The bounds check is hoisted: values
// whose 8-byte window fits inside data decode in the branch-free loop,
// the last few fall through to a byte-assembling tail.
func unpackInto(data []byte, n, width int, out []uint64) (int, error) {
	if width == 0 {
		for i := 0; i < n; i++ {
			out[i] = 0
		}
		return 0, nil
	}
	need := (n*width + 7) / 8
	if need > len(data) {
		return 0, fmt.Errorf("bat: bitpacked block truncated (need %d bytes, have %d)", need, len(data))
	}
	mask := uint64(1)<<uint(width) - 1
	if width >= 64 {
		mask = ^uint64(0)
	}
	out = out[:n]
	// fast: every value whose containing 8-byte window is in range
	i, bitOff := 0, 0
	for ; i < n; i++ {
		byteOff := bitOff >> 3
		if byteOff+8 > len(data) {
			break
		}
		w := binary.LittleEndian.Uint64(data[byteOff:])
		out[i] = (w >> uint(bitOff&7)) & mask
		bitOff += width
	}
	// tail: assemble the final window byte by byte
	for ; i < n; i++ {
		byteOff := bitOff >> 3
		var w uint64
		for k := 0; k < 8 && byteOff+k < len(data); k++ {
			w |= uint64(data[byteOff+k]) << uint(8*k)
		}
		out[i] = (w >> uint(bitOff&7)) & mask
		bitOff += width
	}
	return need, nil
}

// BlockPostingsEncoder builds the structure columns of the block layout
// (_blkstart, _blkdir, _blkdoc) one term run at a time.
type BlockPostingsEncoder struct {
	BlkStart []int64 // nterms+1 after all AddTerm calls
	BlkDir   []int64 // 2 per block: lastDoc, docEnd
	Data     []byte  // _blkdoc blob

	deltas []uint64
	utfs   []uint64
}

// NewBlockPostingsEncoder returns an encoder sized for nterms terms.
func NewBlockPostingsEncoder(nterms int) *BlockPostingsEncoder {
	return &BlockPostingsEncoder{
		BlkStart: append(make([]int64, 0, nterms+1), 0),
		deltas:   make([]uint64, PostingsBlockSize),
		utfs:     make([]uint64, PostingsBlockSize),
	}
}

// AddTerm encodes one term's posting run. docs must be strictly
// ascending; tfs runs parallel to docs.
func (e *BlockPostingsEncoder) AddTerm(docs []OID, tfs []int64) error {
	if len(docs) != len(tfs) {
		return fmt.Errorf("bat: posting run: %d docs vs %d tfs", len(docs), len(tfs))
	}
	prev := int64(-1)
	for lo := 0; lo < len(docs); lo += PostingsBlockSize {
		hi := lo + PostingsBlockSize
		if hi > len(docs) {
			hi = len(docs)
		}
		n := hi - lo
		p := prev
		var maxDelta, maxTf uint64
		for i := 0; i < n; i++ {
			d := int64(docs[lo+i])
			if d <= p {
				return fmt.Errorf("bat: posting run not strictly ascending at %d (doc %d after %d)", lo+i, d, p)
			}
			delta := uint64(d - p)
			tf := tfs[lo+i]
			if tf < 0 {
				return fmt.Errorf("bat: negative term frequency %d", tf)
			}
			e.deltas[i] = delta
			e.utfs[i] = uint64(tf)
			if delta > maxDelta {
				maxDelta = delta
			}
			if uint64(tf) > maxTf {
				maxTf = uint64(tf)
			}
			p = d
		}
		// size both formats, keep the smaller
		varintSize := 0
		var vbuf [binary.MaxVarintLen64]byte
		for i := 0; i < n; i++ {
			varintSize += binary.PutUvarint(vbuf[:], e.deltas[i])
			varintSize += binary.PutUvarint(vbuf[:], e.utfs[i])
		}
		dw, tw := bitLen64(maxDelta), bitLen64(maxTf)
		packSize := 2 + (n*dw+7)/8 + (n*tw+7)/8
		if varintSize <= packSize || dw > 56 || tw > 56 {
			e.Data = append(e.Data, blockFmtVarint)
			for i := 0; i < n; i++ {
				e.Data = binary.AppendUvarint(e.Data, e.deltas[i])
				e.Data = binary.AppendUvarint(e.Data, e.utfs[i])
			}
		} else {
			e.Data = append(e.Data, blockFmtBitpack, byte(dw), byte(tw))
			e.Data = appendPacked(e.Data, e.deltas[:n], dw)
			e.Data = appendPacked(e.Data, e.utfs[:n], tw)
		}
		e.BlkDir = append(e.BlkDir, p, int64(len(e.Data)))
		prev = p
	}
	e.BlkStart = append(e.BlkStart, int64(len(e.BlkDir)/2))
	return nil
}

// BlockBeliefsEncoder builds the belief columns of the block layout
// (_blkbdir, _blkbel) one term run at a time, in the same block
// chunking as BlockPostingsEncoder. Belief values round-trip bit-exact;
// only the per-block qmax bound in _blkbdir is (upward) quantized.
type BlockBeliefsEncoder struct {
	BelDir []int64 // 2 per block: belEnd, qmaxBits
	Data   []byte  // _blkbel blob

	dict []float64
	idx  map[uint64]int
}

// NewBlockBeliefsEncoder returns an empty belief encoder.
func NewBlockBeliefsEncoder() *BlockBeliefsEncoder {
	return &BlockBeliefsEncoder{idx: make(map[uint64]int)}
}

// AddTerm encodes one term's belief run and returns the exact maximum
// belief of the run (0 for an empty run), for _maxbel.
func (e *BlockBeliefsEncoder) AddTerm(bels []float64) float64 {
	if len(bels) == 0 {
		return 0
	}
	// collect the distinct values (by bit pattern: exactness is defined
	// on the stored bits, and NaN-safety falls out for free)
	e.dict = e.dict[:0]
	for k := range e.idx {
		delete(e.idx, k)
	}
	useDict := true
	for _, v := range bels {
		bits := math.Float64bits(v)
		if _, ok := e.idx[bits]; !ok {
			if len(e.dict) >= maxBeliefDict {
				useDict = false
				break
			}
			e.idx[bits] = 0
			e.dict = append(e.dict, v)
		}
	}
	if useDict {
		sort.Float64s(e.dict)
		for i, v := range e.dict {
			e.idx[math.Float64bits(v)] = i
		}
		// dict coding must beat raw to be worth the indirection
		dictSize := uvarintLen(uint64(len(e.dict))) + 8*len(e.dict)
		for _, v := range bels {
			dictSize += uvarintLen(uint64(e.idx[math.Float64bits(v)]))
		}
		if dictSize >= 1+8*len(bels) {
			useDict = false
		}
	}
	if useDict {
		e.Data = binary.AppendUvarint(e.Data, uint64(len(e.dict)))
		for _, v := range e.dict {
			e.Data = binary.LittleEndian.AppendUint64(e.Data, math.Float64bits(v))
		}
	} else {
		e.Data = binary.AppendUvarint(e.Data, 0)
	}
	max := math.Inf(-1)
	for lo := 0; lo < len(bels); lo += PostingsBlockSize {
		hi := lo + PostingsBlockSize
		if hi > len(bels) {
			hi = len(bels)
		}
		blkMax := math.Inf(-1)
		for _, v := range bels[lo:hi] {
			if useDict {
				e.Data = binary.AppendUvarint(e.Data, uint64(e.idx[math.Float64bits(v)]))
			} else {
				e.Data = binary.LittleEndian.AppendUint64(e.Data, math.Float64bits(v))
			}
			if v > blkMax {
				blkMax = v
			}
		}
		e.BelDir = append(e.BelDir, int64(len(e.Data)), int64(QuantizeBoundUp(blkMax)))
		if blkMax > max {
			max = blkMax
		}
	}
	return max
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// BlockPostings is a validated read view over the block-layout columns
// of one segment. Constructing it proves every offset consistent, so
// the per-block decoders only have to bounds-check varint payloads.
type BlockPostings struct {
	start    []int64
	blkStart []int64
	blkDir   []int64
	docData  []byte
	belDir   []int64
	belData  []byte
	maxb     []float64
	nterms   int
}

// NewBlockPostings validates the seven block-layout columns and wraps
// them. Malformed inputs produce an error, never a panic.
func NewBlockPostings(start, blkStart, blkDir, blkDoc, blkBDir, blkBel, maxBel *BAT) (*BlockPostings, error) {
	intTail := func(b *BAT, name string) ([]int64, error) {
		if b == nil || b.Tail == nil || b.Tail.Kind() != KindInt {
			return nil, fmt.Errorf("bat: block postings: %s must be [void,int]", name)
		}
		return b.Tail.Ints(), nil
	}
	bytesTail := func(b *BAT, name string) ([]byte, error) {
		if b == nil || b.Tail == nil || b.Tail.Kind() != KindBytes {
			return nil, fmt.Errorf("bat: block postings: %s must be [void,bytes]", name)
		}
		return b.Tail.Bytes(), nil
	}
	starts, err := intTail(start, "_poststart")
	if err != nil {
		return nil, err
	}
	bs, err := intTail(blkStart, "_blkstart")
	if err != nil {
		return nil, err
	}
	bd, err := intTail(blkDir, "_blkdir")
	if err != nil {
		return nil, err
	}
	dd, err := bytesTail(blkDoc, "_blkdoc")
	if err != nil {
		return nil, err
	}
	bbd, err := intTail(blkBDir, "_blkbdir")
	if err != nil {
		return nil, err
	}
	bel, err := bytesTail(blkBel, "_blkbel")
	if err != nil {
		return nil, err
	}
	if maxBel == nil || maxBel.Tail == nil || maxBel.Tail.Kind() != KindFloat {
		return nil, fmt.Errorf("bat: block postings: _maxbel must be [void,flt]")
	}
	maxb := maxBel.Tail.Floats()

	if len(starts) == 0 {
		return nil, fmt.Errorf("bat: block postings: empty _poststart")
	}
	nterms := len(starts) - 1
	if len(bs) != len(starts) {
		return nil, fmt.Errorf("bat: block postings: _blkstart has %d entries, want %d", len(bs), len(starts))
	}
	if len(maxb) != nterms {
		return nil, fmt.Errorf("bat: block postings: _maxbel has %d entries, want %d", len(maxb), nterms)
	}
	if len(bd)%2 != 0 || len(bbd)%2 != 0 {
		return nil, fmt.Errorf("bat: block postings: odd directory length")
	}
	nblocks := len(bd) / 2
	if len(bbd)/2 != nblocks {
		return nil, fmt.Errorf("bat: block postings: _blkbdir has %d blocks, _blkdir %d", len(bbd)/2, nblocks)
	}
	if starts[0] != 0 || bs[0] != 0 {
		return nil, fmt.Errorf("bat: block postings: offsets must start at 0")
	}
	if bs[nterms] != int64(nblocks) {
		return nil, fmt.Errorf("bat: block postings: _blkstart end %d, have %d blocks", bs[nterms], nblocks)
	}
	for t := 0; t < nterms; t++ {
		np := starts[t+1] - starts[t]
		nb := bs[t+1] - bs[t]
		if np < 0 || nb < 0 {
			return nil, fmt.Errorf("bat: block postings: offsets not monotone at term %d", t)
		}
		want := (np + PostingsBlockSize - 1) / PostingsBlockSize
		if nb != want {
			return nil, fmt.Errorf("bat: block postings: term %d has %d postings but %d blocks (want %d)", t, np, nb, want)
		}
		// per-term lastDoc must ascend for the block binary searches
		for b := bs[t] + 1; b < bs[t+1]; b++ {
			if bd[2*b] <= bd[2*(b-1)] {
				return nil, fmt.Errorf("bat: block postings: term %d block lastDocs not ascending", t)
			}
		}
	}
	prevEnd := int64(0)
	for b := 0; b < nblocks; b++ {
		end := bd[2*b+1]
		if end < prevEnd || end > int64(len(dd)) {
			return nil, fmt.Errorf("bat: block postings: _blkdir offset %d out of range (prev %d, data %d)", end, prevEnd, len(dd))
		}
		prevEnd = end
	}
	if nblocks > 0 && prevEnd != int64(len(dd)) {
		return nil, fmt.Errorf("bat: block postings: _blkdoc has %d trailing bytes", int64(len(dd))-prevEnd)
	}
	prevEnd = 0
	for b := 0; b < nblocks; b++ {
		end := bbd[2*b]
		if end < prevEnd || end > int64(len(bel)) {
			return nil, fmt.Errorf("bat: block postings: _blkbdir offset %d out of range (prev %d, data %d)", end, prevEnd, len(bel))
		}
		prevEnd = end
	}
	return &BlockPostings{
		start: starts, blkStart: bs, blkDir: bd, docData: dd,
		belDir: bbd, belData: bel, maxb: maxb, nterms: nterms,
	}, nil
}

// blockViewMemo is a validated view plus the exact seven BATs it was
// built from; it hangs off the _blkdoc BAT (see BAT.blockView) so the
// O(blocks) validation of NewBlockPostings runs once per segment, not
// once per query, and is dropped with the segment itself.
type blockViewMemo struct {
	view                                           *BlockPostings
	start, blkStart, blkDir, blkBDir, blkBel, maxb *BAT
}

func sameInt64s(a, b []int64) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

func sameBytes(a, b []byte) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

func sameFloat64s(a, b []float64) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

func intBacked(b *BAT) bool   { return b != nil && b.Tail != nil && b.Tail.Kind() == KindInt }
func bytesBacked(b *BAT) bool { return b != nil && b.Tail != nil && b.Tail.Kind() == KindBytes }
func fltBacked(b *BAT) bool   { return b != nil && b.Tail != nil && b.Tail.Kind() == KindFloat }

// cachedBlockPostings is NewBlockPostings with per-segment memoization:
// when the same seven columns were validated before — same BATs, still
// handing out the same backing storage — the previous view is reused.
// Any column swap, reallocation or growth misses the memo and falls back
// to a full validation, so a hit can never serve stale offsets.
func cachedBlockPostings(start, blkStart, blkDir, blkDoc, blkBDir, blkBel, maxBel *BAT) (*BlockPostings, error) {
	if blkDoc == nil || blkDoc.Tail == nil {
		return NewBlockPostings(start, blkStart, blkDir, blkDoc, blkBDir, blkBel, maxBel)
	}
	if m := blkDoc.blockView.Load(); m != nil &&
		m.start == start && m.blkStart == blkStart && m.blkDir == blkDir &&
		m.blkBDir == blkBDir && m.blkBel == blkBel && m.maxb == maxBel {
		bp := m.view
		if bytesBacked(blkDoc) && sameBytes(bp.docData, blkDoc.Tail.Bytes()) &&
			intBacked(start) && sameInt64s(bp.start, start.Tail.Ints()) &&
			intBacked(blkStart) && sameInt64s(bp.blkStart, blkStart.Tail.Ints()) &&
			intBacked(blkDir) && sameInt64s(bp.blkDir, blkDir.Tail.Ints()) &&
			intBacked(blkBDir) && sameInt64s(bp.belDir, blkBDir.Tail.Ints()) &&
			bytesBacked(blkBel) && sameBytes(bp.belData, blkBel.Tail.Bytes()) &&
			fltBacked(maxBel) && sameFloat64s(bp.maxb, maxBel.Tail.Floats()) {
			return bp, nil
		}
	}
	bp, err := NewBlockPostings(start, blkStart, blkDir, blkDoc, blkBDir, blkBel, maxBel)
	if err != nil {
		return nil, err
	}
	blkDoc.blockView.Store(&blockViewMemo{
		view: bp, start: start, blkStart: blkStart, blkDir: blkDir,
		blkBDir: blkBDir, blkBel: blkBel, maxb: maxBel,
	})
	return bp, nil
}

// NTerms reports the number of terms covered by the view.
func (bp *BlockPostings) NTerms() int { return bp.nterms }

// TermRange reports term t's global posting range [lo, hi).
func (bp *BlockPostings) TermRange(t int) (lo, hi int) {
	return int(bp.start[t]), int(bp.start[t+1])
}

// TermBlocks reports term t's block index range [blo, bhi).
func (bp *BlockPostings) TermBlocks(t int) (blo, bhi int) {
	return int(bp.blkStart[t]), int(bp.blkStart[t+1])
}

// BlockSpan reports the global posting positions [plo, phi) covered by
// block b of term t.
func (bp *BlockPostings) BlockSpan(t, b int) (plo, phi int) {
	plo = int(bp.start[t]) + (b-int(bp.blkStart[t]))*PostingsBlockSize
	phi = plo + PostingsBlockSize
	if hi := int(bp.start[t+1]); phi > hi {
		phi = hi
	}
	return plo, phi
}

// BlockLast reports the last doc id of block b.
func (bp *BlockPostings) BlockLast(b int) OID { return OID(bp.blkDir[2*b]) }

// BlockMax reports block b's conservative max-belief bound (the upward
// quantized float32 stored at encode time).
func (bp *BlockPostings) BlockMax(b int) float64 {
	return float64(math.Float32frombits(uint32(bp.belDir[2*b+1])))
}

// MaxBelief reports term t's exact maximum belief.
func (bp *BlockPostings) MaxBelief(t int) float64 { return bp.maxb[t] }

// DecodeDocBlock decodes block b of term t into docs (and, when tfs is
// non-nil, term frequencies). Both slices must hold the block's posting
// count (BlockSpan). Returns the count or an error on corruption.
func (bp *BlockPostings) DecodeDocBlock(t, b int, docs []OID, tfs []int64) (int, error) {
	plo, phi := bp.BlockSpan(t, b)
	n := phi - plo
	if n <= 0 {
		return 0, fmt.Errorf("bat: decode of empty block %d", b)
	}
	lo := int64(0)
	if b > 0 {
		lo = bp.blkDir[2*(b-1)+1]
	}
	hi := bp.blkDir[2*b+1]
	data := bp.docData[lo:hi]
	prev := int64(-1)
	if b > int(bp.blkStart[t]) {
		prev = bp.blkDir[2*(b-1)] // previous block's lastDoc
	}
	if len(data) < 1 {
		return 0, fmt.Errorf("bat: doc block %d empty", b)
	}
	switch data[0] {
	case blockFmtVarint:
		// Batched varint kernel: the whole block decodes in one loop with
		// the varints inlined — no per-posting binary.Uvarint calls. Doc
		// deltas and tfs are single-byte in the overwhelmingly common
		// case, so each iteration first tries the two-single-byte fast
		// path (one combined bounds check, no continuation-bit loops) and
		// only multi-byte values take the generic path.
		pos := 1
		for i := 0; i < n; i++ {
			var delta, tf uint64
			if pos+2 <= len(data) && data[pos]|data[pos+1] < 0x80 {
				delta, tf = uint64(data[pos]), uint64(data[pos+1])
				pos += 2
			} else {
				var w int
				delta, w = binary.Uvarint(data[pos:])
				if w <= 0 {
					return 0, fmt.Errorf("bat: doc block %d: bad delta at posting %d", b, i)
				}
				pos += w
				tf, w = binary.Uvarint(data[pos:])
				if w <= 0 {
					return 0, fmt.Errorf("bat: doc block %d: bad tf at posting %d", b, i)
				}
				pos += w
			}
			if delta == 0 {
				return 0, fmt.Errorf("bat: doc block %d: bad delta at posting %d", b, i)
			}
			next := prev + int64(delta)
			if next < 0 {
				return 0, fmt.Errorf("bat: doc block %d: doc id overflow", b)
			}
			prev = next
			docs[i] = OID(next)
			if tfs != nil {
				tfs[i] = int64(tf)
			}
		}
	case blockFmtBitpack:
		if len(data) < 3 {
			return 0, fmt.Errorf("bat: doc block %d: truncated bitpack header", b)
		}
		dw, tw := int(data[1]), int(data[2])
		if dw < 1 || dw > 56 || tw > 56 {
			return 0, fmt.Errorf("bat: doc block %d: bad bit widths %d/%d", b, dw, tw)
		}
		var scratch [PostingsBlockSize]uint64
		used, err := unpackInto(data[3:], n, dw, scratch[:n])
		if err != nil {
			return 0, fmt.Errorf("bat: doc block %d: %w", b, err)
		}
		for i := 0; i < n; i++ {
			if scratch[i] == 0 {
				return 0, fmt.Errorf("bat: doc block %d: zero delta at posting %d", b, i)
			}
			next := prev + int64(scratch[i])
			if next < 0 {
				return 0, fmt.Errorf("bat: doc block %d: doc id overflow", b)
			}
			prev = next
			docs[i] = OID(next)
		}
		if tfs != nil {
			if _, err := unpackInto(data[3+used:], n, tw, scratch[:n]); err != nil {
				return 0, fmt.Errorf("bat: doc block %d: %w", b, err)
			}
			for i := 0; i < n; i++ {
				tfs[i] = int64(scratch[i])
			}
		}
	default:
		return 0, fmt.Errorf("bat: doc block %d: unknown format %d", b, data[0])
	}
	if got := OID(bp.blkDir[2*b]); docs[n-1] != got {
		return 0, fmt.Errorf("bat: doc block %d: last doc %d disagrees with directory %d", b, docs[n-1], got)
	}
	return n, nil
}

// TermDict decodes term t's belief header, returning the dictionary
// (nil for raw coding) and the offset where the first block's
// per-posting region starts. dict is appended into dst to allow scratch
// reuse.
func (bp *BlockPostings) TermDict(t int, dst []float64) (dict []float64, dataOff int64, err error) {
	blo := bp.blkStart[t]
	base := int64(0)
	if blo > 0 {
		base = bp.belDir[2*(blo-1)]
	}
	data := bp.belData[base:]
	k, w := binary.Uvarint(data)
	if w <= 0 {
		return nil, 0, fmt.Errorf("bat: belief header of term %d corrupt", t)
	}
	if k == 0 {
		return nil, base + int64(w), nil
	}
	if k > maxBeliefDict || int64(w)+int64(k)*8 > int64(len(data)) {
		return nil, 0, fmt.Errorf("bat: belief dictionary of term %d out of range (k=%d)", t, k)
	}
	dict = dst[:0]
	pos := w
	for i := uint64(0); i < k; i++ {
		dict = append(dict, math.Float64frombits(binary.LittleEndian.Uint64(data[pos:])))
		pos += 8
	}
	return dict, base + int64(pos), nil
}

// DecodeBelBlock decodes block b of term t's beliefs into bels (length
// ≥ the block's posting count). dict and dataOff come from TermDict;
// pass the same values for every block of the term.
func (bp *BlockPostings) DecodeBelBlock(t, b int, dict []float64, dataOff int64, bels []float64) error {
	plo, phi := bp.BlockSpan(t, b)
	n := phi - plo
	lo := dataOff
	if b > int(bp.blkStart[t]) {
		lo = bp.belDir[2*(b-1)]
	}
	hi := bp.belDir[2*b]
	if lo < 0 || hi < lo || hi > int64(len(bp.belData)) {
		return fmt.Errorf("bat: belief block %d region [%d,%d) out of range", b, lo, hi)
	}
	data := bp.belData[lo:hi]
	if dict == nil {
		if len(data) != n*8 {
			return fmt.Errorf("bat: raw belief block %d: %d bytes for %d postings", b, len(data), n)
		}
		for i := 0; i < n; i++ {
			bels[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
		return nil
	}
	// Inlined dict-index varints: indices are < maxBeliefDict (4096), so
	// every index is 1 or 2 bytes — decode both shapes branch-cheap
	// without a per-posting binary.Uvarint call.
	pos := 0
	for i := 0; i < n; i++ {
		var idx uint64
		if pos < len(data) && data[pos] < 0x80 {
			idx = uint64(data[pos])
			pos++
		} else if pos+2 <= len(data) && data[pos+1] < 0x80 {
			idx = uint64(data[pos]&0x7f) | uint64(data[pos+1])<<7
			pos += 2
		} else {
			var w int
			idx, w = binary.Uvarint(data[pos:])
			if w <= 0 {
				return fmt.Errorf("bat: belief block %d: bad dict index at posting %d", b, i)
			}
			pos += w
		}
		if idx >= uint64(len(dict)) {
			return fmt.Errorf("bat: belief block %d: bad dict index at posting %d", b, i)
		}
		bels[i] = dict[idx]
	}
	if pos != len(data) {
		return fmt.Errorf("bat: belief block %d: %d trailing bytes", b, len(data)-pos)
	}
	return nil
}

// seekBlock returns the first block of term t whose lastDoc is ≥ d
// (term t's block containing d, if any), or bhi when every block ends
// before d.
func (bp *BlockPostings) seekBlock(t int, d OID) int {
	blo, bhi := int(bp.blkStart[t]), int(bp.blkStart[t+1])
	for blo < bhi {
		mid := (blo + bhi) / 2
		if OID(bp.blkDir[2*mid]) < d {
			blo = mid + 1
		} else {
			bhi = mid
		}
	}
	return blo
}

// BlockSegColumns holds the seven segment columns of the block-compressed
// postings layout, in storage order: _poststart, _blkstart, _blkdir,
// _blkdoc, _blkbdir, _blkbel, _maxbel. All heads are dense void.
type BlockSegColumns struct {
	Start, BlkStart, BlkDir, BlkDoc, BlkBDir, BlkBel, MaxBel *BAT
}

// EncodeBlockPostings re-encodes flat postings columns into the block
// layout. postTF may be nil (term frequencies then encode as 1; the scan
// never reads them back). Beliefs survive bit-exact, _maxbel is the exact
// per-term maximum recomputed from the beliefs themselves, and the output
// is validated through NewBlockPostings before being returned, so a
// successful encode is always loadable.
func EncodeBlockPostings(start, postDoc, postTF, postBel *BAT) (*BlockSegColumns, error) {
	pv, err := newPostingsView(start, postDoc, postBel, nil)
	if err != nil {
		return nil, err
	}
	var tfs []int64
	if postTF != nil {
		if postTF.Tail.Kind() != KindInt {
			return nil, fmt.Errorf("bat: blockenc: tf tail must be int, got %s", postTF.Tail.Kind())
		}
		tfs = postTF.Tail.Ints()
		if len(tfs) != len(pv.docs) {
			return nil, fmt.Errorf("bat: blockenc: %d tfs for %d postings", len(tfs), len(pv.docs))
		}
	}
	nterms := pv.nterms()
	enc := NewBlockPostingsEncoder(nterms)
	bele := NewBlockBeliefsEncoder()
	maxb := make([]float64, 0, nterms)
	var ones []int64
	for t := 0; t < nterms; t++ {
		lo, hi := int(pv.start[t]), int(pv.start[t+1])
		tf := tfs
		if tf != nil {
			tf = tfs[lo:hi]
		} else {
			for len(ones) < hi-lo {
				ones = append(ones, 1)
			}
			tf = ones[:hi-lo]
		}
		if err := enc.AddTerm(pv.docs[lo:hi], tf); err != nil {
			return nil, fmt.Errorf("bat: blockenc: term %d: %w", t, err)
		}
		maxb = append(maxb, bele.AddTerm(pv.bels[lo:hi]))
	}
	mk := func(tail *Column) (*BAT, error) {
		return FromColumns(NewVoid(0, tail.Len()), tail, true, false, true, false)
	}
	cols := &BlockSegColumns{Start: start}
	tails := []struct {
		dst **BAT
		c   *Column
	}{
		{&cols.BlkStart, ColumnOfInts(enc.BlkStart)},
		{&cols.BlkDir, ColumnOfInts(enc.BlkDir)},
		{&cols.BlkDoc, ColumnOfBytes(enc.Data)},
		{&cols.BlkBDir, ColumnOfInts(bele.BelDir)},
		{&cols.BlkBel, ColumnOfBytes(bele.Data)},
		{&cols.MaxBel, ColumnOfFloats(maxb)},
	}
	for _, tl := range tails {
		b, err := mk(tl.c)
		if err != nil {
			return nil, err
		}
		*tl.dst = b
	}
	if _, err := NewBlockPostings(cols.Start, cols.BlkStart, cols.BlkDir, cols.BlkDoc, cols.BlkBDir, cols.BlkBel, cols.MaxBel); err != nil {
		return nil, fmt.Errorf("bat: blockenc: self-check: %w", err)
	}
	return cols, nil
}
