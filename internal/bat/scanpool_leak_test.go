//go:build pooldebug

package bat

import (
	"math/rand"
	"testing"
)

// TestScanScratchPoolNoLeaks drives raw and block scans over success,
// parallel-partition, and corrupt-payload error paths and requires every
// borrowed scan scratch to be back in the pool afterwards. Runs only
// under -tags pooldebug.
func TestScanScratchPoolNoLeaks(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	si := mkSynthIndex(rng, 10, 2500, 5, 4)
	raw := segSplit(si, []int{900, 2500}, false)
	blk := blockSegs(t, raw)
	base := LiveScanScratch()

	for round := 0; round < 10; round++ {
		query := []OID{OID(rng.Intn(11)), OID(rng.Intn(11)), OID(rng.Intn(11))}
		for _, segs := range [][]PostingsSeg{raw, blk} {
			if _, err := PrunedTopKSegs(segs, query, nil, 0.4, 1+rng.Intn(20), si.domain, nil); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			old := SetParallelThreshold(1)
			_, err := PrunedTopKSegs(segs, query, []float64{1, 2, 0}, 0.4, 5, si.domain, nil)
			SetParallelThreshold(old)
			if err != nil {
				t.Fatalf("round %d parallel: %v", round, err)
			}
		}
	}

	// Error path: corrupt block payload must still release on the way out.
	bad := blockSegs(t, raw)
	data := bad[0].BlkDoc.Tail.Bytes()
	for i := range data {
		data[i] = 0xff
	}
	for _, thr := range []int{0, 1} {
		old := SetParallelThreshold(thr)
		_, err := PrunedTopKSegs(bad, []OID{0, 1, 2}, nil, 0.4, 5, si.domain, nil)
		SetParallelThreshold(old)
		if err == nil {
			t.Fatal("corrupt scan returned no error")
		}
	}

	if live := LiveScanScratch(); live != base {
		t.Fatalf("leaked %d scan scratch sets", live-base)
	}
}
