package bat

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// BAT is a Binary Association Table: an ordered collection of BUNs
// (head, tail) pairs. BATs are the only bulk data structure of the physical
// layer; all Moa values are decomposed into them.
//
// Property flags (HSorted, TSorted, HKey, TKey, HDense) mirror Monet's BAT
// descriptors and are used by the operators to pick faster algorithms. The
// flags are conservative: a false flag means "unknown", not "violated".
type BAT struct {
	Head *Column
	Tail *Column

	HSorted bool // head values are non-decreasing
	TSorted bool // tail values are non-decreasing
	HKey    bool // head values are unique
	TKey    bool // tail values are unique

	// hash is the lazily built head hash index. It is stored atomically so
	// that concurrent readers may build and share it without a data race
	// (the BAT contents themselves are immutable during reads; Append
	// invalidates the index).
	hash atomic.Pointer[hashIndex]

	// blockView memoizes the validated block-postings view of the segment
	// this BAT is the _blkdoc column of (postcodec.go). Like hash it is
	// shared atomically between concurrent readers and invalidated by
	// Append; the memo dies with the BAT, so retired segments are not
	// pinned by any global cache.
	blockView atomic.Pointer[blockViewMemo]

	// Persistence state used by the BAT buffer pool (internal/storage).
	// dirty is set by Append and cleared by the pool after a checkpoint
	// writes the BAT's heap files; pins counts callers that hold a
	// reference obtained from the pool, which will not evict (unmap) a
	// BAT while pins > 0 or dirty. Views (Reverse, Mirror, Slice) are
	// fresh descriptors and do not share these bits; only the canonical
	// BAT registered with the pool is tracked.
	dirty atomic.Bool
	pins  atomic.Int32
}

// Dirty reports whether the BAT has been mutated since the buffer pool
// last checkpointed it (or since creation).
func (b *BAT) Dirty() bool { return b.dirty.Load() }

// MarkDirty flags the BAT as needing a rewrite at the next checkpoint.
// Append calls it automatically; callers that mutate a column's backing
// storage directly must call it themselves.
func (b *BAT) MarkDirty() { b.dirty.Store(true) }

// ClearDirty resets the dirty flag; the buffer pool calls it after the
// BAT's heap files have been durably written.
func (b *BAT) ClearDirty() { b.dirty.Store(false) }

// Pin takes a reference that prevents the buffer pool from evicting the
// BAT's backing memory. Every Pin must be matched by a Release.
func (b *BAT) Pin() { b.pins.Add(1) }

// Release drops a pin taken with Pin.
func (b *BAT) Release() {
	if b.pins.Add(-1) < 0 {
		panic("bat: Release without matching Pin")
	}
}

// PinCount reports the number of outstanding pins.
func (b *BAT) PinCount() int { return int(b.pins.Load()) }

// New creates an empty BAT with the given head and tail kinds.
func New(hk, tk Kind) *BAT {
	b := &BAT{Head: NewColumn(hk), Tail: NewColumn(tk)}
	if hk == KindVoid {
		b.HSorted, b.HKey = true, true
	}
	if tk == KindVoid {
		b.TSorted, b.TKey = true, true
	}
	return b
}

// NewDense creates a BAT with a void head [base, base+n) and an empty
// materialised tail of kind tk; the caller appends n tail values.
func NewDense(base OID, tk Kind) *BAT {
	b := &BAT{Head: NewVoid(base, 0), Tail: NewColumn(tk)}
	b.HSorted, b.HKey = true, true
	return b
}

// Len reports the number of BUNs.
func (b *BAT) Len() int { return b.Head.Len() }

// HDense reports whether the head is a dense void sequence.
func (b *BAT) HDense() bool { return b.Head.Kind() == KindVoid }

// Append inserts a BUN. It invalidates the hash index and (conservatively)
// the sortedness/key flags on materialised columns.
func (b *BAT) Append(h, t any) error {
	if err := b.Head.Append(h); err != nil {
		return err
	}
	if err := b.Tail.Append(t); err != nil {
		return err
	}
	b.hash.Store(nil)
	b.blockView.Store(nil)
	b.dirty.Store(true)
	if b.Head.Kind() != KindVoid {
		b.HSorted, b.HKey = false, false
	}
	if b.Tail.Kind() != KindVoid {
		b.TSorted, b.TKey = false, false
	}
	return nil
}

// MustAppend is Append that panics on a type mismatch; used by internal
// builders whose types are known statically.
func (b *BAT) MustAppend(h, t any) {
	if err := b.Append(h, t); err != nil {
		panic(err)
	}
}

// AppendBUNs bulk-appends all BUNs of o (same column kinds required).
func (b *BAT) AppendBUNs(o *BAT) error {
	for i := 0; i < o.Len(); i++ {
		if err := b.Append(o.Head.Get(i), o.Tail.Get(i)); err != nil {
			return err
		}
	}
	return nil
}

// Reverse returns a view with head and tail swapped. O(1): columns are
// shared, so the result must be treated as read-only (all operators do).
func (b *BAT) Reverse() *BAT {
	return &BAT{
		Head: b.Tail, Tail: b.Head,
		HSorted: b.TSorted, TSorted: b.HSorted,
		HKey: b.TKey, TKey: b.HKey,
	}
}

// Mirror returns [head, head]: both columns are the head column.
func (b *BAT) Mirror() *BAT {
	return &BAT{
		Head: b.Head, Tail: b.Head,
		HSorted: b.HSorted, TSorted: b.HSorted,
		HKey: b.HKey, TKey: b.HKey,
	}
}

// Mark returns [head, void(base..)]: it renumbers the BUNs with fresh dense
// OIDs, the fundamental operator for introducing intermediate identities
// when flattening nested structures.
func (b *BAT) Mark(base OID) *BAT {
	return &BAT{
		Head: b.Head, Tail: NewVoid(base, b.Len()),
		HSorted: b.HSorted, TSorted: true,
		HKey: b.HKey, TKey: true,
	}
}

// Clone returns a deep copy (hash index not copied).
func (b *BAT) Clone() *BAT {
	return &BAT{
		Head: b.Head.clone(), Tail: b.Tail.clone(),
		HSorted: b.HSorted, TSorted: b.TSorted,
		HKey: b.HKey, TKey: b.TKey,
	}
}

// Slice returns BUNs [lo, hi) as a new BAT.
func (b *BAT) Slice(lo, hi int) (*BAT, error) {
	if lo < 0 || hi > b.Len() || lo > hi {
		return nil, fmt.Errorf("bat: slice [%d,%d) out of range 0..%d", lo, hi, b.Len())
	}
	return &BAT{
		Head: b.Head.slice(lo, hi), Tail: b.Tail.slice(lo, hi),
		HSorted: b.HSorted, TSorted: b.TSorted,
		HKey: b.HKey, TKey: b.TKey,
	}, nil
}

// Fetch returns the BUN at position i.
func (b *BAT) Fetch(i int) (h, t any, err error) {
	if i < 0 || i >= b.Len() {
		return nil, nil, fmt.Errorf("bat: fetch position %d out of range 0..%d", i, b.Len()-1)
	}
	return b.Head.Get(i), b.Tail.Get(i), nil
}

// Find performs a point lookup: the tail value of the first BUN whose head
// equals v. Uses the hash index (built on demand) for materialised heads and
// arithmetic for void heads. Returns ok=false if absent.
func (b *BAT) Find(v any) (any, bool) {
	if b.HDense() {
		o, okc := toOID(v)
		if !okc {
			return nil, false
		}
		i := int(int64(o) - int64(b.Head.Base()))
		if i < 0 || i >= b.Len() {
			return nil, false
		}
		return b.Tail.Get(i), true
	}
	h := b.ensureHash()
	i, ok := h.first(b.Head, v)
	if !ok {
		return nil, false
	}
	return b.Tail.Get(i), true
}

// Exists reports whether any BUN has head v.
func (b *BAT) Exists(v any) bool {
	_, ok := b.Find(v)
	return ok
}

// take builds a new BAT from the rows of b at idx, propagating no flags
// except head density facts recomputed by the caller.
func (b *BAT) take(idx []int) *BAT {
	return &BAT{Head: b.Head.take(idx), Tail: b.Tail.take(idx)}
}

// String renders up to 20 BUNs, MIL-style.
func (b *BAT) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%s,%s]#%d{", b.Head.Kind(), b.Tail.Kind(), b.Len())
	n := b.Len()
	const maxShow = 20
	for i := 0; i < n && i < maxShow; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "<%s,%s>", FormatValue(b.Head.Get(i)), FormatValue(b.Tail.Get(i)))
	}
	if n > maxShow {
		fmt.Fprintf(&sb, ", …+%d", n-maxShow)
	}
	sb.WriteString("}")
	return sb.String()
}

// Validate checks internal consistency (column lengths, void density) and
// returns a descriptive error on violation. Used by tests and by storage
// after load.
func (b *BAT) Validate() error {
	if b.Head.Len() != b.Tail.Len() {
		return fmt.Errorf("bat: head length %d != tail length %d", b.Head.Len(), b.Tail.Len())
	}
	return nil
}
