package bat

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// blockSegs re-encodes raw segments into the block-compressed layout.
// The originals are left untouched, so a test can run both layouts over
// the same corpus and demand identical rankings.
func blockSegs(t *testing.T, segs []PostingsSeg) []PostingsSeg {
	t.Helper()
	out := make([]PostingsSeg, len(segs))
	for i, s := range segs {
		cols, err := EncodeBlockPostings(s.Start, s.Doc, nil, s.Bel)
		if err != nil {
			t.Fatalf("EncodeBlockPostings(seg %d): %v", i, err)
		}
		out[i] = PostingsSeg{
			Start:    cols.Start,
			MaxBel:   cols.MaxBel,
			BlkStart: cols.BlkStart,
			BlkDir:   cols.BlkDir,
			BlkDoc:   cols.BlkDoc,
			BlkBDir:  cols.BlkBDir,
			BlkBel:   cols.BlkBel,
		}
	}
	return out
}

// mustEqualRanking fails unless two rankings agree BUN for BUN, scores
// bit-for-bit included.
func mustEqualRanking(t *testing.T, label string, want, got *BAT) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("%s: %d vs %d hits", label, want.Len(), got.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if want.Head.OIDAt(i) != got.Head.OIDAt(i) || want.Tail.FloatAt(i) != got.Tail.FloatAt(i) {
			t.Fatalf("%s hit %d: want (%d,%v) got (%d,%v)", label, i,
				want.Head.OIDAt(i), want.Tail.FloatAt(i),
				got.Head.OIDAt(i), got.Tail.FloatAt(i))
		}
	}
}

// TestPrunedTopKSegsBlockMatchesRaw pins the tentpole differential
// guarantee: the block-compressed scan returns BUN-for-BUN (ties
// included) the raw exhaustive-equivalent ranking, for random corpora
// with manufactured ties, duplicate and OOV query terms, unweighted
// (domain fill) and weighted modes, arbitrary segmentations, and lists
// that mix raw and block segments.
func TestPrunedTopKSegsBlockMatchesRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const def = 0.4
	for round := 0; round < 60; round++ {
		ndocs := 1 + rng.Intn(300)
		nterms := 2 + rng.Intn(30)
		si := mkSynthIndex(rng, nterms, ndocs, 6, 3)

		nseg := 1 + rng.Intn(5)
		cuts := map[int]bool{ndocs: true}
		for len(cuts) < nseg {
			cuts[1+rng.Intn(ndocs)] = true
		}
		var bounds []int
		for c := range cuts {
			bounds = append(bounds, c)
		}
		sort.Ints(bounds)
		raw := segSplit(si, bounds, rng.Intn(2) == 0)
		blk := blockSegs(t, raw)

		k := 1 + rng.Intn(ndocs+3)
		qlen := 1 + rng.Intn(5)
		query := make([]OID, qlen)
		for i := range query {
			query[i] = OID(rng.Intn(nterms + 2)) // may exceed dict: OOV
		}
		var weights []float64
		if rng.Intn(2) == 0 {
			weights = make([]float64, qlen)
			for i := range weights {
				weights[i] = float64(rng.Intn(4))
			}
		}

		want, err := PrunedTopK(si.start, si.doc, si.bel, si.maxb, query, weights, def, k, si.domain)
		if err != nil {
			t.Fatalf("round %d: raw merged: %v", round, err)
		}
		got, err := PrunedTopKSegs(blk, query, weights, def, k, si.domain, nil)
		if err != nil {
			t.Fatalf("round %d: block: %v", round, err)
		}
		mustEqualRanking(t, fmt.Sprintf("round %d ", round)+"block", want, got)

		// Mixed layouts in one list: alternate raw/block per segment.
		mixed := make([]PostingsSeg, len(raw))
		for i := range mixed {
			if i%2 == 0 {
				mixed[i] = blk[i]
			} else {
				mixed[i] = raw[i]
			}
		}
		got, err = PrunedTopKSegs(mixed, query, weights, def, k, si.domain, nil)
		if err != nil {
			t.Fatalf("round %d: mixed: %v", round, err)
		}
		mustEqualRanking(t, fmt.Sprintf("round %d ", round)+"mixed", want, got)
	}
}

// TestPrunedTopKBlocksParallelMatchesSerial forces the document-range
// partitioned path (threshold lowered to 1) on a corpus large enough to
// span many blocks and demands the identical ranking to the default
// serial scan, raw and block alike. This exercises the partition-seek
// logic in scanBlockPartition (mid-block doc bounds) specifically.
func TestPrunedTopKBlocksParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const def = 0.4
	si := mkSynthIndex(rng, 12, 4000, 6, 5)
	raw := segSplit(si, []int{1500, 4000}, false)
	blk := blockSegs(t, raw)

	for round := 0; round < 25; round++ {
		k := 1 + rng.Intn(40)
		qlen := 1 + rng.Intn(5)
		query := make([]OID, qlen)
		for i := range query {
			query[i] = OID(rng.Intn(14))
		}
		var weights []float64
		if rng.Intn(2) == 0 {
			weights = make([]float64, qlen)
			for i := range weights {
				weights[i] = float64(rng.Intn(4))
			}
		}

		want, err := PrunedTopKSegs(raw, query, weights, def, k, si.domain, nil)
		if err != nil {
			t.Fatalf("round %d: raw serial: %v", round, err)
		}

		old := SetParallelThreshold(1)
		gotB, errB := PrunedTopKSegs(blk, query, weights, def, k, si.domain, nil)
		gotR, errR := PrunedTopKSegs(raw, query, weights, def, k, si.domain, nil)
		SetParallelThreshold(old)
		if errB != nil {
			t.Fatalf("round %d: block parallel: %v", round, errB)
		}
		if errR != nil {
			t.Fatalf("round %d: raw parallel: %v", round, errR)
		}
		mustEqualRanking(t, fmt.Sprintf("round %d ", round)+"block-par", want, gotB)
		mustEqualRanking(t, fmt.Sprintf("round %d ", round)+"raw-par", want, gotR)

		// Serial block scan too (default threshold keeps it serial at this size
		// only when postings are few; force it for determinism).
		old = SetParallelThreshold(1 << 30)
		gotS, errS := PrunedTopKSegs(blk, query, weights, def, k, si.domain, nil)
		SetParallelThreshold(old)
		if errS != nil {
			t.Fatalf("round %d: block serial: %v", round, errS)
		}
		mustEqualRanking(t, fmt.Sprintf("round %d ", round)+"block-serial", want, gotS)
	}
}

// TestBlockScanStatsCount pins that the compressed scan accounts its
// block decodes and block-max skips: a scan must decode at least one
// block, and the decoded+skipped total can never exceed the corpus
// block count per scan... it must stay plausible (non-negative deltas).
func TestBlockScanStatsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	si := mkSynthIndex(rng, 8, 3000, 5, 0)
	blk := blockSegs(t, segSplit(si, []int{3000}, false))

	d0, s0 := BlockScanStats()
	if _, err := PrunedTopKSegs(blk, []OID{0, 1, 2}, nil, 0.4, 5, si.domain, nil); err != nil {
		t.Fatalf("scan: %v", err)
	}
	d1, s1 := BlockScanStats()
	if d1 <= d0 {
		t.Fatalf("no blocks decoded: %d -> %d", d0, d1)
	}
	if s1 < s0 {
		t.Fatalf("skip counter went backwards: %d -> %d", s0, s1)
	}
}

// TestPrunedTopKSegsBlockCorruptErrors feeds a block segment whose
// directory validates but whose payload is corrupt: the scan must
// return an error, never panic, and never silently mis-rank.
func TestPrunedTopKSegsBlockCorruptErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	si := mkSynthIndex(rng, 6, 400, 5, 0)
	blk := blockSegs(t, segSplit(si, []int{400}, false))

	// Corrupt the doc payload in place: flip bytes until validation still
	// passes but decode fails somewhere. Zeroing the whole payload is the
	// bluntest such corruption.
	data := blk[0].BlkDoc.Tail.Bytes()
	for i := range data {
		data[i] = 0xff
	}
	_, err := PrunedTopKSegs(blk, []OID{0, 1, 2, 3}, nil, 0.4, 5, si.domain, nil)
	if err == nil {
		t.Fatal("corrupt block payload scanned without error")
	}
}
