package moa

import (
	"strings"
	"testing"
)

// mkPeopleDB builds a small SET<TUPLE> collection used across tests.
func mkPeopleDB(t testing.TB) *Database {
	t.Helper()
	db := NewDatabase()
	err := db.DefineFromSource(`
		define People as SET<TUPLE<
			Atomic<str>: name,
			Atomic<int>: age,
			Atomic<flt>: score,
			SET<Atomic<flt>>: grades
		>>;`)
	if err != nil {
		t.Fatal(err)
	}
	rows := []map[string]any{
		{"name": "ada", "age": 30, "score": 0.9, "grades": []any{1.0, 2.0, 3.0}},
		{"name": "bob", "age": 20, "score": 0.5, "grades": []any{4.0}},
		{"name": "cy", "age": 40, "score": 0.7, "grades": []any{}},
		{"name": "dee", "age": 25, "score": 0.8, "grades": []any{5.0, 5.0}},
	}
	for _, r := range rows {
		if _, err := db.Insert("People", r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestParseDefine(t *testing.T) {
	stmts, err := ParseProgram(`define X as SET<TUPLE<Atomic<URL>: source, Atomic<Text>: annotation>>;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 1 || stmts[0].Define == nil {
		t.Fatalf("stmts = %+v", stmts)
	}
	d := stmts[0].Define
	if d.Name != "X" {
		t.Fatalf("name = %s", d.Name)
	}
	st, ok := d.Type.(*SetType)
	if !ok {
		t.Fatalf("type = %T", d.Type)
	}
	tt := st.Elem.(*TupleType)
	if len(tt.Names) != 2 || tt.Names[0] != "source" || !tt.Types[0].Equal(URLType) {
		t.Fatalf("tuple = %v", tt)
	}
}

func TestParseDefineErrors(t *testing.T) {
	bad := []string{
		`define X as SET<TUPLE<Atomic<URL>: a, Atomic<URL>: a>>;`, // dup field
		`define X as SET<TUPLE<Atomic<Bogus>: a>>;`,               // unknown atom
		`define X as SET<NOSUCH<int>>;`,                           // unknown structure
		`define X SET<Atomic<int>>;`,                              // missing as
		`define X as SET<Atomic<int>>`,                            // missing ;
	}
	for _, src := range bad {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q) should fail", src)
		}
	}
}

func TestParseQueryShapes(t *testing.T) {
	good := []string{
		`map[sum(THIS)](map[THIS.score](People));`,
		`select[THIS.age > 21 and THIS.age <= 40](People)`,
		`join[THIS1.name = THIS2.owner](A, B);`,
		`map[TUPLE<n: THIS.name, s: THIS.score * 2.0>](People);`,
		`count(People);`,
		`map[getBL(THIS.annotation, query, stats)](Lib);`,
		`select[not (THIS.age = 3)](People);`,
	}
	for _, src := range good {
		if _, err := ParseQuery(src); err != nil {
			t.Errorf("ParseQuery(%q): %v", src, err)
		}
	}
	bad := []string{
		`map[THIS](People)(extra);`,
		`map(People);`,
		`select[THIS.age >](People);`,
		`join[x](OnlyOne);`,
		`1 +;`,
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) should fail", src)
		}
	}
}

func TestCheckTypes(t *testing.T) {
	db := mkPeopleDB(t)
	env := &CheckEnv{DB: db}
	cases := []struct {
		src  string
		want string
	}{
		{`People;`, "SET<TUPLE<str: name, int: age, flt: score, SET<flt>: grades>>"},
		{`map[THIS.score](People);`, "SET<flt>"},
		{`map[THIS.age * 2](People);`, "SET<int>"},
		{`map[sum(THIS.grades)](People);`, "SET<flt>"},
		{`map[count(THIS.grades)](People);`, "SET<int>"},
		{`select[THIS.age > 21](People);`, "SET<TUPLE<str: name, int: age, flt: score, SET<flt>: grades>>"},
		{`count(People);`, "int"},
		{`sum(map[THIS.score](People));`, "flt"},
		{`map[TUPLE<a: THIS.name, b: THIS.score>](People);`, "SET<TUPLE<str: a, flt: b>>"},
	}
	for _, c := range cases {
		e, err := ParseQuery(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		typ, err := Check(e, env)
		if err != nil {
			t.Fatalf("check %q: %v", c.src, err)
		}
		if typ.String() != c.want {
			t.Errorf("type of %q = %s, want %s", c.src, typ, c.want)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	db := mkPeopleDB(t)
	env := &CheckEnv{DB: db}
	bad := []string{
		`THIS;`,                               // THIS outside map
		`map[THIS.bogus](People);`,            // unknown field
		`select[THIS.age](People);`,           // non-bool predicate
		`sum(People);`,                        // non-numeric elements
		`map[THIS.name * 2](People);`,         // string arithmetic
		`Unknown;`,                            // unknown set
		`map[THIS1.name](People);`,            // THIS1 outside join
		`map[nosuchfn(THIS.score)](People);`,  // unknown function
		`select[THIS.name and true](People);`, // and on non-bool
	}
	for _, src := range bad {
		e, err := ParseQuery(src)
		if err != nil {
			continue // parse error also acceptable
		}
		if _, err := Check(e, env); err == nil {
			t.Errorf("Check(%q) should fail", src)
		}
	}
}

func TestInsertValidation(t *testing.T) {
	db := mkPeopleDB(t)
	if _, err := db.Insert("People", map[string]any{"name": "x"}); err == nil {
		t.Fatal("missing fields should fail")
	}
	if _, err := db.Insert("People", map[string]any{
		"name": "x", "age": 1, "score": 0.1, "grades": []any{}, "extra": 1,
	}); err == nil {
		t.Fatal("unknown field should fail")
	}
	if _, err := db.Insert("Nope", map[string]any{}); err == nil {
		t.Fatal("unknown set should fail")
	}
	if _, err := db.Insert("People", "not a map"); err == nil {
		t.Fatal("non-tuple value should fail")
	}
	if err := db.Define("People", &SetType{Elem: IntType}); err == nil {
		t.Fatal("duplicate define should fail")
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	db := mkPeopleDB(t)
	src := db.SchemaSource()
	db2 := NewDatabase()
	if err := db2.DefineFromSource(src); err != nil {
		t.Fatalf("re-applying schema %q: %v", src, err)
	}
	d1, _ := db.Set("People")
	d2, _ := db2.Set("People")
	if !d1.Type.Equal(d2.Type) {
		t.Fatalf("schema round trip mismatch: %s vs %s", d1.Type, d2.Type)
	}
}

func TestEngineProjectionAndSelect(t *testing.T) {
	db := mkPeopleDB(t)
	eng := NewEngine(db)

	res, err := eng.Query(`map[THIS.name](People);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || res.Rows[0].Value.(string) != "ada" {
		t.Fatalf("projection = %+v", res.Rows)
	}

	res, err = eng.Query(`select[THIS.age > 21](People);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("select rows = %d, want 3", len(res.Rows))
	}
	first := res.Rows[0].Value.(map[string]any)
	if first["name"].(string) != "ada" {
		t.Fatalf("first = %v", first)
	}

	res, err = eng.Query(`map[THIS.name](select[THIS.age > 21 and THIS.score < 0.8](People));`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Value.(string) != "cy" {
		t.Fatalf("combined = %+v", res.Rows)
	}
}

func TestEngineArithmeticAndTuples(t *testing.T) {
	db := mkPeopleDB(t)
	eng := NewEngine(db)
	res, err := eng.Query(`map[TUPLE<n: THIS.name, doubled: THIS.score * 2.0>](People);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Rows[1].Value.(map[string]any)
	if v["n"].(string) != "bob" || v["doubled"].(float64) != 1.0 {
		t.Fatalf("tuple row = %v", v)
	}
}

func TestEngineNestedAggregates(t *testing.T) {
	db := mkPeopleDB(t)
	eng := NewEngine(db)
	res, err := eng.Query(`map[sum(THIS.grades)](People);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{6, 4, 0, 10}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, w := range want {
		row, ok := res.Find(res.Rows[i].OID)
		if !ok || row.Value.(float64) != w {
			t.Errorf("sum(grades)[%d] = %v, want %v", i, res.Rows[i].Value, w)
		}
	}
	res, err = eng.Query(`map[count(THIS.grades)](People);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantC := []int64{3, 1, 0, 2}
	for i, w := range wantC {
		if res.Rows[i].Value.(int64) != w {
			t.Errorf("count(grades)[%d] = %v, want %v", i, res.Rows[i].Value, w)
		}
	}
}

func TestEngineScalarAggregates(t *testing.T) {
	db := mkPeopleDB(t)
	eng := NewEngine(db)
	res, err := eng.Query(`count(People);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar.(int64) != 4 {
		t.Fatalf("count = %v", res.Scalar)
	}
	res, err = eng.Query(`sum(map[THIS.score](People));`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.Scalar.(float64) - 2.9; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %v", res.Scalar)
	}
	res, err = eng.Query(`count(select[THIS.age < 26](People));`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar.(int64) != 2 {
		t.Fatalf("count select = %v", res.Scalar)
	}
}

func TestEngineJoin(t *testing.T) {
	db := NewDatabase()
	err := db.DefineFromSource(`
		define A as SET<TUPLE<Atomic<str>: k, Atomic<int>: va>>;
		define B as SET<TUPLE<Atomic<str>: kb, Atomic<int>: vb>>;`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []map[string]any{{"k": "x", "va": 1}, {"k": "y", "va": 2}, {"k": "x", "va": 3}} {
		if _, err := db.Insert("A", r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []map[string]any{{"kb": "x", "vb": 10}, {"kb": "z", "vb": 20}} {
		if _, err := db.Insert("B", r); err != nil {
			t.Fatal(err)
		}
	}
	eng := NewEngine(db)
	res, err := eng.Query(`join[THIS1.k = THIS2.kb](A, B);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("join rows = %d, want 2 (%+v)", len(res.Rows), res.Rows)
	}
	for _, row := range res.Rows {
		v := row.Value.(map[string]any)
		if v["k"].(string) != "x" || v["vb"].(int64) != 10 {
			t.Fatalf("join row = %v", v)
		}
	}
	// projection over a join result
	res, err = eng.Query(`map[THIS.va](join[THIS1.k = THIS2.kb](A, B));`, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]bool{}
	for _, row := range res.Rows {
		got[row.Value.(int64)] = true
	}
	if !got[1] || !got[3] || len(got) != 2 {
		t.Fatalf("join projection = %v", got)
	}
}

func TestEngineParams(t *testing.T) {
	db := mkPeopleDB(t)
	eng := NewEngine(db)
	params := map[string]Param{
		"minage": {T: IntType, V: int64(24)},
	}
	res, err := eng.Query(`map[THIS.name](select[THIS.age >= minage](People));`, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("param select = %+v", res.Rows)
	}
	// set-valued parameter aggregated inside a map body
	params2 := map[string]Param{
		"bonus": {T: &SetType{Elem: FloatType}, V: []float64{0.5, 0.25}},
	}
	res, err = eng.Query(`map[THIS.score + sum(bonus)](People);`, params2)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Rows[0].Value.(float64); v < 1.649 || v > 1.651 {
		t.Fatalf("score+sum(bonus) = %v", v)
	}
}

func TestRewriteMapFusion(t *testing.T) {
	db := mkPeopleDB(t)
	src := `map[THIS * 2.0](map[THIS.score](People));`
	e, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(e, &CheckEnv{DB: db}); err != nil {
		t.Fatal(err)
	}
	r := Rewrite(e, DefaultOptions)
	m, ok := r.(*MapExpr)
	if !ok {
		t.Fatalf("rewritten = %T", r)
	}
	if _, stillNested := m.Src.(*MapExpr); stillNested {
		t.Fatalf("maps not fused: %s", r)
	}
	if !strings.Contains(r.String(), "THIS.score * 2") {
		t.Fatalf("fused body wrong: %s", r)
	}
}

func TestRewriteSelectFusion(t *testing.T) {
	db := mkPeopleDB(t)
	src := `select[THIS.age > 21](select[THIS.score > 0.6](People));`
	e, _ := ParseQuery(src)
	if _, err := Check(e, &CheckEnv{DB: db}); err != nil {
		t.Fatal(err)
	}
	r := Rewrite(e, DefaultOptions)
	s := r.(*SelectExpr)
	if _, nested := s.Src.(*SelectExpr); nested {
		t.Fatalf("selects not fused: %s", r)
	}
	// with fusion off, structure is preserved
	r2 := Rewrite(e, NoOptimize)
	if _, nested := r2.(*SelectExpr).Src.(*SelectExpr); !nested {
		t.Fatalf("NoOptimize should not fuse")
	}
}

func TestOptimizedMatchesUnoptimized(t *testing.T) {
	db := mkPeopleDB(t)
	queries := []string{
		`map[THIS * 2.0](map[THIS.score](People));`,
		`select[THIS.age > 21](select[THIS.score > 0.6](People));`,
		`map[sum(THIS.grades)](select[THIS.age < 41](People));`,
		`map[THIS + 1.0](map[THIS * 2.0](map[THIS.score](People)));`,
	}
	for _, q := range queries {
		opt := NewEngine(db)
		unopt := &Engine{DB: db, Opts: NoOptimize}
		r1, err := opt.Query(q, nil)
		if err != nil {
			t.Fatalf("optimized %q: %v", q, err)
		}
		r2, err := unopt.Query(q, nil)
		if err != nil {
			t.Fatalf("unoptimized %q: %v", q, err)
		}
		if len(r1.Rows) != len(r2.Rows) {
			t.Fatalf("%q: row counts %d vs %d", q, len(r1.Rows), len(r2.Rows))
		}
		for i := range r1.Rows {
			if r1.Rows[i].OID != r2.Rows[i].OID {
				t.Fatalf("%q: row %d OID %v vs %v", q, i, r1.Rows[i].OID, r2.Rows[i].OID)
			}
		}
	}
}

// Differential test: flattened executor vs tuple-at-a-time interpreter.
func TestFlattenedMatchesInterpreter(t *testing.T) {
	db := mkPeopleDB(t)
	queries := []string{
		`map[THIS.name](People);`,
		`map[THIS.score * 2.0 + 1.0](People);`,
		`select[THIS.age > 21](People);`,
		`map[sum(THIS.grades)](People);`,
		`map[count(THIS.grades)](People);`,
		`count(People);`,
		`sum(map[THIS.score](People));`,
		`map[THIS.name](select[THIS.score >= 0.7](People));`,
		`map[TUPLE<n: THIS.name, x: THIS.age + 1>](People);`,
	}
	for _, q := range queries {
		eng := NewEngine(db)
		fl, err := eng.Query(q, nil)
		if err != nil {
			t.Fatalf("flattened %q: %v", q, err)
		}
		ip := NewInterp(db, nil)
		in, err := ip.Query(q)
		if err != nil {
			t.Fatalf("interp %q: %v", q, err)
		}
		if fl.Scalar != nil || in.Scalar != nil {
			if !scalarEqual(fl.Scalar, in.Scalar) {
				t.Fatalf("%q: scalar %v vs %v", q, fl.Scalar, in.Scalar)
			}
			continue
		}
		if len(fl.Rows) != len(in.Rows) {
			t.Fatalf("%q: rows %d vs %d", q, len(fl.Rows), len(in.Rows))
		}
		for i := range fl.Rows {
			if fl.Rows[i].OID != in.Rows[i].OID {
				t.Fatalf("%q row %d: OID %v vs %v", q, i, fl.Rows[i].OID, in.Rows[i].OID)
			}
			if !valuesEqual(fl.Rows[i].Value, in.Rows[i].Value) {
				t.Fatalf("%q row %d: %#v vs %#v", q, i, fl.Rows[i].Value, in.Rows[i].Value)
			}
		}
	}
}

// valuesEqual compares materialised values with numeric tolerance.
func valuesEqual(a, b any) bool {
	if am, ok := a.(map[string]any); ok {
		bm, ok := b.(map[string]any)
		if !ok || len(am) != len(bm) {
			return false
		}
		for k, av := range am {
			if !valuesEqual(av, bm[k]) {
				return false
			}
		}
		return true
	}
	if as, ok := a.([]any); ok {
		bs, ok := b.([]any)
		if !ok || len(as) != len(bs) {
			return false
		}
		for i := range as {
			if !valuesEqual(as[i], bs[i]) {
				return false
			}
		}
		return true
	}
	af, aNum := numVal(a)
	bf, bNum := numVal(b)
	if aNum && bNum {
		d := af - bf
		return d < 1e-9 && d > -1e-9
	}
	return a == b
}

func TestCompiledMILIsReparseable(t *testing.T) {
	db := mkPeopleDB(t)
	eng := NewEngine(db)
	c, err := eng.Compile(`map[sum(THIS.grades)](select[THIS.age > 21](People));`, nil)
	if err != nil {
		t.Fatal(err)
	}
	milSrc := c.MIL()
	if milSrc == "" {
		t.Fatal("empty MIL program")
	}
	if !strings.Contains(milSrc, "join") && !strings.Contains(milSrc, "semijoin") {
		t.Fatalf("MIL program lacks joins:\n%s", milSrc)
	}
	// re-run compiled query twice: results identical (programs are pure)
	r1, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatal("re-run changed result")
	}
}

func TestCSEDeduplicates(t *testing.T) {
	db := mkPeopleDB(t)
	withCSE := NewEngine(db)
	noCSE := &Engine{DB: db, Opts: Options{FuseMaps: true, FuseAggregates: true, FuseSelects: true, CSE: false}}
	q := `map[THIS.score + THIS.score](select[THIS.age > 1](People));`
	c1, err := withCSE.Compile(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := noCSE.Compile(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n1, n2 := len(strings.Split(c1.MIL(), "\n")), len(strings.Split(c2.MIL(), "\n")); n1 > n2 {
		t.Fatalf("CSE should not grow the program: %d vs %d", n1, n2)
	}
	r1, _ := c1.Run()
	r2, _ := c2.Run()
	for i := range r1.Rows {
		if !valuesEqual(r1.Rows[i].Value, r2.Rows[i].Value) {
			t.Fatal("CSE changed semantics")
		}
	}
}

func TestResultSortByScore(t *testing.T) {
	db := mkPeopleDB(t)
	eng := NewEngine(db)
	res, err := eng.Query(`map[THIS.score](People);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	res.SortByScoreDesc()
	if res.Rows[0].Value.(float64) != 0.9 || res.Rows[3].Value.(float64) != 0.5 {
		t.Fatalf("sorted = %+v", res.Rows)
	}
}

func TestListFieldRoundTrip(t *testing.T) {
	db := NewDatabase()
	if err := db.DefineFromSource(`define L as SET<TUPLE<Atomic<str>: n, LIST<Atomic<int>>: xs>>;`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("L", map[string]any{"n": "a", "xs": []any{3, 1, 2}}); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(db)
	res, err := eng.Query(`map[count(THIS.xs)](L);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Value.(int64) != 3 {
		t.Fatalf("list count = %v", res.Rows[0].Value)
	}
	res, err = eng.Query(`L;`, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Rows[0].Value.(map[string]any)
	xs := v["xs"].([]any)
	if len(xs) != 3 || xs[0].(int64) != 3 {
		t.Fatalf("list materialise = %v", xs)
	}
}
