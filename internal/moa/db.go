package moa

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mirror/internal/bat"
)

// Database is the Mirror DBMS's logical database: a schema of defined sets
// plus the BATs they decompose into. It is safe for concurrent use with a
// single writer (RWMutex).
//
// Physical decomposition of `define S as SET<TUPLE<...>>`:
//
//	element identity   dense OIDs 0..card-1 in namespace "S"
//	atomic field f     BAT "S_f"     [void elemOID, value]
//	SET/LIST field f   BAT "S_f"     [elemOID, childOID] association,
//	                   children decompose recursively under prefix "S_f";
//	                   atomic children store values in "S_f_val";
//	                   LIST adds "S_f_pos" [childOID, int]
//	structure field f  columns declared by the structure (e.g. CONTREP's
//	                   "_term", "_doc", "_tf", "_bel", "_dict", ...)
type Database struct {
	mu       sync.RWMutex
	bats     map[string]*bat.BAT
	sets     map[string]*SetDef
	setOrder []string
	counters map[string]uint64 // OID counters per namespace
}

// SetDef records a defined collection.
type SetDef struct {
	Name string
	Type Type // as defined (usually SET<TUPLE<...>>)
	Card int  // number of inserted elements
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{
		bats:     make(map[string]*bat.BAT),
		sets:     make(map[string]*SetDef),
		counters: make(map[string]uint64),
	}
}

// Define registers a new set with the given Moa type and creates its BATs.
// It implements the DDL statement `define Name as TYPE;`.
func (db *Database) Define(name string, t Type) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.sets[name]; dup {
		return fmt.Errorf("moa: set %q already defined", name)
	}
	st, ok := t.(*SetType)
	if !ok {
		return fmt.Errorf("moa: top-level definitions must be SET<...>, got %s", t)
	}
	if err := db.createColumns(name, st.Elem); err != nil {
		return err
	}
	db.sets[name] = &SetDef{Name: name, Type: t}
	db.setOrder = append(db.setOrder, name)
	return nil
}

// DefineFromSource parses and applies one or more `define` statements.
func (db *Database) DefineFromSource(src string) error {
	stmts, err := ParseProgram(src)
	if err != nil {
		return err
	}
	for _, st := range stmts {
		if st.Define == nil {
			return fmt.Errorf("moa: DefineFromSource: only define statements allowed")
		}
		if err := db.Define(st.Define.Name, st.Define.Type); err != nil {
			return err
		}
	}
	return nil
}

// createColumns makes the BATs for an element type under prefix. Every
// element domain also gets an identity BAT "<prefix>__id" [oid, oid], which
// serves as the full domain for query translation.
func (db *Database) createColumns(prefix string, elem Type) error {
	db.bats[prefix+"__id"] = bat.New(bat.KindVoid, bat.KindVoid)
	switch t := elem.(type) {
	case *AtomType:
		db.bats[prefix+"_val"] = bat.NewDense(0, t.Kind)
		return nil
	case *TupleType:
		for i, fn := range t.Names {
			if err := db.createFieldColumns(prefix+"_"+fn, t.Types[i]); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("moa: unsupported element type %s for set %q", elem, prefix)
	}
}

// createFieldColumns makes the BATs for one tuple field.
func (db *Database) createFieldColumns(prefix string, ft Type) error {
	switch t := ft.(type) {
	case *AtomType:
		db.bats[prefix] = bat.NewDense(0, t.Kind)
	case *SetType, *ListType:
		db.bats[prefix] = bat.New(bat.KindOID, bat.KindOID) // association
		db.bats[prefix+"__id"] = bat.New(bat.KindVoid, bat.KindVoid)
		if _, isList := ft.(*ListType); isList {
			db.bats[prefix+"_pos"] = bat.New(bat.KindOID, bat.KindInt)
		}
		et, _ := ElemType(ft)
		switch e := et.(type) {
		case *AtomType:
			db.bats[prefix+"_val"] = bat.NewDense(0, e.Kind)
		case *TupleType:
			for i, fn := range e.Names {
				if err := db.createFieldColumns(prefix+"_"+fn, e.Types[i]); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("moa: unsupported nested element type %s", et)
		}
	case *StructType:
		for _, cs := range t.S.Columns(prefix) {
			b := bat.New(cs.HeadKind, cs.TailKind)
			if cs.HeadKind == bat.KindVoid {
				b = bat.NewDense(0, cs.TailKind)
			}
			db.bats[prefix+cs.Suffix] = b
		}
	default:
		return fmt.Errorf("moa: unsupported field type %s", ft)
	}
	return nil
}

// Set returns the definition of a named set.
func (db *Database) Set(name string) (*SetDef, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, ok := db.sets[name]
	return s, ok
}

// Sets lists defined sets in definition order.
func (db *Database) Sets() []*SetDef {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*SetDef, 0, len(db.setOrder))
	for _, n := range db.setOrder {
		out = append(out, db.sets[n])
	}
	return out
}

// BAT returns a named physical BAT.
func (db *Database) BAT(name string) (*bat.BAT, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	b, ok := db.bats[name]
	return b, ok
}

// PutBAT installs (or replaces) a physical BAT; used by structures that
// rebuild derived columns and by the storage layer.
func (db *Database) PutBAT(name string, b *bat.BAT) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.bats[name] = b
}

// DropBAT removes a physical BAT from the database (derived columns a
// structure stops maintaining, e.g. a compacted-away index segment). The
// next checkpoint simply omits it from the manifest. Dropping an unknown
// name is a no-op.
func (db *Database) DropBAT(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.bats, name)
}

// DropBATL is DropBAT for Structure hooks running under the database lock.
func (db *Database) DropBATL(name string) { delete(db.bats, name) }

// BATL fetches a BAT without taking the lock. It must only be called from
// Structure hooks (Insert, Finalize), which the Database invokes while
// already holding its write lock; calling BAT there would self-deadlock.
func (db *Database) BATL(name string) (*bat.BAT, bool) {
	b, ok := db.bats[name]
	return b, ok
}

// PutBATL is PutBAT for Structure hooks running under the database lock.
func (db *Database) PutBATL(name string, b *bat.BAT) { db.bats[name] = b }

// BATNames lists all physical BATs, sorted.
func (db *Database) BATNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.bats))
	for n := range db.bats {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns the BAT map for read-only use (binding a MIL
// environment). The map is copied; the BATs are shared.
func (db *Database) Snapshot() map[string]*bat.BAT {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[string]*bat.BAT, len(db.bats))
	for k, v := range db.bats {
		out[k] = v
	}
	return out
}

// NextOID allocates n OIDs in a namespace and returns the first.
func (db *Database) NextOID(ns string, n int) bat.OID {
	first := db.counters[ns]
	db.counters[ns] += uint64(n)
	return bat.OID(first)
}

// Insert adds one element to a defined set. Tuple values are
// map[string]any; set values are []any; atomic values are Go scalars;
// structure fields take whatever the structure's Insert accepts (CONTREP
// takes the raw text, which it tokenises and indexes).
func (db *Database) Insert(setName string, value any) (bat.OID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	def, ok := db.sets[setName]
	if !ok {
		return 0, fmt.Errorf("moa: unknown set %q", setName)
	}
	st := def.Type.(*SetType)
	oid := db.NextOID(setName, 1)
	if err := db.insertElem(setName, oid, st.Elem, value); err != nil {
		return 0, err
	}
	def.Card++
	return oid, nil
}

func (db *Database) insertElem(prefix string, oid bat.OID, elem Type, value any) error {
	if err := db.bats[prefix+"__id"].Append(oid, oid); err != nil {
		return err
	}
	switch t := elem.(type) {
	case *AtomType:
		b := db.bats[prefix+"_val"]
		return b.Append(oid, coerceAtom(t, value))
	case *TupleType:
		tv, ok := value.(map[string]any)
		if !ok {
			return fmt.Errorf("moa: insert into %s: tuple value must be map[string]any, got %T", prefix, value)
		}
		for k := range tv {
			if _, ok := t.Field(k); !ok {
				return fmt.Errorf("moa: insert into %s: unknown field %q", prefix, k)
			}
		}
		for i, fn := range t.Names {
			fv, present := tv[fn]
			if !present {
				return fmt.Errorf("moa: insert into %s: missing field %q", prefix, fn)
			}
			if err := db.insertField(prefix+"_"+fn, oid, t.Types[i], fv); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("moa: insert: unsupported element type %s", elem)
}

func (db *Database) insertField(prefix string, owner bat.OID, ft Type, value any) error {
	switch t := ft.(type) {
	case *AtomType:
		return db.bats[prefix].Append(owner, coerceAtom(t, value))
	case *SetType, *ListType:
		items, ok := value.([]any)
		if !ok {
			return fmt.Errorf("moa: insert into %s: set value must be []any, got %T", prefix, value)
		}
		et, _ := ElemType(ft)
		assoc := db.bats[prefix]
		_, isList := ft.(*ListType)
		for pos, item := range items {
			child := db.NextOID(prefix, 1)
			if err := assoc.Append(owner, child); err != nil {
				return err
			}
			if err := db.bats[prefix+"__id"].Append(child, child); err != nil {
				return err
			}
			if isList {
				if err := db.bats[prefix+"_pos"].Append(child, int64(pos)); err != nil {
					return err
				}
			}
			switch e := et.(type) {
			case *AtomType:
				if err := db.bats[prefix+"_val"].Append(child, coerceAtom(e, item)); err != nil {
					return err
				}
			case *TupleType:
				tv, ok := item.(map[string]any)
				if !ok {
					return fmt.Errorf("moa: insert into %s: tuple element must be map[string]any", prefix)
				}
				for i, fn := range e.Names {
					fv, present := tv[fn]
					if !present {
						return fmt.Errorf("moa: insert into %s: missing field %q", prefix, fn)
					}
					if err := db.insertField(prefix+"_"+fn, child, e.Types[i], fv); err != nil {
						return err
					}
				}
			default:
				return fmt.Errorf("moa: insert: unsupported nested element type %s", et)
			}
		}
		return nil
	case *StructType:
		return t.S.Insert(db, prefix, owner, value)
	}
	return fmt.Errorf("moa: insert: unsupported field type %s", ft)
}

// Finalize runs every structure's Finalize hook for the named set; call it
// after a batch of inserts (CONTREP uses this to recompute collection
// statistics and beliefs).
func (db *Database) Finalize(setName string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	def, ok := db.sets[setName]
	if !ok {
		return fmt.Errorf("moa: unknown set %q", setName)
	}
	tt, ok := def.Type.(*SetType).Elem.(*TupleType)
	if !ok {
		return nil
	}
	for i, fn := range tt.Names {
		if st, ok := tt.Types[i].(*StructType); ok {
			if err := st.S.Finalize(db, setName+"_"+fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// SyncAfterLoad recomputes OID counters and set cardinalities from the
// identity BATs after the storage layer has re-installed loaded BATs, so
// that subsequent inserts allocate fresh OIDs.
func (db *Database) SyncAfterLoad() {
	db.mu.Lock()
	defer db.mu.Unlock()
	for name, b := range db.bats {
		if strings.HasSuffix(name, "__id") {
			ns := strings.TrimSuffix(name, "__id")
			db.counters[ns] = uint64(b.Len())
			if def, ok := db.sets[ns]; ok {
				def.Card = b.Len()
			}
		}
	}
}

// Reset drops every element of a defined set and recreates its physical
// columns; the schema definition is kept. Derived collections (such as the
// demo's internal schema) use this when their daemons re-run.
func (db *Database) Reset(setName string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	def, ok := db.sets[setName]
	if !ok {
		return fmt.Errorf("moa: unknown set %q", setName)
	}
	for name := range db.bats {
		if name == setName+"__id" || strings.HasPrefix(name, setName+"_") {
			delete(db.bats, name)
		}
	}
	for name := range db.counters {
		if name == setName || strings.HasPrefix(name, setName+"_") {
			delete(db.counters, name)
		}
	}
	def.Card = 0
	return db.createColumns(setName, def.Type.(*SetType).Elem)
}

// coerceAtom widens Go scalars to the column types (int→int64 etc.).
func coerceAtom(t *AtomType, v any) any {
	switch t.Kind {
	case bat.KindInt:
		switch x := v.(type) {
		case int:
			return int64(x)
		case int32:
			return int64(x)
		}
	case bat.KindFloat:
		switch x := v.(type) {
		case int:
			return float64(x)
		case int64:
			return float64(x)
		}
	case bat.KindOID:
		switch x := v.(type) {
		case int:
			return bat.OID(x)
		case int64:
			return bat.OID(x)
		case uint64:
			return bat.OID(x)
		}
	}
	return v
}

// SchemaSource renders the schema back to DDL text (used by storage to
// persist the schema alongside the BATs).
func (db *Database) SchemaSource() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var sb strings.Builder
	for _, n := range db.setOrder {
		fmt.Fprintf(&sb, "define %s as %s;\n", n, typeToDDL(db.sets[n].Type))
	}
	return sb.String()
}

// typeToDDL renders a type in the paper's DDL syntax (atoms wrapped in
// Atomic<...> where they stand as field types).
func typeToDDL(t Type) string {
	switch x := t.(type) {
	case *AtomType:
		return "Atomic<" + x.Name + ">"
	case *SetType:
		return "SET<" + typeToDDL(x.Elem) + ">"
	case *ListType:
		return "LIST<" + typeToDDL(x.Elem) + ">"
	case *TupleType:
		var sb strings.Builder
		sb.WriteString("TUPLE<")
		for i := range x.Names {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(typeToDDL(x.Types[i]))
			sb.WriteString(": ")
			sb.WriteString(x.Names[i])
		}
		sb.WriteString(">")
		return sb.String()
	case *StructType:
		return x.String()
	}
	return t.String()
}

// Cards reports each set's cardinality (diagnostics and tests).
func (db *Database) Cards() map[string]int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[string]int, len(db.sets))
	for n, d := range db.sets {
		out[n] = d.Card
	}
	return out
}
