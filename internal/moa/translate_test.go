package moa

import (
	"strings"
	"testing"
)

func TestJoinMultiEquality(t *testing.T) {
	db := NewDatabase()
	err := db.DefineFromSource(`
		define A as SET<TUPLE<Atomic<str>: k1, Atomic<int>: k2, Atomic<str>: pay>>;
		define B as SET<TUPLE<Atomic<str>: j1, Atomic<int>: j2, Atomic<int>: val>>;`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []map[string]any{
		{"k1": "x", "k2": 1, "pay": "a"},
		{"k1": "x", "k2": 2, "pay": "b"},
		{"k1": "y", "k2": 1, "pay": "c"},
	} {
		if _, err := db.Insert("A", r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []map[string]any{
		{"j1": "x", "j2": 1, "val": 10},
		{"j1": "x", "j2": 2, "val": 20},
		{"j1": "z", "j2": 1, "val": 30},
	} {
		if _, err := db.Insert("B", r); err != nil {
			t.Fatal(err)
		}
	}
	eng := NewEngine(db)
	res, err := eng.Query(`join[THIS1.k1 = THIS2.j1 and THIS1.k2 = THIS2.j2](A, B);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("multi-eq join rows = %d, want 2 (%+v)", len(res.Rows), res.Rows)
	}
	for _, row := range res.Rows {
		v := row.Value.(map[string]any)
		switch v["pay"].(string) {
		case "a":
			if v["val"].(int64) != 10 {
				t.Fatalf("row a: %v", v)
			}
		case "b":
			if v["val"].(int64) != 20 {
				t.Fatalf("row b: %v", v)
			}
		default:
			t.Fatalf("unexpected row %v", v)
		}
	}
	// interpreter agrees
	ip := NewInterp(db, nil)
	ires, err := ip.Query(`join[THIS1.k1 = THIS2.j1 and THIS1.k2 = THIS2.j2](A, B);`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ires.Rows) != 2 {
		t.Fatalf("interp multi-eq join rows = %d", len(ires.Rows))
	}
}

func TestJoinOverSelectedSource(t *testing.T) {
	db := mkPeopleDB(t)
	if err := db.DefineFromSource(
		`define Pets as SET<TUPLE<Atomic<str>: owner, Atomic<str>: pet>>;`); err != nil {
		t.Fatal(err)
	}
	for _, r := range []map[string]any{
		{"owner": "ada", "pet": "cat"},
		{"owner": "bob", "pet": "dog"},
		{"owner": "cy", "pet": "fish"},
	} {
		if _, err := db.Insert("Pets", r); err != nil {
			t.Fatal(err)
		}
	}
	eng := NewEngine(db)
	res, err := eng.Query(`
		join[THIS1.name = THIS2.owner](
			select[THIS.age > 25](People), Pets);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// adults: ada(30), cy(40) → join with their pets
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d (%+v)", len(res.Rows), res.Rows)
	}
	pets := map[string]bool{}
	for _, row := range res.Rows {
		pets[row.Value.(map[string]any)["pet"].(string)] = true
	}
	if !pets["cat"] || !pets["fish"] {
		t.Fatalf("pets = %v", pets)
	}
}

func TestNestedMapRejectedByFlattener(t *testing.T) {
	db := mkPeopleDB(t)
	eng := &Engine{DB: db, Opts: NoOptimize} // fusion off so nesting survives
	// a query whose body contains a nested map over a nested set
	_, err := eng.Query(`map[map[THIS * 2.0](THIS.grades)](People);`, nil)
	if err == nil {
		t.Fatal("nested map should be rejected by the flattener")
	}
	if !strings.Contains(err.Error(), "interpreter") {
		t.Fatalf("error should point at the interpreter: %v", err)
	}
	// ... and the interpreter does handle it
	ip := NewInterp(db, nil)
	res, err := ip.Query(`map[map[THIS * 2.0](THIS.grades)](People);`)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Rows[0].Value.([]Row)
	if len(first) != 3 || first[0].Value.(float64) != 2.0 {
		t.Fatalf("interp nested map = %+v", first)
	}
}

func TestEmptySelectResult(t *testing.T) {
	db := mkPeopleDB(t)
	eng := NewEngine(db)
	res, err := eng.Query(`map[THIS.name](select[THIS.age > 1000](People));`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// constant-false predicate folds to an empty domain
	res, err = eng.Query(`map[THIS.name](select[1 > 2](People));`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("const-false rows = %d", len(res.Rows))
	}
	// constant-true predicate keeps everything
	res, err = eng.Query(`count(select[1 < 2](People));`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar.(int64) != 4 {
		t.Fatalf("const-true count = %v", res.Scalar)
	}
}

func TestMinOverEmptyNestedSet(t *testing.T) {
	db := mkPeopleDB(t)
	eng := NewEngine(db)
	res, err := eng.Query(`map[min(THIS.grades)](People);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// cy (OID 2) has no grades: min is absent (nil)
	row, ok := res.Find(2)
	if !ok {
		t.Fatal("row for cy missing")
	}
	if row.Value != nil {
		t.Fatalf("min over empty = %v, want nil", row.Value)
	}
	// others have values
	row, _ = res.Find(0)
	if row.Value.(float64) != 1.0 {
		t.Fatalf("min(ada) = %v", row.Value)
	}
}

func TestScalarFnsInMapBody(t *testing.T) {
	db := mkPeopleDB(t)
	eng := NewEngine(db)
	res, err := eng.Query(`map[log(exp(THIS.score))](People);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Rows[0].Value.(float64)
	if v < 0.899 || v > 0.901 {
		t.Fatalf("log(exp(.9)) = %v", v)
	}
	res, err = eng.Query(`map[sqrt(abs(THIS.score - 1.0))](People);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[1].Value.(float64) < 0.7 { // sqrt(0.5)
		t.Fatalf("sqrt/abs = %v", res.Rows[1].Value)
	}
}

func TestParamErrors(t *testing.T) {
	db := mkPeopleDB(t)
	eng := NewEngine(db)
	// query references an unbound name
	if _, err := eng.Query(`map[THIS.age > limit](People);`, nil); err == nil {
		t.Fatal("unbound parameter should fail the checker")
	}
	// tuple-typed parameters are not supported
	params := map[string]Param{
		"p": {T: &SetType{Elem: &TupleType{Names: []string{"x"}, Types: []Type{IntType}}}, V: []any{}},
	}
	if _, err := eng.Query(`count(p);`, params); err == nil {
		t.Fatal("tuple-set parameter should be rejected")
	}
	// parameter value of the wrong Go type
	params = map[string]Param{
		"q": {T: &SetType{Elem: StrType}, V: 42},
	}
	if _, err := eng.Query(`count(q);`, params); err == nil {
		t.Fatal("bad parameter value should fail")
	}
}

func TestResetAndRebuild(t *testing.T) {
	db := mkPeopleDB(t)
	if err := db.Reset("People"); err != nil {
		t.Fatal(err)
	}
	def, _ := db.Set("People")
	if def.Card != 0 {
		t.Fatalf("card after reset = %d", def.Card)
	}
	eng := NewEngine(db)
	res, err := eng.Query(`count(People);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar.(int64) != 0 {
		t.Fatalf("count after reset = %v", res.Scalar)
	}
	// fresh inserts get OIDs from zero again
	oid, err := db.Insert("People", map[string]any{
		"name": "eve", "age": 28, "score": 0.6, "grades": []any{1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if oid != 0 {
		t.Fatalf("first OID after reset = %d", oid)
	}
	if err := db.Reset("Ghost"); err == nil {
		t.Fatal("reset of unknown set should fail")
	}
}

func TestConcurrentReadQueries(t *testing.T) {
	db := mkPeopleDB(t)
	eng := NewEngine(db)
	c, err := eng.Compile(`map[sum(THIS.grades)](select[THIS.age > 20](People));`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Compiled plans share BATs read-only; hash indexes may be built
	// concurrently, so each goroutine uses its own compilation.
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			cg, err := eng.Compile(`map[sum(THIS.grades)](select[THIS.age > 20](People));`, nil)
			if err != nil {
				done <- err
				return
			}
			for i := 0; i < 20; i++ {
				res, err := cg.Run()
				if err != nil {
					done <- err
					return
				}
				if len(res.Rows) != 3 {
					done <- errRows(len(res.Rows))
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	_ = c
}

type errRows int

func (e errRows) Error() string { return "unexpected row count" }
