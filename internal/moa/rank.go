package moa

import (
	"sync"

	"mirror/internal/bat"
)

// Ranking cut over Result rows: the exhaustive-fallback counterpart of
// the pruned top-k operator, shared by the epoch query path, the RPC
// server and the sharded merge. The heap scratch is pooled with the same
// borrow/return discipline as the ir/core query scratch
// (internal/lint/poolcheck-enforced, pooldebug-accounted).
//
// Raw rowPool access outside this file is a poolcheck diagnostic.
//
//poolcheck:poolfile

// maxPooledRows bounds the capacity of row scratch the pool retains, so
// an occasional huge k cannot pin collection-sized arrays per P forever.
const maxPooledRows = 1 << 12

// rowPool recycles the bounded-heap scratch between ranking cuts.
var rowPool = sync.Pool{New: func() any { return make([]Row, 0, 128) }}

// borrowRows returns empty row scratch; release with releaseRows.
func borrowRows() []Row {
	r := rowPool.Get().([]Row)
	rowsBorrowed()
	return r
}

// releaseRows hands row scratch back; oversized backing arrays are
// dropped instead of pooled.
func releaseRows(r []Row) {
	rowsReleased(r)
	if cap(r) > maxPooledRows {
		return
	}
	rowPool.Put(r[:0]) //nolint:staticcheck // slice reuse is the point
}

// RowWorse reports whether row a ranks strictly after row b under the
// SortByScoreDesc order: float scores descending, non-float values last,
// ties by ascending OID. It is a total order (OIDs are unique), so every
// selection built on it is independent of input order.
func RowWorse(a, b Row) bool {
	fa, oka := a.Value.(float64)
	fb, okb := b.Value.(float64)
	switch {
	case oka && okb && fa != fb:
		return fa < fb
	case oka != okb:
		return okb
	}
	return a.OID > b.OID
}

// TopKRows selects the k best rows under RowWorse — output identical to a
// full SortByScoreDesc cut at k, in O(N log k). The result reuses rows'
// backing array; the heap scratch itself is pooled internally.
func TopKRows(rows []Row, k int) []Row {
	if k >= len(rows) {
		k = len(rows)
	}
	scratch := borrowRows()
	h := bat.NewBoundedTopKInto(scratch, k, RowWorse)
	for _, r := range rows {
		h.Offer(r)
	}
	scratch = h.Ranked()
	out := append(rows[:0], scratch...)
	releaseRows(scratch)
	return out
}
