//go:build pooldebug

package moa

import (
	"sync/atomic"

	"mirror/internal/bat"
)

// pooldebug: live-borrow accounting for the row scratch pool (see
// internal/ir/pool_debug.go for the discipline's full description).
// Slice identity is unstable across heap growth, so this tracks a counter
// and poisons retained capacity rather than registering pointers.
//
//poolcheck:poolfile

var rowsLive atomic.Int64

func rowsBorrowed() { rowsLive.Add(1) }

func rowsReleased(r []Row) {
	rowsLive.Add(-1)
	for i := range r[:cap(r)] {
		r[:cap(r)][i] = Row{OID: ^bat.OID(0), Value: nil}
	}
}

// LiveRows reports the number of borrowed-but-unreleased row scratch
// slices.
func LiveRows() int { return int(rowsLive.Load()) }
