package moa

import (
	"fmt"
	"strconv"
)

// Stmt is a parsed top-level statement: a schema definition or a query.
type Stmt struct {
	Define *DefineStmt
	Query  Expr
}

// DefineStmt is `define Name as TYPE;`.
type DefineStmt struct {
	Name string
	Type Type
}

// ParseProgram parses a sequence of statements.
func ParseProgram(src string) ([]Stmt, error) {
	p := &mParser{lx: newMLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var out []Stmt
	for p.tok.kind != mEOF {
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// ParseQuery parses a single query expression (trailing ';' optional).
func ParseQuery(src string) (Expr, error) {
	p := &mParser{lx: newMLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == mSemi {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != mEOF {
		return nil, p.errf("trailing input after query: %q", p.tok.text)
	}
	return e, nil
}

// ParseType parses a Moa type expression, e.g. "SET<TUPLE<Atomic<URL>: source>>".
func ParseType(src string) (Type, error) {
	p := &mParser{lx: newMLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != mEOF {
		return nil, p.errf("trailing input after type: %q", p.tok.text)
	}
	return t, nil
}

type mParser struct {
	lx  *mLexer
	tok mToken
	// noAngleCmp suppresses treating bare < and > as comparison operators
	// while parsing tuple-constructor elements (TUPLE<name: expr, ...>),
	// where > closes the constructor. Parenthesised subexpressions restore
	// full comparison syntax.
	noAngleCmp int
}

func (p *mParser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *mParser) errf(format string, args ...any) error {
	return fmt.Errorf("moa: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *mParser) expect(k mTokKind, what string) (mToken, error) {
	if p.tok.kind != k {
		return mToken{}, p.errf("expected %s, got %q", what, p.tok.text)
	}
	t := p.tok
	return t, p.advance()
}

func (p *mParser) parseStmt() (Stmt, error) {
	if p.tok.kind == mIdent && p.tok.text == "define" {
		if err := p.advance(); err != nil {
			return Stmt{}, err
		}
		name, err := p.expect(mIdent, "set name")
		if err != nil {
			return Stmt{}, err
		}
		asTok, err := p.expect(mIdent, "'as'")
		if err != nil {
			return Stmt{}, err
		}
		if asTok.text != "as" {
			return Stmt{}, p.errf("expected 'as', got %q", asTok.text)
		}
		t, err := p.parseType()
		if err != nil {
			return Stmt{}, err
		}
		if _, err := p.expect(mSemi, ";"); err != nil {
			return Stmt{}, err
		}
		return Stmt{Define: &DefineStmt{Name: name.text, Type: t}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return Stmt{}, err
	}
	if _, err := p.expect(mSemi, ";"); err != nil {
		return Stmt{}, err
	}
	return Stmt{Query: e}, nil
}

// ---- types ----

func (p *mParser) parseType() (Type, error) {
	name, err := p.expect(mIdent, "type name")
	if err != nil {
		return nil, err
	}
	switch name.text {
	case "SET", "LIST":
		if _, err := p.expect(mLAngle, "<"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(mRAngle, ">"); err != nil {
			return nil, err
		}
		if name.text == "SET" {
			return &SetType{Elem: elem}, nil
		}
		return &ListType{Elem: elem}, nil
	case "TUPLE":
		if _, err := p.expect(mLAngle, "<"); err != nil {
			return nil, err
		}
		tt := &TupleType{}
		for {
			ft, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(mColon, ":"); err != nil {
				return nil, err
			}
			fn, err := p.expect(mIdent, "field name")
			if err != nil {
				return nil, err
			}
			for _, existing := range tt.Names {
				if existing == fn.text {
					return nil, p.errf("duplicate tuple field %q", fn.text)
				}
			}
			tt.Names = append(tt.Names, fn.text)
			tt.Types = append(tt.Types, ft)
			if p.tok.kind == mComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(mRAngle, ">"); err != nil {
			return nil, err
		}
		return tt, nil
	case "Atomic":
		if _, err := p.expect(mLAngle, "<"); err != nil {
			return nil, err
		}
		an, err := p.expect(mIdent, "atomic type name")
		if err != nil {
			return nil, err
		}
		at, ok := AtomTypeByName(an.text)
		if !ok {
			return nil, p.errf("unknown atomic type %q", an.text)
		}
		if _, err := p.expect(mRAngle, ">"); err != nil {
			return nil, err
		}
		return at, nil
	default:
		// Registered extension structure, e.g. CONTREP<Text>.
		s, ok := LookupStructure(name.text)
		if !ok {
			if at, ok := AtomTypeByName(name.text); ok {
				return at, nil // bare atomic name
			}
			return nil, p.errf("unknown type or structure %q", name.text)
		}
		var params []Type
		if p.tok.kind == mLAngle {
			if err := p.advance(); err != nil {
				return nil, err
			}
			for {
				pt, err := p.parseType()
				if err != nil {
					return nil, err
				}
				params = append(params, pt)
				if p.tok.kind == mComma {
					if err := p.advance(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
			if _, err := p.expect(mRAngle, ">"); err != nil {
				return nil, err
			}
		}
		if err := s.CheckParams(params); err != nil {
			return nil, err
		}
		return &StructType{S: s, Params: params}, nil
	}
}

// ---- expressions ----

func (p *mParser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *mParser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == mIdent && p.tok.text == "or" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *mParser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == mIdent && p.tok.text == "and" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *mParser) parseNot() (Expr, error) {
	if p.tok.kind == mIdent && p.tok.text == "not" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "not", E: e}, nil
	}
	return p.parseCmp()
}

func (p *mParser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	var op string
	switch {
	case p.tok.kind == mOp && (p.tok.text == "=" || p.tok.text == "!=" ||
		p.tok.text == "<=" || p.tok.text == ">="):
		op = p.tok.text
	case p.tok.kind == mLAngle && p.noAngleCmp == 0:
		op = "<"
	case p.tok.kind == mRAngle && p.noAngleCmp == 0:
		op = ">"
	default:
		return l, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	r, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	return &BinExpr{Op: op, L: l, R: r}, nil
}

func (p *mParser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == mOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *mParser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == mOp && (p.tok.text == "*" || p.tok.text == "/") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *mParser) parseUnary() (Expr, error) {
	if p.tok.kind == mOp && p.tok.text == "-" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "-", E: e}, nil
	}
	return p.parsePostfix()
}

func (p *mParser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == mDot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expect(mIdent, "field name")
		if err != nil {
			return nil, err
		}
		e = &Field{Recv: e, Name: name.text}
	}
	return e, nil
}

func (p *mParser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case mInt:
		v, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad int %q", p.tok.text)
		}
		return &LitExpr{V: v, T: IntType}, p.advance()
	case mFloat:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", p.tok.text)
		}
		return &LitExpr{V: v, T: FloatType}, p.advance()
	case mStr:
		s := p.tok.text
		return &LitExpr{V: s, T: StrType}, p.advance()
	case mLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		saved := p.noAngleCmp
		p.noAngleCmp = 0
		e, err := p.parseExpr()
		p.noAngleCmp = saved
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(mRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case mIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch name {
		case "THIS":
			return &This{}, nil
		case "THIS1", "THIS2":
			return &Ident{Name: name}, nil
		case "true":
			return &LitExpr{V: true, T: BoolType}, nil
		case "false":
			return &LitExpr{V: false, T: BoolType}, nil
		case "TUPLE":
			return p.parseTupleCons()
		case "map", "select":
			if p.tok.kind != mLBracket {
				return nil, p.errf("%s requires [expr](...)", name)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(mRBracket, "]"); err != nil {
				return nil, err
			}
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			if len(args) != 1 {
				return nil, p.errf("%s takes exactly one set argument, got %d", name, len(args))
			}
			if name == "map" {
				return &MapExpr{Body: inner, Src: args[0]}, nil
			}
			return &SelectExpr{Pred: inner, Src: args[0]}, nil
		case "join":
			if p.tok.kind != mLBracket {
				return nil, p.errf("join requires [pred](left, right)")
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			pred, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(mRBracket, "]"); err != nil {
				return nil, err
			}
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			if len(args) != 2 {
				return nil, p.errf("join takes two set arguments, got %d", len(args))
			}
			return &JoinExpr{Pred: pred, Left: args[0], Right: args[1]}, nil
		}
		if p.tok.kind == mLParen {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Fn: name, Args: args}, nil
		}
		return &Ident{Name: name}, nil
	}
	return nil, p.errf("unexpected token %q", p.tok.text)
}

// parseTupleCons parses TUPLE<name: expr, ...> (constructor form; note the
// name-first order, unlike the type syntax which is type-first).
func (p *mParser) parseTupleCons() (Expr, error) {
	if _, err := p.expect(mLAngle, "<"); err != nil {
		return nil, err
	}
	te := &TupleExpr{}
	for {
		name, err := p.expect(mIdent, "field name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(mColon, ":"); err != nil {
			return nil, err
		}
		p.noAngleCmp++
		e, err := p.parseExpr()
		p.noAngleCmp--
		if err != nil {
			return nil, err
		}
		te.Names = append(te.Names, name.text)
		te.Elems = append(te.Elems, e)
		if p.tok.kind == mComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(mRAngle, ">"); err != nil {
		return nil, err
	}
	return te, nil
}

func (p *mParser) parseArgs() ([]Expr, error) {
	if _, err := p.expect(mLParen, "("); err != nil {
		return nil, err
	}
	var args []Expr
	if p.tok.kind == mRParen {
		return args, p.advance()
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if p.tok.kind == mComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	_, err := p.expect(mRParen, ")")
	return args, err
}
