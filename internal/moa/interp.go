package moa

import (
	"fmt"
	"math"

	"mirror/internal/bat"
)

// Interp is the tuple-at-a-time evaluator of the Moa algebra: it
// materialises collections into Go values and applies map/select bodies one
// element at a time, the way a navigational OO-DBMS executes queries. It is
// the baseline of the [BWK98] flattening-vs-interpretation comparison
// (BenchmarkE4_FlattenedVsTupleAtATime) and the semantic oracle the
// flattened executor is differentially tested against.
type Interp struct {
	DB        *Database
	Params    map[string]Param
	setsCache map[string][]Row
}

// NewInterp returns an interpreter over db with the given parameters.
func NewInterp(db *Database, params map[string]Param) *Interp {
	return &Interp{DB: db, Params: params, setsCache: map[string][]Row{}}
}

// InvalidateCache drops materialised collections (call after inserts).
func (ip *Interp) InvalidateCache() { ip.setsCache = map[string][]Row{} }

// Query parses, checks and evaluates a query tuple-at-a-time.
func (ip *Interp) Query(src string) (*Result, error) {
	expr, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	ptypes := make(map[string]Type, len(ip.Params))
	for k, p := range ip.Params {
		ptypes[k] = p.T
	}
	t, err := Check(expr, &CheckEnv{DB: ip.DB, Params: ptypes})
	if err != nil {
		return nil, err
	}
	return ip.Eval(expr, t)
}

// Eval evaluates a checked expression.
func (ip *Interp) Eval(expr Expr, t Type) (*Result, error) {
	v, err := ip.eval(expr, nil)
	if err != nil {
		return nil, err
	}
	res := &Result{T: t}
	if rows, ok := v.([]Row); ok {
		res.Rows = rows
		return res, nil
	}
	res.Scalar = v
	return res, nil
}

// eval returns []Row for set expressions and a scalar Go value otherwise.
// thisVal carries the current element's value inside map/select bodies.
func (ip *Interp) eval(e Expr, thisVal any) (any, error) {
	switch x := e.(type) {
	case *This:
		if thisVal == nil {
			return nil, fmt.Errorf("moa: THIS unbound")
		}
		return thisVal, nil

	case *LitExpr:
		return x.V, nil

	case *Ident:
		if p, ok := ip.Params[x.Name]; ok {
			if st, ok := p.T.(*SetType); ok {
				items, err := paramItems(p.V)
				if err != nil {
					return nil, err
				}
				at, _ := st.Elem.(*AtomType)
				rows := make([]Row, len(items))
				for i, item := range items {
					if at != nil {
						item = coerceAtom(at, item)
					}
					rows[i] = Row{OID: bat.OID(i), Value: item}
				}
				return rows, nil
			}
			return p.V, nil
		}
		if _, ok := ip.DB.Set(x.Name); ok {
			return ip.materializeSet(x.Name)
		}
		return nil, fmt.Errorf("moa: unknown name %q", x.Name)

	case *Field:
		recv, err := ip.eval(x.Recv, thisVal)
		if err != nil {
			return nil, err
		}
		tv, ok := recv.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("moa: field access on %T", recv)
		}
		return tv[x.Name], nil

	case *MapExpr:
		src, err := ip.evalSet(x.Src, thisVal)
		if err != nil {
			return nil, err
		}
		out := make([]Row, len(src))
		for i, row := range src {
			v, err := ip.eval(x.Body, row.Value)
			if err != nil {
				return nil, err
			}
			out[i] = Row{OID: row.OID, Value: v}
		}
		return out, nil

	case *SelectExpr:
		src, err := ip.evalSet(x.Src, thisVal)
		if err != nil {
			return nil, err
		}
		out := make([]Row, 0, len(src))
		for _, row := range src {
			v, err := ip.eval(x.Pred, row.Value)
			if err != nil {
				return nil, err
			}
			b, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("moa: select predicate returned %T", v)
			}
			if b {
				out = append(out, row)
			}
		}
		return out, nil

	case *JoinExpr:
		return ip.evalJoin(x, thisVal)

	case *CallExpr:
		return ip.evalCall(x, thisVal)

	case *BinExpr:
		l, err := ip.eval(x.L, thisVal)
		if err != nil {
			return nil, err
		}
		r, err := ip.eval(x.R, thisVal)
		if err != nil {
			return nil, err
		}
		return evalBinScalar(x.Op, l, r)

	case *UnExpr:
		v, err := ip.eval(x.E, thisVal)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "not":
			b, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("moa: not on %T", v)
			}
			return !b, nil
		case "-":
			f, ok := numVal(v)
			if !ok {
				return nil, fmt.Errorf("moa: unary - on %T", v)
			}
			if _, isInt := v.(int64); isInt {
				return int64(-f), nil
			}
			return -f, nil
		}
		return nil, fmt.Errorf("moa: unknown unary %q", x.Op)

	case *TupleExpr:
		out := make(map[string]any, len(x.Names))
		for i := range x.Names {
			v, err := ip.eval(x.Elems[i], thisVal)
			if err != nil {
				return nil, err
			}
			out[x.Names[i]] = v
		}
		return out, nil
	}
	return nil, fmt.Errorf("moa: interpreter cannot evaluate %T", e)
}

// evalSet evaluates an expression that must yield a set of rows.
func (ip *Interp) evalSet(e Expr, thisVal any) ([]Row, error) {
	v, err := ip.eval(e, thisVal)
	if err != nil {
		return nil, err
	}
	switch rows := v.(type) {
	case []Row:
		return rows, nil
	case []any: // nested set value: synthesise positional OIDs
		out := make([]Row, len(rows))
		for i, item := range rows {
			out[i] = Row{OID: bat.OID(i), Value: item}
		}
		return out, nil
	}
	return nil, fmt.Errorf("moa: expected a set, got %T", v)
}

func (ip *Interp) evalJoin(x *JoinExpr, thisVal any) (any, error) {
	left, err := ip.evalSet(x.Left, thisVal)
	if err != nil {
		return nil, err
	}
	right, err := ip.evalSet(x.Right, thisVal)
	if err != nil {
		return nil, err
	}
	eqs := collectJoinEqs(x.Pred)
	out := make([]Row, 0)
	next := bat.OID(0)
	for _, lr := range left {
		lt := lr.Value.(map[string]any)
		for _, rr := range right {
			rt := rr.Value.(map[string]any)
			match := true
			for _, eq := range eqs {
				if !scalarEqual(lt[eq.lfield], rt[eq.rfield]) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			merged := make(map[string]any, len(lt)+len(rt))
			for k, v := range lt {
				merged[k] = v
			}
			for k, v := range rt {
				merged[k] = v
			}
			out = append(out, Row{OID: next, Value: merged})
			next++
		}
	}
	return out, nil
}

func (ip *Interp) evalCall(x *CallExpr, thisVal any) (any, error) {
	// Structure function?
	if len(x.Args) > 0 {
		if sf, ok := lookupStructFunc(x.Fn, x.Args[0].Type()); ok {
			recv, err := ip.eval(x.Args[0], thisVal)
			if err != nil {
				return nil, err
			}
			extra := make([]any, 0, len(x.Args)-1)
			for _, a := range x.Args[1:] {
				v, err := ip.eval(a, thisVal)
				if err != nil {
					return nil, err
				}
				extra = append(extra, v)
			}
			return sf.EvalTuple(ip, recv, extra)
		}
	}
	if kernelAggs[x.Fn] {
		rows, err := ip.evalSet(x.Args[0], thisVal)
		if err != nil {
			return nil, err
		}
		return evalAgg(x.Fn, rows, x.T)
	}
	if kernelScalarFns[x.Fn] {
		v, err := ip.eval(x.Args[0], thisVal)
		if err != nil {
			return nil, err
		}
		f, ok := numVal(v)
		if !ok {
			return nil, fmt.Errorf("moa: %s on %T", x.Fn, v)
		}
		switch x.Fn {
		case "log":
			return math.Log(f), nil
		case "exp":
			return math.Exp(f), nil
		case "sqrt":
			return math.Sqrt(f), nil
		case "abs":
			return math.Abs(f), nil
		}
	}
	return nil, fmt.Errorf("moa: unknown function %q", x.Fn)
}

func evalAgg(fn string, rows []Row, t Type) (any, error) {
	if fn == "count" {
		return int64(len(rows)), nil
	}
	if len(rows) == 0 {
		switch fn {
		case "sum":
			if t.Equal(IntType) {
				return int64(0), nil
			}
			return 0.0, nil
		case "avg":
			return 0.0, nil
		}
		return nil, nil // min/max of empty set: absent
	}
	sum := 0.0
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		f, ok := numVal(r.Value)
		if !ok {
			return nil, fmt.Errorf("moa: %s over non-numeric element %T", fn, r.Value)
		}
		sum += f
		if f < mn {
			mn = f
		}
		if f > mx {
			mx = f
		}
	}
	asT := func(v float64) any {
		if t.Equal(IntType) {
			return int64(v)
		}
		return v
	}
	switch fn {
	case "sum":
		return asT(sum), nil
	case "min":
		return asT(mn), nil
	case "max":
		return asT(mx), nil
	case "avg":
		return sum / float64(len(rows)), nil
	}
	return nil, fmt.Errorf("moa: unknown aggregate %q", fn)
}

func evalBinScalar(op string, l, r any) (any, error) {
	if op == "and" || op == "or" {
		lb, lok := l.(bool)
		rb, rok := r.(bool)
		if !lok || !rok {
			return nil, fmt.Errorf("moa: %s on %T,%T", op, l, r)
		}
		if op == "and" {
			return lb && rb, nil
		}
		return lb || rb, nil
	}
	lf, lNum := numVal(l)
	rf, rNum := numVal(r)
	if lNum && rNum {
		switch op {
		case "+":
			return arithResult(l, r, lf+rf), nil
		case "-":
			return arithResult(l, r, lf-rf), nil
		case "*":
			return arithResult(l, r, lf*rf), nil
		case "/":
			if rf == 0 {
				return 0.0, nil
			}
			return lf / rf, nil
		case "=":
			return lf == rf, nil
		case "!=":
			return lf != rf, nil
		case "<":
			return lf < rf, nil
		case "<=":
			return lf <= rf, nil
		case ">":
			return lf > rf, nil
		case ">=":
			return lf >= rf, nil
		}
	}
	ls, lStr := l.(string)
	rs, rStr := r.(string)
	if lStr && rStr {
		switch op {
		case "+":
			return ls + rs, nil
		case "=":
			return ls == rs, nil
		case "!=":
			return ls != rs, nil
		case "<":
			return ls < rs, nil
		case "<=":
			return ls <= rs, nil
		case ">":
			return ls > rs, nil
		case ">=":
			return ls >= rs, nil
		}
	}
	lb, lBool := l.(bool)
	rb, rBool := r.(bool)
	if lBool && rBool {
		switch op {
		case "=":
			return lb == rb, nil
		case "!=":
			return lb != rb, nil
		}
	}
	return nil, fmt.Errorf("moa: operator %q on %T and %T", op, l, r)
}

func arithResult(l, r any, v float64) any {
	_, li := l.(int64)
	_, ri := r.(int64)
	if li && ri {
		return int64(v)
	}
	return v
}

func scalarEqual(l, r any) bool {
	eq, err := evalBinScalar("=", l, r)
	if err != nil {
		return false
	}
	b, _ := eq.(bool)
	return b
}

// materializeSet loads a stored collection into rows (cached).
func (ip *Interp) materializeSet(name string) ([]Row, error) {
	if rows, ok := ip.setsCache[name]; ok {
		return rows, nil
	}
	def, _ := ip.DB.Set(name)
	elem := def.Type.(*SetType).Elem
	eng := &Engine{DB: ip.DB}
	m := &materializer{eng: eng, env: nil, assocIdx: map[string]map[bat.OID][]bat.OID{}}
	ids, ok := ip.DB.BAT(name + "__id")
	if !ok {
		return nil, fmt.Errorf("moa: missing identity BAT for %q", name)
	}
	rows := make([]Row, 0, ids.Len())
	for i := 0; i < ids.Len(); i++ {
		oid := ids.Head.OIDAt(i)
		v, err := m.storedValue(name, elem, oid)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{OID: oid, Value: v})
	}
	ip.setsCache[name] = rows
	return rows, nil
}
