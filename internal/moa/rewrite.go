package moa

import (
	"fmt"

	"mirror/internal/bat"
)

// Options control the algebraic rewrites applied before flattening and the
// common-subexpression elimination applied during it. The paper's claim
// that the logical/physical split "provides an excellent basis for
// algebraic query optimization" is exercised by toggling these
// (BenchmarkE7_OptimizerAblation).
type Options struct {
	// FuseMaps rewrites map[f](map[g](S)) into map[f[THIS:=g]](S),
	// eliminating the materialisation of the inner map's result.
	FuseMaps bool
	// FuseAggregates rewrites agg(structfn(args)) into the fused operator a
	// structure registers for it; for CONTREP this turns sum(getBL(...))
	// into the physical getbl operator instead of materialising per-term
	// belief sets.
	FuseAggregates bool
	// FuseSelects rewrites select[p](select[q](S)) into select[p and q](S).
	FuseSelects bool
	// PushSelects rewrites select[p](map[f](S)) into
	// map[f](select[p[THIS:=f]](S)), so the map materialises only the
	// surviving elements.
	PushSelects bool
	// CSE deduplicates identical MIL operations during translation.
	CSE bool
	// Parallel lets the flattened executor materialise large set results
	// over the shared parallel kernel (internal/bat); the MIL operators a
	// query runs dispatch on input size independently of this flag.
	Parallel bool
	// TopK > 0 asks for only the K best elements of a set-typed query
	// under the ranked-retrieval order (score descending, OID ascending).
	// When the optimised plan is a retrieval the pruned top-k operator can
	// serve (a full-collection scan scored by a function with a pruned
	// form, e.g. getBLScore), the result comes back already ranked and cut
	// (Result.Ranked); every other plan shape falls back to exhaustive
	// evaluation and the caller's ranking applies the cut — the exact
	// fallback.
	TopK int
	// TopKTheta, when non-nil, is an externally owned pruning threshold
	// bound into the MIL environment at Run time: every pruned top-k scan
	// of this engine's queries raises and reads it. The sharded engine in
	// internal/core sets one per query across all shard engines so pruning
	// tightens globally; leave nil for a private per-scan threshold.
	TopKTheta *bat.TopKThreshold
}

// DefaultOptions enables every optimisation.
var DefaultOptions = Options{FuseMaps: true, FuseAggregates: true, FuseSelects: true, PushSelects: true, CSE: true, Parallel: true}

// NoOptimize disables every optimisation (the ablation baseline).
var NoOptimize = Options{}

// Rewrite applies the enabled algebraic rewrites to a *checked* expression
// until fixpoint (bounded to keep pathological inputs terminating).
func Rewrite(e Expr, opts Options) Expr {
	for i := 0; i < 20; i++ {
		changed := false
		e = walkRewrite(e, func(n Expr) Expr {
			if r, ok := rewriteNode(n, opts); ok {
				changed = true
				return r
			}
			return n
		})
		if !changed {
			return e
		}
	}
	return e
}

func rewriteNode(n Expr, opts Options) (Expr, bool) {
	switch x := n.(type) {
	case *MapExpr:
		if !opts.FuseMaps {
			return nil, false
		}
		inner, ok := x.Src.(*MapExpr)
		if !ok {
			return nil, false
		}
		// map[f](map[g](S)) → map[f[THIS:=g]](S)
		body := substThis(cloneExpr(x.Body), inner.Body)
		out := &MapExpr{Body: body, Src: inner.Src, T: x.T}
		return out, true

	case *SelectExpr:
		if !opts.FuseSelects {
			return nil, false
		}
		inner, ok := x.Src.(*SelectExpr)
		if !ok {
			return nil, false
		}
		pred := &BinExpr{Op: "and", L: inner.Pred, R: x.Pred, T: BoolType}
		return &SelectExpr{Pred: pred, Src: inner.Src, T: x.T}, true

	case *CallExpr:
		if !opts.FuseAggregates || len(x.Args) != 1 {
			return nil, false
		}
		innerCall, ok := x.Args[0].(*CallExpr)
		if !ok || len(innerCall.Args) == 0 {
			return nil, false
		}
		sf, ok := lookupStructFunc(innerCall.Fn, innerCall.Args[0].Type())
		if !ok || sf.FuseAgg == nil {
			return nil, false
		}
		fused, ok := sf.FuseAgg[x.Fn]
		if !ok {
			return nil, false
		}
		return &CallExpr{Fn: fused, Args: innerCall.Args, T: x.T}, true
	}
	return nil, false
}

// substThis replaces every THIS in e (that refers to the current map level)
// with repl. Nested map/select bodies introduce a fresh THIS and are left
// alone below their boundary.
func substThis(e Expr, repl Expr) Expr {
	switch x := e.(type) {
	case *This:
		return repl
	case *Field:
		x.Recv = substThis(x.Recv, repl)
	case *CallExpr:
		for i := range x.Args {
			x.Args[i] = substThis(x.Args[i], repl)
		}
	case *BinExpr:
		x.L = substThis(x.L, repl)
		x.R = substThis(x.R, repl)
	case *UnExpr:
		x.E = substThis(x.E, repl)
	case *TupleExpr:
		for i := range x.Elems {
			x.Elems[i] = substThis(x.Elems[i], repl)
		}
	case *MapExpr:
		// THIS inside the nested body refers to the nested element; only the
		// source is in the current scope.
		x.Src = substThis(x.Src, repl)
	case *SelectExpr:
		x.Src = substThis(x.Src, repl)
	case *JoinExpr:
		x.Left = substThis(x.Left, repl)
		x.Right = substThis(x.Right, repl)
	}
	return e
}

// cloneExpr deep-copies an expression tree (types are shared; they are
// immutable).
func cloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case *This:
		c := *x
		return &c
	case *Ident:
		c := *x
		return &c
	case *LitExpr:
		c := *x
		return &c
	case *Field:
		return &Field{Recv: cloneExpr(x.Recv), Name: x.Name, T: x.T}
	case *MapExpr:
		return &MapExpr{Body: cloneExpr(x.Body), Src: cloneExpr(x.Src), T: x.T}
	case *SelectExpr:
		return &SelectExpr{Pred: cloneExpr(x.Pred), Src: cloneExpr(x.Src), T: x.T}
	case *JoinExpr:
		return &JoinExpr{Pred: cloneExpr(x.Pred), Left: cloneExpr(x.Left), Right: cloneExpr(x.Right), T: x.T}
	case *CallExpr:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = cloneExpr(a)
		}
		return &CallExpr{Fn: x.Fn, Args: args, T: x.T}
	case *BinExpr:
		return &BinExpr{Op: x.Op, L: cloneExpr(x.L), R: cloneExpr(x.R), T: x.T}
	case *UnExpr:
		return &UnExpr{Op: x.Op, E: cloneExpr(x.E), T: x.T}
	case *TupleExpr:
		elems := make([]Expr, len(x.Elems))
		for i, a := range x.Elems {
			elems[i] = cloneExpr(a)
		}
		return &TupleExpr{Names: append([]string(nil), x.Names...), Elems: elems, T: x.T}
	}
	panic(fmt.Sprintf("moa: cloneExpr: unknown node %T", e))
}
