package moa

import (
	"fmt"
	"strings"
)

// Expr is a Moa query expression. The T field of each node is filled in by
// the type checker.
type Expr interface {
	Type() Type
	String() string
}

// This refers to the current element inside map[...] or select[...].
type This struct{ T Type }

func (e *This) Type() Type     { return e.T }
func (e *This) String() string { return "THIS" }

// Ident names a defined set or a bound query parameter.
type Ident struct {
	Name string
	T    Type
}

func (e *Ident) Type() Type     { return e.T }
func (e *Ident) String() string { return e.Name }

// Field is attribute access: recv.name.
type Field struct {
	Recv Expr
	Name string
	T    Type
}

func (e *Field) Type() Type     { return e.T }
func (e *Field) String() string { return e.Recv.String() + "." + e.Name }

// MapExpr is map[body](src): apply body to every element of src.
type MapExpr struct {
	Body Expr
	Src  Expr
	T    Type
}

func (e *MapExpr) Type() Type { return e.T }
func (e *MapExpr) String() string {
	return fmt.Sprintf("map[%s](%s)", e.Body, e.Src)
}

// SelectExpr is select[pred](src): keep elements satisfying pred.
type SelectExpr struct {
	Pred Expr
	Src  Expr
	T    Type
}

func (e *SelectExpr) Type() Type { return e.T }
func (e *SelectExpr) String() string {
	return fmt.Sprintf("select[%s](%s)", e.Pred, e.Src)
}

// JoinExpr is join[THIS1.f = THIS2.g](left, right): an equi-join of two
// sets of tuples, producing SET<TUPLE<left fields ++ right fields>>.
type JoinExpr struct {
	Pred  Expr // BinExpr "=" over Field(THIS1.*)/Field(THIS2.*)
	Left  Expr
	Right Expr
	T     Type
}

func (e *JoinExpr) Type() Type { return e.T }
func (e *JoinExpr) String() string {
	return fmt.Sprintf("join[%s](%s, %s)", e.Pred, e.Left, e.Right)
}

// CallExpr is a function application: aggregates (sum, count, min, max,
// avg), structure functions (getBL, ...), and scalar functions (log, exp).
type CallExpr struct {
	Fn   string
	Args []Expr
	T    Type
}

func (e *CallExpr) Type() Type { return e.T }
func (e *CallExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Fn + "(" + strings.Join(parts, ", ") + ")"
}

// BinExpr is a binary operator: arithmetic (+ - * /), comparison
// (= != < <= > >=), boolean (and, or).
type BinExpr struct {
	Op   string
	L, R Expr
	T    Type
}

func (e *BinExpr) Type() Type     { return e.T }
func (e *BinExpr) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

// UnExpr is a unary operator: not, -.
type UnExpr struct {
	Op string
	E  Expr
	T  Type
}

func (e *UnExpr) Type() Type     { return e.T }
func (e *UnExpr) String() string { return fmt.Sprintf("%s(%s)", e.Op, e.E) }

// LitExpr is a literal: int64, float64, string, bool.
type LitExpr struct {
	V any
	T Type
}

func (e *LitExpr) Type() Type { return e.T }
func (e *LitExpr) String() string {
	if s, ok := e.V.(string); ok {
		return fmt.Sprintf("%q", s)
	}
	return fmt.Sprintf("%v", e.V)
}

// TupleExpr constructs a tuple value: TUPLE<name: expr, ...>.
type TupleExpr struct {
	Names []string
	Elems []Expr
	T     Type
}

func (e *TupleExpr) Type() Type { return e.T }
func (e *TupleExpr) String() string {
	var sb strings.Builder
	sb.WriteString("TUPLE<")
	for i := range e.Names {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s: %s", e.Names[i], e.Elems[i])
	}
	sb.WriteString(">")
	return sb.String()
}

// walkRewrite applies f bottom-up over the expression tree, replacing each
// node with f's result. Used by the optimizer.
func walkRewrite(e Expr, f func(Expr) Expr) Expr {
	switch x := e.(type) {
	case *Field:
		x.Recv = walkRewrite(x.Recv, f)
	case *MapExpr:
		x.Body = walkRewrite(x.Body, f)
		x.Src = walkRewrite(x.Src, f)
	case *SelectExpr:
		x.Pred = walkRewrite(x.Pred, f)
		x.Src = walkRewrite(x.Src, f)
	case *JoinExpr:
		x.Left = walkRewrite(x.Left, f)
		x.Right = walkRewrite(x.Right, f)
	case *CallExpr:
		for i := range x.Args {
			x.Args[i] = walkRewrite(x.Args[i], f)
		}
	case *BinExpr:
		x.L = walkRewrite(x.L, f)
		x.R = walkRewrite(x.R, f)
	case *UnExpr:
		x.E = walkRewrite(x.E, f)
	case *TupleExpr:
		for i := range x.Elems {
			x.Elems[i] = walkRewrite(x.Elems[i], f)
		}
	}
	return f(e)
}
