package moa

import (
	"errors"
	"fmt"
	"math"

	"mirror/internal/bat"
	"mirror/internal/mil"
)

// Param is a query parameter binding: a Moa type plus a Go value.
// Supported: atomic params (Go scalar), set-of-atom params ([]string,
// []int64, []float64, []any), and the stats handle (value ignored).
type Param struct {
	T Type
	V any
}

// Translated is the output of flattening a Moa query: a MIL program, extra
// environment bindings (parameter BATs), and the shape of the result.
type Translated struct {
	Prog     *mil.Program
	Bindings map[string]*bat.BAT
	T        Type

	// Set-typed results:
	OutSet *OutSet
	// Scalar results:
	OutScalar Rep // ConstRep or VarRep

	// Parallel records, at flatten time, whether the executor may
	// materialise the result rows on the parallel kernel.
	Parallel bool

	// Ranked reports that the emitted program already returns the result
	// in ranking order (score descending, OID ascending) cut at
	// Options.TopK — the optimiser pushed the top-k into a pruned
	// physical operator, so the executor must not re-rank.
	Ranked bool
}

// OutSet describes a set-typed result: the domain variable enumerates the
// element OIDs; Elem is the per-element representation.
type OutSet struct {
	DomainVar string
	Elem      Rep
	ElemT     Type
}

// Translator flattens checked Moa expressions into MIL. Structures'
// EmitMap hooks receive it to emit their own MIL.
type Translator struct {
	db       *Database
	prog     *mil.Program
	params   map[string]Param
	bindings map[string]*bat.BAT
	n        int
	opts     Options
	cse      map[string]string
	paramSet map[string]*ParamSetRep
	ranked   bool
}

// Translate flattens a checked expression through the plan pipeline:
// build the logical plan, optimise it (including top-k pushdown when
// opts.TopK asks for a ranked cut), and lower the result to MIL.
func Translate(db *Database, e Expr, params map[string]Param, opts Options) (*Translated, error) {
	tr := &Translator{
		db:       db,
		prog:     &mil.Program{},
		params:   params,
		bindings: map[string]*bat.BAT{},
		opts:     opts,
		cse:      map[string]string{},
		paramSet: map[string]*ParamSetRep{},
	}
	out := &Translated{Prog: tr.prog, Bindings: tr.bindings, T: e.Type(), Parallel: opts.Parallel}
	if _, isSet := ElemType(e.Type()); isSet {
		plan, err := tr.BuildPlan(e)
		if err != nil {
			return nil, err
		}
		if opts.TopK > 0 {
			plan = &TopKPlan{Src: plan, K: opts.TopK}
		}
		plan = OptimizePlan(plan, opts)
		sv, err := tr.lowerPlan(plan)
		if err != nil {
			return nil, err
		}
		out.Ranked = tr.ranked
		ctx := tr.newCtx(sv)
		elem, err := sv.MkElem(ctx)
		if err != nil {
			return nil, err
		}
		out.OutSet = &OutSet{DomainVar: sv.DomainVar, Elem: elem, ElemT: sv.ElemT}
		return out, nil
	}
	rep, err := tr.compile(e, nil)
	if err != nil {
		return nil, err
	}
	switch rep.(type) {
	case *ConstRep, *VarRep:
		out.OutScalar = rep
	default:
		return nil, fmt.Errorf("moa: scalar query produced %T representation", rep)
	}
	return out, nil
}

// Opts exposes the active optimisation options (used by structure hooks).
func (tr *Translator) Opts() Options { return tr.opts }

// Fresh allocates a fresh MIL variable name.
func (tr *Translator) Fresh(pfx string) string {
	tr.n++
	return fmt.Sprintf("%s_%d", pfx, tr.n)
}

// Emit appends `v := e` and returns v. When CSE is on, an identical prior
// expression is reused instead (every emitted operation is pure).
func (tr *Translator) Emit(pfx string, e mil.Expr) string {
	key := mil.Render(e)
	if tr.opts.CSE {
		if v, ok := tr.cse[key]; ok {
			return v
		}
	}
	v := tr.Fresh(pfx)
	tr.prog.Assign(v, e)
	if tr.opts.CSE {
		tr.cse[key] = v
	}
	return v
}

// Restrict joins a [elemOID, value] variable through the context domain,
// unless the context is the full stored domain.
func (tr *Translator) Restrict(varName string, ctx *Ctx) string {
	if ctx == nil || ctx.Full {
		return varName
	}
	return tr.Emit("r", mil.C("join", mil.R(ctx.DomainVar), mil.R(varName)))
}

// SetVal is the compiled form of a set-typed expression.
type SetVal struct {
	DomainVar string
	Full      bool
	ElemT     Type
	MkElem    func(ctx *Ctx) (Rep, error)
}

// newCtx builds the map context over a compiled set and binds THIS.
func (tr *Translator) newCtx(sv *SetVal) *Ctx {
	ctx := &Ctx{DomainVar: sv.DomainVar, Full: sv.Full, ElemT: sv.ElemT}
	ctx.This = &lazyThis{sv: sv, ctx: ctx}
	return ctx
}

// lazyThis defers MkElem until THIS is actually used.
type lazyThis struct {
	sv   *SetVal
	ctx  *Ctx
	memo Rep
}

func (*lazyThis) isRep() {}

func (lt *lazyThis) force(tr *Translator) (Rep, error) {
	if lt.memo == nil {
		r, err := lt.sv.MkElem(lt.ctx)
		if err != nil {
			return nil, err
		}
		lt.memo = r
	}
	return lt.memo, nil
}

// ---- set expressions: plan pipeline + lowering ----

// compileSetExpr flattens a set-typed (sub)expression: build its plan,
// optimise, lower. Top-k wrapping happens only at the query root
// (Translate), never for nested set compilations.
func (tr *Translator) compileSetExpr(e Expr) (*SetVal, error) {
	plan, err := tr.BuildPlan(e)
	if err != nil {
		return nil, err
	}
	return tr.lowerPlan(OptimizePlan(plan, tr.opts))
}

// lowerPlan emits MIL for an optimised plan and returns the compiled set.
func (tr *Translator) lowerPlan(p Plan) (*SetVal, error) {
	switch n := p.(type) {
	case *ScanPlan:
		return tr.lowerScan(n)
	case *ParamScanPlan:
		return tr.lowerParamScan(n)
	case *MapPlan:
		src, err := tr.lowerPlan(n.Src)
		if err != nil {
			return nil, err
		}
		ctx := tr.newCtx(src)
		body, err := tr.compile(n.Body, ctx)
		if err != nil {
			return nil, err
		}
		bodyT := n.Body.Type()
		return &SetVal{
			DomainVar: src.DomainVar,
			Full:      src.Full,
			ElemT:     bodyT,
			MkElem: func(ctx2 *Ctx) (Rep, error) {
				if ctx2.DomainVar == src.DomainVar {
					return body, nil
				}
				return tr.restrictRep(body, ctx2)
			},
		}, nil
	case *SelectPlan:
		src, err := tr.lowerPlan(n.Src)
		if err != nil {
			return nil, err
		}
		ctx := tr.newCtx(src)
		pred, err := tr.compile(n.Pred, ctx)
		if err != nil {
			return nil, err
		}
		switch p := pred.(type) {
		case *ConstRep:
			if b, _ := p.V.(bool); b {
				return src, nil
			}
			empty := tr.Emit("d", mil.C("slice", mil.R(src.DomainVar), mil.L(int64(0)), mil.L(int64(0))))
			return &SetVal{DomainVar: empty, Full: false, ElemT: src.ElemT, MkElem: src.MkElem}, nil
		case *AtomRep:
			sel := tr.Emit("sel", mil.C("select", mil.R(p.Var), mil.L(true)))
			dom := tr.Emit("d", mil.C("mirror", mil.R(sel)))
			return &SetVal{DomainVar: dom, Full: false, ElemT: src.ElemT, MkElem: src.MkElem}, nil
		}
		return nil, fmt.Errorf("moa: select predicate compiled to %T", pred)
	case *JoinPlan:
		return tr.lowerJoin(n)
	case *TopKPlan:
		// Exact fallback: the optimiser could not push the cut into a
		// pruned operator; lower the source exhaustively and let the
		// executor's ranking apply k.
		return tr.lowerPlan(n.Src)
	case *PrunedPlan:
		sv, err := tr.lowerPruned(n)
		if errors.Is(err, ErrNoPrunedForm) {
			// The physical form is unavailable (e.g. a store written
			// before the term-ordered postings existed): lower the
			// equivalent exhaustive map and let the caller rank.
			return tr.lowerPlan(&MapPlan{Src: n.Src, Body: n.Call})
		}
		if err != nil {
			return nil, err
		}
		tr.ranked = true
		return sv, nil
	}
	return nil, fmt.Errorf("moa: cannot lower plan %T", p)
}

// ErrNoPrunedForm is returned by a StructFunc's EmitTopK when the pruned
// physical representation is not available in the current database (for
// example a checkpoint written before the term-ordered postings columns
// existed); the lowering then falls back to exhaustive evaluation.
var ErrNoPrunedForm = errors.New("moa: pruned top-k form unavailable")

// HasBAT reports whether a stored physical BAT exists; structure EmitTopK
// hooks use it to verify their derived columns before emitting references.
func (tr *Translator) HasBAT(name string) bool {
	_, ok := tr.db.BAT(name)
	return ok
}

// lowerScan compiles a stored-collection scan.
func (tr *Translator) lowerScan(n *ScanPlan) (*SetVal, error) {
	def, ok := tr.db.Set(n.Set)
	if !ok {
		return nil, fmt.Errorf("moa: unknown set %q", n.Set)
	}
	elem := def.Type.(*SetType).Elem
	prefix := n.Set
	return &SetVal{
		DomainVar: prefix + "__id",
		Full:      true,
		ElemT:     elem,
		MkElem: func(ctx *Ctx) (Rep, error) {
			switch et := elem.(type) {
			case *AtomType:
				return &AtomRep{Var: tr.Restrict(prefix+"_val", ctx), T: et}, nil
			case *TupleType:
				return &ElemRep{Prefix: prefix, Ctx: ctx, T: et}, nil
			}
			return nil, fmt.Errorf("moa: unsupported element type %s", elem)
		},
	}, nil
}

// lowerParamScan compiles a set-parameter scan.
func (tr *Translator) lowerParamScan(n *ParamScanPlan) (*SetVal, error) {
	psr, err := tr.bindParamSet(n.Name, n.T)
	if err != nil {
		return nil, err
	}
	idVar := "param_" + n.Name + "_id"
	return &SetVal{
		DomainVar: idVar,
		Full:      false, // param value BATs are keyed by their own OIDs
		ElemT:     n.T.Elem,
		MkElem: func(ctx *Ctx) (Rep, error) {
			return &AtomRep{Var: tr.Restrict(psr.ValsVar, paramCtx(ctx, idVar)), T: n.T.Elem}, nil
		},
	}, nil
}

// lowerPruned compiles the fused top-k retrieval: the scan supplies the
// full context, the structure's EmitTopK emits the physical operator.
func (tr *Translator) lowerPruned(n *PrunedPlan) (*SetVal, error) {
	scan, err := tr.lowerScan(n.Src)
	if err != nil {
		return nil, err
	}
	ctx := tr.newCtx(scan)
	recv, err := tr.compile(n.Call.Args[0], ctx)
	if err != nil {
		return nil, err
	}
	extra := make([]Rep, 0, len(n.Call.Args)-1)
	for _, a := range n.Call.Args[1:] {
		r, err := tr.compile(a, ctx)
		if err != nil {
			return nil, err
		}
		extra = append(extra, r)
	}
	return n.Fn.EmitTopK(tr, ctx, recv, extra, n.K)
}

// paramCtx adapts a context for a parameter set: parameters live in their
// own OID domain, so the "full" shortcut applies when the context domain is
// the parameter's identity BAT itself.
func paramCtx(ctx *Ctx, idVar string) *Ctx {
	if ctx.DomainVar == idVar {
		c := *ctx
		c.Full = true
		return &c
	}
	return ctx
}

// bindParamSet builds the value BAT of a set parameter and binds it into the
// execution environment.
func (tr *Translator) bindParamSet(name string, st *SetType) (*ParamSetRep, error) {
	if psr, ok := tr.paramSet[name]; ok {
		return psr, nil
	}
	p := tr.params[name]
	at, ok := st.Elem.(*AtomType)
	if !ok {
		return nil, fmt.Errorf("moa: set parameter %q must contain atoms", name)
	}
	vals := bat.NewDense(0, at.Kind)
	ids := bat.New(bat.KindVoid, bat.KindVoid)
	items, err := paramItems(p.V)
	if err != nil {
		return nil, fmt.Errorf("moa: parameter %q: %w", name, err)
	}
	for i, item := range items {
		if err := vals.Append(bat.OID(i), coerceAtom(at, item)); err != nil {
			return nil, fmt.Errorf("moa: parameter %q: %w", name, err)
		}
		if err := ids.Append(bat.OID(i), bat.OID(i)); err != nil {
			return nil, err
		}
	}
	valsName := "param_" + name + "_val"
	idName := "param_" + name + "_id"
	tr.bindings[valsName] = vals
	tr.bindings[idName] = ids
	psr := &ParamSetRep{ValsVar: valsName, ElemT: st.Elem}
	tr.paramSet[name] = psr
	return psr, nil
}

func paramItems(v any) ([]any, error) {
	switch items := v.(type) {
	case []any:
		return items, nil
	case []string:
		out := make([]any, len(items))
		for i, s := range items {
			out[i] = s
		}
		return out, nil
	case []int64:
		out := make([]any, len(items))
		for i, s := range items {
			out[i] = s
		}
		return out, nil
	case []float64:
		out := make([]any, len(items))
		for i, s := range items {
			out[i] = s
		}
		return out, nil
	}
	return nil, fmt.Errorf("unsupported set parameter value %T", v)
}

// ---- join ----

// lowerJoin flattens join[THIS1.f = THIS2.g (and ...)](L, R): candidate
// pairs from the first equality, residual equalities as filters, result
// fields projected through the pair columns.
func (tr *Translator) lowerJoin(n *JoinPlan) (*SetVal, error) {
	x := n.E
	left, err := tr.lowerPlan(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := tr.lowerPlan(n.Right)
	if err != nil {
		return nil, err
	}
	eqs := collectJoinEqs(x.Pred)
	if len(eqs) == 0 {
		return nil, fmt.Errorf("moa: join predicate has no equality")
	}
	lvar0, err := tr.setFieldVar(left, eqs[0].lfield)
	if err != nil {
		return nil, err
	}
	rvar0, err := tr.setFieldVar(right, eqs[0].rfield)
	if err != nil {
		return nil, err
	}
	// pairs [lOID, rOID]
	pairs := tr.Emit("pairs", mil.C("join", mil.R(lvar0), mil.C("reverse", mil.R(rvar0))))
	// pair columns keyed by a fresh dense pair OID
	lcol := tr.Emit("lcol", mil.C("reverse", mil.C("mark", mil.R(pairs), mil.L(int64(0)))))
	rcol := tr.Emit("rcol", mil.C("reverse", mil.C("mark", mil.C("reverse", mil.R(pairs)), mil.L(int64(0)))))
	for _, eq := range eqs[1:] {
		lv, err := tr.setFieldVar(left, eq.lfield)
		if err != nil {
			return nil, err
		}
		rv, err := tr.setFieldVar(right, eq.rfield)
		if err != nil {
			return nil, err
		}
		lvals := tr.Emit("lv", mil.C("join", mil.R(lcol), mil.R(lv)))
		rvals := tr.Emit("rv", mil.C("join", mil.R(rcol), mil.R(rv)))
		ok := tr.Emit("ok", mil.M("==", mil.R(lvals), mil.R(rvals)))
		keep := tr.Emit("keep", mil.C("mirror", mil.C("select", mil.R(ok), mil.L(true))))
		lcol = tr.Emit("lcol", mil.C("join", mil.R(keep), mil.R(lcol)))
		rcol = tr.Emit("rcol", mil.C("join", mil.R(keep), mil.R(rcol)))
	}
	dom := tr.Emit("jd", mil.C("mirror", mil.R(lcol)))
	merged := x.T.(*SetType).Elem.(*TupleType)
	ltt := x.Left.Type().(*SetType).Elem.(*TupleType)
	lcolVar, rcolVar := lcol, rcol

	return &SetVal{
		DomainVar: dom,
		Full:      false,
		ElemT:     merged,
		MkElem: func(ctx *Ctx) (Rep, error) {
			trep := &TupleRep{T: merged}
			for i, name := range merged.Names {
				var side *SetVal
				col := lcolVar
				if _, fromLeft := ltt.Field(name); !fromLeft {
					side = right
					col = rcolVar
				} else {
					side = left
				}
				restrictedCol := col
				if ctx.DomainVar != dom {
					restrictedCol = tr.Emit("r", mil.C("join", mil.R(ctx.DomainVar), mil.R(col)))
				}
				fr, err := tr.joinFieldRep(side, name, restrictedCol, merged.Types[i])
				if err != nil {
					return nil, fmt.Errorf("moa: join result field %q: %w", name, err)
				}
				trep.Names = append(trep.Names, name)
				trep.Fields = append(trep.Fields, fr)
			}
			return trep, nil
		},
	}, nil
}

// joinFieldRep projects one field of a join operand through the pair
// column col ([pairOID, sideOID]). Atomic fields and nested sets map
// through; structure fields (CONTREP) do not survive a join, since their
// postings reference the operand's own OIDs.
func (tr *Translator) joinFieldRep(side *SetVal, name, col string, ft Type) (Rep, error) {
	ctx := tr.newCtx(side)
	elem, err := side.MkElem(ctx)
	if err != nil {
		return nil, err
	}
	fr, err := tr.getField(elem, name, ctx)
	if err != nil {
		return nil, err
	}
	switch r := fr.(type) {
	case *AtomRep:
		v := tr.Emit("jf", mil.C("join", mil.R(col), mil.R(r.Var)))
		return &AtomRep{Var: v, T: ft}, nil
	case *SetRep:
		assoc := tr.Emit("ja", mil.C("join", mil.R(col), mil.R(r.AssocVar)))
		return &SetRep{AssocVar: assoc, ValsVar: r.ValsVar, PosVar: r.PosVar, ElemT: r.ElemT}, nil
	}
	return nil, fmt.Errorf("moa: field of type %s cannot be projected through a join", ft)
}

type joinEq struct{ lfield, rfield string }

func collectJoinEqs(e Expr) []joinEq {
	b, ok := e.(*BinExpr)
	if !ok {
		return nil
	}
	if b.Op == "and" {
		return append(collectJoinEqs(b.L), collectJoinEqs(b.R)...)
	}
	if b.Op != "=" {
		return nil
	}
	lf := b.L.(*Field)
	rf := b.R.(*Field)
	eq := joinEq{lfield: lf.Name, rfield: rf.Name}
	if lf.Recv.(*Ident).Name == "THIS2" {
		eq.lfield, eq.rfield = rf.Name, lf.Name
	}
	return []joinEq{eq}
}

// setFieldVar compiles access to an atomic field of a set's elements over
// the set's full domain, returning the MIL variable [elemOID, value].
func (tr *Translator) setFieldVar(sv *SetVal, field string) (string, error) {
	ctx := tr.newCtx(sv)
	elem, err := sv.MkElem(ctx)
	if err != nil {
		return "", err
	}
	fr, err := tr.getField(elem, field, ctx)
	if err != nil {
		return "", err
	}
	ar, ok := fr.(*AtomRep)
	if !ok {
		return "", fmt.Errorf("moa: join field %q must be atomic", field)
	}
	return ar.Var, nil
}

// ---- expressions within a context ----

func (tr *Translator) compile(e Expr, ctx *Ctx) (Rep, error) {
	switch x := e.(type) {
	case *This:
		if ctx == nil {
			return nil, fmt.Errorf("moa: THIS outside map context")
		}
		if lt, ok := ctx.This.(*lazyThis); ok {
			return lt.force(tr)
		}
		return ctx.This, nil

	case *LitExpr:
		return &ConstRep{V: x.V, T: x.T}, nil

	case *Ident:
		if p, ok := tr.params[x.Name]; ok {
			if p.T.Equal(StatsType) {
				return &StatsRep{}, nil
			}
			if st, ok := p.T.(*SetType); ok {
				return tr.bindParamSet(x.Name, st)
			}
			at, ok := p.T.(*AtomType)
			if !ok {
				return nil, fmt.Errorf("moa: unsupported parameter type %s", p.T)
			}
			return &ConstRep{V: coerceAtom(at, p.V), T: at}, nil
		}
		return nil, fmt.Errorf("moa: name %q not usable in value position", x.Name)

	case *Field:
		recv, err := tr.compile(x.Recv, ctx)
		if err != nil {
			return nil, err
		}
		return tr.getField(recv, x.Name, ctx)

	case *CallExpr:
		return tr.compileCall(x, ctx)

	case *BinExpr:
		return tr.compileBin(x, ctx)

	case *UnExpr:
		inner, err := tr.compile(x.E, ctx)
		if err != nil {
			return nil, err
		}
		switch r := inner.(type) {
		case *ConstRep:
			return foldUnary(x.Op, r)
		case *AtomRep:
			if x.Op == "not" {
				return &AtomRep{Var: tr.Emit("u", mil.M("not", mil.R(r.Var))), T: BoolType}, nil
			}
			return &AtomRep{Var: tr.Emit("u", mil.M("neg", mil.R(r.Var))), T: x.T}, nil
		}
		return nil, fmt.Errorf("moa: unary %s on %T", x.Op, inner)

	case *TupleExpr:
		trep := &TupleRep{T: x.T.(*TupleType)}
		for i := range x.Names {
			fr, err := tr.compile(x.Elems[i], ctx)
			if err != nil {
				return nil, err
			}
			trep.Names = append(trep.Names, x.Names[i])
			trep.Fields = append(trep.Fields, fr)
		}
		return trep, nil

	case *MapExpr, *SelectExpr, *JoinExpr:
		return nil, fmt.Errorf("moa: nested %T inside a map body is not supported by the flattened executor (use the interpreter)", e)
	}
	return nil, fmt.Errorf("moa: cannot flatten node %T", e)
}

// getField accesses a tuple field on a compiled receiver.
func (tr *Translator) getField(recv Rep, name string, ctx *Ctx) (Rep, error) {
	if lt, ok := recv.(*lazyThis); ok {
		r, err := lt.force(tr)
		if err != nil {
			return nil, err
		}
		recv = r
	}
	switch r := recv.(type) {
	case *TupleRep:
		for i, n := range r.Names {
			if n == name {
				return r.Fields[i], nil
			}
		}
		return nil, fmt.Errorf("moa: tuple has no field %q", name)
	case *ElemRep:
		tt, ok := r.T.(*TupleType)
		if !ok {
			return nil, fmt.Errorf("moa: field access on non-tuple element")
		}
		ft, ok := tt.Field(name)
		if !ok {
			return nil, fmt.Errorf("moa: no field %q", name)
		}
		stored := r.Prefix + "_" + name
		switch t := ft.(type) {
		case *AtomType:
			return &AtomRep{Var: tr.Restrict(stored, r.Ctx), T: t}, nil
		case *StructType:
			return &StructRep{Prefix: stored, Ctx: r.Ctx, T: t}, nil
		case *SetType, *ListType:
			assoc := stored
			if !r.Ctx.Full {
				assoc = tr.Emit("as", mil.C("semijoin", mil.R(stored), mil.R(r.Ctx.DomainVar)))
			}
			et, _ := ElemType(ft)
			sr := &SetRep{AssocVar: assoc, ElemT: et}
			if _, isAtom := et.(*AtomType); isAtom {
				sr.ValsVar = stored + "_val"
			}
			if _, isList := ft.(*ListType); isList {
				sr.PosVar = stored + "_pos"
			}
			return sr, nil
		}
		return nil, fmt.Errorf("moa: unsupported field type %s", ft)
	}
	return nil, fmt.Errorf("moa: field access on %T", recv)
}

// ---- calls ----

func (tr *Translator) compileCall(x *CallExpr, ctx *Ctx) (Rep, error) {
	// Structure function?
	if len(x.Args) > 0 {
		if sf, ok := lookupStructFunc(x.Fn, x.Args[0].Type()); ok {
			recv, err := tr.compile(x.Args[0], ctx)
			if err != nil {
				return nil, err
			}
			extra := make([]Rep, 0, len(x.Args)-1)
			for _, a := range x.Args[1:] {
				r, err := tr.compile(a, ctx)
				if err != nil {
					return nil, err
				}
				extra = append(extra, r)
			}
			return sf.EmitMap(tr, ctx, recv, extra)
		}
	}

	if kernelAggs[x.Fn] {
		return tr.compileAgg(x, ctx)
	}

	if kernelScalarFns[x.Fn] {
		arg, err := tr.compile(x.Args[0], ctx)
		if err != nil {
			return nil, err
		}
		switch r := arg.(type) {
		case *ConstRep:
			return foldScalarFn(x.Fn, r)
		case *AtomRep:
			return &AtomRep{Var: tr.Emit("f", mil.M(x.Fn, mil.R(r.Var))), T: FloatType}, nil
		}
		return nil, fmt.Errorf("moa: %s on %T", x.Fn, arg)
	}

	return nil, fmt.Errorf("moa: unknown function %q", x.Fn)
}

// compileAgg handles sum/count/min/max/avg in three shapes: over a nested
// set of the current element (grouped pump), over a constant parameter set
// (scalar), and over a top-level set expression (scalar).
func (tr *Translator) compileAgg(x *CallExpr, ctx *Ctx) (Rep, error) {
	arg := x.Args[0]
	switch arg.(type) {
	case *MapExpr, *SelectExpr, *JoinExpr:
		return tr.scalarAggOverSet(x.Fn, arg, x.T)
	case *Ident:
		id := arg.(*Ident)
		if _, isParam := tr.params[id.Name]; !isParam {
			return tr.scalarAggOverSet(x.Fn, arg, x.T)
		}
	}

	rep, err := tr.compile(arg, ctx)
	if err != nil {
		return nil, err
	}
	switch r := rep.(type) {
	case *SetRep:
		if x.Fn == "count" {
			cnt := tr.Emit("cnt", mil.P("count", mil.R(r.AssocVar)))
			filled := tr.Emit("cnt", mil.C("fill", mil.R(cnt), mil.R(ctx.DomainVar), mil.L(int64(0))))
			return &AtomRep{Var: filled, T: IntType}, nil
		}
		if r.ValsVar == "" {
			return nil, fmt.Errorf("moa: %s over non-atomic nested set", x.Fn)
		}
		joined := tr.Emit("jv", mil.C("join", mil.R(r.AssocVar), mil.R(r.ValsVar)))
		agg := tr.Emit("ag", mil.P(x.Fn, mil.R(joined)))
		if x.Fn == "sum" {
			agg = tr.Emit("ag", mil.C("fill", mil.R(agg), mil.R(ctx.DomainVar), mil.L(0.0)))
		}
		return &AtomRep{Var: agg, T: x.T}, nil
	case *ParamSetRep:
		v := tr.Emit("pa", mil.C(milAggName(x.Fn), mil.R(r.ValsVar)))
		return &VarRep{Var: v, T: x.T}, nil
	}
	return nil, fmt.Errorf("moa: %s over %T", x.Fn, rep)
}

// scalarAggOverSet aggregates a whole set expression to one scalar.
func (tr *Translator) scalarAggOverSet(fn string, setExpr Expr, rt Type) (Rep, error) {
	sv, err := tr.compileSetExpr(setExpr)
	if err != nil {
		return nil, err
	}
	if fn == "count" {
		v := tr.Emit("pa", mil.C("count", mil.R(sv.DomainVar)))
		return &VarRep{Var: v, T: rt}, nil
	}
	ctx := tr.newCtx(sv)
	elem, err := sv.MkElem(ctx)
	if err != nil {
		return nil, err
	}
	ar, ok := elem.(*AtomRep)
	if !ok {
		return nil, fmt.Errorf("moa: %s over a set of %T elements", fn, elem)
	}
	v := tr.Emit("pa", mil.C(milAggName(fn), mil.R(ar.Var)))
	return &VarRep{Var: v, T: rt}, nil
}

func milAggName(fn string) string { return fn } // Moa and MIL agree on names

// ---- binary operators ----

func (tr *Translator) compileBin(x *BinExpr, ctx *Ctx) (Rep, error) {
	l, err := tr.compile(x.L, ctx)
	if err != nil {
		return nil, err
	}
	r, err := tr.compile(x.R, ctx)
	if err != nil {
		return nil, err
	}
	op := x.Op
	if op == "=" {
		op = "=="
	}
	lc, lConst := constOperand(l)
	rc, rConst := constOperand(r)
	la, lAtom := l.(*AtomRep)
	ra, rAtom := r.(*AtomRep)
	switch {
	case lConst && rConst:
		return foldBinary(x, lc, rc)
	case lAtom && rAtom:
		return &AtomRep{Var: tr.Emit("b", mil.M(op, mil.R(la.Var), mil.R(ra.Var))), T: x.T}, nil
	case lAtom && rConst:
		return &AtomRep{Var: tr.Emit("b", mil.M(op, mil.R(la.Var), constMilExpr(rc))), T: x.T}, nil
	case lConst && rAtom:
		return &AtomRep{Var: tr.Emit("b", mil.M(op, constMilExpr(lc), mil.R(ra.Var))), T: x.T}, nil
	}
	return nil, fmt.Errorf("moa: operator %s on %T and %T", x.Op, l, r)
}

// constOperand extracts a compile- or run-time scalar operand.
func constOperand(r Rep) (Rep, bool) {
	switch r.(type) {
	case *ConstRep, *VarRep:
		return r, true
	}
	return nil, false
}

// constMilExpr renders a scalar operand as a MIL expression.
func constMilExpr(r Rep) mil.Expr {
	switch c := r.(type) {
	case *ConstRep:
		return mil.L(c.V)
	case *VarRep:
		return mil.R(c.Var)
	}
	panic("moa: not a scalar operand")
}

// foldBinary evaluates const⊕const at compile time where both are
// compile-time constants; if either side is a run-time scalar it emits calc.
func foldBinary(x *BinExpr, l, r Rep) (Rep, error) {
	lc, lok := l.(*ConstRep)
	rc, rok := r.(*ConstRep)
	if !lok || !rok {
		return nil, fmt.Errorf("moa: mixed scalar operands for %s not supported", x.Op)
	}
	switch x.Op {
	case "and", "or":
		lb, _ := lc.V.(bool)
		rb, _ := rc.V.(bool)
		if x.Op == "and" {
			return &ConstRep{V: lb && rb, T: BoolType}, nil
		}
		return &ConstRep{V: lb || rb, T: BoolType}, nil
	}
	lf, lIsNum := numVal(lc.V)
	rf, rIsNum := numVal(rc.V)
	if lIsNum && rIsNum {
		switch x.Op {
		case "+":
			return numConst(lf+rf, x.T), nil
		case "-":
			return numConst(lf-rf, x.T), nil
		case "*":
			return numConst(lf*rf, x.T), nil
		case "/":
			if rf == 0 {
				return numConst(0, x.T), nil
			}
			return numConst(lf/rf, x.T), nil
		case "=", "==":
			return &ConstRep{V: lf == rf, T: BoolType}, nil
		case "!=":
			return &ConstRep{V: lf != rf, T: BoolType}, nil
		case "<":
			return &ConstRep{V: lf < rf, T: BoolType}, nil
		case "<=":
			return &ConstRep{V: lf <= rf, T: BoolType}, nil
		case ">":
			return &ConstRep{V: lf > rf, T: BoolType}, nil
		case ">=":
			return &ConstRep{V: lf >= rf, T: BoolType}, nil
		}
	}
	ls, lStr := lc.V.(string)
	rs, rStr := rc.V.(string)
	if lStr && rStr {
		switch x.Op {
		case "+":
			return &ConstRep{V: ls + rs, T: StrType}, nil
		case "=", "==":
			return &ConstRep{V: ls == rs, T: BoolType}, nil
		case "!=":
			return &ConstRep{V: ls != rs, T: BoolType}, nil
		case "<":
			return &ConstRep{V: ls < rs, T: BoolType}, nil
		case "<=":
			return &ConstRep{V: ls <= rs, T: BoolType}, nil
		case ">":
			return &ConstRep{V: ls > rs, T: BoolType}, nil
		case ">=":
			return &ConstRep{V: ls >= rs, T: BoolType}, nil
		}
	}
	return nil, fmt.Errorf("moa: cannot fold %s on %T,%T", x.Op, lc.V, rc.V)
}

func foldUnary(op string, c *ConstRep) (Rep, error) {
	switch op {
	case "not":
		b, ok := c.V.(bool)
		if !ok {
			return nil, fmt.Errorf("moa: not on %T", c.V)
		}
		return &ConstRep{V: !b, T: BoolType}, nil
	case "-":
		switch v := c.V.(type) {
		case int64:
			return &ConstRep{V: -v, T: IntType}, nil
		case float64:
			return &ConstRep{V: -v, T: FloatType}, nil
		}
	}
	return nil, fmt.Errorf("moa: cannot fold unary %s", op)
}

func foldScalarFn(fn string, c *ConstRep) (Rep, error) {
	v, ok := numVal(c.V)
	if !ok {
		return nil, fmt.Errorf("moa: %s on %T", fn, c.V)
	}
	var out float64
	switch fn {
	case "log":
		out = math.Log(v)
	case "exp":
		out = math.Exp(v)
	case "sqrt":
		out = math.Sqrt(v)
	case "abs":
		out = math.Abs(v)
	default:
		return nil, fmt.Errorf("moa: unknown scalar fn %q", fn)
	}
	return &ConstRep{V: out, T: FloatType}, nil
}

func numVal(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case bat.OID:
		return float64(x), true
	}
	return 0, false
}

func numConst(v float64, t Type) *ConstRep {
	if t.Equal(IntType) {
		return &ConstRep{V: int64(v), T: IntType}
	}
	return &ConstRep{V: v, T: FloatType}
}

// restrictRep re-aligns an already-computed representation to a narrower
// domain (after a select over a computed set).
func (tr *Translator) restrictRep(r Rep, ctx *Ctx) (Rep, error) {
	switch x := r.(type) {
	case *AtomRep:
		return &AtomRep{Var: tr.Emit("r", mil.C("join", mil.R(ctx.DomainVar), mil.R(x.Var))), T: x.T}, nil
	case *ConstRep, *VarRep, *ParamSetRep, *StatsRep:
		return r, nil
	case *TupleRep:
		out := &TupleRep{T: x.T, Names: append([]string(nil), x.Names...)}
		for _, f := range x.Fields {
			rf, err := tr.restrictRep(f, ctx)
			if err != nil {
				return nil, err
			}
			out.Fields = append(out.Fields, rf)
		}
		return out, nil
	case *SetRep:
		assoc := tr.Emit("as", mil.C("semijoin", mil.R(x.AssocVar), mil.R(ctx.DomainVar)))
		return &SetRep{AssocVar: assoc, ValsVar: x.ValsVar, PosVar: x.PosVar, ElemT: x.ElemT}, nil
	case *ElemRep:
		return &ElemRep{Prefix: x.Prefix, Ctx: ctx, T: x.T}, nil
	case *StructRep:
		return &StructRep{Prefix: x.Prefix, Ctx: ctx, T: x.T}, nil
	case *lazyThis:
		forced, err := x.force(tr)
		if err != nil {
			return nil, err
		}
		return tr.restrictRep(forced, ctx)
	}
	return nil, fmt.Errorf("moa: cannot restrict %T", r)
}
