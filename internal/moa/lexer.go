package moa

import (
	"fmt"
	"strings"
	"unicode"
)

type mTokKind int

const (
	mEOF mTokKind = iota
	mIdent
	mInt
	mFloat
	mStr
	mLParen
	mRParen
	mLBracket
	mRBracket
	mLAngle
	mRAngle
	mComma
	mColon
	mSemi
	mDot
	mOp // = != < <= > >= + - * /  (note: < and > are emitted as mLAngle/mRAngle and re-interpreted by the parser)
)

type mToken struct {
	kind mTokKind
	text string
	line int
}

type mLexer struct {
	src  string
	pos  int
	line int
}

func newMLexer(src string) *mLexer { return &mLexer{src: src, line: 1} }

func (lx *mLexer) errf(format string, args ...any) error {
	return fmt.Errorf("moa: line %d: %s", lx.line, fmt.Sprintf(format, args...))
}

func (lx *mLexer) next() (mToken, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '#':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			goto scan
		}
	}
	return mToken{kind: mEOF, line: lx.line}, nil

scan:
	start := lx.pos
	c := lx.src[lx.pos]
	mk := func(k mTokKind) mToken {
		return mToken{kind: k, text: lx.src[start:lx.pos], line: lx.line}
	}
	switch {
	case c == '(':
		lx.pos++
		return mk(mLParen), nil
	case c == ')':
		lx.pos++
		return mk(mRParen), nil
	case c == '[':
		lx.pos++
		return mk(mLBracket), nil
	case c == ']':
		lx.pos++
		return mk(mRBracket), nil
	case c == '<':
		lx.pos++
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '=' {
			lx.pos++
			return mk(mOp), nil // <=
		}
		return mk(mLAngle), nil
	case c == '>':
		lx.pos++
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '=' {
			lx.pos++
			return mk(mOp), nil // >=
		}
		return mk(mRAngle), nil
	case c == ',':
		lx.pos++
		return mk(mComma), nil
	case c == ':':
		lx.pos++
		return mk(mColon), nil
	case c == ';':
		lx.pos++
		return mk(mSemi), nil
	case c == '.':
		lx.pos++
		return mk(mDot), nil
	case c == '=':
		lx.pos++
		return mk(mOp), nil
	case c == '!':
		lx.pos++
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '=' {
			lx.pos++
			return mk(mOp), nil
		}
		return mToken{}, lx.errf("unexpected '!'")
	case strings.ContainsRune("+-*/", rune(c)):
		lx.pos++
		return mk(mOp), nil
	case c == '"':
		lx.pos++
		var sb strings.Builder
		for lx.pos < len(lx.src) && lx.src[lx.pos] != '"' {
			ch := lx.src[lx.pos]
			if ch == '\\' && lx.pos+1 < len(lx.src) {
				lx.pos++
				switch lx.src[lx.pos] {
				case 'n':
					ch = '\n'
				case 't':
					ch = '\t'
				case '"':
					ch = '"'
				case '\\':
					ch = '\\'
				default:
					return mToken{}, lx.errf("bad escape \\%c", lx.src[lx.pos])
				}
			}
			if ch == '\n' {
				lx.line++
			}
			sb.WriteByte(ch)
			lx.pos++
		}
		if lx.pos >= len(lx.src) {
			return mToken{}, lx.errf("unterminated string")
		}
		lx.pos++
		return mToken{kind: mStr, text: sb.String(), line: lx.line}, nil
	case c >= '0' && c <= '9':
		for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			lx.pos++
		}
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos] == '.' &&
			lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9' {
			lx.pos++
			for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
				lx.pos++
			}
			return mk(mFloat), nil
		}
		return mk(mInt), nil
	case c == '_' || unicode.IsLetter(rune(c)):
		for lx.pos < len(lx.src) {
			r := rune(lx.src[lx.pos])
			if r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) {
				lx.pos++
				continue
			}
			break
		}
		return mk(mIdent), nil
	}
	return mToken{}, lx.errf("unexpected character %q", c)
}
