//go:build !pooldebug

package moa

// Release builds: pool accounting hooks compile to nothing. Build with
// -tags pooldebug for live-borrow counting and released-slice poisoning.

func rowsBorrowed()      {}
func rowsReleased([]Row) {}

// LiveRows reports the number of borrowed-but-unreleased row scratch
// slices. It always returns 0 unless built with -tags pooldebug.
func LiveRows() int { return 0 }
