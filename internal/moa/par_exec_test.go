package moa

import (
	"fmt"
	"testing"

	"mirror/internal/bat"
)

// TestParallelMaterializationMatchesSerial runs set-typed queries through
// the flattened executor twice — serial reference vs forced-parallel
// kernel + parallel row materialisation — and requires identical results
// row for row. This is the Moa-layer end of the differential harness in
// internal/bat/par_diff_test.go.
func TestParallelMaterializationMatchesSerial(t *testing.T) {
	db := NewDatabase()
	err := db.DefineFromSource(`
		define Crowd as SET<TUPLE<
			Atomic<str>: name,
			Atomic<int>: age,
			Atomic<flt>: score,
			SET<Atomic<flt>>: grades
		>>;`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		grades := make([]any, i%4)
		for g := range grades {
			grades[g] = float64((i+g)%7) + 0.5
		}
		if _, err := db.Insert("Crowd", map[string]any{
			"name":   fmt.Sprintf("p%03d", i%97),
			"age":    18 + i%50,
			"score":  float64(i%89) / 8,
			"grades": grades,
		}); err != nil {
			t.Fatal(err)
		}
	}

	queries := []string{
		`map[THIS.score](Crowd);`,
		`map[TUPLE<n: THIS.name, s: THIS.score * 2.0>](Crowd);`,
		`select[THIS.age > 30 and THIS.age <= 60](Crowd);`,
		`map[sum(THIS.grades)](Crowd);`,
		`map[THIS.grades](Crowd);`,
		`Crowd;`,
	}
	for _, q := range queries {
		var ser, par *Result
		func() {
			oldP := bat.SetParallelism(1)
			defer bat.SetParallelism(oldP)
			eng := NewEngine(db)
			var err error
			ser, err = eng.Query(q, nil)
			if err != nil {
				t.Fatalf("serial %q: %v", q, err)
			}
		}()
		func() {
			oldP := bat.SetParallelism(4)
			oldT := bat.SetParallelThreshold(1)
			defer func() {
				bat.SetParallelism(oldP)
				bat.SetParallelThreshold(oldT)
			}()
			eng := NewEngine(db)
			var err error
			par, err = eng.Query(q, nil)
			if err != nil {
				t.Fatalf("parallel %q: %v", q, err)
			}
		}()
		if len(ser.Rows) != len(par.Rows) {
			t.Fatalf("%q: %d rows vs %d", q, len(ser.Rows), len(par.Rows))
		}
		for i := range ser.Rows {
			if ser.Rows[i].OID != par.Rows[i].OID {
				t.Fatalf("%q row %d: OID %d vs %d", q, i, ser.Rows[i].OID, par.Rows[i].OID)
			}
			if !valuesEqual(ser.Rows[i].Value, par.Rows[i].Value) {
				t.Fatalf("%q row %d: %v vs %v", q, i, ser.Rows[i].Value, par.Rows[i].Value)
			}
		}
	}
}
