package moa

import (
	"fmt"

	"mirror/internal/bat"
)

// CheckEnv supplies name resolution for type checking: the database schema
// plus the types of bound query parameters (e.g. query: SET<Atomic<str>>,
// stats: Atomic<stats>).
type CheckEnv struct {
	DB     *Database
	Params map[string]Type
}

// Check type-checks a query expression, annotating every node with its
// type. It returns the query's result type.
func Check(e Expr, env *CheckEnv) (Type, error) {
	c := &checker{env: env}
	return c.check(e)
}

type checker struct {
	env       *CheckEnv
	thisStack []Type
	joinElems [2]Type // types of THIS1/THIS2 while checking a join predicate
	inJoin    bool
}

func (c *checker) check(e Expr) (Type, error) {
	switch x := e.(type) {
	case *This:
		if len(c.thisStack) == 0 {
			return nil, fmt.Errorf("moa: THIS outside map/select")
		}
		x.T = c.thisStack[len(c.thisStack)-1]
		return x.T, nil

	case *Ident:
		if c.inJoin && (x.Name == "THIS1" || x.Name == "THIS2") {
			i := 0
			if x.Name == "THIS2" {
				i = 1
			}
			x.T = c.joinElems[i]
			return x.T, nil
		}
		if x.Name == "THIS1" || x.Name == "THIS2" {
			return nil, fmt.Errorf("moa: %s outside join predicate", x.Name)
		}
		if t, ok := c.env.Params[x.Name]; ok {
			x.T = t
			return t, nil
		}
		if c.env.DB != nil {
			if def, ok := c.env.DB.Set(x.Name); ok {
				x.T = def.Type
				return x.T, nil
			}
		}
		return nil, fmt.Errorf("moa: unknown name %q", x.Name)

	case *Field:
		rt, err := c.check(x.Recv)
		if err != nil {
			return nil, err
		}
		tt, ok := rt.(*TupleType)
		if !ok {
			return nil, fmt.Errorf("moa: field access .%s on non-tuple type %s", x.Name, rt)
		}
		ft, ok := tt.Field(x.Name)
		if !ok {
			return nil, fmt.Errorf("moa: tuple %s has no field %q", tt, x.Name)
		}
		x.T = ft
		return ft, nil

	case *MapExpr:
		st, err := c.check(x.Src)
		if err != nil {
			return nil, err
		}
		elem, ok := ElemType(st)
		if !ok {
			return nil, fmt.Errorf("moa: map over non-set type %s", st)
		}
		c.thisStack = append(c.thisStack, elem)
		bt, err := c.check(x.Body)
		c.thisStack = c.thisStack[:len(c.thisStack)-1]
		if err != nil {
			return nil, err
		}
		x.T = &SetType{Elem: bt}
		return x.T, nil

	case *SelectExpr:
		st, err := c.check(x.Src)
		if err != nil {
			return nil, err
		}
		elem, ok := ElemType(st)
		if !ok {
			return nil, fmt.Errorf("moa: select over non-set type %s", st)
		}
		c.thisStack = append(c.thisStack, elem)
		pt, err := c.check(x.Pred)
		c.thisStack = c.thisStack[:len(c.thisStack)-1]
		if err != nil {
			return nil, err
		}
		if !pt.Equal(BoolType) {
			return nil, fmt.Errorf("moa: select predicate must be bool, got %s", pt)
		}
		x.T = st
		return st, nil

	case *JoinExpr:
		lt, err := c.check(x.Left)
		if err != nil {
			return nil, err
		}
		rt, err := c.check(x.Right)
		if err != nil {
			return nil, err
		}
		le, lok := ElemType(lt)
		re, rok := ElemType(rt)
		if !lok || !rok {
			return nil, fmt.Errorf("moa: join arguments must be sets, got %s and %s", lt, rt)
		}
		ltt, lok := le.(*TupleType)
		rtt, rok := re.(*TupleType)
		if !lok || !rok {
			return nil, fmt.Errorf("moa: join arguments must be sets of tuples")
		}
		c.inJoin = true
		c.joinElems = [2]Type{ltt, rtt}
		pt, err := c.check(x.Pred)
		c.inJoin = false
		if err != nil {
			return nil, err
		}
		if !pt.Equal(BoolType) {
			return nil, fmt.Errorf("moa: join predicate must be bool, got %s", pt)
		}
		if err := validateJoinPred(x.Pred); err != nil {
			return nil, err
		}
		merged := &TupleType{}
		seen := map[string]bool{}
		for i, n := range ltt.Names {
			merged.Names = append(merged.Names, n)
			merged.Types = append(merged.Types, ltt.Types[i])
			seen[n] = true
		}
		for i, n := range rtt.Names {
			if seen[n] {
				return nil, fmt.Errorf("moa: join field name collision %q", n)
			}
			merged.Names = append(merged.Names, n)
			merged.Types = append(merged.Types, rtt.Types[i])
		}
		x.T = &SetType{Elem: merged}
		return x.T, nil

	case *CallExpr:
		return c.checkCall(x)

	case *BinExpr:
		lt, err := c.check(x.L)
		if err != nil {
			return nil, err
		}
		rt, err := c.check(x.R)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "+", "-", "*", "/":
			if !IsNumeric(lt) || !IsNumeric(rt) {
				// allow string concatenation with +
				if x.Op == "+" && atomKind(lt) == bat.KindStr && atomKind(rt) == bat.KindStr {
					x.T = StrType
					return x.T, nil
				}
				return nil, fmt.Errorf("moa: %s needs numeric operands, got %s and %s", x.Op, lt, rt)
			}
			if lt.Equal(IntType) && rt.Equal(IntType) && x.Op != "/" {
				x.T = IntType
			} else {
				x.T = FloatType
			}
			return x.T, nil
		case "=", "!=", "<", "<=", ">", ">=":
			if atomKind(lt) == 0 || atomKind(rt) == 0 {
				return nil, fmt.Errorf("moa: comparison %s on non-atomic types %s, %s", x.Op, lt, rt)
			}
			if !comparable(lt, rt) {
				return nil, fmt.Errorf("moa: cannot compare %s with %s", lt, rt)
			}
			x.T = BoolType
			return x.T, nil
		case "and", "or":
			if !lt.Equal(BoolType) || !rt.Equal(BoolType) {
				return nil, fmt.Errorf("moa: %s needs bool operands, got %s and %s", x.Op, lt, rt)
			}
			x.T = BoolType
			return x.T, nil
		}
		return nil, fmt.Errorf("moa: unknown operator %q", x.Op)

	case *UnExpr:
		et, err := c.check(x.E)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "not":
			if !et.Equal(BoolType) {
				return nil, fmt.Errorf("moa: not needs bool, got %s", et)
			}
			x.T = BoolType
		case "-":
			if !IsNumeric(et) {
				return nil, fmt.Errorf("moa: unary - needs numeric, got %s", et)
			}
			x.T = et
		default:
			return nil, fmt.Errorf("moa: unknown unary %q", x.Op)
		}
		return x.T, nil

	case *LitExpr:
		return x.T, nil

	case *TupleExpr:
		tt := &TupleType{}
		for i := range x.Names {
			ft, err := c.check(x.Elems[i])
			if err != nil {
				return nil, err
			}
			tt.Names = append(tt.Names, x.Names[i])
			tt.Types = append(tt.Types, ft)
		}
		x.T = tt
		return tt, nil
	}
	return nil, fmt.Errorf("moa: cannot type node %T", e)
}

// aggregate names of the Moa kernel.
var kernelAggs = map[string]bool{
	"sum": true, "count": true, "min": true, "max": true, "avg": true,
}

// scalar math functions lifted over atoms.
var kernelScalarFns = map[string]bool{
	"log": true, "exp": true, "sqrt": true, "abs": true,
}

func (c *checker) checkCall(x *CallExpr) (Type, error) {
	if len(x.Args) == 0 {
		return nil, fmt.Errorf("moa: %s() needs arguments", x.Fn)
	}
	at, err := c.check(x.Args[0])
	if err != nil {
		return nil, err
	}

	// Structure-provided function (getBL, ...)?
	if sf, ok := lookupStructFunc(x.Fn, at); ok {
		types := make([]Type, len(x.Args))
		types[0] = at
		for i := 1; i < len(x.Args); i++ {
			t, err := c.check(x.Args[i])
			if err != nil {
				return nil, err
			}
			types[i] = t
		}
		rt, err := sf.Check(types)
		if err != nil {
			return nil, err
		}
		x.T = rt
		return rt, nil
	}

	if kernelAggs[x.Fn] {
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("moa: %s takes one set argument", x.Fn)
		}
		elem, ok := ElemType(at)
		if !ok {
			return nil, fmt.Errorf("moa: %s over non-set type %s", x.Fn, at)
		}
		if x.Fn == "count" {
			x.T = IntType
			return x.T, nil
		}
		if !IsNumeric(elem) {
			return nil, fmt.Errorf("moa: %s over non-numeric elements %s", x.Fn, elem)
		}
		if x.Fn == "avg" {
			x.T = FloatType
		} else {
			x.T = elem
		}
		return x.T, nil
	}

	if kernelScalarFns[x.Fn] {
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("moa: %s takes one argument", x.Fn)
		}
		if !IsNumeric(at) {
			return nil, fmt.Errorf("moa: %s needs a numeric argument, got %s", x.Fn, at)
		}
		x.T = FloatType
		return x.T, nil
	}

	return nil, fmt.Errorf("moa: unknown function %q", x.Fn)
}

// validateJoinPred restricts join predicates to conjunctions of equalities
// between THIS1 fields and THIS2 fields (the flattenable fragment).
func validateJoinPred(e Expr) error {
	b, ok := e.(*BinExpr)
	if !ok {
		return fmt.Errorf("moa: join predicate must be an equality, got %s", e)
	}
	switch b.Op {
	case "and":
		if err := validateJoinPred(b.L); err != nil {
			return err
		}
		return validateJoinPred(b.R)
	case "=":
		lf, lok := b.L.(*Field)
		rf, rok := b.R.(*Field)
		if !lok || !rok {
			return fmt.Errorf("moa: join equality must compare tuple fields")
		}
		li, lok := lf.Recv.(*Ident)
		ri, rok := rf.Recv.(*Ident)
		if !lok || !rok || li.Name == ri.Name ||
			(li.Name != "THIS1" && li.Name != "THIS2") ||
			(ri.Name != "THIS1" && ri.Name != "THIS2") {
			return fmt.Errorf("moa: join equality must compare THIS1.f with THIS2.g")
		}
		return nil
	}
	return fmt.Errorf("moa: join predicate operator %q not supported", b.Op)
}

// atomKind returns the physical kind of an atom type, or 0 for non-atoms.
func atomKind(t Type) bat.Kind {
	if a, ok := t.(*AtomType); ok {
		return a.Kind
	}
	return 0
}

// comparable reports whether two atoms can be compared: same physical kind,
// or both numeric.
func comparable(a, b Type) bool {
	ka, kb := atomKind(a), atomKind(b)
	if ka == kb {
		return true
	}
	return IsNumeric(a) && IsNumeric(b)
}
