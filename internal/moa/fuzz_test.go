package moa

import "testing"

// FuzzMoaParse drives the Moa lexer and all three parser entry points
// (query, program, type DDL) with arbitrary input: malformed query text
// must produce an error, never a panic — this is the text a network client
// hands the server verbatim.
//
// Seed corpus: the inline seeds below plus testdata/fuzz/FuzzMoaParse.
func FuzzMoaParse(f *testing.F) {
	seeds := []string{
		"",
		";",
		"People",
		"map[sum(THIS)](map[THIS.score](People));",
		"select[THIS.age > 21 and THIS.age <= 40](People)",
		"map[TUPLE<n: THIS.name, s: THIS.score * 2.0>](People);",
		"map[getBL(THIS.annotation, query, stats)](Lib);",
		"select[not (THIS.age = 3)](People);",
		"map[sum(THIS)](map[getBL(THIS.body, query, stats)]( Docs ));",
		"count(People);",
		"map[THIS](People)(extra);",
		"select[THIS.age >](People);",
		"define Docs as SET<TUPLE<Atomic<URL>: source, CONTREP<Text>: body>>;",
		"define X as LIST<Atomic<Int>>;",
		"SET<TUPLE<Atomic<Text>: a>>",
		"TUPLE<<>>",
		"map[map[map[THIS](THIS)](THIS)](S);",
		"sel\x00ect[THIS](S);",
		"map[THIS.a.b.c](S) @",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if e, err := ParseQuery(src); err == nil && e != nil {
			_ = e.String()
		}
		_, _ = ParseProgram(src)
		_, _ = ParseType(src)
	})
}
