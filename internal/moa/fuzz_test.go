package moa

import (
	"fmt"
	"testing"
)

// FuzzMoaParse drives the Moa lexer and all three parser entry points
// (query, program, type DDL) with arbitrary input: malformed query text
// must produce an error, never a panic — this is the text a network client
// hands the server verbatim.
//
// Seed corpus: the inline seeds below plus testdata/fuzz/FuzzMoaParse.
func FuzzMoaParse(f *testing.F) {
	seeds := []string{
		"",
		";",
		"People",
		"map[sum(THIS)](map[THIS.score](People));",
		"select[THIS.age > 21 and THIS.age <= 40](People)",
		"map[TUPLE<n: THIS.name, s: THIS.score * 2.0>](People);",
		"map[getBL(THIS.annotation, query, stats)](Lib);",
		"select[not (THIS.age = 3)](People);",
		"map[sum(THIS)](map[getBL(THIS.body, query, stats)]( Docs ));",
		"count(People);",
		"map[THIS](People)(extra);",
		"select[THIS.age >](People);",
		"define Docs as SET<TUPLE<Atomic<URL>: source, CONTREP<Text>: body>>;",
		"define X as LIST<Atomic<Int>>;",
		"SET<TUPLE<Atomic<Text>: a>>",
		"TUPLE<<>>",
		"map[map[map[THIS](THIS)](THIS)](S);",
		"sel\x00ect[THIS](S);",
		"map[THIS.a.b.c](S) @",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if e, err := ParseQuery(src); err == nil && e != nil {
			_ = e.String()
		}
		_, _ = ParseProgram(src)
		_, _ = ParseType(src)
	})
}

// FuzzPlanOptimizer is the plan-optimizer differential fuzz target: for
// any query the naive plan (NoOptimize) and the fully optimised plan
// (fusion, pushdown, CSE) must produce identical results. An input the
// naive pipeline compiles but the optimised one rejects is also a bug.
func FuzzPlanOptimizer(f *testing.F) {
	seeds := []string{
		"map[THIS * 2.0](map[THIS.score](People));",
		"select[THIS.age > 21](select[THIS.score > 0.6](People));",
		"select[THIS > 0.6](map[THIS.score](People));",
		"map[sum(THIS.grades)](select[THIS.age < 41](People));",
		"map[THIS + 1.0](map[THIS * 2.0](map[THIS.score](People)));",
		"select[THIS > 1.0](map[sum(THIS.grades)](People));",
		"map[TUPLE<n: THIS.name, s: THIS.score * 2.0>](People);",
		"select[true](People);",
		"select[1 = 2](map[THIS.age](People));",
		"count(select[THIS.age > 21](People));",
		"sum(map[THIS.score](People));",
		"join[THIS1.name = THIS2.name](People, People);",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	db := mkPeopleDB(f)
	f.Fuzz(func(t *testing.T, src string) {
		naive := &Engine{DB: db, Opts: NoOptimize}
		opt := &Engine{DB: db, Opts: DefaultOptions}
		rn, errN := naive.Query(src, nil)
		ro, errO := opt.Query(src, nil)
		if errN != nil {
			return // invalid (or unflattenable) input either way
		}
		if errO != nil {
			t.Fatalf("optimised pipeline rejects what the naive one runs: %v\n%s", errO, src)
		}
		if (rn.Rows == nil) != (ro.Rows == nil) {
			t.Fatalf("result shape diverged for %s", src)
		}
		if rn.Rows == nil {
			if fmtScalar(rn.Scalar) != fmtScalar(ro.Scalar) {
				t.Fatalf("scalar diverged for %s: %v vs %v", src, rn.Scalar, ro.Scalar)
			}
			return
		}
		if len(rn.Rows) != len(ro.Rows) {
			t.Fatalf("cardinality diverged for %s: %d vs %d", src, len(rn.Rows), len(ro.Rows))
		}
		for i := range rn.Rows {
			if rn.Rows[i].OID != ro.Rows[i].OID || fmtScalar(rn.Rows[i].Value) != fmtScalar(ro.Rows[i].Value) {
				t.Fatalf("row %d diverged for %s: %v vs %v", i, src, rn.Rows[i], ro.Rows[i])
			}
		}
	})
}

func fmtScalar(v any) string { return fmt.Sprintf("%#v", v) }
