package moa

import (
	"strings"
	"testing"
)

// planFor builds and optimises the plan of a set query against db.
func planFor(t *testing.T, db *Database, src string, opts Options) Plan {
	t.Helper()
	e, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(e, &CheckEnv{DB: db}); err != nil {
		t.Fatal(err)
	}
	tr := &Translator{db: db, params: nil, opts: opts}
	p, err := tr.BuildPlan(e)
	if err != nil {
		t.Fatal(err)
	}
	if opts.TopK > 0 {
		p = &TopKPlan{Src: p, K: opts.TopK}
	}
	return OptimizePlan(p, opts)
}

func TestPlanMapFusion(t *testing.T) {
	db := mkPeopleDB(t)
	p := planFor(t, db, `map[THIS * 2.0](map[THIS.score](People));`, DefaultOptions)
	mp, ok := p.(*MapPlan)
	if !ok {
		t.Fatalf("plan root = %T", p)
	}
	if _, nested := mp.Src.(*MapPlan); nested {
		t.Fatalf("maps not fused:\n%s", PlanString(p))
	}
	if !strings.Contains(mp.Body.String(), "THIS.score * 2") {
		t.Fatalf("fused body wrong: %s", mp.Body)
	}
	// structure preserved without the rule
	p2 := planFor(t, db, `map[THIS * 2.0](map[THIS.score](People));`, NoOptimize)
	if _, nested := p2.(*MapPlan).Src.(*MapPlan); !nested {
		t.Fatal("NoOptimize fused maps")
	}
}

func TestPlanSelectFusionAndPushdown(t *testing.T) {
	db := mkPeopleDB(t)
	p := planFor(t, db, `select[THIS.age > 21](select[THIS.score > 0.6](People));`, DefaultOptions)
	sp, ok := p.(*SelectPlan)
	if !ok {
		t.Fatalf("plan root = %T\n%s", p, PlanString(p))
	}
	if _, nested := sp.Src.(*SelectPlan); nested {
		t.Fatalf("selects not fused:\n%s", PlanString(p))
	}

	// selection pushdown: the select moves below the map with THIS
	// substituted by the map body.
	p = planFor(t, db, `select[THIS > 0.6](map[THIS.score](People));`, DefaultOptions)
	mp, ok := p.(*MapPlan)
	if !ok {
		t.Fatalf("pushdown root = %T\n%s", p, PlanString(p))
	}
	inner, ok := mp.Src.(*SelectPlan)
	if !ok {
		t.Fatalf("select not pushed below map:\n%s", PlanString(p))
	}
	if !strings.Contains(inner.Pred.String(), "THIS.score") {
		t.Fatalf("pushed predicate missing substitution: %s", inner.Pred)
	}
}

// TestPlanPushdownSemantics: pushdown on/off must give identical results.
func TestPlanPushdownSemantics(t *testing.T) {
	db := mkPeopleDB(t)
	src := `select[THIS > 0.6](map[THIS.score](People));`
	on := NewEngine(db)
	off := &Engine{DB: db, Opts: DefaultOptions}
	off.Opts.PushSelects = false
	r1, err := on.Query(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := off.Query(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("pushdown changed cardinality: %d vs %d", len(r1.Rows), len(r2.Rows))
	}
	for i := range r1.Rows {
		if r1.Rows[i].OID != r2.Rows[i].OID || r1.Rows[i].Value != r2.Rows[i].Value {
			t.Fatalf("row %d: %v vs %v", i, r1.Rows[i], r2.Rows[i])
		}
	}
}

// TestPlanTopKFallbackShape: top-k over a plan with no pruned form stays a
// TopKPlan (lowered as the exact fallback) instead of breaking the query.
func TestPlanTopKFallbackShape(t *testing.T) {
	db := mkPeopleDB(t)
	opts := DefaultOptions
	opts.TopK = 2
	p := planFor(t, db, `map[THIS.score](People);`, opts)
	if _, ok := p.(*TopKPlan); !ok {
		t.Fatalf("expected TopKPlan fallback root, got %T\n%s", p, PlanString(p))
	}
	eng := &Engine{DB: db, Opts: opts}
	res, err := eng.Query(`map[THIS.score](People);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranked {
		t.Fatal("fallback marked Ranked")
	}
	if len(res.Rows) != 4 {
		t.Fatalf("fallback must return the full result for the caller to cut, got %d rows", len(res.Rows))
	}
}

func TestPlanString(t *testing.T) {
	db := mkPeopleDB(t)
	p := planFor(t, db, `select[THIS.age > 21](People);`, DefaultOptions)
	s := PlanString(p)
	if !strings.Contains(s, "select") || !strings.Contains(s, "scan People") {
		t.Fatalf("PlanString: %q", s)
	}
}
