package moa

import (
	"fmt"
	"sort"
	"sync"

	"mirror/internal/bat"
)

// Structure is Moa's extensibility mechanism: "new structures can be added
// to the system, similar to the well-known principle of base type
// extensibility in object-relational database systems". The kernel ships
// TUPLE/SET/LIST; domain-specific structures such as CONTREP register
// themselves here (see internal/ir).
//
// A structure defines (1) how its type parameters are validated, (2) which
// physical BAT columns a field of this structure decomposes into, (3) how a
// logical value is inserted into those columns, and (4) the functions it
// contributes to the query algebra, each with a typing rule, a flattening
// (MIL-emitting) rule, and a tuple-at-a-time evaluation rule.
type Structure interface {
	Name() string
	CheckParams(params []Type) error
	// Columns lists the physical BATs backing a field with physical name
	// prefix (e.g. "lib_annotation").
	Columns(prefix string) []ColumnSpec
	// Insert appends one logical value (structure-specific Go representation)
	// owned by owner into the column BATs. The Database is already locked.
	Insert(db *Database, prefix string, owner bat.OID, v any) error
	// Finalize recomputes any derived columns after a batch of inserts
	// (e.g. CONTREP recomputes beliefs once collection statistics settle).
	Finalize(db *Database, prefix string) error
	// Materialize reconstructs the logical value owned by owner from the
	// column BATs; used when query results are turned back into Go values
	// and by the tuple-at-a-time interpreter.
	Materialize(db *Database, prefix string, owner bat.OID) (any, error)
	// Functions returns the query functions provided by this structure.
	Functions() map[string]*StructFunc
}

// ColumnSpec declares one physical BAT of a structure.
type ColumnSpec struct {
	Suffix   string // appended to the field prefix, e.g. "_term"
	HeadKind bat.Kind
	TailKind bat.Kind
}

// StructFunc is a function contributed by a structure (such as CONTREP's
// getBL). Check types a call; EmitMap flattens a call inside a map context;
// EvalTuple evaluates it per element in the interpreted baseline.
type StructFunc struct {
	// Check returns the result type; args[0] is always the structure value.
	Check func(args []Type) (Type, error)
	// EmitMap emits MIL for a call whose receiver (args[0]) compiled to
	// recv within the map context ctx; extra holds the compiled remaining
	// arguments. It returns the result representation over ctx's domain.
	EmitMap func(tr *Translator, ctx *Ctx, recv Rep, extra []Rep) (Rep, error)
	// EvalTuple evaluates the call on one element's materialised value.
	EvalTuple func(ip *Interp, recv any, extra []any) (any, error)
	// FuseAgg maps an enclosing aggregate name to a fused function name:
	// agg(fn(args)) rewrites to fused(args). This is how CONTREP tells the
	// optimizer that sum∘getBL collapses into the physical getbl operator.
	FuseAgg map[string]string
	// EmitTopK, when non-nil, lets the plan optimizer fuse a top-k request
	// over a full-collection map of this function into one pruned physical
	// operator: it emits MIL returning the k best elements already ranked
	// (score descending, OID ascending) and describes the result as a
	// SetVal whose domain is in ranking order. CONTREP registers this for
	// getBLScore (max-score pruned retrieval).
	EmitTopK func(tr *Translator, ctx *Ctx, recv Rep, extra []Rep, k int) (*SetVal, error)
}

var (
	structMu  sync.RWMutex
	structReg = map[string]Structure{}
)

// RegisterStructure adds a structure to the global registry. Registering a
// name twice replaces the previous entry (tests rely on idempotence).
func RegisterStructure(s Structure) {
	structMu.Lock()
	defer structMu.Unlock()
	structReg[s.Name()] = s
}

// LookupStructure resolves a registered structure by name.
func LookupStructure(name string) (Structure, bool) {
	structMu.RLock()
	defer structMu.RUnlock()
	s, ok := structReg[name]
	return s, ok
}

// RegisteredStructures lists registered structure names, sorted.
func RegisteredStructures() []string {
	structMu.RLock()
	defer structMu.RUnlock()
	names := make([]string, 0, len(structReg))
	for n := range structReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// lookupStructFunc finds a function named fn among all registered
// structures whose receiver type matches recv.
func lookupStructFunc(fn string, recv Type) (*StructFunc, bool) {
	st, ok := recv.(*StructType)
	if !ok {
		return nil, false
	}
	f, ok := st.S.Functions()[fn]
	return f, ok
}

// errStructure is a helper for structure implementations.
func errStructure(name, format string, args ...any) error {
	return fmt.Errorf("moa: %s: %s", name, fmt.Sprintf(format, args...))
}
