package moa

// Rep is the flattened representation of a Moa value during translation:
// which MIL variables hold its BATs, relative to the current map context's
// element domain. Structures (e.g. CONTREP in internal/ir) receive and
// return Reps from their EmitMap hooks, so these types are exported.
type Rep interface{ isRep() }

// AtomRep is an atomic value per context element: a MIL variable holding a
// BAT [ctxOID, value], positionally aligned with the context domain.
type AtomRep struct {
	Var string
	T   Type
}

func (*AtomRep) isRep() {}

// ConstRep is a compile-time scalar constant (context-independent).
type ConstRep struct {
	V any
	T Type
}

func (*ConstRep) isRep() {}

// VarRep is a scalar computed at run time (a MIL variable holding a
// non-BAT value), e.g. a top-level aggregate.
type VarRep struct {
	Var string
	T   Type
}

func (*VarRep) isRep() {}

// TupleRep is a tuple value per context element: one Rep per field.
type TupleRep struct {
	Names  []string
	Fields []Rep
	T      *TupleType
}

func (*TupleRep) isRep() {}

// SetRep is a nested set per context element: AssocVar holds
// [ctxOID, childOID]; for sets of atoms ValsVar holds [childOID, value]
// (aligned with AssocVar tails). PosVar is set for LIST fields.
type SetRep struct {
	AssocVar string
	ValsVar  string // "" when elements are not atomic
	PosVar   string // "" unless LIST
	ElemT    Type
}

func (*SetRep) isRep() {}

// ElemRep is the element view of a stored collection inside a map context:
// field accesses are compiled lazily against the physical columns under
// Prefix, restricted to the context domain.
type ElemRep struct {
	Prefix string
	Ctx    *Ctx
	T      Type // element type: *TupleType or *AtomType
}

func (*ElemRep) isRep() {}

// StructRep is a structure-typed field (e.g. CONTREP) within a context; the
// structure's EmitMap hooks interpret it. Prefix names its physical
// columns, Ctx the owning element domain.
type StructRep struct {
	Prefix string
	Ctx    *Ctx
	T      *StructType
}

func (*StructRep) isRep() {}

// ParamSetRep is a constant set bound as a query parameter: ValsVar holds
// [void, value] (one BUN per element), independent of any context.
type ParamSetRep struct {
	ValsVar string
	ElemT   Type
}

func (*ParamSetRep) isRep() {}

// StatsRep is the opaque `stats` handle passed to getBL; the receiving
// structure uses its own columns, as the statistics belong to the indexed
// collection.
type StatsRep struct{}

func (*StatsRep) isRep() {}

// Ctx is a map/select context: the domain of THIS.
type Ctx struct {
	// DomainVar holds [elemOID, elemOID] for the elements in scope.
	DomainVar string
	// Full is true when DomainVar covers the entire stored collection, which
	// lets field accesses skip the restriction join.
	Full bool
	// ElemT is the element type of the context.
	ElemT Type
	// This is the representation of THIS.
	This Rep
}
