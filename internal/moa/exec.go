package moa

import (
	"fmt"
	"sort"
	"sync"

	"mirror/internal/bat"
	"mirror/internal/mil"
)

// Engine compiles and executes Moa queries against a Database using the
// flattened (set-at-a-time) execution path.
type Engine struct {
	DB   *Database
	Opts Options
}

// NewEngine returns an engine with all optimisations enabled.
func NewEngine(db *Database) *Engine {
	return &Engine{DB: db, Opts: DefaultOptions}
}

// Result is a materialised query result. Set-typed queries fill Rows (one
// per element, carrying the element OID); scalar queries fill Scalar.
// Ranked reports that Rows are already in ranking order (score descending,
// OID ascending) cut at Options.TopK, because the optimiser served the
// query with the pruned top-k operator; callers must not re-sort.
type Result struct {
	T      Type
	Scalar any
	Rows   []Row
	Ranked bool
}

// Row is one element of a set result. Value is a Go rendering of the Moa
// value: atoms are scalars, tuples map[string]any, sets []any, structure
// values whatever the structure's Materialize returns.
type Row struct {
	OID   bat.OID
	Value any
}

// Find returns the row with the given OID.
func (r *Result) Find(oid bat.OID) (Row, bool) {
	for _, row := range r.Rows {
		if row.OID == oid {
			return row, true
		}
	}
	return Row{}, false
}

// SortByScoreDesc orders rows by float value, descending, ties by OID
// ascending (the standard ranked-retrieval presentation). Non-float and
// missing values sort last.
func (r *Result) SortByScoreDesc() {
	score := func(v any) (float64, bool) {
		f, ok := v.(float64)
		return f, ok
	}
	sort.SliceStable(r.Rows, func(i, j int) bool {
		fi, oki := score(r.Rows[i].Value)
		fj, okj := score(r.Rows[j].Value)
		switch {
		case oki && okj && fi != fj:
			return fi > fj
		case oki != okj:
			return oki
		}
		return r.Rows[i].OID < r.Rows[j].OID
	})
}

// Compiled is a reusable compiled query: parse/check/rewrite/flatten done
// once, Run many times (the MIL program re-executes against the current
// BATs).
type Compiled struct {
	eng       *Engine
	T         Type
	prog      *mil.Program
	bindings  map[string]*bat.BAT
	outSet    *OutSet
	outScalar Rep
	src       string
	parallel  bool
	ranked    bool
}

// Compile parses, checks, rewrites and flattens a query.
func (e *Engine) Compile(src string, params map[string]Param) (*Compiled, error) {
	expr, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	ptypes := make(map[string]Type, len(params))
	for k, p := range params {
		ptypes[k] = p.T
	}
	if _, err := Check(expr, &CheckEnv{DB: e.DB, Params: ptypes}); err != nil {
		return nil, err
	}
	tl, err := Translate(e.DB, expr, params, e.Opts)
	if err != nil {
		return nil, err
	}
	return &Compiled{
		eng: e, T: tl.T, prog: tl.Prog, bindings: tl.Bindings,
		outSet: tl.OutSet, outScalar: tl.OutScalar, src: src,
		parallel: tl.Parallel, ranked: tl.Ranked,
	}, nil
}

// Explain parses, checks and plans a set-typed query, returning the
// optimised logical plan as an indented operator tree (the shell's \plan
// command). Scalar queries report their aggregate shape.
func (e *Engine) Explain(src string, params map[string]Param) (string, error) {
	expr, err := ParseQuery(src)
	if err != nil {
		return "", err
	}
	ptypes := make(map[string]Type, len(params))
	for k, p := range params {
		ptypes[k] = p.T
	}
	if _, err := Check(expr, &CheckEnv{DB: e.DB, Params: ptypes}); err != nil {
		return "", err
	}
	if _, isSet := ElemType(expr.Type()); !isSet {
		return fmt.Sprintf("scalar [%s]\n", expr), nil
	}
	tr := &Translator{db: e.DB, params: params, opts: e.Opts}
	plan, err := tr.BuildPlan(expr)
	if err != nil {
		return "", err
	}
	if e.Opts.TopK > 0 {
		plan = &TopKPlan{Src: plan, K: e.Opts.TopK}
	}
	return PlanString(OptimizePlan(plan, e.Opts)), nil
}

// Query compiles and runs in one step.
func (e *Engine) Query(src string, params map[string]Param) (*Result, error) {
	c, err := e.Compile(src, params)
	if err != nil {
		return nil, err
	}
	return c.Run()
}

// MIL returns the flattened program text (the paper's intermediate
// language; cmd/moash shows it with \mil).
func (c *Compiled) MIL() string { return c.prog.String() }

// Run executes the compiled program against the current database state and
// materialises the result.
func (c *Compiled) Run() (*Result, error) {
	env := mil.NewEnv()
	env.TopKTheta = c.eng.Opts.TopKTheta
	for k, v := range c.eng.DB.Snapshot() {
		env.Bind(k, v)
	}
	for k, v := range c.bindings {
		env.Bind(k, v)
	}
	if _, err := mil.Run(c.prog, env); err != nil {
		return nil, fmt.Errorf("moa: executing %q: %w", c.src, err)
	}
	res := &Result{T: c.T, Ranked: c.ranked}
	if c.outSet != nil {
		m := &materializer{eng: c.eng, env: env, assocIdx: map[string]map[bat.OID][]bat.OID{}}
		dom, err := env.BAT(c.outSet.DomainVar)
		if err != nil {
			return nil, err
		}
		n := dom.Len()
		// Large results materialise over the shared parallel kernel: the
		// lazily built lookup indexes are warmed up front so the per-row
		// work is read-only, then rows fill in parallel, one range per
		// worker. Reps the warm-up cannot prove read-only (opaque structure
		// Materialize hooks) fall back to the serial loop.
		if c.parallel && n >= bat.ParallelThreshold() && bat.Parallelism() > 1 && m.prewarm(c.outSet.Elem) {
			res.Rows = make([]Row, n)
			var mu sync.Mutex
			firstErr, errRow := error(nil), n
			bat.ParallelFor(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					oid := dom.Head.OIDAt(i)
					v, err := m.value(c.outSet.Elem, oid)
					if err != nil {
						mu.Lock()
						if i < errRow {
							firstErr, errRow = err, i
						}
						mu.Unlock()
						return
					}
					res.Rows[i] = Row{OID: oid, Value: v}
				}
			})
			if firstErr != nil {
				return nil, firstErr
			}
			return res, nil
		}
		res.Rows = make([]Row, 0, n)
		for i := 0; i < n; i++ {
			oid := dom.Head.OIDAt(i)
			v, err := m.value(c.outSet.Elem, oid)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Row{OID: oid, Value: v})
		}
		return res, nil
	}
	switch r := c.outScalar.(type) {
	case *ConstRep:
		res.Scalar = r.V
	case *VarRep:
		v, ok := env.Lookup(r.Var)
		if !ok {
			return nil, fmt.Errorf("moa: scalar result variable %q missing", r.Var)
		}
		res.Scalar = v
	default:
		return nil, fmt.Errorf("moa: no result representation")
	}
	return res, nil
}

// materializer turns flattened reps back into Go values.
type materializer struct {
	eng      *Engine
	env      *mil.Env
	assocIdx map[string]map[bat.OID][]bat.OID
	posIdx   map[string][]int32 // var → dense OID→position index (-1 absent)
}

// lookupAtom finds the value of oid in an atom variable, via a dense
// positional index when the OID space is compact (the common case after
// flattening) and via the hash index otherwise.
func (m *materializer) lookupAtom(varName string, oid bat.OID) (any, bool, error) {
	b, err := m.env.BAT(varName)
	if err != nil {
		return nil, false, err
	}
	if m.posIdx == nil {
		m.posIdx = map[string][]int32{}
	}
	idx, cached := m.posIdx[varName]
	if !cached {
		maxOID := bat.OID(0)
		compact := b.Head.Kind() == bat.KindOID || b.Head.Kind() == bat.KindVoid
		if compact {
			for i := 0; i < b.Len(); i++ {
				if h := b.Head.OIDAt(i); h > maxOID {
					maxOID = h
				}
			}
			if uint64(maxOID) >= uint64(4*b.Len()+1024) {
				compact = false
			}
		}
		if compact {
			idx = make([]int32, maxOID+1)
			for i := range idx {
				idx[i] = -1
			}
			for i := 0; i < b.Len(); i++ {
				h := b.Head.OIDAt(i)
				if idx[h] == -1 {
					idx[h] = int32(i)
				}
			}
		}
		m.posIdx[varName] = idx // nil marks "use hash"
	}
	if idx != nil {
		if uint64(oid) >= uint64(len(idx)) || idx[oid] < 0 {
			return nil, false, nil
		}
		return b.Tail.Get(int(idx[oid])), true, nil
	}
	v, ok := b.Find(oid)
	return v, ok, nil
}

// prewarm builds every lazily cached index the rep tree will touch and
// reports whether per-row materialisation is then read-only, i.e. safe to
// run concurrently. Opaque structure Materialize hooks cannot be proven
// read-only and force the serial path; so does any missing BAT (the serial
// loop then reports the error in row order).
func (m *materializer) prewarm(rep Rep) bool {
	switch r := rep.(type) {
	case *ConstRep, *VarRep, *ParamSetRep, *StatsRep:
		return true
	case *AtomRep:
		_, _, err := m.lookupAtom(r.Var, 0)
		return err == nil
	case *TupleRep:
		for _, f := range r.Fields {
			if !m.prewarm(f) {
				return false
			}
		}
		return true
	case *SetRep:
		if _, err := m.children(r.AssocVar, 0); err != nil {
			return false
		}
		if r.ValsVar != "" {
			vals, err := m.env.BAT(r.ValsVar)
			if err != nil {
				return false
			}
			vals.Find(bat.OID(0)) // build the hash index once
		}
		return true
	case *ElemRep:
		return m.prewarmStored(r.Prefix, r.T)
	}
	return false
}

// prewarmStored walks the static type structure storedValue will traverse,
// warming the association indexes and hash indexes along the way.
func (m *materializer) prewarmStored(prefix string, t Type) bool {
	switch tt := t.(type) {
	case *AtomType:
		b, ok := m.eng.DB.BAT(prefix + "_val")
		if !ok {
			return false
		}
		b.Find(bat.OID(0))
		return true
	case *TupleType:
		for i, n := range tt.Names {
			fprefix := prefix + "_" + n
			switch ft := tt.Types[i].(type) {
			case *AtomType:
				b, ok := m.eng.DB.BAT(fprefix)
				if !ok {
					return false
				}
				b.Find(bat.OID(0))
			case *SetType, *ListType:
				if _, err := m.children(fprefix, 0); err != nil {
					return false
				}
				et, _ := ElemType(ft)
				if !m.prewarmStored(fprefix, et) {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	return false
}

func (m *materializer) value(rep Rep, oid bat.OID) (any, error) {
	switch r := rep.(type) {
	case *AtomRep:
		v, ok, err := m.lookupAtom(r.Var, oid)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil // element absent (e.g. min over empty set)
		}
		return v, nil
	case *ConstRep:
		return r.V, nil
	case *VarRep:
		v, ok := m.env.Lookup(r.Var)
		if !ok {
			return nil, fmt.Errorf("moa: variable %q missing at materialisation", r.Var)
		}
		return v, nil
	case *TupleRep:
		out := make(map[string]any, len(r.Names))
		for i, n := range r.Names {
			v, err := m.value(r.Fields[i], oid)
			if err != nil {
				return nil, err
			}
			out[n] = v
		}
		return out, nil
	case *SetRep:
		children, err := m.children(r.AssocVar, oid)
		if err != nil {
			return nil, err
		}
		out := make([]any, 0, len(children))
		if r.ValsVar == "" {
			for _, ch := range children {
				out = append(out, ch)
			}
			return out, nil
		}
		vals, err := m.env.BAT(r.ValsVar)
		if err != nil {
			return nil, err
		}
		for _, ch := range children {
			v, _ := vals.Find(ch)
			out = append(out, v)
		}
		return out, nil
	case *ElemRep:
		return m.storedValue(r.Prefix, r.T, oid)
	case *StructRep:
		return r.T.S.Materialize(m.eng.DB, r.Prefix, oid)
	case *ParamSetRep:
		vals, err := m.env.BAT(r.ValsVar)
		if err != nil {
			return nil, err
		}
		out := make([]any, vals.Len())
		for i := range out {
			out[i] = vals.Tail.Get(i)
		}
		return out, nil
	case *StatsRep:
		return "<stats>", nil
	}
	return nil, fmt.Errorf("moa: cannot materialise %T", rep)
}

// children returns the child OIDs of owner in an association variable,
// building a grouping index on first use.
func (m *materializer) children(assocVar string, owner bat.OID) ([]bat.OID, error) {
	idx, ok := m.assocIdx[assocVar]
	if !ok {
		var b *bat.BAT
		if m.env != nil {
			if bb, err := m.env.BAT(assocVar); err == nil {
				b = bb
			}
		}
		if b == nil {
			bb, found := m.eng.DB.BAT(assocVar)
			if !found {
				return nil, fmt.Errorf("moa: association %q not found", assocVar)
			}
			b = bb
		}
		idx = make(map[bat.OID][]bat.OID, b.Len())
		for i := 0; i < b.Len(); i++ {
			h := b.Head.OIDAt(i)
			idx[h] = append(idx[h], b.Tail.OIDAt(i))
		}
		m.assocIdx[assocVar] = idx
	}
	return idx[owner], nil
}

// storedValue reconstructs a stored element (tuple or atom) by reading the
// base BATs directly.
func (m *materializer) storedValue(prefix string, t Type, oid bat.OID) (any, error) {
	switch tt := t.(type) {
	case *AtomType:
		b, ok := m.eng.DB.BAT(prefix + "_val")
		if !ok {
			return nil, fmt.Errorf("moa: missing BAT %s_val", prefix)
		}
		v, _ := b.Find(oid)
		return v, nil
	case *TupleType:
		out := make(map[string]any, len(tt.Names))
		for i, n := range tt.Names {
			fprefix := prefix + "_" + n
			switch ft := tt.Types[i].(type) {
			case *AtomType:
				b, ok := m.eng.DB.BAT(fprefix)
				if !ok {
					return nil, fmt.Errorf("moa: missing BAT %s", fprefix)
				}
				v, _ := b.Find(oid)
				out[n] = v
			case *StructType:
				v, err := ft.S.Materialize(m.eng.DB, fprefix, oid)
				if err != nil {
					return nil, err
				}
				out[n] = v
			case *SetType, *ListType:
				children, err := m.children(fprefix, oid)
				if err != nil {
					return nil, err
				}
				et, _ := ElemType(ft)
				items := make([]any, 0, len(children))
				for _, ch := range children {
					cv, err := m.storedValue(fprefix, et, ch)
					if err != nil {
						return nil, err
					}
					items = append(items, cv)
				}
				out[n] = items
			default:
				return nil, fmt.Errorf("moa: unsupported stored field type %s", tt.Types[i])
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("moa: unsupported stored element type %s", t)
}
