package moa

import (
	"fmt"
	"strings"
)

// This file is the logical plan layer between the checked Moa AST and MIL:
// Translate builds a Plan from the expression, OptimizePlan runs rule-based
// rewrites over it (map/select fusion, selection pushdown, aggregate
// fusion, top-k pushdown into retrieval), and the lowering pass in
// translate.go emits MIL from the optimised plan. The paper's claim that
// the logical/physical split "provides an excellent basis for algebraic
// query optimization" lives here: rewrites operate on explicit operators
// instead of being fused into a one-shot translator.

// Plan is one node of the logical query plan for a set-typed (sub)query.
// Map and select bodies remain Moa expressions — Moa is a comprehension
// algebra, and the element-wise work is what the expression compiler
// flattens — while the set-level structure the optimizer reasons about is
// explicit.
type Plan interface {
	isPlan()
	describe(sb *strings.Builder, indent int)
}

// ScanPlan enumerates a stored collection (the full OID domain).
type ScanPlan struct{ Set string }

// ParamScanPlan enumerates a set-valued query parameter.
type ParamScanPlan struct {
	Name string
	T    *SetType
}

// MapPlan applies Body to every element of Src (map[Body](Src)).
type MapPlan struct {
	Src  Plan
	Body Expr
}

// SelectPlan keeps the elements of Src satisfying Pred.
type SelectPlan struct {
	Src  Plan
	Pred Expr
}

// JoinPlan joins two set plans; E retains the original join expression for
// its predicate and result typing.
type JoinPlan struct {
	Left, Right Plan
	E           *JoinExpr
}

// TopKPlan asks for the K best elements of Src under the ranked-retrieval
// order (score descending, OID ascending). It is introduced at the plan
// root by Options.TopK; when the optimizer cannot push it into a pruned
// retrieval operator it lowers as a no-op and the executor's exhaustive
// ranking applies the cut (the exact fallback).
type TopKPlan struct {
	Src Plan
	K   int
}

// PrunedPlan is the fusion of TopK ∘ Map[score-call] ∘ Scan: the structure
// function's EmitTopK hook emits a single physical operator that evaluates
// the retrieval with upper-bound pruning and returns only the ranked top K.
type PrunedPlan struct {
	Src  *ScanPlan
	Call *CallExpr
	Fn   *StructFunc
	K    int
}

func (*ScanPlan) isPlan()      {}
func (*ParamScanPlan) isPlan() {}
func (*MapPlan) isPlan()       {}
func (*SelectPlan) isPlan()    {}
func (*JoinPlan) isPlan()      {}
func (*TopKPlan) isPlan()      {}
func (*PrunedPlan) isPlan()    {}

// BuildPlan turns a checked set-typed expression into the initial
// (unoptimised) plan. The translator supplies parameter and schema
// context.
func (tr *Translator) BuildPlan(e Expr) (Plan, error) {
	switch x := e.(type) {
	case *Ident:
		if p, ok := tr.params[x.Name]; ok {
			st, ok := p.T.(*SetType)
			if !ok {
				return nil, fmt.Errorf("moa: parameter %q is not a set", x.Name)
			}
			return &ParamScanPlan{Name: x.Name, T: st}, nil
		}
		if _, ok := tr.db.Set(x.Name); !ok {
			return nil, fmt.Errorf("moa: unknown set %q", x.Name)
		}
		return &ScanPlan{Set: x.Name}, nil

	case *MapExpr:
		src, err := tr.BuildPlan(x.Src)
		if err != nil {
			return nil, err
		}
		return &MapPlan{Src: src, Body: x.Body}, nil

	case *SelectExpr:
		src, err := tr.BuildPlan(x.Src)
		if err != nil {
			return nil, err
		}
		return &SelectPlan{Src: src, Pred: x.Pred}, nil

	case *JoinExpr:
		left, err := tr.BuildPlan(x.Left)
		if err != nil {
			return nil, err
		}
		right, err := tr.BuildPlan(x.Right)
		if err != nil {
			return nil, err
		}
		return &JoinPlan{Left: left, Right: right, E: x}, nil

	case *CallExpr:
		return nil, fmt.Errorf("moa: set-valued call %q outside map context is not supported", x.Fn)
	}
	return nil, fmt.Errorf("moa: expression %s is not a set", e)
}

// OptimizePlan applies the enabled rewrite rules until fixpoint (bounded so
// pathological rule interactions still terminate).
func OptimizePlan(p Plan, opts Options) Plan {
	for i := 0; i < 20; i++ {
		changed := false
		p = rewritePlan(p, opts, &changed)
		if !changed {
			return p
		}
	}
	return p
}

// rewritePlan runs one bottom-up rewrite pass.
func rewritePlan(p Plan, opts Options, changed *bool) Plan {
	switch n := p.(type) {
	case *MapPlan:
		n.Src = rewritePlan(n.Src, opts, changed)
		if opts.FuseAggregates {
			n.Body = rewriteExprAggs(n.Body, changed)
		}
		// map[f](map[g](S)) → map[f[THIS:=g]](S)
		if opts.FuseMaps {
			if inner, ok := n.Src.(*MapPlan); ok {
				*changed = true
				return &MapPlan{Src: inner.Src, Body: substThis(cloneExpr(n.Body), inner.Body)}
			}
		}
		return n

	case *SelectPlan:
		n.Src = rewritePlan(n.Src, opts, changed)
		if opts.FuseAggregates {
			n.Pred = rewriteExprAggs(n.Pred, changed)
		}
		// select[p](select[q](S)) → select[q and p](S)
		if opts.FuseSelects {
			if inner, ok := n.Src.(*SelectPlan); ok {
				*changed = true
				return &SelectPlan{
					Src:  inner.Src,
					Pred: &BinExpr{Op: "and", L: inner.Pred, R: n.Pred, T: BoolType},
				}
			}
		}
		// selection pushdown: select[p](map[f](S)) → map[f](select[p[THIS:=f]](S)).
		// Valid for any pure element-wise f; the selected sub-domain is
		// identical, and the map then materialises only surviving elements.
		if opts.PushSelects {
			if inner, ok := n.Src.(*MapPlan); ok {
				*changed = true
				pushed := substThis(cloneExpr(n.Pred), cloneExpr(inner.Body))
				return &MapPlan{
					Src:  &SelectPlan{Src: inner.Src, Pred: pushed},
					Body: inner.Body,
				}
			}
		}
		return n

	case *JoinPlan:
		n.Left = rewritePlan(n.Left, opts, changed)
		n.Right = rewritePlan(n.Right, opts, changed)
		return n

	case *TopKPlan:
		n.Src = rewritePlan(n.Src, opts, changed)
		// top-k pushdown: topk(map[f-with-pruned-form](scan S)) → pruned
		// operator. Only a full-collection scan qualifies: the physical
		// operator's bounds cover the whole posting file, so a restricted
		// domain (selects, joins, nested maps) keeps the exhaustive path.
		if mp, ok := n.Src.(*MapPlan); ok {
			if scan, ok := mp.Src.(*ScanPlan); ok {
				if call, ok := mp.Body.(*CallExpr); ok && len(call.Args) > 0 {
					if sf, ok := lookupStructFunc(call.Fn, call.Args[0].Type()); ok && sf.EmitTopK != nil {
						*changed = true
						return &PrunedPlan{Src: scan, Call: call, Fn: sf, K: n.K}
					}
				}
			}
		}
		return n
	}
	return p
}

// rewriteExprAggs applies the aggregate-fusion rule inside a map body or
// predicate: agg(structfn(args)) becomes the fused function the structure
// registered (for CONTREP, sum∘getBL → getBLScore).
func rewriteExprAggs(e Expr, changed *bool) Expr {
	return walkRewrite(e, func(n Expr) Expr {
		if r, ok := fuseAggNode(n); ok {
			*changed = true
			return r
		}
		return n
	})
}

// fuseAggNode matches one agg(structfn(...)) call.
func fuseAggNode(n Expr) (Expr, bool) {
	x, ok := n.(*CallExpr)
	if !ok || len(x.Args) != 1 {
		return nil, false
	}
	innerCall, ok := x.Args[0].(*CallExpr)
	if !ok || len(innerCall.Args) == 0 {
		return nil, false
	}
	sf, ok := lookupStructFunc(innerCall.Fn, innerCall.Args[0].Type())
	if !ok || sf.FuseAgg == nil {
		return nil, false
	}
	fused, ok := sf.FuseAgg[x.Fn]
	if !ok {
		return nil, false
	}
	return &CallExpr{Fn: fused, Args: innerCall.Args, T: x.T}, true
}

// PlanString renders a plan as an indented operator tree (tests and the
// shell's explain output).
func PlanString(p Plan) string {
	var sb strings.Builder
	p.describe(&sb, 0)
	return sb.String()
}

func ind(sb *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		sb.WriteString("  ")
	}
}

func (n *ScanPlan) describe(sb *strings.Builder, d int) {
	ind(sb, d)
	fmt.Fprintf(sb, "scan %s\n", n.Set)
}

func (n *ParamScanPlan) describe(sb *strings.Builder, d int) {
	ind(sb, d)
	fmt.Fprintf(sb, "param %s\n", n.Name)
}

func (n *MapPlan) describe(sb *strings.Builder, d int) {
	ind(sb, d)
	fmt.Fprintf(sb, "map [%s]\n", n.Body)
	n.Src.describe(sb, d+1)
}

func (n *SelectPlan) describe(sb *strings.Builder, d int) {
	ind(sb, d)
	fmt.Fprintf(sb, "select [%s]\n", n.Pred)
	n.Src.describe(sb, d+1)
}

func (n *JoinPlan) describe(sb *strings.Builder, d int) {
	ind(sb, d)
	fmt.Fprintf(sb, "join [%s]\n", n.E.Pred)
	n.Left.describe(sb, d+1)
	n.Right.describe(sb, d+1)
}

func (n *TopKPlan) describe(sb *strings.Builder, d int) {
	ind(sb, d)
	fmt.Fprintf(sb, "topk %d (exhaustive fallback)\n", n.K)
	n.Src.describe(sb, d+1)
}

func (n *PrunedPlan) describe(sb *strings.Builder, d int) {
	ind(sb, d)
	fmt.Fprintf(sb, "pruned-topk %d [%s]\n", n.K, n.Call)
	n.Src.describe(sb, d+1)
}
