// Package moa implements the Moa object algebra and data model [BWK98]: the
// logical layer of the Mirror DBMS. Moa is based on "structural object
// orientation": structures (TUPLE, SET, LIST and registered extensions such
// as CONTREP) build complex types from atomic base types inherited from the
// physical layer. Moa expressions compile through an explicit logical plan
// (BuildPlan → OptimizePlan → lowering; see plan.go) and are flattened
// ("Flattening an object algebra to provide performance", ICDE 1998) into
// MIL programs over BATs, which gives set-at-a-time execution and algebraic
// optimisation — including top-k pushdown into pruned retrieval operators
// (Options.TopK); a tuple-at-a-time interpreter of the same algebra is
// included as the performance baseline the flattening argument is made
// against.
//
// # Physical decomposition and its invariants
//
// Database maps every `define S as SET<TUPLE<...>>` onto BATs (see the
// Database doc for the exact naming scheme). Two invariants matter to
// every consumer:
//
//   - Element identity is dense: set S's elements are OIDs 0..card-1,
//     so each atomic field BAT "S_f" has a void (dense) head and tail
//     position i holds the value of element i. Query translation and
//     the storage layer both exploit this.
//   - OID counters are derivable: SyncAfterLoad recomputes per-set
//     counters and cardinalities from the "__id" identity BATs, which
//     is why a store can be recovered from BATs + schema text alone
//     (no separate counter file; see ARCHITECTURE.md, recovery
//     sequence).
//
// Mutation goes through Database (Insert/Finalize/Reset), which holds
// the write lock while invoking Structure hooks; hooks must use the
// *L accessors (BATL, PutBATL) to avoid self-deadlock. BATs obtained
// from Snapshot or BAT are shared, not copied — they follow the
// read-only-views rule documented in package bat.
package moa

import (
	"fmt"
	"strings"

	"mirror/internal/bat"
)

// Type is a Moa logical type.
type Type interface {
	String() string
	Equal(Type) bool
}

// AtomType is a base type inherited from the physical layer. Several logical
// names (URL, Text, Image) share the physical string kind; they are distinct
// logical types, as in the paper's schemas.
type AtomType struct {
	Name string
	Kind bat.Kind
}

func (t *AtomType) String() string { return t.Name }

// Equal: atoms are equal when their logical names match.
func (t *AtomType) Equal(o Type) bool {
	a, ok := o.(*AtomType)
	return ok && a.Name == t.Name
}

// Builtin atom types.
var (
	IntType   = &AtomType{Name: "int", Kind: bat.KindInt}
	FloatType = &AtomType{Name: "flt", Kind: bat.KindFloat}
	StrType   = &AtomType{Name: "str", Kind: bat.KindStr}
	BoolType  = &AtomType{Name: "bool", Kind: bat.KindBool}
	OIDType   = &AtomType{Name: "oid", Kind: bat.KindOID}
	URLType   = &AtomType{Name: "URL", Kind: bat.KindStr}
	TextType  = &AtomType{Name: "Text", Kind: bat.KindStr}
	ImageType = &AtomType{Name: "Image", Kind: bat.KindStr}
	// StatsType types the `stats` argument of getBL: a handle to a
	// collection's global statistics.
	StatsType = &AtomType{Name: "stats", Kind: bat.KindStr}
)

// atomByName resolves the names usable inside Atomic<...>.
var atomByName = map[string]*AtomType{
	"int": IntType, "flt": FloatType, "float": FloatType,
	"str": StrType, "string": StrType, "bool": BoolType, "bit": BoolType,
	"oid": OIDType, "URL": URLType, "Text": TextType, "Image": ImageType,
	"stats": StatsType,
}

// AtomTypeByName resolves an atomic type name (e.g. "URL").
func AtomTypeByName(name string) (*AtomType, bool) {
	t, ok := atomByName[name]
	return t, ok
}

// IsNumeric reports whether a type is a numeric atom.
func IsNumeric(t Type) bool {
	a, ok := t.(*AtomType)
	return ok && (a.Kind == bat.KindInt || a.Kind == bat.KindFloat || a.Kind == bat.KindOID)
}

// TupleType is the Moa TUPLE structure: named, ordered fields.
type TupleType struct {
	Names []string
	Types []Type
}

func (t *TupleType) String() string {
	var sb strings.Builder
	sb.WriteString("TUPLE<")
	for i := range t.Names {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s: %s", t.Types[i], t.Names[i])
	}
	sb.WriteString(">")
	return sb.String()
}

// Equal compares field names and types structurally, in order.
func (t *TupleType) Equal(o Type) bool {
	u, ok := o.(*TupleType)
	if !ok || len(u.Names) != len(t.Names) {
		return false
	}
	for i := range t.Names {
		if t.Names[i] != u.Names[i] || !t.Types[i].Equal(u.Types[i]) {
			return false
		}
	}
	return true
}

// Field returns the type of the named field.
func (t *TupleType) Field(name string) (Type, bool) {
	for i, n := range t.Names {
		if n == name {
			return t.Types[i], true
		}
	}
	return nil, false
}

// SetType is the Moa (multi-)SET structure.
type SetType struct{ Elem Type }

func (t *SetType) String() string { return "SET<" + t.Elem.String() + ">" }

func (t *SetType) Equal(o Type) bool {
	u, ok := o.(*SetType)
	return ok && t.Elem.Equal(u.Elem)
}

// ListType is the LIST structure (the extension credited to Blok in the
// paper's acknowledgments): a set with a stable element order.
type ListType struct{ Elem Type }

func (t *ListType) String() string { return "LIST<" + t.Elem.String() + ">" }

func (t *ListType) Equal(o Type) bool {
	u, ok := o.(*ListType)
	return ok && t.Elem.Equal(u.Elem)
}

// StructType is an instance of a registered extension structure, e.g.
// CONTREP<Text>.
type StructType struct {
	S      Structure
	Params []Type
}

func (t *StructType) String() string {
	var sb strings.Builder
	sb.WriteString(t.S.Name())
	sb.WriteString("<")
	for i, p := range t.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.String())
	}
	sb.WriteString(">")
	return sb.String()
}

func (t *StructType) Equal(o Type) bool {
	u, ok := o.(*StructType)
	if !ok || u.S.Name() != t.S.Name() || len(u.Params) != len(t.Params) {
		return false
	}
	for i := range t.Params {
		if !t.Params[i].Equal(u.Params[i]) {
			return false
		}
	}
	return true
}

// ElemType returns the element type of a SET or LIST.
func ElemType(t Type) (Type, bool) {
	switch s := t.(type) {
	case *SetType:
		return s.Elem, true
	case *ListType:
		return s.Elem, true
	}
	return nil, false
}
