package core

import (
	"fmt"
	"sync"
)

// This file is the load harness's shadow referee. The soak invariant of
// the incremental-indexing work is: every served ranking is EXACTLY the
// ranking a one-shot build over some ingest-order prefix of the
// collection would produce. In-process soak tests pin that against a stub
// pipeline (soak_test.go); the Oracle pins it end to end over RPC, where
// the harness only sees stamped replies — it rebuilds the reference index
// for the stamped prefix and demands bit-equal scores.
//
// Annotation rankings (TextQuery with Dual=false) are what the oracle
// verifies, and deliberately so: the paper's Section 3 getBL ranking over
// the annotation CONTREP depends only on the document set and its
// annotations — the exact integer df/N/avgdl bookkeeping — never on the
// image pipeline, the thesaurus, or feedback state. The oracle can
// therefore rebuild the reference with a trivial stand-in pipeline and no
// rasters, while the live server runs the real one, and exactness still
// holds bit for bit (pruned ≡ exhaustive, sharded ≡ single store,
// incremental ≡ one-shot are each pinned by their own differential
// suites; the oracle composes them over the wire).

// Oracle replays a scenario's ingest order and lazily builds one-shot
// reference indexes over its prefixes. Safe for concurrent use; reference
// builds are memoized per prefix (an epoch's stamped doc count), so a
// soak with many queries per publish amortises each build.
type Oracle struct {
	mu     sync.Mutex
	urls   []string
	anns   []string
	builds map[int]*Mirror
	fifo   []int // memoized prefixes, oldest first (bounded eviction)
}

// maxOracleBuilds bounds the memoized reference stores; a soak's live
// prefixes move forward, so evicting the oldest is almost always free.
const maxOracleBuilds = 8

// NewOracle returns an empty oracle; feed it documents with AddDoc in the
// exact order the harness acknowledges ingest.
func NewOracle() *Oracle {
	return &Oracle{builds: make(map[int]*Mirror)}
}

// AddDoc appends one document to the oracle's ingest order. Call it
// before (or as) the live server acknowledges the insert, so every
// stamped prefix the server can serve is already describable.
func (o *Oracle) AddDoc(url, annotation string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.urls = append(o.urls, url)
	o.anns = append(o.anns, annotation)
}

// Docs reports how many documents the oracle knows.
func (o *Oracle) Docs() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.urls)
}

// prefixStore returns the memoized one-shot reference store over the
// first prefix documents, building it on miss.
func (o *Oracle) prefixStore(prefix int) (*Mirror, error) {
	o.mu.Lock()
	if prefix <= 0 || prefix > len(o.urls) {
		n := len(o.urls)
		o.mu.Unlock()
		return nil, fmt.Errorf("core: oracle has %d documents, cannot verify a prefix of %d", n, prefix)
	}
	if m, ok := o.builds[prefix]; ok {
		o.mu.Unlock()
		return m, nil
	}
	urls := o.urls[:prefix:prefix]
	anns := o.anns[:prefix:prefix]
	o.mu.Unlock()

	// Build outside the lock: concurrent verifiers may race to build the
	// same prefix (both succeed; one result is kept), but they never
	// serialise behind each other's builds.
	m, err := New()
	if err != nil {
		return nil, err
	}
	for i, u := range urls {
		if err := m.AddImage(u, anns[i], nil); err != nil {
			return nil, fmt.Errorf("core: oracle ingest %s: %w", u, err)
		}
	}
	if err := m.buildIndex(DefaultIndexOptions(), oraclePipeline{}); err != nil {
		return nil, fmt.Errorf("core: oracle build over %d docs: %w", prefix, err)
	}
	// Scenario query mixes are zipfian — hot query texts repeat against
	// the same prefix, so the reference store's own result cache pays off.
	m.SetResultCache(8 << 20)

	o.mu.Lock()
	defer o.mu.Unlock()
	if kept, ok := o.builds[prefix]; ok {
		return kept, nil
	}
	o.builds[prefix] = m
	o.fifo = append(o.fifo, prefix)
	if len(o.fifo) > maxOracleBuilds {
		delete(o.builds, o.fifo[0])
		o.fifo = o.fifo[1:]
	}
	return m, nil
}

// Expected returns the reference annotation ranking for the given ingest
// prefix: what a one-shot build over the first prefix documents answers
// for text with cut k.
func (o *Oracle) Expected(prefix int, text string, k int) ([]Hit, error) {
	m, err := o.prefixStore(prefix)
	if err != nil {
		return nil, err
	}
	return m.QueryAnnotations(text, k)
}

// VerifyHits checks a stamped annotation reply against the reference
// ranking for its stamped prefix. The check is tie-permutation-tolerant —
// documents with equal belief may legally come back in any order (and,
// under a top-k cut, any tied subset may fill the boundary ranks), and a
// recovered sharded store renumbers global OIDs across crash gaps — so it
// demands (1) the same number of rows, (2) the exact sorted score vector,
// and (3) that every returned URL carries exactly its reference score.
// Anything else is an exactness violation: the server answered from a
// state no one-shot build over the stamped prefix could produce.
func (o *Oracle) VerifyHits(prefix int, text string, k int, got []WireHit) error {
	m, err := o.prefixStore(prefix)
	if err != nil {
		return err
	}
	// The full reference ranking, not the cut one: boundary ties under a
	// k-cut are resolved per-store, so a returned URL is judged by its
	// score in the full ranking.
	full, err := m.QueryAnnotations(text, 0)
	if err != nil {
		return err
	}
	want := full
	if k > 0 && k < len(want) {
		want = want[:k]
	}
	if len(got) != len(want) {
		return fmt.Errorf("core: oracle: %d hits served, reference has %d (prefix %d, query %q, k=%d)",
			len(got), len(want), prefix, text, k)
	}
	refScore := make(map[string]float64, len(full))
	for _, h := range full {
		refScore[h.URL] = h.Score
	}
	for i, g := range got {
		if g.Score != want[i].Score {
			return fmt.Errorf("core: oracle: rank %d score %v, reference %v (prefix %d, query %q)",
				i, g.Score, want[i].Score, prefix, text)
		}
		ref, ok := refScore[g.URL]
		if !ok {
			return fmt.Errorf("core: oracle: served %s which the prefix-%d reference never ranks (query %q)",
				g.URL, prefix, text)
		}
		if ref != g.Score {
			return fmt.Errorf("core: oracle: %s served with score %v, reference %v (prefix %d, query %q)",
				g.URL, g.Score, ref, prefix, text)
		}
	}
	return nil
}

// oraclePipeline is the trivial deterministic stand-in pipeline behind
// reference builds: annotation rankings are independent of image content
// words, so one segment per document assigned to a single cluster is
// enough — and it needs no rasters, which the oracle never has. fit
// returns no codebook; reference stores are one-shot by construction and
// never Refresh.
type oraclePipeline struct{}

func (oraclePipeline) features() []string { return []string{"oracle"} }
func (oraclePipeline) close()             {}

func (oraclePipeline) segment(url string) ([][][4]int, error) {
	return [][][4]int{{{0, 0, 1, 1}}}, nil
}

func (oraclePipeline) extract(url, fname string, tiles [][4]int) ([]float64, error) {
	return []float64{0}, nil
}

func (oraclePipeline) fit(data [][]float64, _, _ int, _ int64) ([]int, *SpaceCodebook, error) {
	return make([]int, len(data)), nil, nil
}
