package core

import (
	"errors"
	"fmt"
	"runtime"

	"mirror/internal/bat"
	"mirror/internal/ir"
	"mirror/internal/moa"
	"mirror/internal/thesaurus"
)

// ErrNotIndexed is returned by every ranked-retrieval entry point invoked
// before any index epoch has been published — a store that never ran
// BuildContentIndex (or lost its index and has not been rebuilt). It is
// wrapping-friendly: callers test with errors.Is, and the RPC layer
// carries it verbatim so remote clients (moash) can print the remediation
// hint.
var ErrNotIndexed = errors.New("core: content index not built (run BuildContentIndex)")

// ErrEpochRetired is returned by tag-pinned shard queries when no retained
// epoch carries the requested publish tag — the ring outgrew it or the
// store (a catching-up follower, or a freshly restarted primary) has not
// applied that publish yet. The RPC layer carries it verbatim so a router
// can fail over to another replica of the shard.
var ErrEpochRetired = errors.New("core: epoch retired (no retained epoch carries the requested publish tag)")

// IndexEpoch is one published, immutable index snapshot. Queries pin an
// epoch (a single atomic load) and run entirely against it: its database
// holds frozen views of every BAT (bat.Freeze) plus the derived columns
// as published, so concurrent inserts, delta refreshes and segment merges
// on the live store can never produce a torn read — a query sees exactly
// the collection state of some published epoch, never a half-built
// segment. Publication is an RCU-style pointer swap; superseded epochs
// stay valid for the queries still holding them and are reclaimed by GC
// (a finalizer releases the ir-layer caches keyed by the snapshot
// database).
type IndexEpoch struct {
	Seq  int64  // monotone epoch number (persisted; survives restarts)
	Docs int    // documents covered (internal-set cardinality at publish)
	Tag  uint64 // router-assigned publish tag (0 outside distributed serving)

	DB  *moa.Database // frozen snapshot: schema + frozen views of every BAT
	Eng *moa.Engine

	thes *thesaurus.Thesaurus // the shared (internally synchronised) thesaurus
	// globals maps shard-local document OIDs to engine-global OIDs for
	// the covered prefix; nil on standalone stores.
	globals []uint64
}

// contrepPrefixes are the internal schema's CONTREP columns.
var contrepPrefixes = []string{InternalSet + "_annotation", InternalSet + "_image"}

// publishEpochLocked snapshots the live database into a fresh immutable
// epoch and swaps it in as the serving index. Callers hold m.mu (write),
// so no append can be mid-flight during the freeze. The snapshot shares
// all column storage with the live BATs (freezing is O(#BATs), not
// O(data)); derived columns are replaced wholesale by every refinalize,
// so an epoch's frozen descriptors are never invalidated.
func (m *Mirror) publishEpochLocked() error {
	db := moa.NewDatabase()
	if err := db.DefineFromSource(m.DB.SchemaSource()); err != nil {
		return fmt.Errorf("core: snapshot schema: %w", err)
	}
	for name, b := range m.DB.Snapshot() {
		db.PutBAT(name, bat.Freeze(b))
	}
	db.SyncAfterLoad()
	// Pre-build the hash indexes the hot query paths probe, so the first
	// query after a publish does not pay for them.
	for _, prefix := range contrepPrefixes {
		if b, ok := db.BAT(prefix + "_termrev"); ok {
			b.EnsureIndex()
		}
		if b, ok := db.BAT(prefix + "_dictrev"); ok {
			b.EnsureIndex()
		}
	}
	eng := moa.NewEngine(db)
	eng.Opts = m.Eng.Opts

	m.epochSeq++
	docs := 0
	if def, ok := db.Set(InternalSet); ok {
		docs = def.Card
	}
	ep := &IndexEpoch{
		Seq:     m.epochSeq,
		Docs:    docs,
		Tag:     m.lastPublishTag,
		DB:      db,
		Eng:     eng,
		thes:    m.Thes,
		globals: m.globalOIDs[:len(m.globalOIDs):len(m.globalOIDs)],
	}
	// Reclaim the ir-layer caches of superseded snapshots once their last
	// query lets go of them.
	runtime.SetFinalizer(ep, func(e *IndexEpoch) { ir.ReleaseDBCaches(e.DB) })
	m.epoch.Store(ep)
	// Distributed shard members retain a ring of recent epochs so a router
	// can keep pinning in-flight queries to the tag of its current epoch
	// vector while a newer publish lands on this shard.
	if m.epochHistN > 0 {
		m.epochHist = append(m.epochHist, ep)
		if excess := len(m.epochHist) - m.epochHistN; excess > 0 {
			m.epochHist = append(m.epochHist[:0], m.epochHist[excess:]...)
		}
	}
	// The new sequence number invalidates every cached result and every
	// memoised threshold seed for free; sweeping just returns the stale
	// generations' bytes promptly.
	m.cache.Load().sweep(ep.Seq)
	m.thetaMemo.Load().sweep(ep.Seq)
	return nil
}

// currentEpoch returns the serving snapshot, or nil before the first
// publish. Lock-free: a single atomic pointer load, so queries never
// block on ingest, refresh or checkpoint activity.
func (m *Mirror) currentEpoch() *IndexEpoch { return m.epoch.Load() }

// requireEpoch returns the serving snapshot or ErrNotIndexed.
func (m *Mirror) requireEpoch() (*IndexEpoch, error) {
	ep := m.currentEpoch()
	if ep == nil {
		return nil, ErrNotIndexed
	}
	return ep, nil
}

// epochForTag returns the retained epoch carrying the given publish tag:
// the serving epoch when it matches, else the newest ring entry with the
// tag. Matching newest-first makes retried publishes converge — after a
// partially acked refresh round is retried to success, every shard's
// newest epoch for that tag carries the successful round's statistics.
func (m *Mirror) epochForTag(tag uint64) (*IndexEpoch, error) {
	ep := m.currentEpoch()
	if ep == nil {
		return nil, ErrNotIndexed
	}
	if ep.Tag == tag {
		return ep, nil
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	for i := len(m.epochHist) - 1; i >= 0; i-- {
		if m.epochHist[i].Tag == tag {
			return m.epochHist[i], nil
		}
	}
	return nil, fmt.Errorf("%w: want tag %d, serving tag %d", ErrEpochRetired, tag, ep.Tag)
}

// urlOf resolves an internal-set OID to its source URL within the epoch.
func (ep *IndexEpoch) urlOf(oid bat.OID) string {
	b, ok := ep.DB.BAT(InternalSet + "_source")
	if !ok {
		return ""
	}
	v, ok := b.Find(oid)
	if !ok {
		return ""
	}
	s, _ := v.(string)
	return s
}

// queryTopK compiles and runs a query against the epoch snapshot with k
// pushed into the plan optimizer; theta, when non-nil, is the shared
// cross-shard pruning threshold.
func (ep *IndexEpoch) queryTopK(src string, params map[string]moa.Param, k int, theta *bat.TopKThreshold) (*moa.Result, error) {
	eng := &moa.Engine{DB: ep.Eng.DB, Opts: ep.Eng.Opts}
	if k > 0 {
		eng.Opts.TopK = k
		eng.Opts.TopKTheta = theta
	}
	return eng.Query(src, params)
}

// rankRows converts a set-typed score result into sorted hits resolved
// against the epoch. Results the pruned top-k operator produced
// (res.Ranked) arrive ordered and cut; exhaustive results with k > 0 go
// through the bounded partial selection.
func (ep *IndexEpoch) rankRows(res *moa.Result, k int) []Hit {
	return rankRowsResolved(ep, res, k)
}

// rankRowsResolved is rankRows over any URL resolver.
func rankRowsResolved(r urlResolver, res *moa.Result, k int) []Hit {
	rows := res.Rows
	switch {
	case res.Ranked:
		// already ranked by the pruned operator; defensive cut only
	case k > 0 && k < len(rows):
		rows = moa.TopKRows(rows, k)
	default:
		res.SortByScoreDesc()
		rows = res.Rows
	}
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	hits := make([]Hit, 0, len(rows))
	for _, row := range rows {
		score, _ := row.Value.(float64)
		hits = append(hits, Hit{OID: row.OID, URL: r.urlOf(row.OID), Score: score})
	}
	return hits
}

// queryAnnotations ranks the epoch's collection against a text query.
// theta, when non-nil, opens the scan with a pre-raised pruning
// threshold (a θ-memo seed or a cross-shard shared bound).
func (ep *IndexEpoch) queryAnnotations(text string, k int, theta *bat.TopKThreshold) ([]Hit, error) {
	res, err := ep.queryTopK(annotationQuery, ir.QueryParams(ir.Analyze(text)), k, theta)
	if err != nil {
		return nil, err
	}
	return ep.rankRows(res, k), nil
}

// queryContent ranks the epoch's collection by content cluster words.
func (ep *IndexEpoch) queryContent(clusterWords []string, k int, theta *bat.TopKThreshold) ([]Hit, error) {
	res, err := ep.queryTopK(contentQuery, ir.QueryParams(clusterWords), k, theta)
	if err != nil {
		return nil, err
	}
	return ep.rankRows(res, k), nil
}

// QueryAnnotations / QueryContent / ExpandQuery / urlOf make a pinned
// epoch a dualCodingSite, so combined-evidence retrieval reads ONE
// consistent snapshot even while refreshes publish new epochs mid-query.
func (ep *IndexEpoch) QueryAnnotations(text string, k int) ([]Hit, error) {
	return ep.queryAnnotations(text, k, nil)
}

func (ep *IndexEpoch) QueryContent(clusterWords []string, k int) ([]Hit, error) {
	return ep.queryContent(clusterWords, k, nil)
}

func (ep *IndexEpoch) ExpandQuery(text string, topK int) []string {
	return expandConcepts(ep.thes, text, topK)
}

// weightedContentScores scores the epoch's image CONTREP with per-term
// weights via the wsum physical operator (the relevance-feedback
// primitive), shard-locally.
func (ep *IndexEpoch) weightedContentScores(terms []string, weights []float64) (ir.Scores, error) {
	if len(terms) != len(weights) {
		return nil, fmt.Errorf("core: %d terms vs %d weights", len(terms), len(weights))
	}
	prefix := InternalSet + "_image"
	dict, ok := ep.DB.BAT(prefix + "_dictrev")
	if !ok {
		return nil, fmt.Errorf("core: content index incomplete")
	}
	var qoids []bat.OID
	var qw []float64
	for i, t := range terms {
		if v, ok := dict.Find(t); ok {
			qoids = append(qoids, v.(bat.OID))
			qw = append(qw, weights[i])
		}
	}
	rev, ok1 := ep.DB.BAT(prefix + "_termrev")
	doc, ok2 := ep.DB.BAT(prefix + "_doc")
	bel, ok3 := ep.DB.BAT(prefix + "_bel")
	if !ok1 || !ok2 || !ok3 {
		return nil, fmt.Errorf("core: content index incomplete")
	}
	scored, err := bat.WSumBeliefs(rev, doc, bel, qoids, qw, ir.DefaultBelief)
	if err != nil {
		return nil, err
	}
	out := ir.NewScores()
	for i := 0; i < scored.Len(); i++ {
		out[uint64(scored.Head.OIDAt(i))] = scored.Tail.FloatAt(i)
	}
	return out, nil
}

// SegmentsInfo describes the segment layout of one CONTREP on one store,
// as published in the serving epoch (moash \segments).
type SegmentsInfo struct {
	Shard  int // member index; 0 on standalone stores
	Prefix string
	Epoch  int64
	Docs   int
	Segs   []ir.SegmentStat
}

// segmentsOf reports the epoch's segment layout for every CONTREP.
func (ep *IndexEpoch) segmentsOf(shard int) []SegmentsInfo {
	out := make([]SegmentsInfo, 0, len(contrepPrefixes))
	for _, prefix := range contrepPrefixes {
		info := SegmentsInfo{Shard: shard, Prefix: prefix, Epoch: ep.Seq, Docs: ep.Docs}
		info.Segs = ir.SegmentStats(ep.DB, prefix)
		if info.Segs == nil {
			// store checkpointed before segmentation: one monolithic segment
			if b, ok := ep.DB.BAT(prefix + "_postdoc"); ok {
				info.Segs = []ir.SegmentStat{{Slot: 0, Docs: ep.Docs, Postings: b.Len()}}
			}
		}
		out = append(out, info)
	}
	return out
}

// Segments reports the serving epoch's segment layout; nil before the
// first publish.
func (m *Mirror) Segments() []SegmentsInfo {
	ep := m.currentEpoch()
	if ep == nil {
		return nil
	}
	return ep.segmentsOf(m.shardIndex)
}

// PostingsInfo reports one CONTREP's derived-postings storage footprint
// on one store, as published in the serving epoch (moash \stats).
type PostingsInfo struct {
	Shard    int // member index; 0 on standalone stores
	Prefix   string
	Codec    string // stored segment codec ("block"/"raw"; "mixed" mid-conversion)
	Segments int
	Postings int64 // total postings across segments
	Bytes    int64 // resident bytes of the stored postings layout
	RawBytes int64 // bytes the raw 8-byte-per-field layout would occupy
}

// PostingsStats couples the per-store postings footprints with the
// process-wide block-scan counters — monotone totals in the style of
// CacheStats, shared by every store in the process.
type PostingsStats struct {
	Stores        []PostingsInfo
	BlocksDecoded int64 // postings blocks decoded by pruned scans
	BlocksSkipped int64 // blocks skipped outright via their quantized max-belief bound
}

// postingsOf reports the epoch's postings footprint for every CONTREP.
func (ep *IndexEpoch) postingsOf(shard int) []PostingsInfo {
	out := make([]PostingsInfo, 0, len(contrepPrefixes))
	for _, prefix := range contrepPrefixes {
		fp := ir.Footprint(ep.DB, prefix)
		// The codec is a property of the stored segments, not the codec
		// registry (the epoch DB is a frozen snapshot): report what the
		// segments actually are, flagging a mid-conversion mix.
		codec := ""
		for _, st := range ir.SegmentStats(ep.DB, prefix) {
			switch {
			case codec == "":
				codec = st.Codec
			case codec != st.Codec:
				codec = "mixed"
			}
		}
		out = append(out, PostingsInfo{
			Shard: shard, Prefix: prefix, Codec: codec,
			Segments: fp.Segments, Postings: fp.Postings,
			Bytes: fp.Bytes, RawBytes: fp.RawBytes,
		})
	}
	return out
}

// PostingsStats reports the serving epoch's postings footprints plus the
// process-wide block-scan counters; zero-valued Stores before the first
// publish.
func (m *Mirror) PostingsStats() PostingsStats {
	var st PostingsStats
	if ep := m.currentEpoch(); ep != nil {
		st.Stores = ep.postingsOf(m.shardIndex)
	}
	st.BlocksDecoded, st.BlocksSkipped = bat.BlockScanStats()
	return st
}
