package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"mirror/internal/bat"
)

// Epoch-keyed threshold memo: the adaptive half of the threshold
// lifecycle.
//
// A pruned top-k scan finishes with its threshold at the exact k-th
// score of the full ranking. That terminal value is an exact-safe seed
// for a repeat of the same (epoch, surface, k, query): any θ that is ≤
// the true global k-th score only prunes documents that provably cannot
// enter the top k (ties at the k-th score survive, because a tied
// document's bound is strictly above θ by the slack), so re-running the
// scan with the threshold pre-raised returns the BUN-for-BUN identical
// ranking while skipping nearly all decode and scoring work — the scan
// degenerates into a block-directory walk.
//
// The memo is the result cache's tiny sibling: where the cache stores
// whole rankings bounded by bytes, the memo stores one float64 per
// (epoch, surface, k, query) bounded by entry count, so it stays warm
// long after byte pressure has evicted the rankings themselves. Keys
// embed the epoch sequence number, so a publish invalidates every seed
// for free (a stale seed can never be looked up, let alone applied
// cross-epoch); the publish choke points sweep old generations to
// return the bytes. All methods are nil-receiver safe.

// thetaEntry pins the query surface verbatim so a hash collision can
// never seed with another query's score (which would break exactness).
type thetaEntry struct {
	key   cacheKey
	text  string
	terms []string
	seed  float64
}

type thetaStripe struct {
	mu  sync.Mutex
	lru *list.List // front = most recently used; values are *thetaEntry
	idx map[cacheKey]*list.Element
	max int
}

// ThetaMemo memoises terminal pruning thresholds per epoch; nil means
// the memo is disabled.
type ThetaMemo struct {
	stripes [cacheStripeCount]thetaStripe
	hits    atomic.Int64
	misses  atomic.Int64
}

// newThetaMemo builds a memo bounded to roughly maxEntries across all
// stripes; maxEntries <= 0 returns nil (disabled).
func newThetaMemo(maxEntries int) *ThetaMemo {
	if maxEntries <= 0 {
		return nil
	}
	tm := &ThetaMemo{}
	per := maxEntries / cacheStripeCount
	if per < 1 {
		per = 1
	}
	for i := range tm.stripes {
		tm.stripes[i].lru = list.New()
		tm.stripes[i].idx = make(map[cacheKey]*list.Element)
		tm.stripes[i].max = per
	}
	return tm
}

// get returns the memoised seed for (gen, kind, k, surface). The seed is
// pruning-only: callers raise a fresh TopKThreshold with it and hand
// that to the scan.
func (tm *ThetaMemo) get(gen int64, kind cacheKind, k int, text string, terms []string) (float64, bool) {
	if tm == nil || k <= 0 {
		return 0, false
	}
	key := cacheKey{gen: gen, kind: kind, k: k, hash: cacheHash(text, terms)}
	st := &tm.stripes[key.hash&(cacheStripeCount-1)]
	st.mu.Lock()
	if el, ok := st.idx[key]; ok {
		e := el.Value.(*thetaEntry)
		if e.matches(text, terms) {
			st.lru.MoveToFront(el)
			seed := e.seed
			st.mu.Unlock()
			tm.hits.Add(1)
			return seed, true
		}
	}
	st.mu.Unlock()
	tm.misses.Add(1)
	return 0, false
}

func (e *thetaEntry) matches(text string, terms []string) bool {
	if e.text != text || len(e.terms) != len(terms) {
		return false
	}
	for i := range terms {
		if e.terms[i] != terms[i] {
			return false
		}
	}
	return true
}

// put stores a terminal k-th score. Callers must only pass exact k-th
// scores of complete rankings (len(hits) == k): a seed above the true
// k-th score would prune documents that belong in the answer.
func (tm *ThetaMemo) put(gen int64, kind cacheKind, k int, text string, terms []string, seed float64) {
	if tm == nil || k <= 0 {
		return
	}
	key := cacheKey{gen: gen, kind: kind, k: k, hash: cacheHash(text, terms)}
	st := &tm.stripes[key.hash&(cacheStripeCount-1)]
	st.mu.Lock()
	defer st.mu.Unlock()
	if el, ok := st.idx[key]; ok {
		// Same epoch + query + k is deterministic: keep the incumbent.
		st.lru.MoveToFront(el)
		return
	}
	e := &thetaEntry{key: key, text: text, seed: seed}
	if len(terms) > 0 {
		e.terms = append(make([]string, 0, len(terms)), terms...)
	}
	st.idx[key] = st.lru.PushFront(e)
	for st.lru.Len() > st.max {
		back := st.lru.Back()
		st.lru.Remove(back)
		delete(st.idx, back.Value.(*thetaEntry).key)
	}
}

// sweep drops every seed computed against a generation older than gen.
// Correctness never depends on it (stale generations can no longer be
// looked up); it just returns the bytes promptly on publish.
func (tm *ThetaMemo) sweep(gen int64) {
	if tm == nil {
		return
	}
	for i := range tm.stripes {
		st := &tm.stripes[i]
		st.mu.Lock()
		var next *list.Element
		for el := st.lru.Front(); el != nil; el = next {
			next = el.Next()
			if e := el.Value.(*thetaEntry); e.key.gen < gen {
				st.lru.Remove(el)
				delete(st.idx, e.key)
			}
		}
		st.mu.Unlock()
	}
}

// ThetaMemoStats reports threshold-memo effectiveness counters.
type ThetaMemoStats struct {
	Hits   int64
	Misses int64
	Items  int
}

// stats snapshots the counters (nil-safe, like every method).
func (tm *ThetaMemo) stats() ThetaMemoStats {
	if tm == nil {
		return ThetaMemoStats{}
	}
	s := ThetaMemoStats{Hits: tm.hits.Load(), Misses: tm.misses.Load()}
	for i := range tm.stripes {
		st := &tm.stripes[i]
		st.mu.Lock()
		s.Items += st.lru.Len()
		st.mu.Unlock()
	}
	return s
}

// defaultThetaMemoEntries is the constructor default: seeds are ~100
// bytes each, so the default memo tops out near a megabyte while
// covering far more distinct queries than the byte-bounded result cache
// retains rankings for.
const defaultThetaMemoEntries = 8192

// seededTheta builds the scan threshold for one query surface: nil when
// the memo holds no seed, else a fresh TopKThreshold raised to the
// memoised terminal k-th score (pruning-only — the scan still computes
// the exact ranking).
func seededTheta(tm *ThetaMemo, gen int64, kind cacheKind, k int, text string, terms []string) *bat.TopKThreshold {
	seed, ok := tm.get(gen, kind, k, text, terms)
	if !ok {
		return nil
	}
	th := bat.NewTopKThreshold()
	th.Raise(seed)
	return th
}

// memoTheta records a completed ranking's terminal threshold. Only a
// full ranking (len(hits) == k) carries an exact k-th score; short
// rankings mean fewer than k scoreable documents, where no finite seed
// is safe to pre-raise.
func memoTheta(tm *ThetaMemo, gen int64, kind cacheKind, k int, text string, terms []string, hits []Hit) {
	if tm == nil || k <= 0 || len(hits) != k {
		return
	}
	tm.put(gen, kind, k, text, terms, hits[k-1].Score)
}

// ---- exported surface ----
//
// internal/dist's router keeps its own memo over the networked scatter,
// keyed by the epoch-vector tag instead of a store's epoch sequence: a
// repeat query seeds every shard leg's ThetaFloor at the previous
// merge's terminal k-th score, so each shard scan starts at terminal
// height instead of re-deriving it. Same exactness argument, same
// generation keying (tags are monotone, swept on vector advance).

// ThetaKind names the retrieval surface a memoised seed belongs to.
type ThetaKind = cacheKind

// Memo surface kinds (the dual-coding surface never seeds: its legs run
// as annotation/content sub-queries).
const (
	ThetaAnnotations = cacheAnnotations
	ThetaContent     = cacheContent
)

// DefaultThetaMemoEntries is the constructor default entry bound.
const DefaultThetaMemoEntries = defaultThetaMemoEntries

// NewThetaMemo builds a memo bounded to roughly maxEntries; <= 0 returns
// nil (disabled — every method is nil-receiver safe).
func NewThetaMemo(maxEntries int) *ThetaMemo { return newThetaMemo(maxEntries) }

// Get returns the memoised terminal k-th score for (gen, kind, k,
// surface); pruning-only — callers seed a scan floor with it.
func (tm *ThetaMemo) Get(gen int64, kind ThetaKind, k int, text string, terms []string) (float64, bool) {
	return tm.get(gen, kind, k, text, terms)
}

// Record stores a completed ranking's terminal threshold; rankings
// shorter than k carry no exact k-th score and are ignored.
func (tm *ThetaMemo) Record(gen int64, kind ThetaKind, k int, text string, terms []string, hits []Hit) {
	memoTheta(tm, gen, kind, k, text, terms, hits)
}

// Sweep drops every seed older than gen (publish choke points call this).
func (tm *ThetaMemo) Sweep(gen int64) { tm.sweep(gen) }

// Stats snapshots the memo's effectiveness counters.
func (tm *ThetaMemo) Stats() ThetaMemoStats { return tm.stats() }
